//===- InferenceServer.cpp - In-process serving with dynamic micro-batching ----===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "serving/InferenceServer.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

using namespace spnc;
using namespace spnc::serving;

const char *spnc::serving::requestStatusName(RequestStatus Status) {
  switch (Status) {
  case RequestStatus::Ok:
    return "ok";
  case RequestStatus::Rejected:
    return "rejected";
  case RequestStatus::TimedOut:
    return "timed-out";
  case RequestStatus::ShutDown:
    return "shut-down";
  case RequestStatus::Failed:
    return "failed";
  }
  return "<invalid>";
}

//===----------------------------------------------------------------------===//
// Internal request/batch state
//===----------------------------------------------------------------------===//

/// One queued request: the copied input rows, the promise the submitter
/// holds the future of, and the timing the batcher schedules by.
struct InferenceServer::Request {
  ModelEntry *Model = nullptr;
  std::vector<double> Input;
  size_t NumSamples = 0;
  Promise<InferenceResult> ResultPromise;
  Clock::time_point Enqueued;
  /// time_point::max() when the request carries no deadline.
  Clock::time_point Deadline;
};

/// One registered model: the cache-acquired engine plus its request
/// queue. Queue and QueuedSamples are guarded by the server mutex.
struct InferenceServer::ModelEntry {
  std::string Name;
  runtime::CompiledKernel Kernel;
  /// The query the engine was compiled for; runBatch dispatches on its
  /// Kind (likelihood vs MPE vs sampling entry point).
  spn::QueryConfig Query;
  unsigned NumFeatures = 0;
  std::deque<Request> Queue;
  /// Samples queued (not yet formed into a batch) for this model.
  size_t QueuedSamples = 0;
};

/// A formed micro-batch: requests of one model, executed as one engine
/// call.
struct InferenceServer::Batch {
  ModelEntry *Model = nullptr;
  std::vector<Request> Requests;
  size_t TotalSamples = 0;
};

//===----------------------------------------------------------------------===//
// Construction / registration
//===----------------------------------------------------------------------===//

InferenceServer::InferenceServer(ServerConfig TheConfig,
                                 runtime::KernelCache *SharedCache)
    : Config(TheConfig) {
  // Clamps are warned about, not silent: a tuner (or operator) that
  // asked for an illegal value should see the knob it actually got.
  if (Config.MaxBatchSamples < 1) {
    std::fprintf(stderr,
                 "warning: InferenceServer clamped MaxBatchSamples "
                 "from %zu to 1\n",
                 Config.MaxBatchSamples);
    Config.MaxBatchSamples = 1;
  }
  if (SharedCache) {
    Cache = SharedCache;
  } else {
    OwnedCache = std::make_unique<runtime::KernelCache>();
    Cache = OwnedCache.get();
  }
  StartTime = Clock::now();
  if (Config.NumWorkers < 1) {
    std::fprintf(stderr,
                 "warning: InferenceServer clamped NumWorkers from %u "
                 "to 1\n",
                 Config.NumWorkers);
    Config.NumWorkers = 1;
  }
  Workers = std::make_unique<ThreadPool>(Config.NumWorkers);
  Batcher = std::thread([this] { batcherLoop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::optional<Error>
InferenceServer::addModel(const std::string &Name,
                          const spn::Model &Model,
                          const spn::QueryConfig &Query,
                          const runtime::CompilerOptions &Options) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (ShuttingDown)
      return makeError("cannot register model '" + Name +
                       "': server is shutting down");
    if (Models.count(Name))
      return makeError("model '" + Name + "' is already registered");
  }

  // Compile (or fetch) outside the lock: compilation is slow and the
  // cache serializes same-key work internally.
  Expected<runtime::CompiledKernel> Kernel =
      Cache->getOrCompile(Model, Query, Options);
  if (!Kernel)
    return Kernel.getError();

  auto Entry = std::make_unique<ModelEntry>();
  Entry->Name = Name;
  Entry->Kernel = Kernel.takeValue();
  Entry->Query = Query;
  Entry->NumFeatures = Model.getNumFeatures();

  std::lock_guard<std::mutex> Lock(Mutex);
  if (ShuttingDown)
    return makeError("cannot register model '" + Name +
                     "': server is shutting down");
  auto [It, Inserted] = Models.emplace(Name, std::move(Entry));
  if (!Inserted)
    return makeError("model '" + Name + "' is already registered");
  ModelOrder.push_back(It->second.get());
  return std::nullopt;
}

bool InferenceServer::hasModel(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Models.count(Name) != 0;
}

unsigned InferenceServer::getNumFeatures(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Models.find(Name);
  return It == Models.end() ? 0 : It->second->NumFeatures;
}

//===----------------------------------------------------------------------===//
// Submission / admission control
//===----------------------------------------------------------------------===//

namespace {

/// A future completed on the spot (rejections, shutdown refusals).
ResultFuture immediateResult(RequestStatus Status, std::string Message) {
  Promise<InferenceResult> ThePromise;
  ResultFuture TheFuture = ThePromise.getFuture();
  InferenceResult Result;
  Result.Status = Status;
  Result.Message = std::move(Message);
  ThePromise.set(std::move(Result));
  return TheFuture;
}

} // namespace

ResultFuture InferenceServer::submit(const std::string &Name,
                                     const double *Samples,
                                     size_t NumSamples,
                                     uint64_t DeadlineUs) {
  std::unique_lock<std::mutex> Lock(Mutex);
  ++Stats.SubmittedRequests;
  Stats.SubmittedSamples += NumSamples;

  if (ShuttingDown)
    return immediateResult(RequestStatus::ShutDown,
                           "server is shutting down");
  auto It = Models.find(Name);
  if (It == Models.end()) {
    ++Stats.RejectedRequests;
    return immediateResult(RequestStatus::Rejected,
                           "unknown model '" + Name + "'");
  }
  if (NumSamples == 0) {
    ++Stats.RejectedRequests;
    return immediateResult(RequestStatus::Rejected,
                           "request carries no samples");
  }

  if (Config.MaxQueueDepth > 0 &&
      OutstandingSamples + NumSamples > Config.MaxQueueDepth) {
    if (Config.Admission == ServerConfig::AdmissionPolicy::Reject) {
      ++Stats.RejectedRequests;
      return immediateResult(
          RequestStatus::Rejected,
          "queue full (" + std::to_string(OutstandingSamples) + " of " +
              std::to_string(Config.MaxQueueDepth) +
              " samples outstanding)");
    }
    ++Stats.BlockedSubmits;
    SpaceAvailable.wait(Lock, [&] {
      return ShuttingDown ||
             OutstandingSamples + NumSamples <= Config.MaxQueueDepth;
    });
    if (ShuttingDown)
      return immediateResult(RequestStatus::ShutDown,
                             "server shut down while waiting for queue "
                             "space");
  }

  ModelEntry &Model = *It->second;
  Request TheRequest;
  TheRequest.Model = &Model;
  TheRequest.Input.assign(Samples,
                          Samples + NumSamples * Model.NumFeatures);
  TheRequest.NumSamples = NumSamples;
  TheRequest.Enqueued = Clock::now();
  uint64_t EffectiveDeadlineUs =
      DeadlineUs ? DeadlineUs : Config.DefaultDeadlineUs;
  TheRequest.Deadline =
      EffectiveDeadlineUs
          ? TheRequest.Enqueued +
                std::chrono::microseconds(EffectiveDeadlineUs)
          : Clock::time_point::max();
  ResultFuture TheFuture = TheRequest.ResultPromise.getFuture();

  Model.Queue.push_back(std::move(TheRequest));
  Model.QueuedSamples += NumSamples;
  OutstandingSamples += NumSamples;
  Stats.PeakQueueDepth = std::max(Stats.PeakQueueDepth,
                                  OutstandingSamples);
  WorkAvailable.notify_one();
  return TheFuture;
}

//===----------------------------------------------------------------------===//
// Batcher
//===----------------------------------------------------------------------===//

void InferenceServer::failRequest(Request &TheRequest,
                                  RequestStatus Status,
                                  std::string Message) {
  InferenceResult Result;
  Result.Status = Status;
  Result.Message = std::move(Message);
  Result.LatencyNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - TheRequest.Enqueued)
          .count());
  TheRequest.ResultPromise.set(std::move(Result));
}

void InferenceServer::collectExpired(Clock::time_point Now,
                                     std::vector<Request> &Expired) {
  for (ModelEntry *Model : ModelOrder) {
    for (auto It = Model->Queue.begin(); It != Model->Queue.end();) {
      if (It->Deadline > Now) {
        ++It;
        continue;
      }
      Model->QueuedSamples -= It->NumSamples;
      OutstandingSamples -= It->NumSamples;
      ++Stats.TimedOutRequests;
      Expired.push_back(std::move(*It));
      It = Model->Queue.erase(It);
    }
  }
  if (!Expired.empty())
    SpaceAvailable.notify_all();
}

InferenceServer::Batch InferenceServer::formBatch(ModelEntry &Model,
                                                  Clock::time_point) {
  Batch TheBatch;
  TheBatch.Model = &Model;
  while (!Model.Queue.empty()) {
    Request &Front = Model.Queue.front();
    // Always take at least one request; a single oversized request
    // becomes its own (over-cap) batch rather than being unservable.
    if (!TheBatch.Requests.empty() &&
        TheBatch.TotalSamples + Front.NumSamples >
            Config.MaxBatchSamples)
      break;
    TheBatch.TotalSamples += Front.NumSamples;
    Model.QueuedSamples -= Front.NumSamples;
    TheBatch.Requests.push_back(std::move(Front));
    Model.Queue.pop_front();
  }
  return TheBatch;
}

void InferenceServer::batcherLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    Clock::time_point Now = Clock::now();

    // 1. Expired requests leave the queue before they can occupy a
    // batch slot. Their promises are completed outside the lock.
    std::vector<Request> Expired;
    collectExpired(Now, Expired);
    if (!Expired.empty()) {
      Lock.unlock();
      for (Request &TheRequest : Expired)
        failRequest(TheRequest, RequestStatus::TimedOut,
                    "deadline expired after " +
                        std::to_string(
                            std::chrono::duration_cast<
                                std::chrono::microseconds>(
                                Now - TheRequest.Enqueued)
                                .count()) +
                        " us in queue");
      Lock.lock();
      continue;
    }

    // 2. Dispatch a model whose batch is ready: the cap is reached, the
    // oldest request has waited out the batching window, or the server
    // is draining. Round-robin keeps one hot model from starving the
    // others.
    std::chrono::microseconds Delay(Config.MaxQueueDelayUs);
    ModelEntry *Ready = nullptr;
    for (size_t I = 0; I < ModelOrder.size() && !Ready; ++I) {
      ModelEntry *Model =
          ModelOrder[(NextModel + I) % ModelOrder.size()];
      if (Model->Queue.empty())
        continue;
      if (ShuttingDown ||
          Model->QueuedSamples >= Config.MaxBatchSamples ||
          Model->Queue.front().Enqueued + Delay <= Now) {
        Ready = Model;
        NextModel = (NextModel + I + 1) % ModelOrder.size();
      }
    }
    if (Ready) {
      auto TheBatch =
          std::make_shared<Batch>(formBatch(*Ready, Now));
      ++Stats.BatchesDispatched;
      Stats.BatchSizes.record(TheBatch->TotalSamples);
      Lock.unlock();
      // shared_ptr wrapper: std::function requires a copyable callable,
      // and a Batch owns move-only promises.
      Workers->submit(
          [this, TheBatch] { runBatch(std::move(*TheBatch)); });
      Lock.lock();
      continue;
    }

    // 3. Nothing ready. Exit once draining is complete, otherwise sleep
    // until the earliest batching window or deadline comes due.
    bool AnyQueued = false;
    Clock::time_point WakeAt = Clock::time_point::max();
    for (ModelEntry *Model : ModelOrder) {
      if (Model->Queue.empty())
        continue;
      AnyQueued = true;
      WakeAt = std::min(WakeAt, Model->Queue.front().Enqueued + Delay);
      for (const Request &TheRequest : Model->Queue)
        WakeAt = std::min(WakeAt, TheRequest.Deadline);
    }
    if (ShuttingDown && !AnyQueued)
      return;
    if (!AnyQueued)
      WorkAvailable.wait(Lock);
    else
      WorkAvailable.wait_until(Lock, WakeAt);
  }
}

void InferenceServer::runBatch(Batch TheBatch) {
  ModelEntry &Model = *TheBatch.Model;
  size_t NumFeatures = Model.NumFeatures;

  // Gather the request rows into one contiguous batch buffer.
  std::vector<double> Input(TheBatch.TotalSamples * NumFeatures);
  std::vector<double> Output(TheBatch.TotalSamples);
  size_t Offset = 0;
  for (const Request &TheRequest : TheBatch.Requests) {
    std::copy(TheRequest.Input.begin(), TheRequest.Input.end(),
              Input.begin() +
                  static_cast<ptrdiff_t>(Offset * NumFeatures));
    Offset += TheRequest.NumSamples;
  }

  // Dispatch on the query kind the model was compiled for. Likelihood
  // queries fill Output only; MPE fills Rows (assignments) and Output
  // (log-probabilities); sampling fills Rows only, seeded from the
  // configured base seed decorrelated per dispatched batch.
  std::vector<double> Rows;
  bool Executed = true;
  runtime::ExecutionStats ExecStats;
  switch (Model.Query.Kind) {
  case spn::QueryKind::Joint:
  case spn::QueryKind::Marginal:
    Model.Kernel.execute(Input.data(), Output.data(),
                         TheBatch.TotalSamples, &ExecStats);
    break;
  case spn::QueryKind::Mpe:
    Rows.resize(TheBatch.TotalSamples * NumFeatures);
    Executed = Model.Kernel.executeMpe(Input.data(), Rows.data(),
                                       Output.data(),
                                       TheBatch.TotalSamples, &ExecStats);
    break;
  case spn::QueryKind::Sample: {
    Rows.resize(TheBatch.TotalSamples * NumFeatures);
    uint64_t BatchSeed =
        Config.SampleSeed ^
        (0x9e3779b97f4a7c15ULL * (SampleBatchCounter.fetch_add(1) + 1));
    Executed = Model.Kernel.executeSample(Input.data(), Rows.data(),
                                          TheBatch.TotalSamples,
                                          BatchSeed, &ExecStats);
    break;
  }
  }
  Clock::time_point Done = Clock::now();

  // Account first, then complete the promises: a submitter that
  // observes its future ready sees the completion in getStats() too.
  std::vector<uint64_t> Latencies;
  Latencies.reserve(TheBatch.Requests.size());
  for (const Request &TheRequest : TheBatch.Requests)
    Latencies.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Done - TheRequest.Enqueued)
            .count()));
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Executed) {
      Stats.CompletedRequests += TheBatch.Requests.size();
      Stats.CompletedSamples += TheBatch.TotalSamples;
      Stats.ExecutionNs += ExecStats.WallNs;
      for (uint64_t Latency : Latencies)
        Stats.LatencyNs.record(Latency);
    }
    OutstandingSamples -= TheBatch.TotalSamples;
    SpaceAvailable.notify_all();
  }

  if (!Executed) {
    // The engine refused the batch (it cannot serve this query kind,
    // or execution failed outright). Every rider fails; the samples
    // were already released from admission accounting above.
    for (Request &TheRequest : TheBatch.Requests)
      failRequest(TheRequest, RequestStatus::Failed,
                  "engine failed to execute the batch for model '" +
                      Model.Name + "'");
    return;
  }

  bool WantRows = Model.Query.Kind == spn::QueryKind::Mpe ||
                  Model.Query.Kind == spn::QueryKind::Sample;
  bool WantLogLikelihoods = Model.Query.Kind != spn::QueryKind::Sample;
  Offset = 0;
  for (size_t I = 0; I < TheBatch.Requests.size(); ++I) {
    Request &TheRequest = TheBatch.Requests[I];
    InferenceResult Result;
    Result.Status = RequestStatus::Ok;
    if (WantLogLikelihoods)
      Result.LogLikelihoods.assign(
          Output.begin() + static_cast<ptrdiff_t>(Offset),
          Output.begin() +
              static_cast<ptrdiff_t>(Offset + TheRequest.NumSamples));
    if (WantRows)
      Result.Rows.assign(
          Rows.begin() +
              static_cast<ptrdiff_t>(Offset * NumFeatures),
          Rows.begin() +
              static_cast<ptrdiff_t>(
                  (Offset + TheRequest.NumSamples) * NumFeatures));
    Result.LatencyNs = Latencies[I];
    Result.BatchSamples = TheBatch.TotalSamples;
    Offset += TheRequest.NumSamples;
    TheRequest.ResultPromise.set(std::move(Result));
  }
}

//===----------------------------------------------------------------------===//
// Shutdown / stats
//===----------------------------------------------------------------------===//

void InferenceServer::shutdown() {
  // Serializes concurrent shutdown() calls (user + destructor).
  std::lock_guard<std::mutex> ShutdownLock(ShutdownMutex);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (ShutdownComplete)
      return;
    ShuttingDown = true;
  }
  // Wake everyone: the batcher drains, blocked submitters give up.
  WorkAvailable.notify_all();
  SpaceAvailable.notify_all();
  if (Batcher.joinable())
    Batcher.join();
  // The batcher exited with empty queues; wait for the dispatched
  // batches to finish so every accepted future is completed.
  Workers->wait();
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(OutstandingSamples == 0 &&
         "shutdown drained but work remains outstanding");
  ShutdownComplete = true;
}

ServerStats InferenceServer::getStats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  ServerStats Snapshot = Stats;
  Snapshot.QueueDepth = OutstandingSamples;
  Snapshot.ElapsedNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - StartTime)
          .count());
  return Snapshot;
}
