//===- Baselines.h - SPFlow and Tensorflow-style baseline executors ----------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two baselines the paper compares against (§V-A2):
///
///  * `SPFlowInterpreter` — the equivalent of SPFlow's Python inference:
///    a per-sample, node-by-node graph walk with dynamic dispatch at
///    every node. (Being C++, it is far faster than Python; absolute
///    speedups versus it are therefore smaller than the paper's 500-900x,
///    while the ordering of all execution modes is preserved — see
///    EXPERIMENTS.md.)
///  * `TfGraphExecutor` — the equivalent of SPFlow's translation to a
///    Tensorflow graph: op-at-a-time execution where every node processes
///    the entire batch into a freshly allocated buffer. Like the paper's
///    TF translation it does not support marginalized (NaN) evidence.
///
/// Both compute log-likelihoods in double precision, matching SPFlow.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_BASELINES_BASELINES_H
#define SPNC_BASELINES_BASELINES_H

#include "frontend/Model.h"
#include "runtime/ExecutionEngine.h"

#include <cstddef>
#include <string>
#include <vector>

namespace spnc {
namespace baselines {

/// Per-sample interpreted inference (SPFlow-equivalent baseline).
class SPFlowInterpreter {
public:
  explicit SPFlowInterpreter(const spn::Model &TheModel);

  /// Computes log-likelihoods for \p NumSamples samples (row-major
  /// [sample][feature]). NaN evidence marginalizes a feature.
  void execute(const double *Input, double *Output,
               size_t NumSamples) const;

private:
  const spn::Model &TheModel;
  std::vector<spn::Node *> Order;
  /// Dense node-id -> position map for the value scratchpad.
  std::vector<uint32_t> PositionOf;
};

/// Op-at-a-time batched inference (Tensorflow-translation baseline).
class TfGraphExecutor {
public:
  explicit TfGraphExecutor(const spn::Model &TheModel);

  /// Computes log-likelihoods for a batch. Marginalized (NaN) evidence is
  /// unsupported, as in the paper's TF translation.
  void execute(const double *Input, double *Output,
               size_t NumSamples) const;

private:
  const spn::Model &TheModel;
  std::vector<spn::Node *> Order;
  std::vector<uint32_t> PositionOf;
};

//===----------------------------------------------------------------------===//
// ExecutionEngine adapters
//===----------------------------------------------------------------------===//

/// Presents the SPFlow-equivalent interpreter through the unified
/// runtime::ExecutionEngine interface, so baselines plug into the same
/// harnesses (and kernel cache) as compiled kernels. The adapted model
/// must outlive the engine.
class InterpreterEngine : public runtime::ExecutionEngine {
public:
  explicit InterpreterEngine(const spn::Model &TheModel)
      : TheModel(TheModel), Interpreter(TheModel),
        NumNodes(TheModel.computeStats().NumNodes) {}

  void execute(const double *Input, double *Output, size_t NumSamples,
               runtime::ExecutionStats *Stats = nullptr) const override;
  /// MPE via the model's reference traceback (Model::evalMpe). This is
  /// the oracle every compiled MPE path is differential-tested against.
  bool executeMpe(const double *Evidence, double *Assignments,
                  double *LogProbs, size_t NumSamples,
                  runtime::ExecutionStats *Stats = nullptr) const override;
  /// Ancestral sampling via Model::sampleAncestral, using the shared
  /// per-sample seeding contract (vm::perSampleSeed) so sample I depends
  /// only on (Seed, I).
  bool executeSample(const double *Evidence, double *Samples,
                     size_t NumSamples, uint64_t Seed,
                     runtime::ExecutionStats *Stats = nullptr) const override;
  /// Model-derived accounting: one work unit per SPN node evaluated
  /// per sample (there is no compiled program to count instructions
  /// from).
  runtime::EngineAccounting getAccounting() const override {
    runtime::EngineAccounting Accounting;
    Accounting.NumInstructions = NumNodes;
    Accounting.NumTasks = 1;
    return Accounting;
  }
  runtime::Target getTarget() const override {
    return runtime::Target::CPU;
  }
  std::string describe() const override {
    return "baseline: spflow-style interpreter";
  }

private:
  const spn::Model &TheModel;
  SPFlowInterpreter Interpreter;
  size_t NumNodes;
};

/// Presents the Tensorflow-translation baseline through the unified
/// runtime::ExecutionEngine interface. The adapted model must outlive
/// the engine. Marginalized (NaN) evidence is unsupported.
class TfGraphEngine : public runtime::ExecutionEngine {
public:
  explicit TfGraphEngine(const spn::Model &TheModel)
      : Executor(TheModel), NumNodes(TheModel.computeStats().NumNodes) {}

  void execute(const double *Input, double *Output, size_t NumSamples,
               runtime::ExecutionStats *Stats = nullptr) const override;
  /// Model-derived accounting: one whole-batch op per SPN node.
  runtime::EngineAccounting getAccounting() const override {
    runtime::EngineAccounting Accounting;
    Accounting.NumInstructions = NumNodes;
    Accounting.NumTasks = 1;
    return Accounting;
  }
  runtime::Target getTarget() const override {
    return runtime::Target::CPU;
  }
  std::string describe() const override {
    return "baseline: tensorflow-style graph executor";
  }

private:
  TfGraphExecutor Executor;
  size_t NumNodes;
};

} // namespace baselines
} // namespace spnc

#endif // SPNC_BASELINES_BASELINES_H
