//===- property_test.cpp - Cross-engine property sweeps --------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized property sweeps asserting the system's central
/// invariant: every compilation/execution configuration computes the same
/// probabilities as the reference model evaluator, over random models,
/// seeds, batch shapes, partition sizes and threading configurations.
///
//===----------------------------------------------------------------------===//

#include "runtime/Compiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace spnc;
using namespace spnc::runtime;

namespace {

struct SweepCase {
  uint64_t ModelSeed;
  unsigned VectorWidth;
  uint32_t MaxPartitionSize; // 0 = no partitioning
  unsigned OptLevel;
  Target TheTarget;
};

void PrintTo(const SweepCase &Case, std::ostream *Out) {
  *Out << "seed=" << Case.ModelSeed << " W=" << Case.VectorWidth
       << " part=" << Case.MaxPartitionSize << " O=" << Case.OptLevel
       << (Case.TheTarget == Target::GPU ? " gpu" : " cpu");
}

class EngineSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineSweepTest, MatchesReferenceEvaluator) {
  const SweepCase &Case = GetParam();
  workloads::SpeakerModelOptions ModelOptions;
  ModelOptions.TargetOperations = 350;
  ModelOptions.Seed = Case.ModelSeed;
  spn::Model Model = workloads::generateSpeakerModel(ModelOptions);
  const size_t NumSamples = 61; // prime: exercises every epilogue
  std::vector<double> Data = workloads::generateSpeechData(
      ModelOptions, NumSamples, Case.ModelSeed + 1000);

  CompilerOptions Options;
  Options.OptLevel = Case.OptLevel;
  Options.TheTarget = Case.TheTarget;
  Options.MaxPartitionSize = Case.MaxPartitionSize;
  Options.Execution.VectorWidth = Case.VectorWidth;
  Expected<CompiledKernel> Kernel =
      compileModel(Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel)) << Kernel.getError().message();

  std::vector<double> Output(NumSamples);
  Kernel->execute(Data.data(), Output.data(), NumSamples);
  for (size_t S = 0; S < NumSamples; ++S) {
    double Reference = Model.evalLogLikelihood(
        std::span<const double>(&Data[S * 26], 26));
    EXPECT_NEAR(Output[S], Reference,
                std::max(5e-3, std::fabs(Reference) * 5e-3))
        << "sample " << S;
  }
}

std::vector<SweepCase> makeSweep() {
  std::vector<SweepCase> Cases;
  for (uint64_t Seed : {11u, 23u, 37u})
    for (unsigned Width : {1u, 8u})
      for (uint32_t Partition : {0u, 48u})
        Cases.push_back(SweepCase{Seed, Width, Partition, 2, Target::CPU});
  // GPU and extreme-width spot checks.
  Cases.push_back(SweepCase{11, 1, 0, 2, Target::GPU});
  Cases.push_back(SweepCase{23, 1, 48, 1, Target::GPU});
  Cases.push_back(SweepCase{37, 16, 0, 3, Target::CPU});
  Cases.push_back(SweepCase{11, 4, 48, 0, Target::CPU});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineSweepTest,
                         ::testing::ValuesIn(makeSweep()));

//===----------------------------------------------------------------------===//
// Threading / chunking matrix
//===----------------------------------------------------------------------===//

class ChunkingTest
    : public ::testing::TestWithParam<std::tuple<unsigned, uint32_t>> {};

TEST_P(ChunkingTest, ChunkedExecutionMatchesSingleThread) {
  auto [NumThreads, ChunkSize] = GetParam();
  workloads::SpeakerModelOptions ModelOptions;
  ModelOptions.TargetOperations = 300;
  ModelOptions.Seed = 5;
  spn::Model Model = workloads::generateSpeakerModel(ModelOptions);
  const size_t NumSamples = 157;
  std::vector<double> Data =
      workloads::generateSpeechData(ModelOptions, NumSamples, 77);

  CompilerOptions Single;
  Single.OptLevel = 2;
  Expected<CompiledKernel> Reference =
      compileModel(Model, spn::QueryConfig(), Single);
  ASSERT_TRUE(static_cast<bool>(Reference));
  std::vector<double> Expected(NumSamples);
  Reference->execute(Data.data(), Expected.data(), NumSamples);

  CompilerOptions Chunked = Single;
  Chunked.Execution.NumThreads = NumThreads;
  Chunked.Execution.ChunkSize = ChunkSize;
  Chunked.Execution.VectorWidth = 8;
  auto Kernel = compileModel(Model, spn::QueryConfig(), Chunked);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  std::vector<double> Actual(NumSamples);
  Kernel->execute(Data.data(), Actual.data(), NumSamples);
  for (size_t S = 0; S < NumSamples; ++S)
    EXPECT_NEAR(Actual[S], Expected[S],
                std::fabs(Expected[S]) * 1e-4 + 1e-4)
        << "sample " << S;
}

INSTANTIATE_TEST_SUITE_P(
    Threads, ChunkingTest,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(1u, 13u, 64u, 1000u)));

//===----------------------------------------------------------------------===//
// RAT-SPN end-to-end
//===----------------------------------------------------------------------===//

TEST(RatSpnPropertyTest, PartitionedRatSpnMatchesReference) {
  workloads::RatSpnOptions Options;
  Options.NumFeatures = 32;
  Options.Depth = 3;
  Options.Replicas = 2;
  Options.SumsPerRegion = 3;
  Options.LeafDistributions = 4;
  for (unsigned Class = 0; Class < 2; ++Class) {
    spn::Model Model = workloads::generateRatSpn(Options, Class);
    std::vector<double> Data =
        workloads::generateImageData(32, 2, 19, Class + 50, nullptr);

    CompilerOptions Compile;
    Compile.OptLevel = 2;
    Compile.MaxPartitionSize = 100;
    Compile.Execution.VectorWidth = 8;
    auto Kernel = compileModel(Model, spn::QueryConfig(), Compile);
    ASSERT_TRUE(static_cast<bool>(Kernel));
    EXPECT_GT(Kernel->getProgram().Tasks.size(), 1u);

    std::vector<double> Output(19);
    Kernel->execute(Data.data(), Output.data(), 19);
    for (size_t S = 0; S < 19; ++S) {
      double Reference = Model.evalLogLikelihood(
          std::span<const double>(&Data[S * 32], 32));
      EXPECT_NEAR(Output[S], Reference,
                  std::max(5e-3, std::fabs(Reference) * 5e-3));
    }
  }
}

TEST(RatSpnPropertyTest, BatchSizeInvariance) {
  // The batch-size hint is an optimization hint only: results must be
  // identical for any number of input samples (paper §IV-B).
  workloads::SpeakerModelOptions ModelOptions;
  ModelOptions.TargetOperations = 300;
  ModelOptions.Seed = 9;
  spn::Model Model = workloads::generateSpeakerModel(ModelOptions);
  std::vector<double> Data =
      workloads::generateSpeechData(ModelOptions, 100, 4);

  for (uint32_t BatchSize : {1u, 7u, 64u, 4096u}) {
    spn::QueryConfig Query;
    Query.BatchSize = BatchSize;
    CompilerOptions Options;
    Options.Execution.VectorWidth = 8;
    auto Kernel = compileModel(Model, Query, Options);
    ASSERT_TRUE(static_cast<bool>(Kernel));
    for (size_t NumSamples : {1u, 3u, 100u}) {
      std::vector<double> Output(NumSamples);
      Kernel->execute(Data.data(), Output.data(), NumSamples);
      for (size_t S = 0; S < NumSamples; ++S) {
        double Reference = Model.evalLogLikelihood(
            std::span<const double>(&Data[S * 26], 26));
        EXPECT_NEAR(Output[S], Reference,
                    std::max(5e-3, std::fabs(Reference) * 5e-3));
      }
    }
  }
}

} // namespace
