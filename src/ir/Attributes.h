//===- Attributes.h - Uniqued compile-time attribute values ---------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attributes attach compile-time information to operations (weights,
/// histogram buckets, batch sizes, ...). Like types they are immutable and
/// uniqued in the Context, so attribute equality is pointer equality.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_ATTRIBUTES_H
#define SPNC_IR_ATTRIBUTES_H

#include "ir/Types.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace spnc {

class RawOStream;

namespace ir {

class Context;
class Attribute;

/// Discriminator for attribute storage.
enum class AttrKind : uint8_t {
  Unit,
  Bool,
  Int,
  Float,
  String,
  Type,
  Array,
  /// Dense array of doubles; used for sum weights, categorical
  /// probabilities and flattened histogram buckets.
  DenseF64,
};

/// Uniqued immutable attribute storage. Field use depends on the kind.
struct AttrStorage {
  AttrKind Kind = AttrKind::Unit;
  Context *Ctx = nullptr;
  bool BoolValue = false;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  std::string StringValue;
  const TypeStorage *TypeValue = nullptr;
  std::vector<const AttrStorage *> Elements;
  std::vector<double> Doubles;
};

/// Value-semantic handle to a uniqued attribute. Default-constructed is the
/// null attribute.
class Attribute {
public:
  Attribute() = default;
  explicit Attribute(const AttrStorage *Impl) : Impl(Impl) {}

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(Attribute Other) const { return Impl == Other.Impl; }
  bool operator!=(Attribute Other) const { return Impl != Other.Impl; }

  AttrKind getKind() const {
    assert(Impl && "querying the null attribute");
    return Impl->Kind;
  }
  Context &getContext() const {
    assert(Impl && "querying the null attribute");
    return *Impl->Ctx;
  }
  const AttrStorage *getImpl() const { return Impl; }

  template <typename T> bool isa() const { return T::classof(*this); }
  template <typename T> T cast() const {
    assert(isa<T>() && "Attribute::cast to incompatible kind");
    return T(Impl);
  }
  template <typename T> T dyn_cast() const {
    return isa<T>() ? T(Impl) : T();
  }

  /// Prints the textual form (e.g. `42 : i64`, `[0.3, 0.7]`).
  void print(RawOStream &OS) const;

private:
  const AttrStorage *Impl = nullptr;
};

/// Attribute that carries no value beyond its presence.
class UnitAttr : public Attribute {
public:
  using Attribute::Attribute;
  static UnitAttr get(Context &Ctx);
  static bool classof(Attribute A) {
    return A && A.getKind() == AttrKind::Unit;
  }
};

/// Boolean attribute.
class BoolAttr : public Attribute {
public:
  using Attribute::Attribute;
  static BoolAttr get(Context &Ctx, bool Value);
  bool getValue() const { return getImpl()->BoolValue; }
  static bool classof(Attribute A) {
    return A && A.getKind() == AttrKind::Bool;
  }
};

/// 64-bit integer attribute.
class IntAttr : public Attribute {
public:
  using Attribute::Attribute;
  static IntAttr get(Context &Ctx, int64_t Value);
  int64_t getValue() const { return getImpl()->IntValue; }
  static bool classof(Attribute A) {
    return A && A.getKind() == AttrKind::Int;
  }
};

/// Double-precision float attribute.
class FloatAttr : public Attribute {
public:
  using Attribute::Attribute;
  static FloatAttr get(Context &Ctx, double Value);
  double getValue() const { return getImpl()->FloatValue; }
  static bool classof(Attribute A) {
    return A && A.getKind() == AttrKind::Float;
  }
};

/// String attribute.
class StringAttr : public Attribute {
public:
  using Attribute::Attribute;
  static StringAttr get(Context &Ctx, std::string Value);
  const std::string &getValue() const { return getImpl()->StringValue; }
  static bool classof(Attribute A) {
    return A && A.getKind() == AttrKind::String;
  }
};

/// Attribute wrapping a Type (e.g. the requested computation type).
class TypeAttr : public Attribute {
public:
  using Attribute::Attribute;
  static TypeAttr get(Context &Ctx, Type Value);
  Type getValue() const { return Type(getImpl()->TypeValue); }
  static bool classof(Attribute A) {
    return A && A.getKind() == AttrKind::Type;
  }
};

/// Heterogeneous array of attributes.
class ArrayAttr : public Attribute {
public:
  using Attribute::Attribute;
  static ArrayAttr get(Context &Ctx, const std::vector<Attribute> &Elements);
  size_t size() const { return getImpl()->Elements.size(); }
  Attribute getElement(size_t Index) const {
    assert(Index < size() && "ArrayAttr index out of range");
    return Attribute(getImpl()->Elements[Index]);
  }
  static bool classof(Attribute A) {
    return A && A.getKind() == AttrKind::Array;
  }
};

/// Dense array of doubles (weights, probabilities, bucket boundaries).
class DenseF64Attr : public Attribute {
public:
  using Attribute::Attribute;
  static DenseF64Attr get(Context &Ctx, std::vector<double> Values);
  const std::vector<double> &getValues() const { return getImpl()->Doubles; }
  size_t size() const { return getImpl()->Doubles.size(); }
  double operator[](size_t Index) const {
    assert(Index < size() && "DenseF64Attr index out of range");
    return getImpl()->Doubles[Index];
  }
  static bool classof(Attribute A) {
    return A && A.getKind() == AttrKind::DenseF64;
  }
};

/// A (name, attribute) pair as stored on operations.
struct NamedAttribute {
  std::string Name;
  Attribute Value;
};

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_ATTRIBUTES_H
