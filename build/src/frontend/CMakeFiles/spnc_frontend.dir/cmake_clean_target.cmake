file(REMOVE_RECURSE
  "libspnc_frontend.a"
)
