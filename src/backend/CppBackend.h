//===- CppBackend.h - AOT native backend via C++ source emission --------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "true native" backend the paper's LLVM pipeline corresponds to:
/// the compiled `vm::KernelProgram` is emitted as a standalone C++
/// evaluation function (CppEmitter.h), built into a shared object by
/// the host toolchain, and `dlopen`ed behind the standard
/// `ExecutionEngine` interface — so the serving layer, the CLI and
/// every bench run native kernels unmodified. CPU only; requesting the
/// GPU target fails with a validateTarget diagnostic. Unavailable hosts
/// (no compiler on PATH, non-POSIX) are reported through isAvailable()
/// so callers can skip gracefully.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_BACKEND_CPPBACKEND_H
#define SPNC_BACKEND_CPPBACKEND_H

#include "backend/Backend.h"

#include <mutex>
#include <optional>

namespace spnc {
namespace backend {

/// Host-toolchain configuration of the CppBackend.
struct CppBackendOptions {
  /// Host C++ compiler; empty selects $CXX, falling back to "c++".
  std::string CompilerPath;
  /// Optimization/codegen flags appended to the fixed
  /// "-std=c++17 -fPIC -shared" invocation. Part of the artifact
  /// fingerprint.
  std::vector<std::string> ExtraFlags = {"-O2", "-march=native"};
  /// Directory for emitted sources and shared objects; empty uses a
  /// fresh mkdtemp directory per kernel, removed when the engine dies.
  std::string WorkDir;
  /// Keep the generated .cpp/.so/compile log instead of cleaning up
  /// (debugging aid; implied for kernels built under WorkDir).
  bool KeepArtifacts = false;
};

/// Compiles kernels ahead-of-time into native shared objects.
class CppBackend : public Backend {
public:
  CppBackend() = default;
  explicit CppBackend(CppBackendOptions TheOptions)
      : Options(std::move(TheOptions)) {}

  std::string getName() const override { return "cpp"; }

  std::vector<runtime::Target> supportedTargets() const override {
    return {runtime::Target::CPU};
  }

  uint64_t artifactFingerprint() const override;

  /// Probes the host toolchain once (result cached): a POSIX host with
  /// a working compiler on PATH.
  bool isAvailable(std::string *Reason = nullptr) const override;

  Expected<CompiledArtifact>
  compile(const runtime::CompilationPipeline &Pipeline,
          const spn::Model &Model, const spn::QueryConfig &Query,
          runtime::CompileStats *Stats = nullptr) const override;

  Expected<CompiledArtifact>
  materialize(vm::KernelProgram Program,
              const runtime::PipelineConfig &Config) const override;

  const CppBackendOptions &getOptions() const { return Options; }

  /// The compiler command actually invoked ($CXX / "c++" resolution
  /// applied).
  std::string resolveCompiler() const;

private:
  CppBackendOptions Options;
  /// Availability probe result, filled on first isAvailable() call.
  mutable std::mutex ProbeMutex;
  mutable std::optional<std::string> ProbeFailure;
  mutable bool Probed = false;
};

} // namespace backend
} // namespace spnc

#endif // SPNC_BACKEND_CPPBACKEND_H
