file(REMOVE_RECURSE
  "CMakeFiles/spnc_transforms.dir/Bufferization.cpp.o"
  "CMakeFiles/spnc_transforms.dir/Bufferization.cpp.o.d"
  "CMakeFiles/spnc_transforms.dir/HiSPNToLoSPN.cpp.o"
  "CMakeFiles/spnc_transforms.dir/HiSPNToLoSPN.cpp.o.d"
  "CMakeFiles/spnc_transforms.dir/TaskPartitioning.cpp.o"
  "CMakeFiles/spnc_transforms.dir/TaskPartitioning.cpp.o.d"
  "libspnc_transforms.a"
  "libspnc_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnc_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
