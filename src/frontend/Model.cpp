//===- Model.cpp - SPFlow-equivalent SPN model --------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "frontend/Model.h"

#include "dialects/lospn/LoSPNOps.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

using namespace spnc;
using namespace spnc::spn;

Node::~Node() = default;

std::vector<double> HistogramLeaf::getFlatBuckets() const {
  std::vector<double> Flat;
  Flat.reserve(Buckets.size() * 3);
  for (const HistogramBucket &Bucket : Buckets) {
    Flat.push_back(Bucket.Lb);
    Flat.push_back(Bucket.Ub);
    Flat.push_back(Bucket.P);
  }
  return Flat;
}

//===----------------------------------------------------------------------===//
// Factory methods
//===----------------------------------------------------------------------===//

SumNode *Model::makeSum(std::vector<Node *> Children,
                        std::vector<double> Weights) {
  assert(Children.size() == Weights.size() &&
         "one weight per sum child required");
  return addNode<SumNode>(std::move(Children), std::move(Weights));
}

ProductNode *Model::makeProduct(std::vector<Node *> Children) {
  return addNode<ProductNode>(std::move(Children));
}

HistogramLeaf *Model::makeHistogram(unsigned FeatureIndex,
                                    std::vector<HistogramBucket> Buckets) {
  assert(FeatureIndex < NumFeatures && "feature index out of range");
  return addNode<HistogramLeaf>(FeatureIndex, std::move(Buckets));
}

CategoricalLeaf *
Model::makeCategorical(unsigned FeatureIndex,
                       std::vector<double> Probabilities) {
  assert(FeatureIndex < NumFeatures && "feature index out of range");
  return addNode<CategoricalLeaf>(FeatureIndex, std::move(Probabilities));
}

GaussianLeaf *Model::makeGaussian(unsigned FeatureIndex, double Mean,
                                  double StdDev) {
  assert(FeatureIndex < NumFeatures && "feature index out of range");
  return addNode<GaussianLeaf>(FeatureIndex, Mean, StdDev);
}

//===----------------------------------------------------------------------===//
// Analysis
//===----------------------------------------------------------------------===//

std::vector<Node *> Model::topologicalOrder() const {
  std::vector<Node *> Order;
  if (!Root)
    return Order;
  // Iterative DFS emitting nodes after all children (post-order). Shared
  // children are emitted once.
  std::unordered_set<const Node *> Visited;
  std::vector<std::pair<Node *, size_t>> Stack;
  Stack.emplace_back(Root, 0);
  Visited.insert(Root);
  while (!Stack.empty()) {
    auto &[Current, NextChild] = Stack.back();
    const auto *Inner = dyn_cast<InnerNode>(Current);
    if (!Inner || NextChild >= Inner->getNumChildren()) {
      Order.push_back(Current);
      Stack.pop_back();
      continue;
    }
    Node *Child = Inner->getChild(NextChild++);
    if (Visited.insert(Child).second)
      Stack.emplace_back(Child, 0);
  }
  return Order;
}

std::set<unsigned> Model::getScope(const Node *N) const {
  // Bottom-up scope computation over the sub-DAG rooted at N, visiting
  // children before parents (iterative post-order over the DAG).
  std::unordered_map<const Node *, std::set<unsigned>> Scopes;
  std::unordered_set<const Node *> Visited{N};
  std::vector<std::pair<const Node *, size_t>> Stack;
  Stack.emplace_back(N, 0);
  while (!Stack.empty()) {
    auto &[Current, NextChild] = Stack.back();
    const auto *Inner = dyn_cast<InnerNode>(Current);
    if (Inner && NextChild < Inner->getNumChildren()) {
      const Node *Child = Inner->getChild(NextChild++);
      if (Visited.insert(Child).second)
        Stack.emplace_back(Child, 0);
      continue;
    }
    if (const auto *Leaf = dyn_cast<LeafNode>(Current)) {
      Scopes[Current] = {Leaf->getFeatureIndex()};
    } else {
      std::set<unsigned> Scope;
      for (const Node *Child : Inner->getChildren()) {
        const std::set<unsigned> &ChildScope = Scopes[Child];
        Scope.insert(ChildScope.begin(), ChildScope.end());
      }
      Scopes[Current] = std::move(Scope);
    }
    Stack.pop_back();
  }
  return Scopes[N];
}

bool Model::validate(std::string *ErrorMessage,
                     double WeightTolerance) const {
  auto Fail = [&](std::string Message) {
    if (ErrorMessage)
      *ErrorMessage = std::move(Message);
    return false;
  };
  if (!Root)
    return Fail("model has no root node");

  // Acyclicity via iterative three-color DFS.
  enum class Color : uint8_t { White, Grey, Black };
  std::unordered_map<const Node *, Color> Colors;
  {
    std::vector<std::pair<const Node *, size_t>> Stack;
    Stack.emplace_back(Root, 0);
    Colors[Root] = Color::Grey;
    while (!Stack.empty()) {
      auto &[Current, NextChild] = Stack.back();
      const auto *Inner = dyn_cast<InnerNode>(Current);
      if (!Inner || NextChild >= Inner->getNumChildren()) {
        Colors[Current] = Color::Black;
        Stack.pop_back();
        continue;
      }
      const Node *Child = Inner->getChild(NextChild++);
      Color &ChildColor = Colors.try_emplace(Child, Color::White)
                              .first->second;
      if (ChildColor == Color::Grey)
        return Fail("SPN DAG contains a cycle");
      if (ChildColor == Color::White) {
        ChildColor = Color::Grey;
        Stack.emplace_back(Child, 0);
      }
    }
  }

  // Scope-based checks in one bottom-up pass. Scopes are stored as
  // bitsets indexed by the dense node ids so validation stays linear-ish
  // even for paper-scale RAT-SPNs with hundreds of thousands of nodes.
  size_t Words = (NumFeatures + 63) / 64;
  std::vector<std::vector<uint64_t>> Scopes(Nodes.size());
  for (Node *Current : topologicalOrder()) {
    std::vector<uint64_t> &Scope = Scopes[Current->getId()];
    if (const auto *Leaf = dyn_cast<LeafNode>(Current)) {
      if (Leaf->getFeatureIndex() >= NumFeatures)
        return Fail(formatString("leaf %u references feature %u out of %u",
                                 Leaf->getId(), Leaf->getFeatureIndex(),
                                 NumFeatures));
      Scope.assign(Words, 0);
      Scope[Leaf->getFeatureIndex() / 64] |=
          uint64_t(1) << (Leaf->getFeatureIndex() % 64);
      continue;
    }
    const auto *Inner = cast<InnerNode>(Current);
    if (Inner->getNumChildren() == 0)
      return Fail(
          formatString("inner node %u has no children", Inner->getId()));

    if (const auto *Sum = dyn_cast<SumNode>(Current)) {
      if (Sum->getWeights().size() != Sum->getNumChildren())
        return Fail(formatString("sum %u weight/child count mismatch",
                                 Sum->getId()));
      double Total = 0.0;
      for (double Weight : Sum->getWeights()) {
        if (!(Weight >= 0.0) || !std::isfinite(Weight))
          return Fail(formatString("sum %u has an invalid weight",
                                   Sum->getId()));
        Total += Weight;
      }
      if (std::fabs(Total - 1.0) > WeightTolerance)
        return Fail(formatString("sum %u weights sum to %g, expected 1",
                                 Sum->getId(), Total));
      // Smoothness: all children must have the same scope.
      const std::vector<uint64_t> &First =
          Scopes[Sum->getChild(0)->getId()];
      for (Node *Child : Sum->getChildren())
        if (Scopes[Child->getId()] != First)
          return Fail(formatString(
              "sum %u is not smooth: child scopes differ", Sum->getId()));
      Scope = First;
    } else {
      // Decomposability: child scopes must be pairwise disjoint.
      Scope.assign(Words, 0);
      for (Node *Child : Inner->getChildren()) {
        const std::vector<uint64_t> &ChildScope =
            Scopes[Child->getId()];
        for (size_t W = 0; W < Words; ++W) {
          if (Scope[W] & ChildScope[W])
            return Fail(formatString(
                "product %u is not decomposable: child scopes overlap",
                Inner->getId()));
          Scope[W] |= ChildScope[W];
        }
      }
    }
  }
  return true;
}

ModelStats Model::computeStats() const {
  ModelStats Stats;
  std::unordered_map<const Node *, size_t> Depths;
  for (Node *Current : topologicalOrder()) {
    ++Stats.NumNodes;
    size_t Depth = 1;
    switch (Current->getKind()) {
    case NodeKind::Sum:
      ++Stats.NumSums;
      break;
    case NodeKind::Product:
      ++Stats.NumProducts;
      break;
    case NodeKind::Gaussian:
      ++Stats.NumGaussians;
      ++Stats.NumLeaves;
      break;
    case NodeKind::Histogram:
    case NodeKind::Categorical:
      ++Stats.NumLeaves;
      break;
    }
    if (const auto *Inner = dyn_cast<InnerNode>(Current))
      for (Node *Child : Inner->getChildren())
        Depth = std::max(Depth, Depths[Child] + 1);
    Depths[Current] = Depth;
    Stats.MaxDepth = std::max(Stats.MaxDepth, Depth);
  }
  return Stats;
}

//===----------------------------------------------------------------------===//
// Reference inference
//===----------------------------------------------------------------------===//

double Model::evalLogLikelihood(std::span<const double> Sample) const {
  assert(Sample.size() == NumFeatures && "sample size mismatch");
  assert(Root && "model has no root");
  // Bottom-up evaluation in log-space over the topological order; shared
  // nodes are evaluated exactly once (linear in DAG size, paper §II-A).
  std::unordered_map<const Node *, double> LogValues;
  for (Node *Current : topologicalOrder()) {
    double LogValue = 0.0;
    switch (Current->getKind()) {
    case NodeKind::Sum: {
      const auto *Sum = cast<SumNode>(Current);
      LogValue = -std::numeric_limits<double>::infinity();
      for (size_t I = 0; I < Sum->getNumChildren(); ++I) {
        double Weight = Sum->getWeights()[I];
        if (Weight == 0.0)
          continue;
        double Term = std::log(Weight) + LogValues[Sum->getChild(I)];
        LogValue = lospn::logSumExp(LogValue, Term);
      }
      break;
    }
    case NodeKind::Product: {
      const auto *Product = cast<ProductNode>(Current);
      LogValue = 0.0;
      for (Node *Child : Product->getChildren())
        LogValue += LogValues[Child];
      break;
    }
    case NodeKind::Histogram: {
      const auto *Leaf = cast<HistogramLeaf>(Current);
      double Evidence = Sample[Leaf->getFeatureIndex()];
      if (std::isnan(Evidence)) {
        LogValue = 0.0; // Marginalized: contributes probability 1.
        break;
      }
      std::vector<double> Flat = Leaf->getFlatBuckets();
      LogValue = std::log(lospn::evalHistogram(Flat, Evidence));
      break;
    }
    case NodeKind::Categorical: {
      const auto *Leaf = cast<CategoricalLeaf>(Current);
      double Evidence = Sample[Leaf->getFeatureIndex()];
      if (std::isnan(Evidence)) {
        LogValue = 0.0;
        break;
      }
      LogValue =
          std::log(lospn::evalCategorical(Leaf->getProbabilities(),
                                          Evidence));
      break;
    }
    case NodeKind::Gaussian: {
      const auto *Leaf = cast<GaussianLeaf>(Current);
      double Evidence = Sample[Leaf->getFeatureIndex()];
      if (std::isnan(Evidence)) {
        LogValue = 0.0;
        break;
      }
      LogValue = lospn::evalGaussianLogPdf(Leaf->getMean(),
                                           Leaf->getStdDev(), Evidence);
      break;
    }
    }
    LogValues[Current] = LogValue;
  }
  return LogValues[Root];
}
