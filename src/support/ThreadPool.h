//===- ThreadPool.h - Simple fixed-size thread pool ------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size worker pool used by the CPU runtime (batch chunking across
/// threads, paper §IV-B) and by the GPU simulator (one worker per simulated
/// streaming multiprocessor).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_THREADPOOL_H
#define SPNC_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spnc {

/// A fixed-size thread pool. Tasks are arbitrary callables; wait() blocks
/// until all submitted tasks have completed. The pool is not reentrant:
/// tasks must not submit further tasks.
class ThreadPool {
public:
  /// Creates a pool with \p NumThreads workers (at least one).
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  unsigned getNumThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Runs Fn(I) for I in [0, NumItems) across the pool and waits for
  /// completion. Items are distributed in contiguous chunks.
  void parallelFor(size_t NumItems, const std::function<void(size_t)> &Fn);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable AllDone;
  size_t PendingTasks = 0;
  bool ShuttingDown = false;
};

} // namespace spnc

#endif // SPNC_SUPPORT_THREADPOOL_H
