# Empty compiler generated dependencies file for spnc_dialects.
# This may be replaced when dependencies are built.
