# Empty compiler generated dependencies file for spnc_gpusim.
# This may be replaced when dependencies are built.
