//===- Pipeline.h - Staged compilation pipeline -------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged compilation pipeline behind `runtime::compileModel`: a
/// `CompilationPipeline` is built once from a validated `PipelineConfig`
/// and populates an open stage registry with the default stage set
/// (translate -> ir-pipeline -> codegen -> binary-encode). Additional
/// named stages — diagnostic or transforming — can be registered with
/// `registerStage`, anchored before/after any existing stage; three
/// built-in diagnostic stages (verify-after-each, ir-dump, stage-report)
/// exercise that hook. The pipeline runs its stages with per-stage
/// wall-clock timing feeding `CompileStats` and produces a portable
/// `vm::KernelProgram`; turning that program into a loaded
/// `ExecutionEngine` is the job of a `backend::Backend`
/// (backend/Backend.h). Benchmarks, the CLI and the kernel cache all
/// drive this one object instead of re-assembling pass lists and
/// options by hand.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_RUNTIME_PIPELINE_H
#define SPNC_RUNTIME_PIPELINE_H

#include "codegen/Codegen.h"
#include "frontend/Model.h"
#include "frontend/Query.h"
#include "gpusim/GpuSimulator.h"
#include "ir/BuiltinOps.h"
#include "ir/Context.h"
#include "ir/PassManager.h"
#include "runtime/ExecutionEngine.h"
#include "support/Expected.h"
#include "transforms/Passes.h"
#include "vm/Executor.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace spnc {
namespace runtime {

/// All user-facing knobs of the compiler, mirroring the parameters the
/// paper's Python interface exposes (§V-B1).
struct CompilerOptions {
  Target TheTarget = Target::CPU;
  /// Optimization level 0..3 (paper Figs. 11/13): 0 disables the IR
  /// canonicalization/CSE and all codegen optimization; higher levels
  /// enable progressively more work.
  unsigned OptLevel = 1;
  /// Maximum SPN operations per task; 0 disables partitioning
  /// (paper Figs. 10/12).
  uint32_t MaxPartitionSize = 0;
  /// CPU execution configuration (vectorization design space, Fig. 6).
  vm::ExecutionConfig Execution;
  /// GPU device model and block size (0 = occupancy-optimal default,
  /// paper §V-A1).
  gpusim::GpuDeviceConfig Device;
  unsigned GpuBlockSize = 0;
  /// Keep intermediate buffers on the GPU between tasks (paper §IV-C).
  bool GpuTransferElimination = true;
  /// Write returned task results directly into kernel outputs
  /// (paper §IV-A5); disable only for the ablation.
  bool AvoidBufferCopies = true;
  /// Verify the IR after each pass (slow for very large graphs).
  bool VerifyIR = false;
  transforms::LoweringOptions Lowering;
  partition::PartitionOptions Partitioning;
};

/// Wall clock of one executed pipeline stage.
struct StageTiming {
  std::string Name;
  uint64_t WallNs = 0;
};

/// Operation count of the module observed after a named stage (recorded
/// by the built-in "stage-report" diagnostic stages).
struct StageOpCount {
  /// The stage after which the module was measured.
  std::string Stage;
  /// Operations in the module at that point (0 once the module has been
  /// consumed or before it exists).
  size_t NumOps = 0;
};

/// Compile-time measurements (the paper's §V-B1 breakdown).
struct CompileStats {
  /// Wall clock per named pipeline stage, in execution order (includes
  /// registered diagnostic stages).
  std::vector<StageTiming> Stages;
  /// Module op counts per stage; populated by enableStageReport().
  std::vector<StageOpCount> OpCounts;
  /// Per-pass wall clock of the IR pipeline.
  std::vector<ir::PassTiming> PassTimings;
  /// Codegen stage breakdown (isel / regalloc / peephole / scheduling).
  codegen::CodegenTimings Codegen;
  /// Model-to-HiSPN translation time.
  uint64_t TranslationNs = 0;
  /// Device binary assembly time (the CUBIN-encoding analog, GPU only).
  uint64_t BinaryEncodeNs = 0;
  /// End-to-end compilation wall clock.
  uint64_t TotalNs = 0;
  size_t NumTasks = 0;
  size_t NumInstructions = 0;
};

/// A validated, immutable compiler configuration. `create` is the single
/// validation point for every user-facing knob: a PipelineConfig always
/// describes a buildable pipeline (Target::Auto is resolved to the CPU,
/// zero thread counts are normalized, out-of-range knobs are rejected
/// with a message).
class PipelineConfig {
public:
  /// Validates \p Options; fails with a descriptive message on any
  /// out-of-range knob (e.g. OptLevel > 3, unsupported vector width).
  /// Thread-safe.
  static Expected<PipelineConfig> create(CompilerOptions Options);

  /// The validated, normalized options. Thread-safe; the reference is
  /// valid for the config's lifetime.
  const CompilerOptions &getOptions() const { return Options; }

  /// Stable structural hash over every knob that influences either the
  /// compiled program or the engine configuration; one of the three
  /// kernel-cache key components. Thread-safe; never fails.
  uint64_t hash() const;

private:
  explicit PipelineConfig(CompilerOptions O) : Options(std::move(O)) {}
  CompilerOptions Options;
};

/// Introspectable description of one pipeline stage.
struct PipelineStage {
  /// Stable stage name, unique within a pipeline. Default stages:
  /// "translate", "ir-pipeline", "codegen", "binary-encode"; the
  /// built-in diagnostics register as "verify:<stage>",
  /// "ir-dump:<stage>" and "stage-report:<stage>".
  std::string Name;
  /// Human-readable summary of the work the stage will perform under the
  /// pipeline's configuration (e.g. the pass list of "ir-pipeline").
  std::string Detail;
  /// True for observing stages (verification, dumps, reporting) that
  /// never change the compilation result. Diagnostic stages are skipped
  /// when further diagnostics are anchored "after each stage".
  bool Diagnostic = false;
};

namespace detail {

/// Mutable state threaded through the stages of one compile() run. Each
/// run owns a fresh context, which is what keeps a shared pipeline object
/// safe to use from concurrent compiles. Registered stage runners receive
/// this context and may inspect or transform any of it; fields are
/// populated progressively (Module after "translate", Kernel after
/// "ir-pipeline", Program after "codegen").
struct StageContext {
  StageContext(const spn::Model &Model, spn::QueryConfig Query,
               const CompilerOptions &Options, CompileStats &Stats)
      : Model(Model), Query(Query), Options(Options), Stats(Stats) {}

  const spn::Model &Model;
  spn::QueryConfig Query;
  const CompilerOptions &Options;
  CompileStats &Stats;

  ir::Context Ctx;
  ir::OwningOpRef<ir::ModuleOp> Module;
  lospn::KernelOp Kernel{nullptr};
  vm::KernelProgram Program;
};

} // namespace detail

/// Where a registered stage is inserted relative to the stages already in
/// the registry.
class StageAnchor {
public:
  enum class Placement {
    /// Append at the end of the current stage list (the default).
    End,
    /// Insert immediately before the referenced stage.
    Before,
    /// Insert immediately after the referenced stage.
    After,
  };

  StageAnchor() = default;

  static StageAnchor end() { return StageAnchor(); }
  static StageAnchor before(std::string Reference) {
    return StageAnchor(Placement::Before, std::move(Reference));
  }
  static StageAnchor after(std::string Reference) {
    return StageAnchor(Placement::After, std::move(Reference));
  }

  Placement getPlacement() const { return Where; }
  const std::string &getReference() const { return Reference; }

private:
  StageAnchor(Placement Where, std::string Reference)
      : Where(Where), Reference(std::move(Reference)) {}

  Placement Where = Placement::End;
  std::string Reference;
};

/// The work of one registered stage: invoked once per compile() with the
/// run's private context; returning an Error aborts the compilation with
/// that diagnostic. Runners on one pipeline may be invoked concurrently
/// (one compile per thread), so they must not mutate shared state without
/// synchronization.
using StageRunner =
    std::function<std::optional<Error>(detail::StageContext &)>;

/// The staged compile path (paper §IV): translate -> IR pipeline ->
/// codegen -> binary encode (GPU), held in an open, ordered stage
/// registry. Built once from a validated config and reusable across
/// models; `compile` may be called concurrently from multiple threads.
/// Stage registration is NOT thread-safe: register every custom stage
/// before the first compile().
class CompilationPipeline {
public:
  /// Validates \p Options and builds the pipeline with the default stage
  /// registrations. Fails exactly when PipelineConfig::create fails
  /// (invalid knobs); a returned pipeline is always runnable.
  /// Thread-safe.
  static Expected<CompilationPipeline> create(CompilerOptions Options);

  /// Builds the pipeline from an already-validated config; never fails.
  explicit CompilationPipeline(PipelineConfig TheConfig);

  /// The validated configuration. Thread-safe; valid for the pipeline's
  /// lifetime.
  const PipelineConfig &getConfig() const { return Config; }

  /// The registered stages, in execution order. Thread-safe once
  /// registration is finished.
  const std::vector<PipelineStage> &getStages() const { return Stages; }

  /// True when a stage named \p Name is registered.
  bool hasStage(const std::string &Name) const;

  /// Registers \p Runner as the named stage \p Info, inserted where
  /// \p Anchor says. Fails with a diagnostic when the stage name is
  /// already registered or the anchor references an unknown stage; the
  /// registry is unchanged on failure. Not thread-safe — call before
  /// the first compile().
  std::optional<Error> registerStage(PipelineStage Info, StageRunner Runner,
                                     StageAnchor Anchor = StageAnchor::end());

  /// Built-in diagnostic: inserts a "verify:<stage>" stage after every
  /// currently registered non-diagnostic stage. Each one runs the IR
  /// `ir::verify` over the module (when it exists at that point) and
  /// fails the compilation naming the offending stage and the first
  /// verifier diagnostic. Fails only if the verify stages were already
  /// registered.
  std::optional<Error> enableVerifyAfterEachStage();

  /// Built-in diagnostic: inserts an "ir-dump:<stage>" stage after
  /// \p AfterStage that prints the module in generic form — to stderr,
  /// or to \p OutputPath when non-empty (overwritten per compile).
  /// Fails when \p AfterStage is not registered or the dump stage
  /// already exists.
  std::optional<Error> addIrDumpStage(const std::string &AfterStage,
                                      std::string OutputPath = "");

  /// Built-in diagnostic: inserts a "stage-report:<stage>" stage after
  /// every currently registered non-diagnostic stage, recording the
  /// module's op count at that point into `CompileStats::OpCounts`
  /// (timings are always recorded, report or not). Fails only if the
  /// report stages were already registered.
  std::optional<Error> enableStageReport();

  /// Runs every stage over \p Model, returning the engine-ready program.
  /// Per-stage timings and the pass/codegen breakdowns are recorded into
  /// \p Stats when provided (\p Stats is untouched on failure). Fails on
  /// malformed models or IR verification errors; the pipeline itself is
  /// unchanged by failure and may be reused. Thread-safe: concurrent
  /// `compile` calls on one pipeline are allowed (each call uses private
  /// state).
  Expected<vm::KernelProgram> compile(const spn::Model &Model,
                                      const spn::QueryConfig &Query,
                                      CompileStats *Stats = nullptr) const;

private:
  void buildStages();

  PipelineConfig Config;
  std::vector<PipelineStage> Stages;
  std::vector<StageRunner> Runners;
};

} // namespace runtime
} // namespace spnc

#endif // SPNC_RUNTIME_PIPELINE_H
