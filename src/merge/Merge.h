//===- Merge.h - Structural model merging ------------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural-isomorphism analysis over `spn::Model` for merged-model
/// compilation (docs/merging.md). A fleet of per-user fine-tuned SPNs
/// typically shares one template structure: the models differ only in
/// sum weights and leaf distribution parameters. This header provides
///
///  * a canonical **structural signature** — the sequence of 64-bit
///    items produced by walking the model in deterministic topological
///    order and recording node kinds, child wiring, leaf families and
///    scopes, histogram bucket bounds and categorical cardinalities,
///    while excluding every tunable parameter (sum weights, bucket
///    masses, category probabilities, Gaussian mean/stddev);
///  * the **structural hash** (a stable FNV-1a over the signature) and
///    the pairwise isomorphism check (signature equality);
///  * the **canonical parameter vector** `extractParams`, which lists a
///    model's tunable parameters in the exact order the parameterized
///    compilation path assigns weight-table indices — so any member of a
///    merge group can be bound to the group's shared kernel by table
///    substitution alone;
///  * `MergeGroup` discovery over a set of models and per-model
///    structure counts for `spnc-cli --model-info`.
///
/// Two models with equal signatures traverse identically during HiSPN
/// translation (which consumes the same topological walk), so they lower
/// to programs of identical shape; that is the invariant the merged
/// compilation path (KernelCache::getOrCompileMerged) builds on.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_MERGE_MERGE_H
#define SPNC_MERGE_MERGE_H

#include "frontend/Model.h"

#include <cstdint>
#include <span>
#include <vector>

namespace spnc {
namespace merge {

/// The canonical structural signature of a model: position-wise items of
/// the deterministic topological walk, parameters excluded. Equality is
/// exactly structural isomorphism (in the merged-compilation sense: the
/// two models lower to programs of identical shape).
struct StructuralSignature {
  std::vector<uint64_t> Items;

  bool operator==(const StructuralSignature &Other) const = default;
};

/// Computes the structural signature of \p Model. Thread-safe; the model
/// must not be mutated concurrently.
StructuralSignature structuralSignature(const spn::Model &Model);

/// Stable 64-bit hash of the structural signature (FNV-1a over the item
/// bytes); weight-only or leaf-parameter-only edits never change it.
/// Suitable as a disk-cache key component. Thread-safe.
uint64_t structuralHash(const spn::Model &Model);

/// True when \p A and \p B have equal structural signatures, i.e. they
/// can share one parameterized kernel. Thread-safe.
bool isStructurallyIsomorphic(const spn::Model &A, const spn::Model &B);

/// The model's tunable parameters in canonical order: walking the
/// topological order, a Sum node contributes its weights in child order,
/// a Histogram leaf its bucket masses, a Categorical leaf its category
/// probabilities, and a Gaussian leaf (mean, stddev). This is the order
/// the parameterized lowering assigns weight-table indices, and the raw
/// layout `ExecutionEngine::addParamTable` consumes. Thread-safe.
std::vector<double> extractParams(const spn::Model &Model);

/// Structure counters for merge-group debugging (`--model-info`).
struct ModelCounts {
  size_t NumNodes = 0;
  size_t NumEdges = 0;
  size_t NumSums = 0;
  size_t NumProducts = 0;
  size_t NumLeaves = 0;
  /// Size of the canonical parameter vector.
  size_t NumParams = 0;
};

/// Counts nodes, edges, leaves and parameters reachable from the root.
/// Thread-safe.
ModelCounts countModel(const spn::Model &Model);

/// One group of structurally-isomorphic models.
struct MergeGroup {
  /// The group's structural hash (shared by every member).
  uint64_t Hash = 0;
  /// Indices into the input span, in input order. Singleton groups are
  /// reported too — the caller decides whether merging a single model is
  /// worthwhile.
  std::vector<size_t> Members;
};

/// Partitions \p Models into merge groups by structural signature
/// (full signature comparison, not just the hash). Groups are ordered by
/// first appearance; members keep input order. Null entries are skipped.
std::vector<MergeGroup>
discoverMergeGroups(std::span<const spn::Model *const> Models);

} // namespace merge
} // namespace spnc

#endif // SPNC_MERGE_MERGE_H
