//===- workloads_test.cpp - Synthetic workload generator tests -------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace spnc;
using namespace spnc::workloads;

namespace {

TEST(SpeakerWorkloadTest, MatchesPublishedStatistics) {
  // Paper §V-A: ~2569 operations on average, ~49% Gaussian leaves, 26
  // features. Average over several "speakers".
  double TotalNodes = 0, TotalGaussianShare = 0;
  const unsigned NumSpeakers = 8;
  for (unsigned Speaker = 0; Speaker < NumSpeakers; ++Speaker) {
    SpeakerModelOptions Options;
    Options.Seed = Speaker + 1;
    spn::Model Model = generateSpeakerModel(Options);
    std::string Error;
    ASSERT_TRUE(Model.validate(&Error)) << Error;
    spn::ModelStats Stats = Model.computeStats();
    TotalNodes += static_cast<double>(Stats.NumNodes);
    TotalGaussianShare += static_cast<double>(Stats.NumGaussians) /
                          static_cast<double>(Stats.NumNodes);
    EXPECT_EQ(Model.getNumFeatures(), 26u);
  }
  double MeanNodes = TotalNodes / NumSpeakers;
  double MeanGaussianShare = TotalGaussianShare / NumSpeakers;
  EXPECT_NEAR(MeanNodes, 2569.0, 2569.0 * 0.15);
  EXPECT_NEAR(MeanGaussianShare, 0.49, 0.12);
}

TEST(SpeakerWorkloadTest, GenerationIsDeterministic) {
  SpeakerModelOptions Options;
  Options.Seed = 77;
  spn::Model A = generateSpeakerModel(Options);
  spn::Model B = generateSpeakerModel(Options);
  ASSERT_EQ(A.getNumNodes(), B.getNumNodes());
  // Identical likelihoods on identical data.
  std::vector<double> Data = generateSpeechData(Options, 10, 5);
  for (size_t S = 0; S < 10; ++S) {
    std::span<const double> Sample(&Data[S * 26], 26);
    EXPECT_DOUBLE_EQ(A.evalLogLikelihood(Sample),
                     B.evalLogLikelihood(Sample));
  }
}

TEST(SpeakerWorkloadTest, DifferentSeedsDiffer) {
  SpeakerModelOptions A, B;
  A.Seed = 1;
  B.Seed = 2;
  spn::Model MA = generateSpeakerModel(A);
  spn::Model MB = generateSpeakerModel(B);
  std::vector<double> Data = generateSpeechData(A, 5, 9);
  bool AnyDifferent = false;
  for (size_t S = 0; S < 5; ++S) {
    std::span<const double> Sample(&Data[S * 26], 26);
    if (MA.evalLogLikelihood(Sample) != MB.evalLogLikelihood(Sample))
      AnyDifferent = true;
  }
  EXPECT_TRUE(AnyDifferent);
}

TEST(SpeakerWorkloadTest, DataIsFiniteAndInLeafSupport) {
  SpeakerModelOptions Options;
  Options.Seed = 9;
  spn::Model Model = generateSpeakerModel(Options);
  std::vector<double> Data = generateSpeechData(Options, 200, 3);
  for (double X : Data)
    EXPECT_TRUE(std::isfinite(X));
  // Likelihoods are finite: every sample lies in the model's support.
  for (size_t S = 0; S < 200; ++S) {
    double LL = Model.evalLogLikelihood(
        std::span<const double>(&Data[S * 26], 26));
    EXPECT_TRUE(std::isfinite(LL)) << "sample " << S;
  }
}

TEST(SpeakerWorkloadTest, NoisyDataDropsFeatures) {
  SpeakerModelOptions Options;
  std::vector<double> Noisy =
      generateNoisySpeechData(Options, 1000, 11, 0.3);
  size_t NumNaN = 0;
  for (double X : Noisy)
    if (std::isnan(X))
      ++NumNaN;
  double Fraction =
      static_cast<double>(NumNaN) / static_cast<double>(Noisy.size());
  EXPECT_NEAR(Fraction, 0.3, 0.03);
}

TEST(RatSpnWorkloadTest, PaperScaleApproximatesPublishedCounts) {
  RatSpnOptions Options = ratSpnPaperScale();
  spn::Model Model = generateRatSpn(Options, 0);
  spn::ModelStats Stats = Model.computeStats();
  // Paper §V-B1: ~165k leaves, ~170k products, >3k sums per class. The
  // generator approximates the counts within a factor.
  EXPECT_NEAR(static_cast<double>(Stats.NumLeaves), 165000.0, 40000.0);
  EXPECT_NEAR(static_cast<double>(Stats.NumProducts), 170000.0, 60000.0);
  EXPECT_GT(Stats.NumSums, 500u);
  EXPECT_LT(Stats.NumSums, 10000u);
  std::string Error;
  EXPECT_TRUE(Model.validate(&Error)) << Error;
}

TEST(RatSpnWorkloadTest, ClassesShareStructure) {
  RatSpnOptions Options = ratSpnSmallScale();
  spn::Model Class0 = generateRatSpn(Options, 0);
  spn::Model Class1 = generateRatSpn(Options, 1);
  // Identical structure: same node counts by kind ("the random structure
  // ... is identical and only the weights differ", paper §V-B2).
  spn::ModelStats S0 = Class0.computeStats();
  spn::ModelStats S1 = Class1.computeStats();
  EXPECT_EQ(S0.NumNodes, S1.NumNodes);
  EXPECT_EQ(S0.NumSums, S1.NumSums);
  EXPECT_EQ(S0.NumProducts, S1.NumProducts);
  EXPECT_EQ(S0.NumLeaves, S1.NumLeaves);
  // But different parameters: different likelihoods.
  std::vector<double> Data =
      generateImageData(Options.NumFeatures, 2, 3, 5, nullptr);
  std::span<const double> Sample(Data.data(), Options.NumFeatures);
  EXPECT_NE(Class0.evalLogLikelihood(Sample),
            Class1.evalLogLikelihood(Sample));
}

TEST(RatSpnWorkloadTest, SmallScaleValidates) {
  RatSpnOptions Options = ratSpnSmallScale();
  for (unsigned Class = 0; Class < 3; ++Class) {
    spn::Model Model = generateRatSpn(Options, Class);
    std::string Error;
    EXPECT_TRUE(Model.validate(&Error)) << "class " << Class << ": "
                                        << Error;
  }
}

TEST(ImageDataTest, GeneratesLabeledClassData) {
  std::vector<unsigned> Labels;
  std::vector<double> Data = generateImageData(196, 10, 500, 3, &Labels);
  ASSERT_EQ(Labels.size(), 500u);
  ASSERT_EQ(Data.size(), 500u * 196u);
  std::vector<unsigned> ClassCounts(10, 0);
  for (unsigned L : Labels) {
    ASSERT_LT(L, 10u);
    ++ClassCounts[L];
  }
  // All classes occur.
  for (unsigned Count : ClassCounts)
    EXPECT_GT(Count, 10u);
  // Pixels normalized.
  for (double X : Data) {
    EXPECT_GE(X, 0.0);
    EXPECT_LE(X, 1.0);
  }
}

} // namespace
