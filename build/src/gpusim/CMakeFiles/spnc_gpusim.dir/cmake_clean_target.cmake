file(REMOVE_RECURSE
  "libspnc_gpusim.a"
)
