file(REMOVE_RECURSE
  "libspnc_support.a"
)
