file(REMOVE_RECURSE
  "CMakeFiles/spnc_gpusim.dir/GpuSimulator.cpp.o"
  "CMakeFiles/spnc_gpusim.dir/GpuSimulator.cpp.o.d"
  "libspnc_gpusim.a"
  "libspnc_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnc_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
