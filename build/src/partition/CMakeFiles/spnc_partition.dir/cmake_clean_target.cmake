file(REMOVE_RECURSE
  "libspnc_partition.a"
)
