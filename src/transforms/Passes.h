//===- Passes.h - SPNC compilation passes -------------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target-independent compilation steps of the SPNC pipeline (paper
/// §IV-A): lowering HiSPN queries to LoSPN kernels, partitioning large
/// tasks, bufferization with copy avoidance, and the GPU buffer-transfer
/// elimination that keeps intermediate buffers device-resident (paper
/// §IV-C).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_TRANSFORMS_PASSES_H
#define SPNC_TRANSFORMS_PASSES_H

#include "ir/PassManager.h"
#include "partition/Partitioner.h"

#include <memory>

namespace spnc {
namespace transforms {

/// Options of the HiSPN -> LoSPN lowering.
struct LoweringOptions {
  /// Force the compute float width; 0 = decide by error analysis
  /// (paper §III-A: the abstract probability type defers this decision
  /// to the lowering, "based on characteristics ... of the SPN").
  unsigned ComputeWidth = 0;
  /// Linear-space underflow analysis: a conservative lower bound on the
  /// smallest log-probability the graph can produce is propagated bottom
  /// up; if it falls below this threshold (default: near log FLT_MIN),
  /// f32 would underflow to zero and f64 is selected. Log-space
  /// computation is underflow-safe and always uses the narrow type.
  double F32MinLogThreshold = -85.0;
  /// Evidence range assumed for Gaussian leaves in the underflow
  /// analysis, in standard deviations from the mean.
  double GaussianEvidenceSigmas = 4.0;
  /// Merged-model compilation (docs/merging.md): tag every tunable
  /// parameter site (sum-weight constants, leaf distribution ops) with a
  /// unique `param` index attribute so downstream passes keep the
  /// program shape independent of the parameter *values*: CSE keys on
  /// the distinct attributes, the identity canonicalization patterns
  /// skip tagged constants, and codegen gives every tagged site its own
  /// weight-table slot. The indices follow the canonical order of
  /// `merge::extractParams`. Joint/marginal queries only — the
  /// MPE/sampling traceback bakes parameter-dependent mode values.
  bool Parameterize = false;
};

/// Conservative lower bound on the log-probability any single evaluation
/// of the graph can produce (the underflow analysis behind the automatic
/// f32/f64 selection). Exposed for testing.
double estimateMinLogProbability(ir::Operation *GraphOp,
                                 const LoweringOptions &Options);

/// Lowers every HiSPN query (hi_spn.joint_query / hi_spn.mpe_query /
/// hi_spn.sample_query) in the module to a lo_spn.kernel with a single
/// task in tensor form (paper §IV-A3). MPE queries combine weighted sum
/// terms with lo_spn.max (max-product) instead of lo_spn.add.
std::unique_ptr<ir::Pass>
createHiSPNToLoSPNLoweringPass(LoweringOptions Options = {});

/// Splits oversized LoSPN tasks into multiple tasks using the acyclic
/// graph partitioner (paper §IV-A4).
std::unique_ptr<ir::Pass>
createTaskPartitioningPass(partition::PartitionOptions Options = {});

/// Options of the bufferization.
struct BufferizationOptions {
  /// Write task results that are returned by the kernel directly into the
  /// kernel output buffer instead of copying an intermediate buffer
  /// (paper §IV-A5). Disabled only for the copy-avoidance ablation.
  bool AvoidCopies = true;
};

/// Rewrites kernels from tensor form to memref form: explicit buffers,
/// batch_read/batch_write, alloc/dealloc of intermediates (paper §IV-A5).
std::unique_ptr<ir::Pass>
createBufferizationPass(BufferizationOptions Options = {});

/// Marks intermediate buffers as device-resident so the GPU runtime keeps
/// them on the device instead of copying them back and forth between
/// tasks (paper §IV-C).
std::unique_ptr<ir::Pass> createGpuBufferTransferEliminationPass();

} // namespace transforms
} // namespace spnc

#endif // SPNC_TRANSFORMS_PASSES_H
