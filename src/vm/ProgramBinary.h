//===- ProgramBinary.h - Binary encoding of kernel programs -------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of `KernelProgram`s — the analog of the object
/// code / CUBIN module the paper's pipeline produces. The GPU compile
/// pipeline encodes the device portion into this format and attaches it
/// to the host module (paper §IV-C); it also enables caching compiled
/// kernels on disk (`.spnk` files).
///
/// The on-disk layout is a stable, documented contract: see
/// docs/spnk-format.md for the byte-level specification and the version
/// history. Since version 3 the header carries an FNV-1a content
/// checksum over the payload, so truncated or bit-rotted blobs are
/// rejected at decode time instead of executing garbage.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_VM_PROGRAMBINARY_H
#define SPNC_VM_PROGRAMBINARY_H

#include "support/Expected.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <span>
#include <vector>

namespace spnc {
namespace vm {

/// The header version `encodeProgram` writes. History (full table in
/// docs/spnk-format.md): v1 initial format, v2 added the
/// lowering-strategy byte, v3 added the FNV-1a payload checksum, v4
/// added the query-kind byte and the traceback plan (MPE / sampling
/// kernels), v5 added the parameterization header (Parameterized flag,
/// NumParams) and the per-task parameter-site tables of merged-model
/// programs (docs/merging.md). `decodeProgram` accepts every version
/// from 1 to this value; pre-v4 blobs decode as QueryKind::Joint with an
/// empty plan, pre-v5 blobs as non-parameterized programs.
inline constexpr uint32_t kProgramBinaryVersion = 5;

/// Metadata about a decoded blob, reported alongside the program so
/// callers can warn about (and eventually refuse) legacy entries.
struct BinaryInfo {
  /// Header version of the decoded blob.
  uint32_t Version = 0;
  /// True when the blob carried a checksum that was verified (v3+);
  /// false for legacy v1/v2 blobs, which are trusted after a purely
  /// structural decode.
  bool Checksummed = false;
};

/// Encodes \p Program into a self-contained byte blob in the current
/// (v3, checksummed) format. Never fails.
std::vector<uint8_t> encodeProgram(const KernelProgram &Program);

/// Decodes a program previously produced by encodeProgram (any version
/// from v1 to kProgramBinaryVersion). For v3+ blobs the payload checksum
/// is verified before any structural parsing; a mismatch (truncation,
/// bit rot, partial write) fails with a "checksum mismatch" error.
/// \p Info, when non-null, receives the blob's version/checksum status
/// on success. Errors never leave a partially-filled program behind.
Expected<KernelProgram> decodeProgram(std::span<const uint8_t> Blob,
                                      BinaryInfo *Info = nullptr);

} // namespace vm
} // namespace spnc

#endif // SPNC_VM_PROGRAMBINARY_H
