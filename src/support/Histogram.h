//===- Histogram.h - Log-bucketed value histogram with quantiles -------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-memory histogram over non-negative 64-bit values (request
/// latencies in nanoseconds, micro-batch sizes), in the HdrHistogram
/// style: values below 16 are recorded exactly, larger values fall into
/// geometric buckets refined by 8 linear sub-buckets, bounding the
/// relative quantile error at 12.5% while covering the full uint64
/// range in ~500 counters. Count/sum/min/max are tracked exactly, so
/// `mean()` is precise and only `quantile()` is approximate.
///
/// Not internally synchronized — callers that record from several
/// threads (the serving layer) hold their own lock.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_HISTOGRAM_H
#define SPNC_SUPPORT_HISTOGRAM_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace spnc {

/// Fixed-size log-bucketed histogram. Cheap to copy (snapshot-friendly).
class Histogram {
public:
  /// Linear sub-buckets per power of two (the resolution knob).
  static constexpr size_t kSubBuckets = 8;
  /// Values in [0, 2*kSubBuckets) are recorded exactly; 8 sub-buckets
  /// per remaining power of two cover the rest of the uint64 range.
  static constexpr size_t kNumBuckets =
      2 * kSubBuckets + (64 - 4) * kSubBuckets;

  /// Bucket index of \p Value.
  static size_t bucketIndex(uint64_t Value) {
    if (Value < 2 * kSubBuckets)
      return static_cast<size_t>(Value);
    unsigned Msb = 63u - static_cast<unsigned>(std::countl_zero(Value));
    unsigned Shift = Msb - 3;
    return (Msb - 3) * kSubBuckets +
           static_cast<size_t>((Value >> Shift) & (kSubBuckets - 1)) +
           kSubBuckets;
  }

  /// Representative (midpoint) value of bucket \p Index, the value
  /// `quantile` reports for hits landing in it.
  static uint64_t bucketValue(size_t Index) {
    if (Index < 2 * kSubBuckets)
      return static_cast<uint64_t>(Index);
    unsigned Msb = static_cast<unsigned>((Index - kSubBuckets) /
                                         kSubBuckets) + 3;
    uint64_t Sub = (Index - kSubBuckets) % kSubBuckets;
    uint64_t Lower = (kSubBuckets + Sub) << (Msb - 3);
    return Lower + (uint64_t(1) << (Msb - 3)) / 2;
  }

  void record(uint64_t Value) {
    ++Buckets[bucketIndex(Value)];
    ++Count;
    Sum += Value;
    MinValue = Count == 1 ? Value : std::min(MinValue, Value);
    MaxValue = std::max(MaxValue, Value);
  }

  uint64_t getCount() const { return Count; }
  /// 0 when empty.
  uint64_t getMin() const { return Count ? MinValue : 0; }
  uint64_t getMax() const { return MaxValue; }
  uint64_t getSum() const { return Sum; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count)
                 : 0.0;
  }

  /// Approximate \p Q-quantile (Q in [0, 1]): the representative value of
  /// the first bucket whose cumulative count reaches Q * Count, clamped
  /// to the exact observed [min, max]. 0 when empty.
  uint64_t quantile(double Q) const {
    if (Count == 0)
      return 0;
    Q = std::clamp(Q, 0.0, 1.0);
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
    if (Rank >= Count)
      Rank = Count - 1;
    uint64_t Seen = 0;
    for (size_t I = 0; I < kNumBuckets; ++I) {
      Seen += Buckets[I];
      if (Seen > Rank)
        return std::clamp(bucketValue(I), getMin(), getMax());
    }
    return MaxValue;
  }

  /// Adds every recorded value of \p Other into this histogram.
  void merge(const Histogram &Other) {
    for (size_t I = 0; I < kNumBuckets; ++I)
      Buckets[I] += Other.Buckets[I];
    if (Other.Count) {
      MinValue = Count ? std::min(MinValue, Other.MinValue)
                       : Other.MinValue;
      MaxValue = std::max(MaxValue, Other.MaxValue);
    }
    Count += Other.Count;
    Sum += Other.Sum;
  }

  const std::array<uint64_t, kNumBuckets> &getBuckets() const {
    return Buckets;
  }

private:
  std::array<uint64_t, kNumBuckets> Buckets{};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t MinValue = 0;
  uint64_t MaxValue = 0;
};

} // namespace spnc

#endif // SPNC_SUPPORT_HISTOGRAM_H
