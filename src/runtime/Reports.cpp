//===- Reports.cpp - Machine-readable compiler/cache reports -------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/Reports.h"

#include "support/JSON.h"
#include "support/RawOStream.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace spnc;
using namespace spnc::runtime;

namespace {

/// The registered stage description matching \p Name, or nullptr.
const PipelineStage *findStage(const std::vector<PipelineStage> *Stages,
                               const std::string &Name) {
  if (!Stages)
    return nullptr;
  for (const PipelineStage &Stage : *Stages)
    if (Stage.Name == Name)
      return &Stage;
  return nullptr;
}

/// Writes a report through \p Emit to \p Path; shared by the two
/// to-file entry points.
template <typename EmitFn>
LogicalResult writeReportFile(const std::string &Path,
                              std::string *ErrorMessage, EmitFn Emit) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    if (ErrorMessage)
      *ErrorMessage = "cannot create '" + Path +
                      "': " + std::strerror(errno);
    return failure();
  }
  {
    FileOStream OS(File);
    Emit(OS);
    OS << '\n';
  }
  if (std::fclose(File) != 0) {
    if (ErrorMessage)
      *ErrorMessage = "cannot flush '" + Path +
                      "': " + std::strerror(errno);
    return failure();
  }
  return success();
}

/// Emits the members of one pipeline-report document into an object
/// \p W has already opened; shared by the single- and multi-model
/// entry points.
void emitPipelineReportMembers(json::Writer &W, const CompileStats &Stats,
                               const std::vector<PipelineStage> *Stages) {
  W.key("stages");
  W.beginArray();
  for (const StageTiming &Timing : Stats.Stages) {
    const PipelineStage *Stage = findStage(Stages, Timing.Name);
    W.beginObject();
    W.member("name", Timing.Name);
    W.member("detail", Stage ? std::string_view(Stage->Detail)
                             : std::string_view(""));
    W.member("diagnostic", Stage ? Stage->Diagnostic : false);
    W.member("wall_ns", Timing.WallNs);
    W.endObject();
  }
  W.endArray();

  W.key("op_counts");
  W.beginArray();
  for (const StageOpCount &Count : Stats.OpCounts) {
    W.beginObject();
    W.member("stage", Count.Stage);
    W.member("num_ops", static_cast<uint64_t>(Count.NumOps));
    W.endObject();
  }
  W.endArray();

  W.key("passes");
  W.beginArray();
  for (const ir::PassTiming &Pass : Stats.PassTimings) {
    W.beginObject();
    W.member("name", Pass.PassName);
    W.member("wall_ns", Pass.WallNs);
    W.endObject();
  }
  W.endArray();

  W.key("codegen");
  W.beginObject();
  W.member("isel_ns", Stats.Codegen.IselNs);
  W.member("regalloc_ns", Stats.Codegen.RegAllocNs);
  W.member("peephole_ns", Stats.Codegen.PeepholeNs);
  W.member("scheduling_ns", Stats.Codegen.SchedulingNs);
  W.endObject();

  W.member("translation_ns", Stats.TranslationNs);
  W.member("binary_encode_ns", Stats.BinaryEncodeNs);
  W.member("total_ns", Stats.TotalNs);
  W.member("num_tasks", static_cast<uint64_t>(Stats.NumTasks));
  W.member("num_instructions",
           static_cast<uint64_t>(Stats.NumInstructions));
}

} // namespace

void spnc::runtime::writePipelineReport(
    const CompileStats &Stats, const std::vector<PipelineStage> *Stages,
    RawOStream &OS) {
  json::Writer W(OS);
  W.beginObject();
  emitPipelineReportMembers(W, Stats, Stages);
  W.endObject();
}

LogicalResult spnc::runtime::writePipelineReport(
    const CompileStats &Stats, const std::vector<PipelineStage> *Stages,
    const std::string &Path, std::string *ErrorMessage) {
  return writeReportFile(Path, ErrorMessage, [&](RawOStream &OS) {
    writePipelineReport(Stats, Stages, OS);
  });
}

void spnc::runtime::writePipelineReports(
    const std::vector<ModelPipelineReport> &Reports, RawOStream &OS) {
  json::Writer W(OS);
  W.beginArray();
  for (const ModelPipelineReport &Report : Reports) {
    W.beginObject();
    W.member("model", Report.Model);
    emitPipelineReportMembers(W, Report.Stats, Report.Stages);
    W.endObject();
  }
  W.endArray();
}

LogicalResult spnc::runtime::writePipelineReports(
    const std::vector<ModelPipelineReport> &Reports,
    const std::string &Path, std::string *ErrorMessage) {
  return writeReportFile(Path, ErrorMessage, [&](RawOStream &OS) {
    writePipelineReports(Reports, OS);
  });
}

void spnc::runtime::writeKernelCacheReport(
    const KernelCache::Stats &Stats,
    const KernelCache::Config *CacheConfig, RawOStream &OS) {
  json::Writer W(OS);
  W.beginObject();
  W.member("hits", Stats.Hits);
  W.member("misses", Stats.Misses);
  W.member("disk_hits", Stats.DiskHits);
  W.member("recompiles", Stats.Recompiles);
  W.member("evictions", Stats.Evictions);
  W.member("disk_pruned_files", Stats.DiskPrunedFiles);
  W.member("disk_pruned_bytes", Stats.DiskPrunedBytes);
  W.member("corrupted_disk_entries", Stats.CorruptedDiskEntries);
  W.member("legacy_disk_entries", Stats.LegacyDiskEntries);
  if (CacheConfig) {
    W.key("config");
    W.beginObject();
    W.member("directory", CacheConfig->Directory);
    W.member("max_entries",
             static_cast<uint64_t>(CacheConfig->MaxEntries));
    W.member("disk_budget_bytes", CacheConfig->DiskBudgetBytes);
    W.endObject();
  }
  W.endObject();
}

LogicalResult spnc::runtime::writeKernelCacheReport(
    const KernelCache::Stats &Stats,
    const KernelCache::Config *CacheConfig, const std::string &Path,
    std::string *ErrorMessage) {
  return writeReportFile(Path, ErrorMessage, [&](RawOStream &OS) {
    writeKernelCacheReport(Stats, CacheConfig, OS);
  });
}
