//===- bench_fig08_speaker_noisy.cpp - Paper Fig. 8 reproduction -----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces paper Fig. 8: speedups over SPFlow on noisy speech samples
/// evaluated with marginalization (NaN evidence). The Tensorflow
/// translation does not support marginalization, so — exactly as in the
/// paper — no TF rows appear. The noisy scenario has ~5x more samples,
/// which benefits the GPU (more parallel work per transfer).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace spnc;
using namespace spnc::bench;
using namespace spnc::runtime;

namespace {

const std::vector<SpeakerInstance> &speakers() {
  static std::vector<SpeakerInstance> Instances =
      makeSpeakerSet(/*Noisy=*/true);
  return Instances;
}

spn::QueryConfig marginalQuery() {
  spn::QueryConfig Config;
  Config.SupportMarginal = true;
  return Config;
}

CompilerOptions cpuOptions(unsigned VectorWidth) {
  CompilerOptions Options;
  Options.OptLevel = 2;
  Options.Execution.VectorWidth = VectorWidth;
  return Options;
}

std::vector<double> runSpnc(const CompilerOptions &Options) {
  std::vector<double> Times;
  for (const SpeakerInstance &Instance : speakers()) {
    Expected<CompiledKernel> Kernel =
        compileModel(Instance.Model, marginalQuery(), Options);
    if (!Kernel)
      continue;
    std::vector<double> Output(Instance.NumSamples);
    Times.push_back(runReportSeconds(*Kernel, Instance.Data.data(),
                                     Output.data(),
                                     Instance.NumSamples));
  }
  return Times;
}

} // namespace

static void BM_SPFlowNoisy(benchmark::State &State) {
  const SpeakerInstance &Instance = speakers()[0];
  baselines::SPFlowInterpreter Interp(Instance.Model);
  std::vector<double> Output(Instance.NumSamples);
  for (auto _ : State)
    Interp.execute(Instance.Data.data(), Output.data(),
                   Instance.NumSamples);
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations() * Instance.NumSamples));
}
BENCHMARK(BM_SPFlowNoisy)->Unit(benchmark::kMillisecond)->MinTime(0.2);

static void BM_SpncCpuNoisy(benchmark::State &State) {
  const SpeakerInstance &Instance = speakers()[0];
  Expected<CompiledKernel> Kernel = compileModel(
      Instance.Model, marginalQuery(),
      cpuOptions(static_cast<unsigned>(State.range(0))));
  if (!Kernel) {
    State.SkipWithError("compile failed");
    return;
  }
  std::vector<double> Output(Instance.NumSamples);
  for (auto _ : State)
    Kernel->execute(Instance.Data.data(), Output.data(),
                    Instance.NumSamples);
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations() * Instance.NumSamples));
}
BENCHMARK(BM_SpncCpuNoisy)
    ->Arg(1)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Fig. 8", "speedup over SPFlow, noisy speech with "
                        "marginalization (no TF: unsupported)");

  std::vector<double> SpflowTimes;
  for (const SpeakerInstance &Instance : speakers()) {
    baselines::SPFlowInterpreter Interp(Instance.Model);
    std::vector<double> Output(Instance.NumSamples);
    SpflowTimes.push_back(timeSeconds([&] {
      Interp.execute(Instance.Data.data(), Output.data(),
                     Instance.NumSamples);
    }));
  }

  std::vector<double> NoVec = runSpnc(cpuOptions(1));
  std::vector<double> Avx2 = runSpnc(cpuOptions(8));
  std::vector<double> Avx512 = runSpnc(cpuOptions(16));
  CompilerOptions GpuOpts;
  GpuOpts.OptLevel = 2;
  GpuOpts.TheTarget = Target::GPU;
  GpuOpts.GpuBlockSize = 64;
  std::vector<double> Gpu = runSpnc(GpuOpts);

  auto PrintRow = [&](const char *Name,
                      const std::vector<double> &Times,
                      const char *Note = "") {
    std::vector<double> Speedups;
    for (size_t I = 0; I < Times.size() && I < SpflowTimes.size(); ++I)
      Speedups.push_back(SpflowTimes[I] / Times[I]);
    std::printf("%-24s geo-mean speedup over SPFlow = %7.2fx   "
                "(exec %8.3f ms) %s\n",
                Name, geoMean(Speedups), geoMean(Times) * 1e3, Note);
  };
  PrintRow("SPFlow (baseline)", SpflowTimes);
  PrintRow("SPNC CPU (no vec)", NoVec);
  PrintRow("SPNC CPU AVX2 (w=8)", Avx2);
  PrintRow("SPNC CPU AVX512 (w=16)", Avx512);
  PrintRow("SPNC GPU (sim)", Gpu, "[simulated clock]");
  std::printf("paper shape: same ordering as Fig. 7; the larger noisy "
              "batch moves the GPU closer to (paper: past) the "
              "non-vectorized CPU\n");
  benchmark::Shutdown();
  return 0;
}
