//===- CppEmitter.cpp - KernelProgram -> standalone C++ source ----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
//
// The emitted translation unit is structured like the scalar
// interpreter's execution of one chunk covering the whole batch:
//
//   * one std::vector per intermediate buffer ([slot][sample] layout),
//   * one sample loop per kernel step, with a fresh register file per
//     iteration — a straight-line basic block the host compiler's
//     auto-vectorizer can work on,
//   * arithmetic copied cast-for-cast from vm::executeSample, with all
//     constants spelled as hexadecimal float literals so no precision
//     is lost in the round trip through source text.
//
//===----------------------------------------------------------------------===//

#include "backend/CppEmitter.h"

#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

using namespace spnc;
using namespace spnc::backend;
using namespace spnc::vm;

namespace {

/// printf-append onto \p Out.
void appendf(std::string &Out, const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  char Buffer[512];
  int Length = std::vsnprintf(Buffer, sizeof(Buffer), Format, Args);
  va_end(Args);
  if (Length > 0)
    Out.append(Buffer, static_cast<size_t>(Length));
}

/// Renders \p Value as a C++17 expression of type double that
/// round-trips exactly: hexadecimal float literals for finite values,
/// numeric_limits spellings for the specials.
std::string formatDouble(double Value) {
  if (std::isnan(Value))
    return "std::numeric_limits<double>::quiet_NaN()";
  if (std::isinf(Value))
    return Value > 0 ? "std::numeric_limits<double>::infinity()"
                     : "-std::numeric_limits<double>::infinity()";
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%a", Value);
  return Buffer;
}

/// The same, pre-cast to the kernel's compute type.
std::string formatValue(double Value) {
  return "(value_t)" + formatDouble(Value);
}

/// Element-index expression for buffer \p BufIdx at compile-time column
/// \p Col and loop variable "i". One chunk covers the whole batch, so
/// Offset is 0 and the transposed stride is the sample count "n"
/// (matching the CPU executor's binding of a single full chunk).
std::string indexExpr(const KernelProgram &Program, uint32_t BufIdx,
                      uint32_t Col) {
  const BufferInfo &Info = Program.Buffers[BufIdx];
  std::string Out;
  if (Info.Transposed) {
    if (Col == 0)
      return "i";
    appendf(Out, "(size_t)%u * n + i", Col);
  } else {
    if (Info.Columns == 1)
      return "i";
    appendf(Out, "i * %u + %u", Info.Columns, Col);
  }
  return Out;
}

/// Name of the emitted storage for buffer \p BufIdx.
std::string bufferName(const KernelProgram &Program, uint32_t BufIdx) {
  switch (Program.Buffers[BufIdx].Role) {
  case BufferInfo::Kind::Input:
    return "in";
  case BufferInfo::Kind::Output:
    return "out";
  case BufferInfo::Kind::Intermediate:
    break;
  }
  std::string Name = "b";
  Name += std::to_string(BufIdx);
  return Name;
}

/// Expression loading one element of \p BufIdx as value_t (external
/// buffers are double and narrowed on load, like the interpreter).
std::string loadExpr(const KernelProgram &Program, uint32_t BufIdx,
                     uint32_t Col) {
  std::string Element =
      bufferName(Program, BufIdx) + "[" + indexExpr(Program, BufIdx, Col) + "]";
  if (Program.Buffers[BufIdx].Role == BufferInfo::Kind::Intermediate)
    return Element;
  return "(value_t)" + Element;
}

/// Statement storing \p Value into one element of \p BufIdx (external
/// buffers widen back to double, like the interpreter).
std::string storeStmt(const KernelProgram &Program, uint32_t BufIdx,
                      uint32_t Col, const std::string &Value) {
  std::string Element =
      bufferName(Program, BufIdx) + "[" + indexExpr(Program, BufIdx, Col) + "]";
  if (Program.Buffers[BufIdx].Role == BufferInfo::Kind::Intermediate)
    return Element + " = " + Value + ";";
  return Element + " = (double)(" + Value + ");";
}

std::string reg(uint32_t Index) {
  return "r[" + std::to_string(Index) + "]";
}

/// Offsets of each task's side tables inside the concatenated per-model
/// parameter block of a parameterized program. The layout per task —
/// const pool, (Mean, InvStdDev, Coefficient) per Gaussian, each table's
/// values, one value per select, tasks concatenated in order — is
/// exactly what vm::flattenTaskTables produces, so the runtime can bind
/// a weight table with vm::bindParams and flatten the result into a
/// block the emitted kernel consumes directly.
struct ParamLayout {
  std::vector<size_t> CpBase;
  std::vector<size_t> GaussBase;
  std::vector<std::vector<size_t>> TableBase;
  std::vector<size_t> SelectBase;
  size_t Total = 0;
};

ParamLayout buildParamLayout(const KernelProgram &Program) {
  ParamLayout Layout;
  size_t Off = 0;
  for (const TaskProgram &Task : Program.Tasks) {
    Layout.CpBase.push_back(Off);
    Off += Task.ConstPool.size();
    Layout.GaussBase.push_back(Off);
    Off += Task.Gaussians.size() * 3;
    Layout.TableBase.emplace_back();
    for (const LookupTable &Table : Task.Tables) {
      Layout.TableBase.back().push_back(Off);
      Off += Table.Values.size();
    }
    Layout.SelectBase.push_back(Off);
    Off += Task.Selects.size();
  }
  Layout.Total = Off;
  return Layout;
}

/// Expression reading parameter-block slot \p Idx as value_t.
std::string paramExpr(size_t Idx) {
  return "(value_t)p[" + std::to_string(Idx) + "]";
}

/// Emits the body of one instruction at indentation \p Indent. The
/// arithmetic mirrors vm::executeSample cast for cast; see that
/// function for the semantics being reproduced. With \p PL non-null
/// (parameterized programs) every side-table read goes through the
/// parameter block "p" instead of a baked literal; the values are the
/// same doubles, so the two forms stay bit-identical.
void emitInstruction(std::string &Out, const KernelProgram &Program,
                     const TaskProgram &Task, size_t TaskIdx,
                     const Instruction &I, const char *Indent,
                     const ParamLayout *PL = nullptr) {
  switch (I.Op) {
  case OpCode::Const:
    appendf(Out, "%s%s = %s;\n", Indent, reg(I.Dst).c_str(),
            PL ? paramExpr(PL->CpBase[TaskIdx] + I.A).c_str()
               : formatValue(Task.ConstPool[I.A]).c_str());
    break;
  case OpCode::Load: {
    const BufferAccess &Access = Task.Loads[I.A];
    appendf(Out, "%s%s = %s;\n", Indent, reg(I.Dst).c_str(),
            loadExpr(Program, Access.Buffer, Access.Index).c_str());
    break;
  }
  case OpCode::Store: {
    const BufferAccess &Access = Task.Stores[I.A];
    appendf(Out, "%s%s\n", Indent,
            storeStmt(Program, Access.Buffer, Access.Index, reg(I.Dst))
                .c_str());
    break;
  }
  case OpCode::Add:
    appendf(Out, "%s%s = %s + %s;\n", Indent, reg(I.Dst).c_str(),
            reg(I.A).c_str(), reg(I.B).c_str());
    break;
  case OpCode::Mul:
    appendf(Out, "%s%s = %s * %s;\n", Indent, reg(I.Dst).c_str(),
            reg(I.A).c_str(), reg(I.B).c_str());
    break;
  case OpCode::FusedMulAdd:
    appendf(Out, "%s%s = %s * %s + %s;\n", Indent, reg(I.Dst).c_str(),
            reg(I.A).c_str(), reg(I.B).c_str(), reg(I.C).c_str());
    break;
  case OpCode::LogSumExp:
    appendf(Out, "%s%s = spnc_log_sum_exp(%s, %s);\n", Indent,
            reg(I.Dst).c_str(), reg(I.A).c_str(), reg(I.B).c_str());
    break;
  case OpCode::Max:
    // Ties keep A so MPE argmax ties resolve to the lowest child index,
    // like the interpreter.
    appendf(Out, "%s%s = %s >= %s ? %s : %s;\n", Indent,
            reg(I.Dst).c_str(), reg(I.A).c_str(), reg(I.B).c_str(),
            reg(I.A).c_str(), reg(I.B).c_str());
    break;
  case OpCode::Gaussian:
  case OpCode::GaussianLog: {
    const GaussianParams &P = Task.Gaussians[I.B];
    appendf(Out, "%s{\n%s  value_t x = %s;\n", Indent, Indent,
            reg(I.A).c_str());
    const char *Body = Indent;
    std::string Deeper = std::string(Indent) + "  ";
    if (P.SupportMarginal) {
      appendf(Out, "%s  if (std::isnan(x)) {\n%s    %s = %s;\n%s  } else {\n",
              Indent, Indent, reg(I.Dst).c_str(),
              formatValue(P.MarginalValue).c_str(), Indent);
      Deeper += "  ";
      Body = Deeper.c_str();
    } else {
      Body = Deeper.c_str();
    }
    size_t GaussSlot =
        PL ? PL->GaussBase[TaskIdx] + 3 * static_cast<size_t>(I.B) : 0;
    std::string Mean = PL ? paramExpr(GaussSlot) : formatValue(P.Mean);
    std::string InvStdDev =
        PL ? paramExpr(GaussSlot + 1) : formatValue(P.InvStdDev);
    std::string Coefficient =
        PL ? paramExpr(GaussSlot + 2) : formatValue(P.Coefficient);
    appendf(Out, "%svalue_t norm = (x - %s) * %s;\n", Body, Mean.c_str(),
            InvStdDev.c_str());
    if (I.Op == OpCode::Gaussian)
      appendf(Out,
              "%s%s = %s * "
              "(value_t)std::exp((double)((value_t)-0.5 * norm * norm));\n",
              Body, reg(I.Dst).c_str(), Coefficient.c_str());
    else
      appendf(Out, "%s%s = %s - (value_t)0.5 * norm * norm;\n", Body,
              reg(I.Dst).c_str(), Coefficient.c_str());
    if (P.SupportMarginal)
      appendf(Out, "%s  }\n", Indent);
    appendf(Out, "%s}\n", Indent);
    break;
  }
  case OpCode::TableLookup: {
    const LookupTable &Table = Task.Tables[I.B];
    std::string TableName =
        PL ? "(p + " + std::to_string(PL->TableBase[TaskIdx][I.B]) + ")"
           : "kTable_t" + std::to_string(TaskIdx) + "_" +
                 std::to_string(I.B);
    appendf(Out, "%s{\n%s  value_t x = %s;\n", Indent, Indent,
            reg(I.A).c_str());
    std::string Deeper = std::string(Indent) + "  ";
    const char *Body = Deeper.c_str();
    if (Table.SupportMarginal) {
      appendf(Out, "%s  if (std::isnan(x)) {\n%s    %s = %s;\n%s  } else {\n",
              Indent, Indent, reg(I.Dst).c_str(),
              formatValue(Table.MarginalValue).c_str(), Indent);
      Deeper += "  ";
      Body = Deeper.c_str();
    }
    appendf(Out,
            "%slong long idx = (long long)std::floor((double)x - %s);\n",
            Body, formatDouble(Table.Lo).c_str());
    appendf(Out,
            "%s%s = (idx >= 0 && idx < (long long)%zu) ? "
            "(value_t)%s[idx] : %s;\n",
            Body, reg(I.Dst).c_str(), Table.Values.size(),
            TableName.c_str(), formatValue(Table.DefaultValue).c_str());
    if (Table.SupportMarginal)
      appendf(Out, "%s  }\n", Indent);
    appendf(Out, "%s}\n", Indent);
    break;
  }
  case OpCode::SelectInRange: {
    const SelectRange &Range = Task.Selects[I.B];
    // NaN compares false, so marginalized evidence keeps the previous
    // register value — same as the interpreter.
    std::string Value = PL ? paramExpr(PL->SelectBase[TaskIdx] + I.B)
                           : formatValue(Range.Value);
    appendf(Out, "%sif (%s >= %s && %s < %s) %s = %s;\n", Indent,
            reg(I.A).c_str(), formatValue(Range.Lo).c_str(),
            reg(I.A).c_str(), formatValue(Range.Hi).c_str(),
            reg(I.Dst).c_str(), Value.c_str());
    break;
  }
  case OpCode::NanBlend:
    appendf(Out, "%sif (std::isnan(%s)) %s = %s;\n", Indent,
            reg(I.A).c_str(), reg(I.Dst).c_str(),
            PL ? paramExpr(PL->CpBase[TaskIdx] + I.B).c_str()
               : formatValue(Task.ConstPool[I.B]).c_str());
    break;
  case OpCode::AddN:
  case OpCode::MulN: {
    // Accumulate in Args order from the identity, exactly like the
    // interpreter's scalar loop.
    bool IsAdd = I.Op == OpCode::AddN;
    appendf(Out, "%s{\n%s  value_t acc = (value_t)%d;\n", Indent, Indent,
            IsAdd ? 0 : 1);
    for (uint32_t N = 0; N < I.B; ++N)
      appendf(Out, "%s  acc %s= %s;\n", Indent, IsAdd ? "+" : "*",
              reg(Task.Args[I.A + N]).c_str());
    appendf(Out, "%s  %s = acc;\n%s}\n", Indent, reg(I.Dst).c_str(),
            Indent);
    break;
  }
  case OpCode::LogSumExpN: {
    appendf(Out, "%s{\n%s  value_t max = kNegInf;\n", Indent, Indent);
    for (uint32_t N = 0; N < I.B; ++N) {
      std::string Operand = reg(Task.Args[I.A + N]);
      appendf(Out, "%s  max = %s > max ? %s : max;\n", Indent,
              Operand.c_str(), Operand.c_str());
    }
    appendf(Out,
            "%s  if (max == kNegInf) {\n%s    %s = max;\n%s  } else {\n",
            Indent, Indent, reg(I.Dst).c_str(), Indent);
    appendf(Out, "%s    value_t sum = (value_t)0;\n", Indent);
    for (uint32_t N = 0; N < I.B; ++N)
      appendf(Out, "%s    sum += (value_t)std::exp((double)(%s - max));\n",
              Indent, reg(Task.Args[I.A + N]).c_str());
    appendf(Out,
            "%s    %s = max + (value_t)std::log((double)sum);\n%s  }\n%s}\n",
            Indent, reg(I.Dst).c_str(), Indent, Indent);
    break;
  }
  }
}

/// Emits the traceback plan tables, the deterministic RNG replica and
/// the downward walker into the anonymous namespace of the generated
/// translation unit. Everything here mirrors support/Random.h and
/// vm/Traceback.h word for word — the exact streams are part of the
/// reproducibility contract (docs/queries.md).
void emitTracebackSupport(std::string &Out, const KernelProgram &Program) {
  const TracebackPlan &Plan = Program.Plan;
  Out += "\n// Traceback plan: kind 0=Choice 1=Both 2=Pass 3=LeafTable "
         "4=LeafGaussian.\n"
         "struct spnc_plan_node { int kind; int a; int b; unsigned rega;\n"
         "  unsigned regb; unsigned feature; double mean; double stddev;\n"
         "  double mode; unsigned tbegin; unsigned tcount; };\n";
  appendf(Out, "static const spnc_plan_node kPlan[%zu] = {\n",
          Plan.Nodes.size());
  for (const PlanNode &N : Plan.Nodes)
    appendf(Out, "  {%d, %d, %d, %uu, %uu, %uu, %s, %s, %s, %uu, %uu},\n",
            static_cast<int>(N.Kind), N.A, N.B, N.RegA, N.RegB, N.Feature,
            formatDouble(N.Mean).c_str(), formatDouble(N.StdDev).c_str(),
            formatDouble(N.Mode).c_str(), N.TableBegin, N.TableCount);
  Out += "};\n";
  appendf(Out, "static const double kPlanBuckets[%zu] = {\n",
          Plan.Buckets.empty() ? size_t(1) : Plan.Buckets.size());
  if (Plan.Buckets.empty())
    Out += "  0.0,\n";
  for (size_t I = 0; I < Plan.Buckets.size(); ++I) {
    appendf(Out, "  %s,", formatDouble(Plan.Buckets[I]).c_str());
    Out += (I % 4 == 3 || I + 1 == Plan.Buckets.size()) ? "\n" : "";
  }
  Out += "};\n";
  appendf(Out, "const int kPlanRoot = %d;\n", Plan.Root);

  Out += R"(
// SplitMix64-seeded xoshiro256** (replica of support/Random.h).
struct spnc_rng { unsigned long long s[4]; };

inline unsigned long long spnc_rotl(unsigned long long x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline void spnc_rng_seed(spnc_rng &r, unsigned long long seed) {
  unsigned long long x = seed;
  for (int i = 0; i < 4; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    unsigned long long z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    r.s[i] = z ^ (z >> 31);
  }
}

inline unsigned long long spnc_rng_next(spnc_rng &r) {
  unsigned long long result = spnc_rotl(r.s[1] * 5, 7) * 9;
  unsigned long long t = r.s[1] << 17;
  r.s[2] ^= r.s[0];
  r.s[3] ^= r.s[1];
  r.s[1] ^= r.s[2];
  r.s[0] ^= r.s[3];
  r.s[2] ^= t;
  r.s[3] = spnc_rotl(r.s[3], 45);
  return result;
}

inline double spnc_rng_uniform(spnc_rng &r) {
  return (double)(spnc_rng_next(r) >> 11) * 0x1.0p-53;
}

inline unsigned long long spnc_per_sample_seed(unsigned long long seed,
                                               unsigned long long idx) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (idx + 1));
}

// Cache-free Box-Muller cosine branch: exactly two uniforms per call.
inline double spnc_draw_normal(spnc_rng &r) {
  double u1 = 1.0 - spnc_rng_uniform(r);
  double u2 = spnc_rng_uniform(r);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

// Single-uniform CDF walk over (lb, ub, mass) triples.
inline double spnc_draw_table_bucket(const double *triples, unsigned count,
                                     spnc_rng &r) {
  double total = 0.0;
  for (unsigned i = 0; i < count; ++i)
    total += triples[3 * i + 2];
  double u = spnc_rng_uniform(r) * total;
  double acc = 0.0;
  for (unsigned i = 0; i < count; ++i) {
    acc += triples[3 * i + 2];
    if (u < acc)
      return triples[3 * i];
  }
  for (unsigned i = count; i > 0; --i)
    if (triples[3 * (i - 1) + 2] > 0.0)
      return triples[3 * (i - 1)];
  return 0.0;
}
)";

  // The walker (mirror of vm::runTraceback). A null rng selects the MPE
  // argmax descent. Every plan node is pushed at most once, so a stack
  // of node-count capacity suffices.
  appendf(Out,
          "\ninline void spnc_traceback(const value_t *r, "
          "const double *ev, double *out,\n"
          "                           spnc_rng *rng) {\n"
          "  int stack[%zu];\n"
          "  int top = 0;\n"
          "  stack[top++] = kPlanRoot;\n"
          "  while (top > 0) {\n"
          "    const spnc_plan_node &n = kPlan[stack[--top]];\n"
          "    switch (n.kind) {\n"
          "    case 0: {\n"
          "      double va = (double)r[n.rega];\n"
          "      double vb = (double)r[n.regb];\n"
          "      bool take_b;\n"
          "      if (rng) {\n"
          "        double pb = -1.0;\n",
          Plan.Nodes.size() + 1);
  if (Program.LogSpace)
    Out += "        double hi = va >= vb ? va : vb;\n"
           "        double lo = va >= vb ? vb : va;\n"
           "        if (!(std::isinf(hi) && hi < 0.0)) {\n"
           "          double total = hi + std::log1p(std::exp(lo - hi));\n"
           "          pb = std::exp(vb - total);\n"
           "        }\n";
  else
    Out += "        double total = va + vb;\n"
           "        if (total > 0.0)\n"
           "          pb = vb / total;\n";
  Out += "        take_b = spnc_rng_uniform(*rng) < pb;\n"
         "      } else {\n"
         "        take_b = vb > va;\n"
         "      }\n"
         "      stack[top++] = take_b ? n.b : n.a;\n"
         "      break;\n"
         "    }\n"
         "    case 1:\n"
         "      stack[top++] = n.b;\n"
         "      stack[top++] = n.a;\n"
         "      break;\n"
         "    case 2:\n"
         "      stack[top++] = n.a;\n"
         "      break;\n"
         "    case 3: {\n"
         "      double e = ev[n.feature];\n"
         "      if (!std::isnan(e))\n"
         "        out[n.feature] = e;\n"
         "      else if (rng)\n"
         "        out[n.feature] = spnc_draw_table_bucket(\n"
         "            kPlanBuckets + n.tbegin, n.tcount, *rng);\n"
         "      else\n"
         "        out[n.feature] = n.mode;\n"
         "      break;\n"
         "    }\n"
         "    case 4: {\n"
         "      double e = ev[n.feature];\n"
         "      if (!std::isnan(e))\n"
         "        out[n.feature] = e;\n"
         "      else if (rng)\n"
         "        out[n.feature] = n.mean + n.stddev * "
         "spnc_draw_normal(*rng);\n"
         "      else\n"
         "        out[n.feature] = n.mode;\n"
         "      break;\n"
         "    }\n"
         "    }\n"
         "  }\n"
         "}\n";
}

/// Emits the MPE or sampling entry point: per sample, the single task's
/// upward pass into a fresh register file, an evidence pre-fill of the
/// output row, then the downward traceback.
void emitQueryEntry(std::string &Out, const KernelProgram &Program) {
  const TaskProgram &Task = Program.Tasks[0];
  uint32_t NumFeatures = 0;
  for (const BufferInfo &Info : Program.Buffers)
    if (Info.Role == BufferInfo::Kind::Input)
      NumFeatures = Info.Columns;
  bool Mpe = Program.Query == QueryKind::Mpe;
  if (Mpe)
    appendf(Out,
            "\nextern \"C\" void %s(const double *__restrict in, "
            "double *__restrict assign,\n"
            "                                 double *__restrict logp, "
            "size_t n) {\n",
            kCppMpeSymbol);
  else
    appendf(Out,
            "\nextern \"C\" void %s(const double *__restrict in, "
            "double *__restrict samples,\n"
            "                                    size_t n, "
            "unsigned long long seed) {\n",
            kCppSampleSymbol);
  Out += "  std::vector<double> up(n);\n"
         "  double *out = up.data();\n";
  appendf(Out,
          "  for (size_t i = 0; i < n; ++i) {\n"
          "    value_t r[%u] = {};\n",
          Task.NumRegisters ? Task.NumRegisters : 1u);
  for (const Instruction &I : Task.Code)
    emitInstruction(Out, Program, Task, 0, I, "    ");
  appendf(Out,
          "    double *row = %s + i * %uu;\n"
          "    const double *ev = in + i * %uu;\n"
          "    for (unsigned f = 0; f < %uu; ++f)\n"
          "      row[f] = ev[f];\n",
          Mpe ? "assign" : "samples", NumFeatures, NumFeatures,
          NumFeatures);
  if (Mpe) {
    Out += "    spnc_traceback(r, ev, row, 0);\n";
    if (Program.LogSpace)
      Out += "    if (logp) logp[i] = out[i];\n";
    else
      Out += "    if (logp) logp[i] = std::log(out[i]);\n";
  } else {
    Out += "    spnc_rng rng;\n"
           "    spnc_rng_seed(rng, spnc_per_sample_seed(seed, i));\n"
           "    spnc_traceback(r, ev, row, &rng);\n";
  }
  Out += "  }\n"
         "}\n";
}

} // namespace

Expected<std::string>
spnc::backend::emitCppKernel(const KernelProgram &Program) {
  if (Program.NumInputs != 1 || Program.NumOutputs != 1)
    return makeError(
        "cpp emitter supports kernels with one input and one output "
        "buffer (got " +
        std::to_string(Program.NumInputs) + " inputs, " +
        std::to_string(Program.NumOutputs) + " outputs)");
  bool NeedsPlan = Program.Query == QueryKind::Mpe ||
                   Program.Query == QueryKind::Sample;
  if (Program.Parameterized && NeedsPlan)
    return makeError("cpp emitter: parameterized programs support "
                     "joint/marginal queries only (docs/merging.md)");
  if (NeedsPlan) {
    if (Program.Plan.empty())
      return makeError(
          "cpp emitter: MPE/sampling program carries no traceback plan");
    if (Program.Tasks.size() != 1 || Program.Steps.size() != 1 ||
        Program.Steps[0].Task != 0)
      return makeError(
          "cpp emitter: MPE/sampling requires a single-task program");
  }

  std::string Out;
  appendf(Out,
          "// Generated by the SPNC cpp backend (emitter v%u) from "
          "kernel '%s'.\n"
          "// compute type: %s; %s space; lowering: %s.\n",
          kCppEmitterVersion, Program.Name.c_str(),
          Program.UseF32 ? "f32" : "f64",
          Program.LogSpace ? "log" : "linear",
          Program.Lowering == LoweringKind::SelectCascade
              ? "select-cascade"
              : "table-lookup");
  Out += "#include <cmath>\n"
         "#include <cstddef>\n"
         "#include <limits>\n"
         "#include <vector>\n"
         "\n"
         "namespace {\n";
  appendf(Out, "typedef %s value_t;\n",
          Program.UseF32 ? "float" : "double");
  Out += "const value_t kNegInf = "
         "-std::numeric_limits<value_t>::infinity();\n"
         "\n"
         "// Mirrors the interpreter's scalarLogSumExp: max + "
         "log1p(exp(min - max)),\n"
         "// with the exp/log1p round trip through double.\n"
         "inline value_t spnc_log_sum_exp(value_t a, value_t b) {\n"
         "  value_t max = a > b ? a : b;\n"
         "  if (max == kNegInf)\n"
         "    return max;\n"
         "  value_t diff = (a > b ? b : a) - max;\n"
         "  return max + (value_t)std::log1p(std::exp((double)diff));\n"
         "}\n";

  ParamLayout Layout;
  const ParamLayout *PL = nullptr;
  if (Program.Parameterized) {
    Layout = buildParamLayout(Program);
    PL = &Layout;
    // Default parameter block: the generating model's own baked side
    // tables in the vm::flattenTaskTables layout, so the classic entry
    // point stays bit-identical to a non-parameterized build.
    appendf(Out, "\nstatic const double kParamsDefault[%zu] = {\n",
            Layout.Total ? Layout.Total : size_t(1));
    size_t Count = 0;
    auto Push = [&](double Value) {
      appendf(Out, "  %s,", formatDouble(Value).c_str());
      Out += (++Count % 4 == 0) ? "\n" : "";
    };
    for (const TaskProgram &Task : Program.Tasks) {
      for (double Value : Task.ConstPool)
        Push(Value);
      for (const GaussianParams &G : Task.Gaussians) {
        Push(G.Mean);
        Push(G.InvStdDev);
        Push(G.Coefficient);
      }
      for (const LookupTable &Table : Task.Tables)
        for (double Value : Table.Values)
          Push(Value);
      for (const SelectRange &Select : Task.Selects)
        Push(Select.Value);
    }
    if (Layout.Total == 0)
      Out += "  0.0,";
    Out += "\n};\n";
  } else {
    // Dense lookup tables, one static array per (task, table).
    for (size_t T = 0; T < Program.Tasks.size(); ++T) {
      const TaskProgram &Task = Program.Tasks[T];
      for (size_t J = 0; J < Task.Tables.size(); ++J) {
        const LookupTable &Table = Task.Tables[J];
        // A zero-length array is ill-formed; an empty table (never
        // indexed: the bounds check rejects everything) gets one dummy
        // element.
        appendf(Out, "\nstatic const double kTable_t%zu_%zu[%zu] = {\n", T,
                J, Table.Values.empty() ? size_t(1) : Table.Values.size());
        if (Table.Values.empty())
          Out += "  0.0,\n";
        for (size_t V = 0; V < Table.Values.size(); ++V) {
          appendf(Out, "  %s,", formatDouble(Table.Values[V]).c_str());
          Out += (V % 4 == 3 || V + 1 == Table.Values.size()) ? "\n" : "";
        }
        Out += "};\n";
      }
    }
  }
  if (NeedsPlan)
    emitTracebackSupport(Out, Program);
  Out += "\n} // namespace\n\n";

  if (PL)
    Out += "static void spnc_kernel_impl(const double *__restrict in, "
           "double *__restrict out, size_t n,\n"
           "                             const double *__restrict p) {\n";
  else
    appendf(Out,
            "extern \"C\" void %s(const double *__restrict in, "
            "double *__restrict out, size_t n) {\n",
            kCppKernelSymbol);

  // Intermediate buffers, [slot][sample] like the executor's scratch.
  for (size_t B = 0; B < Program.Buffers.size(); ++B)
    if (Program.Buffers[B].Role == BufferInfo::Kind::Intermediate)
      appendf(Out, "  std::vector<value_t> b%zu((size_t)%u * n);\n", B,
              Program.Buffers[B].Columns);

  for (size_t S = 0; S < Program.Steps.size(); ++S) {
    const KernelStep &Step = Program.Steps[S];
    if (Step.Task < 0) {
      // Buffer-to-buffer copy (copy avoidance disabled).
      uint32_t Src = static_cast<uint32_t>(Step.CopySrc);
      uint32_t Dst = static_cast<uint32_t>(Step.CopyDst);
      appendf(Out, "  // step %zu: copy buffer %u -> %u\n", S, Src, Dst);
      for (uint32_t Col = 0; Col < Program.Buffers[Src].Columns; ++Col) {
        appendf(Out, "  for (size_t i = 0; i < n; ++i)\n    %s\n",
                storeStmt(Program, Dst, Col, loadExpr(Program, Src, Col))
                    .c_str());
      }
      continue;
    }
    const TaskProgram &Task = Program.Tasks[Step.Task];
    appendf(Out,
            "  // step %zu: task %d (%zu instructions, %u registers)\n"
            "  for (size_t i = 0; i < n; ++i) {\n"
            "    value_t r[%u] = {};\n",
            S, Step.Task, Task.Code.size(), Task.NumRegisters,
            Task.NumRegisters ? Task.NumRegisters : 1u);
    for (const Instruction &I : Task.Code)
      emitInstruction(Out, Program, Task, static_cast<size_t>(Step.Task),
                      I, "    ", PL);
    Out += "  }\n";
  }
  Out += "}\n";
  if (PL) {
    appendf(Out,
            "\nextern \"C\" void %s(const double *__restrict in, "
            "double *__restrict out, size_t n) {\n"
            "  spnc_kernel_impl(in, out, n, kParamsDefault);\n"
            "}\n",
            kCppKernelSymbol);
    appendf(Out,
            "\nextern \"C\" void %s(const double *__restrict in, "
            "double *__restrict out, size_t n,\n"
            "                                        "
            "const double *params) {\n"
            "  spnc_kernel_impl(in, out, n, params);\n"
            "}\n",
            kCppParamsSymbol);
  }
  if (NeedsPlan)
    emitQueryEntry(Out, Program);
  return Out;
}
