file(REMOVE_RECURSE
  "CMakeFiles/example_inspect_compilation.dir/inspect_compilation.cpp.o"
  "CMakeFiles/example_inspect_compilation.dir/inspect_compilation.cpp.o.d"
  "example_inspect_compilation"
  "example_inspect_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_inspect_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
