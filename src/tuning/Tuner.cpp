//===- Tuner.cpp - Coordinate-descent search driver ---------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "tuning/Tuner.h"

#include "support/RawOStream.h"
#include "support/Random.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <optional>

using namespace spnc;
using namespace spnc::tuning;

Tuner::Tuner(const SearchSpace &Space, Evaluator &TheEvaluator,
             Objective TheObjective, TunerOptions Options)
    : Space(Space), TheEvaluator(TheEvaluator),
      TheObjective(TheObjective), Options(Options) {}

namespace {

/// The search state one run() owns: budget accounting, the memo table,
/// and the best-so-far.
struct SearchState {
  SearchState(const SearchSpace &Space, Evaluator &TheEvaluator,
              Objective TheObjective, const TunerOptions &Options)
      : Space(Space), TheEvaluator(TheEvaluator),
        TheObjective(TheObjective), Options(Options) {}

  const SearchSpace &Space;
  Evaluator &TheEvaluator;
  Objective TheObjective;
  const TunerOptions &Options;

  uint64_t Evaluations = 0;
  bool BudgetExhausted = false;
  std::chrono::steady_clock::time_point Deadline;
  bool HasDeadline = false;
  /// Candidate -> score for successful evaluations, nullopt for
  /// candidates that failed to evaluate (also memoized, so a broken
  /// candidate is not retried).
  std::map<SearchSpace::Candidate, std::optional<double>> Memo;
  std::optional<EvaluatedCandidate> Best;
  std::vector<EvaluatedCandidate> History;

  bool budgetLeft() const {
    if (Evaluations >= Options.MaxEvaluations)
      return false;
    if (HasDeadline &&
        std::chrono::steady_clock::now() >= Deadline)
      return false;
    return true;
  }

  void log(const std::string &Line) {
    if (Options.Log)
      *Options.Log << Line << '\n';
  }

  /// Evaluates (or recalls) \p Candidate; returns its score, nullopt
  /// when the candidate fails or the budget is exhausted. Updates the
  /// best-so-far.
  std::optional<double>
  evaluate(const SearchSpace::Candidate &Candidate) {
    auto It = Memo.find(Candidate);
    if (It != Memo.end())
      return It->second;
    if (!budgetLeft()) {
      BudgetExhausted = true;
      return std::nullopt;
    }
    ++Evaluations;
    Expected<Measurement> M = TheEvaluator.evaluate(
        Space.materialize(Candidate, Options.BaseConfig));
    if (!M) {
      log("  candidate {" + Space.describe(Candidate) +
          "} failed: " + M.getError().message());
      Memo.emplace(Candidate, std::nullopt);
      return std::nullopt;
    }
    double Score = TheObjective.score(*M);
    Memo.emplace(Candidate, Score);
    EvaluatedCandidate Evaluated{Candidate, *M, Score};
    History.push_back(Evaluated);
    // Strictly-better replacement: on a tie the earlier candidate
    // (closer to the defaults) wins.
    if (!Best || Score > Best->Score) {
      Best = Evaluated;
      char Line[160];
      std::snprintf(Line, sizeof(Line),
                    "[%llu/%llu] new best score %.6g (%.0f samples/s, "
                    "p99 %.0f us)",
                    static_cast<unsigned long long>(Evaluations),
                    static_cast<unsigned long long>(
                        Options.MaxEvaluations),
                    Score, M->ThroughputSamplesPerSec,
                    M->P99LatencyNs / 1000.0);
      log(Line);
      log("  " + Space.describe(Candidate));
    }
    return Score;
  }

  /// Coordinate descent from \p Start until a full sweep improves
  /// nothing or the budget runs out.
  void descend(SearchSpace::Candidate Current) {
    std::optional<double> CurrentScore = evaluate(Current);
    bool Improved = true;
    while (Improved && budgetLeft()) {
      Improved = false;
      for (size_t K = 0; K < Space.getNumKnobs(); ++K) {
        const Knob &TheKnob = Space.getKnobs()[K];
        size_t BestIndex = Current[K];
        for (size_t V = 0; V < TheKnob.getValues().size(); ++V) {
          if (V == Current[K])
            continue;
          SearchSpace::Candidate Neighbor = Current;
          Neighbor[K] = V;
          std::optional<double> Score = evaluate(Neighbor);
          if (BudgetExhausted)
            return;
          if (Score && (!CurrentScore || *Score > *CurrentScore)) {
            CurrentScore = Score;
            BestIndex = V;
            Improved = true;
          }
        }
        Current[K] = BestIndex;
      }
    }
  }
};

} // namespace

Expected<TunerResult> Tuner::run() {
  SearchState State(Space, TheEvaluator, TheObjective, Options);
  if (Options.TimeBudgetMs) {
    State.Deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(Options.TimeBudgetMs);
    State.HasDeadline = true;
  }

  // The all-defaults candidate always goes first: it anchors the
  // best-so-far, so the final result can never score below the
  // out-of-the-box configuration on this evaluator.
  SearchSpace::Candidate Default = Space.defaultCandidate();
  State.log("evaluating default configuration {" +
            Space.describe(Default) + "}");
  State.evaluate(Default);
  State.descend(Default);

  Rng RestartRng(Options.Seed);
  for (unsigned Restart = 0;
       Restart < Options.RandomRestarts && State.budgetLeft();
       ++Restart) {
    SearchSpace::Candidate Start = Space.randomCandidate(RestartRng);
    State.log("restart " + std::to_string(Restart + 1) + "/" +
              std::to_string(Options.RandomRestarts) + " from {" +
              Space.describe(Start) + "}");
    State.descend(Start);
  }
  if (!State.budgetLeft() && State.Evaluations)
    State.BudgetExhausted =
        State.BudgetExhausted ||
        State.Evaluations >= Options.MaxEvaluations;

  if (!State.Best)
    return makeError(
        "tuning failed: no candidate evaluated successfully (" +
        std::to_string(State.Evaluations) + " attempted)");

  TunerResult Result;
  Result.Best = *State.Best;
  Result.Evaluations = State.Evaluations;
  Result.History = std::move(State.History);
  Result.BudgetExhausted = State.BudgetExhausted;
  return Result;
}
