//===- Random.h - Deterministic random number generation ------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64 seeded xoshiro256**) used by the
/// workload generators and property tests. The standard `<random>` engines
/// are avoided for the generators because their streams differ between
/// standard library implementations, which would make the synthetic SPN
/// models non-reproducible across platforms.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_RANDOM_H
#define SPNC_SUPPORT_RANDOM_H

#include <cassert>
#include <cmath>
#include <cstdint>

namespace spnc {

/// Deterministic 64-bit PRNG with convenience samplers. The exact output
/// stream is part of the workload-reproducibility contract and must not
/// change.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next raw 64-bit value (xoshiro256**).
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t uniformInt(uint64_t Bound) {
    assert(Bound > 0 && "uniformInt bound must be positive");
    // Modulo bias is negligible for the bounds used by the generators.
    return next() % Bound;
  }

  /// Standard normal via Box-Muller (uses two uniforms per pair, caches the
  /// second sample).
  double normal() {
    if (HasCachedNormal) {
      HasCachedNormal = false;
      return CachedNormal;
    }
    double U1 = 1.0 - uniform(); // avoid log(0)
    double U2 = uniform();
    double Radius = std::sqrt(-2.0 * std::log(U1));
    double Angle = 2.0 * 3.14159265358979323846 * U2;
    CachedNormal = Radius * std::sin(Angle);
    HasCachedNormal = true;
    return Radius * std::cos(Angle);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double Mean, double StdDev) {
    return Mean + StdDev * normal();
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
  double CachedNormal = 0.0;
  bool HasCachedNormal = false;
};

} // namespace spnc

#endif // SPNC_SUPPORT_RANDOM_H
