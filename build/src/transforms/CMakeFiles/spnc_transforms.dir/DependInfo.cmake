
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/Bufferization.cpp" "src/transforms/CMakeFiles/spnc_transforms.dir/Bufferization.cpp.o" "gcc" "src/transforms/CMakeFiles/spnc_transforms.dir/Bufferization.cpp.o.d"
  "/root/repo/src/transforms/HiSPNToLoSPN.cpp" "src/transforms/CMakeFiles/spnc_transforms.dir/HiSPNToLoSPN.cpp.o" "gcc" "src/transforms/CMakeFiles/spnc_transforms.dir/HiSPNToLoSPN.cpp.o.d"
  "/root/repo/src/transforms/TaskPartitioning.cpp" "src/transforms/CMakeFiles/spnc_transforms.dir/TaskPartitioning.cpp.o" "gcc" "src/transforms/CMakeFiles/spnc_transforms.dir/TaskPartitioning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dialects/CMakeFiles/spnc_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/spnc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spnc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spnc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
