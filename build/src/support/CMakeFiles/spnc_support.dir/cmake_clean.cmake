file(REMOVE_RECURSE
  "CMakeFiles/spnc_support.dir/RawOStream.cpp.o"
  "CMakeFiles/spnc_support.dir/RawOStream.cpp.o.d"
  "CMakeFiles/spnc_support.dir/ThreadPool.cpp.o"
  "CMakeFiles/spnc_support.dir/ThreadPool.cpp.o.d"
  "libspnc_support.a"
  "libspnc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
