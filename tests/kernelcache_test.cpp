//===- kernelcache_test.cpp - Tests for the kernel cache -------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelCache.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <span>
#include <thread>
#include <vector>

using namespace spnc;
using namespace spnc::runtime;

namespace {

class KernelCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    workloads::SpeakerModelOptions Options;
    Options.TargetOperations = 300;
    Options.Seed = 31;
    Model = std::make_unique<spn::Model>(
        workloads::generateSpeakerModel(Options));
    NumFeatures = Model->getNumFeatures();
    Data = workloads::generateSpeechData(Options, kNumSamples, 5);
    TempDir = std::filesystem::path(::testing::TempDir()) /
              ("spnc-kernelcache-" +
               std::to_string(::testing::UnitTest::GetInstance()
                                  ->random_seed()) +
               "-" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
    std::filesystem::remove_all(TempDir);
  }

  void TearDown() override { std::filesystem::remove_all(TempDir); }

  /// The disk key the cache uses for (Model, Query, Options).
  static uint64_t keyFor(const spn::Model &M,
                         const spn::QueryConfig &Query,
                         const CompilerOptions &Options) {
    Expected<PipelineConfig> Config = PipelineConfig::create(Options);
    EXPECT_TRUE(static_cast<bool>(Config));
    return KernelCache::makeKey(M, Query, *Config);
  }

  static constexpr size_t kNumSamples = 24;
  std::unique_ptr<spn::Model> Model;
  unsigned NumFeatures = 0;
  std::vector<double> Data;
  std::filesystem::path TempDir;
};

TEST_F(KernelCacheTest, SecondRequestIsAHit) {
  KernelCache Cache;
  CompilerOptions Options;

  CompileStats Stats;
  Expected<CompiledKernel> First =
      Cache.getOrCompile(*Model, spn::QueryConfig(), Options, &Stats);
  ASSERT_TRUE(static_cast<bool>(First));
  EXPECT_GT(Stats.TotalNs, 0u);
  EXPECT_EQ(Cache.size(), 1u);

  // The second request reuses the engine: Stats is left untouched and
  // both kernels share the same underlying object.
  CompileStats SecondStats;
  Expected<CompiledKernel> Second = Cache.getOrCompile(
      *Model, spn::QueryConfig(), Options, &SecondStats);
  ASSERT_TRUE(static_cast<bool>(Second));
  EXPECT_EQ(SecondStats.TotalNs, 0u);
  EXPECT_EQ(&First->getEngine(), &Second->getEngine());
  EXPECT_EQ(Cache.size(), 1u);

  KernelCache::Statistics CacheStats = Cache.getStatistics();
  EXPECT_EQ(CacheStats.Hits, 1u);
  EXPECT_EQ(CacheStats.Misses, 1u);
  EXPECT_EQ(CacheStats.Recompiles, 1u);
  EXPECT_EQ(CacheStats.DiskHits, 0u);
}

TEST_F(KernelCacheTest, KeyIsSensitiveToPipelineAndQueryConfig) {
  CompilerOptions Base;
  Base.OptLevel = 1;

  // A different optimization level changes the pipeline, so it must
  // change the key.
  CompilerOptions O2 = Base;
  O2.OptLevel = 2;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, spn::QueryConfig(), O2));

  // So do the execution-affecting knobs...
  CompilerOptions Vectorized = Base;
  Vectorized.Execution.VectorWidth = 8;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, spn::QueryConfig(), Vectorized));

  CompilerOptions Gpu = Base;
  Gpu.TheTarget = Target::GPU;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, spn::QueryConfig(), Gpu));

  // ...and the query configuration.
  spn::QueryConfig Marginal;
  Marginal.SupportMarginal = true;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, Marginal, Base));

  spn::QueryConfig Batched;
  Batched.BatchSize = 64;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, Batched, Base));

  // A structurally different model gets a different key too.
  workloads::SpeakerModelOptions Other;
  Other.TargetOperations = 300;
  Other.Seed = 77;
  spn::Model OtherModel = workloads::generateSpeakerModel(Other);
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(OtherModel, spn::QueryConfig(), Base));

  // The cache keeps distinct engines for distinct keys.
  KernelCache Cache;
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), Base)));
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), O2)));
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, Marginal, Base)));
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.getStatistics().Hits, 0u);
}

TEST_F(KernelCacheTest, InvalidOptionsPropagateTheError) {
  KernelCache Cache;
  CompilerOptions Bad;
  Bad.OptLevel = 9;
  EXPECT_FALSE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), Bad)));
  EXPECT_EQ(Cache.size(), 0u);
}

TEST_F(KernelCacheTest, DiskTierIsSharedAcrossInstances) {
  CompilerOptions Options;

  // First cache compiles and persists the kernel.
  {
    KernelCache Cache(TempDir.string());
    ASSERT_TRUE(static_cast<bool>(
        Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
    EXPECT_EQ(Cache.getStatistics().Recompiles, 1u);
    uint64_t Key = keyFor(*Model, spn::QueryConfig(), Options);
    EXPECT_TRUE(std::filesystem::exists(Cache.entryPath(Key)));
  }

  // A fresh cache over the same directory loads from disk instead of
  // compiling, and the loaded kernel computes the same result.
  KernelCache Fresh(TempDir.string());
  CompileStats Stats;
  Expected<CompiledKernel> Loaded =
      Fresh.getOrCompile(*Model, spn::QueryConfig(), Options, &Stats);
  ASSERT_TRUE(static_cast<bool>(Loaded));
  KernelCache::Statistics CacheStats = Fresh.getStatistics();
  EXPECT_EQ(CacheStats.DiskHits, 1u);
  EXPECT_EQ(CacheStats.Recompiles, 0u);
  EXPECT_EQ(Stats.TotalNs, 0u);

  std::vector<double> FromDisk(kNumSamples);
  Loaded->execute(Data.data(), FromDisk.data(), kNumSamples);
  std::vector<double> Reference(kNumSamples);
  for (size_t S = 0; S < kNumSamples; ++S)
    Reference[S] = Model->evalLogLikelihood(
        std::span<const double>(Data.data() + S * NumFeatures,
                                NumFeatures));
  for (size_t S = 0; S < kNumSamples; ++S)
    EXPECT_NEAR(FromDisk[S], Reference[S],
                std::fabs(Reference[S]) * 1e-6 + 1e-6);
}

TEST_F(KernelCacheTest, CorruptedDiskEntryTriggersRecompile) {
  CompilerOptions Options;
  uint64_t Key = keyFor(*Model, spn::QueryConfig(), Options);

  // Plant a corrupted entry where the cache expects its .spnk file.
  std::filesystem::create_directories(TempDir);
  KernelCache Cache(TempDir.string());
  std::string Path = Cache.entryPath(Key);
  {
    std::FILE *File = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(File, nullptr);
    std::fputs("this is not a kernel program", File);
    std::fclose(File);
  }

  // The corrupted entry is not an error: the cache recompiles, serves
  // the kernel, and rewrites the entry.
  Expected<CompiledKernel> Kernel =
      Cache.getOrCompile(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  KernelCache::Statistics CacheStats = Cache.getStatistics();
  EXPECT_EQ(CacheStats.DiskHits, 0u);
  EXPECT_EQ(CacheStats.Recompiles, 1u);

  // The rewritten entry is valid now: a fresh cache disk-hits on it.
  KernelCache Fresh(TempDir.string());
  ASSERT_TRUE(static_cast<bool>(
      Fresh.getOrCompile(*Model, spn::QueryConfig(), Options)));
  EXPECT_EQ(Fresh.getStatistics().DiskHits, 1u);
}

TEST_F(KernelCacheTest, UnwritableDirectoryStillServesKernels) {
  // A disk tier that cannot be created (a regular file squats on a path
  // component) degrades to in-memory behavior. A file blocker works
  // even when the tests run as root, unlike permission bits.
  std::filesystem::create_directories(TempDir);
  std::filesystem::path Blocker = TempDir / "blocker";
  {
    std::FILE *File = std::fopen(Blocker.c_str(), "wb");
    ASSERT_NE(File, nullptr);
    std::fclose(File);
  }
  KernelCache Cache((Blocker / "cache").string());
  Expected<CompiledKernel> Kernel =
      Cache.getOrCompile(*Model, spn::QueryConfig(), CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(Kernel));
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.getStatistics().Recompiles, 1u);
}

TEST_F(KernelCacheTest, ConcurrentRequestsShareOneEngine) {
  KernelCache Cache;
  CompilerOptions Options;
  Options.Execution.VectorWidth = 4;

  constexpr unsigned kNumThreads = 8;
  std::vector<CompiledKernel> Kernels(kNumThreads);
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kNumThreads; ++T)
    Threads.emplace_back([&, T] {
      Expected<CompiledKernel> Kernel =
          Cache.getOrCompile(*Model, spn::QueryConfig(), Options);
      if (!Kernel) {
        ++Failures;
        return;
      }
      Kernels[T] = Kernel.takeValue();
      std::vector<double> Output(kNumSamples);
      Kernels[T].execute(Data.data(), Output.data(), kNumSamples);
    });
  for (std::thread &T : Threads)
    T.join();
  ASSERT_EQ(Failures.load(), 0u);

  // Races may compile the same key more than once, but exactly one
  // engine wins and everyone ends up sharing it.
  EXPECT_EQ(Cache.size(), 1u);
  for (unsigned T = 1; T < kNumThreads; ++T)
    EXPECT_EQ(&Kernels[0].getEngine(), &Kernels[T].getEngine());
  KernelCache::Statistics CacheStats = Cache.getStatistics();
  EXPECT_EQ(CacheStats.Hits + CacheStats.Misses, kNumThreads);
  EXPECT_GE(CacheStats.Recompiles, 1u);
}

TEST_F(KernelCacheTest, ClearDropsEnginesButKeepsDisk) {
  KernelCache Cache(TempDir.string());
  CompilerOptions Options;
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
  ASSERT_EQ(Cache.size(), 1u);

  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);

  // The next request misses in memory but recovers from disk.
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
  KernelCache::Statistics CacheStats = Cache.getStatistics();
  EXPECT_EQ(CacheStats.DiskHits, 1u);
  EXPECT_EQ(CacheStats.Recompiles, 1u);
}

} // namespace
