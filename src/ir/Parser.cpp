//===- Parser.cpp - Generic textual IR parsing --------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Builder.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <limits>
#include <unordered_map>

using namespace spnc;
using namespace spnc::ir;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokenKind {
  Eof,
  Error,
  /// Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  Comma,
  Colon,
  Equal,
  Arrow,
  Caret,  // ^bb
  /// Literals and identifiers.
  SsaId,      // %0, %arg3
  StringLit,  // "lo_spn.mul"
  Integer,    // 42, -7
  Float,      // 2.5, -1e9, inf, nan
  BareId,     // true, dense, tensor, f32, i32, index, ...
  ExclaimId,  // !hi_spn.prob, !lo_spn.log
  Question,   // ? (dynamic dimension)
};

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  int Line = 1;
  int Column = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Source(Source) {}

  Token next() {
    skipWhitespace();
    Token Result;
    Result.Line = Line;
    Result.Column = Column;
    if (Position >= Source.size()) {
      Result.Kind = TokenKind::Eof;
      return Result;
    }
    char C = Source[Position];
    switch (C) {
    case '(':
      return punct(Result, TokenKind::LParen);
    case ')':
      return punct(Result, TokenKind::RParen);
    case '{':
      return punct(Result, TokenKind::LBrace);
    case '}':
      return punct(Result, TokenKind::RBrace);
    case '[':
      return punct(Result, TokenKind::LBracket);
    case ']':
      return punct(Result, TokenKind::RBracket);
    case '<':
      return punct(Result, TokenKind::Less);
    case '>':
      return punct(Result, TokenKind::Greater);
    case ',':
      return punct(Result, TokenKind::Comma);
    case ':':
      return punct(Result, TokenKind::Colon);
    case '=':
      return punct(Result, TokenKind::Equal);
    case '?':
      return punct(Result, TokenKind::Question);
    case '^':
      return lexCaret(Result);
    case '%':
      return lexSsaId(Result);
    case '"':
      return lexString(Result);
    case '!':
      return lexExclaimId(Result);
    case '-':
      if (Position + 1 < Source.size() && Source[Position + 1] == '>') {
        advance();
        advance();
        Result.Kind = TokenKind::Arrow;
        return Result;
      }
      return lexNumber(Result);
    default:
      if (std::isdigit(static_cast<unsigned char>(C)))
        return lexNumber(Result);
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
        return lexBareId(Result);
      Result.Kind = TokenKind::Error;
      Result.Text = std::string(1, C);
      return Result;
    }
  }

private:
  void advance() {
    if (Position < Source.size()) {
      if (Source[Position] == '\n') {
        ++Line;
        Column = 1;
      } else {
        ++Column;
      }
      ++Position;
    }
  }

  void skipWhitespace() {
    while (Position < Source.size()) {
      char C = Source[Position];
      if (C == '/' && Position + 1 < Source.size() &&
          Source[Position + 1] == '/') {
        while (Position < Source.size() && Source[Position] != '\n')
          advance();
        continue;
      }
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        return;
      advance();
    }
  }

  Token &punct(Token &Result, TokenKind Kind) {
    Result.Kind = Kind;
    Result.Text = std::string(1, Source[Position]);
    advance();
    return Result;
  }

  Token &lexCaret(Token &Result) {
    advance(); // ^
    std::string Name;
    while (Position < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(Source[Position])) ||
            Source[Position] == '_')) {
      Name += Source[Position];
      advance();
    }
    Result.Kind = TokenKind::Caret;
    Result.Text = Name;
    return Result;
  }

  Token &lexSsaId(Token &Result) {
    advance(); // %
    std::string Name = "%";
    while (Position < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(Source[Position])) ||
            Source[Position] == '_')) {
      Name += Source[Position];
      advance();
    }
    Result.Kind = TokenKind::SsaId;
    Result.Text = Name;
    return Result;
  }

  Token &lexString(Token &Result) {
    advance(); // opening quote
    std::string Value;
    while (Position < Source.size() && Source[Position] != '"') {
      if (Source[Position] == '\\' && Position + 1 < Source.size()) {
        advance();
        Value += Source[Position];
        advance();
        continue;
      }
      Value += Source[Position];
      advance();
    }
    if (Position >= Source.size()) {
      Result.Kind = TokenKind::Error;
      Result.Text = "unterminated string";
      return Result;
    }
    advance(); // closing quote
    Result.Kind = TokenKind::StringLit;
    Result.Text = Value;
    return Result;
  }

  Token &lexExclaimId(Token &Result) {
    advance(); // !
    std::string Name = "!";
    while (Position < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(Source[Position])) ||
            Source[Position] == '_' || Source[Position] == '.')) {
      Name += Source[Position];
      advance();
    }
    Result.Kind = TokenKind::ExclaimId;
    Result.Text = Name;
    return Result;
  }

  Token &lexNumber(Token &Result) {
    std::string Text;
    bool IsFloat = false;
    if (Source[Position] == '-') {
      Text += '-';
      advance();
    }
    // "-inf" / "inf" / "nan" handled through bare id fallthrough.
    if (Position < Source.size() &&
        std::isalpha(static_cast<unsigned char>(Source[Position]))) {
      while (Position < Source.size() &&
             std::isalpha(static_cast<unsigned char>(Source[Position]))) {
        Text += Source[Position];
        advance();
      }
      Result.Kind = TokenKind::Float;
      Result.Text = Text;
      return Result;
    }
    while (Position < Source.size()) {
      char C = Source[Position];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        Text += C;
        advance();
        continue;
      }
      if (C == '.' || C == 'e' || C == 'E') {
        IsFloat = true;
        Text += C;
        advance();
        if ((C == 'e' || C == 'E') && Position < Source.size() &&
            (Source[Position] == '+' || Source[Position] == '-')) {
          Text += Source[Position];
          advance();
        }
        continue;
      }
      break;
    }
    Result.Kind = IsFloat ? TokenKind::Float : TokenKind::Integer;
    Result.Text = Text;
    return Result;
  }

  Token &lexBareId(Token &Result) {
    std::string Name;
    while (Position < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(Source[Position])) ||
            Source[Position] == '_' || Source[Position] == '.')) {
      Name += Source[Position];
      advance();
    }
    Result.Kind = TokenKind::BareId;
    Result.Text = Name;
    return Result;
  }

  const std::string &Source;
  size_t Position = 0;
  int Line = 1;
  int Column = 1;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(Context &Ctx, const std::string &Source)
      : Ctx(Ctx), Lex(Source) {
    Current = Lex.next();
  }

  /// Parses exactly one top-level operation followed by EOF.
  Operation *parseTopLevel() {
    Operation *Op = parseOperation(/*EnclosingBlock=*/nullptr);
    if (!Op)
      return nullptr;
    if (Current.Kind != TokenKind::Eof) {
      error("expected end of input after top-level operation");
      Op->dropAllReferences();
      Op->destroy();
      return nullptr;
    }
    return Op;
  }

  const std::string &getError() const { return ErrorMessage; }

private:
  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//

  void consume() { Current = Lex.next(); }

  bool consumeIf(TokenKind Kind) {
    if (Current.Kind != Kind)
      return false;
    consume();
    return true;
  }

  bool expect(TokenKind Kind, const char *What) {
    if (Current.Kind == Kind) {
      consume();
      return true;
    }
    error(formatString("expected %s, got '%s'", What,
                       Current.Text.c_str()));
    return false;
  }

  void error(const std::string &Message) {
    if (ErrorMessage.empty())
      ErrorMessage = formatString("%d:%d: %s", Current.Line,
                                  Current.Column, Message.c_str());
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  Type parseType() {
    if (Current.Kind == TokenKind::ExclaimId) {
      std::string Name = Current.Text;
      consume();
      if (Name == "!hi_spn.prob") {
        TypeStorage Proto;
        Proto.Kind = TypeKind::Probability;
        return Type(Ctx.uniqueType(std::move(Proto)));
      }
      if (Name == "!lo_spn.log") {
        if (!expect(TokenKind::Less, "'<'"))
          return Type();
        Type Element = parseType();
        if (!Element || !expect(TokenKind::Greater, "'>'"))
          return Type();
        TypeStorage Proto;
        Proto.Kind = TypeKind::Log;
        Proto.Element = Element.getImpl();
        return Type(Ctx.uniqueType(std::move(Proto)));
      }
      error("unknown dialect type '" + Name + "'");
      return Type();
    }
    if (Current.Kind != TokenKind::BareId) {
      error("expected a type");
      return Type();
    }
    std::string Name = Current.Text;
    consume();
    if (Name == "f32")
      return FloatType::getF32(Ctx);
    if (Name == "f64")
      return FloatType::getF64(Ctx);
    if (Name == "index")
      return IndexType::get(Ctx);
    if (Name == "none")
      return NoneType::get(Ctx);
    if (Name.size() > 1 && Name[0] == 'i') {
      unsigned Width = 0;
      for (size_t I = 1; I < Name.size(); ++I) {
        if (!std::isdigit(static_cast<unsigned char>(Name[I]))) {
          Width = 0;
          break;
        }
        Width = Width * 10 + static_cast<unsigned>(Name[I] - '0');
      }
      if (Width > 0)
        return IntegerType::get(Ctx, Width);
    }
    if (Name == "tensor" || Name == "memref")
      return parseShapedType(Name == "tensor");
    if (Name == "vector")
      return parseVectorType();
    error("unknown type '" + Name + "'");
    return Type();
  }

  /// Parses `<dims x element>` after tensor/memref. The lexer fuses the
  /// 'x' separators with following digits or type names (e.g. the token
  /// "x26xf64"); splitXSeparator re-splits them.
  Type parseShapedType(bool IsTensor) {
    if (!expect(TokenKind::Less, "'<'"))
      return Type();
    std::vector<int64_t> Shape;
    Type Element;
    for (;;) {
      if (Current.Kind == TokenKind::Question) {
        consume();
        Shape.push_back(TypeStorage::kDynamic);
        if (!splitXSeparator(Shape, Element))
          return Type();
        if (Element)
          break;
        continue;
      }
      if (Current.Kind == TokenKind::Integer) {
        Shape.push_back(std::stoll(Current.Text));
        consume();
        if (!splitXSeparator(Shape, Element))
          return Type();
        if (Element)
          break;
        continue;
      }
      // No more dimensions: the element type follows directly.
      Element = parseType();
      break;
    }
    if (!Element || !expect(TokenKind::Greater, "'>'"))
      return Type();
    TypeStorage Proto;
    Proto.Kind = IsTensor ? TypeKind::Tensor : TypeKind::MemRef;
    Proto.Shape = std::move(Shape);
    Proto.Element = Element.getImpl();
    return Type(Ctx.uniqueType(std::move(Proto)));
  }

  /// Processes the bare-id token that must follow a dimension: a run of
  /// `x<digits>` separators possibly ending in an element-type name
  /// ("x", "xf64", "x26xf64", "x26x"). Embedded dimensions are appended
  /// to \p Shape; a trailing type name is parsed into \p Element.
  /// Returns false on malformed input.
  bool splitXSeparator(std::vector<int64_t> &Shape, Type &Element) {
    if (Current.Kind != TokenKind::BareId || Current.Text.empty() ||
        Current.Text[0] != 'x') {
      error("expected 'x' after dimension");
      return false;
    }
    std::string Text = Current.Text;
    size_t Pos = 0;
    for (;;) {
      if (Pos >= Text.size()) {
        // Token fully consumed as separators; the next token carries the
        // next dimension or the element type.
        consume();
        return true;
      }
      if (Text[Pos] != 'x') {
        // Remainder is the element-type name; re-point the current token
        // at it and parse.
        Current.Text = Text.substr(Pos);
        Element = parseType();
        return static_cast<bool>(Element);
      }
      ++Pos; // skip the separator
      if (Pos < Text.size() &&
          std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
        int64_t Dim = 0;
        while (Pos < Text.size() &&
               std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
          Dim = Dim * 10 + (Text[Pos] - '0');
          ++Pos;
        }
        Shape.push_back(Dim);
      }
    }
  }

  Type parseVectorType() {
    if (!expect(TokenKind::Less, "'<'"))
      return Type();
    if (Current.Kind != TokenKind::Integer) {
      error("expected vector lane count");
      return Type();
    }
    unsigned Lanes = static_cast<unsigned>(std::stoul(Current.Text));
    consume();
    std::vector<int64_t> ExtraDims;
    Type Element;
    if (!splitXSeparator(ExtraDims, Element))
      return Type();
    if (!Element)
      Element = parseType();
    if (!Element || !ExtraDims.empty() ||
        !expect(TokenKind::Greater, "'>'"))
      return Type();
    return VectorType::get(Ctx, Lanes, Element);
  }

  //===--------------------------------------------------------------------===//
  // Attributes
  //===--------------------------------------------------------------------===//

  Attribute parseAttribute() {
    switch (Current.Kind) {
    case TokenKind::Integer: {
      int64_t Value = std::stoll(Current.Text);
      consume();
      return IntAttr::get(Ctx, Value);
    }
    case TokenKind::Float: {
      double Value = parseFloatText(Current.Text);
      consume();
      return FloatAttr::get(Ctx, Value);
    }
    case TokenKind::StringLit: {
      std::string Value = Current.Text;
      consume();
      return StringAttr::get(Ctx, std::move(Value));
    }
    case TokenKind::LBracket: {
      consume();
      std::vector<Attribute> Elements;
      if (Current.Kind != TokenKind::RBracket) {
        do {
          Attribute Element = parseAttribute();
          if (!Element)
            return Attribute();
          Elements.push_back(Element);
        } while (consumeIf(TokenKind::Comma));
      }
      if (!expect(TokenKind::RBracket, "']'"))
        return Attribute();
      return ArrayAttr::get(Ctx, Elements);
    }
    case TokenKind::BareId: {
      std::string Name = Current.Text;
      if (Name == "true" || Name == "false") {
        consume();
        return BoolAttr::get(Ctx, Name == "true");
      }
      if (Name == "unit") {
        consume();
        return UnitAttr::get(Ctx);
      }
      if (Name == "nan" || Name == "inf") {
        consume();
        return FloatAttr::get(Ctx, parseFloatText(Name));
      }
      if (Name == "dense")
        return parseDenseAttribute();
      // Otherwise: a type attribute (f32, tensor<...>, ...).
      Type Ty = parseType();
      return Ty ? Attribute(TypeAttr::get(Ctx, Ty)) : Attribute();
    }
    case TokenKind::ExclaimId: {
      Type Ty = parseType();
      return Ty ? Attribute(TypeAttr::get(Ctx, Ty)) : Attribute();
    }
    default:
      error("expected an attribute");
      return Attribute();
    }
  }

  Attribute parseDenseAttribute() {
    consume(); // dense
    if (!expect(TokenKind::Less, "'<'") ||
        !expect(TokenKind::LBracket, "'['"))
      return Attribute();
    std::vector<double> Values;
    if (Current.Kind != TokenKind::RBracket) {
      do {
        if (Current.Kind == TokenKind::Integer ||
            Current.Kind == TokenKind::Float) {
          Values.push_back(parseFloatText(Current.Text));
          consume();
        } else {
          error("expected a number in dense attribute");
          return Attribute();
        }
      } while (consumeIf(TokenKind::Comma));
    }
    if (!expect(TokenKind::RBracket, "']'") ||
        !expect(TokenKind::Greater, "'>'"))
      return Attribute();
    return DenseF64Attr::get(Ctx, std::move(Values));
  }

  static double parseFloatText(const std::string &Text) {
    if (Text == "nan" || Text == "-nan")
      return std::numeric_limits<double>::quiet_NaN();
    if (Text == "inf")
      return std::numeric_limits<double>::infinity();
    if (Text == "-inf")
      return -std::numeric_limits<double>::infinity();
    return std::stod(Text);
  }

  //===--------------------------------------------------------------------===//
  // Operations, regions, blocks
  //===--------------------------------------------------------------------===//

  Operation *parseOperation(Block *EnclosingBlock) {
    // Optional result list.
    std::vector<std::string> ResultNames;
    if (Current.Kind == TokenKind::SsaId) {
      do {
        ResultNames.push_back(Current.Text);
        consume();
      } while (consumeIf(TokenKind::Comma));
      if (!expect(TokenKind::Equal, "'='"))
        return nullptr;
    }

    if (Current.Kind != TokenKind::StringLit) {
      error("expected operation name string");
      return nullptr;
    }
    OperationState State(Current.Text);
    consume();

    // Operand list.
    if (!expect(TokenKind::LParen, "'('"))
      return nullptr;
    std::vector<std::string> OperandNames;
    if (Current.Kind == TokenKind::SsaId) {
      do {
        if (Current.Kind != TokenKind::SsaId) {
          error("expected SSA operand");
          return nullptr;
        }
        OperandNames.push_back(Current.Text);
        consume();
      } while (consumeIf(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "')'"))
      return nullptr;
    for (const std::string &Name : OperandNames) {
      auto It = ValueByName.find(Name);
      if (It == ValueByName.end()) {
        error("use of undefined value '" + Name + "'");
        return nullptr;
      }
      State.addOperand(It->second);
    }

    // Optional regions: '(' region (',' region)* ')'.
    bool HasRegions = Current.Kind == TokenKind::LParen;
    std::vector<std::string> PendingRegions; // re-parsed below
    Operation *Op = nullptr;

    // We must create the op before filling regions (regions belong to
    // it), but the type signature comes last. Parse regions into a
    // deferred representation instead: since the grammar is LL(1) and
    // regions contain full ops, simplest is to create the op after
    // parsing everything. To do that we parse regions into detached
    // blocks first.
    std::vector<std::unique_ptr<Block>> RegionBlocks;
    if (HasRegions) {
      consume(); // (
      do {
        auto TheBlock = parseDetachedRegionBlock();
        if (!TheBlock)
          return nullptr;
        RegionBlocks.push_back(std::move(TheBlock));
        ++State.NumRegions;
      } while (consumeIf(TokenKind::Comma));
      if (!expect(TokenKind::RParen, "')' after regions"))
        return nullptr;
    }

    // Optional attribute dictionary.
    if (consumeIf(TokenKind::LBrace)) {
      if (Current.Kind != TokenKind::RBrace) {
        do {
          if (Current.Kind != TokenKind::BareId &&
              Current.Kind != TokenKind::StringLit) {
            error("expected attribute name");
            return nullptr;
          }
          std::string Name = Current.Text;
          consume();
          if (!expect(TokenKind::Equal, "'='"))
            return nullptr;
          Attribute Value = parseAttribute();
          if (!Value)
            return nullptr;
          State.addAttribute(Name, Value);
        } while (consumeIf(TokenKind::Comma));
      }
      if (!expect(TokenKind::RBrace, "'}'"))
        return nullptr;
    }

    // Type signature: ':' '(' operand types ')' '->' results.
    if (!expect(TokenKind::Colon, "':'") ||
        !expect(TokenKind::LParen, "'('"))
      return nullptr;
    std::vector<Type> OperandTypes;
    if (Current.Kind != TokenKind::RParen) {
      do {
        Type Ty = parseType();
        if (!Ty)
          return nullptr;
        OperandTypes.push_back(Ty);
      } while (consumeIf(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "')'") ||
        !expect(TokenKind::Arrow, "'->'"))
      return nullptr;
    if (OperandTypes.size() != State.Operands.size()) {
      error("operand type count mismatch");
      return nullptr;
    }
    for (size_t I = 0; I < OperandTypes.size(); ++I)
      if (State.Operands[I].getType() != OperandTypes[I]) {
        error(formatString("operand %zu type mismatch", I));
        return nullptr;
      }

    if (consumeIf(TokenKind::LParen)) {
      if (Current.Kind != TokenKind::RParen) {
        do {
          Type Ty = parseType();
          if (!Ty)
            return nullptr;
          State.addResultType(Ty);
        } while (consumeIf(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "')'"))
        return nullptr;
    } else {
      Type Ty = parseType();
      if (!Ty)
        return nullptr;
      State.addResultType(Ty);
    }
    if (State.ResultTypes.size() != ResultNames.size()) {
      error("result name/type count mismatch");
      return nullptr;
    }

    Op = Operation::create(Ctx, State);
    // Adopt the parsed region blocks.
    for (unsigned R = 0; R < RegionBlocks.size(); ++R)
      adoptBlock(Op->getRegion(R), std::move(RegionBlocks[R]));
    // Register result names.
    for (size_t I = 0; I < ResultNames.size(); ++I)
      ValueByName[ResultNames[I]] = Op->getResult(I);

    if (EnclosingBlock)
      EnclosingBlock->push_back(Op);
    return Op;
  }

  /// Parses `{ [^bb(args):] op* }` into a detached block.
  std::unique_ptr<Block> parseDetachedRegionBlock() {
    if (!expect(TokenKind::LBrace, "'{' starting a region"))
      return nullptr;
    auto TheBlock = std::make_unique<Block>();
    if (Current.Kind == TokenKind::Caret) {
      consume();
      if (!expect(TokenKind::LParen, "'('"))
        return nullptr;
      if (Current.Kind != TokenKind::RParen) {
        do {
          if (Current.Kind != TokenKind::SsaId) {
            error("expected block argument name");
            return nullptr;
          }
          std::string Name = Current.Text;
          consume();
          if (!expect(TokenKind::Colon, "':'"))
            return nullptr;
          Type Ty = parseType();
          if (!Ty)
            return nullptr;
          ValueByName[Name] = TheBlock->addArgument(Ty);
        } while (consumeIf(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "')'") ||
          !expect(TokenKind::Colon, "':' after block header"))
        return nullptr;
    }
    while (Current.Kind != TokenKind::RBrace) {
      if (Current.Kind == TokenKind::Eof) {
        error("unterminated region");
        return nullptr;
      }
      if (!parseOperation(TheBlock.get()))
        return nullptr;
    }
    consume(); // }
    return TheBlock;
  }

  /// Moves the contents of \p Source into a fresh block of \p TheRegion.
  void adoptBlock(Region &TheRegion, std::unique_ptr<Block> Source) {
    Block &Target = TheRegion.emplaceBlock();
    // Move arguments: recreate them and RAUW the parsed placeholders.
    for (unsigned I = 0; I < Source->getNumArguments(); ++I) {
      Value OldArg = Source->getArgument(I);
      Value NewArg = Target.addArgument(OldArg.getType());
      OldArg.replaceAllUsesWith(NewArg);
      // Keep the name map pointing at the adopted argument.
      for (auto &Entry : ValueByName)
        if (Entry.second == OldArg)
          Entry.second = NewArg;
    }
    while (!Source->empty()) {
      Operation *Op = Source->front();
      Op->remove();
      Target.push_back(Op);
    }
  }

  Context &Ctx;
  Lexer Lex;
  Token Current;
  std::string ErrorMessage;
  std::unordered_map<std::string, Value> ValueByName;
};

} // namespace

Expected<OwningOpRef<ModuleOp>>
spnc::ir::parseSourceString(Context &Ctx, const std::string &Source) {
  registerBuiltinDialect(Ctx);
  Parser TheParser(Ctx, Source);
  Operation *Op = TheParser.parseTopLevel();
  if (!Op)
    return makeError(TheParser.getError().empty()
                         ? "parse error"
                         : TheParser.getError());
  if (!isa_op<ModuleOp>(Op)) {
    Op->dropAllReferences();
    Op->destroy();
    return makeError("top-level operation must be builtin.module");
  }
  return OwningOpRef<ModuleOp>(ModuleOp(Op));
}
