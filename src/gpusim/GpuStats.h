//===- GpuStats.h - Simulated GPU execution statistics -------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated wall-clock breakdown of one GPU execution (paper Fig. 9),
/// split out of GpuSimulator.h so the layer-neutral execution-engine
/// interface (runtime/ExecutionEngine.h) can embed it without pulling in
/// the device model.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_GPUSIM_GPUSTATS_H
#define SPNC_GPUSIM_GPUSTATS_H

#include <cstdint>

namespace spnc {
namespace gpusim {

/// Simulated wall-clock breakdown of one execution (paper Fig. 9).
struct GpuExecutionStats {
  uint64_t ComputeNs = 0;
  uint64_t TransferNs = 0;
  uint64_t LaunchNs = 0;
  uint64_t BytesHostToDevice = 0;
  uint64_t BytesDeviceToHost = 0;
  unsigned NumLaunches = 0;
  unsigned NumTransfers = 0;
  /// Stream (simulated device context) this execution was issued to.
  unsigned StreamId = 0;
  /// Kernel executions active on the device (any stream, this one
  /// included) when this execution entered its stream — the SM-sharing
  /// factor its simulated compute time was scaled by.
  unsigned ConcurrentStreams = 1;
  /// Host wall clock spent waiting for the stream to drain earlier work
  /// issued to it (zero unless two callers share a stream).
  uint64_t StreamWaitNs = 0;

  uint64_t totalNs() const { return ComputeNs + TransferNs + LaunchNs; }
  /// Fraction of the total time spent in data movement.
  double transferFraction() const {
    uint64_t Total = totalNs();
    return Total == 0 ? 0.0
                      : static_cast<double>(TransferNs) /
                            static_cast<double>(Total);
  }
};

} // namespace gpusim
} // namespace spnc

#endif // SPNC_GPUSIM_GPUSTATS_H
