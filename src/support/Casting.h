//===- Casting.h - LLVM-style isa/cast/dyn_cast templates ----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled, opt-in RTTI in the style of LLVM's `llvm/Support/Casting.h`.
/// A class hierarchy participates by providing a static
/// `bool classof(const Base *)` on each derived class. The project is built
/// without C++ RTTI, so `dynamic_cast` is unavailable by design.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_CASTING_H
#define SPNC_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace spnc {

/// Returns true if \p Val is an instance of type \p To. \p Val must be
/// non-null.
template <typename To, typename From>
bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Returns true if \p Val is non-null and an instance of \p To.
template <typename To, typename From>
bool isa_and_nonnull(const From *Val) {
  return Val && isa<To>(Val);
}

/// Casts \p Val to type \p To, asserting that the dynamic type matches.
template <typename To, typename From>
To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Const overload of cast<>.
template <typename To, typename From>
const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Casts \p Val to \p To if the dynamic type matches, otherwise returns
/// nullptr. \p Val must be non-null.
template <typename To, typename From>
To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Const overload of dyn_cast<>.
template <typename To, typename From>
const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<>, but tolerates a null input by returning null.
template <typename To, typename From>
To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

/// Const overload of dyn_cast_or_null<>.
template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace spnc

#endif // SPNC_SUPPORT_CASTING_H
