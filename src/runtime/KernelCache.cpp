//===- KernelCache.cpp - Bounded, integrity-checked kernel cache --------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelCache.h"

#include "backend/VmBackend.h"
#include "merge/Merge.h"
#include "support/Casting.h"
#include "support/Hashing.h"
#include "vm/ParamTable.h"
#include "vm/ProgramBinary.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

using namespace spnc;
using namespace spnc::runtime;

namespace {

/// The backend a cache without an explicit `Config::TheBackend` uses —
/// the bytecode VM path, matching the pre-registry behavior (and the
/// pre-registry cache keys: the VM backend's identity is folded into
/// every key, including those of legacy makeKey callers).
const backend::Backend &defaultBackend() {
  static const backend::VmBackend Vm;
  return Vm;
}

} // namespace

uint64_t KernelCache::contentHash(const spn::Model &Model) {
  size_t Seed = hashCombine(Model.getNumFeatures());
  for (const spn::Node *N : Model.topologicalOrder()) {
    hashCombineSeed(Seed, hashCombine(static_cast<unsigned>(N->getKind()),
                                      N->getId()));
    if (const auto *Inner = dyn_cast<spn::InnerNode>(N)) {
      for (const spn::Node *Child : Inner->getChildren())
        hashCombineSeed(Seed, std::hash<unsigned>()(Child->getId()));
      if (const auto *Sum = dyn_cast<spn::SumNode>(N))
        for (double W : Sum->getWeights())
          hashCombineSeed(Seed, std::hash<double>()(W));
      continue;
    }
    const auto *Leaf = cast<spn::LeafNode>(N);
    hashCombineSeed(Seed, std::hash<unsigned>()(Leaf->getFeatureIndex()));
    if (const auto *Hist = dyn_cast<spn::HistogramLeaf>(N)) {
      for (const spn::HistogramBucket &B : Hist->getBuckets())
        hashCombineSeed(Seed, hashCombine(B.Lb, B.Ub, B.P));
    } else if (const auto *Cat = dyn_cast<spn::CategoricalLeaf>(N)) {
      for (double P : Cat->getProbabilities())
        hashCombineSeed(Seed, std::hash<double>()(P));
    } else if (const auto *Gauss = dyn_cast<spn::GaussianLeaf>(N)) {
      hashCombineSeed(Seed,
                      hashCombine(Gauss->getMean(), Gauss->getStdDev()));
    }
  }
  return Seed;
}

uint64_t KernelCache::structuralHash(const spn::Model &Model) {
  return merge::structuralHash(Model);
}

uint64_t KernelCache::stageFingerprint(
    const CompilationPipeline &Pipeline) {
  size_t Seed = hashCombine(Pipeline.getStages().size());
  for (const PipelineStage &Stage : Pipeline.getStages())
    hashCombineSeed(Seed, fnv1a64(Stage.Name.data(), Stage.Name.size()));
  return Seed;
}

uint64_t KernelCache::makeKey(const spn::Model &Model,
                              const spn::QueryConfig &Query,
                              const PipelineConfig &Config) {
  // Default stage set: hashing the freshly-built pipeline keeps this
  // overload's keys identical to what getOrCompile computes when no
  // ConfigurePipeline hook is installed.
  return makeKey(Model, Query, Config,
                 stageFingerprint(CompilationPipeline(Config)));
}

uint64_t KernelCache::makeKey(const spn::Model &Model,
                              const spn::QueryConfig &Query,
                              const PipelineConfig &Config,
                              uint64_t StageFingerprint) {
  return makeKey(Model, Query, Config, StageFingerprint,
                 defaultBackend());
}

namespace {

/// Folds the non-model key components onto \p ModelHash — shared by the
/// classic (contentHash-seeded) and merged (structuralHash-seeded) key
/// paths.
uint64_t combineKey(uint64_t ModelHash, const spn::QueryConfig &Query,
                    const PipelineConfig &Config,
                    uint64_t StageFingerprint,
                    const backend::Backend &TheBackend) {
  size_t Seed = ModelHash;
  // Query.Kind participates in the key, so a cache populated with
  // joint/marginal kernels (or old query-less keys) never serves an MPE
  // or sampling request — it misses and recompiles transparently.
  hashCombineSeed(Seed,
                  hashCombine(Query.BatchSize, Query.LogSpace,
                              Query.SupportMarginal,
                              static_cast<unsigned>(Query.DataType),
                              static_cast<unsigned>(Query.Kind)));
  hashCombineSeed(Seed, Config.hash());
  hashCombineSeed(Seed, StageFingerprint);
  const std::string &Name = TheBackend.getName();
  hashCombineSeed(Seed, fnv1a64(Name.data(), Name.size()));
  hashCombineSeed(Seed, TheBackend.artifactFingerprint());
  return Seed;
}

} // namespace

uint64_t KernelCache::makeKey(const spn::Model &Model,
                              const spn::QueryConfig &Query,
                              const PipelineConfig &Config,
                              uint64_t StageFingerprint,
                              const backend::Backend &TheBackend) {
  return combineKey(contentHash(Model), Query, Config, StageFingerprint,
                    TheBackend);
}

std::string KernelCache::entryPath(uint64_t Key) const {
  if (TheConfig.Directory.empty())
    return std::string();
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.spnk",
                static_cast<unsigned long long>(Key));
  return TheConfig.Directory + "/" + Name;
}

std::string KernelCache::tuningRecordPath(uint64_t ModelHash) const {
  if (TheConfig.Directory.empty())
    return std::string();
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.tune.json",
                static_cast<unsigned long long>(ModelHash));
  return TheConfig.Directory + "/" + Name;
}

namespace {

/// Outcome of probing the disk tier for one key.
struct DiskProbe {
  /// The file existed (so a decode failure means corruption, not a
  /// plain miss).
  bool Existed = false;
  /// The entry predates the checksummed format (v3).
  bool Legacy = false;
};

/// Reads and decodes a cached `.spnk`; any failure (missing file, short
/// read, bad blob, checksum mismatch) returns an error the caller
/// treats as a miss. \p Probe distinguishes corruption from absence.
Expected<vm::KernelProgram> loadCachedProgram(const std::string &Path,
                                              DiskProbe &Probe) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeError("no cache entry at '" + Path + "'");
  Probe.Existed = true;
  std::vector<uint8_t> Blob;
  uint8_t Chunk[4096];
  size_t Read;
  while ((Read = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Blob.insert(Blob.end(), Chunk, Chunk + Read);
  bool ReadError = std::ferror(File) != 0;
  std::fclose(File);
  if (ReadError)
    return makeError("cannot read cache entry '" + Path + "'");
  vm::BinaryInfo Info;
  Expected<vm::KernelProgram> Program = vm::decodeProgram(Blob, &Info);
  if (Program && !Info.Checksummed) {
    Probe.Legacy = true;
    std::fprintf(stderr,
                 "warning: kernel cache entry '%s' uses legacy binary "
                 "format v%u (no checksum); it will be trusted as-is — "
                 "delete it to re-save in format v%u\n",
                 Path.c_str(), Info.Version, vm::kProgramBinaryVersion);
  }
  return Program;
}

} // namespace

void KernelCache::touch(std::unordered_map<uint64_t, Entry>::iterator It) {
  LruOrder.splice(LruOrder.begin(), LruOrder, It->second.LruIt);
}

void KernelCache::enforceCapacity() {
  if (TheConfig.MaxEntries == 0)
    return;
  while (Entries.size() > TheConfig.MaxEntries) {
    uint64_t Victim = LruOrder.back();
    LruOrder.pop_back();
    Entries.erase(Victim);
    ++Counters.Evictions;
  }
}

void KernelCache::pruneDiskTier(const std::string &KeepPath,
                                uint64_t &PrunedFiles,
                                uint64_t &PrunedBytes) const {
  PrunedFiles = 0;
  PrunedBytes = 0;
  if (TheConfig.DiskBudgetBytes == 0)
    return;

  namespace fs = std::filesystem;
  struct DiskFile {
    fs::path Path;
    uint64_t Size = 0;
    fs::file_time_type MTime;
  };
  std::vector<DiskFile> Files;
  uint64_t TotalBytes = 0;
  std::error_code EC;
  for (const fs::directory_entry &DirEntry :
       fs::directory_iterator(TheConfig.Directory, EC)) {
    if (EC)
      return;
    if (!DirEntry.is_regular_file(EC) ||
        DirEntry.path().extension() != ".spnk")
      continue;
    DiskFile F;
    F.Path = DirEntry.path();
    F.Size = DirEntry.file_size(EC);
    if (EC)
      continue;
    F.MTime = DirEntry.last_write_time(EC);
    if (EC)
      continue;
    TotalBytes += F.Size;
    Files.push_back(std::move(F));
  }
  if (TotalBytes <= TheConfig.DiskBudgetBytes)
    return;

  // Oldest first; the entry just written (KeepPath) survives even when
  // it alone exceeds the budget.
  std::sort(Files.begin(), Files.end(),
            [](const DiskFile &A, const DiskFile &B) {
              return A.MTime < B.MTime;
            });
  for (const DiskFile &F : Files) {
    if (TotalBytes <= TheConfig.DiskBudgetBytes)
      break;
    if (F.Path == fs::path(KeepPath))
      continue;
    std::error_code RemoveEC;
    if (fs::remove(F.Path, RemoveEC) && !RemoveEC) {
      TotalBytes -= F.Size;
      ++PrunedFiles;
      PrunedBytes += F.Size;
    }
  }
}

Expected<CompiledKernel>
KernelCache::getOrCompile(const spn::Model &Model,
                          const spn::QueryConfig &Query,
                          const CompilerOptions &Options,
                          CompileStats *CompStats) {
  return getOrCompileImpl(contentHash(Model), Model, Query, Options,
                          CompStats, /*ExpectParameterized=*/false,
                          /*FreshlyCompiled=*/nullptr);
}

Expected<KernelCache::MergedKernel>
KernelCache::getOrCompileMerged(const spn::Model &Model,
                                const spn::QueryConfig &Query,
                                const CompilerOptions &Options,
                                CompileStats *CompStats) {
  CompilerOptions MergedOptions = Options;
  MergedOptions.Lowering.Parameterize = true;
  std::vector<double> Params = merge::extractParams(Model);
  bool Fresh = false;
  Expected<CompiledKernel> Kernel = getOrCompileImpl(
      structuralHash(Model), Model, Query, MergedOptions, CompStats,
      /*ExpectParameterized=*/true, &Fresh);
  if (!Kernel)
    return Kernel.getError();
  const std::shared_ptr<ExecutionEngine> &Engine =
      Kernel->getEngineShared();
  if (Fresh) {
    // Trust-but-verify on every fresh compile: binding the generating
    // model's own canonical parameters must reproduce the program's
    // baked side tables bit-for-bit. A divergence means the param-site
    // bookkeeping and the extraction order disagree — serving would
    // silently evaluate the wrong model, so fail loudly instead.
    const vm::KernelProgram *Program = Engine->getProgram();
    std::string Why = "engine exposes no compiled program";
    if (!Program || !vm::verifySelfBinding(*Program, Params, &Why))
      return makeError(
          "merged compilation failed its self-binding check: " + Why);
  }
  int32_t TableIndex = Engine->addParamTable(Params.data(), Params.size());
  if (TableIndex < 0)
    return makeError("merged compilation: engine '" + Engine->describe() +
                     "' rejected the weight table (no param-table "
                     "support, or parameter count mismatch)");
  MergedKernel Result;
  Result.Kernel = std::move(*Kernel);
  Result.TableIndex = TableIndex;
  return Result;
}

Expected<CompiledKernel>
KernelCache::getOrCompileImpl(uint64_t ModelHash, const spn::Model &Model,
                              const spn::QueryConfig &Query,
                              const CompilerOptions &Options,
                              CompileStats *CompStats,
                              bool ExpectParameterized,
                              bool *FreshlyCompiled) {
  if (FreshlyCompiled)
    *FreshlyCompiled = false;
  Expected<CompilationPipeline> Pipeline =
      CompilationPipeline::create(Options);
  if (!Pipeline)
    return Pipeline.getError();
  if (TheConfig.ConfigurePipeline)
    if (std::optional<Error> Err = TheConfig.ConfigurePipeline(*Pipeline))
      return *Err;
  const backend::Backend &TheBackend =
      TheConfig.TheBackend ? *TheConfig.TheBackend : defaultBackend();
  uint64_t Key = combineKey(ModelHash, Query, Pipeline->getConfig(),
                            stageFingerprint(*Pipeline), TheBackend);

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Key);
    if (It != Entries.end()) {
      ++Counters.Hits;
      touch(It);
      return CompiledKernel(It->second.Engine);
    }
    ++Counters.Misses;
  }

  // Miss: try the disk tier, then compile. Both run outside the lock so
  // distinct keys make progress concurrently; duplicate concurrent work
  // on the same key is resolved at insertion (first wins).
  bool FromDisk = false;
  DiskProbe Probe;
  std::shared_ptr<ExecutionEngine> Engine;
  std::string Path = entryPath(Key);
  uint64_t PrunedFiles = 0, PrunedBytes = 0;
  if (!Path.empty()) {
    Expected<vm::KernelProgram> Cached = loadCachedProgram(Path, Probe);
    if (Cached &&
        Cached->Query != static_cast<vm::QueryKind>(Query.Kind)) {
      // Defense in depth: the query kind participates in the cache key,
      // so this only triggers when an entry written before query
      // tagging (or a hand-copied file) occupies the slot. Serving it
      // would answer the wrong inference task — recompile instead.
      Cached = makeError(
          "compiled for query kind " +
          std::to_string(static_cast<unsigned>(Cached->Query)) +
          ", requested " +
          std::to_string(static_cast<unsigned>(Query.Kind)));
    }
    if (Cached && Cached->Parameterized != ExpectParameterized) {
      // Same defense for the merged path: a non-parameterized blob in a
      // merged slot (or vice versa) cannot serve the request.
      Cached = makeError(ExpectParameterized
                             ? "entry is not parameterized; the merged "
                               "path requires a weight-table kernel"
                             : "entry is parameterized; the classic "
                               "path requires a baked kernel");
    }
    if (Cached) {
      // A `.spnk` stores only the portable program; the backend turns
      // it back into a live engine (for the native backend that means
      // re-emitting and re-linking the shared object). A materialize
      // failure is handled like corruption: warn and recompile.
      Expected<backend::CompiledArtifact> Artifact =
          TheBackend.materialize(Cached.takeValue(),
                                 Pipeline->getConfig());
      if (Artifact) {
        Engine = std::move(Artifact->Engine);
        FromDisk = true;
      } else {
        std::fprintf(stderr,
                     "warning: rejecting kernel cache entry '%s': %s "
                     "(recompiling)\n",
                     Path.c_str(),
                     Artifact.getError().message().c_str());
      }
    } else if (Probe.Existed) {
      std::fprintf(stderr,
                   "warning: rejecting kernel cache entry '%s': %s "
                   "(recompiling)\n",
                   Path.c_str(), Cached.getError().message().c_str());
    }
  }
  if (!Engine) {
    Expected<backend::CompiledArtifact> Artifact =
        TheBackend.compile(*Pipeline, Model, Query, CompStats);
    if (!Artifact)
      return Artifact.getError();
    Engine = std::move(Artifact->Engine);
    if (FreshlyCompiled)
      *FreshlyCompiled = true;
    if (!Path.empty() && Engine->getProgram()) {
      // Persist for future processes; failures (e.g. unwritable
      // directory) only cost the next process a recompile.
      std::error_code EC;
      std::filesystem::create_directories(TheConfig.Directory, EC);
      if (succeeded(saveCompiledKernel(CompiledKernel(Engine), Path)))
        pruneDiskTier(Path, PrunedFiles, PrunedBytes);
    }
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  Counters.DiskPrunedFiles += PrunedFiles;
  Counters.DiskPrunedBytes += PrunedBytes;
  if (Probe.Existed && !FromDisk)
    ++Counters.CorruptedDiskEntries;
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    // Lost a same-key race: the first engine wins, ours is dropped.
    touch(It);
    return CompiledKernel(It->second.Engine);
  }
  LruOrder.push_front(Key);
  It = Entries.emplace(Key, Entry{std::move(Engine), LruOrder.begin()})
           .first;
  if (FromDisk) {
    ++Counters.DiskHits;
    if (Probe.Legacy)
      ++Counters.LegacyDiskEntries;
  } else {
    ++Counters.Recompiles;
  }
  CompiledKernel Result(It->second.Engine);
  enforceCapacity();
  return Result;
}

size_t KernelCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
  LruOrder.clear();
}

KernelCache::Stats KernelCache::getStats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}
