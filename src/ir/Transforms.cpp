//===- Transforms.cpp - Generic IR transformations --------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Transforms.h"

#include "ir/Operation.h"
#include "ir/PatternMatch.h"
#include "support/Hashing.h"

#include <unordered_map>
#include <vector>

using namespace spnc;
using namespace spnc::ir;

//===----------------------------------------------------------------------===//
// CSE
//===----------------------------------------------------------------------===//

namespace {

/// Structural key of a pure operation: name, operand identities,
/// attributes, result types.
struct OpKey {
  const OpInfo *Info;
  std::vector<ValueImpl *> Operands;
  std::vector<const AttrStorage *> Attrs;
  std::vector<const TypeStorage *> ResultTypes;

  bool operator==(const OpKey &Other) const {
    return Info == Other.Info && Operands == Other.Operands &&
           Attrs == Other.Attrs && ResultTypes == Other.ResultTypes;
  }
};

struct OpKeyHash {
  size_t operator()(const OpKey &Key) const {
    size_t Seed = std::hash<const void *>()(Key.Info);
    for (ValueImpl *Operand : Key.Operands)
      hashCombineSeed(Seed, std::hash<void *>()(Operand));
    for (const AttrStorage *Attr : Key.Attrs)
      hashCombineSeed(Seed, std::hash<const void *>()(Attr));
    for (const TypeStorage *Ty : Key.ResultTypes)
      hashCombineSeed(Seed, std::hash<const void *>()(Ty));
    return Seed;
  }
};

static OpKey makeKey(Operation *Op) {
  OpKey Key;
  Key.Info = Op->getInfo();
  for (unsigned I = 0; I < Op->getNumOperands(); ++I)
    Key.Operands.push_back(Op->getOperand(I).getImpl());
  for (const NamedAttribute &Entry : Op->getAttrs())
    Key.Attrs.push_back(Entry.Value.getImpl());
  for (unsigned I = 0; I < Op->getNumResults(); ++I)
    Key.ResultTypes.push_back(Op->getResult(I).getType().getImpl());
  return Key;
}

/// Scoped value-numbering table: one map per nesting level; lookups walk
/// outward, so expressions already available in an enclosing block are
/// reused inside nested regions.
class CSEDriver {
public:
  unsigned run(Operation *Scope) {
    processRegionsOf(Scope);
    return NumErased;
  }

private:
  void processRegionsOf(Operation *Op) {
    for (unsigned R = 0; R < Op->getNumRegions(); ++R)
      for (auto &TheBlock : Op->getRegion(R))
        processBlock(*TheBlock);
  }

  void processBlock(Block &TheBlock) {
    Scopes.emplace_back();
    auto It = TheBlock.begin();
    while (It != TheBlock.end()) {
      Operation *Op = *It;
      ++It;
      // Only simple pure ops without regions are CSE candidates; ops with
      // regions are just recursed into.
      if (!Op->isPure() || Op->getNumRegions() > 0 ||
          Op->getNumResults() == 0) {
        processRegionsOf(Op);
        continue;
      }
      OpKey Key = makeKey(Op);
      if (Operation *Existing = lookup(Key)) {
        std::vector<Value> Replacements = Existing->getResults();
        Op->replaceAllUsesWith(Replacements);
        Op->erase();
        ++NumErased;
        continue;
      }
      Scopes.back().emplace(std::move(Key), Op);
    }
    Scopes.pop_back();
  }

  Operation *lookup(const OpKey &Key) const {
    for (auto ScopeIt = Scopes.rbegin(); ScopeIt != Scopes.rend();
         ++ScopeIt) {
      auto Found = ScopeIt->find(Key);
      if (Found != ScopeIt->end())
        return Found->second;
    }
    return nullptr;
  }

  std::vector<std::unordered_map<OpKey, Operation *, OpKeyHash>> Scopes;
  unsigned NumErased = 0;
};

} // namespace

unsigned spnc::ir::runCSE(Operation *Scope) {
  return CSEDriver().run(Scope);
}

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

unsigned spnc::ir::runDCE(Operation *Scope) {
  unsigned NumErased = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Scope->walk([&](Operation *Op) {
      if (Op == Scope || !Op->isPure() || Op->isTerminator())
        return;
      if (Op->getNumResults() == 0 || !Op->useEmpty())
        return;
      Op->erase();
      ++NumErased;
      Changed = true;
    });
  }
  return NumErased;
}

//===----------------------------------------------------------------------===//
// Canonicalizer
//===----------------------------------------------------------------------===//

LogicalResult spnc::ir::runCanonicalizer(Operation *Scope) {
  PatternList Patterns =
      collectCanonicalizationPatterns(Scope->getContext());
  if (failed(applyPatternsGreedily(Scope, Patterns)))
    return failure();
  runDCE(Scope);
  return success();
}

//===----------------------------------------------------------------------===//
// Pass wrappers
//===----------------------------------------------------------------------===//

namespace {

class CSEPass : public Pass {
public:
  const char *getName() const override { return "cse"; }
  LogicalResult run(Operation *Module, Context &) override {
    runCSE(Module);
    return success();
  }
};

class DCEPass : public Pass {
public:
  const char *getName() const override { return "dce"; }
  LogicalResult run(Operation *Module, Context &) override {
    runDCE(Module);
    return success();
  }
};

class CanonicalizerPass : public Pass {
public:
  const char *getName() const override { return "canonicalize"; }
  LogicalResult run(Operation *Module, Context &) override {
    return runCanonicalizer(Module);
  }
};

} // namespace

std::unique_ptr<Pass> spnc::ir::createCSEPass() {
  return std::make_unique<CSEPass>();
}
std::unique_ptr<Pass> spnc::ir::createDCEPass() {
  return std::make_unique<DCEPass>();
}
std::unique_ptr<Pass> spnc::ir::createCanonicalizerPass() {
  return std::make_unique<CanonicalizerPass>();
}
