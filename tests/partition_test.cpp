//===- partition_test.cpp - Acyclic graph partitioner tests --------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the heuristic acyclic partitioner (paper
/// §IV-A4): topological ordering, the acyclicity invariant, balance with
/// 1% slack, and cost non-regression of the Simple-Moves refinement —
/// swept over random DAGs with parameterized shapes.
///
//===----------------------------------------------------------------------===//

#include "partition/Partitioner.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace spnc;
using namespace spnc::partition;

namespace {

/// Random layered DAG resembling an SPN body: forward edges only.
Graph makeRandomDag(uint32_t NumNodes, double EdgeDensity,
                    uint64_t Seed) {
  Graph G(NumNodes);
  Rng R(Seed);
  for (uint32_t N = 1; N < NumNodes; ++N) {
    // Every non-source node consumes 1-3 earlier values.
    unsigned NumPreds = 1 + static_cast<unsigned>(R.uniformInt(3));
    for (unsigned P = 0; P < NumPreds; ++P) {
      uint32_t Pred = static_cast<uint32_t>(R.uniformInt(N));
      if (R.uniform() < EdgeDensity || P == 0)
        G.addEdge(Pred, N);
    }
  }
  return G;
}

TEST(PartitionerTest, DfsOrderIsTopological) {
  Graph G = makeRandomDag(500, 0.8, 17);
  std::vector<uint32_t> Order = dfsTopologicalOrder(G);
  ASSERT_EQ(Order.size(), 500u);
  std::vector<uint32_t> Position(500);
  for (uint32_t I = 0; I < Order.size(); ++I)
    Position[Order[I]] = I;
  for (uint32_t N = 0; N < 500; ++N)
    for (uint32_t Succ : G.successors(N))
      EXPECT_LT(Position[N], Position[Succ]);
}

TEST(PartitionerTest, SingleChainStaysContiguous) {
  // In a chain, the DFS order must be the chain order, and chunks of
  // MaxPartitionSize follow it exactly.
  Graph G(10);
  for (uint32_t N = 0; N + 1 < 10; ++N)
    G.addEdge(N, N + 1);
  PartitionOptions Options;
  Options.MaxPartitionSize = 4;
  Partitioning Result = partitionGraph(G, Options);
  EXPECT_EQ(Result.NumPartitions, 3u);
  for (uint32_t N = 0; N + 1 < 10; ++N)
    EXPECT_LE(Result[N], Result[N + 1]);
  EXPECT_TRUE(isAcyclicPartitioning(G, Result));
}

TEST(PartitionerTest, SinglePartitionWhenGraphFits) {
  Graph G = makeRandomDag(100, 0.5, 3);
  PartitionOptions Options;
  Options.MaxPartitionSize = 1000;
  Partitioning Result = partitionGraph(G, Options);
  EXPECT_EQ(Result.NumPartitions, 1u);
  EXPECT_EQ(communicationCost(G, Result), 0u);
}

TEST(PartitionerTest, EmptyGraph) {
  Graph G(0);
  Partitioning Result = partitionGraph(G, PartitionOptions());
  EXPECT_EQ(Result.NumPartitions, 0u);
  EXPECT_TRUE(isAcyclicPartitioning(G, Result));
}

TEST(PartitionerTest, CostModelCountsStoresAndLoads) {
  // 0 -> {1, 2}; put 0 alone in partition 0, 1 and 2 in partition 1:
  // one store + one load = 2. With 2 in its own partition 2: one store +
  // two loads = 3.
  Graph G(3);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  Partitioning Result;
  Result.NodeToPartition = {0, 1, 1};
  Result.NumPartitions = 2;
  EXPECT_EQ(communicationCost(G, Result), 2u);
  Result.NodeToPartition = {0, 1, 2};
  Result.NumPartitions = 3;
  EXPECT_EQ(communicationCost(G, Result), 3u);
  // All in one partition: no communication.
  Result.NodeToPartition = {0, 0, 0};
  Result.NumPartitions = 1;
  EXPECT_EQ(communicationCost(G, Result), 0u);
}

TEST(PartitionerTest, RefinementDoesNotIncreaseCost) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    Graph G = makeRandomDag(2000, 0.7, Seed);
    PartitionOptions NoRefine;
    NoRefine.MaxPartitionSize = 150;
    NoRefine.EnableRefinement = false;
    PartitionOptions Simple = NoRefine;
    Simple.EnableRefinement = true;
    PartitionOptions Global = Simple;
    Global.Strategy = RefinementStrategy::GlobalMoves;

    uint64_t CostBefore =
        communicationCost(G, partitionGraph(G, NoRefine));
    uint64_t CostSimple =
        communicationCost(G, partitionGraph(G, Simple));
    uint64_t CostGlobal =
        communicationCost(G, partitionGraph(G, Global));
    EXPECT_LE(CostSimple, CostBefore) << "seed " << Seed;
    EXPECT_LE(CostGlobal, CostBefore) << "seed " << Seed;
  }
}

TEST(PartitionerTest, GlobalMovesKeepsInvariants) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    Graph G = makeRandomDag(3000, 0.6, Seed);
    PartitionOptions Options;
    Options.MaxPartitionSize = 200;
    Options.Strategy = RefinementStrategy::GlobalMoves;
    Partitioning Result = partitionGraph(G, Options);
    EXPECT_TRUE(isAcyclicPartitioning(G, Result));
    std::vector<uint32_t> Sizes(Result.NumPartitions, 0);
    for (uint32_t N = 0; N < 3000; ++N)
      ++Sizes[Result[N]];
    auto MaxAllowed = static_cast<uint32_t>(
        std::ceil(200.0 * (1.0 + Options.Slack)));
    for (uint32_t Size : Sizes)
      EXPECT_LE(Size, MaxAllowed);
  }
}

/// Property sweep over DAG shapes and partition sizes.
class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(PartitionPropertyTest, InvariantsHold) {
  auto [NumNodes, MaxSize] = GetParam();
  for (uint64_t Seed = 10; Seed < 13; ++Seed) {
    Graph G = makeRandomDag(NumNodes, 0.6, Seed);
    PartitionOptions Options;
    Options.MaxPartitionSize = MaxSize;
    Partitioning Result = partitionGraph(G, Options);

    // Acyclicity: edges only point to equal-or-later partitions.
    EXPECT_TRUE(isAcyclicPartitioning(G, Result));

    // Every node has a valid partition id.
    ASSERT_EQ(Result.NodeToPartition.size(), NumNodes);
    std::vector<uint32_t> Sizes(Result.NumPartitions, 0);
    for (uint32_t N = 0; N < NumNodes; ++N) {
      ASSERT_LT(Result[N], Result.NumPartitions);
      ++Sizes[Result[N]];
    }

    // Balance: within MaxSize plus the 1% slack.
    auto MaxAllowed = static_cast<uint32_t>(
        std::ceil(static_cast<double>(MaxSize) * (1.0 + Options.Slack)));
    for (uint32_t Size : Sizes) {
      EXPECT_GT(Size, 0u); // compacted: no empty partitions
      EXPECT_LE(Size, MaxAllowed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionPropertyTest,
    ::testing::Values(std::make_tuple(50u, 10u),
                      std::make_tuple(500u, 50u),
                      std::make_tuple(500u, 499u),
                      std::make_tuple(3000u, 250u),
                      std::make_tuple(3000u, 1000u),
                      std::make_tuple(10000u, 1000u)));

TEST(PartitionerTest, TreeShapedDagKeepsSubtreesTogether) {
  // Binary in-tree: node N feeds node (N-1)/2; leaves are the second
  // half. The DFS-like order should make most edges intra-partition.
  const uint32_t NumNodes = 1023;
  Graph G(NumNodes);
  for (uint32_t N = 1; N < NumNodes; ++N)
    G.addEdge(N, (N - 1) / 2);
  PartitionOptions Options;
  Options.MaxPartitionSize = 128;
  Partitioning Result = partitionGraph(G, Options);
  EXPECT_TRUE(isAcyclicPartitioning(G, Result));
  // At most one crossing per partition boundary region: the cost must be
  // far below the edge count (1022).
  EXPECT_LT(communicationCost(G, Result), 100u);
}

} // namespace
