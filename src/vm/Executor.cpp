//===- Executor.cpp - Scalar and SIMD bytecode execution engines --------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "vm/Executor.h"

#include "support/Compiler.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "vm/ParamTable.h"
#include "vm/Traceback.h"
#include "vm/VecMath.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <span>
#include <vector>

using namespace spnc;
using namespace spnc::vm;

// Opaque libm entry points (see VecMath.h). Plain wrappers keep the
// addresses stable regardless of how the standard library spells the
// overloads.
static float libmExpF(float X) { return std::exp(X); }
static float libmLog1pF(float X) { return std::log1p(X); }
static float libmLogF(float X) { return std::log(X); }
static double libmExpD(double X) { return std::exp(X); }
static double libmLog1pD(double X) { return std::log1p(X); }
static double libmLogD(double X) { return std::log(X); }

float (*const volatile spnc::vm::ScalarExpF)(float) = &libmExpF;
float (*const volatile spnc::vm::ScalarLog1pF)(float) = &libmLog1pF;
float (*const volatile spnc::vm::ScalarLogF)(float) = &libmLogF;
double (*const volatile spnc::vm::ScalarExpD)(double) = &libmExpD;
double (*const volatile spnc::vm::ScalarLog1pD)(double) = &libmLog1pD;
double (*const volatile spnc::vm::ScalarLogD)(double) = &libmLogD;

//===----------------------------------------------------------------------===//
// Buffer addressing
//===----------------------------------------------------------------------===//

template <typename T>
static SPNC_ALWAYS_INLINE size_t elementIndex(const BufferBinding<T> &B,
                                              uint32_t Col, size_t I) {
  return B.Transposed
             ? static_cast<size_t>(Col) * B.Stride + B.Offset + I
             : (B.Offset + I) * B.Columns + Col;
}

template <typename T>
static SPNC_ALWAYS_INLINE T loadElement(const BufferBinding<T> &B,
                                        uint32_t Col, size_t I) {
  size_t Idx = elementIndex(B, Col, I);
  if (B.ExternalIn)
    return static_cast<T>(B.ExternalIn[Idx]);
  if (B.Scratch)
    return B.Scratch[Idx];
  return static_cast<T>(B.ExternalOut[Idx]);
}

template <typename T>
static SPNC_ALWAYS_INLINE void storeElement(const BufferBinding<T> &B,
                                            uint32_t Col, size_t I,
                                            T Value) {
  size_t Idx = elementIndex(B, Col, I);
  if (B.Scratch)
    B.Scratch[Idx] = Value;
  else
    B.ExternalOut[Idx] = static_cast<double>(Value);
}

//===----------------------------------------------------------------------===//
// Scalar engine
//===----------------------------------------------------------------------===//

template <typename T>
static SPNC_ALWAYS_INLINE T scalarLogSumExp(T A, T B) {
  T Max = A > B ? A : B;
  if (Max == -std::numeric_limits<T>::infinity())
    return Max;
  T Diff = (A > B ? B : A) - Max;
  return Max + static_cast<T>(
                   std::log1p(std::exp(static_cast<double>(Diff))));
}

template <typename T>
void spnc::vm::executeSample(const TaskProgram &Task,
                             const BufferBinding<T> *Buffers,
                             size_t SampleIdx, T *Registers) {
  const T NegInf = -std::numeric_limits<T>::infinity();
  (void)NegInf;
  const Instruction *Inst = Task.Code.data();
  const Instruction *End = Inst + Task.Code.size();

#if defined(__GNUC__) || defined(__clang__)
  // Direct-threaded dispatch: one indirect branch per instruction,
  // predicted per-opcode-site instead of through a single shared switch
  // branch. This stands in for the dispatch-free native code the paper's
  // LLVM backend emits.
  static const void *JumpTable[] = {
      &&op_Const,       &&op_Load,          &&op_Store,
      &&op_Add,         &&op_Mul,           &&op_FusedMulAdd,
      &&op_LogSumExp,   &&op_Gaussian,      &&op_GaussianLog,
      &&op_TableLookup, &&op_SelectInRange, &&op_NanBlend,
      &&op_AddN,        &&op_MulN,          &&op_LogSumExpN,
      &&op_Max};
#define SPNC_DISPATCH()                                                     \
  do {                                                                      \
    if (Inst == End)                                                        \
      return;                                                               \
    goto *JumpTable[static_cast<unsigned>((Inst++)->Op)];                   \
  } while (0)
#define SPNC_CASE(name) op_##name:
#define SPNC_INST (Inst[-1])
#define SPNC_NEXT() SPNC_DISPATCH()
  SPNC_DISPATCH();
#else
#define SPNC_CASE(name) case OpCode::name:
#define SPNC_INST (*Inst)
#define SPNC_NEXT() break
  for (; Inst != End; ++Inst) {
    switch (Inst->Op) {
#endif

  SPNC_CASE(Const) {
    const Instruction &I = SPNC_INST;
    Registers[I.Dst] = static_cast<T>(Task.ConstPool[I.A]);
    SPNC_NEXT();
  }
  SPNC_CASE(Load) {
    const Instruction &I = SPNC_INST;
    const BufferAccess &Access = Task.Loads[I.A];
    Registers[I.Dst] =
        loadElement(Buffers[Access.Buffer], Access.Index, SampleIdx);
    SPNC_NEXT();
  }
  SPNC_CASE(Store) {
    const Instruction &I = SPNC_INST;
    const BufferAccess &Access = Task.Stores[I.A];
    storeElement(Buffers[Access.Buffer], Access.Index, SampleIdx,
                 Registers[I.Dst]);
    SPNC_NEXT();
  }
  SPNC_CASE(Add) {
    const Instruction &I = SPNC_INST;
    Registers[I.Dst] = Registers[I.A] + Registers[I.B];
    SPNC_NEXT();
  }
  SPNC_CASE(Mul) {
    const Instruction &I = SPNC_INST;
    Registers[I.Dst] = Registers[I.A] * Registers[I.B];
    SPNC_NEXT();
  }
  SPNC_CASE(FusedMulAdd) {
    const Instruction &I = SPNC_INST;
    Registers[I.Dst] =
        Registers[I.A] * Registers[I.B] + Registers[I.C];
    SPNC_NEXT();
  }
  SPNC_CASE(LogSumExp) {
    const Instruction &I = SPNC_INST;
    Registers[I.Dst] = scalarLogSumExp(Registers[I.A], Registers[I.B]);
    SPNC_NEXT();
  }
  SPNC_CASE(Gaussian) {
    const Instruction &I = SPNC_INST;
    const GaussianParams &P = Task.Gaussians[I.B];
    T X = Registers[I.A];
    if (P.SupportMarginal && std::isnan(X)) {
      Registers[I.Dst] = static_cast<T>(P.MarginalValue);
    } else {
      T Norm = (X - static_cast<T>(P.Mean)) * static_cast<T>(P.InvStdDev);
      Registers[I.Dst] =
          static_cast<T>(P.Coefficient) *
          static_cast<T>(std::exp(static_cast<double>(T(-0.5) * Norm * Norm)));
    }
    SPNC_NEXT();
  }
  SPNC_CASE(GaussianLog) {
    const Instruction &I = SPNC_INST;
    const GaussianParams &P = Task.Gaussians[I.B];
    T X = Registers[I.A];
    if (P.SupportMarginal && std::isnan(X)) {
      Registers[I.Dst] = static_cast<T>(P.MarginalValue);
    } else {
      T Norm = (X - static_cast<T>(P.Mean)) * static_cast<T>(P.InvStdDev);
      Registers[I.Dst] =
          static_cast<T>(P.Coefficient) - T(0.5) * Norm * Norm;
    }
    SPNC_NEXT();
  }
  SPNC_CASE(TableLookup) {
    const Instruction &I = SPNC_INST;
    const LookupTable &Table = Task.Tables[I.B];
    T X = Registers[I.A];
    if (Table.SupportMarginal && std::isnan(X)) {
      Registers[I.Dst] = static_cast<T>(Table.MarginalValue);
    } else {
      auto Idx = static_cast<int64_t>(
          std::floor(static_cast<double>(X) - Table.Lo));
      Registers[I.Dst] =
          (Idx >= 0 && Idx < static_cast<int64_t>(Table.Values.size()))
              ? static_cast<T>(Table.Values[static_cast<size_t>(Idx)])
              : static_cast<T>(Table.DefaultValue);
    }
    SPNC_NEXT();
  }
  SPNC_CASE(SelectInRange) {
    const Instruction &I = SPNC_INST;
    const SelectRange &Range = Task.Selects[I.B];
    T X = Registers[I.A];
    // NaN compares false, so marginalized evidence keeps the previously
    // blended value.
    if (X >= static_cast<T>(Range.Lo) && X < static_cast<T>(Range.Hi))
      Registers[I.Dst] = static_cast<T>(Range.Value);
    SPNC_NEXT();
  }
  SPNC_CASE(NanBlend) {
    const Instruction &I = SPNC_INST;
    if (std::isnan(Registers[I.A]))
      Registers[I.Dst] = static_cast<T>(Task.ConstPool[I.B]);
    SPNC_NEXT();
  }
  SPNC_CASE(AddN) {
    const Instruction &I = SPNC_INST;
    const uint32_t *Args = &Task.Args[I.A];
    T Sum = T(0);
    for (uint32_t N = 0; N < I.B; ++N)
      Sum += Registers[Args[N]];
    Registers[I.Dst] = Sum;
    SPNC_NEXT();
  }
  SPNC_CASE(MulN) {
    const Instruction &I = SPNC_INST;
    const uint32_t *Args = &Task.Args[I.A];
    T Product = T(1);
    for (uint32_t N = 0; N < I.B; ++N)
      Product *= Registers[Args[N]];
    Registers[I.Dst] = Product;
    SPNC_NEXT();
  }
  SPNC_CASE(LogSumExpN) {
    const Instruction &I = SPNC_INST;
    const uint32_t *Args = &Task.Args[I.A];
    T Max = -std::numeric_limits<T>::infinity();
    for (uint32_t N = 0; N < I.B; ++N)
      Max = Registers[Args[N]] > Max ? Registers[Args[N]] : Max;
    if (Max == -std::numeric_limits<T>::infinity()) {
      Registers[I.Dst] = Max;
    } else {
      T Sum = T(0);
      for (uint32_t N = 0; N < I.B; ++N)
        Sum += static_cast<T>(std::exp(
            static_cast<double>(Registers[Args[N]] - Max)));
      Registers[I.Dst] =
          Max + static_cast<T>(std::log(static_cast<double>(Sum)));
    }
    SPNC_NEXT();
  }
  SPNC_CASE(Max) {
    const Instruction &I = SPNC_INST;
    // Ties keep A (the earlier chain element) so that MPE argmax ties
    // resolve to the lowest child index.
    Registers[I.Dst] = Registers[I.A] >= Registers[I.B]
                           ? Registers[I.A]
                           : Registers[I.B];
    SPNC_NEXT();
  }

#if defined(__GNUC__) || defined(__clang__)
#else
    }
  }
#endif
#undef SPNC_DISPATCH
#undef SPNC_CASE
#undef SPNC_INST
#undef SPNC_NEXT
}


template void spnc::vm::executeSample<float>(const TaskProgram &,
                                             const BufferBinding<float> *,
                                             size_t, float *);
template void spnc::vm::executeSample<double>(const TaskProgram &,
                                              const BufferBinding<double> *,
                                              size_t, double *);

//===----------------------------------------------------------------------===//
// Vector engine
//===----------------------------------------------------------------------===//

namespace {

/// Per-block input staging for the loads+shuffles configuration: the W
/// row-major sample rows are transposed once into [feature][lane] form,
/// after which every feature load is a contiguous vector load.
template <typename T>
struct BlockTranspose {
  std::vector<T> Data; // Columns x W
  uint32_t Columns = 0;

  void prepare(const BufferBinding<T> &B, size_t Begin, unsigned W) {
    Columns = B.Columns;
    Data.resize(static_cast<size_t>(Columns) * W);
    const double *Src =
        B.ExternalIn + (B.Offset + Begin) * B.Columns;
    // Feature-major fill: contiguous vectorizable writes per feature,
    // strided reads — the interpreter-level equivalent of the
    // loads+shuffles register transpose.
    for (uint32_t C = 0; C < Columns; ++C) {
      T *Dst = &Data[static_cast<size_t>(C) * W];
      for (unsigned L = 0; L < W; ++L)
        Dst[L] = static_cast<T>(Src[static_cast<size_t>(L) * Columns + C]);
    }
  }
};

template <typename T, unsigned W>
void runBlock(const TaskProgram &Task, const BufferBinding<T> *Buffers,
              const BlockTranspose<T> *Transposes, size_t Begin,
              bool UseVecLib, T *Regs) {
  const T NegInf = -std::numeric_limits<T>::infinity();
  T Tmp0[W], Tmp1[W];
  for (const Instruction &Inst : Task.Code) {
    T *D = &Regs[static_cast<size_t>(Inst.Dst) * W];
    switch (Inst.Op) {
    case OpCode::Const: {
      T Value = static_cast<T>(Task.ConstPool[Inst.A]);
      for (unsigned L = 0; L < W; ++L)
        D[L] = Value;
      break;
    }
    case OpCode::Load: {
      const BufferAccess &Access = Task.Loads[Inst.A];
      const BufferBinding<T> &B = Buffers[Access.Buffer];
      if (B.Transposed && B.Scratch) {
        // Contiguous vector load from a transposed intermediate.
        const T *Src = B.Scratch + elementIndex(B, Access.Index, Begin);
        for (unsigned L = 0; L < W; ++L)
          D[L] = Src[L];
      } else if (B.Transposed) {
        const double *Src =
            (B.ExternalIn ? B.ExternalIn : B.ExternalOut) +
            elementIndex(B, Access.Index, Begin);
        for (unsigned L = 0; L < W; ++L)
          D[L] = static_cast<T>(Src[L]);
      } else if (Transposes && Transposes[Access.Buffer].Columns) {
        // Loads+shuffles: contiguous load from the per-block transpose.
        const T *Src = &Transposes[Access.Buffer]
                            .Data[static_cast<size_t>(Access.Index) * W];
        for (unsigned L = 0; L < W; ++L)
          D[L] = Src[L];
      } else {
        // Gather: one strided load per lane.
        const BufferBinding<T> &Bb = B;
        for (unsigned L = 0; L < W; ++L)
          D[L] = loadElement(Bb, Access.Index, Begin + L);
      }
      break;
    }
    case OpCode::Store: {
      const BufferAccess &Access = Task.Stores[Inst.A];
      const BufferBinding<T> &B = Buffers[Access.Buffer];
      const T *Src = &Regs[static_cast<size_t>(Inst.Dst) * W];
      if (B.Transposed && B.Scratch) {
        T *Dst = B.Scratch + elementIndex(B, Access.Index, Begin);
        for (unsigned L = 0; L < W; ++L)
          Dst[L] = Src[L];
      } else {
        for (unsigned L = 0; L < W; ++L)
          storeElement(B, Access.Index, Begin + L, Src[L]);
      }
      break;
    }
    case OpCode::Add: {
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const T *B = &Regs[static_cast<size_t>(Inst.B) * W];
      for (unsigned L = 0; L < W; ++L)
        D[L] = A[L] + B[L];
      break;
    }
    case OpCode::Mul: {
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const T *B = &Regs[static_cast<size_t>(Inst.B) * W];
      for (unsigned L = 0; L < W; ++L)
        D[L] = A[L] * B[L];
      break;
    }
    case OpCode::FusedMulAdd: {
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const T *B = &Regs[static_cast<size_t>(Inst.B) * W];
      const T *C = &Regs[static_cast<size_t>(Inst.C) * W];
      for (unsigned L = 0; L < W; ++L)
        D[L] = A[L] * B[L] + C[L];
      break;
    }
    case OpCode::LogSumExp: {
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const T *B = &Regs[static_cast<size_t>(Inst.B) * W];
      // Tmp0 = min - max (guarded against (-inf) - (-inf) = NaN),
      // Tmp1 = exp(Tmp0) in [0, 1], D = max + log1p(Tmp1).
      for (unsigned L = 0; L < W; ++L) {
        T Max = A[L] > B[L] ? A[L] : B[L];
        T Diff = (A[L] > B[L] ? B[L] : A[L]) - Max;
        Tmp0[L] = std::isnan(Diff) ? NegInf : Diff;
        D[L] = Max;
      }
      if (UseVecLib) {
        vecExpNeg(Tmp0, Tmp1, W);
        vecLog1p01(Tmp1, Tmp0, W);
      } else {
        scalarExp(Tmp0, Tmp1, W);
        scalarLog1p(Tmp1, Tmp0, W);
      }
      for (unsigned L = 0; L < W; ++L)
        D[L] = D[L] == NegInf ? NegInf : D[L] + Tmp0[L];
      break;
    }
    case OpCode::Gaussian: {
      const GaussianParams &P = Task.Gaussians[Inst.B];
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const T Mean = static_cast<T>(P.Mean);
      const T Inv = static_cast<T>(P.InvStdDev);
      const T Coeff = static_cast<T>(P.Coefficient);
      for (unsigned L = 0; L < W; ++L) {
        T Norm = (A[L] - Mean) * Inv;
        Tmp0[L] = T(-0.5) * Norm * Norm;
      }
      if (UseVecLib)
        vecExpNeg(Tmp0, Tmp1, W);
      else
        scalarExp(Tmp0, Tmp1, W);
      for (unsigned L = 0; L < W; ++L)
        D[L] = Coeff * Tmp1[L];
      if (P.SupportMarginal)
        for (unsigned L = 0; L < W; ++L)
          D[L] = std::isnan(A[L]) ? static_cast<T>(P.MarginalValue) : D[L];
      break;
    }
    case OpCode::GaussianLog: {
      const GaussianParams &P = Task.Gaussians[Inst.B];
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const T Mean = static_cast<T>(P.Mean);
      const T Inv = static_cast<T>(P.InvStdDev);
      const T Coeff = static_cast<T>(P.Coefficient);
      for (unsigned L = 0; L < W; ++L) {
        T Norm = (A[L] - Mean) * Inv;
        D[L] = Coeff - T(0.5) * Norm * Norm;
      }
      if (P.SupportMarginal)
        for (unsigned L = 0; L < W; ++L)
          D[L] = std::isnan(A[L]) ? static_cast<T>(P.MarginalValue) : D[L];
      break;
    }
    case OpCode::TableLookup: {
      const LookupTable &Table = Task.Tables[Inst.B];
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const auto Size = static_cast<int64_t>(Table.Values.size());
      for (unsigned L = 0; L < W; ++L) {
        if (Table.SupportMarginal && std::isnan(A[L])) {
          D[L] = static_cast<T>(Table.MarginalValue);
          continue;
        }
        auto Idx = static_cast<int64_t>(
            std::floor(static_cast<double>(A[L]) - Table.Lo));
        D[L] = (Idx >= 0 && Idx < Size)
                   ? static_cast<T>(Table.Values[static_cast<size_t>(Idx)])
                   : static_cast<T>(Table.DefaultValue);
      }
      break;
    }
    case OpCode::SelectInRange: {
      const SelectRange &Range = Task.Selects[Inst.B];
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const T Lo = static_cast<T>(Range.Lo);
      const T Hi = static_cast<T>(Range.Hi);
      const T V = static_cast<T>(Range.Value);
      for (unsigned L = 0; L < W; ++L)
        D[L] = (A[L] >= Lo && A[L] < Hi) ? V : D[L];
      break;
    }
    case OpCode::NanBlend: {
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const T V = static_cast<T>(Task.ConstPool[Inst.B]);
      for (unsigned L = 0; L < W; ++L)
        D[L] = std::isnan(A[L]) ? V : D[L];
      break;
    }
    case OpCode::AddN: {
      const uint32_t *Args = &Task.Args[Inst.A];
      for (unsigned L = 0; L < W; ++L)
        D[L] = T(0);
      for (uint32_t N = 0; N < Inst.B; ++N) {
        const T *A = &Regs[static_cast<size_t>(Args[N]) * W];
        for (unsigned L = 0; L < W; ++L)
          D[L] += A[L];
      }
      break;
    }
    case OpCode::MulN: {
      const uint32_t *Args = &Task.Args[Inst.A];
      for (unsigned L = 0; L < W; ++L)
        D[L] = T(1);
      for (uint32_t N = 0; N < Inst.B; ++N) {
        const T *A = &Regs[static_cast<size_t>(Args[N]) * W];
        for (unsigned L = 0; L < W; ++L)
          D[L] *= A[L];
      }
      break;
    }
    case OpCode::Max: {
      const T *A = &Regs[static_cast<size_t>(Inst.A) * W];
      const T *B = &Regs[static_cast<size_t>(Inst.B) * W];
      for (unsigned L = 0; L < W; ++L)
        D[L] = A[L] >= B[L] ? A[L] : B[L];
      break;
    }
    case OpCode::LogSumExpN: {
      const uint32_t *Args = &Task.Args[Inst.A];
      // D accumulates the lane maxima, Tmp1 the exponential sums.
      for (unsigned L = 0; L < W; ++L)
        D[L] = NegInf;
      for (uint32_t N = 0; N < Inst.B; ++N) {
        const T *A = &Regs[static_cast<size_t>(Args[N]) * W];
        for (unsigned L = 0; L < W; ++L)
          D[L] = A[L] > D[L] ? A[L] : D[L];
      }
      for (unsigned L = 0; L < W; ++L)
        Tmp1[L] = T(0);
      for (uint32_t N = 0; N < Inst.B; ++N) {
        const T *A = &Regs[static_cast<size_t>(Args[N]) * W];
        for (unsigned L = 0; L < W; ++L) {
          T Diff = A[L] - D[L];
          Tmp0[L] = std::isnan(Diff) ? NegInf : Diff;
        }
        if (UseVecLib)
          vecExpNeg(Tmp0, Tmp0, W);
        else
          scalarExp(Tmp0, Tmp0, W);
        for (unsigned L = 0; L < W; ++L)
          Tmp1[L] += Tmp0[L];
      }
      if (UseVecLib)
        vecLogPos(Tmp1, Tmp0, W);
      else
        scalarLog(Tmp1, Tmp0, W);
      for (unsigned L = 0; L < W; ++L)
        D[L] = D[L] == NegInf ? NegInf : D[L] + Tmp0[L];
      break;
    }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// CpuExecutor
//===----------------------------------------------------------------------===//

CpuExecutor::CpuExecutor(KernelProgram TheProgram,
                         ExecutionConfig TheConfig)
    : Program(std::move(TheProgram)), Config(TheConfig) {
  assert((Config.VectorWidth == 1 || Config.VectorWidth == 4 ||
          Config.VectorWidth == 8 || Config.VectorWidth == 16) &&
         "unsupported vector width");
  assert(Program.NumInputs == 1 && Program.NumOutputs == 1 &&
         "executor supports kernels with one input and one output buffer");
  if (Config.NumThreads > 1)
    Pool = std::make_unique<ThreadPool>(Config.NumThreads);
}

CpuExecutor::~CpuExecutor() = default;

void CpuExecutor::execute(const double *Input, double *Output,
                          size_t NumSamples,
                          runtime::ExecutionStats *Stats) const {
  Timer WallTimer;
  if (!Pool) {
    executeChunk(Program, Input, Output, NumSamples, 0, NumSamples);
  } else {
    size_t Chunk =
        Config.ChunkSize ? Config.ChunkSize : Program.BatchSize;
    if (Chunk == 0)
      Chunk = NumSamples;
    size_t NumChunks = (NumSamples + Chunk - 1) / Chunk;
    for (size_t C = 0; C < NumChunks; ++C) {
      size_t Begin = C * Chunk;
      size_t End = std::min(NumSamples, Begin + Chunk);
      Pool->submit([this, Input, Output, NumSamples, Begin, End] {
        executeChunk(Program, Input, Output, NumSamples, Begin, End);
      });
    }
    Pool->wait();
  }
  if (Stats) {
    *Stats = runtime::ExecutionStats();
    Stats->WallNs = WallTimer.elapsedNs();
    Stats->NumSamples = NumSamples;
  }
}

std::string CpuExecutor::describe() const {
  std::string Desc = Config.VectorWidth <= 1
                         ? "cpu scalar"
                         : "cpu simd w=" +
                               std::to_string(Config.VectorWidth);
  if (Config.VectorWidth > 1) {
    Desc += Config.UseVecLib ? ", veclib" : ", libm";
    Desc += Config.UseShuffle ? ", shuffle" : ", gather";
  }
  if (Config.NumThreads > 1)
    Desc += ", threads=" + std::to_string(Config.NumThreads);
  return Desc;
}

namespace {

template <typename T>
void runChunkTyped(const KernelProgram &Program,
                   const ExecutionConfig &Config, const double *Input,
                   double *Output, size_t TotalSamples, size_t Begin,
                   size_t End) {
  size_t ChunkLen = End - Begin;

  // Bind buffers; intermediates are chunk-private.
  std::vector<BufferBinding<T>> Bindings(Program.Buffers.size());
  std::vector<std::vector<T>> Intermediates(Program.Buffers.size());
  for (size_t I = 0; I < Program.Buffers.size(); ++I) {
    const BufferInfo &Info = Program.Buffers[I];
    BufferBinding<T> &B = Bindings[I];
    B.Columns = Info.Columns;
    B.Transposed = Info.Transposed;
    switch (Info.Role) {
    case BufferInfo::Kind::Input:
      B.ExternalIn = Input;
      B.Stride = TotalSamples;
      B.Offset = Begin;
      break;
    case BufferInfo::Kind::Output:
      B.ExternalOut = Output;
      B.Stride = TotalSamples;
      B.Offset = Begin;
      break;
    case BufferInfo::Kind::Intermediate:
      Intermediates[I].resize(static_cast<size_t>(Info.Columns) *
                              ChunkLen);
      B.Scratch = Intermediates[I].data();
      B.Stride = ChunkLen;
      B.Offset = 0;
      break;
    }
  }

  uint32_t MaxRegs = 0;
  for (const TaskProgram &Task : Program.Tasks)
    MaxRegs = std::max(MaxRegs, Task.NumRegisters);

  // Buffer-to-buffer copy (only emitted with copy avoidance disabled).
  auto RunCopy = [&](const KernelStep &Step) {
    const BufferBinding<T> &Src = Bindings[Step.CopySrc];
    const BufferBinding<T> &Dst = Bindings[Step.CopyDst];
    for (uint32_t Col = 0; Col < Src.Columns; ++Col)
      for (size_t I = 0; I < ChunkLen; ++I)
        storeElement(Dst, Col, I, loadElement(Src, Col, I));
  };

  unsigned W = Config.VectorWidth;
  if (W <= 1) {
    std::vector<T> Registers(MaxRegs);
    for (const KernelStep &Step : Program.Steps) {
      if (Step.Task < 0) {
        RunCopy(Step);
        continue;
      }
      const TaskProgram &Task = Program.Tasks[Step.Task];
      for (size_t I = 0; I < ChunkLen; ++I)
        executeSample(Task, Bindings.data(), I, Registers.data());
    }
    return;
  }

  std::vector<T> Registers(static_cast<size_t>(MaxRegs) * W);
  std::vector<BlockTranspose<T>> Transposes(
      Config.UseShuffle ? Program.Buffers.size() : 0);

  auto RunVector = [&](auto WidthTag, const TaskProgram &Task,
                       size_t BlockBegin) {
    constexpr unsigned BW = decltype(WidthTag)::value;
    runBlock<T, BW>(Task, Bindings.data(),
                    Transposes.empty() ? nullptr : Transposes.data(),
                    BlockBegin, Config.UseVecLib, Registers.data());
  };

  size_t NumBlocks = ChunkLen / W;
  for (const KernelStep &Step : Program.Steps) {
    if (Step.Task < 0) {
      RunCopy(Step);
      continue;
    }
    const TaskProgram &Task = Program.Tasks[Step.Task];
    for (size_t Block = 0; Block < NumBlocks; ++Block) {
      size_t BlockBegin = Block * W;
      // Stage row-major inputs blockwise for the loads+shuffles path.
      if (Config.UseShuffle)
        for (size_t I = 0; I < Program.Buffers.size(); ++I)
          if (!Program.Buffers[I].Transposed && Bindings[I].ExternalIn)
            Transposes[I].prepare(Bindings[I], BlockBegin, W);
      switch (W) {
      case 4:
        RunVector(std::integral_constant<unsigned, 4>{}, Task,
                  BlockBegin);
        break;
      case 8:
        RunVector(std::integral_constant<unsigned, 8>{}, Task,
                  BlockBegin);
        break;
      case 16:
        RunVector(std::integral_constant<unsigned, 16>{}, Task,
                  BlockBegin);
        break;
      default:
        spnc_unreachable("unsupported vector width");
      }
    }
    // Scalar epilogue for the remainder (paper §IV-B).
    for (size_t I = NumBlocks * W; I < ChunkLen; ++I)
      executeSample(Task, Bindings.data(), I, Registers.data());
  }
}

} // namespace

void CpuExecutor::executeChunk(const KernelProgram &TheProgram,
                               const double *Input, double *Output,
                               size_t TotalSamples, size_t Begin,
                               size_t End) const {
  if (TheProgram.UseF32)
    runChunkTyped<float>(TheProgram, Config, Input, Output, TotalSamples,
                         Begin, End);
  else
    runChunkTyped<double>(TheProgram, Config, Input, Output, TotalSamples,
                          Begin, End);
}

//===----------------------------------------------------------------------===//
// Weight tables (parameterized / merged-model programs, docs/merging.md)
//===----------------------------------------------------------------------===//

int32_t CpuExecutor::addParamTable(const double *Params,
                                   size_t NumParams) {
  if (!Program.Parameterized || NumParams != Program.NumParams)
    return -1;
  std::unique_lock<std::shared_mutex> Lock(TablesMutex);
  // Idempotent by exact content: a model re-registered after a cache hit
  // gets its old index back.
  for (size_t I = 0; I < TableParams.size(); ++I)
    if (TableParams[I].size() == NumParams &&
        std::equal(TableParams[I].begin(), TableParams[I].end(), Params))
      return static_cast<int32_t>(I);
  BoundPrograms.push_back(std::make_unique<KernelProgram>(
      bindParams(Program, std::span<const double>(Params, NumParams))));
  TableParams.emplace_back(Params, Params + NumParams);
  return static_cast<int32_t>(TableParams.size() - 1);
}

bool CpuExecutor::executeIndexed(const double *Input,
                                 const uint32_t *TableIndices,
                                 double *Output, size_t NumSamples,
                                 runtime::ExecutionStats *Stats) const {
  if (!Program.Parameterized)
    return false;
  Timer WallTimer;
  std::vector<const KernelProgram *> Bound;
  {
    std::shared_lock<std::shared_mutex> Lock(TablesMutex);
    Bound.reserve(BoundPrograms.size());
    for (const std::unique_ptr<KernelProgram> &P : BoundPrograms)
      Bound.push_back(P.get());
  }
  for (size_t I = 0; I < NumSamples; ++I)
    if (TableIndices[I] >= Bound.size())
      return false;

  size_t Chunk = Config.ChunkSize ? Config.ChunkSize : Program.BatchSize;
  if (Chunk == 0)
    Chunk = NumSamples;
  auto Dispatch = [&](const KernelProgram *Table, size_t Begin,
                      size_t End) {
    if (!Pool) {
      executeChunk(*Table, Input, Output, NumSamples, Begin, End);
      return;
    }
    for (size_t B = Begin; B < End; B += Chunk) {
      size_t E = std::min(End, B + Chunk);
      Pool->submit([this, Table, Input, Output, NumSamples, B, E] {
        executeChunk(*Table, Input, Output, NumSamples, B, E);
      });
    }
  };
  // Maximal runs of equal table index execute as ordinary sub-batches:
  // the buffer bindings address [Begin, End) of the full batch, so every
  // run reads and writes its own rows in place.
  size_t RunBegin = 0;
  while (RunBegin < NumSamples) {
    size_t RunEnd = RunBegin + 1;
    while (RunEnd < NumSamples &&
           TableIndices[RunEnd] == TableIndices[RunBegin])
      ++RunEnd;
    Dispatch(Bound[TableIndices[RunBegin]], RunBegin, RunEnd);
    RunBegin = RunEnd;
  }
  if (Pool)
    Pool->wait();
  if (Stats) {
    *Stats = runtime::ExecutionStats();
    Stats->WallNs = WallTimer.elapsedNs();
    Stats->NumSamples = NumSamples;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// MPE / ancestral sampling (upward pass + downward traceback)
//===----------------------------------------------------------------------===//

namespace {

/// Runs the upward pass and the downward traceback per sample over the
/// whole batch. \p UpOut receives the root (log-)probability per sample;
/// \p Rows the completed feature rows. Single-task programs only (the
/// pipeline never partitions MPE/sampling kernels).
template <typename T>
void runQueryBatch(const KernelProgram &Program, QueryKind Kind,
                   const double *Evidence, double *Rows, double *UpOut,
                   size_t NumSamples, uint64_t Seed) {
  const TaskProgram &Task = Program.Tasks[0];
  std::vector<BufferBinding<T>> Bindings(Program.Buffers.size());
  uint32_t NumFeatures = 1;
  for (size_t I = 0; I < Program.Buffers.size(); ++I) {
    const BufferInfo &Info = Program.Buffers[I];
    BufferBinding<T> &B = Bindings[I];
    B.Columns = Info.Columns;
    B.Transposed = Info.Transposed;
    B.Stride = NumSamples;
    B.Offset = 0;
    if (Info.Role == BufferInfo::Kind::Input) {
      B.ExternalIn = Evidence;
      NumFeatures = Info.Columns;
    } else {
      B.ExternalOut = UpOut;
    }
  }

  std::vector<T> Registers(Task.NumRegisters);
  std::vector<int32_t> Stack;
  for (size_t I = 0; I < NumSamples; ++I) {
    executeSample(Task, Bindings.data(), I, Registers.data());
    const double *Row = Evidence + I * NumFeatures;
    double *OutRow = Rows + I * NumFeatures;
    // Pre-fill with the evidence so features outside the model's scope
    // still echo their observed values (NaN when unobserved).
    for (uint32_t F = 0; F < NumFeatures; ++F)
      OutRow[F] = Row[F];
    Rng R(perSampleSeed(Seed, I));
    runTraceback(Program.Plan, Registers.data(), Row, OutRow,
                 Program.LogSpace, Kind, R, Stack);
  }
}

} // namespace

bool CpuExecutor::executeMpe(const double *Evidence, double *Assignments,
                             double *LogProbs, size_t NumSamples,
                             runtime::ExecutionStats *Stats) const {
  if (Program.Query != QueryKind::Mpe || Program.Plan.empty() ||
      Program.Tasks.size() != 1)
    return false;
  Timer WallTimer;
  std::vector<double> UpStorage;
  double *Up = LogProbs;
  if (!Up) {
    UpStorage.resize(NumSamples);
    Up = UpStorage.data();
  }
  if (Program.UseF32)
    runQueryBatch<float>(Program, QueryKind::Mpe, Evidence, Assignments,
                         Up, NumSamples, 0);
  else
    runQueryBatch<double>(Program, QueryKind::Mpe, Evidence, Assignments,
                          Up, NumSamples, 0);
  // The engine contract reports log-probabilities even when the program
  // computes in linear space.
  if (LogProbs && !Program.LogSpace)
    for (size_t I = 0; I < NumSamples; ++I)
      LogProbs[I] = std::log(LogProbs[I]);
  if (Stats) {
    *Stats = runtime::ExecutionStats();
    Stats->WallNs = WallTimer.elapsedNs();
    Stats->NumSamples = NumSamples;
  }
  return true;
}

bool CpuExecutor::executeSample(const double *Evidence, double *Samples,
                                size_t NumSamples, uint64_t Seed,
                                runtime::ExecutionStats *Stats) const {
  if (Program.Query != QueryKind::Sample || Program.Plan.empty() ||
      Program.Tasks.size() != 1)
    return false;
  Timer WallTimer;
  std::vector<double> UpStorage(NumSamples);
  if (Program.UseF32)
    runQueryBatch<float>(Program, QueryKind::Sample, Evidence, Samples,
                         UpStorage.data(), NumSamples, Seed);
  else
    runQueryBatch<double>(Program, QueryKind::Sample, Evidence, Samples,
                          UpStorage.data(), NumSamples, Seed);
  if (Stats) {
    *Stats = runtime::ExecutionStats();
    Stats->WallNs = WallTimer.elapsedNs();
    Stats->NumSamples = NumSamples;
  }
  return true;
}
