//===- BuiltinOps.cpp - Builtin module operation ----------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/BuiltinOps.h"

using namespace spnc;
using namespace spnc::ir;

void spnc::ir::registerBuiltinDialect(Context &Ctx) {
  if (Ctx.isDialectLoaded("builtin"))
    return;
  Ctx.markDialectLoaded("builtin");
  registerOperation<ModuleOp>(Ctx);
}
