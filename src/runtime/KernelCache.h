//===- KernelCache.h - Bounded, integrity-checked kernel cache ----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, bounded cache of compiled kernels for serving
/// scenarios that mix repeated queries over a fixed set of models (the
/// compile-once/run-many regime the paper's §V-B compile-time
/// measurements motivate). Kernels are keyed by (model
/// structure+parameters, query configuration, pipeline configuration,
/// registered-stage fingerprint, backend identity); a second request
/// with the same key returns the already-constructed ExecutionEngine
/// instead of recompiling. The backend component (name + artifact
/// fingerprint, see backend/Backend.h) means switching `--backend` or
/// the native toolchain never serves a stale kernel.
///
/// Two tiers:
///
///  * **In-memory tier** — an LRU-capped map of live ExecutionEngines.
///    `Config::MaxEntries` bounds residency; inserting beyond the cap
///    evicts the least-recently-used engine (evicted kernels already
///    handed out stay valid — they share ownership of the engine).
///  * **Disk tier** (optional) — a directory of `.spnk` files (see
///    docs/spnk-format.md). A miss first tries `<dir>/<key>.spnk`
///    before compiling, and a fresh compile persists its program there
///    atomically. `Config::DiskBudgetBytes` bounds the directory's total
///    `.spnk` size; exceeding it prunes the oldest files first (the
///    just-written entry is never pruned).
///
/// Disk entries are integrity-checked: the `.spnk` header carries a
/// content checksum (format v3), verified on every disk-tier hit.
/// Corrupted, truncated or unreadable entries are never an error — the
/// kernel is recompiled, the entry rewritten, and the rejection counted
/// in `Stats::CorruptedDiskEntries`. Legacy (pre-v3, checksum-less)
/// entries still load, with a warning and a `Stats::LegacyDiskEntries`
/// count.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_RUNTIME_KERNELCACHE_H
#define SPNC_RUNTIME_KERNELCACHE_H

#include "runtime/Compiler.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace spnc {

namespace backend {
class Backend;
} // namespace backend

namespace runtime {

/// Thread-safe map from (model, query, pipeline config, stage set,
/// backend) to a shared ExecutionEngine. All public members may be
/// called concurrently.
class KernelCache {
public:
  /// Default in-memory capacity: generous for a per-process model set,
  /// small enough that a long-running server cannot accumulate
  /// thousands of dead engines.
  static constexpr size_t kDefaultMaxEntries = 64;

  /// Cache construction parameters. The defaults give a bounded,
  /// in-memory-only cache.
  struct Config {
    /// Directory of the `.spnk` disk tier; empty disables it. Created
    /// on first write if missing.
    std::string Directory;
    /// In-memory LRU capacity; 0 means unbounded (not recommended for
    /// long-running servers).
    size_t MaxEntries = kDefaultMaxEntries;
    /// Total size budget (bytes) for `.spnk` files in Directory; 0
    /// means unbounded. Enforced after each insert by pruning the
    /// oldest files first; the newest entry is never pruned, so one
    /// oversized kernel may exceed the budget by itself.
    uint64_t DiskBudgetBytes = 0;
    /// Applied to every pipeline the cache builds (once per compiling
    /// getOrCompile) before compilation — the hook for registering
    /// custom stages on the cache path, diagnostic or transforming. A
    /// returned error fails the request. Must be safe to invoke
    /// concurrently. The cache key covers the configured pipeline's
    /// stage fingerprint (registered stage names, in order), so caches
    /// with different stage sets never share entries; the name is the
    /// stage's identity, though — re-registering the *same* name with a
    /// different runner still collides, and the hook must behave
    /// deterministically (the same stages every invocation).
    std::function<std::optional<Error>(CompilationPipeline &)>
        ConfigurePipeline;
    /// The backend that turns compiled programs into engines on this
    /// cache's paths (both the compile miss and the `.spnk` disk hit);
    /// null selects the default VM backend. The cache key covers the
    /// backend's name and artifact fingerprint, so caches configured
    /// with different backends — or the same native backend after a
    /// toolchain/flag change — never share entries.
    std::shared_ptr<const backend::Backend> TheBackend;
  };

  /// Cache observability counters. `getStats()` returns a consistent
  /// snapshot taken under the cache lock.
  struct Stats {
    /// Requests answered from the in-memory map.
    uint64_t Hits = 0;
    /// Requests that required compilation or a disk load.
    uint64_t Misses = 0;
    /// Misses answered by loading a `.spnk` from the cache directory.
    uint64_t DiskHits = 0;
    /// Misses that ran the compilation pipeline (including recoveries
    /// from corrupted disk entries).
    uint64_t Recompiles = 0;
    /// In-memory engines dropped by the LRU cap.
    uint64_t Evictions = 0;
    /// `.spnk` files removed by the disk byte budget, and their total
    /// size.
    uint64_t DiskPrunedFiles = 0;
    uint64_t DiskPrunedBytes = 0;
    /// Disk entries rejected as unreadable, truncated or failing the
    /// content checksum (each one triggered a transparent recompile).
    uint64_t CorruptedDiskEntries = 0;
    /// Disk entries loaded from a pre-checksum (v1/v2) `.spnk`.
    uint64_t LegacyDiskEntries = 0;
  };
  /// Legacy name of the counters struct (pre-LRU API).
  using Statistics = Stats;

  /// An in-memory-only cache with the default LRU capacity.
  KernelCache() = default;

  /// A disk-backed cache persisting `.spnk` files under \p Directory
  /// (created on first write if missing). Pass an empty string for an
  /// in-memory-only cache. Capacity and disk budget take their
  /// defaults; use the Config constructor to tune them.
  explicit KernelCache(std::string Directory) {
    TheConfig.Directory = std::move(Directory);
  }

  /// A cache with explicit capacity/budget configuration.
  explicit KernelCache(Config TheConfig) : TheConfig(std::move(TheConfig)) {}

  KernelCache(const KernelCache &) = delete;
  KernelCache &operator=(const KernelCache &) = delete;

  /// Content hash of \p Model: node kinds, wiring, weights and leaf
  /// parameters of the graph reachable from the root, plus the feature
  /// count. Two models with identical structure and parameters collide
  /// (desired: they compile to identical kernels); a weight-only edit
  /// changes it. Thread-safe; the model must not be mutated
  /// concurrently.
  static uint64_t contentHash(const spn::Model &Model);

  /// Legacy spelling of contentHash() (the pre-merging name).
  static uint64_t hashModel(const spn::Model &Model) {
    return contentHash(Model);
  }

  /// Structural hash of \p Model: node kinds, wiring, leaf families and
  /// scopes — tunable parameters (sum weights, bucket masses, category
  /// probabilities, Gaussian mean/stddev) excluded, so a weight-only
  /// edit does NOT change it. Every member of a merge group shares this
  /// value; it keys the merged compilation path (getOrCompileMerged).
  /// Delegates to merge::structuralHash. Thread-safe.
  static uint64_t structuralHash(const spn::Model &Model);

  /// Order-sensitive hash of \p Pipeline's registered stage names — the
  /// cache-key component that distinguishes pipelines carrying custom
  /// `Config::ConfigurePipeline` stages. Thread-safe once registration
  /// is finished; never fails.
  static uint64_t stageFingerprint(const CompilationPipeline &Pipeline);

  /// The cache key for compiling \p Model for \p Query under \p Config
  /// with a default (unconfigured) stage set. Thread-safe; never fails.
  static uint64_t makeKey(const spn::Model &Model,
                          const spn::QueryConfig &Query,
                          const PipelineConfig &Config);

  /// The cache key for a pipeline whose stage fingerprint is
  /// \p StageFingerprint (see stageFingerprint()). This is the key
  /// getOrCompile actually uses; the three-argument overload delegates
  /// here with the default pipeline's fingerprint. Thread-safe; never
  /// fails.
  static uint64_t makeKey(const spn::Model &Model,
                          const spn::QueryConfig &Query,
                          const PipelineConfig &Config,
                          uint64_t StageFingerprint);

  /// The cache key additionally covering \p TheBackend's identity (its
  /// name and artifact fingerprint). This is what getOrCompile uses on
  /// a backend-configured cache; the four-argument overload delegates
  /// here with the default VM backend, so legacy callers and
  /// default-configured caches keep computing identical keys.
  /// Thread-safe; never fails.
  static uint64_t makeKey(const spn::Model &Model,
                          const spn::QueryConfig &Query,
                          const PipelineConfig &Config,
                          uint64_t StageFingerprint,
                          const backend::Backend &TheBackend);

  /// Returns the kernel for (\p Model, \p Query, \p Options), compiling
  /// at most once per key. Compilation and disk I/O run outside the
  /// cache lock, so distinct keys compile concurrently; concurrent
  /// requests for one key may compile redundantly, but exactly one
  /// engine wins and all callers share it. \p Stats is only written on
  /// an actual compile (cache hits leave it untouched). Fails only when
  /// \p Options is invalid or compilation fails — disk-tier corruption
  /// is recovered transparently.
  Expected<CompiledKernel> getOrCompile(const spn::Model &Model,
                                        const spn::QueryConfig &Query,
                                        const CompilerOptions &Options,
                                        CompileStats *Stats = nullptr);

  /// A merged-path result: the group's shared kernel plus the index of
  /// this model's weight table inside the kernel's engine (the row tag
  /// ExecutionEngine::executeIndexed consumes).
  struct MergedKernel {
    CompiledKernel Kernel;
    int32_t TableIndex = -1;
  };

  /// Merged-model variant of getOrCompile (docs/merging.md): the cache
  /// key uses structuralHash(\p Model) instead of contentHash, and the
  /// kernel is compiled with `Lowering.Parameterize` forced on, so every
  /// structurally-isomorphic model maps to ONE cache entry — the first
  /// member compiles, later members only register their weight table
  /// (merge::extractParams) with the shared engine. A fresh compile is
  /// checked with vm::verifySelfBinding before being trusted: binding
  /// the generating model's own parameters must reproduce the baked
  /// side tables bit-for-bit. Joint/marginal queries on CPU targets
  /// only (the parameterized pipeline rejects the rest). Thread-safe
  /// like getOrCompile.
  Expected<MergedKernel>
  getOrCompileMerged(const spn::Model &Model,
                     const spn::QueryConfig &Query,
                     const CompilerOptions &Options,
                     CompileStats *Stats = nullptr);

  /// Number of resident engines. Thread-safe.
  size_t size() const;

  /// Drops every in-memory entry (disk entries are kept) and resets no
  /// counters. Kernels already handed out remain valid. Thread-safe.
  void clear();

  /// A consistent snapshot of the observability counters. Thread-safe.
  Stats getStats() const;

  /// Legacy spelling of getStats().
  Statistics getStatistics() const { return getStats(); }

  const std::string &getDirectory() const { return TheConfig.Directory; }

  /// The active configuration (immutable after construction).
  const Config &getConfig() const { return TheConfig; }

  /// Path of the `.spnk` backing file for \p Key (empty when the cache
  /// is in-memory only). Thread-safe.
  std::string entryPath(uint64_t Key) const;

  /// Path of the per-model tuning-record sidecar
  /// (`<dir>/<hashModel hex>.tune.json`, empty when the cache is
  /// in-memory only). Keyed on the model hash alone — unlike `.spnk`
  /// entries, a record *selects* the compile options rather than being
  /// keyed by them — and the `.tune.json` extension keeps records
  /// exempt from the `.spnk` disk-budget pruning. `spnc-tune` writes
  /// here; `spnc-cli`/`spnc-serve --tuned` read. Thread-safe.
  std::string tuningRecordPath(uint64_t ModelHash) const;

private:
  struct Entry {
    std::shared_ptr<ExecutionEngine> Engine;
    /// Position in LruOrder (for O(1) touch on hit).
    std::list<uint64_t>::iterator LruIt;
  };

  /// The shared miss/hit machinery behind getOrCompile and
  /// getOrCompileMerged: memory lookup, disk probe, compile, insert.
  /// \p ModelHash seeds the key (contentHash for the classic path,
  /// structuralHash for the merged path); \p ExpectParameterized
  /// rejects disk entries whose Parameterized flag does not match;
  /// \p FreshlyCompiled (optional) reports whether the pipeline
  /// actually ran (false on memory/disk hits).
  Expected<CompiledKernel>
  getOrCompileImpl(uint64_t ModelHash, const spn::Model &Model,
                   const spn::QueryConfig &Query,
                   const CompilerOptions &Options,
                   CompileStats *CompStats, bool ExpectParameterized,
                   bool *FreshlyCompiled);

  /// Moves \p It to the front of the recency list. Caller holds Mutex.
  void touch(std::unordered_map<uint64_t, Entry>::iterator It);

  /// Evicts least-recently-used entries until the LRU cap is respected.
  /// Caller holds Mutex.
  void enforceCapacity();

  /// Deletes oldest `.spnk` files until the disk tier fits the byte
  /// budget, never removing \p KeepPath. Runs without the cache lock
  /// (filesystem only); returns the number of files and bytes removed.
  void pruneDiskTier(const std::string &KeepPath, uint64_t &PrunedFiles,
                     uint64_t &PrunedBytes) const;

  Config TheConfig;
  mutable std::mutex Mutex;
  std::unordered_map<uint64_t, Entry> Entries;
  /// Keys ordered most-recently-used first.
  std::list<uint64_t> LruOrder;
  Stats Counters;
};

} // namespace runtime
} // namespace spnc

#endif // SPNC_RUNTIME_KERNELCACHE_H
