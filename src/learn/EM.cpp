//===- EM.cpp - Expectation-maximization parameter learning ---------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "learn/EM.h"

#include "dialects/lospn/LoSPNOps.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

using namespace spnc;
using namespace spnc::learn;
using namespace spnc::spn;

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Per-node sufficient statistics of one EM iteration.
struct Statistics {
  /// Per sum node: expected counts per child edge.
  std::unordered_map<const SumNode *, std::vector<double>> EdgeCounts;
  /// Per Gaussian leaf: responsibility-weighted moments.
  struct Moments {
    double SumR = 0, SumRX = 0, SumRXX = 0;
  };
  std::unordered_map<const GaussianLeaf *, Moments> GaussianMoments;
  /// Per histogram/categorical leaf: responsibility mass per bucket /
  /// category.
  std::unordered_map<const LeafNode *, std::vector<double>> BinCounts;
};

class EmEngine {
public:
  EmEngine(Model &TheModel, const EmOptions &Options)
      : TheModel(TheModel), Options(Options),
        Order(TheModel.topologicalOrder()) {
    for (size_t I = 0; I < Order.size(); ++I)
      PositionOf[Order[I]] = I;
  }

  EmResult run(const double *Data, size_t NumSamples) {
    EmResult Result;
    for (unsigned Iteration = 0; Iteration < Options.Iterations;
         ++Iteration) {
      Statistics Stats;
      initStatistics(Stats);
      double TotalLogLikelihood = 0;
      for (size_t S = 0; S < NumSamples; ++S)
        TotalLogLikelihood += accumulateSample(
            Stats, Data + S * TheModel.getNumFeatures());
      Result.LogLikelihoodPerIteration.push_back(
          TotalLogLikelihood / static_cast<double>(NumSamples));
      maximize(Stats);
    }
    return Result;
  }

private:
  void initStatistics(Statistics &Stats) {
    for (Node *Current : Order) {
      if (const auto *Sum = dyn_cast<SumNode>(Current))
        Stats.EdgeCounts[Sum].assign(Sum->getNumChildren(),
                                     Options.WeightSmoothing);
      else if (const auto *Hist = dyn_cast<HistogramLeaf>(Current))
        Stats.BinCounts[Hist].assign(Hist->getBuckets().size(),
                                     Options.WeightSmoothing);
      else if (const auto *Cat = dyn_cast<CategoricalLeaf>(Current))
        Stats.BinCounts[Cat].assign(Cat->getProbabilities().size(),
                                    Options.WeightSmoothing);
    }
  }

  /// Upward pass (log-likelihoods), downward pass (responsibilities),
  /// statistic accumulation for one sample. Returns the sample's root
  /// log-likelihood.
  double accumulateSample(Statistics &Stats, const double *Sample) {
    // Upward pass in log-space.
    LogValues.assign(Order.size(), 0.0);
    for (size_t I = 0; I < Order.size(); ++I) {
      const Node *Current = Order[I];
      double LogValue = 0.0;
      switch (Current->getKind()) {
      case NodeKind::Sum: {
        const auto *Sum = cast<SumNode>(Current);
        LogValue = kNegInf;
        for (size_t C = 0; C < Sum->getNumChildren(); ++C) {
          double W = Sum->getWeights()[C];
          if (W <= 0.0)
            continue;
          LogValue = lospn::logSumExp(
              LogValue,
              std::log(W) + LogValues[PositionOf[Sum->getChild(C)]]);
        }
        break;
      }
      case NodeKind::Product: {
        for (const Node *Child : cast<ProductNode>(Current)->getChildren())
          LogValue += LogValues[PositionOf[Child]];
        break;
      }
      case NodeKind::Histogram: {
        const auto *Leaf = cast<HistogramLeaf>(Current);
        double X = Sample[Leaf->getFeatureIndex()];
        LogValue = kNegInf;
        if (std::isnan(X)) {
          LogValue = 0.0;
          break;
        }
        for (const HistogramBucket &Bucket : Leaf->getBuckets())
          if (X >= Bucket.Lb && X < Bucket.Ub) {
            LogValue = std::log(Bucket.P);
            break;
          }
        break;
      }
      case NodeKind::Categorical: {
        const auto *Leaf = cast<CategoricalLeaf>(Current);
        double X = Sample[Leaf->getFeatureIndex()];
        if (std::isnan(X)) {
          LogValue = 0.0;
          break;
        }
        LogValue =
            std::log(lospn::evalCategorical(Leaf->getProbabilities(), X));
        break;
      }
      case NodeKind::Gaussian: {
        const auto *Leaf = cast<GaussianLeaf>(Current);
        double X = Sample[Leaf->getFeatureIndex()];
        if (std::isnan(X)) {
          LogValue = 0.0;
          break;
        }
        LogValue = lospn::evalGaussianLogPdf(Leaf->getMean(),
                                             Leaf->getStdDev(), X);
        break;
      }
      }
      LogValues[I] = LogValue;
    }
    double RootLL = LogValues[PositionOf[TheModel.getRoot()]];
    if (RootLL == kNegInf)
      return RootLL; // Zero-probability sample contributes no counts.

    // Downward pass: responsibility R_n = sum over parents of the
    // parent's responsibility times the share this child contributes.
    Responsibility.assign(Order.size(), 0.0);
    Responsibility[PositionOf[TheModel.getRoot()]] = 1.0;
    for (size_t I = Order.size(); I-- > 0;) {
      const Node *Current = Order[I];
      double R = Responsibility[I];
      if (R <= 0.0)
        continue;
      if (const auto *Sum = dyn_cast<SumNode>(Current)) {
        double LogS = LogValues[I];
        std::vector<double> &Counts = Stats.EdgeCounts[Sum];
        for (size_t C = 0; C < Sum->getNumChildren(); ++C) {
          double W = Sum->getWeights()[C];
          if (W <= 0.0)
            continue;
          double LogChild = LogValues[PositionOf[Sum->getChild(C)]];
          if (LogChild == kNegInf)
            continue;
          // Posterior share of child C in this mixture.
          double Share = std::exp(std::log(W) + LogChild - LogS);
          double Contribution = R * Share;
          Counts[C] += Contribution;
          Responsibility[PositionOf[Sum->getChild(C)]] += Contribution;
        }
      } else if (const auto *Product = dyn_cast<ProductNode>(Current)) {
        for (const Node *Child : Product->getChildren())
          Responsibility[PositionOf[Child]] += R;
      }
    }

    // Leaf statistics.
    if (Options.UpdateLeaves) {
      for (size_t I = 0; I < Order.size(); ++I) {
        const Node *Current = Order[I];
        double R = Responsibility[I];
        if (R <= 0.0 || !Current->isLeaf())
          continue;
        const auto *Leaf = cast<LeafNode>(Current);
        double X = Sample[Leaf->getFeatureIndex()];
        if (std::isnan(X))
          continue; // Marginalized evidence carries no information.
        if (const auto *Gauss = dyn_cast<GaussianLeaf>(Leaf)) {
          Statistics::Moments &M = Stats.GaussianMoments[Gauss];
          M.SumR += R;
          M.SumRX += R * X;
          M.SumRXX += R * X * X;
        } else if (const auto *Hist = dyn_cast<HistogramLeaf>(Leaf)) {
          const std::vector<HistogramBucket> &Buckets =
              Hist->getBuckets();
          for (size_t B = 0; B < Buckets.size(); ++B)
            if (X >= Buckets[B].Lb && X < Buckets[B].Ub) {
              Stats.BinCounts[Hist][B] += R;
              break;
            }
        } else if (const auto *Cat = dyn_cast<CategoricalLeaf>(Leaf)) {
          auto Index = static_cast<long long>(X);
          if (Index >= 0 &&
              static_cast<size_t>(Index) <
                  Cat->getProbabilities().size())
            Stats.BinCounts[Cat][static_cast<size_t>(Index)] += R;
        }
      }
    }
    return RootLL;
  }

  /// M-step: normalized counts become the new parameters.
  void maximize(const Statistics &Stats) {
    for (Node *Current : Order) {
      if (auto *Sum = dyn_cast<SumNode>(Current)) {
        const std::vector<double> &Counts = Stats.EdgeCounts.at(Sum);
        double Total = 0;
        for (double Count : Counts)
          Total += Count;
        if (Total <= 0)
          continue;
        std::vector<double> Weights(Counts.size());
        for (size_t C = 0; C < Counts.size(); ++C)
          Weights[C] = Counts[C] / Total;
        Sum->setWeights(std::move(Weights));
        continue;
      }
      if (!Options.UpdateLeaves)
        continue;
      if (auto *Gauss = dyn_cast<GaussianLeaf>(Current)) {
        auto It = Stats.GaussianMoments.find(Gauss);
        if (It == Stats.GaussianMoments.end() || It->second.SumR <= 1e-9)
          continue;
        const Statistics::Moments &M = It->second;
        double Mean = M.SumRX / M.SumR;
        double Var = std::max(0.0, M.SumRXX / M.SumR - Mean * Mean);
        Gauss->setParameters(
            Mean, std::max(Options.MinStdDev, std::sqrt(Var)));
        continue;
      }
      if (auto *Hist = dyn_cast<HistogramLeaf>(Current)) {
        const std::vector<double> &Counts = Stats.BinCounts.at(Hist);
        double Total = 0;
        for (double Count : Counts)
          Total += Count;
        if (Total <= 0)
          continue;
        std::vector<double> P(Counts.size());
        for (size_t B = 0; B < Counts.size(); ++B)
          P[B] = Counts[B] / Total;
        Hist->setBucketProbabilities(P);
        continue;
      }
      if (auto *Cat = dyn_cast<CategoricalLeaf>(Current)) {
        const std::vector<double> &Counts = Stats.BinCounts.at(Cat);
        double Total = 0;
        for (double Count : Counts)
          Total += Count;
        if (Total <= 0)
          continue;
        std::vector<double> P(Counts.size());
        for (size_t B = 0; B < Counts.size(); ++B)
          P[B] = Counts[B] / Total;
        Cat->setProbabilities(std::move(P));
      }
    }
  }

  Model &TheModel;
  const EmOptions &Options;
  std::vector<Node *> Order;
  std::unordered_map<const Node *, size_t> PositionOf;
  std::vector<double> LogValues;
  std::vector<double> Responsibility;
};

} // namespace

EmResult spnc::learn::fitParameters(Model &TheModel, const double *Data,
                                    size_t NumSamples,
                                    const EmOptions &Options) {
  assert(TheModel.getRoot() && "model must have a root");
  EmEngine Engine(TheModel, Options);
  return Engine.run(Data, NumSamples);
}
