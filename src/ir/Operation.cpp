//===- Operation.cpp - The generic IR operation ----------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Operation.h"

#include <algorithm>

using namespace spnc;
using namespace spnc::ir;

//===----------------------------------------------------------------------===//
// Block
//===----------------------------------------------------------------------===//

Block::~Block() {
  dropAllReferences();
  clear();
}

Operation *Block::getParentOp() const {
  return ParentRegion ? ParentRegion->getParentOp() : nullptr;
}

Value Block::addArgument(Type Ty) {
  auto Arg = std::make_unique<BlockArgumentImpl>(
      Ty, static_cast<unsigned>(Arguments.size()), this);
  Value Result(Arg.get());
  Arguments.push_back(std::move(Arg));
  return Result;
}

void Block::push_back(Operation *Op) { insertBefore(Operations.end(), Op); }

void Block::insertBefore(iterator Before, Operation *Op) {
  assert(Op && !Op->getBlock() && "op must be detached");
  Op->ParentBlock = this;
  Op->PositionInBlock = Operations.insert(Before, Op);
}

Operation *Block::getTerminator() {
  if (Operations.empty())
    return nullptr;
  Operation *Last = Operations.back();
  return Last->isTerminator() ? Last : nullptr;
}

void Block::dropAllReferences() {
  for (Operation *Op : Operations)
    Op->dropAllReferences();
}

void Block::clear() {
  // References were dropped by the caller or the destructor; destroy in
  // reverse order anyway to honour intra-block def-use order when clear()
  // is called directly on consistent IR.
  while (!Operations.empty()) {
    Operation *Last = Operations.back();
    Last->dropAllReferences();
    Last->erase();
  }
}

//===----------------------------------------------------------------------===//
// Operation
//===----------------------------------------------------------------------===//

Operation::Operation(Context &Ctx, const OpInfo *Info, unsigned NumOperands,
                     unsigned NumResults)
    : Ctx(&Ctx), Info(Info), NumOperands(NumOperands),
      NumResults(NumResults) {}

Operation *Operation::create(Context &Ctx, const OperationState &State) {
  const OpInfo *Info = Ctx.lookupOrCreateOpInfo(State.Name);
  auto *Op = new Operation(Ctx, Info,
                           static_cast<unsigned>(State.Operands.size()),
                           static_cast<unsigned>(State.ResultTypes.size()));

  if (Op->NumOperands > 0) {
    Op->Operands = std::make_unique<OpOperand[]>(Op->NumOperands);
    for (unsigned I = 0; I < Op->NumOperands; ++I) {
      assert(State.Operands[I] && "null operand");
      Op->Operands[I].initialize(Op, I, State.Operands[I]);
    }
  }

  if (Op->NumResults > 0) {
    Op->Results = std::make_unique<OpResultImpl[]>(Op->NumResults);
    for (unsigned I = 0; I < Op->NumResults; ++I) {
      assert(State.ResultTypes[I] && "null result type");
      Op->Results[I].initialize(State.ResultTypes[I], I, Op);
    }
  }

  Op->Attrs = State.Attributes;
  std::sort(Op->Attrs.begin(), Op->Attrs.end(),
            [](const NamedAttribute &A, const NamedAttribute &B) {
              return A.Name < B.Name;
            });

  Op->Regions.reserve(State.NumRegions);
  for (unsigned I = 0; I < State.NumRegions; ++I) {
    Op->Regions.push_back(std::make_unique<Region>());
    Op->Regions.back()->ParentOp = Op;
  }
  return Op;
}

void Operation::destroy() {
  assert(!ParentBlock && "destroying an op still attached to a block");
  assert(useEmpty() && "destroying an op whose results still have uses");
  delete this;
}

Attribute Operation::getAttr(const std::string &Name) const {
  for (const NamedAttribute &Entry : Attrs)
    if (Entry.Name == Name)
      return Entry.Value;
  return Attribute();
}

void Operation::setAttr(const std::string &Name, Attribute Attr) {
  assert(Attr && "setting a null attribute");
  for (NamedAttribute &Entry : Attrs) {
    if (Entry.Name == Name) {
      Entry.Value = Attr;
      return;
    }
  }
  Attrs.push_back(NamedAttribute{Name, Attr});
  std::sort(Attrs.begin(), Attrs.end(),
            [](const NamedAttribute &A, const NamedAttribute &B) {
              return A.Name < B.Name;
            });
}

void Operation::removeAttr(const std::string &Name) {
  Attrs.erase(std::remove_if(Attrs.begin(), Attrs.end(),
                             [&](const NamedAttribute &Entry) {
                               return Entry.Name == Name;
                             }),
              Attrs.end());
}

int64_t Operation::getIntAttr(const std::string &Name,
                              int64_t Fallback) const {
  Attribute Attr = getAttr(Name);
  return Attr ? Attr.cast<IntAttr>().getValue() : Fallback;
}

double Operation::getFloatAttr(const std::string &Name,
                               double Fallback) const {
  Attribute Attr = getAttr(Name);
  return Attr ? Attr.cast<FloatAttr>().getValue() : Fallback;
}

bool Operation::getBoolAttr(const std::string &Name, bool Fallback) const {
  Attribute Attr = getAttr(Name);
  return Attr ? Attr.cast<BoolAttr>().getValue() : Fallback;
}

void Operation::remove() {
  assert(ParentBlock && "removing a detached op");
  ParentBlock->getOperations().erase(PositionInBlock);
  ParentBlock = nullptr;
}

void Operation::erase() {
  if (ParentBlock)
    remove();
  // Drop operand references, including those of nested ops that may use
  // values defined outside this op.
  dropAllReferences();
  destroy();
}

void Operation::moveBefore(Operation *Other) {
  assert(Other && Other->getBlock() && "target must be attached");
  remove();
  Other->getBlock()->insertBefore(Other->getIterator(), this);
}

void Operation::walk(const std::function<void(Operation *)> &Fn) {
  // Copy iteration state so the callback may erase the visited op.
  for (auto &TheRegion : Regions) {
    for (auto &TheBlock : *TheRegion) {
      auto It = TheBlock->begin();
      while (It != TheBlock->end()) {
        Operation *Current = *It;
        ++It;
        Current->walk(Fn);
      }
    }
  }
  Fn(this);
}

void Operation::dropAllReferences() {
  for (unsigned I = 0; I < NumOperands; ++I)
    Operands[I].set(Value());
  for (auto &TheRegion : Regions)
    TheRegion->dropAllReferences();
}
