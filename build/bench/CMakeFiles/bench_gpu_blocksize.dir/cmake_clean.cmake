file(REMOVE_RECURSE
  "CMakeFiles/bench_gpu_blocksize.dir/bench_gpu_blocksize.cpp.o"
  "CMakeFiles/bench_gpu_blocksize.dir/bench_gpu_blocksize.cpp.o.d"
  "bench_gpu_blocksize"
  "bench_gpu_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpu_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
