//===- Workloads.h - Synthetic evaluation workloads ----------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generators for the two evaluation applications of the paper:
///
///  * speaker-identification SPNs (paper §V-A, Nicolson et al.): one SPN
///    per speaker over 26 MFCC-like features; the generator matches the
///    published model statistics (~2569 operations on average, ~49%
///    Gaussian leaf nodes) since the original speech models are not
///    shipped;
///  * RAT-SPNs (paper §V-B, Peharz et al.): random tensorized SPN
///    structures built from a region graph; the paper-scale configuration
///    approximates the published per-class counts (~165k leaves, ~170k
///    products, ~3k sums over 784 features).
///
/// Plus matching synthetic data generators (clean speech features, noisy
/// speech with NaN-marginalized features, MNIST-like images).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_WORKLOADS_WORKLOADS_H
#define SPNC_WORKLOADS_WORKLOADS_H

#include "frontend/Model.h"

#include <cstdint>
#include <vector>

namespace spnc {
namespace workloads {

//===----------------------------------------------------------------------===//
// Speaker identification (paper §V-A)
//===----------------------------------------------------------------------===//

struct SpeakerModelOptions {
  unsigned NumFeatures = 26;
  /// Approximate operation count to generate (paper: 2569 on average).
  unsigned TargetOperations = 2569;
  /// Fraction of features modelled by Gaussian leaves (paper: the models
  /// average 49% Gaussian leaf nodes).
  double ContinuousFeatureFraction = 0.68;
  uint64_t Seed = 1;
};

/// Generates one per-speaker SPN. Different seeds give the different
/// speaker models of the evaluation.
spn::Model generateSpeakerModel(const SpeakerModelOptions &Options);

/// Generates clean speech-like samples (row-major [sample][feature]).
/// Continuous features are Gaussian-mixture distributed; discrete
/// features are small non-negative integers, in range of the generated
/// leaves.
std::vector<double> generateSpeechData(const SpeakerModelOptions &Options,
                                       size_t NumSamples, uint64_t Seed);

/// Generates noisy speech samples: like generateSpeechData, but each
/// feature is marginalized (NaN) with probability \p DropProbability
/// (paper §V-A: noisy samples are evaluated with marginalization).
std::vector<double> generateNoisySpeechData(
    const SpeakerModelOptions &Options, size_t NumSamples, uint64_t Seed,
    double DropProbability = 0.3);

//===----------------------------------------------------------------------===//
// RAT-SPNs (paper §V-B)
//===----------------------------------------------------------------------===//

struct RatSpnOptions {
  /// Number of random variables (28x28 images in the paper).
  unsigned NumFeatures = 784;
  /// Region-graph split depth (leaf regions hold
  /// NumFeatures / 2^Depth features).
  unsigned Depth = 5;
  /// Number of replicas (independent random region trees).
  unsigned Replicas = 5;
  /// Sum nodes per internal region.
  unsigned SumsPerRegion = 8;
  /// Input distributions per leaf region.
  unsigned LeafDistributions = 40;
  uint64_t Seed = 7;
  /// Weight-learning substitute: when non-zero, the Gaussian leaf
  /// parameters of class k are fitted to the synthetic class-k image
  /// distribution of generateImageData(..., PrototypeSeed, ...) —
  /// maximum likelihood for the per-class prototype + noise model, since
  /// the paper's trained MNIST parameters are not redistributable. Zero
  /// leaves the parameters random (an untrained model).
  uint64_t PrototypeSeed = 0;
};

/// Approximates the paper-scale per-class RAT-SPN (~340k operations).
RatSpnOptions ratSpnPaperScale();

/// A scaled-down configuration for tests and default benchmark runs
/// (~20k operations per class).
RatSpnOptions ratSpnSmallScale();

/// Generates the RAT-SPN for one output class. Classes share the random
/// structure (derived from Options.Seed) and differ in the leaf/weight
/// parameters (derived from ClassIndex), as in the paper where "the
/// random structure for both tasks is identical and only the weights
/// differ".
spn::Model generateRatSpn(const RatSpnOptions &Options,
                          unsigned ClassIndex);

/// Generates MNIST-like image samples: per-class Gaussian blobs over
/// pixel space, normalized to [0, 1]. Returns row-major samples and
/// fills \p Labels with the class of each sample.
std::vector<double> generateImageData(unsigned NumFeatures,
                                      unsigned NumClasses,
                                      size_t NumSamples, uint64_t Seed,
                                      std::vector<unsigned> *Labels);

} // namespace workloads
} // namespace spnc

#endif // SPNC_WORKLOADS_WORKLOADS_H
