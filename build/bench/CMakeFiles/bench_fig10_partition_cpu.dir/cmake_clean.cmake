file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_partition_cpu.dir/bench_fig10_partition_cpu.cpp.o"
  "CMakeFiles/bench_fig10_partition_cpu.dir/bench_fig10_partition_cpu.cpp.o.d"
  "bench_fig10_partition_cpu"
  "bench_fig10_partition_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_partition_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
