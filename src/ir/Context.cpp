//===- Context.cpp - IR context implementation ----------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"

#include "support/Hashing.h"
#include "support/RawOStream.h"

#include <cassert>

using namespace spnc;
using namespace spnc::ir;

//===----------------------------------------------------------------------===//
// Hashing and equality for uniqued storage
//===----------------------------------------------------------------------===//

static size_t hashType(const TypeStorage &T) {
  size_t Seed = hashCombine(static_cast<unsigned>(T.Kind), T.Width,
                            reinterpret_cast<uintptr_t>(T.Element));
  for (int64_t Dim : T.Shape)
    hashCombineSeed(Seed, std::hash<int64_t>()(Dim));
  return Seed;
}

static bool typeEquals(const TypeStorage &A, const TypeStorage &B) {
  return A.Kind == B.Kind && A.Width == B.Width && A.Element == B.Element &&
         A.Shape == B.Shape;
}

static size_t hashAttr(const AttrStorage &A) {
  size_t Seed = hashCombine(static_cast<unsigned>(A.Kind), A.BoolValue,
                            A.IntValue, A.FloatValue, A.StringValue,
                            reinterpret_cast<uintptr_t>(A.TypeValue));
  for (const AttrStorage *Element : A.Elements)
    hashCombineSeed(Seed, std::hash<const void *>()(Element));
  for (double Value : A.Doubles)
    hashCombineSeed(Seed, std::hash<double>()(Value));
  return Seed;
}

static bool attrEquals(const AttrStorage &A, const AttrStorage &B) {
  return A.Kind == B.Kind && A.BoolValue == B.BoolValue &&
         A.IntValue == B.IntValue && A.FloatValue == B.FloatValue &&
         A.StringValue == B.StringValue && A.TypeValue == B.TypeValue &&
         A.Elements == B.Elements && A.Doubles == B.Doubles;
}

//===----------------------------------------------------------------------===//
// Context
//===----------------------------------------------------------------------===//

Context::Context() {
  DiagHandler = [](const std::string &Message) {
    errs() << "error: " << Message << '\n';
  };
}

Context::~Context() = default;

const TypeStorage *Context::uniqueType(TypeStorage Prototype) {
  Prototype.Ctx = this;
  size_t Hash = hashType(Prototype);
  auto [Begin, End] = TypePool.equal_range(Hash);
  for (auto It = Begin; It != End; ++It)
    if (typeEquals(*It->second, Prototype))
      return It->second.get();
  auto Storage = std::make_unique<TypeStorage>(std::move(Prototype));
  const TypeStorage *Result = Storage.get();
  TypePool.emplace(Hash, std::move(Storage));
  return Result;
}

const AttrStorage *Context::uniqueAttr(AttrStorage Prototype) {
  Prototype.Ctx = this;
  size_t Hash = hashAttr(Prototype);
  auto [Begin, End] = AttrPool.equal_range(Hash);
  for (auto It = Begin; It != End; ++It)
    if (attrEquals(*It->second, Prototype))
      return It->second.get();
  auto Storage = std::make_unique<AttrStorage>(std::move(Prototype));
  const AttrStorage *Result = Storage.get();
  AttrPool.emplace(Hash, std::move(Storage));
  return Result;
}

const OpInfo *Context::registerOp(OpInfo Info) {
  assert(!OpRegistry.count(Info.Name) && "operation registered twice");
  auto Owned = std::make_unique<OpInfo>(std::move(Info));
  const OpInfo *Result = Owned.get();
  OpRegistry.emplace(Result->Name, std::move(Owned));
  return Result;
}

const OpInfo *Context::lookupOrCreateOpInfo(const std::string &Name) {
  auto It = OpRegistry.find(Name);
  if (It != OpRegistry.end())
    return It->second.get();
  OpInfo Default;
  Default.Name = Name;
  size_t Dot = Name.find('.');
  Default.DialectName = Dot == std::string::npos ? "" : Name.substr(0, Dot);
  return registerOp(std::move(Default));
}

const OpInfo *Context::lookupOpInfo(const std::string &Name) const {
  auto It = OpRegistry.find(Name);
  return It == OpRegistry.end() ? nullptr : It->second.get();
}

bool Context::isDialectLoaded(const std::string &Name) const {
  auto It = LoadedDialects.find(Name);
  return It != LoadedDialects.end() && It->second;
}

void Context::markDialectLoaded(const std::string &Name) {
  LoadedDialects[Name] = true;
}

void Context::emitError(const std::string &Message) {
  ++NumErrors;
  if (DiagHandler)
    DiagHandler(Message);
}

DiagnosticHandler Context::setDiagnosticHandler(DiagnosticHandler Handler) {
  DiagnosticHandler Previous = std::move(DiagHandler);
  DiagHandler = std::move(Handler);
  return Previous;
}

//===----------------------------------------------------------------------===//
// Type factory methods
//===----------------------------------------------------------------------===//

NoneType NoneType::get(Context &Ctx) {
  TypeStorage Proto;
  Proto.Kind = TypeKind::None;
  return NoneType(Ctx.uniqueType(std::move(Proto)));
}

IndexType IndexType::get(Context &Ctx) {
  TypeStorage Proto;
  Proto.Kind = TypeKind::Index;
  return IndexType(Ctx.uniqueType(std::move(Proto)));
}

IntegerType IntegerType::get(Context &Ctx, unsigned Width) {
  TypeStorage Proto;
  Proto.Kind = TypeKind::Integer;
  Proto.Width = Width;
  return IntegerType(Ctx.uniqueType(std::move(Proto)));
}

FloatType FloatType::getF32(Context &Ctx) {
  TypeStorage Proto;
  Proto.Kind = TypeKind::Float;
  Proto.Width = 32;
  return FloatType(Ctx.uniqueType(std::move(Proto)));
}

FloatType FloatType::getF64(Context &Ctx) {
  TypeStorage Proto;
  Proto.Kind = TypeKind::Float;
  Proto.Width = 64;
  return FloatType(Ctx.uniqueType(std::move(Proto)));
}

TensorType TensorType::get(Context &Ctx, std::vector<int64_t> Shape,
                           Type ElementType) {
  assert(ElementType && "tensor element type must be non-null");
  TypeStorage Proto;
  Proto.Kind = TypeKind::Tensor;
  Proto.Shape = std::move(Shape);
  Proto.Element = ElementType.getImpl();
  return TensorType(Ctx.uniqueType(std::move(Proto)));
}

MemRefType MemRefType::get(Context &Ctx, std::vector<int64_t> Shape,
                           Type ElementType) {
  assert(ElementType && "memref element type must be non-null");
  TypeStorage Proto;
  Proto.Kind = TypeKind::MemRef;
  Proto.Shape = std::move(Shape);
  Proto.Element = ElementType.getImpl();
  return MemRefType(Ctx.uniqueType(std::move(Proto)));
}

VectorType VectorType::get(Context &Ctx, unsigned NumLanes,
                           Type ElementType) {
  assert(NumLanes > 0 && "vector must have at least one lane");
  TypeStorage Proto;
  Proto.Kind = TypeKind::Vector;
  Proto.Width = NumLanes;
  Proto.Element = ElementType.getImpl();
  return VectorType(Ctx.uniqueType(std::move(Proto)));
}

//===----------------------------------------------------------------------===//
// Attribute factory methods
//===----------------------------------------------------------------------===//

UnitAttr UnitAttr::get(Context &Ctx) {
  AttrStorage Proto;
  Proto.Kind = AttrKind::Unit;
  return UnitAttr(Ctx.uniqueAttr(std::move(Proto)));
}

BoolAttr BoolAttr::get(Context &Ctx, bool Value) {
  AttrStorage Proto;
  Proto.Kind = AttrKind::Bool;
  Proto.BoolValue = Value;
  return BoolAttr(Ctx.uniqueAttr(std::move(Proto)));
}

IntAttr IntAttr::get(Context &Ctx, int64_t Value) {
  AttrStorage Proto;
  Proto.Kind = AttrKind::Int;
  Proto.IntValue = Value;
  return IntAttr(Ctx.uniqueAttr(std::move(Proto)));
}

FloatAttr FloatAttr::get(Context &Ctx, double Value) {
  AttrStorage Proto;
  Proto.Kind = AttrKind::Float;
  Proto.FloatValue = Value;
  return FloatAttr(Ctx.uniqueAttr(std::move(Proto)));
}

StringAttr StringAttr::get(Context &Ctx, std::string Value) {
  AttrStorage Proto;
  Proto.Kind = AttrKind::String;
  Proto.StringValue = std::move(Value);
  return StringAttr(Ctx.uniqueAttr(std::move(Proto)));
}

TypeAttr TypeAttr::get(Context &Ctx, Type Value) {
  assert(Value && "TypeAttr requires a non-null type");
  AttrStorage Proto;
  Proto.Kind = AttrKind::Type;
  Proto.TypeValue = Value.getImpl();
  return TypeAttr(Ctx.uniqueAttr(std::move(Proto)));
}

ArrayAttr ArrayAttr::get(Context &Ctx,
                         const std::vector<Attribute> &Elements) {
  AttrStorage Proto;
  Proto.Kind = AttrKind::Array;
  Proto.Elements.reserve(Elements.size());
  for (Attribute Element : Elements) {
    assert(Element && "ArrayAttr elements must be non-null");
    Proto.Elements.push_back(Element.getImpl());
  }
  return ArrayAttr(Ctx.uniqueAttr(std::move(Proto)));
}

DenseF64Attr DenseF64Attr::get(Context &Ctx, std::vector<double> Values) {
  AttrStorage Proto;
  Proto.Kind = AttrKind::DenseF64;
  Proto.Doubles = std::move(Values);
  return DenseF64Attr(Ctx.uniqueAttr(std::move(Proto)));
}
