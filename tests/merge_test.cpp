//===- merge_test.cpp - Structural merging and merged-kernel tests --------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for merged-model compilation (docs/merging.md): the structural
/// signature/hash and isomorphism analysis of merge/Merge.h, the
/// content-vs-structural hash split on KernelCache, the merged
/// compilation path (one parameterized kernel per merge group, bound
/// per-model weight tables), differential checks of merged kernels
/// against the per-model interpreter oracle at the f64 tolerance, and
/// the `.spnk` v5 round trip of parameterized programs.
///
//===----------------------------------------------------------------------===//

#include "backend/CppBackend.h"
#include "baselines/Baselines.h"
#include "merge/Merge.h"
#include "runtime/KernelCache.h"
#include "support/Casting.h"
#include "vm/ParamTable.h"
#include "vm/ProgramBinary.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

using namespace spnc;
using namespace spnc::runtime;

namespace {

constexpr double kTolerance = 1e-9;

/// A small RAT-SPN family: classes share the random structure and
/// differ only in weights and leaf parameters — the canonical merge
/// group (paper §V-B: "the random structure for both tasks is identical
/// and only the weights differ").
workloads::RatSpnOptions smallRatOptions() {
  workloads::RatSpnOptions Options;
  Options.NumFeatures = 16;
  Options.Depth = 2;
  Options.Replicas = 2;
  Options.SumsPerRegion = 3;
  Options.LeafDistributions = 4;
  Options.Seed = 17;
  return Options;
}

spn::Model ratClass(unsigned ClassIndex) {
  return workloads::generateRatSpn(smallRatOptions(), ClassIndex);
}

std::vector<double> ratData(size_t NumSamples, uint64_t Seed) {
  return workloads::generateImageData(smallRatOptions().NumFeatures,
                                      /*NumClasses=*/2, NumSamples, Seed,
                                      /*Labels=*/nullptr);
}

/// Perturbs the first sum node's weights in place — a weight-only edit
/// that must change the content hash but not the structural hash.
void perturbFirstSumWeights(spn::Model &Model) {
  for (size_t I = 0; I < Model.getNumNodes(); ++I) {
    if (auto *Sum = dyn_cast<spn::SumNode>(
            Model.getNode(static_cast<unsigned>(I)))) {
      std::vector<double> Weights = Sum->getWeights();
      ASSERT_GE(Weights.size(), 2u);
      std::swap(Weights.front(), Weights.back());
      Sum->setWeights(std::move(Weights));
      return;
    }
  }
  FAIL() << "model has no sum node to perturb";
}

//===----------------------------------------------------------------------===//
// Structural signature / hash / isomorphism
//===----------------------------------------------------------------------===//

TEST(MergeTest, WeightEditChangesContentHashNotStructuralHash) {
  spn::Model Original = ratClass(0);
  spn::Model Edited = ratClass(0);
  perturbFirstSumWeights(Edited);

  EXPECT_NE(KernelCache::contentHash(Original),
            KernelCache::contentHash(Edited));
  EXPECT_EQ(KernelCache::structuralHash(Original),
            KernelCache::structuralHash(Edited));
  EXPECT_TRUE(merge::isStructurallyIsomorphic(Original, Edited));
  // The legacy spelling stays the content hash.
  EXPECT_EQ(KernelCache::hashModel(Original),
            KernelCache::contentHash(Original));
}

TEST(MergeTest, IsomorphicClassesShareSignature) {
  spn::Model A = ratClass(0);
  spn::Model B = ratClass(1);
  EXPECT_NE(KernelCache::contentHash(A), KernelCache::contentHash(B));
  EXPECT_EQ(merge::structuralSignature(A), merge::structuralSignature(B));
  EXPECT_EQ(merge::structuralHash(A), merge::structuralHash(B));
  EXPECT_TRUE(merge::isStructurallyIsomorphic(A, B));
}

TEST(MergeTest, DifferentStructuresAreNotIsomorphic) {
  spn::Model A = ratClass(0);
  workloads::RatSpnOptions Other = smallRatOptions();
  Other.SumsPerRegion = 2; // different arity everywhere
  spn::Model C = workloads::generateRatSpn(Other, 0);
  EXPECT_NE(merge::structuralHash(A), merge::structuralHash(C));
  EXPECT_FALSE(merge::isStructurallyIsomorphic(A, C));

  // Speaker models differ from RAT-SPNs outright.
  workloads::SpeakerModelOptions Speaker;
  Speaker.TargetOperations = 200;
  Speaker.Seed = 5;
  spn::Model D = workloads::generateSpeakerModel(Speaker);
  EXPECT_FALSE(merge::isStructurallyIsomorphic(A, D));
}

TEST(MergeTest, ExtractParamsMatchesCountsAndDiffersByClass) {
  spn::Model A = ratClass(0);
  spn::Model B = ratClass(1);
  merge::ModelCounts Counts = merge::countModel(A);
  EXPECT_GT(Counts.NumNodes, 0u);
  EXPECT_GT(Counts.NumEdges, 0u);
  EXPECT_EQ(Counts.NumNodes,
            Counts.NumSums + Counts.NumProducts + Counts.NumLeaves);

  std::vector<double> ParamsA = merge::extractParams(A);
  std::vector<double> ParamsB = merge::extractParams(B);
  EXPECT_EQ(ParamsA.size(), Counts.NumParams);
  // Isomorphic models have same-shaped parameter vectors with
  // different values.
  ASSERT_EQ(ParamsA.size(), ParamsB.size());
  EXPECT_NE(ParamsA, ParamsB);
}

TEST(MergeTest, DiscoverMergeGroupsPartitionsBySignature) {
  spn::Model A0 = ratClass(0);
  spn::Model A1 = ratClass(1);
  workloads::RatSpnOptions Other = smallRatOptions();
  Other.SumsPerRegion = 2;
  spn::Model B0 = workloads::generateRatSpn(Other, 0);
  spn::Model A2 = ratClass(2);

  std::vector<const spn::Model *> Models = {&A0, &B0, &A1, &A2};
  std::vector<merge::MergeGroup> Groups =
      merge::discoverMergeGroups(Models);
  ASSERT_EQ(Groups.size(), 2u);
  // Groups in first-appearance order, members in input order.
  EXPECT_EQ(Groups[0].Hash, merge::structuralHash(A0));
  EXPECT_EQ(Groups[0].Members, (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(Groups[1].Hash, merge::structuralHash(B0));
  EXPECT_EQ(Groups[1].Members, (std::vector<size_t>{1}));
}

//===----------------------------------------------------------------------===//
// Merged compilation through the kernel cache
//===----------------------------------------------------------------------===//

spn::QueryConfig f64Query(bool Marginal = false) {
  spn::QueryConfig Query;
  Query.LogSpace = true;
  Query.SupportMarginal = Marginal;
  Query.DataType = spn::ComputeType::F64;
  if (Marginal)
    Query.Kind = spn::QueryKind::Marginal;
  return Query;
}

TEST(MergeTest, IsomorphicModelsShareOneCacheEntry) {
  KernelCache Cache;
  spn::Model A = ratClass(0);
  spn::Model B = ratClass(1);
  CompilerOptions Options;

  Expected<KernelCache::MergedKernel> MergedA =
      Cache.getOrCompileMerged(A, f64Query(), Options);
  ASSERT_TRUE(static_cast<bool>(MergedA))
      << MergedA.getError().message();
  Expected<KernelCache::MergedKernel> MergedB =
      Cache.getOrCompileMerged(B, f64Query(), Options);
  ASSERT_TRUE(static_cast<bool>(MergedB))
      << MergedB.getError().message();

  // One compile, one cache entry, one engine; two weight tables.
  KernelCache::Stats Stats = Cache.getStats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(MergedA->Kernel.getEngineShared().get(),
            MergedB->Kernel.getEngineShared().get());
  EXPECT_EQ(MergedA->TableIndex, 0);
  EXPECT_EQ(MergedB->TableIndex, 1);

  // Re-registering a model is idempotent: same table index back.
  Expected<KernelCache::MergedKernel> Again =
      Cache.getOrCompileMerged(A, f64Query(), Options);
  ASSERT_TRUE(static_cast<bool>(Again));
  EXPECT_EQ(Again->TableIndex, 0);
}

TEST(MergeTest, MergedPathRejectsUnsupportedQueries) {
  KernelCache Cache;
  spn::Model A = ratClass(0);
  CompilerOptions Options;
  spn::QueryConfig Mpe;
  Mpe.Kind = spn::QueryKind::Mpe;
  EXPECT_FALSE(
      static_cast<bool>(Cache.getOrCompileMerged(A, Mpe, Options)));

  CompilerOptions Gpu;
  Gpu.TheTarget = Target::GPU;
  EXPECT_FALSE(
      static_cast<bool>(Cache.getOrCompileMerged(A, f64Query(), Gpu)));
}

//===----------------------------------------------------------------------===//
// Differential: merged kernel vs per-model interpreter oracle
//===----------------------------------------------------------------------===//

/// Runs every class of the merge group through the ONE merged kernel
/// (per-model weight table) and checks each against its own
/// interpreter oracle at the f64 tolerance.
void expectMergedMatchesOracles(KernelCache &Cache,
                                const CompilerOptions &Options,
                                bool Marginal, const char *Leg) {
  constexpr unsigned kClasses = 3;
  constexpr size_t kNumSamples = 16;
  std::vector<double> Data = ratData(kNumSamples, 0xda7aULL);
  if (Marginal)
    for (size_t I = 0; I < Data.size(); I += 3)
      Data[I] = std::numeric_limits<double>::quiet_NaN();

  for (unsigned Class = 0; Class < kClasses; ++Class) {
    spn::Model Model = ratClass(Class);
    Expected<KernelCache::MergedKernel> Merged =
        Cache.getOrCompileMerged(Model, f64Query(Marginal), Options);
    ASSERT_TRUE(static_cast<bool>(Merged))
        << Leg << ": " << Merged.getError().message();
    ASSERT_GE(Merged->TableIndex, 0);

    std::vector<uint32_t> Tables(
        kNumSamples, static_cast<uint32_t>(Merged->TableIndex));
    std::vector<double> Got(kNumSamples, 0.0);
    ASSERT_TRUE(Merged->Kernel.executeIndexed(
        Data.data(), Tables.data(), Got.data(), kNumSamples))
        << Leg << " class " << Class << ": engine refused the batch";

    baselines::InterpreterEngine Oracle(Model);
    std::vector<double> Want(kNumSamples, 0.0);
    Oracle.execute(Data.data(), Want.data(), kNumSamples);
    for (size_t I = 0; I < kNumSamples; ++I) {
      ASSERT_TRUE(std::isfinite(Want[I]))
          << Leg << " class " << Class << " sample " << I;
      EXPECT_NEAR(Got[I], Want[I], kTolerance)
          << Leg << " class " << Class << " sample " << I;
    }
  }
  // The whole group compiled exactly once.
  EXPECT_EQ(Cache.getStats().Misses, 1u) << Leg;
}

TEST(MergeTest, MergedVmKernelMatchesOracleJoint) {
  KernelCache Cache;
  CompilerOptions Options;
  expectMergedMatchesOracles(Cache, Options, /*Marginal=*/false,
                             "vm/joint");
}

TEST(MergeTest, MergedVmKernelMatchesOracleMarginal) {
  KernelCache Cache;
  CompilerOptions Options;
  expectMergedMatchesOracles(Cache, Options, /*Marginal=*/true,
                             "vm/marginal");
}

TEST(MergeTest, MergedCppKernelMatchesOracleJointAndMarginal) {
  backend::CppBackendOptions CppOptions;
  CppOptions.ExtraFlags = {"-O0"}; // one host compile per leg
  auto Cpp = std::make_shared<backend::CppBackend>(CppOptions);
  std::string SkipReason;
  if (!Cpp->isAvailable(&SkipReason))
    GTEST_SKIP() << SkipReason;
  CompilerOptions Options;
  {
    KernelCache::Config Config;
    Config.TheBackend = Cpp;
    KernelCache Cache(Config);
    expectMergedMatchesOracles(Cache, Options, /*Marginal=*/false,
                               "cpp/joint");
  }
  {
    KernelCache::Config Config;
    Config.TheBackend = Cpp;
    KernelCache Cache(Config);
    expectMergedMatchesOracles(Cache, Options, /*Marginal=*/true,
                               "cpp/marginal");
  }
}

/// One batch carrying interleaved rows of two same-structure,
/// different-weight models: every row must score under its own model.
void expectMixedBatchMatchesOracles(KernelCache &Cache,
                                    const CompilerOptions &Options,
                                    const char *Leg) {
  constexpr size_t kRows = 24;
  spn::Model A = ratClass(0);
  spn::Model B = ratClass(1);
  Expected<KernelCache::MergedKernel> MergedA =
      Cache.getOrCompileMerged(A, f64Query(), Options);
  ASSERT_TRUE(static_cast<bool>(MergedA))
      << Leg << ": " << MergedA.getError().message();
  Expected<KernelCache::MergedKernel> MergedB =
      Cache.getOrCompileMerged(B, f64Query(), Options);
  ASSERT_TRUE(static_cast<bool>(MergedB))
      << Leg << ": " << MergedB.getError().message();

  std::vector<double> Data = ratData(kRows, 0xba7c4ULL);
  // Alternating run lengths (2, then 1) so executeIndexed crosses
  // several table-switch boundaries mid-batch.
  std::vector<uint32_t> Tables(kRows);
  for (size_t I = 0; I < kRows; ++I)
    Tables[I] = static_cast<uint32_t>(
        I % 3 == 2 ? MergedB->TableIndex : MergedA->TableIndex);

  std::vector<double> Got(kRows, 0.0);
  ASSERT_TRUE(MergedA->Kernel.executeIndexed(Data.data(), Tables.data(),
                                             Got.data(), kRows))
      << Leg << ": engine refused the mixed batch";

  baselines::InterpreterEngine OracleA(A);
  baselines::InterpreterEngine OracleB(B);
  std::vector<double> WantA(kRows, 0.0), WantB(kRows, 0.0);
  OracleA.execute(Data.data(), WantA.data(), kRows);
  OracleB.execute(Data.data(), WantB.data(), kRows);
  unsigned NumFeatures = A.getNumFeatures();
  (void)NumFeatures;
  for (size_t I = 0; I < kRows; ++I) {
    double Want = I % 3 == 2 ? WantB[I] : WantA[I];
    EXPECT_NEAR(Got[I], Want, kTolerance) << Leg << " row " << I;
  }
}

TEST(MergeTest, MixedTwoModelBatchScoresPerRowVm) {
  KernelCache Cache;
  CompilerOptions Options;
  expectMixedBatchMatchesOracles(Cache, Options, "vm/mixed");
}

TEST(MergeTest, MixedTwoModelBatchScoresPerRowCpp) {
  backend::CppBackendOptions CppOptions;
  CppOptions.ExtraFlags = {"-O0"};
  auto Cpp = std::make_shared<backend::CppBackend>(CppOptions);
  std::string SkipReason;
  if (!Cpp->isAvailable(&SkipReason))
    GTEST_SKIP() << SkipReason;
  KernelCache::Config Config;
  Config.TheBackend = Cpp;
  KernelCache Cache(Config);
  CompilerOptions Options;
  expectMixedBatchMatchesOracles(Cache, Options, "cpp/mixed");
}

/// Merged execution must agree with the classic unmerged compilation of
/// the same model (not just the interpreter): same engine class, same
/// instruction stream, weights routed through the table instead of
/// baked in.
TEST(MergeTest, MergedMatchesUnmergedCompilation) {
  constexpr size_t kNumSamples = 16;
  std::vector<double> Data = ratData(kNumSamples, 0x5a5aULL);
  KernelCache Cache;
  CompilerOptions Options;
  for (unsigned Class = 0; Class < 2; ++Class) {
    spn::Model Model = ratClass(Class);
    Expected<KernelCache::MergedKernel> Merged =
        Cache.getOrCompileMerged(Model, f64Query(), Options);
    ASSERT_TRUE(static_cast<bool>(Merged));
    Expected<CompiledKernel> Unmerged =
        Cache.getOrCompile(Model, f64Query(), Options);
    ASSERT_TRUE(static_cast<bool>(Unmerged));

    std::vector<uint32_t> Tables(
        kNumSamples, static_cast<uint32_t>(Merged->TableIndex));
    std::vector<double> Got(kNumSamples, 0.0), Want(kNumSamples, 0.0);
    ASSERT_TRUE(Merged->Kernel.executeIndexed(Data.data(), Tables.data(),
                                              Got.data(), kNumSamples));
    Unmerged->execute(Data.data(), Want.data(), kNumSamples);
    for (size_t I = 0; I < kNumSamples; ++I)
      EXPECT_NEAR(Got[I], Want[I], kTolerance)
          << "class " << Class << " sample " << I;
  }
}

//===----------------------------------------------------------------------===//
// Parameterized `.spnk` (format v5) round trip
//===----------------------------------------------------------------------===//

TEST(MergeTest, ParameterizedProgramRoundTripsThroughSpnkV5) {
  KernelCache Cache;
  CompilerOptions Options;
  spn::Model Model = ratClass(0);
  Expected<KernelCache::MergedKernel> Merged =
      Cache.getOrCompileMerged(Model, f64Query(), Options);
  ASSERT_TRUE(static_cast<bool>(Merged));
  const vm::KernelProgram *Program =
      Merged->Kernel.getEngineShared()->getProgram();
  ASSERT_NE(Program, nullptr);
  ASSERT_TRUE(Program->Parameterized);
  ASSERT_GT(Program->NumParams, 0u);

  std::vector<uint8_t> Blob = vm::encodeProgram(*Program);
  Expected<vm::KernelProgram> Decoded = vm::decodeProgram(Blob);
  ASSERT_TRUE(static_cast<bool>(Decoded))
      << Decoded.getError().message();
  EXPECT_TRUE(Decoded->Parameterized);
  EXPECT_EQ(Decoded->NumParams, Program->NumParams);
  ASSERT_EQ(Decoded->Tasks.size(), Program->Tasks.size());
  for (size_t T = 0; T < Program->Tasks.size(); ++T) {
    const vm::TaskProgram &Want = Program->Tasks[T];
    const vm::TaskProgram &Got = Decoded->Tasks[T];
    ASSERT_EQ(Got.ParamSites.size(), Want.ParamSites.size())
        << "task " << T;
    for (size_t S = 0; S < Want.ParamSites.size(); ++S) {
      EXPECT_EQ(Got.ParamSites[S].Kind, Want.ParamSites[S].Kind);
      EXPECT_EQ(Got.ParamSites[S].Transform,
                Want.ParamSites[S].Transform);
      EXPECT_EQ(Got.ParamSites[S].Index, Want.ParamSites[S].Index);
      EXPECT_EQ(Got.ParamSites[S].Slot, Want.ParamSites[S].Slot);
      EXPECT_EQ(Got.ParamSites[S].Count, Want.ParamSites[S].Count);
      EXPECT_EQ(Got.ParamSites[S].Param, Want.ParamSites[S].Param);
    }
  }

  // The decoded program still self-binds: re-applying the generating
  // model's parameters reproduces the baked tables bit-for-bit.
  std::vector<double> Params = merge::extractParams(Model);
  ASSERT_EQ(Params.size(), Program->NumParams);
  std::string Why;
  EXPECT_TRUE(vm::verifySelfBinding(*Decoded, Params, &Why)) << Why;
}

} // namespace
