//===- PatternMatch.cpp - Rewrite patterns and the greedy driver ------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/PatternMatch.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace spnc;
using namespace spnc::ir;

RewritePattern::~RewritePattern() = default;

//===----------------------------------------------------------------------===//
// Folding
//===----------------------------------------------------------------------===//

Value spnc::ir::tryFold(Operation *Op, OpBuilder &Builder) {
  const OpInfo *Info = Op->getInfo();
  if (!Info->Folder || Op->getNumResults() != 1)
    return Value();

  // Collect constant operand attributes (null for non-constants).
  std::vector<Attribute> OperandConstants;
  OperandConstants.reserve(Op->getNumOperands());
  for (unsigned I = 0; I < Op->getNumOperands(); ++I) {
    Attribute Constant;
    if (Operation *Def = Op->getOperand(I).getDefiningOp())
      if (Def->getInfo()->IsConstant)
        Constant = Def->getAttr("value");
    OperandConstants.push_back(Constant);
  }

  Attribute Folded = Info->Folder(Op, OperandConstants);
  if (!Folded)
    return Value();

  const auto &Materializer = Op->getContext().getConstantMaterializer();
  if (!Materializer)
    return Value();
  Operation *Constant =
      Materializer(Builder, Folded, Op->getResult(0).getType());
  return Constant ? Constant->getResult(0) : Value();
}

//===----------------------------------------------------------------------===//
// Greedy driver
//===----------------------------------------------------------------------===//

namespace {
struct PatternIndex {
  /// Patterns applicable to a specific op name, sorted by benefit.
  std::unordered_map<std::string, std::vector<const RewritePattern *>>
      ByName;
  /// Patterns applicable to any op.
  std::vector<const RewritePattern *> Generic;
};
} // namespace

namespace spnc {
namespace ir {

class GreedyDriver {
public:
  GreedyDriver(Operation *Scope, const PatternList &Patterns)
      : Scope(Scope), Rewriter(Scope->getContext()) {
    Rewriter.Driver = this;
    for (const auto &ThePattern : Patterns) {
      if (ThePattern->getAnchorOpName().empty())
        Index.Generic.push_back(ThePattern.get());
      else
        Index.ByName[ThePattern->getAnchorOpName()].push_back(
            ThePattern.get());
    }
    auto ByBenefit = [](const RewritePattern *A, const RewritePattern *B) {
      return A->getBenefit() > B->getBenefit();
    };
    for (auto &Entry : Index.ByName)
      std::sort(Entry.second.begin(), Entry.second.end(), ByBenefit);
    std::sort(Index.Generic.begin(), Index.Generic.end(), ByBenefit);
  }

  LogicalResult run(bool *Changed) {
    bool AnyChange = false;
    // Seed the worklist with all nested ops (post-order so producers are
    // folded before consumers).
    Scope->walk([&](Operation *Op) {
      if (Op != Scope)
        addToWorklist(Op);
    });

    // Fixpoint iteration with a generous safety bound.
    size_t Steps = 0;
    const size_t MaxSteps = 1000000 + 100 * Worklist.size();
    while (!Worklist.empty()) {
      if (++Steps > MaxSteps)
        return failure(); // Pattern set does not converge.
      Operation *Op = Worklist.front();
      Worklist.pop_front();
      if (!InWorklist.count(Op))
        continue; // Erased or deduplicated entry.
      InWorklist.erase(Op);

      if (processOp(Op))
        AnyChange = true;
    }
    if (Changed)
      *Changed = AnyChange;
    return success();
  }

  void addToWorklist(Operation *Op) {
    if (InWorklist.insert(Op).second)
      Worklist.push_back(Op);
  }

  void notifyErased(Operation *Op) { InWorklist.erase(Op); }

  /// Queues the producers of \p Op's operands (they may have become dead)
  /// and is called right before erasing/replacing an op.
  void queueOperandProducers(Operation *Op) {
    for (unsigned I = 0; I < Op->getNumOperands(); ++I)
      if (Operation *Def = Op->getOperand(I).getDefiningOp())
        addToWorklist(Def);
  }

  /// Queues all users of \p V (their input changed).
  void queueUsers(Value V) {
    for (Operation *User : V.getUsers())
      addToWorklist(User);
  }

private:
  /// Returns true if the op was rewritten or erased.
  bool processOp(Operation *Op) {
    // Trivial dead code elimination.
    if (Op->isPure() && Op->useEmpty() && !Op->isTerminator()) {
      queueOperandProducers(Op);
      Rewriter.eraseOp(Op);
      return true;
    }

    // Constant folding.
    Rewriter.setInsertionPoint(Op);
    if (Value Folded = tryFold(Op, Rewriter)) {
      if (Folded != Op->getResult(0)) {
        queueOperandProducers(Op);
        Rewriter.replaceOp(Op, Folded);
        return true;
      }
    }

    // Pattern application: name-specific first (sorted by benefit), then
    // generic.
    auto TryPatterns = [&](const std::vector<const RewritePattern *> &List) {
      for (const RewritePattern *ThePattern : List)
        if (succeeded(ThePattern->matchAndRewrite(Op, Rewriter)))
          return true;
      return false;
    };
    auto It = Index.ByName.find(Op->getName());
    if (It != Index.ByName.end() && TryPatterns(It->second))
      return true;
    return TryPatterns(Index.Generic);
  }

  Operation *Scope;
  PatternRewriter Rewriter;
  PatternIndex Index;
  std::deque<Operation *> Worklist;
  std::unordered_set<Operation *> InWorklist;
};

} // namespace ir
} // namespace spnc

//===----------------------------------------------------------------------===//
// PatternRewriter
//===----------------------------------------------------------------------===//

void PatternRewriter::replaceOp(Operation *Op,
                                std::span<const Value> NewValues) {
  assert(Op->getNumResults() == NewValues.size() &&
         "replacement value count mismatch");
  for (unsigned I = 0; I < Op->getNumResults(); ++I) {
    if (Driver)
      Driver->queueUsers(Op->getResult(I));
    Op->getResult(I).replaceAllUsesWith(NewValues[I]);
  }
  eraseOp(Op);
}

void PatternRewriter::eraseOp(Operation *Op) {
  assert(Op->useEmpty() && "erasing an op whose results are still used");
  if (Driver) {
    Driver->queueOperandProducers(Op);
    // Recursively drop nested ops from the worklist.
    Op->walk([&](Operation *Nested) { Driver->notifyErased(Nested); });
  }
  Op->erase();
}

void PatternRewriter::notifyChanged(Operation *Op) {
  if (!Driver)
    return;
  Driver->addToWorklist(Op);
  for (unsigned I = 0; I < Op->getNumResults(); ++I)
    Driver->queueUsers(Op->getResult(I));
}

void PatternRewriter::notifyCreated(Operation *Op) {
  if (Driver)
    Driver->addToWorklist(Op);
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

LogicalResult spnc::ir::applyPatternsGreedily(Operation *Scope,
                                              const PatternList &Patterns,
                                              bool *Changed) {
  GreedyDriver Driver(Scope, Patterns);
  return Driver.run(Changed);
}

PatternList spnc::ir::collectCanonicalizationPatterns(Context &Ctx) {
  PatternList Patterns;
  // The registry does not expose iteration over ops directly; dialects
  // register their pattern providers when loaded and we gather via the
  // per-op hooks recorded in OpInfo. See Context::forEachOpInfo.
  Ctx.forEachOpInfo([&](const OpInfo &Info) {
    if (Info.CanonicalizationPatterns)
      Info.CanonicalizationPatterns(Patterns, Ctx);
  });
  return Patterns;
}
