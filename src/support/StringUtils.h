//===- StringUtils.h - String formatting helpers ---------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style string formatting used for diagnostics and benchmark
/// reporting, avoiding `<iostream>` in library code.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_STRINGUTILS_H
#define SPNC_SUPPORT_STRINGUTILS_H

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace spnc {

/// Returns a std::string produced from a printf-style format.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
formatString(const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Format, Args);
  va_end(Args);
  std::string Result;
  if (Size > 0) {
    Result.resize(static_cast<size_t>(Size));
    std::vsnprintf(Result.data(), Result.size() + 1, Format, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Result;
}

/// Splits \p Input on \p Separator; empty pieces are kept.
inline std::vector<std::string> splitString(const std::string &Input,
                                            char Separator) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I <= Input.size(); ++I) {
    if (I == Input.size() || Input[I] == Separator) {
      Pieces.push_back(Input.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Pieces;
}

} // namespace spnc

#endif // SPNC_SUPPORT_STRINGUTILS_H
