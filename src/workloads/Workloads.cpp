//===- Workloads.cpp - Synthetic evaluation workloads ---------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace spnc;
using namespace spnc::spn;
using namespace spnc::workloads;

namespace {

/// Draws K positive weights summing to one.
static std::vector<double> randomWeights(Rng &R, size_t K) {
  std::vector<double> Weights(K);
  double Total = 0.0;
  for (double &W : Weights) {
    W = 0.05 + R.uniform();
    Total += W;
  }
  for (double &W : Weights)
    W /= Total;
  return Weights;
}

/// Per-feature specification shared between the speaker model generator
/// and the speech data generator.
struct FeatureSpec {
  bool Continuous = true;
  /// Discrete domain size (histogram/categorical leaves, data range).
  unsigned Domain = 4;
  /// Base location/scale of the continuous distribution.
  double Mean = 0.0;
  double Scale = 1.0;
};

static std::vector<FeatureSpec>
deriveFeatureSpecs(const SpeakerModelOptions &Options) {
  Rng R(Options.Seed * 0x9e3779b97f4a7c15ULL + 0x5eed);
  std::vector<FeatureSpec> Specs(Options.NumFeatures);
  for (FeatureSpec &Spec : Specs) {
    Spec.Continuous = R.uniform() < Options.ContinuousFeatureFraction;
    Spec.Domain = 2 + static_cast<unsigned>(R.uniformInt(7));
    Spec.Mean = R.uniform(-3.0, 3.0);
    Spec.Scale = R.uniform(0.5, 2.5);
  }
  return Specs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Speaker identification models
//===----------------------------------------------------------------------===//

namespace {

class SpeakerGenerator {
public:
  SpeakerGenerator(const SpeakerModelOptions &Options)
      : Options(Options), Specs(deriveFeatureSpecs(Options)),
        R(Options.Seed), TheModel(Options.NumFeatures, "speaker") {}

  Model take() {
    // Mixture components are appended until the target size is reached;
    // the root mixes them (LearnSPN-style structure over MFCC features).
    std::vector<Node *> Components;
    while (TheModel.getNumNodes() + 1 <
               Options.TargetOperations ||
           Components.size() < 2) {
      std::vector<unsigned> Scope(Options.NumFeatures);
      for (unsigned I = 0; I < Options.NumFeatures; ++I)
        Scope[I] = I;
      Components.push_back(buildProduct(Scope, 0));
    }
    TheModel.setRoot(
        TheModel.makeSum(Components, randomWeights(R, Components.size())));
    return std::move(TheModel);
  }

private:
  Node *buildLeaf(unsigned Feature) {
    const FeatureSpec &Spec = Specs[Feature];
    if (Spec.Continuous) {
      // Mixture of 2-3 Gaussians: this drives the Gaussian operation
      // share toward the published 49%.
      unsigned K = 2 + static_cast<unsigned>(R.uniformInt(2));
      std::vector<Node *> Parts;
      for (unsigned I = 0; I < K; ++I)
        Parts.push_back(TheModel.makeGaussian(
            Feature, Spec.Mean + R.uniform(-2.0, 2.0),
            Spec.Scale * R.uniform(0.5, 1.5)));
      if (Parts.size() == 1)
        return Parts[0];
      return TheModel.makeSum(Parts, randomWeights(R, Parts.size()));
    }
    // Discrete feature: histogram or categorical over the domain.
    std::vector<double> Probs = randomWeights(R, Spec.Domain);
    if (R.uniform() < 0.5)
      return TheModel.makeCategorical(Feature, std::move(Probs));
    std::vector<HistogramBucket> Buckets;
    for (unsigned I = 0; I < Spec.Domain; ++I)
      Buckets.push_back(HistogramBucket{static_cast<double>(I),
                                        static_cast<double>(I + 1),
                                        Probs[I]});
    return TheModel.makeHistogram(Feature, std::move(Buckets));
  }

  Node *buildProduct(std::vector<unsigned> Scope, unsigned Depth) {
    if (Scope.size() == 1)
      return buildLeaf(Scope[0]);
    // Shuffle and split the scope into 2-3 parts.
    for (size_t I = Scope.size(); I > 1; --I)
      std::swap(Scope[I - 1], Scope[R.uniformInt(I)]);
    size_t NumParts =
        std::min<size_t>(Scope.size(), 2 + R.uniformInt(2));
    std::vector<Node *> Parts;
    size_t Begin = 0;
    for (size_t P = 0; P < NumParts; ++P) {
      size_t End = P + 1 == NumParts
                       ? Scope.size()
                       : Begin + std::max<size_t>(
                                     1, (Scope.size() - Begin) /
                                            (NumParts - P));
      std::vector<unsigned> Part(Scope.begin() + Begin,
                                 Scope.begin() + End);
      Begin = End;
      // Occasionally insert a sum over two alternative factorizations
      // to obtain a DAG-like mixture structure.
      if (Part.size() > 1 && Depth < 4 && R.uniform() < 0.3) {
        std::vector<Node *> Alternatives{
            buildProduct(Part, Depth + 1),
            buildProduct(Part, Depth + 1)};
        Parts.push_back(
            TheModel.makeSum(Alternatives, randomWeights(R, 2)));
      } else {
        Parts.push_back(buildProduct(Part, Depth + 1));
      }
    }
    if (Parts.size() == 1)
      return Parts[0];
    return TheModel.makeProduct(Parts);
  }

  const SpeakerModelOptions &Options;
  std::vector<FeatureSpec> Specs;
  Rng R;
  Model TheModel;
};

} // namespace

Model spnc::workloads::generateSpeakerModel(
    const SpeakerModelOptions &Options) {
  return SpeakerGenerator(Options).take();
}

std::vector<double>
spnc::workloads::generateSpeechData(const SpeakerModelOptions &Options,
                                    size_t NumSamples, uint64_t Seed) {
  std::vector<FeatureSpec> Specs = deriveFeatureSpecs(Options);
  Rng R(Seed);
  std::vector<double> Data(NumSamples * Options.NumFeatures);
  for (size_t S = 0; S < NumSamples; ++S)
    for (unsigned F = 0; F < Options.NumFeatures; ++F) {
      const FeatureSpec &Spec = Specs[F];
      double Value;
      if (Spec.Continuous)
        Value = R.normal(Spec.Mean, Spec.Scale);
      else
        Value = static_cast<double>(R.uniformInt(Spec.Domain));
      Data[S * Options.NumFeatures + F] = Value;
    }
  return Data;
}

std::vector<double> spnc::workloads::generateNoisySpeechData(
    const SpeakerModelOptions &Options, size_t NumSamples, uint64_t Seed,
    double DropProbability) {
  std::vector<double> Data =
      generateSpeechData(Options, NumSamples, Seed);
  Rng R(Seed ^ 0x0a015eULL); // distinct stream for the drop mask
  for (double &Value : Data)
    if (R.uniform() < DropProbability)
      Value = std::numeric_limits<double>::quiet_NaN();
  return Data;
}

//===----------------------------------------------------------------------===//
// RAT-SPNs
//===----------------------------------------------------------------------===//

RatSpnOptions spnc::workloads::ratSpnPaperScale() {
  // Approximates the published per-class counts (paper §V-B1: ~165k
  // leaves, ~170k products, ~3k sums).
  RatSpnOptions Options;
  Options.NumFeatures = 784;
  Options.Depth = 5;
  Options.Replicas = 5;
  Options.SumsPerRegion = 8;
  Options.LeafDistributions = 40;
  return Options;
}

RatSpnOptions spnc::workloads::ratSpnSmallScale() {
  RatSpnOptions Options;
  Options.NumFeatures = 196; // 14x14 images
  Options.Depth = 4;
  Options.Replicas = 2;
  Options.SumsPerRegion = 4;
  Options.LeafDistributions = 12;
  return Options;
}

namespace {

/// Class prototypes exactly as generateImageData derives them (its Rng
/// draws them first).
static std::vector<double> derivePrototype(unsigned NumFeatures,
                                           unsigned ClassIndex,
                                           uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> Prototype(NumFeatures);
  for (unsigned Class = 0; Class <= ClassIndex; ++Class)
    for (double &P : Prototype)
      P = R.uniform();
  return Prototype;
}

class RatSpnGenerator {
public:
  RatSpnGenerator(const RatSpnOptions &Options, unsigned ClassIndex)
      : Options(Options), StructureRng(Options.Seed),
        ParamRng(Options.Seed * 0x2545f4914f6cdd1dULL + ClassIndex + 1),
        TheModel(Options.NumFeatures, "ratspn") {
    if (Options.PrototypeSeed != 0)
      Prototype = derivePrototype(Options.NumFeatures, ClassIndex,
                                  Options.PrototypeSeed);
  }

  Model take() {
    std::vector<Node *> ReplicaRoots;
    for (unsigned Rep = 0; Rep < Options.Replicas; ++Rep) {
      std::vector<unsigned> Scope(Options.NumFeatures);
      for (unsigned I = 0; I < Options.NumFeatures; ++I)
        Scope[I] = I;
      std::vector<Node *> Heads = buildRegion(Scope, 0);
      ReplicaRoots.insert(ReplicaRoots.end(), Heads.begin(),
                          Heads.end());
    }
    TheModel.setRoot(TheModel.makeSum(
        ReplicaRoots, randomWeights(ParamRng, ReplicaRoots.size())));
    return std::move(TheModel);
  }

private:
  /// Builds the region over \p Scope; returns its heads (sum nodes or
  /// leaf distributions).
  std::vector<Node *> buildRegion(std::vector<unsigned> Scope,
                                  unsigned Depth) {
    if (Depth >= Options.Depth || Scope.size() == 1)
      return buildLeafRegion(Scope);

    // Random balanced split (structure shared across classes).
    for (size_t I = Scope.size(); I > 1; --I)
      std::swap(Scope[I - 1], Scope[StructureRng.uniformInt(I)]);
    size_t Half = Scope.size() / 2;
    std::vector<unsigned> Left(Scope.begin(), Scope.begin() + Half);
    std::vector<unsigned> Right(Scope.begin() + Half, Scope.end());

    std::vector<Node *> LeftHeads = buildRegion(std::move(Left), Depth + 1);
    std::vector<Node *> RightHeads =
        buildRegion(std::move(Right), Depth + 1);

    // Cross products of the child region heads.
    std::vector<Node *> Products;
    Products.reserve(LeftHeads.size() * RightHeads.size());
    for (Node *L : LeftHeads)
      for (Node *Rh : RightHeads)
        Products.push_back(TheModel.makeProduct({L, Rh}));

    // S mixtures over the products (1 at the root region).
    unsigned NumSums = Depth == 0 ? 1 : Options.SumsPerRegion;
    std::vector<Node *> Sums;
    Sums.reserve(NumSums);
    for (unsigned S = 0; S < NumSums; ++S)
      Sums.push_back(TheModel.makeSum(
          Products, randomWeights(ParamRng, Products.size())));
    return Sums;
  }

  /// Gaussian leaf parameters: random for untrained models, or the
  /// maximum-likelihood fit to the class distribution (prototype mean,
  /// data noise scale) with a little mixture jitter when "trained".
  GaussianLeaf *makeLeaf(unsigned Feature) {
    if (Prototype.empty())
      return TheModel.makeGaussian(Feature, ParamRng.uniform(0.0, 1.0),
                                   ParamRng.uniform(0.05, 0.3));
    return TheModel.makeGaussian(
        Feature, Prototype[Feature] + ParamRng.uniform(-0.05, 0.05),
        ParamRng.uniform(0.12, 0.2));
  }

  std::vector<Node *> buildLeafRegion(const std::vector<unsigned> &Scope) {
    std::vector<Node *> Distributions;
    Distributions.reserve(Options.LeafDistributions);
    for (unsigned I = 0; I < Options.LeafDistributions; ++I) {
      if (Scope.size() == 1) {
        Distributions.push_back(makeLeaf(Scope[0]));
        continue;
      }
      std::vector<Node *> Factors;
      Factors.reserve(Scope.size());
      for (unsigned Feature : Scope)
        Factors.push_back(makeLeaf(Feature));
      Distributions.push_back(TheModel.makeProduct(std::move(Factors)));
    }
    return Distributions;
  }

  const RatSpnOptions &Options;
  Rng StructureRng;
  Rng ParamRng;
  Model TheModel;
  std::vector<double> Prototype;
};

} // namespace

Model spnc::workloads::generateRatSpn(const RatSpnOptions &Options,
                                      unsigned ClassIndex) {
  return RatSpnGenerator(Options, ClassIndex).take();
}

std::vector<double> spnc::workloads::generateImageData(
    unsigned NumFeatures, unsigned NumClasses, size_t NumSamples,
    uint64_t Seed, std::vector<unsigned> *Labels) {
  Rng R(Seed);
  // Class prototypes in pixel space.
  std::vector<std::vector<double>> Prototypes(NumClasses);
  for (auto &Proto : Prototypes) {
    Proto.resize(NumFeatures);
    for (double &P : Proto)
      P = R.uniform();
  }
  std::vector<double> Data(NumSamples * NumFeatures);
  if (Labels)
    Labels->resize(NumSamples);
  for (size_t S = 0; S < NumSamples; ++S) {
    auto Class = static_cast<unsigned>(R.uniformInt(NumClasses));
    if (Labels)
      (*Labels)[S] = Class;
    for (unsigned F = 0; F < NumFeatures; ++F) {
      double Value = Prototypes[Class][F] + R.normal(0.0, 0.15);
      Data[S * NumFeatures + F] = std::clamp(Value, 0.0, 1.0);
    }
  }
  return Data;
}
