# Empty dependencies file for bench_gpu_blocksize.
# This may be replaced when dependencies are built.
