# Empty compiler generated dependencies file for bench_fig10_partition_cpu.
# This may be replaced when dependencies are built.
