# Empty dependencies file for spnc_partition.
# This may be replaced when dependencies are built.
