//===- serving_test.cpp - Tests for the in-process serving layer ------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "serving/InferenceServer.h"
#include "serving/ServingReports.h"
#include "support/JSON.h"
#include "support/RawOStream.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace spnc;
using namespace spnc::runtime;
using namespace spnc::serving;

namespace {

class ServingTest : public ::testing::Test {
protected:
  static constexpr size_t kNumSamples = 64;

  void SetUp() override {
    workloads::SpeakerModelOptions Options;
    Options.TargetOperations = 300;
    Options.Seed = 91;
    Model = std::make_unique<spn::Model>(
        workloads::generateSpeakerModel(Options));
    NumFeatures = Model->getNumFeatures();
    Data = workloads::generateSpeechData(Options, kNumSamples, 7);
  }

  /// Reference probabilities via the same cached engine the server
  /// uses (the cache is shared, so the key collides by construction).
  std::vector<double> directResults(KernelCache &Cache,
                                    const spn::QueryConfig &Query,
                                    const CompilerOptions &Options) {
    Expected<CompiledKernel> Kernel =
        Cache.getOrCompile(*Model, Query, Options);
    EXPECT_TRUE(static_cast<bool>(Kernel));
    std::vector<double> Expected(kNumSamples);
    Kernel->execute(Data.data(), Expected.data(), kNumSamples);
    return Expected;
  }

  const double *sampleRow(size_t Index) const {
    return Data.data() + (Index % kNumSamples) * NumFeatures;
  }

  std::unique_ptr<spn::Model> Model;
  unsigned NumFeatures = 0;
  std::vector<double> Data;
  spn::QueryConfig Query;
  CompilerOptions Compile;
};

TEST_F(ServingTest, ConcurrentRequestsMatchDirectExecutionAndBatch) {
  KernelCache Cache;
  std::vector<double> Expected = directResults(Cache, Query, Compile);

  ServerConfig Config;
  Config.MaxBatchSamples = 64;
  Config.MaxQueueDelayUs = 10000; // generous co-batching window
  Config.NumWorkers = 2;
  InferenceServer Server(Config, &Cache);
  ASSERT_FALSE(Server.addModel("speaker", *Model, Query, Compile));
  EXPECT_TRUE(Server.hasModel("speaker"));
  EXPECT_EQ(Server.getNumFeatures("speaker"), NumFeatures);

  constexpr unsigned kClients = 8;
  constexpr unsigned kPerClient = 20;
  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < kClients; ++C)
    Clients.emplace_back([&, C] {
      for (unsigned R = 0; R < kPerClient; ++R) {
        size_t Index = (C * kPerClient + R) % kNumSamples;
        ResultFuture Future =
            Server.submit("speaker", sampleRow(Index), 1);
        InferenceResult Result = Future.take();
        if (Result.Status != RequestStatus::Ok ||
            Result.LogLikelihoods.size() != 1 ||
            Result.LogLikelihoods[0] != Expected[Index])
          ++Mismatches;
      }
    });
  for (std::thread &Client : Clients)
    Client.join();
  EXPECT_EQ(Mismatches.load(), 0u);

  ServerStats Stats = Server.getStats();
  EXPECT_EQ(Stats.CompletedRequests, uint64_t(kClients) * kPerClient);
  EXPECT_EQ(Stats.CompletedSamples, uint64_t(kClients) * kPerClient);
  EXPECT_EQ(Stats.RejectedRequests, 0u);
  EXPECT_EQ(Stats.TimedOutRequests, 0u);
  // The point of the layer: micro-batches actually form under
  // concurrent single-sample load.
  EXPECT_GT(Stats.meanBatchSize(), 1.0);
  EXPECT_LT(Stats.BatchesDispatched, uint64_t(kClients) * kPerClient);
  Server.shutdown();
}

TEST_F(ServingTest, RejectPolicyBoundsOutstandingSamples) {
  ServerConfig Config;
  Config.MaxBatchSamples = 256;
  Config.MaxQueueDelayUs = 50000; // keep admitted requests queued
  Config.MaxQueueDepth = 4;
  Config.Admission = ServerConfig::AdmissionPolicy::Reject;
  InferenceServer Server(Config);
  ASSERT_FALSE(Server.addModel("speaker", *Model, Query, Compile));

  constexpr unsigned kBurst = 20;
  std::vector<ResultFuture> Futures;
  for (unsigned I = 0; I < kBurst; ++I)
    Futures.push_back(Server.submit("speaker", sampleRow(I), 1));

  unsigned Ok = 0, Rejected = 0;
  for (ResultFuture &Future : Futures) {
    InferenceResult Result = Future.take();
    if (Result.Status == RequestStatus::Ok)
      ++Ok;
    else if (Result.Status == RequestStatus::Rejected) {
      ++Rejected;
      EXPECT_FALSE(Result.Message.empty());
    }
  }
  EXPECT_EQ(Ok, 4u);
  EXPECT_EQ(Rejected, kBurst - 4);

  ServerStats Stats = Server.getStats();
  EXPECT_EQ(Stats.RejectedRequests, uint64_t(kBurst - 4));
  EXPECT_LE(Stats.PeakQueueDepth, 4u);
  Server.shutdown();
}

TEST_F(ServingTest, BlockPolicyAppliesBackpressureWithoutLoss) {
  ServerConfig Config;
  Config.MaxBatchSamples = 256;
  Config.MaxQueueDelayUs = 20000;
  Config.MaxQueueDepth = 2;
  Config.Admission = ServerConfig::AdmissionPolicy::Block;
  InferenceServer Server(Config);
  ASSERT_FALSE(Server.addModel("speaker", *Model, Query, Compile));

  constexpr unsigned kBurst = 10;
  std::vector<ResultFuture> Futures;
  for (unsigned I = 0; I < kBurst; ++I)
    Futures.push_back(Server.submit("speaker", sampleRow(I), 1));
  for (ResultFuture &Future : Futures)
    EXPECT_EQ(Future.take().Status, RequestStatus::Ok);

  ServerStats Stats = Server.getStats();
  EXPECT_EQ(Stats.CompletedRequests, uint64_t(kBurst));
  EXPECT_EQ(Stats.RejectedRequests, 0u);
  // The submitting thread outpaces the 20ms batching window, so at
  // least one submit must have waited for space.
  EXPECT_GE(Stats.BlockedSubmits, 1u);
  EXPECT_LE(Stats.PeakQueueDepth, 2u);
  Server.shutdown();
}

TEST_F(ServingTest, ExpiredDeadlinesTimeOutInsteadOfExecuting) {
  ServerConfig Config;
  Config.MaxBatchSamples = 256;
  Config.MaxQueueDelayUs = 100000; // longer than every deadline below
  InferenceServer Server(Config);
  ASSERT_FALSE(Server.addModel("speaker", *Model, Query, Compile));

  std::vector<ResultFuture> Futures;
  for (unsigned I = 0; I < 3; ++I)
    Futures.push_back(
        Server.submit("speaker", sampleRow(I), 1, /*DeadlineUs=*/1000));
  for (ResultFuture &Future : Futures) {
    InferenceResult Result = Future.take();
    EXPECT_EQ(Result.Status, RequestStatus::TimedOut);
    EXPECT_TRUE(Result.LogLikelihoods.empty());
    EXPECT_FALSE(Result.Message.empty());
  }
  ServerStats Stats = Server.getStats();
  EXPECT_EQ(Stats.TimedOutRequests, 3u);
  EXPECT_EQ(Stats.CompletedRequests, 0u);
  Server.shutdown();
}

TEST_F(ServingTest, ShutdownDrainsEveryAcceptedRequest) {
  ServerConfig Config;
  Config.MaxBatchSamples = 8;
  // A window far beyond the test duration: only the shutdown drain can
  // dispatch these.
  Config.MaxQueueDelayUs = 60000000;
  InferenceServer Server(Config);
  ASSERT_FALSE(Server.addModel("speaker", *Model, Query, Compile));

  constexpr unsigned kQueued = 30;
  std::vector<ResultFuture> Futures;
  for (unsigned I = 0; I < kQueued; ++I)
    Futures.push_back(Server.submit("speaker", sampleRow(I), 1));
  Server.shutdown();

  for (ResultFuture &Future : Futures) {
    ASSERT_TRUE(Future.ready());
    EXPECT_EQ(Future.get().Status, RequestStatus::Ok);
  }
  ServerStats Stats = Server.getStats();
  EXPECT_EQ(Stats.CompletedRequests, uint64_t(kQueued));
  EXPECT_EQ(Stats.QueueDepth, 0u);

  // Post-shutdown submits resolve immediately with ShutDown.
  InferenceResult Late =
      Server.submit("speaker", sampleRow(0), 1).take();
  EXPECT_EQ(Late.Status, RequestStatus::ShutDown);
}

TEST_F(ServingTest, MultiModelMultiSampleScatterIsExact) {
  workloads::SpeakerModelOptions OtherOptions;
  OtherOptions.TargetOperations = 450;
  OtherOptions.Seed = 17;
  spn::Model Other = workloads::generateSpeakerModel(OtherOptions);
  std::vector<double> OtherData =
      workloads::generateSpeechData(OtherOptions, kNumSamples, 3);

  KernelCache Cache;
  std::vector<double> ExpectedA = directResults(Cache, Query, Compile);
  Expected<CompiledKernel> OtherKernel =
      Cache.getOrCompile(Other, Query, Compile);
  ASSERT_TRUE(static_cast<bool>(OtherKernel));
  std::vector<double> ExpectedB(kNumSamples);
  OtherKernel->execute(OtherData.data(), ExpectedB.data(), kNumSamples);

  ServerConfig Config;
  Config.MaxQueueDelayUs = 2000;
  InferenceServer Server(Config, &Cache);
  ASSERT_FALSE(Server.addModel("a", *Model, Query, Compile));
  ASSERT_FALSE(Server.addModel("b", Other, Query, Compile));
  // Registering the same name twice fails.
  EXPECT_TRUE(Server.addModel("a", Other, Query, Compile));

  std::vector<ResultFuture> FuturesA, FuturesB;
  constexpr size_t kChunk = 4;
  for (size_t I = 0; I + kChunk <= kNumSamples; I += kChunk) {
    FuturesA.push_back(Server.submit(
        "a", Data.data() + I * NumFeatures, kChunk));
    FuturesB.push_back(Server.submit(
        "b", OtherData.data() + I * Other.getNumFeatures(), kChunk));
  }
  for (size_t Request = 0; Request < FuturesA.size(); ++Request) {
    InferenceResult A = FuturesA[Request].take();
    InferenceResult B = FuturesB[Request].take();
    ASSERT_EQ(A.Status, RequestStatus::Ok);
    ASSERT_EQ(B.Status, RequestStatus::Ok);
    ASSERT_EQ(A.LogLikelihoods.size(), kChunk);
    ASSERT_EQ(B.LogLikelihoods.size(), kChunk);
    EXPECT_GE(A.BatchSamples, kChunk);
    for (size_t S = 0; S < kChunk; ++S) {
      EXPECT_EQ(A.LogLikelihoods[S], ExpectedA[Request * kChunk + S]);
      EXPECT_EQ(B.LogLikelihoods[S], ExpectedB[Request * kChunk + S]);
    }
  }
  Server.shutdown();
}

TEST_F(ServingTest, UnknownModelAndEmptyRequestsAreRejected) {
  InferenceServer Server;
  ASSERT_FALSE(Server.addModel("speaker", *Model, Query, Compile));
  InferenceResult Unknown =
      Server.submit("nope", sampleRow(0), 1).take();
  EXPECT_EQ(Unknown.Status, RequestStatus::Rejected);
  EXPECT_NE(Unknown.Message.find("nope"), std::string::npos);
  InferenceResult Empty =
      Server.submit("speaker", sampleRow(0), 0).take();
  EXPECT_EQ(Empty.Status, RequestStatus::Rejected);
  EXPECT_EQ(std::string("rejected"),
            requestStatusName(RequestStatus::Rejected));
}

/// Member names of \p Value in document order.
std::vector<std::string> memberKeys(const json::Value &Value) {
  std::vector<std::string> Keys;
  for (const auto &Member : Value.getMembers())
    Keys.push_back(Member.first);
  return Keys;
}

TEST_F(ServingTest, StatsReportHasGoldenKeyOrder) {
  ServerConfig Config;
  Config.MaxQueueDelayUs = 500;
  InferenceServer Server(Config);
  ASSERT_FALSE(Server.addModel("speaker", *Model, Query, Compile));
  for (unsigned I = 0; I < 10; ++I)
    Server.submit("speaker", sampleRow(I), 1).wait();
  ServerStats Stats = Server.getStats();
  Server.shutdown();

  std::string Text;
  {
    StringOStream OS(Text);
    writeServerStatsReport(Stats, OS);
  }
  Expected<json::Value> Doc = json::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Doc));
  const std::vector<std::string> Golden = {
      "submitted_requests", "submitted_samples", "completed_requests",
      "completed_samples", "rejected_requests", "blocked_submits",
      "timed_out_requests", "batches_dispatched", "cross_model_batches",
      "mean_batch_size",
      "queue_depth", "peak_queue_depth", "execution_ns", "elapsed_ns",
      "throughput_samples_per_s", "batch_size", "latency_ns"};
  EXPECT_EQ(memberKeys(*Doc), Golden);
  const std::vector<std::string> HistogramGolden = {
      "count", "min", "max", "mean", "p50", "p95", "p99"};
  EXPECT_EQ(memberKeys(*Doc->find("batch_size")), HistogramGolden);
  EXPECT_EQ(memberKeys(*Doc->find("latency_ns")), HistogramGolden);
  EXPECT_EQ(Doc->find("completed_requests")->getNumber(), 10.0);
  EXPECT_EQ(Doc->find("latency_ns")->find("count")->getNumber(), 10.0);
}

TEST_F(ServingTest, PlacementIsDeterministicAndInRange) {
  for (uint64_t Hash : {0ull, 1ull, 0x9e3779b97f4a7c15ull, ~0ull}) {
    EXPECT_EQ(InferenceServer::placeOnShard(Hash, 1), 0u);
    for (size_t NumShards : {2, 4, 8}) {
      size_t First = InferenceServer::placeOnShard(Hash, NumShards);
      EXPECT_LT(First, NumShards);
      // Pure function of (hash, shard count).
      EXPECT_EQ(InferenceServer::placeOnShard(Hash, NumShards), First);
    }
  }
}

TEST_F(ServingTest, PriorityNamesRoundTrip) {
  EXPECT_STREQ(priorityName(Priority::Interactive), "interactive");
  EXPECT_STREQ(priorityName(Priority::Bulk), "bulk");
  Priority Parsed = Priority::Bulk;
  EXPECT_TRUE(parsePriority("interactive", Parsed));
  EXPECT_EQ(Parsed, Priority::Interactive);
  EXPECT_TRUE(parsePriority("bulk", Parsed));
  EXPECT_EQ(Parsed, Priority::Bulk);
  EXPECT_FALSE(parsePriority("urgent", Parsed));
  EXPECT_EQ(Parsed, Priority::Bulk); // untouched on failure
}

TEST_F(ServingTest, ShardedServerIsExactAndAggregatesAcrossShards) {
  // Several distinct models spread over 4 shards; results must match
  // direct execution regardless of where placement put each model, and
  // the aggregate stats must equal the sum of the per-shard snapshots.
  constexpr size_t kModels = 6;
  std::vector<spn::Model> Models;
  std::vector<std::vector<double>> ModelData;
  std::vector<std::vector<double>> References;
  KernelCache Cache;
  for (size_t M = 0; M < kModels; ++M) {
    workloads::SpeakerModelOptions Options;
    Options.TargetOperations = 250 + 40 * M;
    Options.Seed = 100 + M;
    Models.push_back(workloads::generateSpeakerModel(Options));
    ModelData.push_back(
        workloads::generateSpeechData(Options, kNumSamples, M));
    Expected<CompiledKernel> Kernel =
        Cache.getOrCompile(Models.back(), Query, Compile);
    ASSERT_TRUE(static_cast<bool>(Kernel));
    std::vector<double> Reference(kNumSamples);
    Kernel->execute(ModelData.back().data(), Reference.data(),
                    kNumSamples);
    References.push_back(std::move(Reference));
  }

  ServerConfig Config;
  Config.NumShards = 4;
  Config.MaxQueueDelayUs = 500;
  InferenceServer Server(Config, &Cache);
  ASSERT_EQ(Server.getNumShards(), 4u);
  for (size_t M = 0; M < kModels; ++M)
    ASSERT_FALSE(Server.addModel("m" + std::to_string(M), Models[M],
                                 Query, Compile));

  // Placement is the documented consistent hash, observable per model.
  for (size_t M = 0; M < kModels; ++M) {
    std::optional<size_t> Placed =
        Server.getModelShard("m" + std::to_string(M));
    ASSERT_TRUE(Placed.has_value());
    EXPECT_EQ(*Placed,
              InferenceServer::placeOnShard(
                  KernelCache::hashModel(Models[M]), 4));
  }
  EXPECT_FALSE(Server.getModelShard("nope").has_value());

  constexpr size_t kRequests = 24;
  std::vector<std::vector<ResultFuture>> Futures(kModels);
  for (size_t R = 0; R < kRequests; ++R)
    for (size_t M = 0; M < kModels; ++M) {
      unsigned Features = Models[M].getNumFeatures();
      Futures[M].push_back(Server.submit(
          "m" + std::to_string(M),
          ModelData[M].data() + (R % kNumSamples) * Features, 1));
    }
  for (size_t M = 0; M < kModels; ++M)
    for (size_t R = 0; R < kRequests; ++R) {
      InferenceResult Result = Futures[M][R].take();
      ASSERT_EQ(Result.Status, RequestStatus::Ok);
      ASSERT_EQ(Result.LogLikelihoods.size(), 1u);
      EXPECT_EQ(Result.LogLikelihoods[0],
                References[M][R % kNumSamples]);
    }

  ServerStats Aggregate = Server.getStats();
  std::vector<ServerStats> PerShard = Server.getAllShardStats();
  ASSERT_EQ(PerShard.size(), 4u);
  uint64_t Submitted = 0, Completed = 0, Batches = 0, LatencyCount = 0;
  for (const ServerStats &S : PerShard) {
    Submitted += S.SubmittedRequests;
    Completed += S.CompletedRequests;
    Batches += S.BatchesDispatched;
    LatencyCount += S.LatencyNs.getCount();
  }
  EXPECT_EQ(Aggregate.SubmittedRequests, Submitted);
  EXPECT_EQ(Aggregate.SubmittedRequests, kModels * kRequests);
  EXPECT_EQ(Aggregate.CompletedRequests, Completed);
  EXPECT_EQ(Aggregate.BatchesDispatched, Batches);
  EXPECT_EQ(Aggregate.LatencyNs.getCount(), LatencyCount);
  // The six models cannot all share one shard's queues: at least two
  // shards saw traffic (placement spreads 6 models over 4 shards).
  unsigned ActiveShards = 0;
  for (const ServerStats &S : PerShard)
    ActiveShards += S.SubmittedRequests > 0;
  EXPECT_GE(ActiveShards, 2u);
  Server.shutdown();
}

TEST_F(ServingTest, InteractiveOvertakesBulkBacklogWithoutStarvingIt) {
  // One shard, one worker, one-sample batches: the WFQ decision is made
  // per dispatched request. A bulk backlog goes in first; interactive
  // requests arriving behind it must overtake most of it (4:1 credits),
  // while every bulk request still completes.
  ServerConfig Config;
  Config.NumShards = 1;
  Config.NumWorkers = 1;
  Config.MaxBatchSamples = 1;
  Config.MaxQueueDelayUs = 0;
  Config.InteractiveWeight = 4;
  Config.BulkWeight = 1;
  InferenceServer Server(Config);

  // The backlog must comfortably outlast the submission loop: the
  // worker drains it concurrently, and if too few bulk requests remain
  // by the time the interactive ones arrive, the mean-latency gap the
  // assertion below relies on collapses into scheduling noise. The
  // fixture model evaluates in well under a microsecond — on par with
  // the cost of submitting — so this test uses a much heavier model to
  // keep dispatches slower than submissions.
  workloads::SpeakerModelOptions HeavyOptions;
  HeavyOptions.TargetOperations = 60000;
  HeavyOptions.Seed = 91;
  spn::Model HeavyModel = workloads::generateSpeakerModel(HeavyOptions);
  std::vector<double> HeavyData =
      workloads::generateSpeechData(HeavyOptions, kNumSamples, 7);
  const size_t HeavyFeatures = HeavyModel.getNumFeatures();
  ASSERT_FALSE(Server.addModel("speaker", HeavyModel, Query, Compile));

  constexpr unsigned kBulk = 200;
  constexpr unsigned kInteractive = 10;
  std::vector<ResultFuture> BulkFutures, InteractiveFutures;
  for (unsigned I = 0; I < kBulk; ++I)
    BulkFutures.push_back(Server.submit(
        "speaker", HeavyData.data() + (I % kNumSamples) * HeavyFeatures,
        1, /*DeadlineUs=*/0, Priority::Bulk));
  for (unsigned I = 0; I < kInteractive; ++I)
    InteractiveFutures.push_back(Server.submit(
        "speaker", HeavyData.data() + (I % kNumSamples) * HeavyFeatures,
        1, /*DeadlineUs=*/0, Priority::Interactive));

  double InteractiveMeanNs = 0, BulkMeanNs = 0;
  for (ResultFuture &Future : InteractiveFutures) {
    InferenceResult Result = Future.take();
    ASSERT_EQ(Result.Status, RequestStatus::Ok);
    InteractiveMeanNs += static_cast<double>(Result.LatencyNs);
  }
  InteractiveMeanNs /= kInteractive;
  for (ResultFuture &Future : BulkFutures) {
    InferenceResult Result = Future.take();
    ASSERT_EQ(Result.Status, RequestStatus::Ok); // no starvation
    BulkMeanNs += static_cast<double>(Result.LatencyNs);
  }
  BulkMeanNs /= kBulk;
  // Submitted after the whole bulk backlog, yet faster on average:
  // only priority scheduling can produce that ordering.
  EXPECT_LT(InteractiveMeanNs, BulkMeanNs);

  ServerStats Stats = Server.getStats();
  EXPECT_EQ(Stats.LatencyNsByPriority[static_cast<size_t>(
                                          Priority::Interactive)]
                .getCount(),
            kInteractive);
  EXPECT_EQ(
      Stats.LatencyNsByPriority[static_cast<size_t>(Priority::Bulk)]
          .getCount(),
      kBulk);
  EXPECT_EQ(Stats.LatencyNs.getCount(),
            uint64_t(kBulk) + kInteractive);
  Server.shutdown();
}

TEST_F(ServingTest, ShardedStatsReportWrapsGoldenSchema) {
  ServerConfig Config;
  Config.NumShards = 2;
  Config.MaxQueueDelayUs = 500;
  InferenceServer Server(Config);
  ASSERT_FALSE(Server.addModel("speaker", *Model, Query, Compile));
  for (unsigned I = 0; I < 6; ++I)
    Server
        .submit("speaker", sampleRow(I), 1, /*DeadlineUs=*/0,
                I % 2 ? Priority::Bulk : Priority::Interactive)
        .wait();
  ServerStats Aggregate = Server.getStats();
  std::vector<ServerStats> PerShard = Server.getAllShardStats();
  Server.shutdown();

  std::string Text;
  {
    StringOStream OS(Text);
    writeShardedStatsReport(Aggregate, PerShard, OS);
  }
  Expected<json::Value> Doc = json::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Doc));
  const std::vector<std::string> TopGolden = {
      "num_shards", "aggregate", "latency_ns_by_priority", "shards"};
  EXPECT_EQ(memberKeys(*Doc), TopGolden);
  EXPECT_EQ(Doc->find("num_shards")->getNumber(), 2.0);

  // The nested aggregate and every shard object carry exactly the flat
  // report's golden schema — consumers of the old report keep working
  // on doc["aggregate"].
  const std::vector<std::string> StatsGolden = {
      "submitted_requests", "submitted_samples", "completed_requests",
      "completed_samples", "rejected_requests", "blocked_submits",
      "timed_out_requests", "batches_dispatched", "cross_model_batches",
      "mean_batch_size",
      "queue_depth", "peak_queue_depth", "execution_ns", "elapsed_ns",
      "throughput_samples_per_s", "batch_size", "latency_ns"};
  EXPECT_EQ(memberKeys(*Doc->find("aggregate")), StatsGolden);
  const json::Value *Shards = Doc->find("shards");
  ASSERT_NE(Shards, nullptr);
  ASSERT_EQ(Shards->getArray().size(), 2u);
  for (const json::Value &ShardDoc : Shards->getArray())
    EXPECT_EQ(memberKeys(ShardDoc), StatsGolden);
  EXPECT_EQ(memberKeys(*Doc->find("latency_ns_by_priority")),
            (std::vector<std::string>{"interactive", "bulk"}));
  EXPECT_EQ(Doc->find("latency_ns_by_priority")
                ->find("interactive")
                ->find("count")
                ->getNumber(),
            3.0);
  EXPECT_EQ(Doc->find("aggregate")->find("completed_requests")
                ->getNumber(),
            6.0);
}

//===----------------------------------------------------------------------===//
// Merged-model serving (docs/merging.md)
//===----------------------------------------------------------------------===//

TEST_F(ServingTest, MergedModelsShareOneKernelAndBatchAcrossModels) {
  // Ten same-structure, different-weight RAT-SPN class models — the
  // multi-tenant scenario merging exists for.
  constexpr unsigned kTenants = 10;
  workloads::RatSpnOptions Rat;
  Rat.NumFeatures = 16;
  Rat.Depth = 2;
  Rat.Replicas = 2;
  Rat.SumsPerRegion = 3;
  Rat.LeafDistributions = 4;
  Rat.Seed = 23;
  std::vector<spn::Model> Tenants;
  for (unsigned Class = 0; Class < kTenants; ++Class)
    Tenants.push_back(workloads::generateRatSpn(Rat, Class));
  std::vector<double> Inputs = workloads::generateImageData(
      Rat.NumFeatures, kTenants, kNumSamples, 11, nullptr);

  // Unmerged reference: each tenant's own kernel.
  std::vector<std::vector<double>> Reference(kTenants);
  {
    KernelCache Plain;
    for (unsigned T = 0; T < kTenants; ++T) {
      Expected<CompiledKernel> Kernel =
          Plain.getOrCompile(Tenants[T], Query, Compile);
      ASSERT_TRUE(static_cast<bool>(Kernel));
      Reference[T].resize(kNumSamples);
      Kernel->execute(Inputs.data(), Reference[T].data(), kNumSamples);
    }
  }

  KernelCache Cache;
  ServerConfig Config;
  Config.MergeModels = true;
  Config.NumShards = 2; // group members must still land on ONE shard
  Config.MaxBatchSamples = 64;
  Config.MaxQueueDelayUs = 10000; // wide window so tenants co-batch
  Config.NumWorkers = 2;
  InferenceServer Server(Config, &Cache);
  for (unsigned T = 0; T < kTenants; ++T)
    ASSERT_FALSE(Server.addModel("tenant" + std::to_string(T),
                                 Tenants[T], Query, Compile))
        << "tenant " << T;

  // One compile for the whole fleet; every tenant got its own weight
  // table.
  EXPECT_EQ(Cache.getStats().Misses, 1u);
  EXPECT_EQ(Cache.size(), 1u);
  std::vector<bool> SeenTable(kTenants, false);
  for (unsigned T = 0; T < kTenants; ++T) {
    std::optional<int32_t> Table =
        Server.getModelTableIndex("tenant" + std::to_string(T));
    ASSERT_TRUE(Table.has_value()) << "tenant " << T;
    ASSERT_GE(*Table, 0);
    ASSERT_LT(static_cast<unsigned>(*Table), kTenants);
    EXPECT_FALSE(SeenTable[*Table]) << "duplicate table " << *Table;
    SeenTable[*Table] = true;
  }

  // Mixed traffic: every client interleaves tenants, so batches carry
  // rows for several models.
  constexpr unsigned kClients = 6;
  constexpr unsigned kPerClient = 30;
  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < kClients; ++C)
    Clients.emplace_back([&, C] {
      for (unsigned R = 0; R < kPerClient; ++R) {
        unsigned T = (C + R) % kTenants;
        size_t Index = (C * kPerClient + R) % kNumSamples;
        ResultFuture Future =
            Server.submit("tenant" + std::to_string(T),
                          Inputs.data() + Index * Rat.NumFeatures, 1);
        InferenceResult Result = Future.take();
        if (Result.Status != RequestStatus::Ok ||
            Result.LogLikelihoods.size() != 1 ||
            std::abs(Result.LogLikelihoods[0] -
                     Reference[T][Index]) > 1e-9)
          ++Mismatches;
      }
    });
  for (std::thread &Client : Clients)
    Client.join();
  EXPECT_EQ(Mismatches.load(), 0u);

  ServerStats Stats = Server.getStats();
  EXPECT_EQ(Stats.CompletedRequests, uint64_t(kClients) * kPerClient);
  EXPECT_EQ(Stats.RejectedRequests, 0u);
  EXPECT_EQ(Stats.TimedOutRequests, 0u);
  // The headline behavior: at least one dispatched batch carried rows
  // for two or more tenants.
  EXPECT_GE(Stats.CrossModelBatches, 1u);
  EXPECT_GT(Stats.meanBatchSize(), 1.0);
  Server.shutdown();
}

TEST_F(ServingTest, MergeModelsFallsBackForUnsupportedQueries) {
  // MPE cannot run parameterized: the server must silently fall back
  // to per-model compilation, not fail registration.
  KernelCache Cache;
  ServerConfig Config;
  Config.MergeModels = true;
  Config.MaxQueueDelayUs = 500;
  InferenceServer Server(Config, &Cache);
  spn::QueryConfig Mpe;
  Mpe.Kind = spn::QueryKind::Mpe;
  ASSERT_FALSE(Server.addModel("speaker-mpe", *Model, Mpe, Compile));
  EXPECT_TRUE(Server.hasModel("speaker-mpe"));
  // Unmerged registrations expose no weight-table index.
  EXPECT_FALSE(Server.getModelTableIndex("speaker-mpe").has_value());

  std::vector<double> Evidence(NumFeatures,
                               std::numeric_limits<double>::quiet_NaN());
  ResultFuture Future = Server.submit("speaker-mpe", Evidence.data(), 1);
  InferenceResult Result = Future.take();
  EXPECT_EQ(Result.Status, RequestStatus::Ok);
  Server.shutdown();
}

} // namespace
