//===- ExecutionEngine.h - Unified kernel execution interface -----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one interface every way of running an SPN inference implements:
/// the compiled CPU executors (vm::CpuExecutor), the simulated GPU device
/// (gpusim::GpuExecutor) and the baseline adapters
/// (baselines::InterpreterEngine / baselines::TfGraphEngine). Target
/// selection happens exactly once — when the concrete engine is
/// constructed — and execution statistics are returned per call, so one
/// engine instance can safely serve concurrent callers.
///
/// This header is layer-neutral by design: it is header-only (no link
/// dependency) and depends only on the bytecode types and the plain GPU
/// stats struct, so layers both below the runtime driver (vm, gpusim) and
/// above it (baselines) can implement the interface.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_RUNTIME_EXECUTIONENGINE_H
#define SPNC_RUNTIME_EXECUTIONENGINE_H

#include "gpusim/GpuStats.h"
#include "vm/Bytecode.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace spnc {
namespace runtime {

/// Compilation / execution target. `Auto` defers the decision: compiling
/// with Auto selects the CPU, loading a saved kernel with Auto selects
/// the engine the kernel was lowered for (see loadCompiledKernel).
enum class Target { Auto, CPU, GPU };

/// Returns a human-readable target name ("cpu", "gpu", "auto").
inline const char *targetName(Target TheTarget) {
  switch (TheTarget) {
  case Target::Auto:
    return "auto";
  case Target::CPU:
    return "cpu";
  case Target::GPU:
    return "gpu";
  }
  return "<invalid>";
}

/// Per-call execution statistics. Filled by ExecutionEngine::execute when
/// the caller passes a non-null pointer; engines never retain mutable
/// per-call state, which keeps execute() safe to call from many threads.
struct ExecutionStats {
  /// Measured host wall clock of the call.
  uint64_t WallNs = 0;
  /// Number of samples processed by the call.
  size_t NumSamples = 0;
  /// True when `Gpu` carries a simulated device-time breakdown (only the
  /// GPU engine sets this).
  bool HasGpuStats = false;
  /// Simulated device-time breakdown of the call (paper Fig. 9).
  gpusim::GpuExecutionStats Gpu;
};

/// Static per-sample work accounting, available for *every* engine —
/// including the baseline adapters, which have no compiled program.
/// Benches use this instead of special-casing `getProgram()`-less
/// engines when normalizing by work performed.
struct EngineAccounting {
  /// Work units evaluated per sample: bytecode instructions for
  /// compiled programs, SPN node evaluations for the baseline engines.
  size_t NumInstructions = 0;
  /// Task count of the compiled program, or 1 for the single-pass
  /// baseline engines.
  size_t NumTasks = 0;
  /// True when the counts come from a compiled vm::KernelProgram;
  /// false when they are model-derived estimates (baselines).
  bool Compiled = false;
};

/// Abstract execution engine: runs inference over a batch of samples.
/// Implementations must be immutable after construction so that
/// `execute` can be invoked concurrently.
class ExecutionEngine {
public:
  virtual ~ExecutionEngine() = default;

  /// Runs inference on \p NumSamples samples (row-major
  /// [sample][feature] doubles). \p Output receives one (log-)probability
  /// per sample. Fills \p Stats with per-call statistics when provided.
  /// Thread-safe: concurrent calls on one engine are allowed. Never
  /// fails; input shape correctness is the caller's contract.
  virtual void execute(const double *Input, double *Output,
                       size_t NumSamples,
                       ExecutionStats *Stats = nullptr) const = 0;

  /// Runs MPE (most probable explanation) completion on \p NumSamples
  /// evidence rows (row-major [sample][feature] doubles, NaN =
  /// unobserved). \p Assignments receives the completed rows in the same
  /// layout; \p LogProbs (optional) one log-probability of the completed
  /// assignment per sample. Returns false when this engine does not
  /// serve MPE (it was not compiled for QueryKind::Mpe, or the engine
  /// kind has no traceback support); no output is written then.
  /// Thread-safe like execute().
  virtual bool executeMpe(const double *Evidence, double *Assignments,
                          double *LogProbs, size_t NumSamples,
                          ExecutionStats *Stats = nullptr) const {
    (void)Evidence;
    (void)Assignments;
    (void)LogProbs;
    (void)NumSamples;
    (void)Stats;
    return false;
  }

  /// Draws \p NumSamples ancestral samples conditioned on the evidence
  /// rows (NaN = unobserved/to-be-sampled; pass all-NaN rows for
  /// unconditional sampling). \p Samples receives the completed rows.
  /// Sample I depends only on \p Seed and I (docs/queries.md), so a
  /// fixed seed is reproducible per engine regardless of batching.
  /// Returns false when this engine does not serve sampling. Thread-safe
  /// like execute().
  virtual bool executeSample(const double *Evidence, double *Samples,
                             size_t NumSamples, uint64_t Seed,
                             ExecutionStats *Stats = nullptr) const {
    (void)Evidence;
    (void)Samples;
    (void)NumSamples;
    (void)Seed;
    (void)Stats;
    return false;
  }

  /// Weight-table support (merged-model serving, docs/merging.md): true
  /// when this engine runs a parameterized program and can rebind its
  /// tunable slots per model via addParamTable / executeIndexed.
  virtual bool supportsParamTables() const { return false; }

  /// Registers a per-model weight table: \p Params is the raw canonical
  /// parameter vector (merge::extractParams order, length must match the
  /// program's NumParams). Returns the table index for executeIndexed,
  /// or -1 when this engine has no table support or the length is wrong.
  /// Idempotent: registering identical content returns the existing
  /// index. The one sanctioned mutation after construction — safe to
  /// call concurrently with execute()/executeIndexed().
  virtual int32_t addParamTable(const double *Params, size_t NumParams) {
    (void)Params;
    (void)NumParams;
    return -1;
  }

  /// Cross-model batch execution: like execute(), but row I is evaluated
  /// under the weight table \p TableIndices[I] (indices from
  /// addParamTable). Rows should arrive grouped by table index — the
  /// engine splits the batch into maximal equal-index runs. Returns
  /// false (writing nothing) when tables are unsupported or an index is
  /// unknown. Thread-safe like execute().
  virtual bool executeIndexed(const double *Input,
                              const uint32_t *TableIndices, double *Output,
                              size_t NumSamples,
                              ExecutionStats *Stats = nullptr) const {
    (void)Input;
    (void)TableIndices;
    (void)Output;
    (void)NumSamples;
    (void)Stats;
    return false;
  }

  /// The compiled program backing this engine, or null for engines that
  /// evaluate a model directly (the baseline adapters). The returned
  /// pointer is owned by the engine and valid for its lifetime.
  /// Thread-safe.
  virtual const vm::KernelProgram *getProgram() const { return nullptr; }

  /// Static work accounting for this engine. The default derives the
  /// counts from `getProgram()`; engines without a compiled program
  /// (the baseline adapters) override this with model-derived counts,
  /// so callers never need to special-case them. Thread-safe.
  virtual EngineAccounting getAccounting() const {
    EngineAccounting Accounting;
    if (const vm::KernelProgram *Program = getProgram()) {
      Accounting.Compiled = true;
      Accounting.NumTasks = Program->Tasks.size();
      for (const vm::TaskProgram &Task : Program->Tasks)
        Accounting.NumInstructions += Task.Code.size();
    }
    return Accounting;
  }

  /// The target this engine executes on. Thread-safe; constant for the
  /// engine's lifetime.
  virtual Target getTarget() const = 0;

  /// One-line human-readable description (engine kind + configuration).
  /// Thread-safe.
  virtual std::string describe() const = 0;
};

} // namespace runtime
} // namespace spnc

#endif // SPNC_RUNTIME_EXECUTIONENGINE_H
