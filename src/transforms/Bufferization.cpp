//===- Bufferization.cpp - Tensor-to-memref conversion -----------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites LoSPN kernels from tensor form to memref form (paper §IV-A5):
/// kernel and task signatures switch to buffers, tensor-typed task results
/// become output-buffer arguments, batch_extract/batch_collect become
/// batch_read/batch_write, intermediate buffers are allocated and
/// deallocated explicitly. With copy avoidance enabled, a task result that
/// the kernel returns is written directly into the kernel output buffer;
/// otherwise an intermediate buffer plus an explicit lo_spn.copy is used.
///
//===----------------------------------------------------------------------===//

#include "dialects/lospn/LoSPNOps.h"
#include "ir/Cloning.h"
#include "transforms/Passes.h"

#include <unordered_map>

using namespace spnc;
using namespace spnc::ir;
using namespace spnc::lospn;
using namespace spnc::transforms;

namespace {

static MemRefType toMemRef(Type TensorTy) {
  TensorType T = TensorTy.cast<TensorType>();
  return MemRefType::get(T.getContext(), T.getShape(),
                         T.getElementType());
}

class BufferizationPass : public Pass {
public:
  explicit BufferizationPass(BufferizationOptions Options)
      : Options(Options) {}

  const char *getName() const override { return "bufferize"; }

  LogicalResult run(Operation *Module, Context &Ctx) override {
    std::vector<Operation *> Kernels;
    for (Operation *Op : cast_op<ModuleOp>(Module).getBody())
      if (isa_op<KernelOp>(Op) && !KernelOp(Op).isBufferized())
        Kernels.push_back(Op);
    for (Operation *Kernel : Kernels)
      if (failed(bufferizeKernel(KernelOp(Kernel), Ctx)))
        return failure();
    return success();
  }

private:
  LogicalResult bufferizeKernel(KernelOp Kernel, Context &Ctx) {
    Block &OldBody = Kernel.getBody();
    Operation *Return = OldBody.getTerminator();
    assert(Return && isa_op<ReturnOp>(Return) && "kernel must return");

    OpBuilder Builder(Ctx);
    Builder.setInsertionPoint(Kernel.getOperation());
    auto NewKernel = Builder.create<KernelOp>(Kernel.getKernelName(),
                                              Kernel.getNumInputs());
    Block &NewBody = NewKernel->getRegion(0).emplaceBlock();

    // Kernel inputs become input memrefs.
    std::unordered_map<ValueImpl *, Value> BufferOf;
    for (unsigned I = 0; I < OldBody.getNumArguments(); ++I) {
      Value OldArg = OldBody.getArgument(I);
      BufferOf[OldArg.getImpl()] =
          NewBody.addArgument(toMemRef(OldArg.getType()));
    }
    // Returned tensors become output memrefs.
    std::unordered_map<ValueImpl *, Value> OutputBufferOf;
    for (unsigned I = 0; I < Return->getNumOperands(); ++I) {
      Value Returned = Return->getOperand(I);
      OutputBufferOf[Returned.getImpl()] =
          NewBody.addArgument(toMemRef(Returned.getType()));
    }

    Builder.setInsertionPointToEnd(&NewBody);

    // Last task consuming each intermediate tensor, for dealloc
    // placement.
    std::unordered_map<ValueImpl *, Operation *> LastUser;
    for (Operation *Op : OldBody)
      for (unsigned I = 0; I < Op->getNumOperands(); ++I)
        LastUser[Op->getOperand(I).getImpl()] = Op;

    // Deallocs to emit after a given original task is processed.
    std::unordered_map<Operation *, std::vector<Value>> PendingDeallocs;

    for (Operation *Op : OldBody) {
      if (isa_op<ReturnOp>(Op))
        continue;
      TaskOp Task = dyn_cast_op<TaskOp>(Op);
      if (!Task) {
        Kernel.getContext().emitError(
            "unexpected op in kernel body during bufferization: " +
            Op->getName());
        return failure();
      }

      // Map operand tensors to buffers.
      std::vector<Value> NewOperands;
      for (unsigned I = 0; I < Op->getNumOperands(); ++I)
        NewOperands.push_back(
            BufferOf.at(Op->getOperand(I).getImpl()));
      unsigned NumInputs = static_cast<unsigned>(NewOperands.size());

      // Allocate / route result buffers.
      std::vector<Value> ResultBuffers;
      for (unsigned I = 0; I < Op->getNumResults(); ++I) {
        Value Result = Op->getResult(I);
        auto OutputIt = OutputBufferOf.find(Result.getImpl());
        Value Buffer;
        if (OutputIt != OutputBufferOf.end() && Options.AvoidCopies) {
          // Copy avoidance: write straight into the kernel output.
          Buffer = OutputIt->second;
        } else {
          auto Alloc = Builder.create<AllocOp>(
              Type(toMemRef(Result.getType())));
          Buffer = Alloc->getResult(0);
          if (Operation *Last = LastUser.count(Result.getImpl())
                                    ? LastUser[Result.getImpl()]
                                    : nullptr;
              Last && !isa_op<ReturnOp>(Last)) {
            PendingDeallocs[Last].push_back(Buffer);
          }
          if (OutputIt != OutputBufferOf.end()) {
            // Ablation mode: materialize the copy the optimization would
            // have avoided.
            PendingCopies.emplace_back(Buffer, OutputIt->second);
          }
        }
        BufferOf[Result.getImpl()] = Buffer;
        ResultBuffers.push_back(Buffer);
      }
      NewOperands.insert(NewOperands.end(), ResultBuffers.begin(),
                         ResultBuffers.end());

      // Create the memref-form task.
      auto NewTask = Builder.create<TaskOp>(
          std::span<const Value>(NewOperands), std::span<const Type>{},
          Task.getBatchSize(), NumInputs);
      Block &NewTaskBlock = NewTask->getRegion(0).emplaceBlock();
      Value BatchIndex =
          NewTaskBlock.addArgument(IndexType::get(Ctx));
      for (Value Operand : NewOperands)
        NewTaskBlock.addArgument(Operand.getType());

      // Rebuild the task body: extract -> read, collect -> write.
      Block &OldTaskBlock = Task.getBody();
      ValueMapping Mapping;
      Mapping[OldTaskBlock.getArgument(0).getImpl()] = BatchIndex;
      for (unsigned I = 1; I < OldTaskBlock.getNumArguments(); ++I)
        Mapping[OldTaskBlock.getArgument(I).getImpl()] =
            NewTaskBlock.getArgument(I);

      OpBuilder TaskBuilder = OpBuilder::atBlockEnd(Ctx, &NewTaskBlock);
      for (Operation *Nested : OldTaskBlock) {
        if (BatchExtractOp Extract = dyn_cast_op<BatchExtractOp>(Nested)) {
          Value Container =
              Mapping.at(Nested->getOperand(0).getImpl());
          Value Index = Mapping.at(Nested->getOperand(1).getImpl());
          auto Read = TaskBuilder.create<BatchReadOp>(
              Container, Index, Extract.getStaticIndex(),
              Extract.getTransposed());
          Mapping[Nested->getResult(0).getImpl()] = Read->getResult(0);
          continue;
        }
        if (BatchCollectOp Collect = dyn_cast_op<BatchCollectOp>(Nested)) {
          Value Index = Mapping.at(Nested->getOperand(0).getImpl());
          std::vector<Value> Values;
          for (unsigned I = 1; I < Nested->getNumOperands(); ++I)
            Values.push_back(
                Mapping.at(Nested->getOperand(I).getImpl()));
          // One batch_write per result buffer; the single-result case
          // (the common one) writes all values to the one buffer.
          TaskBuilder.create<BatchWriteOp>(
              NewTaskBlock.getArgument(
                  static_cast<unsigned>(NumInputs) + 1),
              Index, std::span<const Value>(Values),
              Collect.getTransposed());
          continue;
        }
        cloneOperation(Nested, Mapping, TaskBuilder);
      }

      // Copies and deallocs scheduled after this task.
      for (auto &[Src, Dst] : PendingCopies)
        Builder.create<CopyOp>(Src, Dst);
      PendingCopies.clear();
      auto DeallocIt = PendingDeallocs.find(Op);
      if (DeallocIt != PendingDeallocs.end())
        for (Value Buffer : DeallocIt->second)
          Builder.create<DeallocOp>(Buffer);
    }

    Builder.create<ReturnOp>(std::span<const Value>{});

    // Fix the output-count bookkeeping: numInputs counts only the input
    // args; outputs follow.
    NewKernel->setAttr("numInputs",
                       IntAttr::get(Ctx, Kernel.getNumInputs()));
    Kernel.getOperation()->erase();
    return success();
  }

  BufferizationOptions Options;
  std::vector<std::pair<Value, Value>> PendingCopies;
};

class GpuTransferEliminationPass : public Pass {
public:
  const char *getName() const override {
    return "gpu-transfer-elimination";
  }

  LogicalResult run(Operation *Module, Context &Ctx) override {
    // Intermediate buffers never observed by the host can stay on the
    // device: mark every alloc whose buffer is only used by tasks (and
    // its dealloc) as device-resident.
    Module->walk([&](Operation *Op) {
      if (!isa_op<AllocOp>(Op))
        return;
      bool OnlyTaskUses = true;
      Op->getResult(0).forEachUse([&](OpOperand &Use) {
        Operation *User = Use.getOwner();
        if (!isa_op<TaskOp>(User) && !isa_op<DeallocOp>(User))
          OnlyTaskUses = false;
      });
      if (OnlyTaskUses)
        Op->setAttr("deviceResident", UnitAttr::get(Ctx));
    });
    return success();
  }
};

} // namespace

std::unique_ptr<Pass>
spnc::transforms::createBufferizationPass(BufferizationOptions Options) {
  return std::make_unique<BufferizationPass>(Options);
}

std::unique_ptr<Pass>
spnc::transforms::createGpuBufferTransferEliminationPass() {
  return std::make_unique<GpuTransferEliminationPass>();
}
