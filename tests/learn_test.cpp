//===- learn_test.cpp - EM parameter learning tests ------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "learn/EM.h"
#include "runtime/Compiler.h"
#include "support/Random.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace spnc;
using namespace spnc::learn;
using namespace spnc::spn;

namespace {

/// Two-component Gaussian mixture data with known parameters.
std::vector<double> mixtureData(size_t NumSamples, uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> Data(NumSamples);
  for (double &X : Data)
    X = R.uniform() < 0.3 ? R.normal(-2.0, 0.5) : R.normal(3.0, 1.0);
  return Data;
}

TEST(EMTest, LogLikelihoodIsNonDecreasing) {
  Model M(1, "mixture");
  Node *G0 = M.makeGaussian(0, -1.0, 1.0);
  Node *G1 = M.makeGaussian(0, 1.0, 1.0);
  M.setRoot(M.makeSum({G0, G1}, {0.5, 0.5}));

  std::vector<double> Data = mixtureData(2000, 11);
  EmOptions Options;
  Options.Iterations = 15;
  EmResult Result = fitParameters(M, Data.data(), Data.size(), Options);

  ASSERT_EQ(Result.LogLikelihoodPerIteration.size(), 15u);
  for (size_t I = 1; I < Result.LogLikelihoodPerIteration.size(); ++I)
    EXPECT_GE(Result.LogLikelihoodPerIteration[I],
              Result.LogLikelihoodPerIteration[I - 1] - 1e-9)
        << "iteration " << I;
}

TEST(EMTest, RecoversMixtureParameters) {
  Model M(1, "mixture");
  auto *G0 = M.makeGaussian(0, -1.0, 1.0);
  auto *G1 = M.makeGaussian(0, 1.0, 1.0);
  auto *Root = M.makeSum({G0, G1}, {0.5, 0.5});
  M.setRoot(Root);

  std::vector<double> Data = mixtureData(5000, 3);
  EmOptions Options;
  Options.Iterations = 40;
  fitParameters(M, Data.data(), Data.size(), Options);

  // Identify components by mean ordering.
  const GaussianLeaf *Low = G0->getMean() < G1->getMean() ? G0 : G1;
  const GaussianLeaf *High = Low == G0 ? G1 : G0;
  double WeightLow =
      Root->getWeights()[Low == G0 ? 0 : 1];
  EXPECT_NEAR(Low->getMean(), -2.0, 0.15);
  EXPECT_NEAR(Low->getStdDev(), 0.5, 0.1);
  EXPECT_NEAR(High->getMean(), 3.0, 0.15);
  EXPECT_NEAR(High->getStdDev(), 1.0, 0.1);
  EXPECT_NEAR(WeightLow, 0.3, 0.05);

  std::string Error;
  EXPECT_TRUE(M.validate(&Error)) << Error;
}

TEST(EMTest, LearnsDiscreteLeafTables) {
  Model M(1, "disc");
  auto *Cat = M.makeCategorical(0, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  M.setRoot(M.makeSum({Cat}, {1.0}));

  // Category frequencies 0.6 / 0.3 / 0.1.
  Rng R(5);
  std::vector<double> Data(3000);
  for (double &X : Data) {
    double U = R.uniform();
    X = U < 0.6 ? 0.0 : (U < 0.9 ? 1.0 : 2.0);
  }
  EmOptions Options;
  Options.Iterations = 5;
  fitParameters(M, Data.data(), Data.size(), Options);
  EXPECT_NEAR(Cat->getProbabilities()[0], 0.6, 0.05);
  EXPECT_NEAR(Cat->getProbabilities()[1], 0.3, 0.05);
  EXPECT_NEAR(Cat->getProbabilities()[2], 0.1, 0.05);
}

TEST(EMTest, WeightsOnlyModeKeepsLeavesFixed) {
  Model M(1, "mixture");
  auto *G0 = M.makeGaussian(0, -2.0, 0.5);
  auto *G1 = M.makeGaussian(0, 3.0, 1.0);
  M.setRoot(M.makeSum({G0, G1}, {0.9, 0.1}));

  std::vector<double> Data = mixtureData(3000, 8);
  EmOptions Options;
  Options.Iterations = 10;
  Options.UpdateLeaves = false;
  fitParameters(M, Data.data(), Data.size(), Options);

  EXPECT_DOUBLE_EQ(G0->getMean(), -2.0);
  EXPECT_DOUBLE_EQ(G1->getStdDev(), 1.0);
  // The mixture weight still converges toward the true 0.3 / 0.7.
  EXPECT_NEAR(cast<SumNode>(M.getRoot())->getWeights()[0], 0.3, 0.05);
}

TEST(EMTest, MarginalizedEvidenceIsIgnored) {
  Model M(2, "partial");
  auto *G0 = M.makeGaussian(0, 0.0, 1.0);
  auto *G1 = M.makeGaussian(1, 0.0, 1.0);
  M.setRoot(M.makeProduct({G0, G1}));

  // Feature 1 is always missing; feature 0 is N(1.5, 0.4).
  Rng R(4);
  std::vector<double> Data(2 * 2000);
  for (size_t S = 0; S < 2000; ++S) {
    Data[2 * S] = R.normal(1.5, 0.4);
    Data[2 * S + 1] = std::nan("");
  }
  EmOptions Options;
  Options.Iterations = 5;
  fitParameters(M, Data.data(), 2000, Options);
  EXPECT_NEAR(G0->getMean(), 1.5, 0.05);
  EXPECT_NEAR(G0->getStdDev(), 0.4, 0.05);
  // The fully-marginalized leaf keeps its prior parameters.
  EXPECT_DOUBLE_EQ(G1->getMean(), 0.0);
  EXPECT_DOUBLE_EQ(G1->getStdDev(), 1.0);
}

TEST(EMTest, TrainedModelCompilesAndMatchesReference) {
  // End-to-end: generate structure, train, compile, verify agreement.
  workloads::SpeakerModelOptions ModelOptions;
  ModelOptions.TargetOperations = 300;
  ModelOptions.Seed = 17;
  Model M = workloads::generateSpeakerModel(ModelOptions);
  std::vector<double> Train =
      workloads::generateSpeechData(ModelOptions, 500, 2);
  EmOptions Options;
  Options.Iterations = 3;
  EmResult Result =
      fitParameters(M, Train.data(), 500, Options);
  EXPECT_GE(Result.LogLikelihoodPerIteration.back(),
            Result.LogLikelihoodPerIteration.front());
  std::string Error;
  ASSERT_TRUE(M.validate(&Error)) << Error;

  runtime::CompilerOptions Compile;
  Expected<runtime::CompiledKernel> Kernel =
      runtime::compileModel(M, QueryConfig(), Compile);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  std::vector<double> Test =
      workloads::generateSpeechData(ModelOptions, 20, 9);
  std::vector<double> Output(20);
  Kernel->execute(Test.data(), Output.data(), 20);
  for (size_t S = 0; S < 20; ++S) {
    double Reference = M.evalLogLikelihood(
        std::span<const double>(&Test[S * 26], 26));
    EXPECT_NEAR(Output[S], Reference,
                std::max(5e-3, std::fabs(Reference) * 5e-3));
  }
}

} // namespace
