file(REMOVE_RECURSE
  "CMakeFiles/spnc_baselines.dir/Baselines.cpp.o"
  "CMakeFiles/spnc_baselines.dir/Baselines.cpp.o.d"
  "libspnc_baselines.a"
  "libspnc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
