//===- TaskPartitioning.cpp - Split oversized LoSPN tasks --------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits LoSPN tasks whose body exceeds the maximum partition size into a
/// sequence of smaller tasks (paper §IV-A4). The arithmetic DAG inside the
/// task body is handed to the acyclic graph partitioner; each partition
/// becomes a task that reads the external features it needs plus the
/// interface values produced by earlier partitions (via transposed
/// intermediate tensors), and publishes its own interface values.
///
//===----------------------------------------------------------------------===//

#include "dialects/lospn/LoSPNOps.h"
#include "ir/Cloning.h"
#include "transforms/Passes.h"

#include <unordered_map>

using namespace spnc;
using namespace spnc::ir;
using namespace spnc::lospn;
using namespace spnc::transforms;

namespace {

/// Where a task-level scalar input comes from: a feature of an external
/// container or a slot of an earlier partition's result.
struct ScalarSource {
  Value Container;      // kernel-level tensor value
  unsigned StaticIndex; // feature / slot
  bool Transposed;
};

class TaskPartitioningPass : public Pass {
public:
  explicit TaskPartitioningPass(partition::PartitionOptions Options)
      : Options(Options) {}

  const char *getName() const override { return "partition-tasks"; }

  LogicalResult run(Operation *Module, Context &Ctx) override {
    std::vector<Operation *> Kernels;
    cast_op<ModuleOp>(Module).getBody();
    for (Operation *Op : cast_op<ModuleOp>(Module).getBody())
      if (isa_op<KernelOp>(Op))
        Kernels.push_back(Op);
    for (Operation *Kernel : Kernels)
      if (failed(processKernel(KernelOp(Kernel), Ctx)))
        return failure();
    return success();
  }

private:
  LogicalResult processKernel(KernelOp Kernel, Context &Ctx) {
    std::vector<Operation *> Tasks;
    for (Operation *Op : Kernel.getBody())
      if (isa_op<TaskOp>(Op))
        Tasks.push_back(Op);
    for (Operation *Task : Tasks)
      if (failed(processTask(TaskOp(Task), Ctx)))
        return failure();
    return success();
  }

  LogicalResult processTask(TaskOp Task, Context &Ctx) {
    // Locate the body op and the collect terminator.
    BodyOp Body(nullptr);
    for (Operation *Op : Task.getBody())
      if (isa_op<BodyOp>(Op))
        Body = BodyOp(Op);
    if (!Body)
      return success(); // Nothing to partition.
    Block &Inner = Body.getBody();

    // Collect the arithmetic ops (everything but the terminator).
    std::vector<Operation *> Nodes;
    for (Operation *Op : Inner)
      if (!Op->isTerminator())
        Nodes.push_back(Op);
    if (Nodes.size() <= Options.MaxPartitionSize)
      return success();

    Operation *Yield = Inner.getTerminator();
    assert(Yield && Yield->getNumOperands() == 1 &&
           "expected single-result task body");
    Value RootValue = Yield->getOperand(0);
    Operation *RootDef = RootValue.getDefiningOp();
    if (!RootDef)
      return success(); // Root is a block argument; nothing to gain.

    // Build the dependence graph over body ops.
    std::unordered_map<Operation *, uint32_t> NodeId;
    for (Operation *Op : Nodes)
      NodeId.emplace(Op, static_cast<uint32_t>(NodeId.size()));
    partition::Graph DepGraph(static_cast<uint32_t>(Nodes.size()));
    for (Operation *Op : Nodes)
      for (unsigned I = 0; I < Op->getNumOperands(); ++I)
        if (Operation *Def = Op->getOperand(I).getDefiningOp())
          if (NodeId.count(Def))
            DepGraph.addEdge(NodeId.at(Def), NodeId.at(Op));

    partition::Partitioning Partitioned =
        partition::partitionGraph(DepGraph, Options);
    uint32_t NumParts = Partitioned.NumPartitions;
    if (NumParts <= 1)
      return success();

    // Force the root into the last partition so the final task produces
    // exactly the kernel result (acyclicity holds: the root has no
    // consumers among the body ops).
    Partitioned.NodeToPartition[NodeId.at(RootDef)] = NumParts - 1;

    // Map the body's block arguments back to their scalar sources (the
    // batch_extracts in the task region).
    std::unordered_map<ValueImpl *, ScalarSource> ArgSources;
    for (unsigned I = 0; I < Body->getNumOperands(); ++I) {
      Value Operand = Body->getOperand(I);
      Operation *Def = Operand.getDefiningOp();
      assert(Def && isa_op<BatchExtractOp>(Def) &&
             "body operands must come from batch_extract");
      BatchExtractOp Extract(Def);
      // The extract reads from a task block arg; map it to the
      // kernel-level operand of the task.
      Value Container = Def->getOperand(0);
      assert(Container.isBlockArgument() && Container.getIndex() >= 1);
      Value KernelLevel =
          Task->getOperand(Container.getIndex() - 1);
      ArgSources.emplace(
          Inner.getArgument(I).getImpl(),
          ScalarSource{KernelLevel, Extract.getStaticIndex(),
                       Extract.getTransposed()});
    }

    Context &TheCtx = Ctx;
    OpBuilder KernelBuilder(TheCtx);
    KernelBuilder.setInsertionPoint(Task.getOperation());

    // Per original value: the (partition, slot) where it is published.
    struct Published {
      uint32_t Partition;
      unsigned Slot;
    };
    std::unordered_map<ValueImpl *, Published> PublishedSlots;
    // Result tensor of each created task.
    std::vector<Value> PartResult(NumParts);

    Type IndexTy = IndexType::get(TheCtx);

    for (uint32_t P = 0; P < NumParts; ++P) {
      // Ops of this partition in original order.
      std::vector<Operation *> PartOps;
      for (Operation *Op : Nodes)
        if (Partitioned[NodeId.at(Op)] == P)
          PartOps.push_back(Op);
      if (PartOps.empty())
        continue;

      // Interface-out: values produced here and consumed later (or the
      // root in the last partition).
      std::vector<Value> InterfaceOut;
      for (Operation *Op : PartOps) {
        for (unsigned R = 0; R < Op->getNumResults(); ++R) {
          Value Result = Op->getResult(R);
          bool Escapes = (Result == RootValue);
          Result.forEachUse([&](OpOperand &Use) {
            Operation *User = Use.getOwner();
            auto It = NodeId.find(User);
            if (It != NodeId.end() && Partitioned[It->second] != P)
              Escapes = true;
          });
          if (Escapes)
            InterfaceOut.push_back(Result);
        }
      }
      assert(!InterfaceOut.empty() &&
             "a partition must publish at least one value");

      // Scalar inputs: external features and earlier interface values.
      // Deduplicated per (container, index) by value identity.
      std::vector<ScalarSource> Sources;
      std::vector<Value> SourceKeys; // original value for remapping
      auto AddSource = [&](Value Original, const ScalarSource &Source) {
        for (Value Key : SourceKeys)
          if (Key == Original)
            return;
        SourceKeys.push_back(Original);
        Sources.push_back(Source);
      };
      for (Operation *Op : PartOps) {
        for (unsigned I = 0; I < Op->getNumOperands(); ++I) {
          Value Operand = Op->getOperand(I);
          if (Operation *Def = Operand.getDefiningOp()) {
            auto It = NodeId.find(Def);
            if (It == NodeId.end())
              continue; // Defined outside the body (impossible here).
            if (Partitioned[It->second] == P)
              continue; // Internal value.
            const Published &Pub = PublishedSlots.at(Operand.getImpl());
            AddSource(Operand,
                      ScalarSource{PartResult[Pub.Partition], Pub.Slot,
                                   /*Transposed=*/true});
          } else {
            // Body block argument: an external feature.
            AddSource(Operand, ArgSources.at(Operand.getImpl()));
          }
        }
      }

      // Create the new task.
      std::vector<Value> TaskOperands;
      auto OperandIndexOf = [&](Value Container) {
        for (size_t I = 0; I < TaskOperands.size(); ++I)
          if (TaskOperands[I] == Container)
            return static_cast<unsigned>(I);
        TaskOperands.push_back(Container);
        return static_cast<unsigned>(TaskOperands.size() - 1);
      };
      for (const ScalarSource &Source : Sources)
        OperandIndexOf(Source.Container);

      Type ComputeTy = InterfaceOut.front().getType();
      Type ResultTy = TensorType::get(
          TheCtx,
          {static_cast<int64_t>(InterfaceOut.size()),
           TypeStorage::kDynamic},
          ComputeTy);
      Type ResultTypes[1] = {ResultTy};
      auto NewTask = KernelBuilder.create<TaskOp>(
          std::span<const Value>(TaskOperands),
          std::span<const Type>(ResultTypes), Task.getBatchSize(),
          static_cast<unsigned>(TaskOperands.size()));
      Block &NewTaskBlock = NewTask->getRegion(0).emplaceBlock();
      Value BatchIndex = NewTaskBlock.addArgument(IndexTy);
      for (Value Operand : TaskOperands)
        NewTaskBlock.addArgument(Operand.getType());

      OpBuilder TaskBuilder =
          OpBuilder::atBlockEnd(TheCtx, &NewTaskBlock);

      // Extract all scalar inputs.
      std::vector<Value> BodyOperands;
      std::vector<Type> BodyOperandTypes;
      for (const ScalarSource &Source : Sources) {
        unsigned ArgIdx = OperandIndexOf(Source.Container) + 1;
        auto Extract = TaskBuilder.create<BatchExtractOp>(
            NewTaskBlock.getArgument(ArgIdx), BatchIndex,
            Source.StaticIndex, Source.Transposed);
        BodyOperands.push_back(Extract->getResult(0));
        BodyOperandTypes.push_back(Extract->getResult(0).getType());
      }

      // Body with cloned arithmetic.
      std::vector<Type> BodyResultTypes;
      BodyResultTypes.reserve(InterfaceOut.size());
      for (Value Out : InterfaceOut)
        BodyResultTypes.push_back(Out.getType());
      auto NewBody = TaskBuilder.create<BodyOp>(
          std::span<const Value>(BodyOperands),
          std::span<const Type>(BodyResultTypes));
      Block &NewInner = NewBody->getRegion(0).emplaceBlock();
      ValueMapping Mapping;
      for (size_t I = 0; I < Sources.size(); ++I) {
        Value Arg = NewInner.addArgument(BodyOperandTypes[I]);
        Mapping[SourceKeys[I].getImpl()] = Arg;
      }
      OpBuilder InnerBuilder = OpBuilder::atBlockEnd(TheCtx, &NewInner);
      for (Operation *Op : PartOps)
        cloneOperation(Op, Mapping, InnerBuilder);
      std::vector<Value> Yielded;
      Yielded.reserve(InterfaceOut.size());
      for (Value Out : InterfaceOut)
        Yielded.push_back(Mapping.at(Out.getImpl()));
      InnerBuilder.create<YieldOp>(std::span<const Value>(Yielded));

      // Collect terminator.
      std::vector<Value> Collected;
      Collected.reserve(InterfaceOut.size());
      for (unsigned I = 0; I < InterfaceOut.size(); ++I)
        Collected.push_back(NewBody->getResult(I));
      TaskBuilder.create<BatchCollectOp>(
          BatchIndex, std::span<const Value>(Collected),
          /*Transposed=*/true);

      // Publish slots.
      PartResult[P] = NewTask->getResult(0);
      for (unsigned I = 0; I < InterfaceOut.size(); ++I)
        PublishedSlots.emplace(InterfaceOut[I].getImpl(),
                               Published{P, I});
    }

    // Rewire the kernel result to the last partition's tensor and drop
    // the original task.
    uint32_t RootPartition =
        Partitioned[NodeId.at(RootDef)];
    Value NewResult = PartResult[RootPartition];
    Task->getResult(0).replaceAllUsesWith(NewResult);
    Task.getOperation()->erase();
    return success();
  }

  partition::PartitionOptions Options;
};

} // namespace

std::unique_ptr<Pass> spnc::transforms::createTaskPartitioningPass(
    partition::PartitionOptions Options) {
  return std::make_unique<TaskPartitioningPass>(Options);
}
