//===- report_test.cpp - Golden tests for the JSON reports ---------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden tests for the machine-readable reports behind
/// `--pipeline-report` and `--kernel-cache-report`: the emitted
/// documents must parse, carry every documented key, and keep a stable
/// key order — the contract dashboards scrape against.
///
//===----------------------------------------------------------------------===//

#include "runtime/Compiler.h"
#include "runtime/KernelCache.h"
#include "runtime/Pipeline.h"
#include "runtime/Reports.h"
#include "support/JSON.h"
#include "support/RawOStream.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace spnc;
using namespace spnc::runtime;

namespace {

spn::Model makeModel() {
  workloads::SpeakerModelOptions Options;
  Options.TargetOperations = 200;
  Options.Seed = 13;
  return workloads::generateSpeakerModel(Options);
}

/// Compiles a small model with the stage report on and returns the
/// pipeline report text plus the registered stage names.
struct EmittedReport {
  std::string Text;
  std::vector<std::string> StageNames;
};

EmittedReport emitPipelineReport(bool VerifyEachStage) {
  Expected<CompilationPipeline> Pipeline =
      CompilationPipeline::create(CompilerOptions());
  EXPECT_TRUE(static_cast<bool>(Pipeline));
  EXPECT_FALSE(Pipeline->enableStageReport());
  if (VerifyEachStage) {
    EXPECT_FALSE(Pipeline->enableVerifyAfterEachStage());
  }

  spn::Model Model = makeModel();
  CompileStats Stats;
  Expected<vm::KernelProgram> Program =
      Pipeline->compile(Model, spn::QueryConfig(), &Stats);
  EXPECT_TRUE(static_cast<bool>(Program));

  EmittedReport Report;
  for (const PipelineStage &Stage : Pipeline->getStages())
    Report.StageNames.push_back(Stage.Name);
  StringOStream OS(Report.Text);
  writePipelineReport(Stats, &Pipeline->getStages(), OS);
  return Report;
}

std::vector<std::string> memberKeys(const json::Value &Object) {
  std::vector<std::string> Keys;
  for (const json::Value::Member &M : Object.getMembers())
    Keys.push_back(M.first);
  return Keys;
}

TEST(PipelineReportTest, ParsesWithAllDocumentedKeys) {
  EmittedReport Report = emitPipelineReport(/*VerifyEachStage=*/false);
  Expected<json::Value> Doc = json::parse(Report.Text);
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();
  ASSERT_TRUE(Doc->isObject());
  for (const char *Key :
       {"stages", "op_counts", "passes", "codegen", "translation_ns",
        "binary_encode_ns", "total_ns", "num_tasks", "num_instructions"})
    EXPECT_NE(Doc->find(Key), nullptr) << "missing key: " << Key;

  const json::Value *Codegen = Doc->find("codegen");
  ASSERT_NE(Codegen, nullptr);
  ASSERT_TRUE(Codegen->isObject());
  for (const char *Key :
       {"isel_ns", "regalloc_ns", "peephole_ns", "scheduling_ns"})
    EXPECT_NE(Codegen->find(Key), nullptr) << "missing key: " << Key;
}

TEST(PipelineReportTest, StableTopLevelKeyOrder) {
  EmittedReport Report = emitPipelineReport(/*VerifyEachStage=*/false);
  Expected<json::Value> Doc = json::parse(Report.Text);
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();
  // The exact top-level sequence is the documented contract
  // (runtime/Reports.h); a reorder is a breaking change.
  EXPECT_EQ(memberKeys(*Doc),
            (std::vector<std::string>{
                "stages", "op_counts", "passes", "codegen",
                "translation_ns", "binary_encode_ns", "total_ns",
                "num_tasks", "num_instructions"}));
  const json::Value *Stages = Doc->find("stages");
  ASSERT_NE(Stages, nullptr);
  ASSERT_TRUE(Stages->isArray());
  ASSERT_FALSE(Stages->getArray().empty());
  for (const json::Value &Stage : Stages->getArray())
    EXPECT_EQ(memberKeys(Stage),
              (std::vector<std::string>{"name", "detail", "diagnostic",
                                        "wall_ns"}));
}

TEST(PipelineReportTest, OneEntryPerRegisteredStageInOrder) {
  EmittedReport Report = emitPipelineReport(/*VerifyEachStage=*/true);
  Expected<json::Value> Doc = json::parse(Report.Text);
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();
  const json::Value *Stages = Doc->find("stages");
  ASSERT_NE(Stages, nullptr);
  ASSERT_EQ(Stages->getArray().size(), Report.StageNames.size());
  for (size_t I = 0; I < Report.StageNames.size(); ++I) {
    const json::Value &Stage = Stages->getArray()[I];
    const json::Value *Name = Stage.find("name");
    ASSERT_NE(Name, nullptr);
    EXPECT_EQ(Name->getString(), Report.StageNames[I]);
    const json::Value *Diagnostic = Stage.find("diagnostic");
    ASSERT_NE(Diagnostic, nullptr);
    bool IsDiagnostic =
        Report.StageNames[I].find(':') != std::string::npos;
    EXPECT_EQ(Diagnostic->getBool(), IsDiagnostic)
        << Report.StageNames[I];
    const json::Value *WallNs = Stage.find("wall_ns");
    ASSERT_NE(WallNs, nullptr);
    EXPECT_TRUE(WallNs->isNumber());
  }
  // stage-report op counts surfaced: one sample per non-diagnostic
  // stage present at enableStageReport() time.
  const json::Value *OpCounts = Doc->find("op_counts");
  ASSERT_NE(OpCounts, nullptr);
  ASSERT_EQ(OpCounts->getArray().size(), 3u);
  for (const json::Value &Count : OpCounts->getArray()) {
    EXPECT_EQ(memberKeys(Count),
              (std::vector<std::string>{"stage", "num_ops"}));
    EXPECT_GT(Count.find("num_ops")->getNumber(), 0.0);
  }
}

TEST(PipelineReportTest, MultiModelReportIsGoldenArray) {
  Expected<CompilationPipeline> Pipeline =
      CompilationPipeline::create(CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(Pipeline));

  workloads::SpeakerModelOptions OtherOptions;
  OtherOptions.TargetOperations = 350;
  OtherOptions.Seed = 29;
  std::vector<spn::Model> Models;
  Models.push_back(makeModel());
  Models.push_back(workloads::generateSpeakerModel(OtherOptions));

  std::vector<ModelPipelineReport> Reports;
  for (size_t I = 0; I < Models.size(); ++I) {
    ModelPipelineReport Report;
    Report.Model = "model-" + std::to_string(I) + ".spnb";
    Report.Stages = &Pipeline->getStages();
    Expected<vm::KernelProgram> Program =
        Pipeline->compile(Models[I], spn::QueryConfig(), &Report.Stats);
    ASSERT_TRUE(static_cast<bool>(Program));
    Reports.push_back(std::move(Report));
  }

  std::string Text;
  {
    StringOStream OS(Text);
    writePipelineReports(Reports, OS);
  }
  Expected<json::Value> Doc = json::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();
  // The multi-model report is a top-level array: one document per
  // model, each the single-model shape prefixed with "model".
  ASSERT_TRUE(Doc->isArray());
  ASSERT_EQ(Doc->getArray().size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    const json::Value &Entry = Doc->getArray()[I];
    ASSERT_TRUE(Entry.isObject());
    EXPECT_EQ(memberKeys(Entry),
              (std::vector<std::string>{
                  "model", "stages", "op_counts", "passes", "codegen",
                  "translation_ns", "binary_encode_ns", "total_ns",
                  "num_tasks", "num_instructions"}));
    EXPECT_EQ(Entry.find("model")->getString(),
              "model-" + std::to_string(I) + ".spnb");
    EXPECT_GT(Entry.find("total_ns")->getNumber(), 0.0);
  }
  // The two models differ in size, so the documents must carry
  // per-model (not shared) statistics.
  EXPECT_NE(Doc->getArray()[0].find("num_instructions")->getNumber(),
            Doc->getArray()[1].find("num_instructions")->getNumber());
}

TEST(PipelineReportTest, RepeatEmissionIsIdentical) {
  Expected<CompilationPipeline> Pipeline =
      CompilationPipeline::create(CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(Pipeline));
  spn::Model Model = makeModel();
  CompileStats Stats;
  Expected<vm::KernelProgram> Program =
      Pipeline->compile(Model, spn::QueryConfig(), &Stats);
  ASSERT_TRUE(static_cast<bool>(Program));
  std::string First, Second;
  {
    StringOStream OS(First);
    writePipelineReport(Stats, &Pipeline->getStages(), OS);
  }
  {
    StringOStream OS(Second);
    writePipelineReport(Stats, &Pipeline->getStages(), OS);
  }
  EXPECT_EQ(First, Second);
}

TEST(PipelineReportTest, FileVariantWritesParseableDocument) {
  Expected<CompilationPipeline> Pipeline =
      CompilationPipeline::create(CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(Pipeline));
  spn::Model Model = makeModel();
  CompileStats Stats;
  Expected<vm::KernelProgram> Program =
      Pipeline->compile(Model, spn::QueryConfig(), &Stats);
  ASSERT_TRUE(static_cast<bool>(Program));

  std::string Path = ::testing::TempDir() + "/report_test_pipeline.json";
  std::string ErrorMessage;
  ASSERT_TRUE(succeeded(writePipelineReport(
      Stats, &Pipeline->getStages(), Path, &ErrorMessage)))
      << ErrorMessage;
  std::FILE *File = std::fopen(Path.c_str(), "r");
  ASSERT_NE(File, nullptr);
  std::string Text;
  char Buffer[4096];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Read);
  std::fclose(File);
  std::remove(Path.c_str());
  Expected<json::Value> Doc = json::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();

  // Unwritable path fails with a diagnostic, not a crash.
  EXPECT_TRUE(failed(writePipelineReport(
      Stats, nullptr, "/nonexistent-dir/report.json", &ErrorMessage)));
  EXPECT_FALSE(ErrorMessage.empty());
}

TEST(KernelCacheReportTest, AllCountersPresentInDeclarationOrder) {
  KernelCache::Stats Stats;
  Stats.Hits = 3;
  Stats.Misses = 2;
  Stats.DiskHits = 1;
  Stats.Recompiles = 1;
  Stats.Evictions = 4;
  Stats.DiskPrunedFiles = 5;
  Stats.DiskPrunedBytes = 6144;
  Stats.CorruptedDiskEntries = 1;
  Stats.LegacyDiskEntries = 2;
  KernelCache::Config Config;
  Config.Directory = "/tmp/spnk-cache";
  Config.MaxEntries = 32;
  Config.DiskBudgetBytes = 1 << 20;

  std::string Text;
  StringOStream OS(Text);
  writeKernelCacheReport(Stats, &Config, OS);

  Expected<json::Value> Doc = json::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();
  EXPECT_EQ(memberKeys(*Doc),
            (std::vector<std::string>{
                "hits", "misses", "disk_hits", "recompiles", "evictions",
                "disk_pruned_files", "disk_pruned_bytes",
                "corrupted_disk_entries", "legacy_disk_entries",
                "config"}));
  EXPECT_EQ(Doc->find("hits")->getNumber(), 3.0);
  EXPECT_EQ(Doc->find("disk_pruned_bytes")->getNumber(), 6144.0);
  const json::Value *ConfigValue = Doc->find("config");
  ASSERT_NE(ConfigValue, nullptr);
  EXPECT_EQ(memberKeys(*ConfigValue),
            (std::vector<std::string>{"directory", "max_entries",
                                      "disk_budget_bytes"}));
  EXPECT_EQ(ConfigValue->find("directory")->getString(),
            "/tmp/spnk-cache");
}

TEST(KernelCacheReportTest, OmitsConfigWhenNotProvided) {
  KernelCache::Stats Stats;
  std::string Text;
  StringOStream OS(Text);
  writeKernelCacheReport(Stats, nullptr, OS);
  Expected<json::Value> Doc = json::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();
  EXPECT_EQ(Doc->find("config"), nullptr);
  EXPECT_EQ(Doc->find("hits")->getNumber(), 0.0);
}

TEST(KernelCacheReportTest, LiveCacheStatsRoundTrip) {
  KernelCache::Config Config;
  KernelCache Cache(Config);
  workloads::SpeakerModelOptions Options;
  Options.TargetOperations = 100;
  Options.Seed = 3;
  spn::Model Model = workloads::generateSpeakerModel(Options);
  Expected<CompiledKernel> First =
      Cache.getOrCompile(Model, spn::QueryConfig(), CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(First)) << First.getError().message();
  Expected<CompiledKernel> Second =
      Cache.getOrCompile(Model, spn::QueryConfig(), CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(Second));

  std::string Text;
  StringOStream OS(Text);
  writeKernelCacheReport(Cache.getStats(), &Cache.getConfig(), OS);
  Expected<json::Value> Doc = json::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();
  EXPECT_EQ(Doc->find("hits")->getNumber(), 1.0);
  EXPECT_EQ(Doc->find("misses")->getNumber(), 1.0);
  EXPECT_EQ(Doc->find("recompiles")->getNumber(), 1.0);
}

TEST(JsonTest, WriterEscapesAndNestsCorrectly) {
  std::string Text;
  StringOStream OS(Text);
  json::Writer W(OS);
  W.beginObject();
  W.member("name", "quote\" slash\\ tab\t");
  W.key("list");
  W.beginArray();
  W.value(int64_t(-5));
  W.value(true);
  W.null();
  W.endArray();
  W.endObject();
  Expected<json::Value> Doc = json::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();
  EXPECT_EQ(Doc->find("name")->getString(), "quote\" slash\\ tab\t");
  const json::Value *List = Doc->find("list");
  ASSERT_NE(List, nullptr);
  ASSERT_EQ(List->getArray().size(), 3u);
  EXPECT_EQ(List->getArray()[0].getNumber(), -5.0);
  EXPECT_TRUE(List->getArray()[1].getBool());
  EXPECT_TRUE(List->getArray()[2].isNull());
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  for (const char *Bad :
       {"{", "{\"a\":}", "[1,]", "{\"a\":1} trailing", "\"unterminated",
        "{'single':1}", ""})
    EXPECT_FALSE(static_cast<bool>(json::parse(Bad))) << Bad;
}

TEST(JsonTest, ObjectsPreserveTextualMemberOrder) {
  Expected<json::Value> Doc =
      json::parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().message();
  EXPECT_EQ(memberKeys(*Doc),
            (std::vector<std::string>{"z", "a", "m"}));
}

} // namespace
