//===- diagnostics_test.cpp - Failure injection and error-path tests -------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the error paths: per-op verifier rejections on hand-built
/// malformed IR, diagnostics plumbing, and code-generator failures on
/// unsupported input. Compilers live or die by their diagnostics.
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "dialects/lospn/LoSPNOps.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace spnc;
using namespace spnc::ir;
using namespace spnc::lospn;

namespace {

class DiagnosticsTest : public ::testing::Test {
protected:
  void SetUp() override {
    registerLoSPNDialect(Ctx);
    Ctx.setDiagnosticHandler([this](const std::string &Message) {
      Messages.push_back(Message);
    });
    Module = ModuleOp::create(Ctx);
    Builder = std::make_unique<OpBuilder>(
        OpBuilder::atBlockEnd(Ctx, &Module.get().getBody()));
  }

  bool sawMessageContaining(const std::string &Needle) const {
    for (const std::string &Message : Messages)
      if (Message.find(Needle) != std::string::npos)
        return true;
    return false;
  }

  Context Ctx;
  OwningOpRef<ModuleOp> Module;
  std::unique_ptr<OpBuilder> Builder;
  std::vector<std::string> Messages;
};

TEST_F(DiagnosticsTest, BatchReadRejectsWrongContainerKind) {
  // batch_read wants a memref; feed it a tensor-typed alloc result by
  // hand-building the op.
  auto Kernel = Builder->create<KernelOp>("k", 1u);
  Block &Body = Kernel->getRegion(0).emplaceBlock();
  Value TensorArg = Body.addArgument(TensorType::get(
      Ctx, {TypeStorage::kDynamic, 2}, FloatType::getF64(Ctx)));
  OpBuilder B = OpBuilder::atBlockEnd(Ctx, &Body);
  OperationState State(BatchReadOp::getOperationName());
  State.addOperand(TensorArg);
  OperationState IndexState("test.index");
  IndexState.addResultType(IndexType::get(Ctx));
  Operation *Index = B.createOperation(IndexState);
  State.addOperand(Index->getResult(0));
  State.addAttribute("staticIndex", IntAttr::get(Ctx, 0));
  State.addAttribute("transposed", BoolAttr::get(Ctx, false));
  State.addResultType(FloatType::getF64(Ctx));
  Operation *Read = B.createOperation(State);

  EXPECT_TRUE(failed(BatchReadOp(Read).verify()));
  EXPECT_TRUE(sawMessageContaining("(memref, index)"));
}

TEST_F(DiagnosticsTest, BodyRejectsMismatchedYield) {
  Type F32 = FloatType::getF32(Ctx);
  Type F64 = FloatType::getF64(Ctx);
  Type Results[1] = {F32};
  auto Body = Builder->create<BodyOp>(std::span<const Value>{},
                                      std::span<const Type>(Results));
  Block &Inner = Body->getRegion(0).emplaceBlock();
  OpBuilder B = OpBuilder::atBlockEnd(Ctx, &Inner);
  Value Wrong = B.create<ConstantOp>(1.0, F64)->getResult(0);
  Value Yielded[1] = {Wrong};
  B.create<YieldOp>(std::span<const Value>(Yielded));
  EXPECT_TRUE(failed(BodyOp(Body.getOperation()).verify()));
  EXPECT_TRUE(sawMessageContaining("yield operand 0 type mismatch"));
}

TEST_F(DiagnosticsTest, ArithRejectsMixedTypes) {
  Type F32 = FloatType::getF32(Ctx);
  Type LogF32 = LogType::get(Ctx, FloatType::getF32(Ctx));
  Value A = Builder->create<ConstantOp>(0.5, F32)->getResult(0);
  Value B = Builder->create<ConstantOp>(-0.7, LogF32)->getResult(0);
  // Hand-build mul(A: f32, B: log<f32>) claiming an f32 result.
  OperationState State(MulOp::getOperationName());
  State.addOperand(A);
  State.addOperand(B);
  State.addResultType(F32);
  Operation *Mul = Builder->createOperation(State);
  EXPECT_TRUE(failed(MulOp(Mul).verify()));
  EXPECT_TRUE(sawMessageContaining("operand types must match"));
}

TEST_F(DiagnosticsTest, AllocMustProduceMemRef) {
  OperationState State(AllocOp::getOperationName());
  State.addResultType(FloatType::getF32(Ctx));
  Operation *Alloc = Builder->createOperation(State);
  EXPECT_TRUE(failed(AllocOp(Alloc).verify()));
  EXPECT_TRUE(sawMessageContaining("single memref"));
}

TEST_F(DiagnosticsTest, VerifierWalksNestedRegions) {
  // A malformed op nested two regions deep is still found by the module
  // verifier.
  auto Kernel = Builder->create<KernelOp>("k", 0u);
  Block &Body = Kernel->getRegion(0).emplaceBlock();
  OpBuilder B = OpBuilder::atBlockEnd(Ctx, &Body);
  OperationState State(AllocOp::getOperationName());
  State.addResultType(FloatType::getF32(Ctx)); // invalid result type
  B.createOperation(State);
  B.create<ReturnOp>(std::span<const Value>{});
  // Kernel body arguments OK (none); the nested alloc is bad.
  EXPECT_TRUE(failed(verify(Module.get().getOperation())));
  EXPECT_TRUE(sawMessageContaining("single memref"));
}

TEST_F(DiagnosticsTest, CodegenRejectsUnknownBodyOps) {
  // Build a syntactically valid memref-form kernel whose body contains
  // an op the instruction selector does not understand.
  Type F32 = FloatType::getF32(Ctx);
  auto Kernel = Builder->create<KernelOp>("k", 1u);
  Block &KBody = Kernel->getRegion(0).emplaceBlock();
  Value In = KBody.addArgument(
      MemRefType::get(Ctx, {TypeStorage::kDynamic, 1}, F32));
  Value Out = KBody.addArgument(
      MemRefType::get(Ctx, {1, TypeStorage::kDynamic}, F32));
  OpBuilder KB = OpBuilder::atBlockEnd(Ctx, &KBody);
  Value Operands[2] = {In, Out};
  auto Task = KB.create<TaskOp>(std::span<const Value>(Operands),
                                std::span<const Type>{}, 8u, 1u);
  KB.create<ReturnOp>(std::span<const Value>{});
  Block &TBody = Task->getRegion(0).emplaceBlock();
  Value Index = TBody.addArgument(IndexType::get(Ctx));
  TBody.addArgument(In.getType());
  Value OutArg = TBody.addArgument(Out.getType());
  OpBuilder TB = OpBuilder::atBlockEnd(Ctx, &TBody);
  OperationState Strange("mystery.op");
  Strange.addResultType(F32);
  Operation *Mystery = TB.createOperation(Strange);
  Value Written[1] = {Mystery->getResult(0)};
  TB.create<BatchWriteOp>(OutArg, Index,
                          std::span<const Value>(Written), true);

  Expected<vm::KernelProgram> Program = codegen::emitKernelProgram(
      KernelOp(Kernel.getOperation()), codegen::CodegenOptions());
  ASSERT_FALSE(static_cast<bool>(Program));
  EXPECT_NE(Program.getError().message().find("unsupported"),
            std::string::npos);
}

TEST_F(DiagnosticsTest, DiagnosticHandlerSwapsCleanly) {
  unsigned FirstCount = 0;
  auto Previous = Ctx.setDiagnosticHandler(
      [&](const std::string &) { ++FirstCount; });
  Ctx.emitError("one");
  EXPECT_EQ(FirstCount, 1u);
  Ctx.setDiagnosticHandler(std::move(Previous));
  Ctx.emitError("two");
  EXPECT_EQ(FirstCount, 1u);
  EXPECT_TRUE(sawMessageContaining("two"));
  EXPECT_EQ(Ctx.getNumErrors(), 2u);
}

} // namespace
