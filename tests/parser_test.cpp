//===- parser_test.cpp - Textual IR parser and round-trip tests ----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "dialects/hispn/HiSPNOps.h"
#include "dialects/lospn/LoSPNOps.h"
#include "frontend/HiSPNTranslation.h"
#include "ir/Parser.h"
#include "ir/PassManager.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "transforms/Passes.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace spnc;
using namespace spnc::ir;

namespace {

class ParserTest : public ::testing::Test {
protected:
  void SetUp() override {
    hispn::registerHiSPNDialect(Ctx);
    lospn::registerLoSPNDialect(Ctx);
  }

  Context Ctx;
};

TEST_F(ParserTest, ParsesEmptyModule) {
  Expected<OwningOpRef<ModuleOp>> Module =
      parseSourceString(Ctx, "\"builtin.module\"() ({\n}) : () -> ()\n");
  ASSERT_TRUE(static_cast<bool>(Module)) << Module.getError().message();
  EXPECT_TRUE(Module->get().getBody().empty());
}

TEST_F(ParserTest, ParsesOpsValuesAndAttributes) {
  const char *Source = R"(
"builtin.module"() ({
  %0 = "lo_spn.constant"() {value = 0.25} : () -> f64
  %1 = "lo_spn.constant"() {value = -1.5} : () -> f64
  %2 = "lo_spn.mul"(%0, %1) : (f64, f64) -> f64
}) : () -> ()
)";
  Expected<OwningOpRef<ModuleOp>> Module = parseSourceString(Ctx, Source);
  ASSERT_TRUE(static_cast<bool>(Module)) << Module.getError().message();
  Block &Body = Module->get().getBody();
  ASSERT_EQ(Body.size(), 3u);
  Operation *Mul = Body.back();
  EXPECT_EQ(Mul->getName(), "lo_spn.mul");
  ASSERT_EQ(Mul->getNumOperands(), 2u);
  Operation *C0 = Mul->getOperand(0).getDefiningOp();
  ASSERT_NE(C0, nullptr);
  EXPECT_DOUBLE_EQ(C0->getFloatAttr("value"), 0.25);
  EXPECT_DOUBLE_EQ(
      Mul->getOperand(1).getDefiningOp()->getFloatAttr("value"), -1.5);
}

TEST_F(ParserTest, ParsesRegionsAndBlockArguments) {
  const char *Source = R"(
"builtin.module"() ({
  "hi_spn.graph"() ({
  ^bb(%arg0: f64, %arg1: f64):
    %0 = "hi_spn.gaussian"(%arg0) {mean = 0.0, stddev = 1.0} : (f64) -> !hi_spn.prob
    %1 = "hi_spn.gaussian"(%arg1) {mean = 1.0, stddev = 2.0} : (f64) -> !hi_spn.prob
    %2 = "hi_spn.product"(%0, %1) : (!hi_spn.prob, !hi_spn.prob) -> !hi_spn.prob
    "hi_spn.root"(%2) : (!hi_spn.prob) -> ()
  }) {numFeatures = 2} : () -> ()
}) : () -> ()
)";
  Expected<OwningOpRef<ModuleOp>> Module = parseSourceString(Ctx, Source);
  ASSERT_TRUE(static_cast<bool>(Module)) << Module.getError().message();
  ASSERT_TRUE(succeeded(verify(Module->get().getOperation())));
  Operation *Graph = Module->get().getBody().front();
  hispn::GraphOp G(Graph);
  EXPECT_EQ(G.getNumFeatures(), 2u);
  EXPECT_EQ(G.getBody().getNumArguments(), 2u);
  // Leaf evidence must be wired to the block arguments.
  Operation *Leaf = G.getBody().front();
  EXPECT_EQ(Leaf->getOperand(0), G.getBody().getArgument(0));
}

TEST_F(ParserTest, ParsesShapedAndDialectTypes) {
  const char *Source = R"(
"builtin.module"() ({
  "lo_spn.kernel"() ({
  ^bb(%arg0: memref<?x26xf64>, %arg1: memref<2x?x!lo_spn.log<f32>>):
    "lo_spn.return"() : () -> ()
  }) {numInputs = 1, sym_name = "k"} : () -> ()
}) : () -> ()
)";
  Expected<OwningOpRef<ModuleOp>> Module = parseSourceString(Ctx, Source);
  ASSERT_TRUE(static_cast<bool>(Module)) << Module.getError().message();
  lospn::KernelOp Kernel(Module->get().getBody().front());
  Type In = Kernel.getBody().getArgument(0).getType();
  ASSERT_TRUE(In.isa<MemRefType>());
  EXPECT_EQ(In.cast<MemRefType>().getShape(),
            (std::vector<int64_t>{TypeStorage::kDynamic, 26}));
  EXPECT_EQ(In.cast<MemRefType>().getElementType(),
            Type(FloatType::getF64(Ctx)));
  Type Out = Kernel.getBody().getArgument(1).getType();
  EXPECT_EQ(Out.cast<MemRefType>().getShape(),
            (std::vector<int64_t>{2, TypeStorage::kDynamic}));
  EXPECT_TRUE(lospn::isLogSpace(
      Out.cast<MemRefType>().getElementType()));
}

TEST_F(ParserTest, ParsesDenseAndSpecialFloats) {
  const char *Source = R"(
"builtin.module"() ({
  %0 = "test.op"() {weights = dense<[0.25, 0.75]>, lo = -inf, bad = nan, flag = true, none = unit, name = "abc"} : () -> f32
}) : () -> ()
)";
  Expected<OwningOpRef<ModuleOp>> Module = parseSourceString(Ctx, Source);
  ASSERT_TRUE(static_cast<bool>(Module)) << Module.getError().message();
  Operation *Op = Module->get().getBody().front();
  EXPECT_EQ(Op->getAttr("weights").cast<DenseF64Attr>().getValues(),
            (std::vector<double>{0.25, 0.75}));
  EXPECT_TRUE(std::isinf(Op->getFloatAttr("lo")));
  EXPECT_TRUE(std::isnan(Op->getFloatAttr("bad")));
  EXPECT_TRUE(Op->getBoolAttr("flag"));
  EXPECT_TRUE(Op->getAttr("none").isa<UnitAttr>());
  EXPECT_EQ(Op->getAttr("name").cast<StringAttr>().getValue(), "abc");
}

TEST_F(ParserTest, ReportsErrorsWithLocation) {
  struct Case {
    const char *Source;
    const char *ExpectSubstring;
  } Cases[] = {
      {"\"builtin.module\"() ({\n  %0 = \"x\"(%9) : (f32) -> f32\n}) : "
       "() -> ()",
       "undefined value"},
      {"\"builtin.module\"() ({}) : () -> () garbage",
       "expected end of input"},
      {"\"builtin.module\"() ({", "unterminated region"},
      {"%0 = \"lo_spn.constant\"() {value = 1.0} : () -> f64",
       "builtin.module"},
      {"\"builtin.module\"() ({\n  %0 = \"x\"() : () -> badtype\n}) : () "
       "-> ()",
       "unknown type"},
  };
  for (const Case &C : Cases) {
    Expected<OwningOpRef<ModuleOp>> Module =
        parseSourceString(Ctx, C.Source);
    ASSERT_FALSE(static_cast<bool>(Module)) << C.Source;
    EXPECT_NE(Module.getError().message().find(C.ExpectSubstring),
              std::string::npos)
        << "got: " << Module.getError().message();
  }
}

TEST_F(ParserTest, RoundTripsHiSPNModules) {
  workloads::SpeakerModelOptions Options;
  Options.TargetOperations = 250;
  Options.Seed = 13;
  spn::Model Model = workloads::generateSpeakerModel(Options);
  spn::QueryConfig Query;
  Query.SupportMarginal = true;
  OwningOpRef<ModuleOp> Original =
      spn::translateToHiSPN(Ctx, Model, Query);
  ASSERT_TRUE(static_cast<bool>(Original));

  std::string Text = opToString(Original.get().getOperation());
  Expected<OwningOpRef<ModuleOp>> Reparsed = parseSourceString(Ctx, Text);
  ASSERT_TRUE(static_cast<bool>(Reparsed))
      << Reparsed.getError().message();
  ASSERT_TRUE(succeeded(verify(Reparsed->get().getOperation())));
  // Printing the reparsed module reproduces the text exactly (fixpoint).
  EXPECT_EQ(opToString(Reparsed->get().getOperation()), Text);
}

TEST_F(ParserTest, RoundTripsBufferizedLoSPNModules) {
  workloads::SpeakerModelOptions Options;
  Options.TargetOperations = 250;
  Options.Seed = 13;
  spn::Model Model = workloads::generateSpeakerModel(Options);
  OwningOpRef<ModuleOp> Module =
      spn::translateToHiSPN(Ctx, Model, spn::QueryConfig());
  ASSERT_TRUE(static_cast<bool>(Module));
  PassManager PM(Ctx);
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass());
  partition::PartitionOptions PartOptions;
  PartOptions.MaxPartitionSize = 64;
  PM.addPass(transforms::createTaskPartitioningPass(PartOptions));
  PM.addPass(transforms::createBufferizationPass());
  ASSERT_TRUE(succeeded(PM.run(Module.get().getOperation())));

  std::string Text = opToString(Module.get().getOperation());
  Expected<OwningOpRef<ModuleOp>> Reparsed = parseSourceString(Ctx, Text);
  ASSERT_TRUE(static_cast<bool>(Reparsed))
      << Reparsed.getError().message();
  ASSERT_TRUE(succeeded(verify(Reparsed->get().getOperation())));
  EXPECT_EQ(opToString(Reparsed->get().getOperation()), Text);
}

} // namespace
