//===- transforms_test.cpp - Compilation pass tests ----------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural tests for the target-independent passes (paper §IV-A):
/// HiSPN->LoSPN lowering, task partitioning, bufferization with and
/// without copy avoidance, and GPU transfer elimination.
///
//===----------------------------------------------------------------------===//

#include "dialects/hispn/HiSPNOps.h"
#include "dialects/lospn/LoSPNOps.h"
#include "frontend/HiSPNTranslation.h"
#include "ir/PassManager.h"
#include "ir/Verifier.h"
#include "transforms/Passes.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace spnc;
using namespace spnc::ir;

namespace {

class TransformsTest : public ::testing::Test {
protected:
  void SetUp() override {
    workloads::SpeakerModelOptions Options;
    Options.TargetOperations = 300;
    Options.Seed = 5;
    Model = std::make_unique<spn::Model>(
        workloads::generateSpeakerModel(Options));
  }

  OwningOpRef<ModuleOp> translate(bool LogSpace = true) {
    spn::QueryConfig Config;
    Config.LogSpace = LogSpace;
    Config.BatchSize = 64;
    return spn::translateToHiSPN(Ctx, *Model, Config);
  }

  lospn::KernelOp getKernel(ModuleOp Module) {
    for (Operation *Op : Module.getBody())
      if (isa_op<lospn::KernelOp>(Op))
        return lospn::KernelOp(Op);
    return lospn::KernelOp(nullptr);
  }

  std::vector<lospn::TaskOp> getTasks(lospn::KernelOp Kernel) {
    std::vector<lospn::TaskOp> Tasks;
    for (Operation *Op : Kernel.getBody())
      if (isa_op<lospn::TaskOp>(Op))
        Tasks.push_back(lospn::TaskOp(Op));
    return Tasks;
  }

  Context Ctx;
  std::unique_ptr<spn::Model> Model;
};

TEST_F(TransformsTest, LoweringProducesSingleTaskKernel) {
  OwningOpRef<ModuleOp> Module = translate();
  ASSERT_TRUE(static_cast<bool>(Module));
  PassManager PM(Ctx);
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass());
  ASSERT_TRUE(succeeded(PM.run(Module.get().getOperation())));

  lospn::KernelOp Kernel = getKernel(Module.get());
  ASSERT_TRUE(static_cast<bool>(Kernel));
  EXPECT_FALSE(Kernel.isBufferized());
  std::vector<lospn::TaskOp> Tasks = getTasks(Kernel);
  ASSERT_EQ(Tasks.size(), 1u);
  EXPECT_EQ(Tasks[0].getBatchSize(), 64u);

  // The query op is gone.
  for (Operation *Op : Module.get().getBody())
    EXPECT_FALSE(isa_op<hispn::JointQueryOp>(Op));

  // Log-space: the task result element type is !lo_spn.log<f32>.
  Type ResultTy = Tasks[0]->getResult(0).getType();
  Type Element = ResultTy.cast<TensorType>().getElementType();
  EXPECT_TRUE(lospn::isLogSpace(Element));
}

TEST_F(TransformsTest, LoweringDecomposesWeightedSums) {
  OwningOpRef<ModuleOp> Module = translate();
  PassManager PM(Ctx);
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass());
  ASSERT_TRUE(succeeded(PM.run(Module.get().getOperation())));

  // Only binary mul/add remain; no variadic ops, and every sum weight
  // became a lo_spn.constant.
  unsigned NumConstants = 0;
  Module.get().getOperation()->walk([&](Operation *Op) {
    if (isa_op<lospn::MulOp>(Op) || isa_op<lospn::AddOp>(Op)) {
      EXPECT_EQ(Op->getNumOperands(), 2u);
    }
    if (isa_op<lospn::ConstantOp>(Op))
      ++NumConstants;
  });
  EXPECT_GT(NumConstants, 0u);
}

/// Helper: lowers a model in linear space and returns the selected
/// compute element type.
static Type lowerLinearAndGetComputeType(Context &Ctx,
                                         const spn::Model &M) {
  spn::QueryConfig Config;
  Config.LogSpace = false;
  OwningOpRef<ModuleOp> Module = spn::translateToHiSPN(Ctx, M, Config);
  EXPECT_TRUE(static_cast<bool>(Module));
  PassManager PM(Ctx);
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass());
  EXPECT_TRUE(succeeded(PM.run(Module.get().getOperation())));
  for (Operation *Op : Module.get().getBody())
    if (isa_op<lospn::KernelOp>(Op))
      for (Operation *Task : lospn::KernelOp(Op).getBody())
        if (isa_op<lospn::TaskOp>(Task))
          return Task->getResult(0)
              .getType()
              .cast<TensorType>()
              .getElementType();
  return Type();
}

TEST_F(TransformsTest, UnderflowAnalysisSelectsF64ForWideProducts) {
  // 40 independent Gaussian factors: the product of their worst-case
  // densities underflows f32, so the analysis must widen to f64.
  spn::Model Wide(40);
  std::vector<spn::Node *> Factors;
  for (unsigned F = 0; F < 40; ++F)
    Factors.push_back(Wide.makeGaussian(F, 0.0, 1.0));
  Wide.setRoot(Wide.makeProduct(Factors));
  Type Element = lowerLinearAndGetComputeType(Ctx, Wide);
  ASSERT_TRUE(Element.isFloat());
  EXPECT_EQ(Element.cast<FloatType>().getWidth(), 64u);

  // A three-factor product stays comfortably inside f32 range.
  spn::Model Narrow(3);
  std::vector<spn::Node *> Few;
  for (unsigned F = 0; F < 3; ++F)
    Few.push_back(Narrow.makeGaussian(F, 0.0, 1.0));
  Narrow.setRoot(Narrow.makeProduct(Few));
  Element = lowerLinearAndGetComputeType(Ctx, Narrow);
  ASSERT_TRUE(Element.isFloat());
  EXPECT_EQ(Element.cast<FloatType>().getWidth(), 32u);
}

TEST_F(TransformsTest, MinLogProbabilityBoundIsConservative) {
  // product(gaussian, categorical(min 0.1)), mixed under a 0.5/0.5 sum
  // with a plain categorical: bound = max over the weighted children.
  spn::Model M(2);
  spn::Node *G = M.makeGaussian(0, 0.0, 2.0);
  spn::Node *C = M.makeCategorical(1, {0.1, 0.9});
  spn::Node *P = M.makeProduct({G, C});
  spn::Node *C2 = M.makeCategorical(0, {0.5, 0.5});
  spn::Node *C3 = M.makeCategorical(1, {0.25, 0.75});
  spn::Node *P2 = M.makeProduct({C2, C3});
  M.setRoot(M.makeSum({P, P2}, {0.5, 0.5}));
  OwningOpRef<ModuleOp> Module =
      spn::translateToHiSPN(Ctx, M, spn::QueryConfig());
  ASSERT_TRUE(static_cast<bool>(Module));
  hispn::JointQueryOp Query(Module.get().getBody().front());

  transforms::LoweringOptions Options;
  double Bound =
      transforms::estimateMinLogProbability(Query.getGraph(), Options);
  // Branch 1: gaussian(k=4 sigma, sd=2) + log 0.1; branch 2:
  // log 0.5 + log 0.25; both plus log 0.5 mixture weight; bound = max.
  double Gaussian = -0.5 * 16 - std::log(2.0) - 0.91893853320467274178;
  double Branch1 = std::log(0.5) + Gaussian + std::log(0.1);
  double Branch2 = std::log(0.5) + std::log(0.5) + std::log(0.25);
  EXPECT_NEAR(Bound, std::max(Branch1, Branch2), 1e-12);
  // It must truly be a lower bound for in-range samples.
  double Sample[2] = {1.0, 1.0};
  EXPECT_GE(M.evalLogLikelihood(std::span<const double>(Sample, 2)),
            Bound);
}

TEST_F(TransformsTest, PartitioningSplitsLargeTasks) {
  OwningOpRef<ModuleOp> Module = translate();
  PassManager PM(Ctx);
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass());
  partition::PartitionOptions Options;
  Options.MaxPartitionSize = 50;
  PM.addPass(transforms::createTaskPartitioningPass(Options));
  ASSERT_TRUE(succeeded(PM.run(Module.get().getOperation())));
  ASSERT_TRUE(succeeded(verify(Module.get().getOperation())));

  lospn::KernelOp Kernel = getKernel(Module.get());
  std::vector<lospn::TaskOp> Tasks = getTasks(Kernel);
  EXPECT_GT(Tasks.size(), 1u);

  // Every task body respects the size bound (with slack).
  for (lospn::TaskOp Task : Tasks) {
    unsigned BodyOps = 0;
    Task.getOperation()->walk([&](Operation *Op) {
      if (Op->getParentOp() && isa_op<lospn::BodyOp>(Op->getParentOp()))
        ++BodyOps;
    });
    EXPECT_LE(BodyOps, 52u); // 50 + 1% slack + the forced root move
  }

  // The last task feeds the kernel return; intermediate results flow
  // through tensors between tasks in order.
  Operation *Return = Kernel.getBody().getTerminator();
  ASSERT_EQ(Return->getNumOperands(), 1u);
  EXPECT_EQ(Return->getOperand(0).getDefiningOp(),
            Tasks.back().getOperation());
}

TEST_F(TransformsTest, PartitioningIsNoOpForSmallTasks) {
  OwningOpRef<ModuleOp> Module = translate();
  PassManager PM(Ctx);
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass());
  partition::PartitionOptions Options;
  Options.MaxPartitionSize = 1000000;
  PM.addPass(transforms::createTaskPartitioningPass(Options));
  ASSERT_TRUE(succeeded(PM.run(Module.get().getOperation())));
  EXPECT_EQ(getTasks(getKernel(Module.get())).size(), 1u);
}

TEST_F(TransformsTest, BufferizationProducesMemRefForm) {
  OwningOpRef<ModuleOp> Module = translate();
  PassManager PM(Ctx);
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass());
  partition::PartitionOptions PartOptions;
  PartOptions.MaxPartitionSize = 50;
  PM.addPass(transforms::createTaskPartitioningPass(PartOptions));
  PM.addPass(transforms::createBufferizationPass());
  ASSERT_TRUE(succeeded(PM.run(Module.get().getOperation())));
  ASSERT_TRUE(succeeded(verify(Module.get().getOperation())));

  lospn::KernelOp Kernel = getKernel(Module.get());
  ASSERT_TRUE(static_cast<bool>(Kernel));
  EXPECT_TRUE(Kernel.isBufferized());
  // Inputs + one output, all memrefs.
  Block &Body = Kernel.getBody();
  EXPECT_EQ(Kernel.getNumInputs(), 1u);
  EXPECT_EQ(Body.getNumArguments(), 2u);
  for (unsigned I = 0; I < Body.getNumArguments(); ++I)
    EXPECT_TRUE(Body.getArgument(I).getType().isa<MemRefType>());

  // No tensor-typed values anywhere; batch access ops are the memref
  // variants; copy avoidance leaves no lo_spn.copy.
  unsigned NumAllocs = 0, NumDeallocs = 0, NumCopies = 0;
  Module.get().getOperation()->walk([&](Operation *Op) {
    for (unsigned I = 0; I < Op->getNumResults(); ++I)
      EXPECT_FALSE(Op->getResult(I).getType().isa<TensorType>())
          << Op->getName();
    EXPECT_FALSE(isa_op<lospn::BatchExtractOp>(Op));
    EXPECT_FALSE(isa_op<lospn::BatchCollectOp>(Op));
    if (isa_op<lospn::AllocOp>(Op))
      ++NumAllocs;
    if (isa_op<lospn::DeallocOp>(Op))
      ++NumDeallocs;
    if (isa_op<lospn::CopyOp>(Op))
      ++NumCopies;
  });
  EXPECT_GT(NumAllocs, 0u);      // intermediates between tasks
  EXPECT_EQ(NumAllocs, NumDeallocs);
  EXPECT_EQ(NumCopies, 0u);      // paper §IV-A5 copy avoidance
}

TEST_F(TransformsTest, BufferizationWithoutCopyAvoidanceEmitsCopies) {
  OwningOpRef<ModuleOp> Module = translate();
  PassManager PM(Ctx);
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass());
  transforms::BufferizationOptions Options;
  Options.AvoidCopies = false;
  PM.addPass(transforms::createBufferizationPass(Options));
  ASSERT_TRUE(succeeded(PM.run(Module.get().getOperation())));

  unsigned NumCopies = 0;
  Module.get().getOperation()->walk([&](Operation *Op) {
    if (isa_op<lospn::CopyOp>(Op))
      ++NumCopies;
  });
  EXPECT_EQ(NumCopies, 1u); // the returned tensor is copied out
}

TEST_F(TransformsTest, GpuTransferEliminationMarksIntermediates) {
  OwningOpRef<ModuleOp> Module = translate();
  PassManager PM(Ctx);
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass());
  partition::PartitionOptions PartOptions;
  PartOptions.MaxPartitionSize = 50;
  PM.addPass(transforms::createTaskPartitioningPass(PartOptions));
  PM.addPass(transforms::createBufferizationPass());
  PM.addPass(transforms::createGpuBufferTransferEliminationPass());
  ASSERT_TRUE(succeeded(PM.run(Module.get().getOperation())));

  unsigned NumResident = 0, NumAllocs = 0;
  Module.get().getOperation()->walk([&](Operation *Op) {
    if (lospn::AllocOp Alloc = dyn_cast_op<lospn::AllocOp>(Op)) {
      ++NumAllocs;
      if (Alloc.isDeviceResident())
        ++NumResident;
    }
  });
  EXPECT_GT(NumAllocs, 0u);
  EXPECT_EQ(NumResident, NumAllocs); // all intermediates stay on device
}

} // namespace
