# Empty compiler generated dependencies file for spnc_runtime.
# This may be replaced when dependencies are built.
