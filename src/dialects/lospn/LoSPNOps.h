//===- LoSPNOps.h - LoSPN dialect operations (paper Table II) --------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LoSPN dialect (paper §III-B): the lowering target for HiSPN,
/// representing the actual computation of a query. A query on a batch of
/// inputs is a `Kernel` comprising one or more `Tasks`; a task applies its
/// body to every sample of the batch. Arithmetic is binary (weighted sums
/// are decomposed into mul+add), and the `!lo_spn.log<T>` type requests
/// log-space computation.
///
/// Batch containers use the tensor type right after lowering from HiSPN
/// (value semantics ease reasoning across tasks) and the memref type after
/// bufferization (paper §IV-A5):
///
///   tensor form:  %out = lo_spn.task(%in : tensor)   { ... batch_extract /
///                 batch_collect ... }
///   memref form:  lo_spn.task(%in, %out : memref)    { ... batch_read /
///                 batch_write ... }
///
/// Intermediate buffers in memref form are created by `lo_spn.alloc` and
/// released by `lo_spn.dealloc`.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_DIALECTS_LOSPN_LOSPNOPS_H
#define SPNC_DIALECTS_LOSPN_LOSPNOPS_H

#include "ir/BuiltinOps.h"
#include "ir/OpDefinition.h"
#include "ir/PatternMatch.h"

namespace spnc {
namespace lospn {

/// The log-space computation type `!lo_spn.log<T>`: values are stored as
/// log-probabilities in the underlying float type, and the lowering emits
/// log-space arithmetic (mul -> add, add -> logsumexp).
class LogType : public ir::Type {
public:
  using ir::Type::Type;
  static LogType get(ir::Context &Ctx, ir::Type ElementType);
  ir::Type getElementType() const { return ir::Type(getImpl()->Element); }
  static bool classof(ir::Type T) {
    return T && T.getKind() == ir::TypeKind::Log;
  }
};

/// True if \p T is a log-space type.
inline bool isLogSpace(ir::Type T) { return T.isa<LogType>(); }

/// Returns the raw float type used to store values of computation type
/// \p T (identity for float types).
ir::Type getStorageType(ir::Type T);

/// Registers the LoSPN dialect with a context (idempotent). Also installs
/// the dialect's constant materializer.
void registerLoSPNDialect(ir::Context &Ctx);

//===----------------------------------------------------------------------===//
// Structure ops
//===----------------------------------------------------------------------===//

/// Function-like entry point for a compiled query (paper Table II).
/// Tensor form: block args are the input tensors, the terminating
/// `lo_spn.return` yields the result tensors. Memref form: block args are
/// input memrefs followed by output memrefs (split by the numInputs
/// attribute) and the return has no operands.
class KernelOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.kernel"; }
  static constexpr bool kIsPure = false;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    const std::string &Name, unsigned NumInputs);

  std::string getKernelName() const {
    return TheOp->getAttr("sym_name").cast<ir::StringAttr>().getValue();
  }
  unsigned getNumInputs() const {
    return static_cast<unsigned>(TheOp->getIntAttr("numInputs"));
  }
  ir::Block &getBody() { return TheOp->getRegion(0).front(); }
  /// True once bufferization rewrote the kernel to memref form.
  bool isBufferized();

  LogicalResult verify();
};

/// A computational task: applies its body to every sample in a batch.
/// The first region block argument is the batch index; the remaining
/// block arguments mirror the operands (paper Fig. 3).
class TaskOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.task"; }
  static constexpr bool kIsPure = false;
  static constexpr bool kIsTerminator = false;

  /// Builds a task. \p ResultTypes are the produced tensors (tensor form;
  /// empty in memref form). \p NumInputs tells how many leading operands
  /// are inputs (the rest are output buffers in memref form).
  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    std::span<const ir::Value> Operands,
                    std::span<const ir::Type> ResultTypes,
                    unsigned BatchSize, unsigned NumInputs);

  unsigned getBatchSize() const {
    return static_cast<unsigned>(TheOp->getIntAttr("batchSize"));
  }
  unsigned getNumInputs() const {
    return static_cast<unsigned>(TheOp->getIntAttr("numInputs"));
  }
  ir::Block &getBody() { return TheOp->getRegion(0).front(); }
  ir::Value getBatchIndex() { return getBody().getArgument(0); }
  /// Block argument mirroring operand \p OperandIdx.
  ir::Value getBodyArg(unsigned OperandIdx) {
    return getBody().getArgument(OperandIdx + 1);
  }

  LogicalResult verify();
};

/// Container for the per-sample arithmetic (paper Table II). Operands are
/// the scalar inputs (leaf evidence values); the single-block region
/// mirrors them as block arguments and yields the scalar results.
class BodyOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.body"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    std::span<const ir::Value> Operands,
                    std::span<const ir::Type> ResultTypes);

  ir::Block &getBody() { return TheOp->getRegion(0).front(); }

  LogicalResult verify();
};

/// Terminator yielding the results of a `lo_spn.body`.
class YieldOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.yield"; }
  static constexpr bool kIsPure = false;
  static constexpr bool kIsTerminator = true;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    std::span<const ir::Value> Values);
};

/// Terminator of a kernel body; yields result tensors in tensor form.
class ReturnOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.return"; }
  static constexpr bool kIsPure = false;
  static constexpr bool kIsTerminator = true;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    std::span<const ir::Value> Values);
};

//===----------------------------------------------------------------------===//
// Batch access ops
//===----------------------------------------------------------------------===//

/// Reads one feature of one sample from a tensor (tensor form).
/// `staticIndex` selects the feature; the operand index selects the
/// sample. With `transposed = true` the container layout is
/// [feature][sample] instead of [sample][feature].
class BatchExtractOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.batch_extract"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value Batch, ir::Value DynamicIndex,
                    unsigned StaticIndex, bool Transposed);

  unsigned getStaticIndex() const {
    return static_cast<unsigned>(TheOp->getIntAttr("staticIndex"));
  }
  bool getTransposed() const { return TheOp->getBoolAttr("transposed"); }

  LogicalResult verify();
};

/// Reads one feature of one sample from a memref (memref form).
class BatchReadOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.batch_read"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value BatchMem, ir::Value DynamicIndex,
                    unsigned StaticIndex, bool Transposed);

  unsigned getStaticIndex() const {
    return static_cast<unsigned>(TheOp->getIntAttr("staticIndex"));
  }
  bool getTransposed() const { return TheOp->getBoolAttr("transposed"); }

  LogicalResult verify();
};

/// Terminator of a task body in tensor form: records the per-sample
/// result values that make up the task's tensor results. (In the paper's
/// Table II batch_collect itself produces the tensor; here the tensor is
/// the task result and batch_collect terminates the body, which keeps all
/// container values at task granularity.)
class BatchCollectOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.batch_collect"; }
  static constexpr bool kIsPure = false;
  static constexpr bool kIsTerminator = true;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value BatchIndex,
                    std::span<const ir::Value> ResultValues,
                    bool Transposed);

  bool getTransposed() const { return TheOp->getBoolAttr("transposed"); }
};

/// Stores per-sample result values to an output memref (memref form
/// terminator).
class BatchWriteOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.batch_write"; }
  static constexpr bool kIsPure = false;
  static constexpr bool kIsTerminator = true;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value BatchMem, ir::Value BatchIndex,
                    std::span<const ir::Value> ResultValues,
                    bool Transposed);

  bool getTransposed() const { return TheOp->getBoolAttr("transposed"); }

  LogicalResult verify();
};

//===----------------------------------------------------------------------===//
// Buffer management ops (memref form)
//===----------------------------------------------------------------------===//

/// Allocates an intermediate result buffer. The `deviceResident`
/// attribute, set by the GPU copy-elimination pass (paper §IV-C), keeps
/// the buffer on the device across task boundaries.
class AllocOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.alloc"; }
  static constexpr bool kIsPure = false;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Type MemRefType);

  bool isDeviceResident() const {
    return TheOp->hasAttr("deviceResident");
  }

  LogicalResult verify();
};

/// Releases an intermediate result buffer.
class DeallocOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.dealloc"; }
  static constexpr bool kIsPure = false;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value MemRef);
};

/// Copies one buffer into another (used before copy elimination).
class CopyOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.copy"; }
  static constexpr bool kIsPure = false;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value Source, ir::Value Destination);
};

//===----------------------------------------------------------------------===//
// Arithmetic ops
//===----------------------------------------------------------------------===//

/// SPN multiplication. On `!lo_spn.log<T>` the generated code is a plain
/// float addition (paper §III-B).
class MulOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.mul"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value Lhs, ir::Value Rhs);

  LogicalResult verify();
  ir::Attribute fold(std::span<const ir::Attribute> Operands);
  static void getCanonicalizationPatterns(ir::PatternList &Patterns,
                                          ir::Context &Ctx);
};

/// SPN addition. On `!lo_spn.log<T>` the generated code computes
/// log(exp(a) + exp(b)) in a numerically stable way.
class AddOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.add"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value Lhs, ir::Value Rhs);

  LogicalResult verify();
  ir::Attribute fold(std::span<const ir::Attribute> Operands);
  static void getCanonicalizationPatterns(ir::PatternList &Patterns,
                                          ir::Context &Ctx);
};

/// SPN maximum, the sum-combine of max-product (MPE) queries. Because
/// max is monotonic under log, the generated code is the same plain
/// float max in linear and log space.
class MaxOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.max"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value Lhs, ir::Value Rhs);

  LogicalResult verify();
  ir::Attribute fold(std::span<const ir::Attribute> Operands);
};

/// Compile-time constant of a computation type. For log-space result
/// types the value attribute already stores the log of the probability.
class ConstantOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.constant"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;
  static constexpr bool kIsConstant = true;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    double Value, ir::Type ResultType);

  double getValue() const { return TheOp->getFloatAttr("value"); }

  LogicalResult verify();
};

//===----------------------------------------------------------------------===//
// Leaf ops
//===----------------------------------------------------------------------===//

/// Histogram leaf (memref of (lb, ub, p) triples, flattened). Computes
/// p(x) — or log p(x) for a log-space result type. With
/// `supportMarginal = true`, NaN evidence yields probability 1.
class HistogramOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.histogram"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value Index, const std::vector<double> &FlatBuckets,
                    bool SupportMarginal, ir::Type ResultType);

  std::vector<double> getFlatBuckets() const {
    return TheOp->getAttr("buckets").cast<ir::DenseF64Attr>().getValues();
  }
  unsigned getBucketCount() const {
    return static_cast<unsigned>(TheOp->getIntAttr("bucketCount"));
  }
  bool getSupportMarginal() const {
    return TheOp->getBoolAttr("supportMarginal");
  }

  LogicalResult verify();
};

/// Categorical leaf (probability table lookup).
class CategoricalOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.categorical"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value Index,
                    const std::vector<double> &Probabilities,
                    bool SupportMarginal, ir::Type ResultType);

  std::vector<double> getProbabilities() const {
    return TheOp->getAttr("probabilities")
        .cast<ir::DenseF64Attr>()
        .getValues();
  }
  bool getSupportMarginal() const {
    return TheOp->getBoolAttr("supportMarginal");
  }

  LogicalResult verify();
};

/// Gaussian leaf (probability density evaluation).
class GaussianOp : public ir::OpView {
public:
  using OpView::OpView;
  static const char *getOperationName() { return "lo_spn.gaussian"; }
  static constexpr bool kIsPure = true;
  static constexpr bool kIsTerminator = false;

  static void build(ir::OpBuilder &Builder, ir::OperationState &State,
                    ir::Value Evidence, double Mean, double StdDev,
                    bool SupportMarginal, ir::Type ResultType);

  double getMean() const { return TheOp->getFloatAttr("mean"); }
  double getStdDev() const { return TheOp->getFloatAttr("stddev"); }
  bool getSupportMarginal() const {
    return TheOp->getBoolAttr("supportMarginal");
  }

  LogicalResult verify();
};

//===----------------------------------------------------------------------===//
// Reference semantics used by folding, interpreters and codegen
//===----------------------------------------------------------------------===//

/// log(exp(A) + exp(B)) computed stably; the single source of truth for
/// log-space addition across folding, the VM and the baselines.
double logSumExp(double A, double B);

/// Evaluates a histogram leaf in linear space.
double evalHistogram(std::span<const double> FlatBuckets, double Evidence);
/// Evaluates a categorical leaf in linear space.
double evalCategorical(std::span<const double> Probabilities,
                       double Evidence);
/// Evaluates a Gaussian PDF in linear space.
double evalGaussianPdf(double Mean, double StdDev, double Evidence);
/// Evaluates a Gaussian log-PDF.
double evalGaussianLogPdf(double Mean, double StdDev, double Evidence);

} // namespace lospn
} // namespace spnc

#endif // SPNC_DIALECTS_LOSPN_LOSPNOPS_H
