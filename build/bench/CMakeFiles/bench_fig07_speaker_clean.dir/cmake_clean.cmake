file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_speaker_clean.dir/bench_fig07_speaker_clean.cpp.o"
  "CMakeFiles/bench_fig07_speaker_clean.dir/bench_fig07_speaker_clean.cpp.o.d"
  "bench_fig07_speaker_clean"
  "bench_fig07_speaker_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_speaker_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
