file(REMOVE_RECURSE
  "CMakeFiles/example_train_and_compile.dir/train_and_compile.cpp.o"
  "CMakeFiles/example_train_and_compile.dir/train_and_compile.cpp.o.d"
  "example_train_and_compile"
  "example_train_and_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_train_and_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
