# Empty compiler generated dependencies file for bench_ratspn_classify.
# This may be replaced when dependencies are built.
