//===- Compiler.cpp - End-to-end SPNC compilation driver -----------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/Compiler.h"

#include "backend/VmBackend.h"
#include "vm/ProgramBinary.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace spnc;
using namespace spnc::runtime;

Expected<CompiledKernel>
spnc::runtime::compileModel(const spn::Model &TheModel,
                            const spn::QueryConfig &Config,
                            const CompilerOptions &Options,
                            CompileStats *Stats) {
  Expected<CompilationPipeline> Pipeline =
      CompilationPipeline::create(Options);
  if (!Pipeline)
    return Pipeline.getError();
  backend::VmBackend Vm;
  Expected<backend::CompiledArtifact> Artifact =
      Vm.compile(*Pipeline, TheModel, Config, Stats);
  if (!Artifact)
    return Artifact.getError();
  return CompiledKernel(std::move(Artifact->Engine));
}

LogicalResult
spnc::runtime::saveCompiledKernel(const CompiledKernel &Kernel,
                                  const std::string &Path,
                                  std::string *ErrorMessage) {
  auto Fail = [&](const std::string &What) {
    if (ErrorMessage)
      *ErrorMessage = What + ": " + std::strerror(errno);
    return failure();
  };
  std::vector<uint8_t> Blob = vm::encodeProgram(Kernel.getProgram());
  // Write to a temporary sibling and rename into place, so an
  // interrupted or failed write never leaves a truncated .spnk at Path.
  std::string TempPath = Path + ".tmp";
  std::FILE *File = std::fopen(TempPath.c_str(), "wb");
  if (!File)
    return Fail("cannot create '" + TempPath + "'");
  size_t Written = std::fwrite(Blob.data(), 1, Blob.size(), File);
  if (Written != Blob.size()) {
    LogicalResult Result = Fail("short write to '" + TempPath + "'");
    std::fclose(File);
    std::remove(TempPath.c_str());
    return Result;
  }
  if (std::fclose(File) != 0) {
    LogicalResult Result = Fail("cannot flush '" + TempPath + "'");
    std::remove(TempPath.c_str());
    return Result;
  }
  if (std::rename(TempPath.c_str(), Path.c_str()) != 0) {
    LogicalResult Result =
        Fail("cannot rename '" + TempPath + "' to '" + Path + "'");
    std::remove(TempPath.c_str());
    return Result;
  }
  return success();
}

Expected<CompiledKernel> spnc::runtime::loadCompiledKernel(
    const std::string &Path, Target TheTarget,
    vm::ExecutionConfig Execution, gpusim::GpuDeviceConfig Device,
    unsigned GpuBlockSize) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeError("cannot open '" + Path +
                     "': " + std::strerror(errno));
  std::vector<uint8_t> Blob;
  uint8_t Chunk[4096];
  size_t Read;
  while ((Read = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Blob.insert(Blob.end(), Chunk, Chunk + Read);
  if (std::ferror(File)) {
    Error Err = makeError("cannot read '" + Path +
                          "': " + std::strerror(errno));
    std::fclose(File);
    return Err;
  }
  std::fclose(File);
  vm::BinaryInfo Info;
  Expected<vm::KernelProgram> Program = vm::decodeProgram(Blob, &Info);
  if (!Program)
    return makeError("cannot load '" + Path +
                     "': " + Program.getError().message());
  if (!Info.Checksummed)
    std::fprintf(stderr,
                 "warning: '%s' uses legacy kernel binary format v%u "
                 "(no checksum); re-save it to upgrade to v%u\n",
                 Path.c_str(), Info.Version, vm::kProgramBinaryVersion);

  // Resolve the engine from the lowering target recorded in the binary
  // header; warn when an explicit target contradicts it (the program
  // still runs — both engines execute either lowering).
  Target Recorded = Target::Auto;
  if (Program->Lowering == vm::LoweringKind::TableLookup)
    Recorded = Target::CPU;
  else if (Program->Lowering == vm::LoweringKind::SelectCascade)
    Recorded = Target::GPU;
  if (TheTarget == Target::Auto)
    TheTarget = Recorded == Target::Auto ? Target::CPU : Recorded;
  else if (Recorded != Target::Auto && TheTarget != Recorded)
    std::fprintf(stderr,
                 "warning: '%s' was compiled for the %s lowering but is "
                 "loaded on the %s engine\n",
                 Path.c_str(), targetName(Recorded),
                 targetName(TheTarget));

  CompilerOptions Options;
  Options.TheTarget = TheTarget;
  Options.Execution = Execution;
  Options.Device = Device;
  Options.GpuBlockSize = GpuBlockSize;
  Expected<PipelineConfig> Config = PipelineConfig::create(Options);
  if (!Config)
    return Config.getError();
  backend::VmBackend Vm;
  Expected<backend::CompiledArtifact> Artifact =
      Vm.materialize(Program.takeValue(), *Config);
  if (!Artifact)
    return Artifact.getError();
  return CompiledKernel(std::move(Artifact->Engine));
}
