file(REMOVE_RECURSE
  "CMakeFiles/learn_test.dir/learn_test.cpp.o"
  "CMakeFiles/learn_test.dir/learn_test.cpp.o.d"
  "learn_test"
  "learn_test.pdb"
  "learn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
