//===- InferenceServer.cpp - Sharded in-process serving with micro-batching ----===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "serving/InferenceServer.h"

#include "support/Hashing.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <limits>

using namespace spnc;
using namespace spnc::serving;

const char *spnc::serving::requestStatusName(RequestStatus Status) {
  switch (Status) {
  case RequestStatus::Ok:
    return "ok";
  case RequestStatus::Rejected:
    return "rejected";
  case RequestStatus::TimedOut:
    return "timed-out";
  case RequestStatus::ShutDown:
    return "shut-down";
  case RequestStatus::Failed:
    return "failed";
  }
  return "<invalid>";
}

const char *spnc::serving::priorityName(Priority ThePriority) {
  switch (ThePriority) {
  case Priority::Interactive:
    return "interactive";
  case Priority::Bulk:
    return "bulk";
  }
  return "<invalid>";
}

bool spnc::serving::parsePriority(const char *Text, Priority &Out) {
  if (std::strcmp(Text, "interactive") == 0) {
    Out = Priority::Interactive;
    return true;
  }
  if (std::strcmp(Text, "bulk") == 0) {
    Out = Priority::Bulk;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Internal request/batch/shard state
//===----------------------------------------------------------------------===//

/// One queued request: the copied input rows, the promise the submitter
/// holds the future of, and the timing the batcher schedules by.
struct InferenceServer::Request {
  ModelEntry *Model = nullptr;
  std::vector<double> Input;
  size_t NumSamples = 0;
  Priority ThePriority = Priority::Bulk;
  /// Weight-table index of the request's model inside a merged kernel;
  /// -1 on unmerged entries (docs/merging.md).
  int32_t TableIndex = -1;
  Promise<InferenceResult> ResultPromise;
  Clock::time_point Enqueued;
  /// time_point::max() when the request carries no deadline.
  Clock::time_point Deadline;
};

/// One registered model: the cache-acquired engine plus one request
/// queue per priority class. Queues and QueuedSamples are guarded by
/// the owning shard's mutex.
struct InferenceServer::ModelEntry {
  std::string Name;
  runtime::CompiledKernel Kernel;
  /// The query the engine was compiled for; runBatch dispatches on its
  /// Kind (likelihood vs MPE vs sampling entry point).
  spn::QueryConfig Query;
  unsigned NumFeatures = 0;
  /// True for the shared entry of a merge group: requests carry a
  /// weight-table index and batches execute through executeIndexed.
  bool Merged = false;
  /// Model names routed to this entry (1 unless Merged); Name is the
  /// first. Guarded by RoutingMutex, read only for error messages.
  size_t NumMembers = 1;
  std::array<std::deque<Request>, kNumPriorities> Queues;
  /// Samples queued (not yet formed into a batch), per class.
  std::array<size_t, kNumPriorities> QueuedSamples{};
};

/// A formed micro-batch: requests of one model and one priority class,
/// executed as one engine call.
struct InferenceServer::Batch {
  ModelEntry *Model = nullptr;
  Priority ThePriority = Priority::Bulk;
  std::vector<Request> Requests;
  size_t TotalSamples = 0;
};

/// One shard: an independent batcher + queues + worker pool with its own
/// mutex, so shards never contend with each other. Everything below
/// Mutex is guarded by it (the worker pool and batcher thread are
/// touched only at construction/shutdown).
struct InferenceServer::Shard {
  size_t Index = 0;
  mutable std::mutex Mutex;
  /// Wakes the shard's batcher on new work or shutdown.
  std::condition_variable WorkAvailable;
  /// Wakes submitters blocked on this shard when queue space frees up.
  std::condition_variable SpaceAvailable;

  /// Models placed on this shard, in registration order (the per-class
  /// round-robin order).
  std::vector<ModelEntry *> Models;

  /// Admission-counted samples: queued plus executing.
  size_t OutstandingSamples = 0;
  /// Per-class round-robin cursor into Models.
  std::array<size_t, kNumPriorities> NextModel{};
  /// Weighted-fair-queueing dispatch credits, refilled from the
  /// configured weights when both classes are spent.
  std::array<unsigned, kNumPriorities> Credits{};
  /// Batches handed to the worker pool but not yet completed. The
  /// batcher stops dispatching at NumWorkers + 1 (workers busy plus
  /// one queued) so that under backlog the WFQ decision happens at
  /// dispatch time — without this cap the whole backlog would sink
  /// into the pool's FIFO queue and priority order would be decided
  /// by arrival after all.
  size_t InFlightBatches = 0;
  bool ShuttingDown = false;

  ServerStats Stats;

  std::unique_ptr<ThreadPool> Workers;
  std::thread Batcher;
};

//===----------------------------------------------------------------------===//
// Construction / registration / placement
//===----------------------------------------------------------------------===//

InferenceServer::InferenceServer(ServerConfig TheConfig,
                                 runtime::KernelCache *SharedCache)
    : Config(TheConfig) {
  // Clamps are warned about, not silent: a tuner (or operator) that
  // asked for an illegal value should see the knob it actually got.
  if (Config.MaxBatchSamples < 1) {
    std::fprintf(stderr,
                 "warning: InferenceServer clamped MaxBatchSamples "
                 "from %zu to 1\n",
                 Config.MaxBatchSamples);
    Config.MaxBatchSamples = 1;
  }
  if (Config.NumWorkers < 1) {
    std::fprintf(stderr,
                 "warning: InferenceServer clamped NumWorkers from %u "
                 "to 1\n",
                 Config.NumWorkers);
    Config.NumWorkers = 1;
  }
  if (Config.NumShards < 1) {
    std::fprintf(stderr,
                 "warning: InferenceServer clamped NumShards from %u "
                 "to 1\n",
                 Config.NumShards);
    Config.NumShards = 1;
  }
  if (Config.InteractiveWeight < 1) {
    std::fprintf(stderr,
                 "warning: InferenceServer clamped InteractiveWeight "
                 "from %u to 1\n",
                 Config.InteractiveWeight);
    Config.InteractiveWeight = 1;
  }
  if (Config.BulkWeight < 1) {
    std::fprintf(stderr,
                 "warning: InferenceServer clamped BulkWeight from %u "
                 "to 1\n",
                 Config.BulkWeight);
    Config.BulkWeight = 1;
  }
  if (SharedCache) {
    Cache = SharedCache;
  } else {
    OwnedCache = std::make_unique<runtime::KernelCache>();
    Cache = OwnedCache.get();
  }
  StartTime = Clock::now();
  Shards.reserve(Config.NumShards);
  for (unsigned I = 0; I < Config.NumShards; ++I) {
    auto TheShard = std::make_unique<Shard>();
    TheShard->Index = I;
    TheShard->Credits = {Config.InteractiveWeight, Config.BulkWeight};
    TheShard->Workers = std::make_unique<ThreadPool>(Config.NumWorkers);
    Shard *Raw = TheShard.get();
    TheShard->Batcher = std::thread([this, Raw] { batcherLoop(*Raw); });
    Shards.push_back(std::move(TheShard));
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

size_t InferenceServer::placeOnShard(uint64_t ModelHash,
                                     size_t NumShards) {
  assert(NumShards > 0 && "placement needs at least one shard");
  if (NumShards == 1)
    return 0;
  // Consistent-hash ring with virtual nodes: each shard owns
  // kVirtualNodes deterministic points; a model lands on the owner of
  // the first point at or after its hash (wrapping). Points come from
  // splitmix64 over the (shard, virtual-node) key, so the placement is
  // stable across runs and processes, and 256 points per shard keep the
  // per-shard load within ~10% of even. Placement runs once per
  // addModel, so the O(NumShards * kVirtualNodes) scan is irrelevant.
  constexpr size_t kVirtualNodes = 256;
  uint64_t Best = 0;
  size_t BestShard = 0;
  bool HaveBest = false;
  uint64_t WrapBest = 0;
  size_t WrapShard = 0;
  bool HaveWrap = false;
  for (size_t S = 0; S < NumShards; ++S) {
    for (size_t V = 0; V < kVirtualNodes; ++V) {
      uint64_t Point =
          splitmix64(static_cast<uint64_t>(S) * 0x100000001ULL +
                     static_cast<uint64_t>(V));
      // Track the smallest point overall (the wrap-around owner) and
      // the smallest point >= the model hash (the successor owner).
      if (!HaveWrap || Point < WrapBest) {
        WrapBest = Point;
        WrapShard = S;
        HaveWrap = true;
      }
      if (Point >= ModelHash && (!HaveBest || Point < Best)) {
        Best = Point;
        BestShard = S;
        HaveBest = true;
      }
    }
  }
  return HaveBest ? BestShard : WrapShard;
}

std::optional<Error>
InferenceServer::addModel(const std::string &Name,
                          const spn::Model &Model,
                          const spn::QueryConfig &Query,
                          const runtime::CompilerOptions &Options) {
  if (ShuttingDown.load())
    return makeError("cannot register model '" + Name +
                     "': server is shutting down");
  {
    std::lock_guard<std::mutex> Lock(RoutingMutex);
    if (Routing.count(Name))
      return makeError("model '" + Name + "' is already registered");
  }

  // Per-worker device streams: a GPU model whose device config leaves
  // NumStreams at 0 (auto) gets one stream per shard worker, so
  // NumWorkers > 1 overlaps on the simulated device instead of
  // serializing on the default stream. An explicit NumStreams wins.
  runtime::CompilerOptions Effective = Options;
  if (Effective.TheTarget == runtime::Target::GPU &&
      Effective.Device.NumStreams == 0)
    Effective.Device.NumStreams = Config.NumWorkers;

  // Merged serving, where the parameterized path supports it (CPU
  // targets, likelihood queries — docs/merging.md). Everything else
  // falls through to the per-model path below, merging or not.
  if (Config.MergeModels &&
      Effective.TheTarget != runtime::Target::GPU &&
      (Query.Kind == spn::QueryKind::Joint ||
       Query.Kind == spn::QueryKind::Marginal))
    return addMergedModel(Name, Model, Query, Effective);

  // Compile (or fetch) outside the locks: compilation is slow and the
  // cache serializes same-key work internally. The cache is shared by
  // every shard, so two models with the same cache key compile once no
  // matter where placement puts them.
  Expected<runtime::CompiledKernel> Kernel =
      Cache->getOrCompile(Model, Query, Effective);
  if (!Kernel)
    return Kernel.getError();

  size_t ShardIndex =
      placeOnShard(runtime::KernelCache::hashModel(Model), Shards.size());
  Shard &TheShard = *Shards[ShardIndex];

  auto Entry = std::make_unique<ModelEntry>();
  Entry->Name = Name;
  Entry->Kernel = Kernel.takeValue();
  Entry->Query = Query;
  Entry->NumFeatures = Model.getNumFeatures();
  ModelEntry *Raw = Entry.get();

  // Publish: route first under RoutingMutex (re-checking the duplicate
  // race), then hand the entry to its shard. A name is only routable
  // once its entry pointer is valid, so ordering here is safe.
  {
    std::lock_guard<std::mutex> Lock(RoutingMutex);
    if (ShuttingDown.load())
      return makeError("cannot register model '" + Name +
                       "': server is shutting down");
    auto [It, Inserted] = Routing.emplace(
        Name, Route{ShardIndex, Raw, Entry->NumFeatures});
    (void)It;
    if (!Inserted)
      return makeError("model '" + Name + "' is already registered");
  }
  {
    std::lock_guard<std::mutex> Lock(TheShard.Mutex);
    TheShard.Models.push_back(Raw);
  }
  OwnedModels.push_back(std::move(Entry));
  return std::nullopt;
}

std::optional<Error>
InferenceServer::addMergedModel(const std::string &Name,
                                const spn::Model &Model,
                                const spn::QueryConfig &Query,
                                const runtime::CompilerOptions &Options) {
  // One parameterized kernel per merge group: the cache keys on the
  // structural hash, so every isomorphic model returns the same engine
  // with its own weight-table index (docs/merging.md).
  Expected<runtime::KernelCache::MergedKernel> Merged =
      Cache->getOrCompileMerged(Model, Query, Options);
  if (!Merged)
    return Merged.getError();

  // Placement hashes the structural hash, not the content hash: every
  // member of a merge group must land on the shard that owns the
  // group's shared queue.
  size_t ShardIndex = placeOnShard(
      runtime::KernelCache::structuralHash(Model), Shards.size());
  Shard &TheShard = *Shards[ShardIndex];
  const void *EngineKey = Merged->Kernel.getEngineShared().get();

  std::unique_ptr<ModelEntry> Fresh;
  ModelEntry *Raw = nullptr;
  {
    std::lock_guard<std::mutex> Lock(RoutingMutex);
    if (ShuttingDown.load())
      return makeError("cannot register model '" + Name +
                       "': server is shutting down");
    auto GroupIt = MergedGroups.find(EngineKey);
    if (GroupIt != MergedGroups.end()) {
      // An isomorphic sibling already serves this group; the new name
      // joins its entry (and therefore its queues and batches).
      Raw = GroupIt->second;
      assert(Raw->NumFeatures == Model.getNumFeatures() &&
             "isomorphic models disagree on feature count");
    } else {
      Fresh = std::make_unique<ModelEntry>();
      Fresh->Name = Name;
      Fresh->Kernel = Merged->Kernel;
      Fresh->Query = Query;
      Fresh->NumFeatures = Model.getNumFeatures();
      Fresh->Merged = true;
      Raw = Fresh.get();
    }
    auto [It, Inserted] = Routing.emplace(
        Name,
        Route{ShardIndex, Raw, Raw->NumFeatures, Merged->TableIndex});
    (void)It;
    if (!Inserted)
      return makeError("model '" + Name + "' is already registered");
    if (Fresh)
      MergedGroups.emplace(EngineKey, Raw);
    else
      ++Raw->NumMembers;
  }
  if (Fresh) {
    {
      std::lock_guard<std::mutex> Lock(TheShard.Mutex);
      TheShard.Models.push_back(Raw);
    }
    OwnedModels.push_back(std::move(Fresh));
  }
  return std::nullopt;
}

bool InferenceServer::hasModel(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(RoutingMutex);
  return Routing.count(Name) != 0;
}

unsigned InferenceServer::getNumFeatures(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(RoutingMutex);
  auto It = Routing.find(Name);
  return It == Routing.end() ? 0 : It->second.NumFeatures;
}

std::optional<size_t>
InferenceServer::getModelShard(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(RoutingMutex);
  auto It = Routing.find(Name);
  if (It == Routing.end())
    return std::nullopt;
  return It->second.ShardIndex;
}

std::optional<int32_t>
InferenceServer::getModelTableIndex(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(RoutingMutex);
  auto It = Routing.find(Name);
  if (It == Routing.end() || It->second.TableIndex < 0)
    return std::nullopt;
  return It->second.TableIndex;
}

//===----------------------------------------------------------------------===//
// Submission / admission control
//===----------------------------------------------------------------------===//

namespace {

/// A future completed on the spot (rejections, shutdown refusals).
ResultFuture immediateResult(RequestStatus Status, std::string Message) {
  Promise<InferenceResult> ThePromise;
  ResultFuture TheFuture = ThePromise.getFuture();
  InferenceResult Result;
  Result.Status = Status;
  Result.Message = std::move(Message);
  ThePromise.set(std::move(Result));
  return TheFuture;
}

} // namespace

ResultFuture InferenceServer::submit(const std::string &Name,
                                     const double *Samples,
                                     size_t NumSamples,
                                     uint64_t DeadlineUs,
                                     Priority ThePriority) {
  // Route under the (cheap, map-lookup-only) routing lock. Submits that
  // never reach a shard are counted here so the aggregate stays exact.
  Route TheRoute;
  {
    std::lock_guard<std::mutex> Lock(RoutingMutex);
    if (ShuttingDown.load()) {
      ++RoutingSubmittedRequests;
      RoutingSubmittedSamples += NumSamples;
      return immediateResult(RequestStatus::ShutDown,
                             "server is shutting down");
    }
    auto It = Routing.find(Name);
    if (It == Routing.end()) {
      ++RoutingSubmittedRequests;
      RoutingSubmittedSamples += NumSamples;
      ++RoutingRejectedRequests;
      return immediateResult(RequestStatus::Rejected,
                             "unknown model '" + Name + "'");
    }
    if (NumSamples == 0) {
      ++RoutingSubmittedRequests;
      ++RoutingRejectedRequests;
      return immediateResult(RequestStatus::Rejected,
                             "request carries no samples");
    }
    TheRoute = It->second;
  }

  Shard &TheShard = *Shards[TheRoute.ShardIndex];
  std::unique_lock<std::mutex> Lock(TheShard.Mutex);
  ++TheShard.Stats.SubmittedRequests;
  TheShard.Stats.SubmittedSamples += NumSamples;

  if (TheShard.ShuttingDown)
    return immediateResult(RequestStatus::ShutDown,
                           "server is shutting down");

  if (Config.MaxQueueDepth > 0 &&
      TheShard.OutstandingSamples + NumSamples > Config.MaxQueueDepth) {
    if (Config.Admission == ServerConfig::AdmissionPolicy::Reject) {
      ++TheShard.Stats.RejectedRequests;
      return immediateResult(
          RequestStatus::Rejected,
          "queue full (" +
              std::to_string(TheShard.OutstandingSamples) + " of " +
              std::to_string(Config.MaxQueueDepth) +
              " samples outstanding on shard " +
              std::to_string(TheShard.Index) + ")");
    }
    ++TheShard.Stats.BlockedSubmits;
    TheShard.SpaceAvailable.wait(Lock, [&] {
      return TheShard.ShuttingDown ||
             TheShard.OutstandingSamples + NumSamples <=
                 Config.MaxQueueDepth;
    });
    if (TheShard.ShuttingDown)
      return immediateResult(RequestStatus::ShutDown,
                             "server shut down while waiting for queue "
                             "space");
  }

  ModelEntry &Model = *TheRoute.Model;
  Request TheRequest;
  TheRequest.Model = &Model;
  TheRequest.Input.assign(Samples,
                          Samples + NumSamples * Model.NumFeatures);
  TheRequest.NumSamples = NumSamples;
  TheRequest.ThePriority = ThePriority;
  TheRequest.TableIndex = TheRoute.TableIndex;
  TheRequest.Enqueued = Clock::now();
  uint64_t EffectiveDeadlineUs =
      DeadlineUs ? DeadlineUs : Config.DefaultDeadlineUs;
  TheRequest.Deadline =
      EffectiveDeadlineUs
          ? TheRequest.Enqueued +
                std::chrono::microseconds(EffectiveDeadlineUs)
          : Clock::time_point::max();
  ResultFuture TheFuture = TheRequest.ResultPromise.getFuture();

  size_t Class = static_cast<size_t>(ThePriority);
  Model.Queues[Class].push_back(std::move(TheRequest));
  Model.QueuedSamples[Class] += NumSamples;
  TheShard.OutstandingSamples += NumSamples;
  TheShard.Stats.PeakQueueDepth = std::max(
      TheShard.Stats.PeakQueueDepth, TheShard.OutstandingSamples);
  TheShard.WorkAvailable.notify_one();
  return TheFuture;
}

//===----------------------------------------------------------------------===//
// Batcher (per shard)
//===----------------------------------------------------------------------===//

void InferenceServer::failRequest(Request &TheRequest,
                                  RequestStatus Status,
                                  std::string Message) {
  InferenceResult Result;
  Result.Status = Status;
  Result.Message = std::move(Message);
  Result.LatencyNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - TheRequest.Enqueued)
          .count());
  TheRequest.ResultPromise.set(std::move(Result));
}

void InferenceServer::collectExpired(Shard &TheShard,
                                     Clock::time_point Now,
                                     std::vector<Request> &Expired) {
  for (ModelEntry *Model : TheShard.Models) {
    for (size_t Class = 0; Class < kNumPriorities; ++Class) {
      std::deque<Request> &Queue = Model->Queues[Class];
      for (auto It = Queue.begin(); It != Queue.end();) {
        if (It->Deadline > Now) {
          ++It;
          continue;
        }
        Model->QueuedSamples[Class] -= It->NumSamples;
        TheShard.OutstandingSamples -= It->NumSamples;
        ++TheShard.Stats.TimedOutRequests;
        Expired.push_back(std::move(*It));
        It = Queue.erase(It);
      }
    }
  }
  if (!Expired.empty())
    TheShard.SpaceAvailable.notify_all();
}

bool InferenceServer::selectReady(Shard &TheShard, Clock::time_point Now,
                                  ModelEntry *&Model,
                                  Priority &ThePriority) {
  std::chrono::microseconds Delay(Config.MaxQueueDelayUs);
  // A (model, class) queue is dispatchable when the sample cap is
  // reached, the oldest rider has waited out the batching window, or
  // the shard is draining.
  auto FindReady = [&](size_t Class) -> ModelEntry * {
    for (size_t I = 0; I < TheShard.Models.size(); ++I) {
      ModelEntry *Candidate =
          TheShard.Models[(TheShard.NextModel[Class] + I) %
                          TheShard.Models.size()];
      std::deque<Request> &Queue = Candidate->Queues[Class];
      if (Queue.empty())
        continue;
      if (TheShard.ShuttingDown ||
          Candidate->QueuedSamples[Class] >= Config.MaxBatchSamples ||
          Queue.front().Enqueued + Delay <= Now) {
        TheShard.NextModel[Class] =
            (TheShard.NextModel[Class] + I + 1) %
            TheShard.Models.size();
        return Candidate;
      }
    }
    return nullptr;
  };

  // Weighted fair queueing over the two classes: a dispatch charges the
  // class one credit; when both classes are spent, refill from the
  // configured weights. Pass 0 honors credits; pass 1 is the
  // work-conserving fallback — if only a spent (or only one) class has
  // ready work, it dispatches anyway without charge, keeping the other
  // class's credit for when its traffic returns.
  if (TheShard.Credits[0] == 0 && TheShard.Credits[1] == 0)
    TheShard.Credits = {Config.InteractiveWeight, Config.BulkWeight};
  for (int Pass = 0; Pass < 2; ++Pass) {
    for (size_t Class = 0; Class < kNumPriorities; ++Class) {
      if (Pass == 0 && TheShard.Credits[Class] == 0)
        continue;
      if (ModelEntry *Candidate = FindReady(Class)) {
        if (Pass == 0)
          --TheShard.Credits[Class];
        Model = Candidate;
        ThePriority = static_cast<Priority>(Class);
        return true;
      }
    }
  }
  return false;
}

InferenceServer::Batch InferenceServer::formBatch(Shard &,
                                                  ModelEntry &Model,
                                                  Priority ThePriority) {
  size_t Class = static_cast<size_t>(ThePriority);
  std::deque<Request> &Queue = Model.Queues[Class];
  Batch TheBatch;
  TheBatch.Model = &Model;
  TheBatch.ThePriority = ThePriority;
  while (!Queue.empty()) {
    Request &Front = Queue.front();
    // Always take at least one request; a single oversized request
    // becomes its own (over-cap) batch rather than being unservable.
    if (!TheBatch.Requests.empty() &&
        TheBatch.TotalSamples + Front.NumSamples >
            Config.MaxBatchSamples)
      break;
    TheBatch.TotalSamples += Front.NumSamples;
    Model.QueuedSamples[Class] -= Front.NumSamples;
    TheBatch.Requests.push_back(std::move(Front));
    Queue.pop_front();
  }
  return TheBatch;
}

void InferenceServer::batcherLoop(Shard &TheShard) {
  std::unique_lock<std::mutex> Lock(TheShard.Mutex);
  for (;;) {
    Clock::time_point Now = Clock::now();

    // 1. Expired requests leave the queue before they can occupy a
    // batch slot. Their promises are completed outside the lock.
    std::vector<Request> Expired;
    collectExpired(TheShard, Now, Expired);
    if (!Expired.empty()) {
      Lock.unlock();
      for (Request &TheRequest : Expired)
        failRequest(TheRequest, RequestStatus::TimedOut,
                    "deadline expired after " +
                        std::to_string(
                            std::chrono::duration_cast<
                                std::chrono::microseconds>(
                                Now - TheRequest.Enqueued)
                                .count()) +
                        " us in queue");
      Lock.lock();
      continue;
    }

    // 2. Dispatch the next ready (model, class) pair per the WFQ
    // credits; round-robin within the class keeps one hot model from
    // starving the others. Dispatch is throttled to the workers plus
    // one queued batch: requests the workers cannot start yet stay in
    // the class queues, where a later Interactive arrival can still
    // overtake them.
    bool Throttled =
        TheShard.InFlightBatches >= Config.NumWorkers + size_t(1);
    ModelEntry *Ready = nullptr;
    Priority ReadyPriority = Priority::Bulk;
    if (!Throttled && selectReady(TheShard, Now, Ready, ReadyPriority)) {
      auto TheBatch = std::make_shared<Batch>(
          formBatch(TheShard, *Ready, ReadyPriority));
      ++TheShard.InFlightBatches;
      ++TheShard.Stats.BatchesDispatched;
      TheShard.Stats.BatchSizes.record(TheBatch->TotalSamples);
      Lock.unlock();
      // shared_ptr wrapper: std::function requires a copyable callable,
      // and a Batch owns move-only promises.
      TheShard.Workers->submit([this, &TheShard, TheBatch] {
        runBatch(TheShard, std::move(*TheBatch));
      });
      Lock.lock();
      continue;
    }

    // 3. Nothing dispatchable. Exit once draining is complete,
    // otherwise sleep until the earliest batching window or deadline
    // comes due. While throttled only deadlines matter — batch
    // completion wakes WorkAvailable, so the batching windows need no
    // timer (re-arming them here would spin when the window is
    // already open).
    std::chrono::microseconds Delay(Config.MaxQueueDelayUs);
    bool AnyQueued = false;
    Clock::time_point WakeAt = Clock::time_point::max();
    for (ModelEntry *Model : TheShard.Models) {
      for (size_t Class = 0; Class < kNumPriorities; ++Class) {
        const std::deque<Request> &Queue = Model->Queues[Class];
        if (Queue.empty())
          continue;
        AnyQueued = true;
        if (!Throttled)
          WakeAt = std::min(WakeAt, Queue.front().Enqueued + Delay);
        for (const Request &TheRequest : Queue)
          WakeAt = std::min(WakeAt, TheRequest.Deadline);
      }
    }
    if (TheShard.ShuttingDown && !AnyQueued)
      return;
    if (!AnyQueued || WakeAt == Clock::time_point::max())
      TheShard.WorkAvailable.wait(Lock);
    else
      TheShard.WorkAvailable.wait_until(Lock, WakeAt);
  }
}

void InferenceServer::runBatch(Shard &TheShard, Batch TheBatch) {
  ModelEntry &Model = *TheBatch.Model;
  size_t NumFeatures = Model.NumFeatures;

  // Merged batches mix requests for different models of one merge
  // group. Grouping same-model rows together (stable within a model,
  // so FIFO order inside each model holds) lets executeIndexed run
  // maximal per-table spans; the output scatter below walks the same
  // sorted order, so each rider still gets its own rows back.
  if (Model.Merged)
    std::stable_sort(TheBatch.Requests.begin(), TheBatch.Requests.end(),
                     [](const Request &A, const Request &B) {
                       return A.TableIndex < B.TableIndex;
                     });

  // Gather the request rows into one contiguous batch buffer (plus the
  // per-row weight-table indices when merged).
  std::vector<double> Input(TheBatch.TotalSamples * NumFeatures);
  std::vector<double> Output(TheBatch.TotalSamples);
  std::vector<uint32_t> TableIndices;
  if (Model.Merged)
    TableIndices.reserve(TheBatch.TotalSamples);
  size_t DistinctTables = 0;
  size_t Offset = 0;
  for (const Request &TheRequest : TheBatch.Requests) {
    std::copy(TheRequest.Input.begin(), TheRequest.Input.end(),
              Input.begin() +
                  static_cast<ptrdiff_t>(Offset * NumFeatures));
    if (Model.Merged) {
      if (TableIndices.empty() ||
          TableIndices.back() !=
              static_cast<uint32_t>(TheRequest.TableIndex))
        ++DistinctTables;
      TableIndices.insert(TableIndices.end(), TheRequest.NumSamples,
                          static_cast<uint32_t>(TheRequest.TableIndex));
    }
    Offset += TheRequest.NumSamples;
  }

  // Dispatch on the query kind the model was compiled for. Likelihood
  // queries fill Output only; MPE fills Rows (assignments) and Output
  // (log-probabilities); sampling fills Rows only, seeded from the
  // configured base seed decorrelated per dispatched batch (the counter
  // is server-wide, so no two batches of any shard share a stream).
  std::vector<double> Rows;
  bool Executed = true;
  runtime::ExecutionStats ExecStats;
  switch (Model.Query.Kind) {
  case spn::QueryKind::Joint:
  case spn::QueryKind::Marginal:
    if (Model.Merged)
      Executed = Model.Kernel.executeIndexed(
          Input.data(), TableIndices.data(), Output.data(),
          TheBatch.TotalSamples, &ExecStats);
    else
      Model.Kernel.execute(Input.data(), Output.data(),
                           TheBatch.TotalSamples, &ExecStats);
    break;
  case spn::QueryKind::Mpe:
    Rows.resize(TheBatch.TotalSamples * NumFeatures);
    Executed = Model.Kernel.executeMpe(Input.data(), Rows.data(),
                                       Output.data(),
                                       TheBatch.TotalSamples, &ExecStats);
    break;
  case spn::QueryKind::Sample: {
    Rows.resize(TheBatch.TotalSamples * NumFeatures);
    uint64_t BatchSeed =
        Config.SampleSeed ^
        (0x9e3779b97f4a7c15ULL * (SampleBatchCounter.fetch_add(1) + 1));
    Executed = Model.Kernel.executeSample(Input.data(), Rows.data(),
                                          TheBatch.TotalSamples,
                                          BatchSeed, &ExecStats);
    break;
  }
  }
  Clock::time_point Done = Clock::now();

  // Account first, then complete the promises: a submitter that
  // observes its future ready sees the completion in getStats() too.
  std::vector<uint64_t> Latencies;
  Latencies.reserve(TheBatch.Requests.size());
  for (const Request &TheRequest : TheBatch.Requests)
    Latencies.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Done - TheRequest.Enqueued)
            .count()));
  {
    std::lock_guard<std::mutex> Lock(TheShard.Mutex);
    if (Executed) {
      TheShard.Stats.CompletedRequests += TheBatch.Requests.size();
      TheShard.Stats.CompletedSamples += TheBatch.TotalSamples;
      TheShard.Stats.ExecutionNs += ExecStats.WallNs;
      if (DistinctTables >= 2)
        ++TheShard.Stats.CrossModelBatches;
      size_t Class = static_cast<size_t>(TheBatch.ThePriority);
      for (uint64_t Latency : Latencies) {
        TheShard.Stats.LatencyNs.record(Latency);
        TheShard.Stats.LatencyNsByPriority[Class].record(Latency);
      }
    }
    TheShard.OutstandingSamples -= TheBatch.TotalSamples;
    --TheShard.InFlightBatches;
    TheShard.SpaceAvailable.notify_all();
    // The batcher may be waiting on the dispatch throttle.
    TheShard.WorkAvailable.notify_all();
  }

  if (!Executed) {
    // The engine refused the batch (it cannot serve this query kind,
    // or execution failed outright). Every rider fails; the samples
    // were already released from admission accounting above.
    for (Request &TheRequest : TheBatch.Requests)
      failRequest(TheRequest, RequestStatus::Failed,
                  "engine failed to execute the batch for model '" +
                      Model.Name + "'");
    return;
  }

  bool WantRows = Model.Query.Kind == spn::QueryKind::Mpe ||
                  Model.Query.Kind == spn::QueryKind::Sample;
  bool WantLogLikelihoods = Model.Query.Kind != spn::QueryKind::Sample;
  Offset = 0;
  for (size_t I = 0; I < TheBatch.Requests.size(); ++I) {
    Request &TheRequest = TheBatch.Requests[I];
    InferenceResult Result;
    Result.Status = RequestStatus::Ok;
    if (WantLogLikelihoods)
      Result.LogLikelihoods.assign(
          Output.begin() + static_cast<ptrdiff_t>(Offset),
          Output.begin() +
              static_cast<ptrdiff_t>(Offset + TheRequest.NumSamples));
    if (WantRows)
      Result.Rows.assign(
          Rows.begin() +
              static_cast<ptrdiff_t>(Offset * NumFeatures),
          Rows.begin() +
              static_cast<ptrdiff_t>(
                  (Offset + TheRequest.NumSamples) * NumFeatures));
    Result.LatencyNs = Latencies[I];
    Result.BatchSamples = TheBatch.TotalSamples;
    Offset += TheRequest.NumSamples;
    TheRequest.ResultPromise.set(std::move(Result));
  }
}

//===----------------------------------------------------------------------===//
// Shutdown / stats
//===----------------------------------------------------------------------===//

void InferenceServer::shutdown() {
  // Serializes concurrent shutdown() calls (user + destructor).
  std::lock_guard<std::mutex> ShutdownLock(ShutdownMutex);
  if (ShutdownComplete)
    return;
  ShuttingDown.store(true);
  // Flag every shard, then wake everyone: the batchers drain, blocked
  // submitters give up.
  for (auto &TheShard : Shards) {
    {
      std::lock_guard<std::mutex> Lock(TheShard->Mutex);
      TheShard->ShuttingDown = true;
    }
    TheShard->WorkAvailable.notify_all();
    TheShard->SpaceAvailable.notify_all();
  }
  for (auto &TheShard : Shards) {
    if (TheShard->Batcher.joinable())
      TheShard->Batcher.join();
    // The batcher exited with empty queues; wait for the dispatched
    // batches to finish so every accepted future is completed.
    TheShard->Workers->wait();
    std::lock_guard<std::mutex> Lock(TheShard->Mutex);
    assert(TheShard->OutstandingSamples == 0 &&
           "shutdown drained but work remains outstanding");
  }
  ShutdownComplete = true;
}

ServerStats InferenceServer::getShardStats(size_t ShardIndex) const {
  assert(ShardIndex < Shards.size() && "shard index out of range");
  const Shard &TheShard = *Shards[ShardIndex];
  std::lock_guard<std::mutex> Lock(TheShard.Mutex);
  ServerStats Snapshot = TheShard.Stats;
  Snapshot.QueueDepth = TheShard.OutstandingSamples;
  Snapshot.ElapsedNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - StartTime)
          .count());
  return Snapshot;
}

std::vector<ServerStats> InferenceServer::getAllShardStats() const {
  std::vector<ServerStats> All;
  All.reserve(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I)
    All.push_back(getShardStats(I));
  return All;
}

ServerStats InferenceServer::getStats() const {
  // Aggregate: counters summed, histograms merged. Shards are snapshot
  // one at a time, so the aggregate is per-shard-consistent (exact
  // after quiescence; during traffic each shard's slice is itself
  // consistent).
  ServerStats Aggregate;
  for (size_t I = 0; I < Shards.size(); ++I) {
    ServerStats S = getShardStats(I);
    Aggregate.SubmittedRequests += S.SubmittedRequests;
    Aggregate.SubmittedSamples += S.SubmittedSamples;
    Aggregate.CompletedRequests += S.CompletedRequests;
    Aggregate.CompletedSamples += S.CompletedSamples;
    Aggregate.RejectedRequests += S.RejectedRequests;
    Aggregate.BlockedSubmits += S.BlockedSubmits;
    Aggregate.TimedOutRequests += S.TimedOutRequests;
    Aggregate.BatchesDispatched += S.BatchesDispatched;
    Aggregate.CrossModelBatches += S.CrossModelBatches;
    Aggregate.QueueDepth += S.QueueDepth;
    Aggregate.PeakQueueDepth += S.PeakQueueDepth;
    Aggregate.ExecutionNs += S.ExecutionNs;
    Aggregate.BatchSizes.merge(S.BatchSizes);
    Aggregate.LatencyNs.merge(S.LatencyNs);
    for (size_t Class = 0; Class < kNumPriorities; ++Class)
      Aggregate.LatencyNsByPriority[Class].merge(
          S.LatencyNsByPriority[Class]);
  }
  {
    std::lock_guard<std::mutex> Lock(RoutingMutex);
    Aggregate.SubmittedRequests += RoutingSubmittedRequests;
    Aggregate.SubmittedSamples += RoutingSubmittedSamples;
    Aggregate.RejectedRequests += RoutingRejectedRequests;
  }
  Aggregate.ElapsedNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - StartTime)
          .count());
  return Aggregate;
}
