# Empty dependencies file for bench_compile_breakdown.
# This may be replaced when dependencies are built.
