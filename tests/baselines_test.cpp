//===- baselines_test.cpp - Baseline executor tests ------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace spnc;
using namespace spnc::baselines;

namespace {

class BaselinesTest : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override {
    workloads::SpeakerModelOptions Options;
    Options.TargetOperations = 500;
    Options.Seed = GetParam();
    Model = std::make_unique<spn::Model>(
        workloads::generateSpeakerModel(Options));
    Data = workloads::generateSpeechData(Options, kNumSamples,
                                         GetParam() + 100);
  }

  static constexpr size_t kNumSamples = 50;
  std::unique_ptr<spn::Model> Model;
  std::vector<double> Data;
};

TEST_P(BaselinesTest, InterpreterMatchesReference) {
  SPFlowInterpreter Interp(*Model);
  std::vector<double> Output(kNumSamples);
  Interp.execute(Data.data(), Output.data(), kNumSamples);
  unsigned F = Model->getNumFeatures();
  for (size_t S = 0; S < kNumSamples; ++S) {
    double Reference = Model->evalLogLikelihood(
        std::span<const double>(&Data[S * F], F));
    EXPECT_NEAR(Output[S], Reference, 1e-9) << "sample " << S;
  }
}

TEST_P(BaselinesTest, TfExecutorMatchesReference) {
  TfGraphExecutor Tf(*Model);
  std::vector<double> Output(kNumSamples);
  Tf.execute(Data.data(), Output.data(), kNumSamples);
  unsigned F = Model->getNumFeatures();
  for (size_t S = 0; S < kNumSamples; ++S) {
    double Reference = Model->evalLogLikelihood(
        std::span<const double>(&Data[S * F], F));
    EXPECT_NEAR(Output[S], Reference, 1e-9) << "sample " << S;
  }
}

TEST_P(BaselinesTest, InterpreterSupportsMarginalization) {
  workloads::SpeakerModelOptions Options;
  Options.TargetOperations = 500;
  Options.Seed = GetParam();
  std::vector<double> Noisy = workloads::generateNoisySpeechData(
      Options, kNumSamples, GetParam() + 7);
  SPFlowInterpreter Interp(*Model);
  std::vector<double> Output(kNumSamples);
  Interp.execute(Noisy.data(), Output.data(), kNumSamples);
  unsigned F = Model->getNumFeatures();
  for (size_t S = 0; S < kNumSamples; ++S) {
    double Reference = Model->evalLogLikelihood(
        std::span<const double>(&Noisy[S * F], F));
    EXPECT_NEAR(Output[S], Reference, 1e-9) << "sample " << S;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselinesTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(BaselinesEdgeTest, EmptyBatch) {
  spn::Model M(1);
  M.setRoot(M.makeGaussian(0, 0.0, 1.0));
  SPFlowInterpreter Interp(M);
  TfGraphExecutor Tf(M);
  Interp.execute(nullptr, nullptr, 0);
  Tf.execute(nullptr, nullptr, 0);
}

TEST(BaselinesEdgeTest, SingleLeafModel) {
  spn::Model M(1);
  M.setRoot(M.makeCategorical(0, {0.25, 0.75}));
  double Input[2] = {0.0, 1.0};
  double Output[2];
  SPFlowInterpreter Interp(M);
  Interp.execute(Input, Output, 2);
  EXPECT_NEAR(Output[0], std::log(0.25), 1e-12);
  EXPECT_NEAR(Output[1], std::log(0.75), 1e-12);
}

} // namespace
