//===- Context.h - IR context: uniquing, registry, diagnostics ------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Context owns all uniqued types and attributes, the registry of
/// operation definitions contributed by dialects, and the diagnostic
/// engine. Every IR object is tied to exactly one Context; a Context must
/// outlive all IR created within it.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_CONTEXT_H
#define SPNC_IR_CONTEXT_H

#include "ir/Attributes.h"
#include "ir/Types.h"
#include "support/LogicalResult.h"

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace spnc {
namespace ir {

class OpBuilder;
class Operation;
class RewritePattern;
class Value;

/// Static information about a registered operation kind. Dialects register
/// one OpInfo per operation; Operation instances point at their OpInfo.
struct OpInfo {
  /// Fully qualified name, e.g. "lo_spn.mul".
  std::string Name;
  /// Dialect namespace prefix, e.g. "lo_spn".
  std::string DialectName;
  /// True if the op has no side effects (eligible for CSE/DCE).
  bool IsPure = false;
  /// True if the op terminates a block (e.g. yield, root).
  bool IsTerminator = false;
  /// True if the op materializes a compile-time constant carried in its
  /// "value" attribute (enables participation in constant folding).
  bool IsConstant = false;
  /// Optional per-op structural verifier.
  std::function<LogicalResult(Operation *)> Verifier;
  /// Optional constant folder: given constant operand attributes (null
  /// entries for non-constant operands), returns the folded result
  /// attribute or null.
  std::function<Attribute(Operation *, std::span<const Attribute>)> Folder;
  /// Optional provider of canonicalization patterns.
  std::function<void(std::vector<std::unique_ptr<RewritePattern>> &Patterns,
                     Context &Ctx)>
      CanonicalizationPatterns;
};

/// Sink for diagnostics. The default handler prints to stderr; tests
/// install capturing handlers.
using DiagnosticHandler = std::function<void(const std::string &Message)>;

class Context {
public:
  Context();
  ~Context();

  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  //===--------------------------------------------------------------------===//
  // Type and attribute uniquing
  //===--------------------------------------------------------------------===//

  /// Returns the canonical storage for a type equal to \p Prototype,
  /// creating it on first use. The Ctx field of the prototype is ignored.
  const TypeStorage *uniqueType(TypeStorage Prototype);

  /// Returns the canonical storage for an attribute equal to \p Prototype.
  const AttrStorage *uniqueAttr(AttrStorage Prototype);

  //===--------------------------------------------------------------------===//
  // Operation registry
  //===--------------------------------------------------------------------===//

  /// Registers an operation definition. Registering the same name twice is
  /// an error.
  const OpInfo *registerOp(OpInfo Info);

  /// Looks up the definition for \p Name. Unregistered names lazily get a
  /// conservative default definition (impure, unverified), which allows
  /// the generic parser to construct unknown ops.
  const OpInfo *lookupOrCreateOpInfo(const std::string &Name);

  /// Returns the definition for \p Name or null if it was never seen.
  const OpInfo *lookupOpInfo(const std::string &Name) const;

  /// Invokes \p Fn for every registered operation definition.
  void forEachOpInfo(
      const std::function<void(const OpInfo &)> &Fn) const {
    for (const auto &Entry : OpRegistry)
      Fn(*Entry.second);
  }

  /// True if the dialect with namespace \p Name has been loaded.
  bool isDialectLoaded(const std::string &Name) const;
  /// Marks the dialect namespace \p Name as loaded.
  void markDialectLoaded(const std::string &Name);

  //===--------------------------------------------------------------------===//
  // Constant materialization
  //===--------------------------------------------------------------------===//

  /// Hook creating a dialect constant op for a folded attribute of the
  /// given result type (returns null if the dialect cannot represent it).
  using ConstantMaterializer =
      std::function<Operation *(OpBuilder &Builder, Attribute Value,
                                Type ResultType)>;

  void setConstantMaterializer(ConstantMaterializer Materializer) {
    ConstantHook = std::move(Materializer);
  }
  const ConstantMaterializer &getConstantMaterializer() const {
    return ConstantHook;
  }

  //===--------------------------------------------------------------------===//
  // Diagnostics
  //===--------------------------------------------------------------------===//

  /// Reports an error through the installed handler.
  void emitError(const std::string &Message);

  /// Installs \p Handler as diagnostic sink and returns the previous one.
  DiagnosticHandler setDiagnosticHandler(DiagnosticHandler Handler);

  /// Number of errors emitted so far.
  unsigned getNumErrors() const { return NumErrors; }

private:
  std::unordered_multimap<size_t, std::unique_ptr<TypeStorage>> TypePool;
  std::unordered_multimap<size_t, std::unique_ptr<AttrStorage>> AttrPool;
  std::unordered_map<std::string, std::unique_ptr<OpInfo>> OpRegistry;
  std::unordered_map<std::string, bool> LoadedDialects;
  ConstantMaterializer ConstantHook;
  DiagnosticHandler DiagHandler;
  unsigned NumErrors = 0;
};

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_CONTEXT_H
