//===- Serializer.cpp - Binary SPN model serialization -------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "frontend/Serializer.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstring>
#include <unordered_map>

using namespace spnc;
using namespace spnc::spn;

namespace {

constexpr uint32_t kMagic = 0x424e5053; // "SPNB" little-endian
constexpr uint32_t kVersion = 1;

/// Append-only little-endian byte writer.
class Writer {
public:
  std::vector<uint8_t> take() { return std::move(Bytes); }

  void writeU8(uint8_t Value) { Bytes.push_back(Value); }
  void writeU32(uint32_t Value) { writeRaw(&Value, sizeof(Value)); }
  void writeF64(double Value) { writeRaw(&Value, sizeof(Value)); }
  void writeString(const std::string &Value) {
    writeU32(static_cast<uint32_t>(Value.size()));
    writeRaw(Value.data(), Value.size());
  }
  void writeF64Array(std::span<const double> Values) {
    writeU32(static_cast<uint32_t>(Values.size()));
    for (double Value : Values)
      writeF64(Value);
  }

private:
  void writeRaw(const void *Data, size_t Size) {
    const auto *Begin = static_cast<const uint8_t *>(Data);
    Bytes.insert(Bytes.end(), Begin, Begin + Size);
  }

  std::vector<uint8_t> Bytes;
};

/// Bounds-checked little-endian byte reader.
class Reader {
public:
  explicit Reader(std::span<const uint8_t> Buffer) : Buffer(Buffer) {}

  bool hadError() const { return Error; }
  bool atEnd() const { return Offset == Buffer.size(); }

  uint8_t readU8() {
    uint8_t Value = 0;
    readRaw(&Value, sizeof(Value));
    return Value;
  }
  uint32_t readU32() {
    uint32_t Value = 0;
    readRaw(&Value, sizeof(Value));
    return Value;
  }
  double readF64() {
    double Value = 0;
    readRaw(&Value, sizeof(Value));
    return Value;
  }
  std::string readString() {
    uint32_t Size = readU32();
    if (Error || Buffer.size() - Offset < Size) {
      Error = true;
      return {};
    }
    std::string Value(reinterpret_cast<const char *>(&Buffer[Offset]),
                      Size);
    Offset += Size;
    return Value;
  }
  std::vector<double> readF64Array() {
    uint32_t Size = readU32();
    if (Error || (Buffer.size() - Offset) / sizeof(double) < Size) {
      Error = true;
      return {};
    }
    std::vector<double> Values(Size);
    for (double &Value : Values)
      Value = readF64();
    return Values;
  }

private:
  void readRaw(void *Data, size_t Size) {
    if (Error || Buffer.size() - Offset < Size) {
      Error = true;
      std::memset(Data, 0, Size);
      return;
    }
    std::memcpy(Data, &Buffer[Offset], Size);
    Offset += Size;
  }

  std::span<const uint8_t> Buffer;
  size_t Offset = 0;
  bool Error = false;
};

} // namespace

std::vector<uint8_t> spnc::spn::serializeModel(const Model &TheModel) {
  Writer W;
  W.writeU32(kMagic);
  W.writeU32(kVersion);
  W.writeU32(TheModel.getNumFeatures());
  W.writeString(TheModel.getName());

  // Emit nodes in topological order so children precede parents and
  // child references can use positions in the emitted table.
  std::vector<Node *> Order = TheModel.topologicalOrder();
  std::unordered_map<const Node *, uint32_t> Position;
  W.writeU32(static_cast<uint32_t>(Order.size()));
  W.writeU32(static_cast<uint32_t>(Order.size()) - 1); // root is last
  for (Node *Current : Order) {
    Position[Current] = static_cast<uint32_t>(Position.size());
    W.writeU8(static_cast<uint8_t>(Current->getKind()));
    switch (Current->getKind()) {
    case NodeKind::Sum: {
      const auto *Sum = cast<SumNode>(Current);
      W.writeU32(static_cast<uint32_t>(Sum->getNumChildren()));
      for (Node *Child : Sum->getChildren())
        W.writeU32(Position.at(Child));
      W.writeF64Array(Sum->getWeights());
      break;
    }
    case NodeKind::Product: {
      const auto *Product = cast<ProductNode>(Current);
      W.writeU32(static_cast<uint32_t>(Product->getNumChildren()));
      for (Node *Child : Product->getChildren())
        W.writeU32(Position.at(Child));
      break;
    }
    case NodeKind::Histogram: {
      const auto *Leaf = cast<HistogramLeaf>(Current);
      W.writeU32(Leaf->getFeatureIndex());
      W.writeF64Array(Leaf->getFlatBuckets());
      break;
    }
    case NodeKind::Categorical: {
      const auto *Leaf = cast<CategoricalLeaf>(Current);
      W.writeU32(Leaf->getFeatureIndex());
      W.writeF64Array(Leaf->getProbabilities());
      break;
    }
    case NodeKind::Gaussian: {
      const auto *Leaf = cast<GaussianLeaf>(Current);
      W.writeU32(Leaf->getFeatureIndex());
      W.writeF64(Leaf->getMean());
      W.writeF64(Leaf->getStdDev());
      break;
    }
    }
  }
  return W.take();
}

Expected<Model> spnc::spn::deserializeModel(
    std::span<const uint8_t> Buffer) {
  Reader R(Buffer);
  if (R.readU32() != kMagic)
    return makeError("not an SPNB model (bad magic)");
  uint32_t Version = R.readU32();
  if (Version != kVersion)
    return makeError(formatString("unsupported SPNB version %u", Version));
  uint32_t NumFeatures = R.readU32();
  std::string Name = R.readString();
  uint32_t NumNodes = R.readU32();
  uint32_t RootId = R.readU32();
  if (R.hadError())
    return makeError("truncated SPNB header");
  if (RootId >= NumNodes)
    return makeError("root id out of range");

  Model TheModel(NumFeatures, std::move(Name));
  std::vector<Node *> ByPosition;
  ByPosition.reserve(NumNodes);

  auto ReadChildren = [&](std::vector<Node *> &Children) {
    uint32_t Count = R.readU32();
    for (uint32_t I = 0; I < Count && !R.hadError(); ++I) {
      uint32_t ChildPos = R.readU32();
      if (ChildPos >= ByPosition.size()) {
        return false;
      }
      Children.push_back(ByPosition[ChildPos]);
    }
    return !R.hadError();
  };

  for (uint32_t I = 0; I < NumNodes; ++I) {
    auto Kind = static_cast<NodeKind>(R.readU8());
    if (R.hadError())
      return makeError("truncated SPNB node table");
    switch (Kind) {
    case NodeKind::Sum: {
      std::vector<Node *> Children;
      if (!ReadChildren(Children))
        return makeError("invalid sum children");
      std::vector<double> Weights = R.readF64Array();
      if (Weights.size() != Children.size())
        return makeError("sum weight/child count mismatch");
      ByPosition.push_back(
          TheModel.makeSum(std::move(Children), std::move(Weights)));
      break;
    }
    case NodeKind::Product: {
      std::vector<Node *> Children;
      if (!ReadChildren(Children))
        return makeError("invalid product children");
      ByPosition.push_back(TheModel.makeProduct(std::move(Children)));
      break;
    }
    case NodeKind::Histogram: {
      uint32_t Feature = R.readU32();
      std::vector<double> Flat = R.readF64Array();
      if (R.hadError() || Flat.size() % 3 != 0 || Feature >= NumFeatures)
        return makeError("invalid histogram leaf");
      std::vector<HistogramBucket> Buckets;
      Buckets.reserve(Flat.size() / 3);
      for (size_t J = 0; J < Flat.size(); J += 3)
        Buckets.push_back(
            HistogramBucket{Flat[J], Flat[J + 1], Flat[J + 2]});
      ByPosition.push_back(
          TheModel.makeHistogram(Feature, std::move(Buckets)));
      break;
    }
    case NodeKind::Categorical: {
      uint32_t Feature = R.readU32();
      std::vector<double> Probabilities = R.readF64Array();
      if (R.hadError() || Feature >= NumFeatures)
        return makeError("invalid categorical leaf");
      ByPosition.push_back(
          TheModel.makeCategorical(Feature, std::move(Probabilities)));
      break;
    }
    case NodeKind::Gaussian: {
      uint32_t Feature = R.readU32();
      double Mean = R.readF64();
      double StdDev = R.readF64();
      if (R.hadError() || Feature >= NumFeatures)
        return makeError("invalid gaussian leaf");
      ByPosition.push_back(TheModel.makeGaussian(Feature, Mean, StdDev));
      break;
    }
    default:
      return makeError(formatString("unknown node kind %u",
                                    static_cast<unsigned>(Kind)));
    }
  }
  if (R.hadError() || !R.atEnd())
    return makeError("malformed SPNB payload");
  TheModel.setRoot(ByPosition[RootId]);
  return TheModel;
}

LogicalResult spnc::spn::saveModel(const Model &TheModel,
                                   const std::string &Path) {
  std::vector<uint8_t> Bytes = serializeModel(TheModel);
  // Like saveCompiledKernel: write a temporary sibling and rename it
  // into place, so an interrupted write never leaves a truncated .spnb
  // at Path.
  std::string TempPath = Path + ".tmp";
  std::FILE *File = std::fopen(TempPath.c_str(), "wb");
  if (!File)
    return failure();
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  bool Flushed = std::fclose(File) == 0;
  if (Written != Bytes.size() || !Flushed ||
      std::rename(TempPath.c_str(), Path.c_str()) != 0) {
    std::remove(TempPath.c_str());
    return failure();
  }
  return success();
}

Expected<Model> spnc::spn::loadModel(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeError(formatString("cannot open '%s'", Path.c_str()));
  std::vector<uint8_t> Bytes;
  uint8_t Chunk[4096];
  size_t Read;
  while ((Read = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Bytes.insert(Bytes.end(), Chunk, Chunk + Read);
  bool ReadError = std::ferror(File) != 0;
  std::fclose(File);
  if (ReadError)
    return makeError(formatString("cannot read '%s'", Path.c_str()));
  return deserializeModel(Bytes);
}
