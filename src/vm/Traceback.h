//===- Traceback.h - Downward traceback for MPE and sampling ------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The downward pass shared by every compiled engine (vm::CpuExecutor,
/// gpusim::GpuExecutor) for the MPE and ancestral-sampling query kinds:
/// after the upward pass of one sample has filled the task's register
/// file, `runTraceback` walks the program's `TracebackPlan` from the
/// root, descending the argmax child at each sum-combine (MPE; ties go
/// to the lowest child index via the left-associative chain) or a
/// posterior-weighted random child (sampling), and writes one value per
/// feature into the output row (docs/queries.md).
///
/// The sampling RNG contract is part of the reproducibility guarantee:
/// sample I of a batch uses `Rng(perSampleSeed(Seed, I))`, every Choice
/// node consumes exactly one uniform (even when a branch is forced by a
/// zero-probability sibling), and unobserved leaves draw via a CDF walk
/// (one uniform) or the cache-free Box-Muller cosine branch (two
/// uniforms). The CppBackend emitter replicates this word for word in
/// generated code, so a fixed seed reproduces bit-identical samples per
/// engine regardless of batch splitting.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_VM_TRACEBACK_H
#define SPNC_VM_TRACEBACK_H

#include "support/Random.h"
#include "vm/Bytecode.h"

#include <cmath>
#include <vector>

namespace spnc {
namespace vm {

/// Derives the per-sample RNG seed: decorrelates consecutive sample
/// indices while staying independent of how a batch is chunked.
inline uint64_t perSampleSeed(uint64_t Seed, uint64_t SampleIdx) {
  return Seed ^ (0x9e3779b97f4a7c15ULL * (SampleIdx + 1));
}

/// Cache-free standard normal draw: Box-Muller cosine branch, exactly
/// two uniforms per call. Deliberately not Rng::normal(), whose cached
/// second sample would make the stream depend on draw parity.
inline double drawStandardNormal(Rng &R) {
  double U1 = 1.0 - R.uniform(); // avoid log(0)
  double U2 = R.uniform();
  return std::sqrt(-2.0 * std::log(U1)) *
         std::cos(2.0 * 3.14159265358979323846 * U2);
}

/// Draws a bucket from (lb, ub, mass) triples by a single-uniform CDF
/// walk and returns its lower bound (the representative value of the
/// discrete bucket). Masses need not sum to 1; the walk normalizes.
inline double drawTableBucket(const double *Triples, uint32_t Count,
                              Rng &R) {
  double Total = 0.0;
  for (uint32_t I = 0; I < Count; ++I)
    Total += Triples[3 * I + 2];
  double U = R.uniform() * Total;
  double Acc = 0.0;
  for (uint32_t I = 0; I < Count; ++I) {
    Acc += Triples[3 * I + 2];
    if (U < Acc)
      return Triples[3 * I];
  }
  // Rounding fallthrough: return the last bucket with positive mass.
  for (uint32_t I = Count; I > 0; --I)
    if (Triples[3 * (I - 1) + 2] > 0.0)
      return Triples[3 * (I - 1)];
  return 0.0;
}

/// Runs the downward pass for one sample. \p Registers is the task's
/// register file after the upward pass of the same sample; \p Evidence
/// is the sample's feature row (NaN = unobserved); \p Out receives one
/// value per feature (only features in the model's scope are written —
/// callers pre-fill rows when features can be missing). \p Kind selects
/// MPE (argmax descent, no RNG use) or sampling; \p Stack is caller
/// scratch to avoid per-sample allocation.
template <typename T>
inline void runTraceback(const TracebackPlan &Plan, const T *Registers,
                         const double *Evidence, double *Out,
                         bool LogSpace, QueryKind Kind, Rng &R,
                         std::vector<int32_t> &Stack) {
  const bool Sampling = Kind == QueryKind::Sample;
  Stack.clear();
  Stack.push_back(Plan.Root);
  while (!Stack.empty()) {
    const PlanNode &N = Plan.Nodes[static_cast<size_t>(Stack.back())];
    Stack.pop_back();
    switch (N.Kind) {
    case PlanNodeKind::Choice: {
      double VA = static_cast<double>(Registers[N.RegA]);
      double VB = static_cast<double>(Registers[N.RegB]);
      bool TakeB;
      if (Sampling) {
        // Posterior branch probability of B; -1 forces branch A when
        // both children carry zero mass (ties resolve low, like MPE).
        double PB = -1.0;
        if (LogSpace) {
          double Hi = VA >= VB ? VA : VB;
          double Lo = VA >= VB ? VB : VA;
          if (!(std::isinf(Hi) && Hi < 0.0)) {
            double Total = Hi + std::log1p(std::exp(Lo - Hi));
            PB = std::exp(VB - Total);
          }
        } else {
          double Total = VA + VB;
          if (Total > 0.0)
            PB = VB / Total;
        }
        // Exactly one uniform per Choice, drawn unconditionally, so the
        // stream never depends on degenerate branch weights.
        TakeB = R.uniform() < PB;
      } else {
        // MPE: descend left on ties -> lowest child index overall.
        TakeB = VB > VA;
      }
      Stack.push_back(TakeB ? N.B : N.A);
      break;
    }
    case PlanNodeKind::Both:
      Stack.push_back(N.B);
      Stack.push_back(N.A);
      break;
    case PlanNodeKind::Pass:
      Stack.push_back(N.A);
      break;
    case PlanNodeKind::LeafTable: {
      double E = Evidence[N.Feature];
      if (!std::isnan(E))
        Out[N.Feature] = E;
      else if (Sampling)
        Out[N.Feature] = drawTableBucket(
            Plan.Buckets.data() + N.TableBegin, N.TableCount, R);
      else
        Out[N.Feature] = N.Mode;
      break;
    }
    case PlanNodeKind::LeafGaussian: {
      double E = Evidence[N.Feature];
      if (!std::isnan(E))
        Out[N.Feature] = E;
      else if (Sampling)
        Out[N.Feature] = N.Mean + N.StdDev * drawStandardNormal(R);
      else
        Out[N.Feature] = N.Mode;
      break;
    }
    }
  }
}

} // namespace vm
} // namespace spnc

#endif // SPNC_VM_TRACEBACK_H
