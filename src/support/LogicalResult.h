//===- LogicalResult.h - Success/failure result type ---------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `LogicalResult` mirrors MLIR's two-state result type used by verifiers,
/// passes and rewrite patterns, where failures carry no payload and
/// diagnostics are reported out-of-band through the DiagnosticEngine.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_LOGICALRESULT_H
#define SPNC_SUPPORT_LOGICALRESULT_H

namespace spnc {

/// Two-state success/failure value. Deliberately not convertible to bool to
/// force call sites through the self-documenting succeeded()/failed()
/// helpers.
class LogicalResult {
public:
  static LogicalResult success(bool IsSuccess = true) {
    return LogicalResult(IsSuccess);
  }
  static LogicalResult failure(bool IsFailure = true) {
    return LogicalResult(!IsFailure);
  }

  bool succeeded() const { return IsSuccess; }
  bool failed() const { return !IsSuccess; }

private:
  explicit LogicalResult(bool IsSuccess) : IsSuccess(IsSuccess) {}

  bool IsSuccess;
};

inline LogicalResult success() { return LogicalResult::success(); }
inline LogicalResult failure() { return LogicalResult::failure(); }
inline bool succeeded(LogicalResult Result) { return Result.succeeded(); }
inline bool failed(LogicalResult Result) { return Result.failed(); }

} // namespace spnc

#endif // SPNC_SUPPORT_LOGICALRESULT_H
