//===- ThreadPool.h - Simple fixed-size thread pool ------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size worker pool used by the CPU runtime (batch chunking across
/// threads, paper §IV-B) and by the GPU simulator (one worker per simulated
/// streaming multiprocessor).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_THREADPOOL_H
#define SPNC_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spnc {

/// A fixed-size thread pool. Tasks are arbitrary callables; wait() blocks
/// until all submitted tasks have completed. The pool is not reentrant:
/// tasks must not submit further tasks.
///
/// A task that throws does not take down the worker or deadlock wait():
/// the exception is captured, the task still counts as finished, and the
/// first captured exception is rethrown from the next wait() (later ones
/// are dropped, mirroring parallel-runtime convention).
class ThreadPool {
public:
  /// Creates a pool with \p NumThreads workers (at least one).
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception any task raised since the last wait().
  void wait();

  unsigned getNumThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Runs Fn(I) for I in [0, NumItems) across the pool and waits for
  /// completion. Items are distributed in contiguous chunks; with fewer
  /// items than workers each item gets its own chunk, and zero items
  /// return immediately without touching the pool. A throwing Fn aborts
  /// only its own chunk; the wait still completes and the first
  /// exception is rethrown to the caller.
  void parallelFor(size_t NumItems, const std::function<void(size_t)> &Fn);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable AllDone;
  size_t PendingTasks = 0;
  bool ShuttingDown = false;
  /// First exception thrown by a task since the last wait(); guarded by
  /// Mutex.
  std::exception_ptr FirstException;
};

} // namespace spnc

#endif // SPNC_SUPPORT_THREADPOOL_H
