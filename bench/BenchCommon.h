//===- BenchCommon.h - Shared benchmark harness utilities ----------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared setup for the benchmark binaries that regenerate the paper's
/// tables and figures. Default problem sizes are scaled down so the whole
/// `bench/` directory runs in minutes on a laptop; set SPNC_BENCH_FULL=1
/// to use paper-scale sizes (hundreds of thousands of samples /
/// paper-scale RAT-SPNs).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_BENCH_BENCHCOMMON_H
#define SPNC_BENCH_BENCHCOMMON_H

#include "baselines/Baselines.h"
#include "runtime/Compiler.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace spnc {
namespace bench {

/// True when paper-scale sizes were requested via SPNC_BENCH_FULL=1.
inline bool fullScale() {
  const char *Env = std::getenv("SPNC_BENCH_FULL");
  return Env && Env[0] == '1';
}

/// Number of speech samples for the speaker-identification benchmarks
/// (paper: 245567 clean / 1227835 noisy).
inline size_t speakerSampleCount(bool Noisy) {
  if (fullScale())
    return Noisy ? 1227835 : 245567;
  return Noisy ? 20000 : 8000;
}

/// Number of per-speaker models to average over (paper: one SPN per
/// speaker of the test set).
inline unsigned speakerModelCount() { return fullScale() ? 10 : 3; }

/// RAT-SPN configuration for the stress-test benchmarks.
inline workloads::RatSpnOptions ratSpnBenchScale() {
  return fullScale() ? workloads::ratSpnPaperScale()
                     : workloads::ratSpnSmallScale();
}

/// Number of test images for the RAT-SPN classification benchmark
/// (paper: 10000).
inline size_t imageCount() { return fullScale() ? 10000 : 500; }

/// One per-speaker benchmark instance: model + clean/noisy data.
struct SpeakerInstance {
  spn::Model Model;
  std::vector<double> Data;
  size_t NumSamples;
};

inline std::vector<SpeakerInstance> makeSpeakerSet(bool Noisy) {
  std::vector<SpeakerInstance> Instances;
  size_t NumSamples = speakerSampleCount(Noisy);
  for (unsigned Speaker = 0; Speaker < speakerModelCount(); ++Speaker) {
    workloads::SpeakerModelOptions Options;
    Options.Seed = Speaker + 1;
    std::vector<double> Data =
        Noisy ? workloads::generateNoisySpeechData(Options, NumSamples,
                                                   Speaker + 100)
              : workloads::generateSpeechData(Options, NumSamples,
                                              Speaker + 100);
    Instances.push_back(SpeakerInstance{
        workloads::generateSpeakerModel(Options), std::move(Data),
        NumSamples});
  }
  return Instances;
}

/// Geometric mean.
inline double geoMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Wall-clock of one executor invocation (seconds).
template <typename Fn>
double timeSeconds(Fn &&Run) {
  Timer T;
  Run();
  return T.elapsedSeconds();
}

/// Runs \p Kernel once and returns the seconds to report: the simulated
/// device clock for GPU engines (per-call stats), the measured wall
/// clock otherwise.
inline double runReportSeconds(const runtime::CompiledKernel &Kernel,
                               const double *Input, double *Output,
                               size_t NumSamples) {
  runtime::ExecutionStats Stats;
  Kernel.execute(Input, Output, NumSamples, &Stats);
  return Stats.HasGpuStats
             ? static_cast<double>(Stats.Gpu.totalNs()) * 1e-9
             : static_cast<double>(Stats.WallNs) * 1e-9;
}

/// Prints a paper-style figure header.
inline void printHeader(const char *Figure, const char *Description) {
  std::printf("\n=== %s: %s ===\n", Figure, Description);
  std::printf("(scaled-down run; set SPNC_BENCH_FULL=1 for paper-scale "
              "sizes; shapes, not absolute numbers, are the target — see "
              "EXPERIMENTS.md)\n");
}

} // namespace bench
} // namespace spnc

#endif // SPNC_BENCH_BENCHCOMMON_H
