//===- JSON.cpp - Minimal ordered JSON writer and parser -------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"

#include "support/RawOStream.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace spnc;
using namespace spnc::json;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void spnc::json::writeEscaped(RawOStream &OS, std::string_view Str) {
  OS << '"';
  for (char C : Str) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        OS << Buffer;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

void Writer::indent() {
  OS.indent(static_cast<unsigned>(Scopes.size()) * IndentWidth);
}

void Writer::beforeElement() {
  if (PendingKey) {
    // Value completing a "key": pair; stays on the key's line.
    PendingKey = false;
    return;
  }
  if (!Scopes.empty()) {
    assert(Scopes.back() == Scope::Array &&
           "object members must start with key()");
    if (HasElements.back())
      OS << ',';
    HasElements.back() = true;
    OS << '\n';
    indent();
  }
}

void Writer::beginObject() {
  beforeElement();
  OS << '{';
  Scopes.push_back(Scope::Object);
  HasElements.push_back(false);
}

void Writer::endObject() {
  assert(!Scopes.empty() && Scopes.back() == Scope::Object &&
         "unbalanced endObject");
  bool WasEmpty = !HasElements.back();
  Scopes.pop_back();
  HasElements.pop_back();
  if (!WasEmpty) {
    OS << '\n';
    indent();
  }
  OS << '}';
}

void Writer::beginArray() {
  beforeElement();
  OS << '[';
  Scopes.push_back(Scope::Array);
  HasElements.push_back(false);
}

void Writer::endArray() {
  assert(!Scopes.empty() && Scopes.back() == Scope::Array &&
         "unbalanced endArray");
  bool WasEmpty = !HasElements.back();
  Scopes.pop_back();
  HasElements.pop_back();
  if (!WasEmpty) {
    OS << '\n';
    indent();
  }
  OS << ']';
}

void Writer::key(std::string_view Key) {
  assert(!Scopes.empty() && Scopes.back() == Scope::Object &&
         "key() outside an object");
  assert(!PendingKey && "two key() calls without a value");
  if (HasElements.back())
    OS << ',';
  HasElements.back() = true;
  OS << '\n';
  indent();
  writeEscaped(OS, Key);
  OS << ": ";
  PendingKey = true;
}

void Writer::value(std::string_view Str) {
  beforeElement();
  writeEscaped(OS, Str);
}

void Writer::value(bool Boolean) {
  beforeElement();
  OS << Boolean;
}

void Writer::value(double Number) {
  beforeElement();
  if (!std::isfinite(Number)) {
    // JSON has no Inf/NaN; null is the conventional substitute.
    OS << "null";
    return;
  }
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Number);
  OS << Buffer;
}

void Writer::value(uint64_t Number) {
  beforeElement();
  OS << Number;
}

void Writer::value(int64_t Number) {
  beforeElement();
  OS << Number;
}

void Writer::null() {
  beforeElement();
  OS << "null";
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const Value *Value::find(std::string_view Key) const {
  for (const Member &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<Value> parseDocument() {
    Expected<Value> Result = parseValue();
    if (!Result)
      return Result;
    skipWhitespace();
    if (Pos != Text.size())
      return error("trailing garbage after JSON document");
    return Result;
  }

private:
  Error error(const std::string &Message) const {
    return makeError("JSON parse error at offset " + std::to_string(Pos) +
                     ": " + Message);
  }

  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeLiteral(std::string_view Literal) {
    if (Text.substr(Pos, Literal.size()) == Literal) {
      Pos += Literal.size();
      return true;
    }
    return false;
  }

  Expected<Value> parseValue() {
    skipWhitespace();
    if (Pos >= Text.size())
      return error("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      Expected<std::string> Str = parseString();
      if (!Str)
        return Str.getError();
      return Value(Str.takeValue());
    }
    if (consumeLiteral("true"))
      return Value(true);
    if (consumeLiteral("false"))
      return Value(false);
    if (consumeLiteral("null"))
      return Value();
    return parseNumber();
  }

  Expected<Value> parseObject() {
    consume('{');
    Value Result = Value::makeObject();
    skipWhitespace();
    if (consume('}'))
      return Result;
    for (;;) {
      skipWhitespace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return error("expected object key string");
      Expected<std::string> Key = parseString();
      if (!Key)
        return Key.getError();
      skipWhitespace();
      if (!consume(':'))
        return error("expected ':' after object key");
      Expected<Value> Member = parseValue();
      if (!Member)
        return Member;
      Result.getMembers().emplace_back(Key.takeValue(),
                                       Member.takeValue());
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume('}'))
        return Result;
      return error("expected ',' or '}' in object");
    }
  }

  Expected<Value> parseArray() {
    consume('[');
    Value Result = Value::makeArray();
    skipWhitespace();
    if (consume(']'))
      return Result;
    for (;;) {
      Expected<Value> Element = parseValue();
      if (!Element)
        return Element;
      Result.getArray().push_back(Element.takeValue());
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume(']'))
        return Result;
      return error("expected ',' or ']' in array");
    }
  }

  Expected<std::string> parseString() {
    consume('"');
    std::string Result;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Result;
      if (C != '\\') {
        Result += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char Escape = Text[Pos++];
      switch (Escape) {
      case '"':
      case '\\':
      case '/':
        Result += Escape;
        break;
      case 'n':
        Result += '\n';
        break;
      case 'r':
        Result += '\r';
        break;
      case 't':
        Result += '\t';
        break;
      case 'b':
        Result += '\b';
        break;
      case 'f':
        Result += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return error("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return error("invalid \\u escape digit");
        }
        // Only BMP code points below 0x80 are emitted by our writer;
        // encode the rest as UTF-8 for completeness.
        if (Code < 0x80) {
          Result += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Result += static_cast<char>(0xC0 | (Code >> 6));
          Result += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Result += static_cast<char>(0xE0 | (Code >> 12));
          Result += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Result += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return error("invalid escape character");
      }
    }
    return error("unterminated string");
  }

  Expected<Value> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return error("expected a JSON value");
    std::string Token(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double Number = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size())
      return error("malformed number '" + Token + "'");
    return Value(Number);
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

Expected<Value> spnc::json::parse(std::string_view Text) {
  return Parser(Text).parseDocument();
}
