//===- InferenceServer.h - Sharded in-process serving with micro-batching -----===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process serving layer that bridges from "caller already holds a
/// full batch" (`ExecutionEngine::execute`) to the serving regime the
/// paper's speedups assume: its CPU and GPU gains come from amortizing
/// per-kernel overhead across large batches (§IV-B batch chunking, §IV-C
/// device-buffer reuse), but online traffic arrives one or a few samples
/// per request. The `InferenceServer` closes that gap:
///
///  * clients submit single- or few-sample requests (per registered
///    model) from any number of threads and get a `Future` back;
///  * the server runs `NumShards` independent shards, each with its own
///    batcher thread, request queues and worker pool. Models are placed
///    on shards by consistent hashing over the model hash
///    (`KernelCache::hashModel`), so placement is deterministic and
///    stable under shard-count changes; all shards compile through one
///    shared `runtime::KernelCache`;
///  * requests carry a `Priority` class (Interactive or Bulk). Each
///    shard's batcher drains the two classes by weighted fair queueing
///    (`InteractiveWeight` : `BulkWeight` dispatch credits), so
///    interactive traffic overtakes a bulk backlog without starving it;
///    within a class, models round-robin;
///  * a shard's batcher coalesces queued requests of one (model,
///    priority) pair into micro-batches of up to `MaxBatchSamples`
///    samples, or dispatches earlier once the oldest request has waited
///    `MaxQueueDelayUs`;
///  * admission control bounds the outstanding work per shard: beyond
///    `MaxQueueDepth` samples, submits are rejected or block per policy
///    (backpressure is counted either way, on the shard);
///  * per-request deadlines: a request that expires in a shard's queue
///    completes with `RequestStatus::TimedOut` instead of occupying a
///    batch slot;
///  * with `ServerConfig::MergeModels`, structurally-isomorphic models
///    (same DAG shape, different weights) compile into one
///    parameterized kernel via `KernelCache::getOrCompileMerged` and
///    share one request queue, so traffic for different models of a
///    merge group coalesces into the same micro-batch — each row
///    executes against its own model's weight table
///    (`ExecutionEngine::executeIndexed`; docs/merging.md);
///  * `shutdown()` drains in-flight work — every accepted request is
///    completed before the server stops.
///
/// `getStats()` aggregates the per-shard counters (histograms combined
/// with `Histogram::merge`) into the same `ServerStats` snapshot a
/// single-shard server produces; `getShardStats(i)` exposes one shard.
/// `writeServerStatsReport` (ServingReports.h) emits the aggregate
/// through the json::Writer report machinery, `writeShardedStatsReport`
/// the aggregate plus the per-shard breakdown.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SERVING_INFERENCESERVER_H
#define SPNC_SERVING_INFERENCESERVER_H

#include "runtime/KernelCache.h"
#include "support/Future.h"
#include "support/Histogram.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace spnc {

class ThreadPool;

namespace serving {

/// How a request completed.
enum class RequestStatus : uint8_t {
  /// Executed; `LogLikelihoods` holds one value per submitted sample.
  Ok,
  /// Refused at admission (queue full under the Reject policy, or the
  /// model name is unknown).
  Rejected,
  /// The deadline expired before the request reached an engine.
  TimedOut,
  /// The server was shutting down when the request arrived.
  ShutDown,
  /// The engine refused the batch (e.g. it cannot serve the model's
  /// query kind).
  Failed,
};

/// Human-readable status name ("ok", "rejected", ...).
const char *requestStatusName(RequestStatus Status);

/// Scheduling class of a request. Interactive traffic overtakes Bulk in
/// every shard's weighted-fair-queueing batcher; Bulk is the default
/// (and what priority-less trace lines load as).
enum class Priority : uint8_t {
  Interactive = 0,
  Bulk = 1,
};

/// Number of priority classes (array extent for per-class state).
inline constexpr size_t kNumPriorities = 2;

/// Human-readable class name ("interactive" / "bulk").
const char *priorityName(Priority ThePriority);

/// Parses a class name as written by priorityName (case-sensitive).
/// Returns false on anything else, leaving \p Out untouched.
bool parsePriority(const char *Text, Priority &Out);

/// What a submitted request resolves to.
struct InferenceResult {
  RequestStatus Status = RequestStatus::Ok;
  /// One (log-)probability per submitted sample; empty unless Ok.
  /// Absent for sampling queries (a sample has no single probability).
  std::vector<double> LogLikelihoods;
  /// Completed rows, row-major [sample][feature]; filled only for MPE
  /// (the argmax assignments) and sampling (the drawn samples) queries.
  std::vector<double> Rows;
  /// Submit-to-completion wall clock.
  uint64_t LatencyNs = 0;
  /// Samples in the micro-batch this request rode in (Ok only).
  uint64_t BatchSamples = 0;
  /// Failure detail for non-Ok statuses.
  std::string Message;
};

/// The future a submit() returns.
using ResultFuture = Future<InferenceResult>;

/// Server tuning knobs. The defaults suit a latency-tolerant
/// throughput-oriented deployment; latency-sensitive callers shrink
/// MaxQueueDelayUs.
struct ServerConfig {
  /// Micro-batch sample cap. A single request larger than the cap is
  /// dispatched as its own (oversized) batch.
  size_t MaxBatchSamples = 256;
  /// Longest time the oldest queued request waits for co-batching before
  /// the batcher dispatches what it has.
  uint64_t MaxQueueDelayUs = 1000;
  /// Bound on outstanding samples (queued + executing) per shard;
  /// 0 = unbounded. A server's total admission capacity is therefore
  /// NumShards * MaxQueueDepth.
  size_t MaxQueueDepth = 4096;
  /// What happens to a submit that would exceed MaxQueueDepth.
  enum class AdmissionPolicy : uint8_t {
    /// Complete the future immediately with RequestStatus::Rejected.
    Reject,
    /// Block the submitting thread until space frees up (or shutdown).
    Block,
  };
  AdmissionPolicy Admission = AdmissionPolicy::Reject;
  /// Engines executing dispatched batches concurrently, per shard.
  unsigned NumWorkers = 2;
  /// Independent shards (batcher + queues + worker pool each). Models
  /// are placed on shards by consistent hashing over the model hash.
  unsigned NumShards = 1;
  /// Weighted-fair-queueing dispatch credits: out of
  /// InteractiveWeight + BulkWeight consecutive dispatches on a shard
  /// with both classes backlogged, Interactive gets InteractiveWeight.
  /// A class without queued work cedes its turn (work conservation).
  unsigned InteractiveWeight = 4;
  unsigned BulkWeight = 1;
  /// Deadline applied to submits that pass DeadlineUs = 0; 0 = none.
  uint64_t DefaultDeadlineUs = 0;
  /// Base seed for sampling-query models. Each dispatched batch draws
  /// with SampleSeed decorrelated by a server-wide batch counter, so
  /// a server run is reproducible given the same arrival order but no
  /// two batches reuse a stream.
  uint64_t SampleSeed = 0;
  /// Merged-model serving (docs/merging.md): structurally-isomorphic
  /// CPU joint/marginal models compile through
  /// KernelCache::getOrCompileMerged into one parameterized kernel and
  /// share one request queue, so requests for different models of a
  /// merge group coalesce into the same micro-batch (each row tagged
  /// with its model's weight-table index). Models the merged path
  /// cannot serve (GPU targets, MPE/sampling queries) fall back to
  /// their own per-model kernel as if merging were off.
  bool MergeModels = false;
};

/// A consistent snapshot of the observability counters — of one shard
/// (getShardStats) or aggregated over all shards (getStats; counters
/// summed, histograms merged, PeakQueueDepth the sum of per-shard
/// peaks, i.e. an upper bound on the instantaneous total).
struct ServerStats {
  uint64_t SubmittedRequests = 0;
  uint64_t SubmittedSamples = 0;
  uint64_t CompletedRequests = 0;
  uint64_t CompletedSamples = 0;
  /// Admission rejections (the backpressure counter under Reject).
  uint64_t RejectedRequests = 0;
  /// Submits that had to wait for queue space (backpressure under
  /// Block).
  uint64_t BlockedSubmits = 0;
  /// Requests completed with an expired deadline.
  uint64_t TimedOutRequests = 0;
  /// Micro-batches dispatched to the worker pool.
  uint64_t BatchesDispatched = 0;
  /// Dispatched micro-batches that carried rows of two or more distinct
  /// models of a merge group (always 0 unless MergeModels is on).
  uint64_t CrossModelBatches = 0;
  /// Outstanding samples (queued + executing) at snapshot time.
  size_t QueueDepth = 0;
  size_t PeakQueueDepth = 0;
  /// Total engine wall clock spent executing batches.
  uint64_t ExecutionNs = 0;
  /// Wall clock since server construction.
  uint64_t ElapsedNs = 0;
  /// Samples per dispatched micro-batch.
  Histogram BatchSizes;
  /// Submit-to-completion latency of Ok requests, in nanoseconds.
  Histogram LatencyNs;
  /// The same latency split by priority class (index =
  /// static_cast<size_t>(Priority)).
  std::array<Histogram, kNumPriorities> LatencyNsByPriority;

  double meanBatchSize() const { return BatchSizes.mean(); }
  double throughputSamplesPerSec() const {
    return ElapsedNs
               ? static_cast<double>(CompletedSamples) * 1e9 /
                     static_cast<double>(ElapsedNs)
               : 0.0;
  }
};

/// The in-process inference server. All public members are thread-safe;
/// submit() is designed to be called from many client threads
/// concurrently.
class InferenceServer {
public:
  /// Creates the server. \p Cache, when non-null, is the (caller-owned,
  /// shared) kernel cache engines are acquired through — it must outlive
  /// the server and is shared by every shard; when null the server owns
  /// a private in-memory cache.
  explicit InferenceServer(ServerConfig Config = {},
                           runtime::KernelCache *Cache = nullptr);

  /// Shuts down (drains) if the caller has not already.
  ~InferenceServer();

  InferenceServer(const InferenceServer &) = delete;
  InferenceServer &operator=(const InferenceServer &) = delete;

  /// Registers \p Model under \p Name, acquiring its engine through the
  /// kernel cache (compiling at most once per cache key) and placing it
  /// on the shard the consistent-hash ring maps its model hash to.
  /// GPU-targeted models whose device config leaves NumStreams at 0
  /// (auto) are compiled with one stream per shard worker, so
  /// NumWorkers > 1 overlaps on the simulated device. Fails on
  /// duplicate names, invalid options, or compilation failure. The
  /// model is not retained — only the compiled engine is.
  std::optional<Error> addModel(const std::string &Name,
                                const spn::Model &Model,
                                const spn::QueryConfig &Query,
                                const runtime::CompilerOptions &Options);

  /// True when a model named \p Name is registered.
  bool hasModel(const std::string &Name) const;

  /// Feature count of the registered model, 0 when unknown.
  unsigned getNumFeatures(const std::string &Name) const;

  /// Shard index the named model was placed on; nullopt when unknown.
  std::optional<size_t> getModelShard(const std::string &Name) const;

  /// Weight-table index of the named model inside its merged kernel;
  /// nullopt when the model is unknown or serves through an unmerged
  /// per-model kernel. Two models with the same shard and the same
  /// merged entry (distinct table indices) share one compiled kernel.
  std::optional<int32_t>
  getModelTableIndex(const std::string &Name) const;

  /// Submits \p NumSamples samples (row-major [sample][feature], copied)
  /// against model \p Name, in scheduling class \p ThePriority.
  /// \p DeadlineUs bounds the time the request may spend queued (0 uses
  /// ServerConfig::DefaultDeadlineUs). The returned future always
  /// completes — with Ok results, or with a Rejected/TimedOut/ShutDown
  /// status per the policies above.
  ResultFuture submit(const std::string &Name, const double *Samples,
                      size_t NumSamples, uint64_t DeadlineUs = 0,
                      Priority ThePriority = Priority::Bulk);

  /// Stops admission, drains every queued and in-flight request on every
  /// shard (each future completes), and joins the batcher and worker
  /// threads. Idempotent; called by the destructor.
  void shutdown();

  /// Aggregated snapshot over all shards (plus the routing-level
  /// counters for submits no shard ever saw: unknown models, empty
  /// requests, shutdown refusals).
  ServerStats getStats() const;

  /// Shards this server runs (>= 1; the clamped configuration value).
  size_t getNumShards() const { return Shards.size(); }

  /// Snapshot of one shard's counters. \p ShardIndex < getNumShards().
  ServerStats getShardStats(size_t ShardIndex) const;

  /// Per-shard snapshots, index = shard id.
  std::vector<ServerStats> getAllShardStats() const;

  const ServerConfig &getConfig() const { return Config; }

  /// The cache engines are acquired through (shared or owned).
  runtime::KernelCache &getKernelCache() { return *Cache; }

  /// Deterministic consistent-hash placement: the shard (of
  /// \p NumShards) a model with hash \p ModelHash lands on. Exposed for
  /// tests and capacity planning.
  static size_t placeOnShard(uint64_t ModelHash, size_t NumShards);

private:
  using Clock = std::chrono::steady_clock;

  /// One independent shard: queues + batcher + worker pool.
  struct Shard;
  /// One registered model (owned by its shard).
  struct ModelEntry;
  /// One queued request.
  struct Request;
  /// A formed micro-batch on its way to a worker.
  struct Batch;
  /// Routing-table entry: where a model name lives. Under merged
  /// serving several names route to one shared ModelEntry, each with
  /// its own weight-table index; -1 marks an unmerged route.
  struct Route {
    size_t ShardIndex = 0;
    ModelEntry *Model = nullptr;
    unsigned NumFeatures = 0;
    int32_t TableIndex = -1;
  };

  /// addModel's merged-serving path: compiles (or joins) the merge
  /// group's parameterized kernel and routes \p Name to the group's
  /// shared ModelEntry with its own weight-table index.
  std::optional<Error>
  addMergedModel(const std::string &Name, const spn::Model &Model,
                 const spn::QueryConfig &Query,
                 const runtime::CompilerOptions &Options);

  void batcherLoop(Shard &TheShard);
  /// Picks the next (model, priority) pair to dispatch on \p TheShard
  /// per the weighted-fair-queueing credits, or returns false. Caller
  /// holds the shard mutex.
  bool selectReady(Shard &TheShard, Clock::time_point Now,
                   ModelEntry *&Model, Priority &ThePriority);
  /// Pops a dispatchable micro-batch from \p Model's \p ThePriority
  /// queue. Caller holds the shard mutex.
  Batch formBatch(Shard &TheShard, ModelEntry &Model,
                  Priority ThePriority);
  /// Executes \p TheBatch on its model's engine and completes the
  /// futures. Runs on a worker thread, no lock held.
  void runBatch(Shard &TheShard, Batch TheBatch);
  /// Completes queued requests whose deadline has passed. Caller holds
  /// the shard mutex; the promises are completed after the caller
  /// releases it.
  void collectExpired(Shard &TheShard, Clock::time_point Now,
                      std::vector<Request> &Expired);
  /// Completes \p TheRequest with a non-Ok \p Status. No lock required.
  static void failRequest(Request &TheRequest, RequestStatus Status,
                          std::string Message);

  ServerConfig Config;
  /// Owned cache when the caller did not supply one.
  std::unique_ptr<runtime::KernelCache> OwnedCache;
  runtime::KernelCache *Cache;

  /// The shards; fixed at construction. Each owns its mutex, queues,
  /// batcher thread, worker pool and stats.
  std::vector<std::unique_ptr<Shard>> Shards;

  /// Name -> placement. Guarded by RoutingMutex; the hot submit path
  /// takes it only for the map lookup, never while touching a shard.
  mutable std::mutex RoutingMutex;
  std::unordered_map<std::string, Route> Routing;
  /// Storage for every registered model (shards reference, this owns).
  /// Guarded by RoutingMutex; entries are never removed.
  std::vector<std::unique_ptr<ModelEntry>> OwnedModels;
  /// Merged serving: engine identity -> the shared ModelEntry serving
  /// that merge group. Two addModel calls whose merged compilation
  /// lands on the same engine (same structural hash, query and options)
  /// share the entry — and therefore its queues and batches. Guarded by
  /// RoutingMutex.
  std::unordered_map<const void *, ModelEntry *> MergedGroups;
  /// Submits that never reached a shard (unknown model, empty request,
  /// shutdown refusal), counted here so the aggregate stays exact.
  /// Guarded by RoutingMutex.
  uint64_t RoutingSubmittedRequests = 0;
  uint64_t RoutingSubmittedSamples = 0;
  uint64_t RoutingRejectedRequests = 0;

  /// Server-wide counter decorrelating the sampling seed per batch
  /// across all shards.
  std::atomic<uint64_t> SampleBatchCounter{0};
  std::atomic<bool> ShuttingDown{false};
  bool ShutdownComplete = false;
  /// Serializes concurrent shutdown() calls (user thread + destructor).
  std::mutex ShutdownMutex;

  Clock::time_point StartTime;
};

} // namespace serving
} // namespace spnc

#endif // SPNC_SERVING_INFERENCESERVER_H
