# Empty compiler generated dependencies file for spnc_workloads.
# This may be replaced when dependencies are built.
