file(REMOVE_RECURSE
  "libspnc_workloads.a"
)
