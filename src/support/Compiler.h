//===- Compiler.h - Compiler-abstraction and diagnostics helpers ---------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler-abstraction helpers shared across the whole project:
/// `spnc_unreachable` (an `llvm_unreachable` equivalent) and inlining
/// hints used by the execution engines.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_COMPILER_H
#define SPNC_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define SPNC_ALWAYS_INLINE inline __attribute__((always_inline))
#define SPNC_NOINLINE __attribute__((noinline))
#else
#define SPNC_ALWAYS_INLINE inline
#define SPNC_NOINLINE
#endif

namespace spnc {

/// Reports a fatal internal error and aborts. Used by `spnc_unreachable`;
/// never returns.
[[noreturn]] inline void reportUnreachable(const char *Msg, const char *File,
                                           unsigned Line) {
  std::fprintf(stderr, "%s:%u: unreachable executed: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace spnc

/// Marks a point in the code that must never be reached. In all builds this
/// aborts with a message; it exists so fully covered switches over enums do
/// not need default labels.
#define spnc_unreachable(msg) ::spnc::reportUnreachable(msg, __FILE__, __LINE__)

#endif // SPNC_SUPPORT_COMPILER_H
