//===- bench_fig06_cpu_config.cpp - Paper Fig. 6 reproduction -------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces paper Fig. 6: execution time of the compiled
/// speaker-identification kernels under the CPU mapping configurations
///   No Vec. -> AVX2 (vectorized, scalar libm) -> +VecLib -> +Shuffle.
/// The paper's finding: vectorization without a vector library wastes the
/// SIMD unit on extract/call/insert; the vector library recovers it and
/// loads+shuffles add a further small gain.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace spnc;
using namespace spnc::bench;
using namespace spnc::runtime;

namespace {

struct Config {
  const char *Name;
  vm::ExecutionConfig Execution;
};

std::vector<Config> makeConfigs() {
  std::vector<Config> Configs;
  vm::ExecutionConfig NoVec;
  Configs.push_back(Config{"NoVec", NoVec});
  vm::ExecutionConfig Avx2;
  Avx2.VectorWidth = 8; // 8 f32 lanes = one AVX2 register
  Avx2.UseVecLib = false;
  Avx2.UseShuffle = false;
  Configs.push_back(Config{"AVX2", Avx2});
  vm::ExecutionConfig VecLib = Avx2;
  VecLib.UseVecLib = true;
  Configs.push_back(Config{"AVX2+VecLib", VecLib});
  vm::ExecutionConfig Shuffle = VecLib;
  Shuffle.UseShuffle = true;
  Configs.push_back(Config{"AVX2+VecLib+Shuffle", Shuffle});
  return Configs;
}

const std::vector<SpeakerInstance> &speakers() {
  static std::vector<SpeakerInstance> Instances =
      makeSpeakerSet(/*Noisy=*/false);
  return Instances;
}

void runConfig(benchmark::State &State, const Config &TheConfig) {
  const SpeakerInstance &Instance =
      speakers()[static_cast<size_t>(State.range(0))];
  CompilerOptions Options;
  Options.OptLevel = 2;
  Options.Execution = TheConfig.Execution;
  Expected<CompiledKernel> Kernel =
      compileModel(Instance.Model, spn::QueryConfig(), Options);
  if (!Kernel) {
    State.SkipWithError(Kernel.getError().message().c_str());
    return;
  }
  std::vector<double> Output(Instance.NumSamples);
  for (auto _ : State)
    Kernel->execute(Instance.Data.data(), Output.data(),
                    Instance.NumSamples);
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations()) *
      static_cast<int64_t>(Instance.NumSamples));
  benchmark::DoNotOptimize(Output.data());
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  // Timing-loop benchmarks on the first speaker model; the summary below
  // averages over all speakers.
  for (const Config &TheConfig : makeConfigs())
    benchmark::RegisterBenchmark(
        (std::string("fig06/") + TheConfig.Name).c_str(),
        [TheConfig](benchmark::State &State) {
          runConfig(State, TheConfig);
        })
        ->Arg(0)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.2);
  benchmark::RunSpecifiedBenchmarks();

  // Paper-style summary: normalized execution time per configuration
  // (geometric mean over speakers), NoVec = 1.0.
  printHeader("Fig. 6", "CPU compiler-configuration ablation "
                        "(speaker identification, clean)");
  std::vector<Config> Configs = makeConfigs();
  std::vector<double> Reference;
  for (const Config &TheConfig : Configs) {
    std::vector<double> Times;
    for (const SpeakerInstance &Instance : speakers()) {
      CompilerOptions Options;
      Options.OptLevel = 2;
      Options.Execution = TheConfig.Execution;
      Expected<CompiledKernel> Kernel =
          compileModel(Instance.Model, spn::QueryConfig(), Options);
      if (!Kernel)
        continue;
      std::vector<double> Output(Instance.NumSamples);
      Times.push_back(timeSeconds([&] {
        Kernel->execute(Instance.Data.data(), Output.data(),
                        Instance.NumSamples);
      }));
    }
    if (Reference.empty())
      Reference = Times;
    double Normalized = geoMean(Times) / geoMean(Reference);
    std::printf("%-22s exec time (geo-mean) = %8.3f ms   relative to "
                "NoVec = %5.2fx\n",
                TheConfig.Name, geoMean(Times) * 1e3, Normalized);
  }
  std::printf("paper shape: AVX2-without-VecLib loses to +VecLib; "
              "+Shuffle adds a small further gain\n");
  benchmark::Shutdown();
  return 0;
}
