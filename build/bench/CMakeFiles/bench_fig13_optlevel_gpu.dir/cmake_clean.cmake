file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_optlevel_gpu.dir/bench_fig13_optlevel_gpu.cpp.o"
  "CMakeFiles/bench_fig13_optlevel_gpu.dir/bench_fig13_optlevel_gpu.cpp.o.d"
  "bench_fig13_optlevel_gpu"
  "bench_fig13_optlevel_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_optlevel_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
