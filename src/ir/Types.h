//===- Types.h - Uniqued IR type system ------------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR type system: immutable, context-uniqued type objects accessed
/// through lightweight `Type` value handles, mirroring MLIR's design.
/// Pointer equality of the underlying storage is type equality.
///
/// The core provides the builtin types (integer, float, index, tensor,
/// memref, vector, none) plus the storage for the two SPN-dialect types
/// (`!hi_spn.prob` and `!lo_spn.log<T>`); the dialect-facing wrappers for
/// the latter live with their dialects.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_TYPES_H
#define SPNC_IR_TYPES_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace spnc {

class RawOStream;

namespace ir {

class Context;

/// Discriminator for the built-in type storage.
enum class TypeKind : uint8_t {
  None,
  Index,
  Integer,
  Float,
  /// Abstract probability type of the HiSPN dialect (paper §III-A).
  Probability,
  /// Log-space computation type of the LoSPN dialect (paper §III-B).
  Log,
  Tensor,
  MemRef,
  Vector,
};

/// Uniqued immutable storage shared by all type kinds. Field use depends on
/// the kind; unused fields keep their defaults and participate in uniquing.
struct TypeStorage {
  TypeKind Kind = TypeKind::None;
  Context *Ctx = nullptr;
  /// Integer bit width, float bit width (32/64) or vector lane count.
  unsigned Width = 0;
  /// Element type of Log/Tensor/MemRef/Vector.
  const TypeStorage *Element = nullptr;
  /// Shape of Tensor/MemRef; kDynamic encodes a dynamic dimension.
  std::vector<int64_t> Shape;

  static constexpr int64_t kDynamic = -1;
};

/// Value-semantic handle to a uniqued type. A default-constructed Type is
/// the null type.
class Type {
public:
  Type() = default;
  explicit Type(const TypeStorage *Impl) : Impl(Impl) {}

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(Type Other) const { return Impl == Other.Impl; }
  bool operator!=(Type Other) const { return Impl != Other.Impl; }

  TypeKind getKind() const {
    assert(Impl && "querying the null type");
    return Impl->Kind;
  }
  Context &getContext() const {
    assert(Impl && "querying the null type");
    return *Impl->Ctx;
  }
  const TypeStorage *getImpl() const { return Impl; }

  /// True if this is a 32/64-bit float type.
  bool isFloat() const { return Impl && Impl->Kind == TypeKind::Float; }
  /// True if this is an integer type.
  bool isInteger() const { return Impl && Impl->Kind == TypeKind::Integer; }
  /// True if values of this type can feed SPN arithmetic: float or
  /// log-space.
  bool isComputationType() const {
    return Impl && (Impl->Kind == TypeKind::Float ||
                    Impl->Kind == TypeKind::Log ||
                    Impl->Kind == TypeKind::Probability);
  }

  template <typename T> bool isa() const { return T::classof(*this); }
  template <typename T> T cast() const {
    assert(isa<T>() && "Type::cast to incompatible type");
    return T(Impl);
  }
  template <typename T> T dyn_cast() const {
    return isa<T>() ? T(Impl) : T();
  }

  /// Prints the textual form (e.g. `f32`, `memref<?x26xf32>`).
  void print(RawOStream &OS) const;

private:
  const TypeStorage *Impl = nullptr;
};

/// The empty type, used where an op has no meaningful result type.
class NoneType : public Type {
public:
  using Type::Type;
  static NoneType get(Context &Ctx);
  static bool classof(Type T) {
    return T && T.getKind() == TypeKind::None;
  }
};

/// The platform-sized index type used for batch indices.
class IndexType : public Type {
public:
  using Type::Type;
  static IndexType get(Context &Ctx);
  static bool classof(Type T) {
    return T && T.getKind() == TypeKind::Index;
  }
};

/// Arbitrary-width signless integer type (i1, i32, ...).
class IntegerType : public Type {
public:
  using Type::Type;
  static IntegerType get(Context &Ctx, unsigned Width);
  unsigned getWidth() const { return getImpl()->Width; }
  static bool classof(Type T) {
    return T && T.getKind() == TypeKind::Integer;
  }
};

/// IEEE float type of width 32 or 64.
class FloatType : public Type {
public:
  using Type::Type;
  static FloatType getF32(Context &Ctx);
  static FloatType getF64(Context &Ctx);
  unsigned getWidth() const { return getImpl()->Width; }
  static bool classof(Type T) {
    return T && T.getKind() == TypeKind::Float;
  }
};

/// Ranked tensor type (value-semantic batch container before
/// bufferization).
class TensorType : public Type {
public:
  using Type::Type;
  static TensorType get(Context &Ctx, std::vector<int64_t> Shape,
                        Type ElementType);
  const std::vector<int64_t> &getShape() const { return getImpl()->Shape; }
  Type getElementType() const { return Type(getImpl()->Element); }
  static bool classof(Type T) {
    return T && T.getKind() == TypeKind::Tensor;
  }
};

/// Ranked buffer type (side-effecting batch container after
/// bufferization).
class MemRefType : public Type {
public:
  using Type::Type;
  static MemRefType get(Context &Ctx, std::vector<int64_t> Shape,
                        Type ElementType);
  const std::vector<int64_t> &getShape() const { return getImpl()->Shape; }
  Type getElementType() const { return Type(getImpl()->Element); }
  static bool classof(Type T) {
    return T && T.getKind() == TypeKind::MemRef;
  }
};

/// Fixed-width SIMD vector type used by the CPU vectorization.
class VectorType : public Type {
public:
  using Type::Type;
  static VectorType get(Context &Ctx, unsigned NumLanes, Type ElementType);
  unsigned getNumLanes() const { return getImpl()->Width; }
  Type getElementType() const { return Type(getImpl()->Element); }
  static bool classof(Type T) {
    return T && T.getKind() == TypeKind::Vector;
  }
};

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_TYPES_H
