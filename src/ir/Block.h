//===- Block.h - Basic block holding operations ----------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Block owns an ordered list of operations and a list of typed block
/// arguments. All SPN dialect ops use single-block regions; the block
/// abstraction exists so the IR stays structurally faithful to MLIR.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_BLOCK_H
#define SPNC_IR_BLOCK_H

#include "ir/Value.h"

#include <list>
#include <memory>

namespace spnc {
namespace ir {

class Region;
class Operation;

class Block {
public:
  using OpList = std::list<Operation *>;
  using iterator = OpList::iterator;

  Block() = default;
  ~Block();

  Block(const Block &) = delete;
  Block &operator=(const Block &) = delete;

  /// Returns the region containing this block (null for detached blocks).
  Region *getParent() const { return ParentRegion; }
  /// Returns the operation whose region contains this block, or null.
  Operation *getParentOp() const;

  //===--------------------------------------------------------------------===//
  // Arguments
  //===--------------------------------------------------------------------===//

  /// Appends a new block argument of the given type.
  Value addArgument(Type Ty);
  unsigned getNumArguments() const {
    return static_cast<unsigned>(Arguments.size());
  }
  Value getArgument(unsigned Index) const {
    assert(Index < Arguments.size() && "block argument index out of range");
    return Value(Arguments[Index].get());
  }

  //===--------------------------------------------------------------------===//
  // Operation list
  //===--------------------------------------------------------------------===//

  OpList &getOperations() { return Operations; }
  const OpList &getOperations() const { return Operations; }

  iterator begin() { return Operations.begin(); }
  iterator end() { return Operations.end(); }
  bool empty() const { return Operations.empty(); }
  size_t size() const { return Operations.size(); }
  Operation *front() { return Operations.front(); }
  Operation *back() { return Operations.back(); }

  /// Appends \p Op to this block; \p Op must be detached.
  void push_back(Operation *Op);
  /// Inserts \p Op before \p Before; \p Op must be detached.
  void insertBefore(iterator Before, Operation *Op);

  /// Returns the last operation if it is a terminator, else null.
  Operation *getTerminator();

  /// Drops all operand references held by operations in this block
  /// (recursively), so blocks can be destroyed in any order.
  void dropAllReferences();

  /// Erases and destroys all operations.
  void clear();

private:
  Region *ParentRegion = nullptr;
  std::vector<std::unique_ptr<BlockArgumentImpl>> Arguments;
  OpList Operations;

  friend class Region;
  friend class Operation;
};

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_BLOCK_H
