//===- Cloning.cpp - Deep operation cloning -----------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"

using namespace spnc;
using namespace spnc::ir;

Operation *spnc::ir::cloneOperation(Operation *Op, ValueMapping &Mapping,
                                    OpBuilder &Builder) {
  OperationState State(Op->getName());
  for (unsigned I = 0; I < Op->getNumOperands(); ++I) {
    Value Operand = Op->getOperand(I);
    auto It = Mapping.find(Operand.getImpl());
    State.addOperand(It == Mapping.end() ? Operand : It->second);
  }
  for (unsigned I = 0; I < Op->getNumResults(); ++I)
    State.addResultType(Op->getResult(I).getType());
  for (const NamedAttribute &Entry : Op->getAttrs())
    State.addAttribute(Entry.Name, Entry.Value);
  State.NumRegions = Op->getNumRegions();

  Operation *Clone = Builder.createOperation(State);
  for (unsigned I = 0; I < Op->getNumResults(); ++I)
    Mapping[Op->getResult(I).getImpl()] = Clone->getResult(I);

  // Clone nested regions block by block.
  for (unsigned R = 0; R < Op->getNumRegions(); ++R) {
    Region &SourceRegion = Op->getRegion(R);
    Region &TargetRegion = Clone->getRegion(R);
    for (auto &SourceBlock : SourceRegion) {
      Block &TargetBlock = TargetRegion.emplaceBlock();
      for (unsigned A = 0; A < SourceBlock->getNumArguments(); ++A) {
        Value SourceArg = SourceBlock->getArgument(A);
        Value TargetArg = TargetBlock.addArgument(SourceArg.getType());
        Mapping[SourceArg.getImpl()] = TargetArg;
      }
      OpBuilder NestedBuilder =
          OpBuilder::atBlockEnd(Builder.getContext(), &TargetBlock);
      for (Operation *Nested : *SourceBlock)
        cloneOperation(Nested, Mapping, NestedBuilder);
    }
  }
  return Clone;
}
