//===- Baselines.cpp - SPFlow and Tensorflow-style baseline executors ---------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "dialects/lospn/LoSPNOps.h"
#include "support/Compiler.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "vm/Traceback.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace spnc;
using namespace spnc::baselines;
using namespace spnc::spn;

static std::vector<uint32_t> buildPositionMap(
    const Model &TheModel, const std::vector<Node *> &Order) {
  std::vector<uint32_t> PositionOf(TheModel.getNumNodes(), 0);
  for (size_t I = 0; I < Order.size(); ++I)
    PositionOf[Order[I]->getId()] = static_cast<uint32_t>(I);
  return PositionOf;
}

//===----------------------------------------------------------------------===//
// SPFlowInterpreter
//===----------------------------------------------------------------------===//

SPFlowInterpreter::SPFlowInterpreter(const Model &TheModel)
    : TheModel(TheModel), Order(TheModel.topologicalOrder()),
      PositionOf(buildPositionMap(TheModel, Order)) {}

void SPFlowInterpreter::execute(const double *Input, double *Output,
                                size_t NumSamples) const {
  const double NegInf = -std::numeric_limits<double>::infinity();
  unsigned NumFeatures = TheModel.getNumFeatures();
  std::vector<double> Values(Order.size());

  for (size_t S = 0; S < NumSamples; ++S) {
    const double *Sample = Input + S * NumFeatures;
    // Per-sample node-by-node walk with a kind dispatch at every node —
    // the structure of SPFlow's Python likelihood evaluation.
    for (size_t I = 0; I < Order.size(); ++I) {
      const Node *Current = Order[I];
      double LogValue = 0.0;
      switch (Current->getKind()) {
      case NodeKind::Sum: {
        const auto *Sum = cast<SumNode>(Current);
        LogValue = NegInf;
        const std::vector<double> &Weights = Sum->getWeights();
        for (size_t C = 0; C < Sum->getNumChildren(); ++C) {
          if (Weights[C] == 0.0)
            continue;
          double Term =
              std::log(Weights[C]) +
              Values[PositionOf[Sum->getChild(C)->getId()]];
          LogValue = lospn::logSumExp(LogValue, Term);
        }
        break;
      }
      case NodeKind::Product: {
        const auto *Product = cast<ProductNode>(Current);
        LogValue = 0.0;
        for (const Node *Child : Product->getChildren())
          LogValue += Values[PositionOf[Child->getId()]];
        break;
      }
      case NodeKind::Histogram: {
        const auto *Leaf = cast<HistogramLeaf>(Current);
        double X = Sample[Leaf->getFeatureIndex()];
        if (std::isnan(X)) {
          LogValue = 0.0;
          break;
        }
        LogValue = NegInf;
        for (const HistogramBucket &Bucket : Leaf->getBuckets())
          if (X >= Bucket.Lb && X < Bucket.Ub) {
            LogValue = std::log(Bucket.P);
            break;
          }
        break;
      }
      case NodeKind::Categorical: {
        const auto *Leaf = cast<CategoricalLeaf>(Current);
        double X = Sample[Leaf->getFeatureIndex()];
        if (std::isnan(X)) {
          LogValue = 0.0;
          break;
        }
        LogValue = std::log(
            lospn::evalCategorical(Leaf->getProbabilities(), X));
        break;
      }
      case NodeKind::Gaussian: {
        const auto *Leaf = cast<GaussianLeaf>(Current);
        double X = Sample[Leaf->getFeatureIndex()];
        if (std::isnan(X)) {
          LogValue = 0.0;
          break;
        }
        LogValue = lospn::evalGaussianLogPdf(Leaf->getMean(),
                                             Leaf->getStdDev(), X);
        break;
      }
      }
      Values[I] = LogValue;
    }
    Output[S] = Values[PositionOf[TheModel.getRoot()->getId()]];
  }
}

//===----------------------------------------------------------------------===//
// TfGraphExecutor
//===----------------------------------------------------------------------===//

TfGraphExecutor::TfGraphExecutor(const Model &TheModel)
    : TheModel(TheModel), Order(TheModel.topologicalOrder()),
      PositionOf(buildPositionMap(TheModel, Order)) {}

void TfGraphExecutor::execute(const double *Input, double *Output,
                              size_t NumSamples) const {
  const double NegInf = -std::numeric_limits<double>::infinity();
  unsigned NumFeatures = TheModel.getNumFeatures();

  // Op-at-a-time execution: every node owns a freshly allocated
  // whole-batch output tensor, like a Tensorflow graph where each SPN
  // node became an individual operation launched by the TF runtime
  // (paper §V-A2: "the graph is still broken down into individual
  // operations").
  std::vector<std::vector<double>> NodeOutputs(Order.size());

  for (size_t I = 0; I < Order.size(); ++I) {
    const Node *Current = Order[I];
    std::vector<double> Result(NumSamples);
    switch (Current->getKind()) {
    case NodeKind::Sum: {
      const auto *Sum = cast<SumNode>(Current);
      const std::vector<double> &Weights = Sum->getWeights();
      std::fill(Result.begin(), Result.end(), NegInf);
      for (size_t C = 0; C < Sum->getNumChildren(); ++C) {
        if (Weights[C] == 0.0)
          continue;
        double LogWeight = std::log(Weights[C]);
        const std::vector<double> &Child =
            NodeOutputs[PositionOf[Sum->getChild(C)->getId()]];
        for (size_t S = 0; S < NumSamples; ++S)
          Result[S] = lospn::logSumExp(Result[S], LogWeight + Child[S]);
      }
      break;
    }
    case NodeKind::Product: {
      const auto *Product = cast<ProductNode>(Current);
      std::fill(Result.begin(), Result.end(), 0.0);
      for (const Node *Child : Product->getChildren()) {
        const std::vector<double> &ChildOut =
            NodeOutputs[PositionOf[Child->getId()]];
        for (size_t S = 0; S < NumSamples; ++S)
          Result[S] += ChildOut[S];
      }
      break;
    }
    case NodeKind::Histogram: {
      const auto *Leaf = cast<HistogramLeaf>(Current);
      std::vector<double> Flat = Leaf->getFlatBuckets();
      for (size_t S = 0; S < NumSamples; ++S) {
        double X = Input[S * NumFeatures + Leaf->getFeatureIndex()];
        assert(!std::isnan(X) &&
               "TF translation does not support marginalization");
        Result[S] = std::log(lospn::evalHistogram(Flat, X));
      }
      break;
    }
    case NodeKind::Categorical: {
      const auto *Leaf = cast<CategoricalLeaf>(Current);
      for (size_t S = 0; S < NumSamples; ++S) {
        double X = Input[S * NumFeatures + Leaf->getFeatureIndex()];
        assert(!std::isnan(X) &&
               "TF translation does not support marginalization");
        Result[S] =
            std::log(lospn::evalCategorical(Leaf->getProbabilities(), X));
      }
      break;
    }
    case NodeKind::Gaussian: {
      const auto *Leaf = cast<GaussianLeaf>(Current);
      double Mean = Leaf->getMean();
      double StdDev = Leaf->getStdDev();
      for (size_t S = 0; S < NumSamples; ++S) {
        double X = Input[S * NumFeatures + Leaf->getFeatureIndex()];
        assert(!std::isnan(X) &&
               "TF translation does not support marginalization");
        Result[S] = lospn::evalGaussianLogPdf(Mean, StdDev, X);
      }
      break;
    }
    }
    NodeOutputs[I] = std::move(Result);
  }

  const std::vector<double> &RootOut =
      NodeOutputs[PositionOf[TheModel.getRoot()->getId()]];
  std::copy(RootOut.begin(), RootOut.end(), Output);
}

//===----------------------------------------------------------------------===//
// ExecutionEngine adapters
//===----------------------------------------------------------------------===//

void InterpreterEngine::execute(const double *Input, double *Output,
                                size_t NumSamples,
                                runtime::ExecutionStats *Stats) const {
  Timer WallTimer;
  Interpreter.execute(Input, Output, NumSamples);
  if (Stats) {
    *Stats = runtime::ExecutionStats();
    Stats->WallNs = WallTimer.elapsedNs();
    Stats->NumSamples = NumSamples;
  }
}

bool InterpreterEngine::executeMpe(const double *Evidence,
                                   double *Assignments, double *LogProbs,
                                   size_t NumSamples,
                                   runtime::ExecutionStats *Stats) const {
  Timer WallTimer;
  unsigned NumFeatures = TheModel.getNumFeatures();
  for (size_t S = 0; S < NumSamples; ++S) {
    double LogProb = TheModel.evalMpe(
        std::span<const double>(Evidence + S * NumFeatures, NumFeatures),
        std::span<double>(Assignments + S * NumFeatures, NumFeatures));
    if (LogProbs)
      LogProbs[S] = LogProb;
  }
  if (Stats) {
    *Stats = runtime::ExecutionStats();
    Stats->WallNs = WallTimer.elapsedNs();
    Stats->NumSamples = NumSamples;
  }
  return true;
}

bool InterpreterEngine::executeSample(const double *Evidence,
                                      double *Samples, size_t NumSamples,
                                      uint64_t Seed,
                                      runtime::ExecutionStats *Stats) const {
  Timer WallTimer;
  unsigned NumFeatures = TheModel.getNumFeatures();
  for (size_t S = 0; S < NumSamples; ++S) {
    Rng R(vm::perSampleSeed(Seed, S));
    TheModel.sampleAncestral(
        std::span<const double>(Evidence + S * NumFeatures, NumFeatures),
        std::span<double>(Samples + S * NumFeatures, NumFeatures), R);
  }
  if (Stats) {
    *Stats = runtime::ExecutionStats();
    Stats->WallNs = WallTimer.elapsedNs();
    Stats->NumSamples = NumSamples;
  }
  return true;
}

void TfGraphEngine::execute(const double *Input, double *Output,
                            size_t NumSamples,
                            runtime::ExecutionStats *Stats) const {
  Timer WallTimer;
  Executor.execute(Input, Output, NumSamples);
  if (Stats) {
    *Stats = runtime::ExecutionStats();
    Stats->WallNs = WallTimer.elapsedNs();
    Stats->NumSamples = NumSamples;
  }
}
