# Empty dependencies file for kernelcache_test.
# This may be replaced when dependencies are built.
