# Empty dependencies file for spnc_transforms.
# This may be replaced when dependencies are built.
