//===- gpusim_test.cpp - GPU simulator tests ------------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "gpusim/GpuSimulator.h"
#include "runtime/Compiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

using namespace spnc;
using namespace spnc::gpusim;
using namespace spnc::runtime;

namespace {

//===----------------------------------------------------------------------===//
// Occupancy model
//===----------------------------------------------------------------------===//

TEST(OccupancyTest, FullOccupancyForLightKernels) {
  GpuDeviceConfig Config;
  // A tiny kernel fills the SM regardless of block size.
  EXPECT_DOUBLE_EQ(computeOccupancy(Config, 64, 8), 1.0);
  EXPECT_DOUBLE_EQ(computeOccupancy(Config, 1024, 8), 1.0);
}

TEST(OccupancyTest, RegisterPressureQuantizesLargeBlocks) {
  GpuDeviceConfig Config;
  // 80 registers/thread: 819 register-limited threads per SM. Blocks of
  // 64 pack 12 blocks = 768 threads; blocks of 512 fit none (spill
  // regime) and blocks of 256 fit 3 = 768.
  double Small = computeOccupancy(Config, 64, 80);
  double Large = computeOccupancy(Config, 512, 80);
  EXPECT_GT(Small, 0.7);
  EXPECT_LE(Large, Small);
}

TEST(OccupancyTest, TinyBlocksHitBlockLimit) {
  GpuDeviceConfig Config;
  // Blocks of 16: at most MaxBlocksPerSM blocks = 256 threads resident.
  EXPECT_DOUBLE_EQ(computeOccupancy(Config, 16, 8),
                   16.0 * 16.0 / 1024.0);
}

TEST(OccupancyTest, SpillSlowdown) {
  GpuDeviceConfig Config;
  EXPECT_DOUBLE_EQ(computeSpillSlowdown(Config, 64, 80), 1.0);
  // 1024 threads x 80 regs = 81920 > 65536: block-level spill regime.
  EXPECT_GT(computeSpillSlowdown(Config, 1024, 80), 1.0);
  // Per-thread register demand beyond the architectural cap (255) adds a
  // gentle, bounded penalty on top of the block-level one.
  EXPECT_GT(computeSpillSlowdown(Config, 64, 10000),
            computeSpillSlowdown(Config, 64, 255));
  EXPECT_LE(computeSpillSlowdown(Config, 64, 1u << 30), 2.5);
  EXPECT_LE(computeSpillSlowdown(Config, 1024, 1u << 30), 4.0 * 2.5);
}

//===----------------------------------------------------------------------===//
// Execution statistics
//===----------------------------------------------------------------------===//

class GpuStatsTest : public ::testing::Test {
protected:
  void SetUp() override {
    workloads::SpeakerModelOptions Options;
    Options.TargetOperations = 400;
    Options.Seed = 31;
    Model = std::make_unique<spn::Model>(
        workloads::generateSpeakerModel(Options));
    Data = workloads::generateSpeechData(Options, kNumSamples, 2);
  }

  GpuExecutionStats run(const CompilerOptions &Options) {
    Expected<CompiledKernel> Kernel =
        compileModel(*Model, spn::QueryConfig(), Options);
    EXPECT_TRUE(static_cast<bool>(Kernel));
    std::vector<double> Output(kNumSamples);
    runtime::ExecutionStats Stats;
    Kernel->execute(Data.data(), Output.data(), kNumSamples, &Stats);
    EXPECT_TRUE(Stats.HasGpuStats);
    return Stats.Gpu;
  }

  static constexpr size_t kNumSamples = 2048;
  std::unique_ptr<spn::Model> Model;
  std::vector<double> Data;
};

TEST_F(GpuStatsTest, AccountsTransfersAndLaunches) {
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  GpuExecutionStats Stats = run(Options);
  EXPECT_GT(Stats.ComputeNs, 0u);
  EXPECT_GT(Stats.TransferNs, 0u);
  EXPECT_EQ(Stats.NumLaunches, 1u); // single task, one launch
  EXPECT_EQ(Stats.NumTransfers, 2u); // input up, output down
  // f32 compute: 26 features + 1 output value per sample.
  EXPECT_EQ(Stats.BytesHostToDevice, kNumSamples * 26 * sizeof(float));
  EXPECT_EQ(Stats.BytesDeviceToHost, kNumSamples * sizeof(float));
  EXPECT_EQ(Stats.totalNs(),
            Stats.ComputeNs + Stats.TransferNs + Stats.LaunchNs);
}

TEST_F(GpuStatsTest, TransferEliminationRemovesIntermediateTraffic) {
  CompilerOptions With;
  With.TheTarget = Target::GPU;
  With.MaxPartitionSize = 60;
  CompilerOptions Without = With;
  Without.GpuTransferElimination = false;

  GpuExecutionStats StatsWith = run(With);
  GpuExecutionStats StatsWithout = run(Without);

  // Same number of launches (same tasks), but many more transfers and
  // bytes without the elimination pass (paper §IV-C).
  EXPECT_EQ(StatsWith.NumLaunches, StatsWithout.NumLaunches);
  EXPECT_GT(StatsWithout.NumTransfers, StatsWith.NumTransfers);
  EXPECT_GT(StatsWithout.BytesDeviceToHost, StatsWith.BytesDeviceToHost);
  EXPECT_GT(StatsWithout.BytesHostToDevice, StatsWith.BytesHostToDevice);
  EXPECT_GT(StatsWithout.TransferNs, StatsWith.TransferNs);
}

TEST_F(GpuStatsTest, PartitionedKernelLaunchesPerTask) {
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  Options.MaxPartitionSize = 60;
  Expected<CompiledKernel> Kernel =
      compileModel(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  std::vector<double> Output(kNumSamples);
  runtime::ExecutionStats ExecStats;
  Kernel->execute(Data.data(), Output.data(), kNumSamples, &ExecStats);
  GpuExecutionStats Stats = ExecStats.Gpu;
  EXPECT_EQ(Stats.NumLaunches, Kernel->getProgram().Tasks.size());
  EXPECT_GT(Stats.NumLaunches, 1u);
}

/// Device-parameter sweep: correctness is configuration-invariant and
/// the simulated clock responds monotonically to the throughput knobs.
class DeviceConfigTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DeviceConfigTest, ResultsInvariantTimesResponsive) {
  auto [PeakSpeedup, BandwidthGBs] = GetParam();
  workloads::SpeakerModelOptions Options;
  Options.TargetOperations = 300;
  Options.Seed = 12;
  spn::Model Model = workloads::generateSpeakerModel(Options);
  std::vector<double> Data =
      workloads::generateSpeechData(Options, 512, 3);

  CompilerOptions Reference;
  Expected<CompiledKernel> CpuKernel =
      compileModel(Model, spn::QueryConfig(), Reference);
  ASSERT_TRUE(static_cast<bool>(CpuKernel));
  std::vector<double> ExpectedOut(512);
  CpuKernel->execute(Data.data(), ExpectedOut.data(), 512);

  CompilerOptions Gpu;
  Gpu.TheTarget = Target::GPU;
  Gpu.Device.PeakSpeedup = PeakSpeedup;
  Gpu.Device.PcieBandwidthGBs = BandwidthGBs;
  Expected<CompiledKernel> GpuKernel =
      compileModel(Model, spn::QueryConfig(), Gpu);
  ASSERT_TRUE(static_cast<bool>(GpuKernel));
  std::vector<double> Actual(512);
  runtime::ExecutionStats FastExec;
  GpuKernel->execute(Data.data(), Actual.data(), 512, &FastExec);
  for (size_t S = 0; S < 512; ++S)
    EXPECT_NEAR(Actual[S], ExpectedOut[S],
                std::abs(ExpectedOut[S]) * 1e-4 + 1e-4);

  // A faster device must not report a slower compute clock: compare
  // against a 2x-derated configuration.
  gpusim::GpuExecutionStats Fast = FastExec.Gpu;
  CompilerOptions Slow = Gpu;
  Slow.Device.PeakSpeedup = PeakSpeedup / 2;
  Slow.Device.PcieBandwidthGBs = BandwidthGBs / 2;
  Expected<CompiledKernel> SlowKernel =
      compileModel(Model, spn::QueryConfig(), Slow);
  ASSERT_TRUE(static_cast<bool>(SlowKernel));
  runtime::ExecutionStats SlowExec;
  SlowKernel->execute(Data.data(), Actual.data(), 512, &SlowExec);
  gpusim::GpuExecutionStats SlowStats = SlowExec.Gpu;
  EXPECT_GT(SlowStats.TransferNs, Fast.TransferNs);
  // Compute is measured on a shared host core, so allow scheduling
  // noise around the modelled 2x.
  EXPECT_GT(static_cast<double>(SlowStats.ComputeNs),
            0.8 * static_cast<double>(Fast.ComputeNs));
}

INSTANTIATE_TEST_SUITE_P(
    Devices, DeviceConfigTest,
    ::testing::Combine(::testing::Values(2.0, 8.0, 64.0),
                       ::testing::Values(0.001, 0.01, 1.0)));

TEST_F(GpuStatsTest, TransferDominatedForSmallModels) {
  // The Fig. 9 relation: for the speaker-scale models, data movement is
  // the majority of GPU execution time.
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  Options.OptLevel = 2;
  Options.GpuBlockSize = 64;
  GpuExecutionStats Stats = run(Options);
  EXPECT_GT(Stats.transferFraction(), 0.5);
}

//===----------------------------------------------------------------------===//
// Block size selection
//===----------------------------------------------------------------------===//

class BlockSizeTest : public GpuStatsTest {
protected:
  /// Compiles for the GPU and returns the executor's effective block
  /// size.
  unsigned blockSizeFor(unsigned Requested,
                        GpuDeviceConfig Device = {}) {
    CompilerOptions Options;
    Options.TheTarget = Target::GPU;
    Options.GpuBlockSize = Requested;
    Options.Device = Device;
    Expected<CompiledKernel> Kernel =
        compileModel(*Model, spn::QueryConfig(), Options);
    EXPECT_TRUE(static_cast<bool>(Kernel));
    const auto *Executor =
        dynamic_cast<const GpuExecutor *>(&Kernel->getEngine());
    EXPECT_NE(Executor, nullptr);
    return Executor ? Executor->getBlockSize() : 0;
  }
};

TEST_F(BlockSizeTest, UnsetDefaultsToOccupancyOptimal64) {
  // An unset block size must choose the occupancy-optimal default, NOT
  // the query batch size: batches routinely exceed the per-block
  // register budget (paper §V-A1's sweep puts the optimum at small
  // blocks for register-heavy SPN kernels).
  EXPECT_EQ(GpuExecutor::kDefaultBlockSize, 64u);
  EXPECT_EQ(blockSizeFor(0), 64u);
}

TEST_F(BlockSizeTest, DefaultIndependentOfBatchSize) {
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  Expected<CompiledKernel> Kernel =
      compileModel(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  const auto *Executor =
      dynamic_cast<const GpuExecutor *>(&Kernel->getEngine());
  ASSERT_NE(Executor, nullptr);
  // Execute with a batch far larger than the block: the block size is
  // fixed at construction and never tracks NumSamples.
  std::vector<double> Output(kNumSamples);
  Kernel->execute(Data.data(), Output.data(), kNumSamples);
  EXPECT_EQ(Executor->getBlockSize(), GpuExecutor::kDefaultBlockSize);
  EXPECT_NE(Executor->getBlockSize(), kNumSamples);
}

TEST_F(BlockSizeTest, ExplicitOverrideRespected) {
  EXPECT_EQ(blockSizeFor(128), 128u);
  EXPECT_EQ(blockSizeFor(32), 32u);
}

TEST_F(BlockSizeTest, ClampedToDeviceLimit) {
  GpuDeviceConfig Device;
  Device.MaxThreadsPerBlock = 256;
  // The default fits; an explicit size above the limit is clamped by
  // the executor (the pipeline rejects out-of-range requests earlier,
  // so exercise the executor directly too).
  EXPECT_EQ(blockSizeFor(0, Device), 64u);
  GpuExecutor Direct(vm::KernelProgram(), Device, /*BlockSize=*/512);
  EXPECT_EQ(Direct.getBlockSize(), 256u);
}

TEST_F(BlockSizeTest, DirectConstructionDefaults) {
  GpuExecutor Defaulted(vm::KernelProgram(), {}, /*BlockSize=*/0);
  EXPECT_EQ(Defaulted.getBlockSize(), GpuExecutor::kDefaultBlockSize);
  GpuExecutor Overridden(vm::KernelProgram(), {}, /*BlockSize=*/96);
  EXPECT_EQ(Overridden.getBlockSize(), 96u);
}

//===----------------------------------------------------------------------===//
// Streams (simulated device contexts)
//===----------------------------------------------------------------------===//

TEST(StreamTest, ZeroStreamsBehavesLikeOne) {
  GpuExecutor Defaulted(vm::KernelProgram(), {}, /*BlockSize=*/0);
  EXPECT_EQ(Defaulted.getNumStreams(), 1u);
  GpuDeviceConfig Device;
  Device.NumStreams = 4;
  GpuExecutor FourStreams(vm::KernelProgram(), Device, /*BlockSize=*/0);
  EXPECT_EQ(FourStreams.getNumStreams(), 4u);
  EXPECT_EQ(FourStreams.getStreamKernelCounts().size(), 4u);
}

TEST(StreamTest, ThreadAssignmentIsStickyAndRoundRobin) {
  GpuDeviceConfig Device;
  Device.NumStreams = 4;
  GpuExecutor Executor(vm::KernelProgram(), Device, /*BlockSize=*/0);
  // Sticky: the calling thread keeps its stream across calls.
  unsigned Mine = Executor.streamForCallingThread();
  EXPECT_EQ(Executor.streamForCallingThread(), Mine);
  // Round-robin: 4 threads on a 4-stream device land on 4 distinct
  // streams.
  std::mutex Mutex;
  std::set<unsigned> Assigned;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      unsigned Stream = Executor.streamForCallingThread();
      EXPECT_EQ(Executor.streamForCallingThread(), Stream); // sticky
      std::lock_guard<std::mutex> Lock(Mutex);
      Assigned.insert(Stream);
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  // The main thread already took one stream, so the 4 workers wrap
  // around the pool; together they still cover every stream.
  Assigned.insert(Mine);
  EXPECT_EQ(Assigned.size(), 4u);
}

TEST_F(GpuStatsTest, StreamStatsAccountExecutions) {
  // Single-threaded execution on a multi-stream device: one stream
  // carries every kernel, no overlap is observed, and compute time is
  // not inflated (ConcurrentStreams == 1 leaves ComputeNs unscaled).
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  Options.Device.NumStreams = 4;
  Expected<CompiledKernel> Kernel =
      compileModel(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  const auto *Executor =
      dynamic_cast<const GpuExecutor *>(&Kernel->getEngine());
  ASSERT_NE(Executor, nullptr);
  EXPECT_EQ(Executor->getNumStreams(), 4u);

  std::vector<double> Output(kNumSamples);
  runtime::ExecutionStats Stats;
  Kernel->execute(Data.data(), Output.data(), kNumSamples, &Stats);
  ASSERT_TRUE(Stats.HasGpuStats);
  EXPECT_LT(Stats.Gpu.StreamId, 4u);
  EXPECT_EQ(Stats.Gpu.ConcurrentStreams, 1u);

  std::vector<uint64_t> Counts = Executor->getStreamKernelCounts();
  ASSERT_EQ(Counts.size(), 4u);
  uint64_t Total = 0;
  for (uint64_t C : Counts)
    Total += C;
  EXPECT_GE(Total, 1u);
  EXPECT_GE(Counts[Stats.Gpu.StreamId], 1u);
}

TEST_F(GpuStatsTest, ConcurrentStreamsShareTheDevice) {
  // Four threads on a 4-stream device: every execution lands on its
  // thread's stream, the per-stream kernel counts sum to the kernel
  // total, and at least one execution observes device sharing
  // (ConcurrentStreams > 1) under sustained concurrent load.
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  Options.Device.NumStreams = 4;
  Expected<CompiledKernel> Kernel =
      compileModel(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  const auto *Executor =
      dynamic_cast<const GpuExecutor *>(&Kernel->getEngine());
  ASSERT_NE(Executor, nullptr);

  constexpr unsigned kThreads = 4;
  constexpr unsigned kReps = 8;
  std::atomic<unsigned> MaxConcurrency{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T)
    Threads.emplace_back([&] {
      std::vector<double> Output(kNumSamples);
      for (unsigned R = 0; R < kReps; ++R) {
        runtime::ExecutionStats Stats;
        Kernel->execute(Data.data(), Output.data(), kNumSamples,
                        &Stats);
        ASSERT_TRUE(Stats.HasGpuStats);
        EXPECT_LT(Stats.Gpu.StreamId, 4u);
        unsigned Seen = Stats.Gpu.ConcurrentStreams;
        unsigned Prior = MaxConcurrency.load();
        while (Prior < Seen &&
               !MaxConcurrency.compare_exchange_weak(Prior, Seen)) {
        }
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  std::vector<uint64_t> Counts = Executor->getStreamKernelCounts();
  uint64_t Total = 0;
  for (uint64_t C : Counts)
    Total += C;
  EXPECT_EQ(Total, uint64_t(kThreads) * kReps);
  // Concurrency is bounded by the stream count; observing any overlap
  // is timing-dependent, so only the bound is asserted strictly.
  EXPECT_LE(MaxConcurrency.load(), 4u);
}

} // namespace
