file(REMOVE_RECURSE
  "libspnc_runtime.a"
)
