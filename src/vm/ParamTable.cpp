//===- ParamTable.cpp - Weight-table binding for parameterized programs -------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "vm/ParamTable.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>

using namespace spnc;
using namespace spnc::vm;

double spnc::vm::transformParam(ParamTransform Transform, double Raw) {
  // Every formula below is the exact arithmetic the code generator runs
  // when it bakes the generating model's constants (Codegen.cpp): the
  // self-binding check compares the results bit-for-bit.
  switch (Transform) {
  case ParamTransform::Identity:
    return Raw;
  case ParamTransform::Log:
    return std::log(Raw);
  case ParamTransform::Reciprocal:
    return 1.0 / Raw;
  case ParamTransform::LogGaussCoefficient:
    return -std::log(Raw) - kLogSqrt2Pi;
  case ParamTransform::LinearGaussCoefficient:
    return kInvSqrt2Pi / Raw;
  }
  return Raw;
}

void spnc::vm::bindTaskParams(TaskProgram &Task,
                              std::span<const double> Raw) {
  for (const ParamSite &Site : Task.ParamSites) {
    assert(Site.Param < Raw.size() && "parameter index out of range");
    double Value = transformParam(Site.Transform, Raw[Site.Param]);
    switch (Site.Kind) {
    case ParamSlotKind::ConstPool:
      Task.ConstPool[Site.Index] = Value;
      break;
    case ParamSlotKind::GaussianMean:
      Task.Gaussians[Site.Index].Mean = Value;
      break;
    case ParamSlotKind::GaussianInvStdDev:
      Task.Gaussians[Site.Index].InvStdDev = Value;
      break;
    case ParamSlotKind::GaussianCoefficient:
      Task.Gaussians[Site.Index].Coefficient = Value;
      break;
    case ParamSlotKind::TableValue:
      for (uint32_t I = 0; I < Site.Count; ++I)
        Task.Tables[Site.Index].Values[Site.Slot + I] = Value;
      break;
    case ParamSlotKind::SelectValue:
      Task.Selects[Site.Index].Value = Value;
      break;
    }
  }
}

KernelProgram spnc::vm::bindParams(const KernelProgram &Program,
                                   std::span<const double> Raw) {
  assert(Program.Parameterized && "binding a non-parameterized program");
  assert(Raw.size() == Program.NumParams &&
         "weight table length must match the program's parameter count");
  KernelProgram Bound = Program;
  for (TaskProgram &Task : Bound.Tasks)
    bindTaskParams(Task, Raw);
  return Bound;
}

namespace {

bool sameBits(double A, double B) {
  return std::bit_cast<uint64_t>(A) == std::bit_cast<uint64_t>(B);
}

} // namespace

bool spnc::vm::verifySelfBinding(const KernelProgram &Program,
                                 std::span<const double> Raw,
                                 std::string *Why) {
  auto Fail = [&](const std::string &Message) {
    if (Why)
      *Why = Message;
    return false;
  };
  if (!Program.Parameterized)
    return Fail("program is not parameterized");
  if (Raw.size() != Program.NumParams)
    return Fail("parameter count mismatch: program has " +
                std::to_string(Program.NumParams) + ", model extracts " +
                std::to_string(Raw.size()));
  KernelProgram Bound = bindParams(Program, Raw);
  for (size_t T = 0; T < Program.Tasks.size(); ++T) {
    const TaskProgram &A = Program.Tasks[T];
    const TaskProgram &B = Bound.Tasks[T];
    std::string Where = " (task " + std::to_string(T) + ")";
    for (size_t I = 0; I < A.ConstPool.size(); ++I)
      if (!sameBits(A.ConstPool[I], B.ConstPool[I]))
        return Fail("self-binding diverges at const-pool slot " +
                    std::to_string(I) + Where);
    for (size_t I = 0; I < A.Gaussians.size(); ++I)
      if (!sameBits(A.Gaussians[I].Mean, B.Gaussians[I].Mean) ||
          !sameBits(A.Gaussians[I].InvStdDev, B.Gaussians[I].InvStdDev) ||
          !sameBits(A.Gaussians[I].Coefficient,
                    B.Gaussians[I].Coefficient))
        return Fail("self-binding diverges at gaussian " +
                    std::to_string(I) + Where);
    for (size_t I = 0; I < A.Tables.size(); ++I)
      for (size_t J = 0; J < A.Tables[I].Values.size(); ++J)
        if (!sameBits(A.Tables[I].Values[J], B.Tables[I].Values[J]))
          return Fail("self-binding diverges at table " +
                      std::to_string(I) + " slot " + std::to_string(J) +
                      Where);
    for (size_t I = 0; I < A.Selects.size(); ++I)
      if (!sameBits(A.Selects[I].Value, B.Selects[I].Value))
        return Fail("self-binding diverges at select " +
                    std::to_string(I) + Where);
  }
  return true;
}

std::vector<double> spnc::vm::flattenTaskTables(const TaskProgram &Task) {
  std::vector<double> Flat;
  Flat.reserve(Task.ConstPool.size() + Task.Gaussians.size() * 3 +
               Task.Selects.size());
  Flat.insert(Flat.end(), Task.ConstPool.begin(), Task.ConstPool.end());
  for (const GaussianParams &G : Task.Gaussians) {
    Flat.push_back(G.Mean);
    Flat.push_back(G.InvStdDev);
    Flat.push_back(G.Coefficient);
  }
  for (const LookupTable &Table : Task.Tables)
    Flat.insert(Flat.end(), Table.Values.begin(), Table.Values.end());
  for (const SelectRange &Select : Task.Selects)
    Flat.push_back(Select.Value);
  return Flat;
}
