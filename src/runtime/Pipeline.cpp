//===- Pipeline.cpp - Staged compilation pipeline ------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/Pipeline.h"

#include "frontend/HiSPNTranslation.h"
#include "ir/Printer.h"
#include "ir/Transforms.h"
#include "ir/Verifier.h"
#include "support/Hashing.h"
#include "support/RawOStream.h"
#include "support/Timer.h"
#include "vm/ProgramBinary.h"

#include <algorithm>
#include <cstdio>
#include <utility>

using namespace spnc;
using namespace spnc::ir;
using namespace spnc::runtime;

//===----------------------------------------------------------------------===//
// PipelineConfig
//===----------------------------------------------------------------------===//

Expected<PipelineConfig> PipelineConfig::create(CompilerOptions Options) {
  // Compiling under Auto selects the CPU; only kernel loading defers the
  // decision to the saved binary.
  if (Options.TheTarget == Target::Auto)
    Options.TheTarget = Target::CPU;
  if (Options.OptLevel > 3)
    return makeError("invalid optimization level " +
                     std::to_string(Options.OptLevel) +
                     " (supported: 0-3)");
  unsigned W = Options.Execution.VectorWidth;
  if (W != 1 && W != 4 && W != 8 && W != 16)
    return makeError("invalid vector width " + std::to_string(W) +
                     " (supported: 1, 4, 8, 16)");
  if (Options.Execution.NumThreads == 0)
    Options.Execution.NumThreads = 1;
  unsigned CW = Options.Lowering.ComputeWidth;
  if (CW != 0 && CW != 32 && CW != 64)
    return makeError("invalid compute width " + std::to_string(CW) +
                     " (supported: 0 = auto, 32, 64)");
  if (Options.GpuBlockSize > Options.Device.MaxThreadsPerBlock)
    return makeError("GPU block size " +
                     std::to_string(Options.GpuBlockSize) +
                     " exceeds the device limit of " +
                     std::to_string(Options.Device.MaxThreadsPerBlock) +
                     " threads per block");
  if (Options.Lowering.Parameterize && Options.TheTarget == Target::GPU)
    return makeError("parameterized (merged-model) compilation targets "
                     "the CPU; the GPU path does not take weight tables");
  return PipelineConfig(std::move(Options));
}

uint64_t PipelineConfig::hash() const {
  const CompilerOptions &O = Options;
  size_t Seed = hashCombine(
      static_cast<unsigned>(O.TheTarget), O.OptLevel, O.MaxPartitionSize,
      O.Execution.VectorWidth, O.Execution.UseVecLib,
      O.Execution.UseShuffle, O.Execution.NumThreads,
      O.Execution.ChunkSize, O.GpuBlockSize, O.GpuTransferElimination,
      O.AvoidBufferCopies);
  hashCombineSeed(Seed,
                  hashCombine(O.Lowering.ComputeWidth,
                              O.Lowering.F32MinLogThreshold,
                              O.Lowering.GaussianEvidenceSigmas,
                              O.Lowering.Parameterize));
  hashCombineSeed(
      Seed, hashCombine(O.Partitioning.MaxPartitionSize,
                        O.Partitioning.Slack,
                        O.Partitioning.MaxRefinementSweeps,
                        O.Partitioning.EnableRefinement,
                        static_cast<unsigned>(O.Partitioning.Strategy)));
  hashCombineSeed(
      Seed,
      hashCombine(O.Device.NumSMs, O.Device.MaxThreadsPerBlock,
                  O.Device.MaxThreadsPerSM, O.Device.MaxBlocksPerSM,
                  O.Device.RegistersPerSM, O.Device.PeakSpeedup,
                  O.Device.PcieBandwidthGBs, O.Device.TransferLatencyUs,
                  O.Device.KernelLaunchOverheadUs,
                  O.Device.BlockScheduleOverheadNs,
                  O.Device.DeviceBandwidthGBs, O.Device.NumStreams));
  return Seed;
}

using runtime::detail::StageContext;

//===----------------------------------------------------------------------===//
// CompilationPipeline
//===----------------------------------------------------------------------===//

Expected<CompilationPipeline>
CompilationPipeline::create(CompilerOptions Options) {
  Expected<PipelineConfig> Config =
      PipelineConfig::create(std::move(Options));
  if (!Config)
    return Config.getError();
  return CompilationPipeline(Config.takeValue());
}

CompilationPipeline::CompilationPipeline(PipelineConfig TheConfig)
    : Config(std::move(TheConfig)) {
  buildStages();
}

namespace {

/// Resolves the query's Auto compute type against a forced lowering
/// width, mirroring the paper's "decide in the lowering" default.
spn::QueryConfig resolveQuery(const spn::QueryConfig &Query,
                              const CompilerOptions &Options) {
  spn::QueryConfig Resolved = Query;
  if (Resolved.DataType == spn::ComputeType::Auto &&
      Options.Lowering.ComputeWidth != 0)
    Resolved.DataType = Options.Lowering.ComputeWidth == 64
                            ? spn::ComputeType::F64
                            : spn::ComputeType::F32;
  // MPE and sampling mark to-be-completed features with NaN evidence,
  // so their kernels always support marginalized evidence.
  if (Resolved.Kind == spn::QueryKind::Mpe ||
      Resolved.Kind == spn::QueryKind::Sample)
    Resolved.SupportMarginal = true;
  return Resolved;
}

/// MPE/sampling programs carry a traceback plan whose register
/// references require a single unpartitioned task (see Codegen.h).
bool queryNeedsTraceback(const spn::QueryConfig &Query) {
  return Query.Kind == spn::QueryKind::Mpe ||
         Query.Kind == spn::QueryKind::Sample;
}

/// The pass list of the target-independent IR pipeline (paper §IV-A),
/// as human-readable text for stage introspection.
std::string describeIrPipeline(const CompilerOptions &Options) {
  std::string Detail;
  auto Append = [&](const std::string &Pass) {
    if (!Detail.empty())
      Detail += ", ";
    Detail += Pass;
  };
  if (Options.OptLevel >= 1)
    Append("canonicalize");
  Append("lower-hispn-to-lospn");
  if (Options.MaxPartitionSize > 0)
    Append("partition-tasks(max=" +
           std::to_string(Options.MaxPartitionSize) + ")");
  if (Options.OptLevel >= 1) {
    Append("canonicalize");
    Append("cse");
  }
  Append("bufferize");
  if (Options.TheTarget == Target::GPU && Options.GpuTransferElimination)
    Append("gpu-transfer-elimination");
  return Detail;
}

/// Operations in the module threaded through \p C, 0 when no module
/// exists at this point of the run.
size_t countModuleOps(StageContext &C) {
  if (!C.Module)
    return 0;
  size_t NumOps = 0;
  C.Module.get().getOperation()->walk([&](Operation *) { ++NumOps; });
  return NumOps;
}

} // namespace

bool CompilationPipeline::hasStage(const std::string &Name) const {
  return std::any_of(
      Stages.begin(), Stages.end(),
      [&](const PipelineStage &Stage) { return Stage.Name == Name; });
}

std::optional<Error>
CompilationPipeline::registerStage(PipelineStage Info, StageRunner Runner,
                                   StageAnchor Anchor) {
  if (Info.Name.empty())
    return makeError("pipeline stage name must not be empty");
  if (hasStage(Info.Name))
    return makeError("duplicate pipeline stage name '" + Info.Name +
                     "': every stage must be registered under a unique "
                     "name");
  size_t Index = Stages.size();
  if (Anchor.getPlacement() != StageAnchor::Placement::End) {
    auto It = std::find_if(Stages.begin(), Stages.end(),
                           [&](const PipelineStage &Stage) {
                             return Stage.Name == Anchor.getReference();
                           });
    if (It == Stages.end())
      return makeError(
          "cannot anchor stage '" + Info.Name + "' " +
          (Anchor.getPlacement() == StageAnchor::Placement::Before
               ? "before"
               : "after") +
          " unknown stage '" + Anchor.getReference() + "'");
    Index = static_cast<size_t>(It - Stages.begin());
    if (Anchor.getPlacement() == StageAnchor::Placement::After)
      ++Index;
  }
  Stages.insert(Stages.begin() + static_cast<ptrdiff_t>(Index),
                std::move(Info));
  Runners.insert(Runners.begin() + static_cast<ptrdiff_t>(Index),
                 std::move(Runner));
  return std::nullopt;
}

std::optional<Error> CompilationPipeline::enableVerifyAfterEachStage() {
  // Snapshot first: registering mutates the stage list we iterate.
  std::vector<std::string> Anchors;
  for (const PipelineStage &Stage : Stages)
    if (!Stage.Diagnostic)
      Anchors.push_back(Stage.Name);
  for (const std::string &Anchor : Anchors) {
    PipelineStage Info{"verify:" + Anchor,
                       "IR verification after '" + Anchor + "'",
                       /*Diagnostic=*/true};
    std::optional<Error> Err = registerStage(
        std::move(Info),
        [Anchor](StageContext &C) -> std::optional<Error> {
          if (!C.Module)
            return std::nullopt;
          std::string FirstDiagnostic;
          if (failed(ir::verify(C.Module.get().getOperation(),
                                &FirstDiagnostic)))
            return makeError(
                "IR verification failed after stage '" + Anchor + "'" +
                (FirstDiagnostic.empty() ? std::string()
                                         : ": " + FirstDiagnostic));
          return std::nullopt;
        },
        StageAnchor::after(Anchor));
    if (Err)
      return Err;
  }
  return std::nullopt;
}

std::optional<Error>
CompilationPipeline::addIrDumpStage(const std::string &AfterStage,
                                    std::string OutputPath) {
  PipelineStage Info{"ir-dump:" + AfterStage,
                     OutputPath.empty()
                         ? "module dump after '" + AfterStage +
                               "' to stderr"
                         : "module dump after '" + AfterStage + "' to '" +
                               OutputPath + "'",
                     /*Diagnostic=*/true};
  return registerStage(
      std::move(Info),
      [AfterStage,
       Path = std::move(OutputPath)](StageContext &C) -> std::optional<Error> {
        if (!C.Module)
          return std::nullopt;
        if (Path.empty()) {
          FileOStream OS(stderr);
          OS << "// IR after stage '" << AfterStage << "'\n";
          ir::printOperation(C.Module.get().getOperation(), OS);
          return std::nullopt;
        }
        std::FILE *File = std::fopen(Path.c_str(), "w");
        if (!File)
          return makeError("cannot open IR dump file '" + Path + "'");
        FileOStream OS(File);
        ir::printOperation(C.Module.get().getOperation(), OS);
        std::fclose(File);
        return std::nullopt;
      },
      StageAnchor::after(AfterStage));
}

std::optional<Error> CompilationPipeline::enableStageReport() {
  std::vector<std::string> Anchors;
  for (const PipelineStage &Stage : Stages)
    if (!Stage.Diagnostic)
      Anchors.push_back(Stage.Name);
  for (const std::string &Anchor : Anchors) {
    PipelineStage Info{"stage-report:" + Anchor,
                       "module op count after '" + Anchor + "'",
                       /*Diagnostic=*/true};
    std::optional<Error> Err = registerStage(
        std::move(Info),
        [Anchor](StageContext &C) -> std::optional<Error> {
          C.Stats.OpCounts.push_back({Anchor, countModuleOps(C)});
          return std::nullopt;
        },
        StageAnchor::after(Anchor));
    if (Err)
      return Err;
  }
  return std::nullopt;
}

void CompilationPipeline::buildStages() {
  const CompilerOptions &O = Config.getOptions();
  // The default registration set. Names are unique and the anchors refer
  // to already-registered stages, so none of these can fail.
  auto MustRegister = [&](PipelineStage Info, StageRunner Runner) {
    std::optional<Error> Err =
        registerStage(std::move(Info), std::move(Runner));
    (void)Err;
    assert(!Err && "default stage registration failed");
  };

  // Stage 1: translation into the HiSPN dialect (paper §IV-A2). Under
  // merged-model compilation the translation tags every sum/leaf op with
  // its canonical parameter base index (docs/merging.md).
  MustRegister({"translate", O.Lowering.Parameterize
                                 ? "model -> HiSPN dialect (parameterized)"
                                 : "model -> HiSPN dialect"},
               [](StageContext &C) -> std::optional<Error> {
    C.Module = spn::translateToHiSPN(C.Ctx, C.Model, C.Query,
                                     C.Options.Lowering.Parameterize);
    if (!C.Module)
      return makeError("translation to HiSPN failed (invalid model?)");
    return std::nullopt;
  });

  // Stage 2: the target-independent IR pipeline (paper §IV-A).
  MustRegister({"ir-pipeline", describeIrPipeline(O)},
               [](StageContext &C) -> std::optional<Error> {
    const CompilerOptions &O = C.Options;
    transforms::LoweringOptions Lowering = O.Lowering;
    if (C.Query.DataType == spn::ComputeType::F32)
      Lowering.ComputeWidth = 32;
    else if (C.Query.DataType == spn::ComputeType::F64)
      Lowering.ComputeWidth = 64;

    PassManager PM(C.Ctx, O.VerifyIR);
    if (O.OptLevel >= 1)
      PM.addPass(createCanonicalizerPass()); // HiSPN-level early opts
    PM.addPass(transforms::createHiSPNToLoSPNLoweringPass(Lowering));
    // Task partitioning would split the kernel; MPE/sampling tracebacks
    // need the whole graph in one task's register file.
    if (O.MaxPartitionSize > 0 && !queryNeedsTraceback(C.Query)) {
      partition::PartitionOptions PartOptions = O.Partitioning;
      PartOptions.MaxPartitionSize = O.MaxPartitionSize;
      PM.addPass(transforms::createTaskPartitioningPass(PartOptions));
    }
    if (O.OptLevel >= 1) {
      PM.addPass(createCanonicalizerPass());
      PM.addPass(createCSEPass());
    }
    transforms::BufferizationOptions BufOptions;
    BufOptions.AvoidCopies = O.AvoidBufferCopies;
    PM.addPass(transforms::createBufferizationPass(BufOptions));
    if (O.TheTarget == Target::GPU && O.GpuTransferElimination)
      PM.addPass(transforms::createGpuBufferTransferEliminationPass());

    if (failed(PM.run(C.Module.get().getOperation())))
      return makeError("compilation pipeline failed");
    C.Stats.PassTimings = PM.getTimings();

    for (Operation *Op : C.Module.get().getBody())
      if (isa_op<lospn::KernelOp>(Op))
        C.Kernel = lospn::KernelOp(Op);
    if (!C.Kernel)
      return makeError("pipeline produced no kernel");
    return std::nullopt;
  });

  // Stage 3: code generation (paper §IV-B / §IV-C).
  MustRegister({"codegen", O.TheTarget == Target::GPU
                               ? "LoSPN -> bytecode (select-cascade leaves)"
                               : "LoSPN -> bytecode (table-lookup leaves)"},
               [](StageContext &C) -> std::optional<Error> {
    const CompilerOptions &O = C.Options;
    codegen::CodegenOptions CGOptions;
    CGOptions.OptLevel = O.OptLevel;
    CGOptions.EmitSelectCascades = O.TheTarget == Target::GPU;
    CGOptions.Parameterize = O.Lowering.Parameterize;
    // spn::QueryKind and vm::QueryKind share numeric values by contract.
    CGOptions.Query = static_cast<vm::QueryKind>(C.Query.Kind);
    Expected<vm::KernelProgram> Program =
        codegen::emitKernelProgram(C.Kernel, CGOptions, &C.Stats.Codegen);
    if (!Program)
      return Program.getError();
    C.Program = Program.takeValue();
    C.Stats.NumTasks = C.Program.Tasks.size();
    C.Stats.NumInstructions = C.Program.totalInstructions();
    return std::nullopt;
  });

  // Stage 4 (GPU only): assemble and reload the device binary, the
  // analog of the PTX -> CUBIN translation that dominates GPU compile
  // time in the paper (§V-B1).
  if (O.TheTarget == Target::GPU) {
    MustRegister({"binary-encode", "device binary round-trip"},
                 [](StageContext &C) -> std::optional<Error> {
      std::vector<uint8_t> Blob = vm::encodeProgram(C.Program);
      Expected<vm::KernelProgram> Reloaded = vm::decodeProgram(Blob);
      if (!Reloaded)
        return makeError("device binary round-trip failed");
      C.Program = Reloaded.takeValue();
      return std::nullopt;
    });
  }
}

Expected<vm::KernelProgram>
CompilationPipeline::compile(const spn::Model &Model,
                             const spn::QueryConfig &Query,
                             CompileStats *Stats) const {
  Timer TotalTimer;
  CompileStats LocalStats;
  CompileStats &S = Stats ? *Stats : LocalStats;
  S = CompileStats();

  StageContext C(Model, resolveQuery(Query, Config.getOptions()),
                 Config.getOptions(), S);
  for (size_t I = 0; I < Runners.size(); ++I) {
    Timer StageTimer;
    if (std::optional<Error> Err = Runners[I](C))
      return *Err;
    uint64_t Ns = StageTimer.elapsedNs();
    S.Stages.push_back({Stages[I].Name, Ns});
    // Keep the dedicated stat fields of the §V-B1 breakdown populated.
    if (Stages[I].Name == "translate")
      S.TranslationNs = Ns;
    else if (Stages[I].Name == "binary-encode")
      S.BinaryEncodeNs = Ns;
  }
  S.TotalNs = TotalTimer.elapsedNs();
  return std::move(C.Program);
}
