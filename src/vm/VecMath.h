//===- VecMath.h - Vectorized elementary math (SVML/libmvec substitute) ------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vectorized implementations of the elementary functions the generated
/// code needs, standing in for Intel SVML / GLIBC libmvec (paper §IV-B).
/// The entry points are specialized to the value ranges SPN inference
/// produces — `exp` of non-positive arguments (log-space differences and
/// Gaussian exponents) and `log1p` on [0, 1] — which makes them short,
/// branch-free polynomial kernels the host compiler auto-vectorizes over
/// whole lane arrays.
///
/// The scalar fall-back path (the "no vector library" configuration of
/// Fig. 6) calls libm through opaque function pointers per lane,
/// reproducing the extract-call-insert cost the paper describes.
///
/// Accuracy: ~1e-5 relative for expNeg, ~1e-6 absolute for log1p01 —
/// below the f32 round-off the compiled kernels accumulate anyway;
/// correctness tests compare against libm with explicit tolerances.
/// Double-precision lane arrays take dedicated overloads that keep full
/// f64 accuracy via libm (mirroring the double variants of libmvec/SVML),
/// so f64 queries stay comparable to the reference interpreter at 1e-9
/// (the differential suite's bound).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_VM_VECMATH_H
#define SPNC_VM_VECMATH_H

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace spnc {
namespace vm {

//===----------------------------------------------------------------------===//
// Branch-free scalar kernels (inlined into lane loops)
//===----------------------------------------------------------------------===//

/// exp(x) for x <= 0, branch-free (straight-line so the lane loops
/// auto-vectorize). Inputs below -87 underflow to 0 (they would in f32
/// arithmetic anyway).
inline float fastExpNeg(float X) {
  // Clamp into the representable range; the polynomial needs a bounded
  // fractional part. min/max compile to vminps/vmaxps.
  X = X < -87.0f ? -87.0f : X;
  X = X > 0.0f ? 0.0f : X;
  const float Log2E = 1.44269504088896341f;
  float T = X * Log2E;
  float FloorT = std::floor(T); // vroundps
  float F = T - FloorT;         // in [0, 1)
  // 2^F on [0,1): degree-5 polynomial (max rel. error ~2e-7).
  float P =
      1.0f +
      F * (0.693147180559945f +
           F * (0.240226506959101f +
                F * (0.0555041086648216f +
                     F * (0.00961812910762848f +
                          F * (0.00133335581464284f +
                               F * 0.000154353139101124f)))));
  // Scale by 2^FloorT through the exponent bits.
  int32_t E = static_cast<int32_t>(FloorT);
  float Scale = std::bit_cast<float>((E + 127) << 23);
  return P * Scale;
}

/// log(1 + x) for x in [0, 1], branch-free. Uses the atanh series:
/// log1p(x) = 2 z (1 + z^2/3 + z^4/5 + z^6/7 + z^8/9), z = x / (2 + x).
inline float fastLog1p01(float X) {
  float Z = X / (2.0f + X); // in [0, 1/3]
  float Z2 = Z * Z;
  float Series =
      1.0f +
      Z2 * (0.333333333333333f +
            Z2 * (0.2f + Z2 * (0.142857142857143f + Z2 * 0.111111111111111f)));
  return 2.0f * Z * Series;
}

/// Natural log for strictly positive finite x, branch-free: exponent
/// extraction plus a polynomial on the mantissa shifted to
/// [sqrt(0.5), sqrt(2)). Used by the n-ary log-sum-exp (its summed
/// exponentials lie in [1, n]).
inline float fastLogPos(float X) {
  int32_t Bits = std::bit_cast<int32_t>(X);
  int32_t E = ((Bits >> 23) & 0xff) - 127;
  float M = std::bit_cast<float>((Bits & 0x007fffff) | 0x3f800000);
  // M in [1, 2): the atanh argument F stays within [0, 1/3], where the
  // series below is accurate to ~3e-7 — no mantissa-range shift needed,
  // keeping the kernel straight-line (auto-vectorizable).
  float F = (M - 1.0f) / (M + 1.0f);
  float F2 = F * F;
  float Series =
      1.0f +
      F2 * (0.333333333f +
            F2 * (0.2f + F2 * (0.142857143f +
                               F2 * (0.111111111f + F2 * 0.0909090909f))));
  return 2.0f * F * Series + 0.693147180559945f * static_cast<float>(E);
}

//===----------------------------------------------------------------------===//
// Hand-vectorized 8-lane kernels (GCC/Clang vector extensions)
//===----------------------------------------------------------------------===//

#if defined(__GNUC__) || defined(__clang__)
#define SPNC_HAVE_VECTOR_EXTENSIONS 1

using V8f = float __attribute__((vector_size(32)));
using V8i = int32_t __attribute__((vector_size(32)));

/// exp(x) for 8 non-positive lanes at once.
inline V8f expNeg8(V8f X) {
  X = X < -87.0f ? V8f{} - 87.0f : X;
  X = X > 0.0f ? V8f{} : X;
  V8f T = X * 1.44269504088896341f;
  // floor for T <= 0: truncate, subtract 1 where truncation rounded up.
  V8i Ti = __builtin_convertvector(T, V8i);
  V8f Tr = __builtin_convertvector(Ti, V8f);
  V8f Fl = Tr > T ? Tr - 1.0f : Tr;
  V8f F = T - Fl;
  V8f P = 1.0f +
          F * (0.693147180559945f +
               F * (0.240226506959101f +
                    F * (0.0555041086648216f +
                         F * (0.00961812910762848f +
                              F * (0.00133335581464284f +
                                   F * 0.000154353139101124f)))));
  V8i E = __builtin_convertvector(Fl, V8i);
  V8f Scale = std::bit_cast<V8f>((E + 127) << 23);
  return P * Scale;
}

/// log(x) for 8 strictly positive lanes at once.
inline V8f logPos8(V8f X) {
  V8i Bits = std::bit_cast<V8i>(X);
  V8i E = ((Bits >> 23) & 0xff) - 127;
  V8f M = std::bit_cast<V8f>((Bits & 0x007fffff) | 0x3f800000);
  V8f F = (M - 1.0f) / (M + 1.0f);
  V8f F2 = F * F;
  V8f Series =
      1.0f +
      F2 * (0.333333333f +
            F2 * (0.2f + F2 * (0.142857143f +
                               F2 * (0.111111111f + F2 * 0.0909090909f))));
  return 2.0f * F * Series +
         0.693147180559945f * __builtin_convertvector(E, V8f);
}

/// log(1 + x) for 8 lanes in [0, 1].
inline V8f log1p018(V8f X) {
  V8f Z = X / (2.0f + X);
  V8f Z2 = Z * Z;
  V8f Series =
      1.0f + Z2 * (0.333333333333333f +
                   Z2 * (0.2f + Z2 * (0.142857142857143f +
                                      Z2 * 0.111111111111111f)));
  return 2.0f * Z * Series;
}
#endif // vector extensions

//===----------------------------------------------------------------------===//
// Lane-array entry points (the "vector library")
//===----------------------------------------------------------------------===//

namespace detail {

/// Applies the 8-lane kernel over full chunks and the scalar kernel over
/// the remainder; falls back to the scalar kernel entirely without
/// vector extensions.
template <typename T, typename Vec8Fn, typename ScalarFn>
inline void mapLanes(const T *Input, T *Output, size_t Lanes,
                     Vec8Fn &&Vec8, ScalarFn &&Scalar) {
#if defined(SPNC_HAVE_VECTOR_EXTENSIONS)
  size_t I = 0;
  if constexpr (std::is_same_v<T, float>) {
    for (; I + 8 <= Lanes; I += 8) {
      V8f X;
      __builtin_memcpy(&X, Input + I, sizeof(X));
      V8f Y = Vec8(X);
      __builtin_memcpy(Output + I, &Y, sizeof(Y));
    }
  } else {
    for (; I + 8 <= Lanes; I += 8) {
      V8f X = {static_cast<float>(Input[I]),     static_cast<float>(Input[I + 1]),
               static_cast<float>(Input[I + 2]), static_cast<float>(Input[I + 3]),
               static_cast<float>(Input[I + 4]), static_cast<float>(Input[I + 5]),
               static_cast<float>(Input[I + 6]), static_cast<float>(Input[I + 7])};
      V8f Y = Vec8(X);
      for (int L = 0; L < 8; ++L)
        Output[I + L] = static_cast<T>(Y[L]);
    }
  }
  for (; I < Lanes; ++I)
    Output[I] = static_cast<T>(Scalar(static_cast<float>(Input[I])));
#else
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = static_cast<T>(Scalar(static_cast<float>(Input[I])));
#endif
}

} // namespace detail

/// exp over a lane array of non-positive values.
///
/// The double overloads below keep full f64 accuracy: the polynomial
/// kernels above are tuned to f32 round-off, and funnelling f64 lanes
/// through them would truncate a double-precision query to ~1e-5 —
/// the real vector libraries this header stands in for (libmvec/SVML)
/// ship dedicated double variants accurate to ~1 ulp, which plain libm
/// over the lane loop reproduces.
template <typename T>
inline void vecExpNeg(const T *Input, T *Output, size_t Lanes) {
#if defined(SPNC_HAVE_VECTOR_EXTENSIONS)
  detail::mapLanes(Input, Output, Lanes,
                   [](V8f X) { return expNeg8(X); },
                   [](float X) { return fastExpNeg(X); });
#else
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = static_cast<T>(fastExpNeg(static_cast<float>(Input[I])));
#endif
}

inline void vecExpNeg(const double *Input, double *Output, size_t Lanes) {
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = std::exp(Input[I] > 0.0 ? 0.0 : Input[I]);
}

/// log(1 + x) over a lane array of values in [0, 1].
template <typename T>
inline void vecLog1p01(const T *Input, T *Output, size_t Lanes) {
#if defined(SPNC_HAVE_VECTOR_EXTENSIONS)
  detail::mapLanes(Input, Output, Lanes,
                   [](V8f X) { return log1p018(X); },
                   [](float X) { return fastLog1p01(X); });
#else
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] =
        static_cast<T>(fastLog1p01(static_cast<float>(Input[I])));
#endif
}

inline void vecLog1p01(const double *Input, double *Output,
                       size_t Lanes) {
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = std::log1p(Input[I]);
}

/// log over a lane array of strictly positive values.
template <typename T>
inline void vecLogPos(const T *Input, T *Output, size_t Lanes) {
#if defined(SPNC_HAVE_VECTOR_EXTENSIONS)
  detail::mapLanes(Input, Output, Lanes,
                   [](V8f X) { return logPos8(X); },
                   [](float X) { return fastLogPos(X); });
#else
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = static_cast<T>(fastLogPos(static_cast<float>(Input[I])));
#endif
}

inline void vecLogPos(const double *Input, double *Output, size_t Lanes) {
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = std::log(Input[I]);
}

//===----------------------------------------------------------------------===//
// Scalar libm fall-back (the "no vector library" configuration)
//===----------------------------------------------------------------------===//

/// Opaque scalar function pointers. Calling through these per lane
/// defeats auto-vectorization and forces a real libm call — exactly the
/// "extract, scalar call, insert" behaviour of vector code without a
/// vector library (paper Fig. 6).
extern float (*const volatile ScalarExpF)(float);
extern float (*const volatile ScalarLog1pF)(float);
extern float (*const volatile ScalarLogF)(float);
extern double (*const volatile ScalarExpD)(double);
extern double (*const volatile ScalarLog1pD)(double);
extern double (*const volatile ScalarLogD)(double);

inline void scalarExp(const float *Input, float *Output, size_t Lanes) {
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = ScalarExpF(Input[I]);
}
inline void scalarExp(const double *Input, double *Output, size_t Lanes) {
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = ScalarExpD(Input[I]);
}

inline void scalarLog1p(const float *Input, float *Output, size_t Lanes) {
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = ScalarLog1pF(Input[I]);
}
inline void scalarLog1p(const double *Input, double *Output,
                        size_t Lanes) {
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = ScalarLog1pD(Input[I]);
}

inline void scalarLog(const float *Input, float *Output, size_t Lanes) {
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = ScalarLogF(Input[I]);
}
inline void scalarLog(const double *Input, double *Output, size_t Lanes) {
  for (size_t I = 0; I < Lanes; ++I)
    Output[I] = ScalarLogD(Input[I]);
}

} // namespace vm
} // namespace spnc

#endif // SPNC_VM_VECMATH_H
