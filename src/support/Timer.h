//===- Timer.h - Wall-clock timing helpers ---------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-clock stopwatch used by the pass manager (per-pass compile-time
/// breakdown, paper §V-B1) and by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_TIMER_H
#define SPNC_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace spnc {

/// Simple wall-clock stopwatch with nanosecond resolution.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed time since construction/reset in nanoseconds.
  uint64_t elapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

  /// Elapsed time in seconds.
  double elapsedSeconds() const {
    return static_cast<double>(elapsedNs()) * 1e-9;
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace spnc

#endif // SPNC_SUPPORT_TIMER_H
