//===- GpuSimulator.h - CUDA-style GPU execution simulator --------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A GPU execution simulator standing in for the CUDA device of the paper
/// (RTX 2070 Super; see DESIGN.md §4). Kernels execute with full numerical
/// fidelity — every sample runs through the bytecode interpreter on the
/// host — while a device model accounts simulated wall-clock time for:
///
///  * kernel execution: measured host work scaled by the device's peak
///    throughput and the achieved occupancy. Occupancy follows the CUDA
///    rules that make small block sizes preferable for register-heavy
///    SPN kernels (paper §V-A1): the number of resident threads per SM is
///    limited by the register file, and large blocks quantize that limit.
///  * host<->device transfers: per-transfer latency plus bytes over the
///    modelled PCIe bandwidth (the dominant cost in paper Fig. 9);
///  * per-launch overhead.
///
/// Buffers marked device-resident by the transfer-elimination pass stay
/// on the device between tasks; without that pass every intermediate
/// buffer is copied back to the host after the producing task and back to
/// the device before each consuming task (paper §IV-C).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_GPUSIM_GPUSIMULATOR_H
#define SPNC_GPUSIM_GPUSIMULATOR_H

#include "gpusim/GpuStats.h"
#include "runtime/ExecutionEngine.h"
#include "vm/Bytecode.h"

#include <cstddef>
#include <memory>
#include <vector>

namespace spnc {
namespace gpusim {

/// Device-model parameters. Hardware shape parameters (SM count, thread
/// and register limits) follow the paper's RTX 2070 Super. The two
/// throughput parameters are expressed relative to *this host running the
/// bytecode interpreter*: because the host-side compute baseline is an
/// interpreter (roughly an order of magnitude slower than the native
/// code the paper's CPU path emits), the device's relative speedup and
/// the transfer bandwidth are de-rated by the same factor. The defaults
/// are calibrated so the published relations hold on the speaker-ID
/// workload: GPU execution lands near the non-vectorized CPU executable
/// and below the vectorized one (Figs. 7/8), with data movement above
/// 60% of GPU execution time (Fig. 9). See EXPERIMENTS.md.
struct GpuDeviceConfig {
  unsigned NumSMs = 40;
  unsigned MaxThreadsPerBlock = 1024;
  unsigned MaxThreadsPerSM = 1024;
  unsigned MaxBlocksPerSM = 16;
  unsigned RegistersPerSM = 65536;
  /// Full-occupancy device throughput relative to one host core running
  /// the same bytecode (calibrated; see above).
  double PeakSpeedup = 4.0;
  /// Effective host<->device bandwidth in GB/s of simulated time
  /// (calibrated; see above).
  double PcieBandwidthGBs = 0.0023;
  /// Fixed cost per transfer call (driver + DMA setup) in microseconds.
  double TransferLatencyUs = 8.0;
  /// Fixed cost per kernel launch in microseconds.
  double KernelLaunchOverheadUs = 6.0;
  /// Per-scheduled-block overhead in nanoseconds.
  double BlockScheduleOverheadNs = 300.0;
  /// Device (global) memory bandwidth in GB/s of simulated time, charged
  /// for the intermediate-buffer traffic between tasks — the cost that
  /// makes many small partitions expensive on the GPU (paper Fig. 12).
  /// De-rated like PcieBandwidthGBs (see above).
  double DeviceBandwidthGBs = 0.25;
  /// Simulated device contexts ("streams"). Work issued to one stream
  /// executes in order (callers sharing a stream serialize, like CUDA's
  /// default stream); distinct streams overlap, sharing the SMs — the
  /// simulator scales compute time by the number of concurrently active
  /// kernels. 0 behaves like 1 (the default stream) but additionally
  /// tells the serving layer to allocate one stream per worker
  /// (InferenceServer::addModel for Target::GPU models).
  unsigned NumStreams = 0;
};

/// Occupancy achieved by a kernel with the given per-thread register
/// demand and block size: resident threads per SM over the maximum.
/// Exposed for testing and for the block-size sweep.
double computeOccupancy(const GpuDeviceConfig &Config, unsigned BlockSize,
                        unsigned RegistersPerThread);

/// Slowdown factor (>= 1) modelling register spills when a single block's
/// register demand exceeds the SM register file (large blocks on
/// register-heavy SPN kernels; the reason small block sizes win in
/// paper §V-A1).
double computeSpillSlowdown(const GpuDeviceConfig &Config,
                            unsigned BlockSize,
                            unsigned RegistersPerThread);

/// Executes compiled kernels on the simulated device. Implements the
/// unified runtime::ExecutionEngine interface; `execute` is thread-safe —
/// the simulated device breakdown is returned per call. The program and
/// device model are immutable after construction; the only mutable state
/// is the stream pool: each calling thread is stickily assigned one of
/// the device's `NumStreams` stream contexts (round-robin on first use),
/// callers sharing a stream serialize, and concurrently active kernels
/// on distinct streams share the SMs (their simulated compute time
/// scales with the overlap).
class GpuExecutor : public runtime::ExecutionEngine {
public:
  /// Block size used when none is requested: 64 threads, the
  /// occupancy-optimal choice for register-heavy SPN kernels (paper
  /// §V-A1's block-size sweep). Deliberately NOT the query batch size:
  /// serving batch sizes routinely exceed the per-block register budget
  /// and would silently run at a fraction of peak occupancy.
  static constexpr unsigned kDefaultBlockSize = 64;

  /// \p BlockSize is the CUDA block size used for every launch; 0 uses
  /// the occupancy-optimal default (kDefaultBlockSize). The effective
  /// size is clamped to the device's MaxThreadsPerBlock.
  GpuExecutor(vm::KernelProgram Program, GpuDeviceConfig Config = {},
              unsigned BlockSize = 0);
  ~GpuExecutor() override;

  /// The clamped block size every launch of this executor uses.
  unsigned getBlockSize() const { return BlockSize; }

  /// Streams (simulated device contexts) this executor schedules onto;
  /// at least 1 regardless of the configured NumStreams.
  unsigned getNumStreams() const;

  /// The stream the calling thread is (stickily) assigned to, assigning
  /// one round-robin on first use — the same policy every execute() call
  /// applies.
  unsigned streamForCallingThread() const;

  /// Kernel executions retired per stream since construction (index =
  /// stream id). Observability for tests and the serving layer.
  std::vector<uint64_t> getStreamKernelCounts() const;

  const vm::KernelProgram *getProgram() const override {
    return &Program;
  }
  const GpuDeviceConfig &getDeviceConfig() const { return Config; }
  runtime::Target getTarget() const override {
    return runtime::Target::GPU;
  }
  std::string describe() const override;

  /// Runs the kernel; same buffer conventions as CpuExecutor. Fills
  /// \p Stats with the simulated device time breakdown when provided.
  /// (No default argument: the three-argument call resolves to the
  /// ExecutionEngine overload below.)
  void execute(const double *Input, double *Output, size_t NumSamples,
               GpuExecutionStats *Stats) const;

  /// ExecutionEngine entry point; the simulated breakdown is returned in
  /// \p Stats->Gpu with HasGpuStats set.
  void execute(const double *Input, double *Output, size_t NumSamples,
               runtime::ExecutionStats *Stats = nullptr) const override;

  /// MPE completion on the simulated device. The upward pass runs with
  /// the program's register width (f32 for UseF32 programs — near-tie
  /// argmax decisions can differ from f64 engines), the traceback on the
  /// device per sample; evidence upload and assignment download are
  /// accounted like execute()'s transfers.
  bool executeMpe(const double *Evidence, double *Assignments,
                  double *LogProbs, size_t NumSamples,
                  runtime::ExecutionStats *Stats = nullptr) const override;

  /// Ancestral sampling on the simulated device; same per-sample-index
  /// seeding contract as the CPU engines (docs/queries.md).
  bool executeSample(const double *Evidence, double *Samples,
                     size_t NumSamples, uint64_t Seed,
                     runtime::ExecutionStats *Stats = nullptr) const override;

private:
  struct DeviceState;
  struct StreamLease;

  vm::KernelProgram Program;
  GpuDeviceConfig Config;
  unsigned BlockSize;
  /// Stream pool: the executor's only mutable state (see class comment).
  std::unique_ptr<DeviceState> Device;
};

} // namespace gpusim
} // namespace spnc

#endif // SPNC_GPUSIM_GPUSIMULATOR_H
