# Empty dependencies file for example_ratspn_classification.
# This may be replaced when dependencies are built.
