//===- TuningRecord.h - Persisted per-model tuning result ---------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable output of a tuning run: which knob values won, what they
/// measured, and how they were measured — serialized as JSON through the
/// `json::Writer` report machinery (stable key order) and parsed back
/// with `json::parse`. Records live beside the kernels they select:
/// `KernelCache::tuningRecordPath(modelHash)` names the per-model
/// sidecar `<cache-dir>/<modelhash>.tune.json` (see docs/tuning.md and
/// docs/spnk-format.md), which `spnc-tune` writes and
/// `spnc-cli`/`spnc-serve --tuned` load and apply.
///
/// Schema (version 1):
///
///   {
///     "tuning_record_version": 1,
///     "model": "...", "model_hash": "0011223344556677",
///     "objective": "throughput",
///     "evaluator": "closed-loop clients=4 requests=64 samples=1",
///     "knobs": { "opt-level": 3, "partition-slack": 0.05,
///                "backend": "vm", ... },
///     "score": ..., "throughput_samples_per_s": ...,
///     "p99_latency_ns": ..., "evaluations": ..., "seed": ...
///   }
///
/// `model_hash` is `KernelCache::hashModel` rendered as 16 hex digits
/// (JSON numbers are doubles and cannot carry 64 bits exactly). Knob
/// values keep their type: JSON numbers for integer/real knobs, strings
/// for text knobs.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_TUNING_TUNINGRECORD_H
#define SPNC_TUNING_TUNINGRECORD_H

#include "support/Expected.h"
#include "support/LogicalResult.h"
#include "tuning/SearchSpace.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spnc {

class RawOStream;

namespace tuning {

/// The winning configuration of one tuning run, plus its provenance.
struct TuningRecord {
  /// Current schema version (see file comment).
  static constexpr unsigned kVersion = 1;

  /// Model name (diagnostics only; the hash is the identity).
  std::string ModelName;
  /// KernelCache::hashModel of the tuned model.
  uint64_t ModelHash = 0;
  /// Printable objective the run optimized ("throughput",
  /// "p99-latency", "blend(latency-weight=0.5)").
  std::string Objective;
  /// Printable description of the evaluator (load shape or trace).
  std::string Evaluator;
  /// Winning knob values, in search-space knob order.
  std::vector<std::pair<std::string, KnobValue>> Knobs;
  /// The winner's objective score (higher is better).
  double Score = 0.0;
  /// The winner's raw measurements.
  double ThroughputSamplesPerSec = 0.0;
  double P99LatencyNs = 0.0;
  /// Candidate evaluations the run spent, and its seed.
  uint64_t Evaluations = 0;
  uint64_t Seed = 0;
};

/// What applyTuningRecord did with one recorded knob.
struct AppliedKnob {
  std::string Name;
  std::string Value;
  /// The knob was left alone because the caller set it explicitly.
  bool Overridden = false;
  /// The knob name is unknown to this build (record from a newer
  /// version); skipped.
  bool Unknown = false;
};

/// Applies \p Record's knobs onto \p Config, skipping every knob named
/// in \p ExplicitKnobs (flags the user set explicitly always win) and
/// every unknown knob. Returns one entry per recorded knob saying what
/// happened — callers log this so a tuned run is auditable.
std::vector<AppliedKnob>
applyTuningRecord(const TuningRecord &Record, TunedConfig &Config,
                  const std::vector<std::string> &ExplicitKnobs = {});

/// Writes \p Record as JSON to \p OS (stable key order, golden-tested).
void writeTuningRecord(const TuningRecord &Record, RawOStream &OS);

/// Writes the record to \p Path (overwritten). On failure,
/// \p ErrorMessage (when non-null) receives the reason.
LogicalResult saveTuningRecord(const TuningRecord &Record,
                               const std::string &Path,
                               std::string *ErrorMessage = nullptr);

/// Parses a record previously written by writeTuningRecord. Fails with
/// a diagnostic on malformed JSON, a missing/malformed member, or an
/// unsupported schema version.
Expected<TuningRecord> parseTuningRecord(std::string_view Json);

/// Reads and parses the record at \p Path.
Expected<TuningRecord> loadTuningRecord(const std::string &Path);

} // namespace tuning
} // namespace spnc

#endif // SPNC_TUNING_TUNINGRECORD_H
