//===- Partitioner.h - Heuristic acyclic graph partitioning ------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Acyclic graph partitioning for splitting very large LoSPN tasks (paper
/// §IV-A4), based on the heuristic of Moreira et al. [10] with the paper's
/// adaptations:
///
///  * the initial ordering is a DFS-like topological order (a node is
///    emitted as soon as all of its children have been processed), which
///    suits the tree-like, root-tapering shape of SPN DAGs better than a
///    random topological order;
///  * partition balancing allows 1% slack;
///  * the cost model reflects buffer communication: a value crossing
///    partitions is stored once in the producing task and loaded once in
///    every consuming task (instead of unit cost per edge);
///  * refinement uses the lightweight Simple-Moves heuristic restricted
///    to moves between neighbouring partitions.
///
/// The resulting partitioning is acyclic: every edge points from a
/// partition to one with an equal-or-higher index, so tasks can execute
/// in partition order.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_PARTITION_PARTITIONER_H
#define SPNC_PARTITION_PARTITIONER_H

#include <cstdint>
#include <vector>

namespace spnc {
namespace partition {

/// Dependence graph to partition. Node u -> v means v consumes the value
/// produced by u (u must execute in the same or an earlier partition).
class Graph {
public:
  explicit Graph(uint32_t NumNodes)
      : Successors(NumNodes), Predecessors(NumNodes) {}

  uint32_t getNumNodes() const {
    return static_cast<uint32_t>(Successors.size());
  }

  /// Adds a dependence edge \p From -> \p To (duplicate edges allowed;
  /// they do not change the cost model).
  void addEdge(uint32_t From, uint32_t To) {
    Successors[From].push_back(To);
    Predecessors[To].push_back(From);
  }

  const std::vector<uint32_t> &successors(uint32_t N) const {
    return Successors[N];
  }
  const std::vector<uint32_t> &predecessors(uint32_t N) const {
    return Predecessors[N];
  }

private:
  std::vector<std::vector<uint32_t>> Successors;
  std::vector<std::vector<uint32_t>> Predecessors;
};

/// Refinement strategy applied after the initial partitioning.
enum class RefinementStrategy {
  /// No refinement (ablation baseline).
  None,
  /// The paper's choice: moves between directly neighbouring partitions
  /// only — lightweight, small compile-time impact (paper §IV-A4).
  SimpleMoves,
  /// Extension: additionally consider moving a node into any feasible
  /// partition where it already has a producer or consumer. Finds more
  /// cut reductions at slightly higher compile time.
  GlobalMoves,
};

struct PartitionOptions {
  /// Maximum number of graph nodes per partition (user-controllable,
  /// Figs. 10/12 sweep this).
  uint32_t MaxPartitionSize = 10000;
  /// Allowed balance slack: a partition may exceed MaxPartitionSize by
  /// this factor during refinement (paper: 1%).
  double Slack = 0.01;
  /// Maximum refinement sweeps.
  unsigned MaxRefinementSweeps = 10;
  /// Disable refinement (for ablation benchmarks). Kept alongside the
  /// strategy for convenience: when false, the strategy is ignored.
  bool EnableRefinement = true;
  RefinementStrategy Strategy = RefinementStrategy::SimpleMoves;
};

/// Result of partitioning: a partition index per node.
struct Partitioning {
  std::vector<uint32_t> NodeToPartition;
  uint32_t NumPartitions = 0;

  uint32_t operator[](uint32_t Node) const {
    return NodeToPartition[Node];
  }
};

/// Partitions \p TheGraph (which must be acyclic) under \p Options.
Partitioning partitionGraph(const Graph &TheGraph,
                            const PartitionOptions &Options);

/// Communication cost of \p Result under the paper's store-once/load-once
/// model: one store per value consumed outside its partition plus one
/// load per (value, consuming partition) pair.
uint64_t communicationCost(const Graph &TheGraph,
                           const Partitioning &Result);

/// True if every edge points from its partition to an equal-or-higher
/// partition index (the acyclicity invariant).
bool isAcyclicPartitioning(const Graph &TheGraph,
                           const Partitioning &Result);

/// Returns a topological order of \p TheGraph in the paper's DFS-like
/// flavour: a node is appended once all of its predecessors have been
/// emitted, preferring to continue from the most recently emitted node so
/// subtrees stay contiguous. Exposed for testing.
std::vector<uint32_t> dfsTopologicalOrder(const Graph &TheGraph);

} // namespace partition
} // namespace spnc

#endif // SPNC_PARTITION_PARTITIONER_H
