file(REMOVE_RECURSE
  "libspnc_ir.a"
)
