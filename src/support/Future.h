//===- Future.h - Minimal one-shot promise/future pair ----------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small one-shot promise/future pair used by the serving layer to hand
/// results back to request submitters. Unlike std::future it never throws
/// (the project routes recoverable failures through result values, see
/// Expected.h), is copyable on the consumer side (several observers may
/// wait on one result), and exposes a bounded wait without exceptions.
///
/// The producer (`Promise<T>`) sets the value exactly once; consumers
/// (`Future<T>`) block in `wait`/`waitFor` and read it with `get` (shared
/// reference) or `take` (move out, single consumer). Destroying the
/// promise without setting a value leaves the future pending forever —
/// the serving layer guarantees every accepted request is completed, and
/// `waitFor` gives callers an escape hatch.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_FUTURE_H
#define SPNC_SUPPORT_FUTURE_H

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace spnc {

namespace detail {

/// Shared rendezvous state of one promise/future pair.
template <typename T>
struct FutureState {
  std::mutex Mutex;
  std::condition_variable Ready;
  std::optional<T> Value;
};

} // namespace detail

/// Consumer half: blocks until the paired Promise publishes the value.
/// Copies share the same underlying state.
template <typename T>
class Future {
public:
  /// An invalid future (no paired promise). valid() is false.
  Future() = default;

  explicit Future(std::shared_ptr<detail::FutureState<T>> State)
      : State(std::move(State)) {}

  /// True when paired with a promise (default-constructed futures are
  /// not).
  bool valid() const { return State != nullptr; }

  /// True once the value has been set. Non-blocking.
  bool ready() const {
    assert(valid() && "ready() on an invalid future");
    std::lock_guard<std::mutex> Lock(State->Mutex);
    return State->Value.has_value();
  }

  /// Blocks until the value is available.
  void wait() const {
    assert(valid() && "wait() on an invalid future");
    std::unique_lock<std::mutex> Lock(State->Mutex);
    State->Ready.wait(Lock, [&] { return State->Value.has_value(); });
  }

  /// Blocks up to \p Ns nanoseconds; returns true when the value became
  /// available within the budget.
  bool waitFor(uint64_t Ns) const {
    assert(valid() && "waitFor() on an invalid future");
    std::unique_lock<std::mutex> Lock(State->Mutex);
    return State->Ready.wait_for(Lock, std::chrono::nanoseconds(Ns), [&] {
      return State->Value.has_value();
    });
  }

  /// Blocks and returns a reference to the value. The reference is valid
  /// while any future/promise sharing the state is alive and `take` has
  /// not been called.
  const T &get() const {
    wait();
    std::lock_guard<std::mutex> Lock(State->Mutex);
    return *State->Value;
  }

  /// Blocks and moves the value out. Call at most once across all copies
  /// of this future.
  T take() {
    wait();
    std::lock_guard<std::mutex> Lock(State->Mutex);
    T Result = std::move(*State->Value);
    return Result;
  }

private:
  std::shared_ptr<detail::FutureState<T>> State;
};

/// Producer half: publishes the value exactly once.
template <typename T>
class Promise {
public:
  Promise() : State(std::make_shared<detail::FutureState<T>>()) {}

  Promise(Promise &&) = default;
  Promise &operator=(Promise &&) = default;
  Promise(const Promise &) = delete;
  Promise &operator=(const Promise &) = delete;

  /// The future observing this promise. May be called multiple times;
  /// all returned futures share the state.
  Future<T> getFuture() const { return Future<T>(State); }

  /// Publishes \p Value and wakes every waiter. Must be called at most
  /// once.
  void set(T Value) {
    assert(State && "set() on a moved-from promise");
    {
      std::lock_guard<std::mutex> Lock(State->Mutex);
      assert(!State->Value.has_value() && "promise set twice");
      State->Value.emplace(std::move(Value));
    }
    State->Ready.notify_all();
  }

  /// True once set() has been called.
  bool isSet() const {
    assert(State && "isSet() on a moved-from promise");
    std::lock_guard<std::mutex> Lock(State->Mutex);
    return State->Value.has_value();
  }

private:
  std::shared_ptr<detail::FutureState<T>> State;
};

} // namespace spnc

#endif // SPNC_SUPPORT_FUTURE_H
