file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_partition_gpu.dir/bench_fig12_partition_gpu.cpp.o"
  "CMakeFiles/bench_fig12_partition_gpu.dir/bench_fig12_partition_gpu.cpp.o.d"
  "bench_fig12_partition_gpu"
  "bench_fig12_partition_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_partition_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
