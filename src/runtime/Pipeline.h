//===- Pipeline.h - Staged compilation pipeline -------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged compilation pipeline behind `runtime::compileModel`: a
/// `CompilationPipeline` is built once from a validated `PipelineConfig`
/// and exposes its stages (translate -> ir-pipeline -> codegen ->
/// binary-encode) by name, runs them with per-stage wall-clock timing
/// feeding `CompileStats`, and constructs the matching `ExecutionEngine`
/// for the produced program. Benchmarks, the CLI and the kernel cache all
/// drive this one object instead of re-assembling pass lists and options
/// by hand.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_RUNTIME_PIPELINE_H
#define SPNC_RUNTIME_PIPELINE_H

#include "codegen/Codegen.h"
#include "frontend/Model.h"
#include "frontend/Query.h"
#include "gpusim/GpuSimulator.h"
#include "ir/PassManager.h"
#include "runtime/ExecutionEngine.h"
#include "support/Expected.h"
#include "transforms/Passes.h"
#include "vm/Executor.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace spnc {
namespace runtime {

/// All user-facing knobs of the compiler, mirroring the parameters the
/// paper's Python interface exposes (§V-B1).
struct CompilerOptions {
  Target TheTarget = Target::CPU;
  /// Optimization level 0..3 (paper Figs. 11/13): 0 disables the IR
  /// canonicalization/CSE and all codegen optimization; higher levels
  /// enable progressively more work.
  unsigned OptLevel = 1;
  /// Maximum SPN operations per task; 0 disables partitioning
  /// (paper Figs. 10/12).
  uint32_t MaxPartitionSize = 0;
  /// CPU execution configuration (vectorization design space, Fig. 6).
  vm::ExecutionConfig Execution;
  /// GPU device model and block size (0 = batch-size hint).
  gpusim::GpuDeviceConfig Device;
  unsigned GpuBlockSize = 0;
  /// Keep intermediate buffers on the GPU between tasks (paper §IV-C).
  bool GpuTransferElimination = true;
  /// Write returned task results directly into kernel outputs
  /// (paper §IV-A5); disable only for the ablation.
  bool AvoidBufferCopies = true;
  /// Verify the IR after each pass (slow for very large graphs).
  bool VerifyIR = false;
  transforms::LoweringOptions Lowering;
  partition::PartitionOptions Partitioning;
};

/// Wall clock of one executed pipeline stage.
struct StageTiming {
  std::string Name;
  uint64_t WallNs = 0;
};

/// Compile-time measurements (the paper's §V-B1 breakdown).
struct CompileStats {
  /// Wall clock per named pipeline stage, in execution order.
  std::vector<StageTiming> Stages;
  /// Per-pass wall clock of the IR pipeline.
  std::vector<ir::PassTiming> PassTimings;
  /// Codegen stage breakdown (isel / regalloc / peephole / scheduling).
  codegen::CodegenTimings Codegen;
  /// Model-to-HiSPN translation time.
  uint64_t TranslationNs = 0;
  /// Device binary assembly time (the CUBIN-encoding analog, GPU only).
  uint64_t BinaryEncodeNs = 0;
  /// End-to-end compilation wall clock.
  uint64_t TotalNs = 0;
  size_t NumTasks = 0;
  size_t NumInstructions = 0;
};

/// A validated, immutable compiler configuration. `create` is the single
/// validation point for every user-facing knob: a PipelineConfig always
/// describes a buildable pipeline (Target::Auto is resolved to the CPU,
/// zero thread counts are normalized, out-of-range knobs are rejected
/// with a message).
class PipelineConfig {
public:
  /// Validates \p Options; fails with a descriptive message on any
  /// out-of-range knob (e.g. OptLevel > 3, unsupported vector width).
  /// Thread-safe.
  static Expected<PipelineConfig> create(CompilerOptions Options);

  /// The validated, normalized options. Thread-safe; the reference is
  /// valid for the config's lifetime.
  const CompilerOptions &getOptions() const { return Options; }

  /// Stable structural hash over every knob that influences either the
  /// compiled program or the engine configuration; one of the three
  /// kernel-cache key components. Thread-safe; never fails.
  uint64_t hash() const;

private:
  explicit PipelineConfig(CompilerOptions O) : Options(std::move(O)) {}
  CompilerOptions Options;
};

/// Introspectable description of one pipeline stage.
struct PipelineStage {
  /// Stable stage name: "translate", "ir-pipeline", "codegen",
  /// "binary-encode".
  std::string Name;
  /// Human-readable summary of the work the stage will perform under the
  /// pipeline's configuration (e.g. the pass list of "ir-pipeline").
  std::string Detail;
};

namespace detail {
struct StageContext;
} // namespace detail

/// The staged compile path (paper §IV): translate -> IR pipeline ->
/// codegen -> binary encode (GPU). Built once from a validated config and
/// reusable across models; `compile` may be called concurrently from
/// multiple threads.
class CompilationPipeline {
public:
  /// Validates \p Options and builds the pipeline. Fails exactly when
  /// PipelineConfig::create fails (invalid knobs); a returned pipeline
  /// is always runnable. Thread-safe.
  static Expected<CompilationPipeline> create(CompilerOptions Options);

  /// Builds the pipeline from an already-validated config; never fails.
  explicit CompilationPipeline(PipelineConfig TheConfig);

  /// The validated configuration. Thread-safe; valid for the pipeline's
  /// lifetime.
  const PipelineConfig &getConfig() const { return Config; }

  /// The stages this pipeline will run, in order. Thread-safe; fixed at
  /// construction.
  const std::vector<PipelineStage> &getStages() const { return Stages; }

  /// Runs every stage over \p Model, returning the engine-ready program.
  /// Per-stage timings and the pass/codegen breakdowns are recorded into
  /// \p Stats when provided (\p Stats is untouched on failure). Fails on
  /// malformed models or IR verification errors; the pipeline itself is
  /// unchanged by failure and may be reused. Thread-safe: concurrent
  /// `compile` calls on one pipeline are allowed (each call uses private
  /// state).
  Expected<vm::KernelProgram> compile(const spn::Model &Model,
                                      const spn::QueryConfig &Query,
                                      CompileStats *Stats = nullptr) const;

  /// Constructs the execution engine this pipeline's target configuration
  /// selects for \p Program. Never fails (the config was validated);
  /// thread-safe.
  std::shared_ptr<ExecutionEngine> makeEngine(vm::KernelProgram Program) const;

private:
  void buildStages();

  PipelineConfig Config;
  std::vector<PipelineStage> Stages;
  std::vector<std::function<std::optional<Error>(detail::StageContext &)>>
      Runners;
};

} // namespace runtime
} // namespace spnc

#endif // SPNC_RUNTIME_PIPELINE_H
