# Empty compiler generated dependencies file for spnc_vm.
# This may be replaced when dependencies are built.
