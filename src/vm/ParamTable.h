//===- ParamTable.h - Weight-table binding for parameterized programs ---------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merged-model compilation (docs/merging.md): a parameterized
/// `KernelProgram` carries `ParamSite` records describing which
/// side-table slots hold tunable model parameters (sum weights, leaf
/// distribution parameters) and how the raw parameter is transformed
/// before it lands in the slot. Binding a weight table produces a copy
/// of the program whose side tables are rewritten for another
/// structurally-isomorphic model — the instruction stream, buffer plan
/// and register assignment are shared untouched.
///
/// The transforms reproduce the code generator's constant folding
/// bit-for-bit (same formulas, same literals — see vm::kLogSqrt2Pi), so
/// binding the generating model's own raw parameters yields exactly the
/// baked tables. `verifySelfBinding` checks that invariant; the kernel
/// cache runs it after every fresh parameterized compile.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_VM_PARAMTABLE_H
#define SPNC_VM_PARAMTABLE_H

#include "vm/Bytecode.h"

#include <span>
#include <string>
#include <vector>

namespace spnc {
namespace vm {

/// Applies \p Transform to a raw model parameter, mirroring codegen.
double transformParam(ParamTransform Transform, double Raw);

/// Rewrites the side tables of \p Task in place according to its
/// parameter sites. \p Raw is the canonical parameter vector
/// (merge::extractParams order) of the model to bind.
void bindTaskParams(TaskProgram &Task, std::span<const double> Raw);

/// Returns a copy of \p Program with every parameter site rebound to
/// \p Raw. \p Program must be parameterized and Raw.size() must equal
/// Program.NumParams (asserted).
KernelProgram bindParams(const KernelProgram &Program,
                         std::span<const double> Raw);

/// True when rebinding \p Program with \p Raw (the raw parameters of the
/// model it was generated from) reproduces its own baked side tables
/// bit-for-bit. A failure means the program shape depends on parameter
/// values somewhere — the merged path must not be used. On failure a
/// description is written to \p Why when provided.
bool verifySelfBinding(const KernelProgram &Program,
                       std::span<const double> Raw,
                       std::string *Why = nullptr);

/// Flattens the tunable-bearing side tables of one task into a dense
/// double block: ConstPool, then (Mean, InvStdDev, Coefficient) per
/// Gaussian, then each lookup table's Values, then each select's Value.
/// The C++ backend indexes its per-model parameter blocks with this
/// exact layout (CppEmitter computes the matching offsets).
std::vector<double> flattenTaskTables(const TaskProgram &Task);

} // namespace vm
} // namespace spnc

#endif // SPNC_VM_PARAMTABLE_H
