//===- kernelcache_test.cpp - Tests for the kernel cache -------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "runtime/KernelCache.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <thread>
#include <vector>

using namespace spnc;
using namespace spnc::runtime;

namespace {

class KernelCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    workloads::SpeakerModelOptions Options;
    Options.TargetOperations = 300;
    Options.Seed = 31;
    Model = std::make_unique<spn::Model>(
        workloads::generateSpeakerModel(Options));
    NumFeatures = Model->getNumFeatures();
    Data = workloads::generateSpeechData(Options, kNumSamples, 5);
    TempDir = std::filesystem::path(::testing::TempDir()) /
              ("spnc-kernelcache-" +
               std::to_string(::testing::UnitTest::GetInstance()
                                  ->random_seed()) +
               "-" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
    std::filesystem::remove_all(TempDir);
  }

  void TearDown() override { std::filesystem::remove_all(TempDir); }

  /// The disk key the cache uses for (Model, Query, Options).
  static uint64_t keyFor(const spn::Model &M,
                         const spn::QueryConfig &Query,
                         const CompilerOptions &Options) {
    Expected<PipelineConfig> Config = PipelineConfig::create(Options);
    EXPECT_TRUE(static_cast<bool>(Config));
    return KernelCache::makeKey(M, Query, *Config);
  }

  /// Reads a cache file's bytes.
  static std::vector<uint8_t> readFile(const std::string &Path) {
    std::FILE *File = std::fopen(Path.c_str(), "rb");
    EXPECT_NE(File, nullptr) << Path;
    std::vector<uint8_t> Bytes;
    uint8_t Chunk[4096];
    size_t Read;
    while (File && (Read = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
      Bytes.insert(Bytes.end(), Chunk, Chunk + Read);
    if (File)
      std::fclose(File);
    return Bytes;
  }

  /// Overwrites a cache file with \p Bytes.
  static void writeFile(const std::string &Path,
                        const std::vector<uint8_t> &Bytes) {
    std::FILE *File = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(File, nullptr) << Path;
    ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), File),
              Bytes.size());
    std::fclose(File);
  }

  static constexpr size_t kNumSamples = 24;
  std::unique_ptr<spn::Model> Model;
  unsigned NumFeatures = 0;
  std::vector<double> Data;
  std::filesystem::path TempDir;
};

TEST_F(KernelCacheTest, SecondRequestIsAHit) {
  KernelCache Cache;
  CompilerOptions Options;

  CompileStats Stats;
  Expected<CompiledKernel> First =
      Cache.getOrCompile(*Model, spn::QueryConfig(), Options, &Stats);
  ASSERT_TRUE(static_cast<bool>(First));
  EXPECT_GT(Stats.TotalNs, 0u);
  EXPECT_EQ(Cache.size(), 1u);

  // The second request reuses the engine: Stats is left untouched and
  // both kernels share the same underlying object.
  CompileStats SecondStats;
  Expected<CompiledKernel> Second = Cache.getOrCompile(
      *Model, spn::QueryConfig(), Options, &SecondStats);
  ASSERT_TRUE(static_cast<bool>(Second));
  EXPECT_EQ(SecondStats.TotalNs, 0u);
  EXPECT_EQ(&First->getEngine(), &Second->getEngine());
  EXPECT_EQ(Cache.size(), 1u);

  KernelCache::Statistics CacheStats = Cache.getStatistics();
  EXPECT_EQ(CacheStats.Hits, 1u);
  EXPECT_EQ(CacheStats.Misses, 1u);
  EXPECT_EQ(CacheStats.Recompiles, 1u);
  EXPECT_EQ(CacheStats.DiskHits, 0u);
}

TEST_F(KernelCacheTest, KeyIsSensitiveToPipelineAndQueryConfig) {
  CompilerOptions Base;
  Base.OptLevel = 1;

  // A different optimization level changes the pipeline, so it must
  // change the key.
  CompilerOptions O2 = Base;
  O2.OptLevel = 2;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, spn::QueryConfig(), O2));

  // So do the execution-affecting knobs...
  CompilerOptions Vectorized = Base;
  Vectorized.Execution.VectorWidth = 8;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, spn::QueryConfig(), Vectorized));

  CompilerOptions Gpu = Base;
  Gpu.TheTarget = Target::GPU;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, spn::QueryConfig(), Gpu));

  // ...and the query configuration.
  spn::QueryConfig Marginal;
  Marginal.SupportMarginal = true;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, Marginal, Base));

  spn::QueryConfig Batched;
  Batched.BatchSize = 64;
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(*Model, Batched, Base));

  // A structurally different model gets a different key too.
  workloads::SpeakerModelOptions Other;
  Other.TargetOperations = 300;
  Other.Seed = 77;
  spn::Model OtherModel = workloads::generateSpeakerModel(Other);
  EXPECT_NE(keyFor(*Model, spn::QueryConfig(), Base),
            keyFor(OtherModel, spn::QueryConfig(), Base));

  // The cache keeps distinct engines for distinct keys.
  KernelCache Cache;
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), Base)));
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), O2)));
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, Marginal, Base)));
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.getStatistics().Hits, 0u);
}

TEST_F(KernelCacheTest, InvalidOptionsPropagateTheError) {
  KernelCache Cache;
  CompilerOptions Bad;
  Bad.OptLevel = 9;
  EXPECT_FALSE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), Bad)));
  EXPECT_EQ(Cache.size(), 0u);
}

TEST_F(KernelCacheTest, DiskTierIsSharedAcrossInstances) {
  CompilerOptions Options;

  // First cache compiles and persists the kernel.
  {
    KernelCache Cache(TempDir.string());
    ASSERT_TRUE(static_cast<bool>(
        Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
    EXPECT_EQ(Cache.getStatistics().Recompiles, 1u);
    uint64_t Key = keyFor(*Model, spn::QueryConfig(), Options);
    EXPECT_TRUE(std::filesystem::exists(Cache.entryPath(Key)));
  }

  // A fresh cache over the same directory loads from disk instead of
  // compiling, and the loaded kernel computes the same result.
  KernelCache Fresh(TempDir.string());
  CompileStats Stats;
  Expected<CompiledKernel> Loaded =
      Fresh.getOrCompile(*Model, spn::QueryConfig(), Options, &Stats);
  ASSERT_TRUE(static_cast<bool>(Loaded));
  KernelCache::Statistics CacheStats = Fresh.getStatistics();
  EXPECT_EQ(CacheStats.DiskHits, 1u);
  EXPECT_EQ(CacheStats.Recompiles, 0u);
  EXPECT_EQ(Stats.TotalNs, 0u);

  std::vector<double> FromDisk(kNumSamples);
  Loaded->execute(Data.data(), FromDisk.data(), kNumSamples);
  std::vector<double> Reference(kNumSamples);
  for (size_t S = 0; S < kNumSamples; ++S)
    Reference[S] = Model->evalLogLikelihood(
        std::span<const double>(Data.data() + S * NumFeatures,
                                NumFeatures));
  for (size_t S = 0; S < kNumSamples; ++S)
    EXPECT_NEAR(FromDisk[S], Reference[S],
                std::fabs(Reference[S]) * 1e-6 + 1e-6);
}

TEST_F(KernelCacheTest, CorruptedDiskEntryTriggersRecompile) {
  CompilerOptions Options;
  uint64_t Key = keyFor(*Model, spn::QueryConfig(), Options);

  // Plant a corrupted entry where the cache expects its .spnk file.
  std::filesystem::create_directories(TempDir);
  KernelCache Cache(TempDir.string());
  std::string Path = Cache.entryPath(Key);
  {
    std::FILE *File = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(File, nullptr);
    std::fputs("this is not a kernel program", File);
    std::fclose(File);
  }

  // The corrupted entry is not an error: the cache recompiles, serves
  // the kernel, and rewrites the entry.
  Expected<CompiledKernel> Kernel =
      Cache.getOrCompile(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  KernelCache::Statistics CacheStats = Cache.getStatistics();
  EXPECT_EQ(CacheStats.DiskHits, 0u);
  EXPECT_EQ(CacheStats.Recompiles, 1u);

  // The rewritten entry is valid now: a fresh cache disk-hits on it.
  KernelCache Fresh(TempDir.string());
  ASSERT_TRUE(static_cast<bool>(
      Fresh.getOrCompile(*Model, spn::QueryConfig(), Options)));
  EXPECT_EQ(Fresh.getStatistics().DiskHits, 1u);
}

TEST_F(KernelCacheTest, UnwritableDirectoryStillServesKernels) {
  // A disk tier that cannot be created (a regular file squats on a path
  // component) degrades to in-memory behavior. A file blocker works
  // even when the tests run as root, unlike permission bits.
  std::filesystem::create_directories(TempDir);
  std::filesystem::path Blocker = TempDir / "blocker";
  {
    std::FILE *File = std::fopen(Blocker.c_str(), "wb");
    ASSERT_NE(File, nullptr);
    std::fclose(File);
  }
  KernelCache Cache((Blocker / "cache").string());
  Expected<CompiledKernel> Kernel =
      Cache.getOrCompile(*Model, spn::QueryConfig(), CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(Kernel));
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.getStatistics().Recompiles, 1u);
}

TEST_F(KernelCacheTest, ConcurrentRequestsShareOneEngine) {
  KernelCache Cache;
  CompilerOptions Options;
  Options.Execution.VectorWidth = 4;

  constexpr unsigned kNumThreads = 8;
  std::vector<CompiledKernel> Kernels(kNumThreads);
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kNumThreads; ++T)
    Threads.emplace_back([&, T] {
      Expected<CompiledKernel> Kernel =
          Cache.getOrCompile(*Model, spn::QueryConfig(), Options);
      if (!Kernel) {
        ++Failures;
        return;
      }
      Kernels[T] = Kernel.takeValue();
      std::vector<double> Output(kNumSamples);
      Kernels[T].execute(Data.data(), Output.data(), kNumSamples);
    });
  for (std::thread &T : Threads)
    T.join();
  ASSERT_EQ(Failures.load(), 0u);

  // Races may compile the same key more than once, but exactly one
  // engine wins and everyone ends up sharing it.
  EXPECT_EQ(Cache.size(), 1u);
  for (unsigned T = 1; T < kNumThreads; ++T)
    EXPECT_EQ(&Kernels[0].getEngine(), &Kernels[T].getEngine());
  KernelCache::Statistics CacheStats = Cache.getStatistics();
  EXPECT_EQ(CacheStats.Hits + CacheStats.Misses, kNumThreads);
  EXPECT_GE(CacheStats.Recompiles, 1u);
}

TEST_F(KernelCacheTest, LruEvictionDropsLeastRecentlyUsed) {
  KernelCache::Config Config;
  Config.MaxEntries = 2;
  KernelCache Cache(Config);

  CompilerOptions O0, O1, O2;
  O0.OptLevel = 0;
  O1.OptLevel = 1;
  O2.OptLevel = 2;

  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), O0)));
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), O1)));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.getStats().Evictions, 0u);

  // Touch O0 so O1 becomes the least-recently-used entry...
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), O0)));
  // ...then a third key evicts O1, not O0.
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), O2)));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.getStats().Evictions, 1u);

  // O0 is still resident (hit); O1 was evicted (miss + recompile).
  KernelCache::Stats Before = Cache.getStats();
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), O0)));
  EXPECT_EQ(Cache.getStats().Hits, Before.Hits + 1);
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), O1)));
  KernelCache::Stats After = Cache.getStats();
  EXPECT_EQ(After.Misses, Before.Misses + 1);
  EXPECT_EQ(After.Recompiles, Before.Recompiles + 1);
  // Inserting O1 again pushed another entry out.
  EXPECT_EQ(After.Evictions, 2u);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST_F(KernelCacheTest, UnboundedCapacityNeverEvicts) {
  KernelCache::Config Config;
  Config.MaxEntries = 0; // unbounded
  KernelCache Cache(Config);
  for (unsigned Opt = 0; Opt <= 3; ++Opt) {
    CompilerOptions Options;
    Options.OptLevel = Opt;
    ASSERT_TRUE(static_cast<bool>(
        Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
  }
  EXPECT_EQ(Cache.size(), 4u);
  EXPECT_EQ(Cache.getStats().Evictions, 0u);
}

TEST_F(KernelCacheTest, DiskBudgetPrunesOldestFirst) {
  spn::QueryConfig Query;
  CompilerOptions OldOptions, NewOptions;
  OldOptions.OptLevel = 1;
  NewOptions.OptLevel = 2;

  // Write the first entry with no budget, then age its mtime so it is
  // unambiguously the oldest file in the tier.
  std::string OldPath;
  uintmax_t OldSize = 0;
  {
    KernelCache Unbounded(TempDir.string());
    ASSERT_TRUE(static_cast<bool>(
        Unbounded.getOrCompile(*Model, Query, OldOptions)));
    OldPath = Unbounded.entryPath(keyFor(*Model, Query, OldOptions));
    ASSERT_TRUE(std::filesystem::exists(OldPath));
    OldSize = std::filesystem::file_size(OldPath);
    std::filesystem::last_write_time(
        OldPath, std::filesystem::file_time_type::clock::now() -
                     std::chrono::hours(1));
  }

  // A budget of one kernel: inserting the second entry overflows it and
  // prunes the aged file while keeping the just-written one.
  KernelCache::Config Config;
  Config.Directory = TempDir.string();
  Config.DiskBudgetBytes = OldSize;
  KernelCache Bounded(Config);
  ASSERT_TRUE(static_cast<bool>(
      Bounded.getOrCompile(*Model, Query, NewOptions)));
  EXPECT_FALSE(std::filesystem::exists(OldPath));
  EXPECT_TRUE(std::filesystem::exists(
      Bounded.entryPath(keyFor(*Model, Query, NewOptions))));
  KernelCache::Stats Stats = Bounded.getStats();
  EXPECT_EQ(Stats.DiskPrunedFiles, 1u);
  EXPECT_EQ(Stats.DiskPrunedBytes, OldSize);
}

TEST_F(KernelCacheTest, TruncatedDiskEntryIsRejectedAndRecompiled) {
  CompilerOptions Options;
  {
    KernelCache Cache(TempDir.string());
    ASSERT_TRUE(static_cast<bool>(
        Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
  }
  std::string Path =
      KernelCache(TempDir.string())
          .entryPath(keyFor(*Model, spn::QueryConfig(), Options));
  std::vector<uint8_t> Bytes = readFile(Path);
  ASSERT_GT(Bytes.size(), 32u);
  Bytes.resize(Bytes.size() / 2);
  writeFile(Path, Bytes);

  // The truncated entry is detected (checksum over the payload fails)
  // and the kernel recompiles transparently.
  KernelCache Fresh(TempDir.string());
  Expected<CompiledKernel> Kernel =
      Fresh.getOrCompile(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  KernelCache::Stats Stats = Fresh.getStats();
  EXPECT_EQ(Stats.DiskHits, 0u);
  EXPECT_EQ(Stats.Recompiles, 1u);
  EXPECT_EQ(Stats.CorruptedDiskEntries, 1u);

  // The recompile rewrote a valid entry.
  KernelCache Reloaded(TempDir.string());
  ASSERT_TRUE(static_cast<bool>(
      Reloaded.getOrCompile(*Model, spn::QueryConfig(), Options)));
  EXPECT_EQ(Reloaded.getStats().DiskHits, 1u);
  EXPECT_EQ(Reloaded.getStats().CorruptedDiskEntries, 0u);
}

TEST_F(KernelCacheTest, BitFlippedDiskEntryIsRejectedAndRecompiled) {
  CompilerOptions Options;
  {
    KernelCache Cache(TempDir.string());
    ASSERT_TRUE(static_cast<bool>(
        Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
  }
  std::string Path =
      KernelCache(TempDir.string())
          .entryPath(keyFor(*Model, spn::QueryConfig(), Options));
  std::vector<uint8_t> Bytes = readFile(Path);
  ASSERT_FALSE(Bytes.empty());
  // Flip one bit in the last payload byte: the blob stays structurally
  // parseable, so only the content checksum can reject it.
  Bytes[Bytes.size() - 1] ^= 0x01;
  writeFile(Path, Bytes);

  KernelCache Fresh(TempDir.string());
  Expected<CompiledKernel> Kernel =
      Fresh.getOrCompile(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  KernelCache::Stats Stats = Fresh.getStats();
  EXPECT_EQ(Stats.DiskHits, 0u);
  EXPECT_EQ(Stats.Recompiles, 1u);
  EXPECT_EQ(Stats.CorruptedDiskEntries, 1u);

  // The flipped entry never reached execution: the recompiled kernel
  // computes the reference result.
  std::vector<double> Output(kNumSamples);
  Kernel->execute(Data.data(), Output.data(), kNumSamples);
  for (size_t S = 0; S < kNumSamples; ++S) {
    double Reference = Model->evalLogLikelihood(
        std::span<const double>(Data.data() + S * NumFeatures,
                                NumFeatures));
    EXPECT_NEAR(Output[S], Reference,
                std::fabs(Reference) * 1e-6 + 1e-6);
  }
}

TEST_F(KernelCacheTest, LegacyV2DiskEntryLoadsWithWarning) {
  CompilerOptions Options;
  {
    KernelCache Cache(TempDir.string());
    Expected<CompiledKernel> Fresh =
        Cache.getOrCompile(*Model, spn::QueryConfig(), Options);
    ASSERT_TRUE(static_cast<bool>(Fresh));
    // The downgrade below strips the per-task v5 parameter-site count
    // from the end of the blob, which only lands there for a
    // single-task program.
    ASSERT_EQ(Fresh->getProgram().Tasks.size(), 1u);
  }
  std::string Path =
      KernelCache(TempDir.string())
          .entryPath(keyFor(*Model, spn::QueryConfig(), Options));
  // Downgrade the entry to the pre-checksum v2 layout: drop the v4
  // query/plan section (13 bytes for a Joint program with an empty
  // plan) plus the v5 parameterization header (5 bytes:
  // non-parameterized flag + zero param count), the trailing per-task
  // parameter-site count (4 bytes), and the 8-byte checksum field,
  // then patch the header version word.
  std::vector<uint8_t> Bytes = readFile(Path);
  ASSERT_GT(Bytes.size(), 16u);
  uint32_t NameLen = 0;
  std::memcpy(&NameLen, Bytes.data() + 16, sizeof(NameLen));
  size_t QueryOffset = 16 + 4 + NameLen + 3;
  Bytes.erase(Bytes.begin() + QueryOffset,
              Bytes.begin() + QueryOffset + 18);
  Bytes.erase(Bytes.end() - 4, Bytes.end());
  Bytes.erase(Bytes.begin() + 8, Bytes.begin() + 16);
  const uint32_t Version = 2;
  std::memcpy(Bytes.data() + 4, &Version, sizeof(Version));
  writeFile(Path, Bytes);

  // v2 entries still load (with a warning) and count as legacy.
  KernelCache Fresh(TempDir.string());
  Expected<CompiledKernel> Kernel =
      Fresh.getOrCompile(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  KernelCache::Stats Stats = Fresh.getStats();
  EXPECT_EQ(Stats.DiskHits, 1u);
  EXPECT_EQ(Stats.LegacyDiskEntries, 1u);
  EXPECT_EQ(Stats.Recompiles, 0u);
  EXPECT_EQ(Stats.CorruptedDiskEntries, 0u);

  std::vector<double> Output(kNumSamples);
  Kernel->execute(Data.data(), Output.data(), kNumSamples);
  double Reference = Model->evalLogLikelihood(
      std::span<const double>(Data.data(), NumFeatures));
  EXPECT_NEAR(Output[0], Reference, std::fabs(Reference) * 1e-6 + 1e-6);
}

TEST_F(KernelCacheTest, BaselineEnginesReportAccounting) {
  // The separate accounting path: baseline adapters have no compiled
  // program but still report per-sample work, so harnesses need no
  // special case.
  baselines::InterpreterEngine Interp(*Model);
  EngineAccounting InterpAccounting = Interp.getAccounting();
  EXPECT_FALSE(InterpAccounting.Compiled);
  EXPECT_EQ(InterpAccounting.NumInstructions,
            Model->computeStats().NumNodes);
  EXPECT_EQ(InterpAccounting.NumTasks, 1u);

  // Compiled engines derive the counts from their program.
  Expected<CompiledKernel> Kernel =
      compileModel(*Model, spn::QueryConfig(), CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(Kernel));
  EngineAccounting Compiled = Kernel->getEngine().getAccounting();
  EXPECT_TRUE(Compiled.Compiled);
  EXPECT_GT(Compiled.NumInstructions, 0u);
  EXPECT_EQ(Compiled.NumTasks, Kernel->getProgram().Tasks.size());
}

TEST_F(KernelCacheTest, ClearDropsEnginesButKeepsDisk) {
  KernelCache Cache(TempDir.string());
  CompilerOptions Options;
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
  ASSERT_EQ(Cache.size(), 1u);

  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);

  // The next request misses in memory but recovers from disk.
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
  KernelCache::Statistics CacheStats = Cache.getStatistics();
  EXPECT_EQ(CacheStats.DiskHits, 1u);
  EXPECT_EQ(CacheStats.Recompiles, 1u);
}

/// A ConfigurePipeline hook registering one no-op custom stage named
/// \p Name.
KernelCache::Config customStageConfig(const std::string &Directory,
                                      const std::string &Name) {
  KernelCache::Config Config;
  Config.Directory = Directory;
  Config.ConfigurePipeline =
      [Name](CompilationPipeline &P) -> std::optional<Error> {
    return P.registerStage(
        PipelineStage{Name, "test stage", /*Diagnostic=*/true},
        [](detail::StageContext &) { return std::nullopt; });
  };
  return Config;
}

TEST_F(KernelCacheTest, StageFingerprintSeparatesConfiguredPipelines) {
  CompilerOptions Options;

  // Seed the disk tier with a default-pipeline entry.
  {
    KernelCache Default(TempDir.string());
    ASSERT_TRUE(static_cast<bool>(
        Default.getOrCompile(*Model, spn::QueryConfig(), Options)));
    EXPECT_EQ(Default.getStats().Recompiles, 1u);
  }

  // A cache whose pipelines carry a custom stage must not pick up the
  // default pipeline's entry: the stage fingerprint is part of the key.
  {
    KernelCache Custom(
        customStageConfig(TempDir.string(), "custom:checkpoint"));
    ASSERT_TRUE(static_cast<bool>(
        Custom.getOrCompile(*Model, spn::QueryConfig(), Options)));
    KernelCache::Stats Stats = Custom.getStats();
    EXPECT_EQ(Stats.DiskHits, 0u);
    EXPECT_EQ(Stats.Recompiles, 1u);
  }

  // A second cache with the identical hook shares the custom entry.
  {
    KernelCache Again(
        customStageConfig(TempDir.string(), "custom:checkpoint"));
    ASSERT_TRUE(static_cast<bool>(
        Again.getOrCompile(*Model, spn::QueryConfig(), Options)));
    KernelCache::Stats Stats = Again.getStats();
    EXPECT_EQ(Stats.DiskHits, 1u);
    EXPECT_EQ(Stats.Recompiles, 0u);
  }

  // A differently named stage is a different pipeline again.
  {
    KernelCache Other(
        customStageConfig(TempDir.string(), "custom:other"));
    ASSERT_TRUE(static_cast<bool>(
        Other.getOrCompile(*Model, spn::QueryConfig(), Options)));
    KernelCache::Stats Stats = Other.getStats();
    EXPECT_EQ(Stats.DiskHits, 0u);
    EXPECT_EQ(Stats.Recompiles, 1u);
  }
}

TEST_F(KernelCacheTest, DefaultKeyMatchesUnconfiguredGetOrCompile) {
  // The three-argument makeKey must keep predicting the disk location
  // getOrCompile uses when no ConfigurePipeline hook is installed —
  // the contract external tooling relies on to prewarm cache dirs.
  CompilerOptions Options;
  KernelCache Cache(TempDir.string());
  ASSERT_TRUE(static_cast<bool>(
      Cache.getOrCompile(*Model, spn::QueryConfig(), Options)));
  uint64_t Key = keyFor(*Model, spn::QueryConfig(), Options);
  EXPECT_TRUE(std::filesystem::exists(Cache.entryPath(Key)));

  // And the four-argument overload agrees when handed the default
  // pipeline's own fingerprint.
  Expected<PipelineConfig> Config = PipelineConfig::create(Options);
  ASSERT_TRUE(static_cast<bool>(Config));
  CompilationPipeline Default(*Config);
  EXPECT_EQ(Key,
            KernelCache::makeKey(*Model, spn::QueryConfig(), *Config,
                                 KernelCache::stageFingerprint(Default)));

  // Registering a stage changes the fingerprint, and with it the key.
  ASSERT_FALSE(Default.registerStage(
      PipelineStage{"custom:checkpoint", "test stage",
                    /*Diagnostic=*/true},
      [](detail::StageContext &) { return std::nullopt; }));
  EXPECT_NE(Key,
            KernelCache::makeKey(*Model, spn::QueryConfig(), *Config,
                                 KernelCache::stageFingerprint(Default)));
}

} // namespace
