//===- Region.h - Region holding blocks -------------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Region is an ordered list of blocks owned by an operation. Regions
/// give the IR its nesting capability (paper §II-B): the graph of an
/// `hi_spn.joint_query` or the body of a `lo_spn.task` are regions.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_REGION_H
#define SPNC_IR_REGION_H

#include "ir/Block.h"

#include <memory>
#include <vector>

namespace spnc {
namespace ir {

class Operation;

class Region {
public:
  Region() = default;

  Region(const Region &) = delete;
  Region &operator=(const Region &) = delete;

  /// Returns the operation owning this region (null while detached).
  Operation *getParentOp() const { return ParentOp; }

  bool empty() const { return Blocks.empty(); }
  size_t size() const { return Blocks.size(); }

  Block &front() {
    assert(!Blocks.empty() && "front() on empty region");
    return *Blocks.front();
  }
  Block &getBlock(size_t Index) {
    assert(Index < Blocks.size() && "block index out of range");
    return *Blocks[Index];
  }

  /// Creates and appends a new empty block.
  Block &emplaceBlock() {
    Blocks.push_back(std::make_unique<Block>());
    Blocks.back()->ParentRegion = this;
    return *Blocks.back();
  }

  /// Drops operand references in all contained blocks.
  void dropAllReferences() {
    for (auto &TheBlock : Blocks)
      TheBlock->dropAllReferences();
  }

  auto begin() { return Blocks.begin(); }
  auto end() { return Blocks.end(); }

private:
  Operation *ParentOp = nullptr;
  std::vector<std::unique_ptr<Block>> Blocks;

  friend class Operation;
};

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_REGION_H
