//===- BackendRegistry.h - Named backend factory registry ---------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps backend names to factories and lazily constructed, shared
/// backend instances. The process-wide `global()` registry comes
/// pre-populated with the built-in backends ("vm", "cpp") on first use
/// — lazy registration instead of static initializers, which are
/// silently dropped when a static library's object files go unused.
/// Registration and lookup diagnose duplicates and unknown names (the
/// latter listing what is registered, so a `--backend` typo is
/// self-explaining).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_BACKEND_BACKENDREGISTRY_H
#define SPNC_BACKEND_BACKENDREGISTRY_H

#include "backend/Backend.h"

#include <functional>
#include <mutex>
#include <unordered_map>

namespace spnc {
namespace backend {

/// Thread-safe name -> backend registry. Instances constructed through
/// lookup() are cached and shared between callers (backends are
/// immutable, so sharing is safe).
class BackendRegistry {
public:
  using Factory = std::function<std::shared_ptr<Backend>()>;

  /// An empty registry (no built-ins); use global() for the shared,
  /// pre-populated one.
  BackendRegistry() = default;

  BackendRegistry(const BackendRegistry &) = delete;
  BackendRegistry &operator=(const BackendRegistry &) = delete;

  /// Registers \p TheFactory under \p Name. Fails with a diagnostic
  /// when \p Name is already registered (the registry is unchanged).
  /// Thread-safe.
  std::optional<Error> registerBackend(const std::string &Name,
                                       Factory TheFactory);

  /// The shared instance of the backend registered as \p Name,
  /// constructing it on first lookup. Fails with a diagnostic listing
  /// every registered name when \p Name is unknown, and when the
  /// factory returns null. Thread-safe.
  Expected<std::shared_ptr<Backend>> lookup(const std::string &Name);

  /// True when \p Name is registered. Thread-safe.
  bool contains(const std::string &Name) const;

  /// Every registered name, in registration order. Thread-safe.
  std::vector<std::string> getNames() const;

  /// The process-wide registry, with the built-in backends ("vm",
  /// "cpp") registered on first use. Thread-safe.
  static BackendRegistry &global();

private:
  mutable std::mutex Mutex;
  /// Registration order kept for deterministic diagnostics/listings.
  std::vector<std::string> Names;
  std::unordered_map<std::string, Factory> Factories;
  std::unordered_map<std::string, std::shared_ptr<Backend>> Instances;
};

} // namespace backend
} // namespace spnc

#endif // SPNC_BACKEND_BACKENDREGISTRY_H
