//===- dialect_test.cpp - HiSPN and LoSPN dialect tests -------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the op inventories of paper Tables I and II, per-op verifiers,
/// folding and canonicalization semantics of the two SPN dialects.
///
//===----------------------------------------------------------------------===//

#include "dialects/hispn/HiSPNOps.h"
#include "dialects/lospn/LoSPNOps.h"
#include "ir/Transforms.h"
#include "ir/Verifier.h"
#include "support/RawOStream.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace spnc;
using namespace spnc::ir;

namespace {

class DialectTest : public ::testing::Test {
protected:
  void SetUp() override {
    hispn::registerHiSPNDialect(Ctx);
    lospn::registerLoSPNDialect(Ctx);
    Ctx.setDiagnosticHandler([this](const std::string &Message) {
      LastError = Message;
      ++NumErrors;
    });
    Module = ModuleOp::create(Ctx);
    Builder = std::make_unique<OpBuilder>(
        OpBuilder::atBlockEnd(Ctx, &Module.get().getBody()));
  }

  Context Ctx;
  OwningOpRef<ModuleOp> Module;
  std::unique_ptr<OpBuilder> Builder;
  std::string LastError;
  unsigned NumErrors = 0;
};

//===----------------------------------------------------------------------===//
// Dialect registration (Tables I and II)
//===----------------------------------------------------------------------===//

TEST_F(DialectTest, TableIOperationsAreRegistered) {
  for (const char *Name :
       {"hi_spn.joint_query", "hi_spn.graph", "hi_spn.root",
        "hi_spn.product", "hi_spn.sum", "hi_spn.histogram",
        "hi_spn.categorical", "hi_spn.gaussian"})
    EXPECT_NE(Ctx.lookupOpInfo(Name), nullptr) << Name;
}

TEST_F(DialectTest, TableIIOperationsAreRegistered) {
  for (const char *Name :
       {"lo_spn.kernel", "lo_spn.task", "lo_spn.body",
        "lo_spn.batch_extract", "lo_spn.batch_read",
        "lo_spn.batch_collect", "lo_spn.batch_write", "lo_spn.mul",
        "lo_spn.add", "lo_spn.histogram", "lo_spn.categorical",
        "lo_spn.gaussian", "lo_spn.constant", "lo_spn.yield",
        "lo_spn.return", "lo_spn.alloc", "lo_spn.dealloc",
        "lo_spn.copy"})
    EXPECT_NE(Ctx.lookupOpInfo(Name), nullptr) << Name;
}

TEST_F(DialectTest, DialectTypesPrint) {
  auto ToString = [](Type T) {
    std::string S;
    StringOStream OS(S);
    T.print(OS);
    return S;
  };
  EXPECT_EQ(ToString(hispn::ProbType::get(Ctx)), "!hi_spn.prob");
  EXPECT_EQ(ToString(lospn::LogType::get(Ctx, FloatType::getF32(Ctx))),
            "!lo_spn.log<f32>");
  EXPECT_EQ(lospn::getStorageType(
                lospn::LogType::get(Ctx, FloatType::getF32(Ctx))),
            Type(FloatType::getF32(Ctx)));
}

//===----------------------------------------------------------------------===//
// HiSPN op semantics
//===----------------------------------------------------------------------===//

TEST_F(DialectTest, SumOpVerifiesWeightCount) {
  auto Graph = Builder->create<hispn::GraphOp>(1u);
  Block &Body = Graph->getRegion(0).emplaceBlock();
  Body.addArgument(FloatType::getF64(Ctx));
  OpBuilder B = OpBuilder::atBlockBegin(Ctx, &Body);
  auto Leaf = B.create<hispn::GaussianOp>(Body.getArgument(0), 0.0, 1.0);
  Value Operands[1] = {Leaf->getResult(0)};
  auto Sum = B.create<hispn::SumOp>(std::span<const Value>(Operands),
                                    std::vector<double>{0.5, 0.5});
  EXPECT_TRUE(failed(hispn::SumOp(Sum.getOperation()).verify()));
  EXPECT_NE(LastError.find("weight count"), std::string::npos);
}

TEST_F(DialectTest, SumOpRejectsNegativeWeights) {
  auto Graph = Builder->create<hispn::GraphOp>(1u);
  Block &Body = Graph->getRegion(0).emplaceBlock();
  Body.addArgument(FloatType::getF64(Ctx));
  OpBuilder B = OpBuilder::atBlockBegin(Ctx, &Body);
  auto Leaf = B.create<hispn::GaussianOp>(Body.getArgument(0), 0.0, 1.0);
  Value Operands[1] = {Leaf->getResult(0)};
  auto Sum = B.create<hispn::SumOp>(std::span<const Value>(Operands),
                                    std::vector<double>{-1.0});
  EXPECT_TRUE(failed(hispn::SumOp(Sum.getOperation()).verify()));
}

TEST_F(DialectTest, GaussianRejectsNonPositiveStdDev) {
  auto Graph = Builder->create<hispn::GraphOp>(1u);
  Block &Body = Graph->getRegion(0).emplaceBlock();
  Body.addArgument(FloatType::getF64(Ctx));
  OpBuilder B = OpBuilder::atBlockBegin(Ctx, &Body);
  auto Leaf = B.create<hispn::GaussianOp>(Body.getArgument(0), 0.0, 0.0);
  EXPECT_TRUE(failed(hispn::GaussianOp(Leaf.getOperation()).verify()));
}

TEST_F(DialectTest, HistogramVerifiesBuckets) {
  auto Graph = Builder->create<hispn::GraphOp>(1u);
  Block &Body = Graph->getRegion(0).emplaceBlock();
  Body.addArgument(FloatType::getF64(Ctx));
  OpBuilder B = OpBuilder::atBlockBegin(Ctx, &Body);
  // lb >= ub is invalid.
  auto Leaf = B.create<hispn::HistogramOp>(
      Body.getArgument(0), std::vector<double>{1.0, 1.0, 0.5});
  EXPECT_TRUE(failed(hispn::HistogramOp(Leaf.getOperation()).verify()));
}

TEST_F(DialectTest, SingleInputProductCollapses) {
  auto Graph = Builder->create<hispn::GraphOp>(1u);
  Block &Body = Graph->getRegion(0).emplaceBlock();
  Body.addArgument(FloatType::getF64(Ctx));
  OpBuilder B = OpBuilder::atBlockBegin(Ctx, &Body);
  auto Leaf = B.create<hispn::GaussianOp>(Body.getArgument(0), 0.0, 1.0);
  Value Operands[1] = {Leaf->getResult(0)};
  auto Product =
      B.create<hispn::ProductOp>(std::span<const Value>(Operands));
  B.create<hispn::RootOp>(Product->getResult(0));

  ASSERT_TRUE(succeeded(runCanonicalizer(Module.get().getOperation())));
  // The root now directly uses the leaf; the product is gone.
  Operation *Root = Body.getTerminator();
  ASSERT_NE(Root, nullptr);
  EXPECT_EQ(Root->getOperand(0).getDefiningOp(), Leaf.getOperation());
}

TEST_F(DialectTest, NestedProductsFlatten) {
  auto Graph = Builder->create<hispn::GraphOp>(3u);
  Block &Body = Graph->getRegion(0).emplaceBlock();
  for (int I = 0; I < 3; ++I)
    Body.addArgument(FloatType::getF64(Ctx));
  OpBuilder B = OpBuilder::atBlockBegin(Ctx, &Body);
  Value L0 = B.create<hispn::GaussianOp>(Body.getArgument(0), 0.0, 1.0)
                 ->getResult(0);
  Value L1 = B.create<hispn::GaussianOp>(Body.getArgument(1), 0.0, 1.0)
                 ->getResult(0);
  Value L2 = B.create<hispn::GaussianOp>(Body.getArgument(2), 0.0, 1.0)
                 ->getResult(0);
  Value InnerOps[2] = {L0, L1};
  Value Inner =
      B.create<hispn::ProductOp>(std::span<const Value>(InnerOps))
          ->getResult(0);
  Value OuterOps[2] = {Inner, L2};
  Value Outer =
      B.create<hispn::ProductOp>(std::span<const Value>(OuterOps))
          ->getResult(0);
  B.create<hispn::RootOp>(Outer);

  ASSERT_TRUE(succeeded(runCanonicalizer(Module.get().getOperation())));
  Operation *Root = Body.getTerminator();
  Operation *Flat = Root->getOperand(0).getDefiningOp();
  ASSERT_TRUE(isa_op<hispn::ProductOp>(Flat));
  EXPECT_EQ(Flat->getNumOperands(), 3u);
}

//===----------------------------------------------------------------------===//
// LoSPN op semantics
//===----------------------------------------------------------------------===//

TEST_F(DialectTest, LoSPNReferenceSemantics) {
  // logSumExp against the naive formula.
  EXPECT_NEAR(lospn::logSumExp(std::log(0.3), std::log(0.4)),
              std::log(0.7), 1e-12);
  // Identity elements.
  double NegInf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(lospn::logSumExp(NegInf, -1.5), -1.5);
  EXPECT_DOUBLE_EQ(lospn::logSumExp(-1.5, NegInf), -1.5);
  EXPECT_DOUBLE_EQ(lospn::logSumExp(NegInf, NegInf), NegInf);
  // Histogram and categorical evaluation.
  double Buckets[6] = {0, 2, 0.25, 2, 4, 0.75};
  EXPECT_DOUBLE_EQ(lospn::evalHistogram(Buckets, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(lospn::evalHistogram(Buckets, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(lospn::evalHistogram(Buckets, 9.0), 0.0);
  double Probs[3] = {0.1, 0.2, 0.7};
  EXPECT_DOUBLE_EQ(lospn::evalCategorical(Probs, 2.0), 0.7);
  EXPECT_DOUBLE_EQ(lospn::evalCategorical(Probs, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(lospn::evalCategorical(Probs, 5.0), 0.0);
  // Gaussian pdf at the mean and consistency of log/linear variants.
  EXPECT_NEAR(lospn::evalGaussianPdf(0.0, 1.0, 0.0),
              0.3989422804014327, 1e-12);
  EXPECT_NEAR(lospn::evalGaussianLogPdf(1.0, 2.0, 0.5),
              std::log(lospn::evalGaussianPdf(1.0, 2.0, 0.5)), 1e-12);
}

TEST_F(DialectTest, LinearArithmeticFolds) {
  Type F64 = FloatType::getF64(Ctx);
  auto Body = Builder->create<lospn::BodyOp>(
      std::span<const Value>{}, std::span<const Type>(&F64, 1));
  Block &Inner = Body->getRegion(0).emplaceBlock();
  OpBuilder B = OpBuilder::atBlockEnd(Ctx, &Inner);
  Value C1 = B.create<lospn::ConstantOp>(0.25, F64)->getResult(0);
  Value C2 = B.create<lospn::ConstantOp>(0.5, F64)->getResult(0);
  auto Mul = B.create<lospn::MulOp>(C1, C2);

  std::vector<Attribute> Constants{FloatAttr::get(Ctx, 0.25),
                                   FloatAttr::get(Ctx, 0.5)};
  Attribute Folded =
      lospn::MulOp(Mul.getOperation()).fold(Constants);
  ASSERT_TRUE(static_cast<bool>(Folded));
  EXPECT_DOUBLE_EQ(Folded.cast<FloatAttr>().getValue(), 0.125);

  auto Add = B.create<lospn::AddOp>(C1, C2);
  Folded = lospn::AddOp(Add.getOperation()).fold(Constants);
  ASSERT_TRUE(static_cast<bool>(Folded));
  EXPECT_DOUBLE_EQ(Folded.cast<FloatAttr>().getValue(), 0.75);
}

TEST_F(DialectTest, LogSpaceArithmeticFolds) {
  Type LogF64 = lospn::LogType::get(Ctx, FloatType::getF64(Ctx));
  auto Body = Builder->create<lospn::BodyOp>(
      std::span<const Value>{}, std::span<const Type>(&LogF64, 1));
  Block &Inner = Body->getRegion(0).emplaceBlock();
  OpBuilder B = OpBuilder::atBlockEnd(Ctx, &Inner);
  double La = std::log(0.25), Lb = std::log(0.5);
  Value C1 = B.create<lospn::ConstantOp>(La, LogF64)->getResult(0);
  Value C2 = B.create<lospn::ConstantOp>(Lb, LogF64)->getResult(0);
  std::vector<Attribute> Constants{FloatAttr::get(Ctx, La),
                                   FloatAttr::get(Ctx, Lb)};

  // Log-space mul is addition of logs.
  auto Mul = B.create<lospn::MulOp>(C1, C2);
  Attribute Folded = lospn::MulOp(Mul.getOperation()).fold(Constants);
  ASSERT_TRUE(static_cast<bool>(Folded));
  EXPECT_NEAR(Folded.cast<FloatAttr>().getValue(), std::log(0.125),
              1e-12);

  // Log-space add is logsumexp.
  auto Add = B.create<lospn::AddOp>(C1, C2);
  Folded = lospn::AddOp(Add.getOperation()).fold(Constants);
  ASSERT_TRUE(static_cast<bool>(Folded));
  EXPECT_NEAR(Folded.cast<FloatAttr>().getValue(), std::log(0.75),
              1e-12);
}

TEST_F(DialectTest, MulIdentityCanonicalizes) {
  // Full kernel/task/body structure so the side-effecting batch_write
  // keeps the computation alive through DCE; the mul's non-constant
  // operand is the batch-read evidence.
  Type F64 = FloatType::getF64(Ctx);
  auto Kernel = Builder->create<lospn::KernelOp>("k", 1u);
  Block &KBody = Kernel->getRegion(0).emplaceBlock();
  Value In = KBody.addArgument(
      MemRefType::get(Ctx, {TypeStorage::kDynamic, 1}, F64));
  Value Out = KBody.addArgument(
      MemRefType::get(Ctx, {1, TypeStorage::kDynamic}, F64));
  OpBuilder KB = OpBuilder::atBlockEnd(Ctx, &KBody);
  Value TaskOperands[2] = {In, Out};
  auto Task = KB.create<lospn::TaskOp>(
      std::span<const Value>(TaskOperands), std::span<const Type>{}, 8u,
      1u);
  KB.create<lospn::ReturnOp>(std::span<const Value>{});
  Block &TBody = Task->getRegion(0).emplaceBlock();
  Value Index = TBody.addArgument(IndexType::get(Ctx));
  Value InArg = TBody.addArgument(In.getType());
  Value OutArg = TBody.addArgument(Out.getType());
  OpBuilder TB = OpBuilder::atBlockEnd(Ctx, &TBody);
  Value X =
      TB.create<lospn::BatchReadOp>(InArg, Index, 0u, false)->getResult(0);
  Value BodyOperands[1] = {X};
  Type BodyResults[1] = {F64};
  auto Body = TB.create<lospn::BodyOp>(
      std::span<const Value>(BodyOperands),
      std::span<const Type>(BodyResults));
  Block &Inner = Body->getRegion(0).emplaceBlock();
  Value XArg = Inner.addArgument(F64);
  OpBuilder B = OpBuilder::atBlockEnd(Ctx, &Inner);
  Value One = B.create<lospn::ConstantOp>(1.0, F64)->getResult(0);
  Value Product = B.create<lospn::MulOp>(XArg, One)->getResult(0);
  Value Yielded[1] = {Product};
  B.create<lospn::YieldOp>(std::span<const Value>(Yielded));
  Value Written[1] = {Body->getResult(0)};
  TB.create<lospn::BatchWriteOp>(OutArg, Index,
                                 std::span<const Value>(Written), true);

  ASSERT_TRUE(succeeded(ir::verify(Module.get().getOperation())));
  ASSERT_TRUE(succeeded(runCanonicalizer(Module.get().getOperation())));
  // mul(x, 1) collapsed to x: yield now uses the block argument.
  Operation *Yield = Inner.getTerminator();
  ASSERT_NE(Yield, nullptr);
  EXPECT_EQ(Yield->getOperand(0), XArg);
  for (Operation *Op : Inner)
    EXPECT_FALSE(isa_op<lospn::MulOp>(Op));
}

TEST_F(DialectTest, TaskVerifierChecksBodyArguments) {
  auto Kernel = Builder->create<lospn::KernelOp>("k", 1u);
  Block &KBody = Kernel->getRegion(0).emplaceBlock();
  Value In = KBody.addArgument(TensorType::get(
      Ctx, {TypeStorage::kDynamic, 2}, FloatType::getF64(Ctx)));
  OpBuilder B = OpBuilder::atBlockEnd(Ctx, &KBody);
  Type ResultTy = TensorType::get(Ctx, {1, TypeStorage::kDynamic},
                                  FloatType::getF64(Ctx));
  Value Operands[1] = {In};
  Type Results[1] = {ResultTy};
  auto Task = B.create<lospn::TaskOp>(std::span<const Value>(Operands),
                                      std::span<const Type>(Results), 64u,
                                      1u);
  Task->getRegion(0).emplaceBlock(); // No batch-index argument: invalid.
  EXPECT_TRUE(failed(lospn::TaskOp(Task.getOperation()).verify()));
}

TEST_F(DialectTest, KernelRequiresReturnTerminator) {
  auto Kernel = Builder->create<lospn::KernelOp>("k", 0u);
  Kernel->getRegion(0).emplaceBlock();
  EXPECT_TRUE(failed(lospn::KernelOp(Kernel.getOperation()).verify()));
  EXPECT_NE(LastError.find("lo_spn.return"), std::string::npos);
}

} // namespace
