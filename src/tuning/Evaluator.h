//===- Evaluator.h - Measuring one tuning candidate ---------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How the tuner scores a candidate. An `Evaluator` turns a
/// `TunedConfig` into a `Measurement` (throughput, tail latency, request
/// outcomes); an `Objective` folds a measurement into one scalar score,
/// higher-is-better. The shipped `ServingEvaluator` measures the
/// configuration the way it will actually run: it compiles the model
/// through the candidate's backend into a shared `KernelCache` and
/// drives a `serving::InferenceServer` either with a synthetic
/// closed loop (N clients x R requests) or by replaying a recorded
/// `spnc-serve --record-trace` log. Throughput is measured against the
/// evaluator's own serving-phase wall clock, so candidate compile time
/// does not distort the score (the cache also makes revisited
/// candidates cheap).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_TUNING_EVALUATOR_H
#define SPNC_TUNING_EVALUATOR_H

#include "frontend/Model.h"
#include "frontend/Query.h"
#include "runtime/KernelCache.h"
#include "tuning/SearchSpace.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spnc {
namespace tuning {

/// What one candidate evaluation measured.
struct Measurement {
  /// Ok-completed samples per second of serving-phase wall clock
  /// (compilation excluded).
  double ThroughputSamplesPerSec = 0.0;
  /// p99 submit-to-completion latency of Ok requests, nanoseconds.
  double P99LatencyNs = 0.0;
  /// Request outcomes (Failed = rejected + timed out + shut down).
  uint64_t OkRequests = 0;
  uint64_t FailedRequests = 0;
  /// Mean samples per dispatched micro-batch.
  double MeanBatchSamples = 0.0;
  /// Time spent registering the model (compile or cache hit).
  uint64_t CompileNs = 0;
  /// Serving-phase wall clock (submit of the first request to the last
  /// drained future).
  uint64_t WallNs = 0;
};

/// Folds a Measurement into one higher-is-better score.
struct Objective {
  enum class Kind : uint8_t {
    /// Maximize ThroughputSamplesPerSec.
    Throughput,
    /// Minimize P99LatencyNs (score is its negation).
    P99Latency,
    /// Maximize (1-w)*log(throughput) - w*log(p99): log scales make the
    /// weight mean "relative-change trade-off", not "nanoseconds vs
    /// samples/s".
    Blend,
  };

  Kind TheKind = Kind::Throughput;
  /// Blend only: weight w on the latency term, in [0, 1].
  double LatencyWeight = 0.5;

  double score(const Measurement &M) const;
  /// Printable name ("throughput", "p99-latency",
  /// "blend(latency-weight=0.5)").
  std::string describe() const;
};

/// Measures one candidate configuration.
class Evaluator {
public:
  virtual ~Evaluator() = default;

  /// Measures \p Config. Fails when the candidate cannot run at all
  /// (unknown backend, compilation failure) — the tuner skips such
  /// candidates rather than aborting the search.
  virtual Expected<Measurement> evaluate(const TunedConfig &Config) = 0;

  /// Printable description of the load this evaluator applies (stored
  /// in the TuningRecord for provenance).
  virtual std::string describe() const = 0;
};

/// One request of a recorded submit trace (the `spnc-serve
/// --record-trace` line format:
/// MODEL_INDEX DELAY_US [NUM_SAMPLES [PRIORITY]]).
struct TraceEvent {
  size_t ModelIndex = 0;
  /// Inter-arrival sleep before this submit.
  uint64_t DelayUs = 0;
  size_t NumSamples = 0;
  /// Scheduling class; lines without the optional priority field
  /// (pre-priority recordings) load as Bulk.
  serving::Priority ThePriority = serving::Priority::Bulk;
};

/// Parses a recorded submit trace. \p DefaultSamples fills lines that
/// omit NUM_SAMPLES. Fails on an unreadable file, a malformed line
/// (with its line number), or a trace containing no requests.
Expected<std::vector<TraceEvent>>
loadSubmitTrace(const std::string &Path, size_t DefaultSamples);

/// Load shape of the ServingEvaluator.
struct ServingEvaluatorOptions {
  /// Closed loop (when Trace is empty): client threads, requests per
  /// client, and samples per request.
  unsigned Clients = 4;
  unsigned RequestsPerClient = 64;
  size_t SamplesPerRequest = 1;
  /// Seed of the synthetic feature rows.
  uint64_t Seed = 1;
  /// When non-empty, replay these events instead of the closed loop.
  std::vector<TraceEvent> Trace;
  /// Trace events are filtered to this model index (the evaluator
  /// serves one model); dropped events donate their inter-arrival
  /// delays to the next kept event, preserving the arrival timeline.
  size_t TraceModelIndex = 0;
  /// Replay DelayUs / TraceSpeedup (1.0 = as recorded).
  double TraceSpeedup = 1.0;
  /// Disk tier of the per-backend kernel caches (empty = memory only).
  std::string CacheDirectory;
};

/// Evaluates candidates by serving the model under load (see file
/// comment). Not thread-safe; the tuner evaluates sequentially.
class ServingEvaluator : public Evaluator {
public:
  ServingEvaluator(spn::Model Model, spn::QueryConfig Query,
                   ServingEvaluatorOptions Options = {});
  ~ServingEvaluator() override;

  Expected<Measurement> evaluate(const TunedConfig &Config) override;
  std::string describe() const override;

private:
  /// The per-backend caches persist across evaluations, so a candidate
  /// revisiting an already-compiled (backend, compile-options) point
  /// pays a cache hit instead of a recompile. Fails on an unknown
  /// backend name.
  Expected<runtime::KernelCache *>
  cacheFor(const std::string &BackendName);

  spn::Model Model;
  spn::QueryConfig Query;
  ServingEvaluatorOptions Options;
  std::map<std::string, std::unique_ptr<runtime::KernelCache>> Caches;
};

} // namespace tuning
} // namespace spnc

#endif // SPNC_TUNING_EVALUATOR_H
