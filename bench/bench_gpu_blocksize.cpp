//===- bench_gpu_blocksize.cpp - Paper §V-A1 GPU block-size sweep ----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the GPU batch/block-size exploration of paper §V-A1: the
/// user-provided batch size is the constant block size of the kernel
/// launches, and "a small block size of 64 is preferable". In the model
/// (as on real hardware) this falls out of occupancy: SPN kernels are
/// register-heavy, large blocks quantize the register-limited resident
/// thread count (or spill), and tiny blocks hit the blocks-per-SM limit.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace spnc;
using namespace spnc::bench;
using namespace spnc::runtime;

namespace {

const SpeakerInstance &speaker() {
  static std::vector<SpeakerInstance> Instances =
      makeSpeakerSet(/*Noisy=*/false);
  return Instances[0];
}

double simulatedMs(unsigned BlockSize) {
  CompilerOptions Options;
  Options.OptLevel = 2;
  Options.TheTarget = Target::GPU;
  Options.GpuBlockSize = BlockSize;
  Expected<CompiledKernel> Kernel =
      compileModel(speaker().Model, spn::QueryConfig(), Options);
  if (!Kernel)
    return -1.0;
  std::vector<double> Output(speaker().NumSamples);
  runtime::ExecutionStats Stats;
  Kernel->execute(speaker().Data.data(), Output.data(),
                  speaker().NumSamples, &Stats);
  return static_cast<double>(Stats.Gpu.totalNs()) * 1e-6;
}

void BM_BlockSize(benchmark::State &State) {
  auto BlockSize = static_cast<unsigned>(State.range(0));
  double Ms = 0;
  for (auto _ : State)
    Ms = simulatedMs(BlockSize);
  State.counters["sim_total_ms"] = Ms;
}
BENCHMARK(BM_BlockSize)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("§V-A1", "GPU block-size sweep (simulated)");
  double Best = 1e300;
  unsigned BestSize = 0;
  for (unsigned BlockSize : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    double Ms = simulatedMs(BlockSize);
    std::printf("block size %4u : %9.3f ms (simulated)\n", BlockSize, Ms);
    if (Ms >= 0 && Ms < Best) {
      Best = Ms;
      BestSize = BlockSize;
    }
  }
  std::printf("best block size: %u (paper: a small block size of 64 is "
              "preferable)\n",
              BestSize);
  benchmark::Shutdown();
  return 0;
}
