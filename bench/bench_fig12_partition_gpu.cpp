//===- bench_fig12_partition_gpu.cpp - Paper Fig. 12 reproduction ----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces paper Fig. 12: impact of the maximum partition size on GPU
/// compilation and execution time for a RAT-SPN class. The paper probes
/// fewer, smaller sizes than on the CPU because small GPU kernels incur
/// launch/communication overhead, and picks 10k as the trade-off.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace spnc;
using namespace spnc::bench;
using namespace spnc::runtime;

namespace {

const spn::Model &ratModel() {
  static spn::Model Model =
      workloads::generateRatSpn(ratSpnBenchScale(), 0);
  return Model;
}

std::vector<uint32_t> partitionSizes() {
  if (fullScale())
    return {2500, 5000, 10000, 25000};
  return {1000, 2500, 5000, 10000};
}

struct SweepPoint {
  double CompileSeconds = 0;
  double ExecSeconds = 0;
  size_t NumTasks = 0;
};

SweepPoint measure(uint32_t MaxPartitionSize) {
  static std::vector<double> Data = workloads::generateImageData(
      ratSpnBenchScale().NumFeatures, 10, 1024, 42, nullptr);
  CompilerOptions Options;
  Options.OptLevel = 1;
  Options.TheTarget = Target::GPU;
  Options.GpuBlockSize = 64;
  Options.MaxPartitionSize = MaxPartitionSize;
  CompileStats Stats;
  SweepPoint Point;
  Expected<CompiledKernel> Kernel =
      compileModel(ratModel(), spn::QueryConfig(), Options, &Stats);
  if (!Kernel)
    return Point;
  Point.CompileSeconds = static_cast<double>(Stats.TotalNs) * 1e-9;
  Point.NumTasks = Stats.NumTasks;
  size_t NumSamples = Data.size() / ratSpnBenchScale().NumFeatures;
  std::vector<double> Output(NumSamples);
  Point.ExecSeconds =
      runReportSeconds(*Kernel, Data.data(), Output.data(), NumSamples);
  return Point;
}

void BM_PartitionGpu(benchmark::State &State) {
  SweepPoint Point;
  for (auto _ : State)
    Point = measure(static_cast<uint32_t>(State.range(0)));
  State.counters["compile_s"] = Point.CompileSeconds;
  State.counters["sim_exec_s"] = Point.ExecSeconds;
  State.counters["tasks"] = static_cast<double>(Point.NumTasks);
}
BENCHMARK(BM_PartitionGpu)
    ->Arg(1000)
    ->Arg(2500)
    ->Arg(5000)
    ->Arg(10000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Fig. 12", "RAT-SPN GPU: max partition size vs compile "
                         "and (simulated) execution time");
  for (uint32_t Size : partitionSizes()) {
    SweepPoint Point = measure(Size);
    std::printf("max partition %6u : compile %7.3f s   sim exec "
                "%8.3f ms   (%zu tasks/launches)\n",
                Size, Point.CompileSeconds, Point.ExecSeconds * 1e3,
                Point.NumTasks);
  }
  std::printf("paper shape: execution improves with partition size "
              "(fewer launches and inter-task buffers) while compile "
              "time grows\n");
  benchmark::Shutdown();
  return 0;
}
