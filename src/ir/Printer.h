//===- Printer.h - Generic textual IR printing ------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints operations in MLIR's generic form, e.g.
/// `%0 = "lo_spn.mul"(%1, %2) : (f32, f32) -> f32`. The output of the
/// printer round-trips through the generic parser (Parser.h).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_PRINTER_H
#define SPNC_IR_PRINTER_H

#include <string>

namespace spnc {

class RawOStream;

namespace ir {

class Operation;

/// Prints \p Op (and nested regions) in generic form to \p OS.
void printOperation(Operation *Op, RawOStream &OS);

/// Returns the generic-form text of \p Op.
std::string opToString(Operation *Op);

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_PRINTER_H
