file(REMOVE_RECURSE
  "libspnc_codegen.a"
)
