//===- vm_test.cpp - Bytecode, vector math and executor tests -------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"
#include "vm/Executor.h"
#include "vm/ProgramBinary.h"
#include "vm/VecMath.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <span>

using namespace spnc;
using namespace spnc::vm;

namespace {

//===----------------------------------------------------------------------===//
// Vector math accuracy (SVML/libmvec substitute)
//===----------------------------------------------------------------------===//

TEST(VecMathTest, ExpNegMatchesLibm) {
  Rng R(11);
  for (int I = 0; I < 10000; ++I) {
    float X = static_cast<float>(-R.uniform(0.0, 80.0));
    float Expected = std::exp(X);
    float Actual = fastExpNeg(X);
    EXPECT_NEAR(Actual, Expected, std::fabs(Expected) * 1e-5f + 1e-38f)
        << "x = " << X;
  }
}

TEST(VecMathTest, ExpNegEdgeCases) {
  EXPECT_FLOAT_EQ(fastExpNeg(0.0f), 1.0f);
  EXPECT_NEAR(fastExpNeg(-1.0f), 0.36787944f, 1e-6f);
  // Deep underflow clamps near zero.
  EXPECT_LT(fastExpNeg(-500.0f), 1e-30f);
  EXPECT_GE(fastExpNeg(-500.0f), 0.0f);
}

TEST(VecMathTest, Log1pMatchesLibmOnUnitInterval) {
  Rng R(13);
  for (int I = 0; I < 10000; ++I) {
    float X = static_cast<float>(R.uniform());
    float Expected = std::log1p(X);
    EXPECT_NEAR(fastLog1p01(X), Expected, 1e-5f) << "x = " << X;
  }
  EXPECT_FLOAT_EQ(fastLog1p01(0.0f), 0.0f);
  EXPECT_NEAR(fastLog1p01(1.0f), 0.6931472f, 2e-6f);
}

TEST(VecMathTest, LaneArrayEntryPoints) {
  float In[8], OutVec[8], OutScalar[8];
  Rng R(5);
  for (float &X : In)
    X = static_cast<float>(-R.uniform(0.0, 40.0));
  vecExpNeg(In, OutVec, 8);
  scalarExp(In, OutScalar, 8);
  for (int I = 0; I < 8; ++I)
    EXPECT_NEAR(OutVec[I], OutScalar[I],
                std::fabs(OutScalar[I]) * 1e-5f + 1e-38f);
}

//===----------------------------------------------------------------------===//
// Single-sample interpreter opcode semantics
//===----------------------------------------------------------------------===//

class OpcodeTest : public ::testing::Test {
protected:
  /// Runs a task with no loads/stores and returns register values.
  std::vector<double> run(const TaskProgram &Task) {
    std::vector<double> Registers(Task.NumRegisters, 0.0);
    BufferBinding<double> NoBuffers[1] = {};
    executeSample(Task, NoBuffers, 0, Registers.data());
    return Registers;
  }

  static Instruction make(OpCode Op, uint32_t Dst, uint32_t A = 0,
                          uint32_t B = 0, uint32_t C = 0) {
    Instruction Inst;
    Inst.Op = Op;
    Inst.Dst = Dst;
    Inst.A = A;
    Inst.B = B;
    Inst.C = C;
    return Inst;
  }
};

TEST_F(OpcodeTest, ArithmeticOps) {
  TaskProgram Task;
  Task.NumRegisters = 6;
  Task.ConstPool = {2.0, 3.0, 4.0};
  Task.Code = {make(OpCode::Const, 0, 0), make(OpCode::Const, 1, 1),
               make(OpCode::Const, 2, 2),
               make(OpCode::Add, 3, 0, 1),            // 5
               make(OpCode::Mul, 4, 0, 2),            // 8
               make(OpCode::FusedMulAdd, 5, 1, 2, 0)}; // 14
  std::vector<double> R = run(Task);
  EXPECT_DOUBLE_EQ(R[3], 5.0);
  EXPECT_DOUBLE_EQ(R[4], 8.0);
  EXPECT_DOUBLE_EQ(R[5], 14.0);
}

TEST_F(OpcodeTest, LogSumExpOp) {
  TaskProgram Task;
  Task.NumRegisters = 3;
  Task.ConstPool = {std::log(0.25), std::log(0.5)};
  Task.Code = {make(OpCode::Const, 0, 0), make(OpCode::Const, 1, 1),
               make(OpCode::LogSumExp, 2, 0, 1)};
  EXPECT_NEAR(run(Task)[2], std::log(0.75), 1e-12);

  // -inf handling.
  Task.ConstPool = {-std::numeric_limits<double>::infinity(),
                    std::log(0.5)};
  EXPECT_NEAR(run(Task)[2], std::log(0.5), 1e-12);
  Task.ConstPool = {-std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity()};
  EXPECT_TRUE(std::isinf(run(Task)[2]));
}

TEST_F(OpcodeTest, GaussianOps) {
  TaskProgram Task;
  Task.NumRegisters = 3;
  Task.ConstPool = {0.7};
  GaussianParams P;
  P.Mean = 0.2;
  P.InvStdDev = 1.0 / 1.5;
  P.Coefficient = 0.39894228040143267794 / 1.5; // linear coeff
  Task.Gaussians = {P};
  Task.Code = {make(OpCode::Const, 0, 0),
               make(OpCode::Gaussian, 1, 0, 0)};
  double T = (0.7 - 0.2) / 1.5;
  EXPECT_NEAR(run(Task)[1],
              0.39894228040143267794 / 1.5 * std::exp(-0.5 * T * T),
              1e-7);

  GaussianParams LogP;
  LogP.Mean = 0.2;
  LogP.InvStdDev = 1.0 / 1.5;
  LogP.Coefficient = -std::log(1.5) - 0.91893853320467274178;
  Task.Gaussians = {LogP};
  Task.Code = {make(OpCode::Const, 0, 0),
               make(OpCode::GaussianLog, 1, 0, 0)};
  EXPECT_NEAR(run(Task)[1],
              -0.5 * T * T - std::log(1.5) - 0.91893853320467274178,
              1e-12);
}

TEST_F(OpcodeTest, GaussianMarginalBlend) {
  TaskProgram Task;
  Task.NumRegisters = 2;
  Task.ConstPool = {std::numeric_limits<double>::quiet_NaN()};
  GaussianParams P;
  P.SupportMarginal = true;
  P.MarginalValue = 0.0; // log 1
  Task.Gaussians = {P};
  Task.Code = {make(OpCode::Const, 0, 0),
               make(OpCode::GaussianLog, 1, 0, 0)};
  EXPECT_DOUBLE_EQ(run(Task)[1], 0.0);
}

TEST_F(OpcodeTest, TableLookup) {
  TaskProgram Task;
  Task.NumRegisters = 4;
  Task.ConstPool = {2.0, -5.0, 99.0};
  LookupTable Table;
  Table.Lo = 0.0;
  Table.Values = {0.1, 0.2, 0.3};
  Table.DefaultValue = -1.0;
  Task.Tables = {Table};
  Task.Code = {make(OpCode::Const, 0, 0),
               make(OpCode::TableLookup, 1, 0, 0),
               make(OpCode::Const, 2, 1),
               make(OpCode::TableLookup, 3, 2, 0)};
  std::vector<double> R = run(Task);
  EXPECT_DOUBLE_EQ(R[1], 0.3);  // index 2
  EXPECT_DOUBLE_EQ(R[3], -1.0); // out of range -> default
}

TEST_F(OpcodeTest, SelectCascadeWithNanBlend) {
  TaskProgram Task;
  Task.NumRegisters = 2;
  Task.ConstPool = {1.5, 0.0 /*default*/, 7.0 /*marginal*/,
                    std::numeric_limits<double>::quiet_NaN()};
  Task.Selects = {SelectRange{0.0, 1.0, 10.0},
                  SelectRange{1.0, 2.0, 20.0}};
  Task.Code = {make(OpCode::Const, 0, 0),
               make(OpCode::Const, 1, 1),
               make(OpCode::SelectInRange, 1, 0, 0),
               make(OpCode::SelectInRange, 1, 0, 1),
               make(OpCode::NanBlend, 1, 0, 2)};
  EXPECT_DOUBLE_EQ(run(Task)[1], 20.0); // 1.5 falls into bucket [1,2)

  // NaN evidence keeps the default through the cascade, then blends.
  Task.Code[0] = make(OpCode::Const, 0, 3);
  EXPECT_DOUBLE_EQ(run(Task)[1], 7.0);
}

TEST_F(OpcodeTest, NaryArithmetic) {
  TaskProgram Task;
  Task.NumRegisters = 6;
  Task.ConstPool = {2.0, 3.0, 4.0};
  Task.Args = {0, 1, 2};
  Task.Code = {make(OpCode::Const, 0, 0), make(OpCode::Const, 1, 1),
               make(OpCode::Const, 2, 2),
               make(OpCode::AddN, 3, /*ArgOffset=*/0, /*Count=*/3),
               make(OpCode::MulN, 4, 0, 3)};
  std::vector<double> R = run(Task);
  EXPECT_DOUBLE_EQ(R[3], 9.0);
  EXPECT_DOUBLE_EQ(R[4], 24.0);
}

TEST_F(OpcodeTest, LogSumExpN) {
  TaskProgram Task;
  Task.NumRegisters = 4;
  Task.ConstPool = {std::log(0.1), std::log(0.2), std::log(0.3)};
  Task.Args = {0, 1, 2};
  Task.Code = {make(OpCode::Const, 0, 0), make(OpCode::Const, 1, 1),
               make(OpCode::Const, 2, 2),
               make(OpCode::LogSumExpN, 3, 0, 3)};
  EXPECT_NEAR(run(Task)[3], std::log(0.6), 1e-12);

  // All -inf inputs stay -inf (no NaN).
  double NegInf = -std::numeric_limits<double>::infinity();
  Task.ConstPool = {NegInf, NegInf, NegInf};
  double Result = run(Task)[3];
  EXPECT_TRUE(std::isinf(Result) && Result < 0);

  // Mixed -inf inputs are ignored.
  Task.ConstPool = {NegInf, std::log(0.2), std::log(0.3)};
  EXPECT_NEAR(run(Task)[3], std::log(0.5), 1e-12);
}

//===----------------------------------------------------------------------===//
// Buffer addressing
//===----------------------------------------------------------------------===//

TEST(BufferTest, RowMajorAndTransposedAddressing) {
  // One input buffer [sample][feature], one transposed output [slot][s].
  TaskProgram Task;
  Task.NumRegisters = 1;
  Task.Loads = {BufferAccess{0, 1}};  // feature 1
  Task.Stores = {BufferAccess{1, 0}}; // slot 0
  Instruction Load;
  Load.Op = OpCode::Load;
  Load.Dst = 0;
  Load.A = 0;
  Instruction Store;
  Store.Op = OpCode::Store;
  Store.Dst = 0;
  Store.A = 0;
  Task.Code = {Load, Store};

  double Input[6] = {10, 11, 20, 21, 30, 31}; // 3 samples x 2 features
  double Output[3] = {0, 0, 0};
  BufferBinding<double> Buffers[2];
  Buffers[0].ExternalIn = Input;
  Buffers[0].Columns = 2;
  Buffers[0].Transposed = false;
  Buffers[0].Stride = 3;
  Buffers[1].ExternalOut = Output;
  Buffers[1].Columns = 1;
  Buffers[1].Transposed = true;
  Buffers[1].Stride = 3;

  double Registers[1];
  for (size_t S = 0; S < 3; ++S)
    executeSample(Task, Buffers, S, Registers);
  EXPECT_DOUBLE_EQ(Output[0], 11);
  EXPECT_DOUBLE_EQ(Output[1], 21);
  EXPECT_DOUBLE_EQ(Output[2], 31);
}

TEST(BufferTest, MultiSlotTransposedOutput) {
  // A task publishing two interface values per sample into a transposed
  // [slot][sample] buffer (the partitioned-kernel layout).
  TaskProgram Task;
  Task.NumRegisters = 2;
  Task.Loads = {BufferAccess{0, 0}};
  Task.Stores = {BufferAccess{1, 0}, BufferAccess{1, 1}};
  Task.ConstPool = {100.0};
  Instruction Load;
  Load.Op = OpCode::Load;
  Load.Dst = 0;
  Instruction Const;
  Const.Op = OpCode::Const;
  Const.Dst = 1;
  Instruction Add;
  Add.Op = OpCode::Add;
  Add.Dst = 1;
  Add.A = 0;
  Add.B = 1;
  Instruction Store0;
  Store0.Op = OpCode::Store;
  Store0.Dst = 0;
  Store0.A = 0;
  Instruction Store1;
  Store1.Op = OpCode::Store;
  Store1.Dst = 1;
  Store1.A = 1;
  Task.Code = {Load, Const, Add, Store0, Store1};

  double Input[3] = {1, 2, 3}; // 3 samples x 1 feature
  double Output[6] = {};       // 2 slots x 3 samples
  BufferBinding<double> Buffers[2];
  Buffers[0].ExternalIn = Input;
  Buffers[0].Columns = 1;
  Buffers[0].Transposed = false;
  Buffers[0].Stride = 3;
  Buffers[1].ExternalOut = Output;
  Buffers[1].Columns = 2;
  Buffers[1].Transposed = true;
  Buffers[1].Stride = 3;
  double Registers[2];
  for (size_t S = 0; S < 3; ++S)
    executeSample(Task, Buffers, S, Registers);
  // Slot 0 = the raw value, slot 1 = value + 100, each contiguous.
  EXPECT_DOUBLE_EQ(Output[0], 1);
  EXPECT_DOUBLE_EQ(Output[1], 2);
  EXPECT_DOUBLE_EQ(Output[2], 3);
  EXPECT_DOUBLE_EQ(Output[3], 101);
  EXPECT_DOUBLE_EQ(Output[4], 102);
  EXPECT_DOUBLE_EQ(Output[5], 103);
}

TEST(VecMathTest, EightLaneKernelEdgeValues) {
  // The 8-lane fast path must agree with libm at the clamp boundaries
  // and across the full range in one call.
  float In[8] = {0.0f, -1e-8f, -1.0f, -10.0f, -50.0f, -86.9f, -87.0f,
                 -200.0f};
  float Out[8];
  vecExpNeg(In, Out, 8);
  for (int I = 0; I < 6; ++I)
    EXPECT_NEAR(Out[I], std::exp(In[I]),
                std::exp(In[I]) * 1e-5f + 1e-38f)
        << "lane " << I;
  EXPECT_LE(Out[6], 2e-38f);
  EXPECT_LE(Out[7], 2e-38f); // clamped deep underflow
  EXPECT_GE(Out[7], 0.0f);

  float LogIn[8] = {1.0f, 1.5f, 2.0f, 3.0f, 4.0f, 7.9f, 8.0f, 64.0f};
  float LogOut[8];
  vecLogPos(LogIn, LogOut, 8);
  for (int I = 0; I < 8; ++I)
    EXPECT_NEAR(LogOut[I], std::log(LogIn[I]), 1e-5f) << "lane " << I;

  // Non-multiple-of-8 lane counts exercise the scalar tail.
  float Tail[11], TailOut[11];
  for (int I = 0; I < 11; ++I)
    Tail[I] = -0.3f * static_cast<float>(I);
  vecExpNeg(Tail, TailOut, 11);
  for (int I = 0; I < 11; ++I)
    EXPECT_NEAR(TailOut[I], std::exp(Tail[I]),
                std::exp(Tail[I]) * 1e-5f + 1e-38f)
        << "lane " << I;
}

//===----------------------------------------------------------------------===//
// Program binary round trip
//===----------------------------------------------------------------------===//

KernelProgram makeSampleProgram() {
  KernelProgram Program;
  Program.Name = "sample";
  Program.UseF32 = true;
  Program.LogSpace = true;
  Program.BatchSize = 64;
  Program.NumInputs = 1;
  Program.NumOutputs = 1;
  BufferInfo In;
  In.Role = BufferInfo::Kind::Input;
  In.Columns = 26;
  In.Transposed = false;
  BufferInfo Out;
  Out.Role = BufferInfo::Kind::Output;
  Out.Columns = 1;
  Out.DeviceResident = true;
  Program.Buffers = {In, Out};
  TaskProgram Task;
  Task.NumRegisters = 3;
  Task.ConstPool = {1.0, 2.5};
  Task.Gaussians = {GaussianParams{0.5, 2.0, -1.0, true, 0.0}};
  Task.Tables = {LookupTable{0.0, {0.5, 0.5}, -1.0, false, 1.0}};
  Task.Selects = {SelectRange{0.0, 1.0, 0.25}};
  Task.Loads = {BufferAccess{0, 3}};
  Task.Stores = {BufferAccess{1, 0}};
  Instruction I;
  I.Op = OpCode::GaussianLog;
  I.Dst = 2;
  I.A = 1;
  I.B = 0;
  Task.Code = {I};
  Program.Tasks = {Task};
  Program.Steps = {KernelStep{0, -1, -1}};
  return Program;
}

TEST(ProgramBinaryTest, RoundTrips) {
  KernelProgram Program = makeSampleProgram();
  std::vector<uint8_t> Blob = encodeProgram(Program);
  Expected<KernelProgram> Restored = decodeProgram(Blob);
  ASSERT_TRUE(static_cast<bool>(Restored))
      << Restored.getError().message();
  EXPECT_EQ(Restored->Name, "sample");
  EXPECT_EQ(Restored->BatchSize, 64u);
  EXPECT_TRUE(Restored->UseF32);
  EXPECT_TRUE(Restored->LogSpace);
  ASSERT_EQ(Restored->Buffers.size(), 2u);
  EXPECT_EQ(Restored->Buffers[0].Columns, 26u);
  EXPECT_TRUE(Restored->Buffers[1].DeviceResident);
  ASSERT_EQ(Restored->Tasks.size(), 1u);
  const TaskProgram &Task = Restored->Tasks[0];
  EXPECT_EQ(Task.NumRegisters, 3u);
  EXPECT_EQ(Task.ConstPool, (std::vector<double>{1.0, 2.5}));
  ASSERT_EQ(Task.Code.size(), 1u);
  EXPECT_EQ(Task.Code[0].Op, OpCode::GaussianLog);
  EXPECT_DOUBLE_EQ(Task.Gaussians[0].InvStdDev, 2.0);
  EXPECT_TRUE(Task.Gaussians[0].SupportMarginal);
  EXPECT_EQ(Task.Tables[0].Values.size(), 2u);
  EXPECT_DOUBLE_EQ(Task.Selects[0].Value, 0.25);
  ASSERT_EQ(Restored->Steps.size(), 1u);
  EXPECT_EQ(Restored->Steps[0].Task, 0);
}

TEST(ProgramBinaryTest, RejectsCorruptBlobs) {
  KernelProgram Program = makeSampleProgram();
  std::vector<uint8_t> Blob = encodeProgram(Program);
  // Bad magic.
  std::vector<uint8_t> Bad = Blob;
  Bad[0] ^= 0xff;
  EXPECT_FALSE(static_cast<bool>(decodeProgram(Bad)));
  // Truncations at various points.
  for (size_t Cut :
       {size_t(3), Blob.size() / 4, Blob.size() / 2, Blob.size() - 1}) {
    std::vector<uint8_t> Truncated(Blob.begin(), Blob.begin() + Cut);
    EXPECT_FALSE(static_cast<bool>(decodeProgram(Truncated)))
        << "cut " << Cut;
  }
  // Trailing garbage.
  Bad = Blob;
  Bad.push_back(42);
  EXPECT_FALSE(static_cast<bool>(decodeProgram(Bad)));
}

TEST(ProgramBinaryTest, ReportsCurrentVersionAndChecksum) {
  std::vector<uint8_t> Blob = encodeProgram(makeSampleProgram());
  BinaryInfo Info;
  ASSERT_TRUE(static_cast<bool>(decodeProgram(Blob, &Info)));
  EXPECT_EQ(Info.Version, kProgramBinaryVersion);
  EXPECT_TRUE(Info.Checksummed);
}

TEST(ProgramBinaryTest, ChecksumCatchesPayloadBitFlip) {
  KernelProgram Program = makeSampleProgram();
  std::vector<uint8_t> Blob = encodeProgram(Program);
  // Flip one bit in the last byte — part of a numeric payload field, so
  // the blob stays structurally valid and only the checksum can catch
  // the damage.
  std::vector<uint8_t> Flipped = Blob;
  Flipped[Flipped.size() - 1] ^= 0x01;
  Expected<KernelProgram> Result = decodeProgram(Flipped);
  ASSERT_FALSE(static_cast<bool>(Result));
  EXPECT_NE(Result.getError().message().find("checksum"),
            std::string::npos);
}

/// Rewrites a current (v5) blob of a single-task program as a v2 blob:
/// drop the v4 query/plan section (13 bytes for a Joint program with an
/// empty plan), the v5 parameterization header (5 bytes: flag + zero
/// param count), the trailing per-task parameter-site count (4 bytes)
/// and the 8-byte checksum field, then patch the version word. The
/// remaining payload layout is identical.
static std::vector<uint8_t> downgradeToV2(std::span<const uint8_t> V5) {
  std::vector<uint8_t> V2(V5.begin(), V5.end());
  uint32_t NameLen = 0;
  std::memcpy(&NameLen, V2.data() + 16, sizeof(NameLen));
  size_t QueryOffset = 16 + 4 + NameLen + 3;
  V2.erase(V2.begin() + QueryOffset, V2.begin() + QueryOffset + 18);
  V2.erase(V2.end() - 4, V2.end());
  V2.erase(V2.begin() + 8, V2.begin() + 16);
  const uint32_t Version = 2;
  std::memcpy(V2.data() + 4, &Version, sizeof(Version));
  return V2;
}

TEST(ProgramBinaryTest, LegacyV2BlobStillDecodes) {
  KernelProgram Program = makeSampleProgram();
  std::vector<uint8_t> V2 = downgradeToV2(encodeProgram(Program));
  BinaryInfo Info;
  Expected<KernelProgram> Restored = decodeProgram(V2, &Info);
  ASSERT_TRUE(static_cast<bool>(Restored))
      << Restored.getError().message();
  EXPECT_EQ(Info.Version, 2u);
  EXPECT_FALSE(Info.Checksummed);
  EXPECT_EQ(Restored->Name, "sample");
  EXPECT_EQ(Restored->Lowering, Program.Lowering);
  ASSERT_EQ(Restored->Tasks.size(), 1u);
  EXPECT_EQ(Restored->Tasks[0].Code.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Vector vs scalar engine equivalence (property sweep)
//===----------------------------------------------------------------------===//

/// Builds a random log-space arithmetic task over a few input features.
KernelProgram makeRandomProgram(uint64_t Seed, uint32_t NumFeatures) {
  Rng R(Seed);
  KernelProgram Program;
  Program.Name = "random";
  Program.UseF32 = true;
  Program.LogSpace = true;
  Program.BatchSize = 32;
  Program.NumInputs = 1;
  Program.NumOutputs = 1;
  BufferInfo In;
  In.Role = BufferInfo::Kind::Input;
  In.Columns = NumFeatures;
  In.Transposed = false;
  BufferInfo Out;
  Out.Role = BufferInfo::Kind::Output;
  Out.Columns = 1;
  Out.Transposed = true;
  Program.Buffers = {In, Out};

  TaskProgram Task;
  uint32_t Next = 0;
  std::vector<uint32_t> Values;
  auto Push = [&](Instruction Inst) { Task.Code.push_back(Inst); };
  for (uint32_t F = 0; F < NumFeatures; ++F) {
    Task.Loads.push_back(BufferAccess{0, F});
    Instruction Load;
    Load.Op = OpCode::Load;
    Load.Dst = Next++;
    Load.A = F;
    Push(Load);
    GaussianParams P;
    P.Mean = R.uniform(-1, 1);
    P.InvStdDev = 1.0 / R.uniform(0.5, 2.0);
    P.Coefficient = -R.uniform(0.0, 1.0);
    Task.Gaussians.push_back(P);
    Instruction G;
    G.Op = OpCode::GaussianLog;
    G.Dst = Next;
    G.A = Next - 1;
    G.B = static_cast<uint32_t>(Task.Gaussians.size() - 1);
    ++Next;
    Push(G);
    Values.push_back(Next - 1);
  }
  while (Values.size() > 1) {
    uint32_t A = Values.back();
    Values.pop_back();
    uint32_t B = Values.back();
    Values.pop_back();
    Instruction Combine;
    Combine.Op = R.uniform() < 0.5 ? OpCode::Add : OpCode::LogSumExp;
    Combine.Dst = Next++;
    Combine.A = A;
    Combine.B = B;
    Push(Combine);
    Values.push_back(Next - 1);
  }
  Task.Stores.push_back(BufferAccess{1, 0});
  Instruction Store;
  Store.Op = OpCode::Store;
  Store.Dst = Values[0];
  Store.A = 0;
  Push(Store);
  Task.NumRegisters = Next;
  Program.Tasks = {Task};
  Program.Steps = {KernelStep{0, -1, -1}};
  return Program;
}

class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, bool>> {
};

TEST_P(EngineEquivalenceTest, VectorMatchesScalar) {
  auto [Width, UseVecLib, UseShuffle] = GetParam();
  const uint32_t NumFeatures = 5;
  const size_t NumSamples = 77; // not a multiple of any vector width
  KernelProgram Program = makeRandomProgram(99, NumFeatures);

  Rng R(1234);
  std::vector<double> Input(NumSamples * NumFeatures);
  for (double &X : Input)
    X = R.uniform(-2.0, 2.0);

  ExecutionConfig Scalar;
  CpuExecutor ScalarExec(Program, Scalar);
  std::vector<double> Expected(NumSamples);
  ScalarExec.execute(Input.data(), Expected.data(), NumSamples);

  ExecutionConfig Vector;
  Vector.VectorWidth = Width;
  Vector.UseVecLib = UseVecLib;
  Vector.UseShuffle = UseShuffle;
  CpuExecutor VectorExec(makeRandomProgram(99, NumFeatures), Vector);
  std::vector<double> Actual(NumSamples);
  VectorExec.execute(Input.data(), Actual.data(), NumSamples);

  for (size_t S = 0; S < NumSamples; ++S)
    EXPECT_NEAR(Actual[S], Expected[S],
                std::fabs(Expected[S]) * 1e-4 + 1e-4)
        << "sample " << S;
}

INSTANTIATE_TEST_SUITE_P(
    Widths, EngineEquivalenceTest,
    ::testing::Combine(::testing::Values(4u, 8u, 16u),
                       ::testing::Bool(), ::testing::Bool()));

} // namespace
