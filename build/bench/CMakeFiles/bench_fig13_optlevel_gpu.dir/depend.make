# Empty dependencies file for bench_fig13_optlevel_gpu.
# This may be replaced when dependencies are built.
