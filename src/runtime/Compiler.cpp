//===- Compiler.cpp - End-to-end SPNC compilation driver -----------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "runtime/Compiler.h"

#include "frontend/HiSPNTranslation.h"
#include "ir/Transforms.h"
#include "ir/Verifier.h"
#include "support/Timer.h"
#include "vm/ProgramBinary.h"

using namespace spnc;
using namespace spnc::ir;
using namespace spnc::runtime;

void CompiledKernel::execute(const double *Input, double *Output,
                             size_t NumSamples) {
  if (TheTarget == Target::CPU) {
    Cpu->execute(Input, Output, NumSamples);
    return;
  }
  Gpu->execute(Input, Output, NumSamples, &LastGpuStats);
}

const vm::KernelProgram &CompiledKernel::getProgram() const {
  return TheTarget == Target::CPU ? Cpu->getProgram()
                                  : Gpu->getProgram();
}

LogicalResult
spnc::runtime::saveCompiledKernel(const CompiledKernel &Kernel,
                                  const std::string &Path) {
  std::vector<uint8_t> Blob = vm::encodeProgram(Kernel.getProgram());
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return failure();
  size_t Written = std::fwrite(Blob.data(), 1, Blob.size(), File);
  std::fclose(File);
  return Written == Blob.size() ? success() : failure();
}

Expected<CompiledKernel> spnc::runtime::loadCompiledKernel(
    const std::string &Path, Target TheTarget,
    vm::ExecutionConfig Execution, gpusim::GpuDeviceConfig Device,
    unsigned GpuBlockSize) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeError("cannot open '" + Path + "'");
  std::vector<uint8_t> Blob;
  uint8_t Chunk[4096];
  size_t Read;
  while ((Read = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Blob.insert(Blob.end(), Chunk, Chunk + Read);
  std::fclose(File);
  Expected<vm::KernelProgram> Program = vm::decodeProgram(Blob);
  if (!Program)
    return Program.getError();
  CompiledKernel Result;
  Result.TheTarget = TheTarget;
  if (TheTarget == Target::GPU)
    Result.Gpu = std::make_shared<gpusim::GpuExecutor>(
        Program.takeValue(), Device, GpuBlockSize);
  else
    Result.Cpu = std::make_shared<vm::CpuExecutor>(Program.takeValue(),
                                                   Execution);
  return Result;
}

Expected<CompiledKernel>
spnc::runtime::compileModel(const spn::Model &TheModel,
                            const spn::QueryConfig &Config,
                            const CompilerOptions &Options,
                            CompileStats *Stats) {
  Timer TotalTimer;
  CompileStats LocalStats;
  CompileStats &S = Stats ? *Stats : LocalStats;
  S = CompileStats();

  Context Ctx;

  // Stage 1: translation into the HiSPN dialect (paper §IV-A2).
  Timer TranslationTimer;
  spn::QueryConfig Query = Config;
  if (Query.DataType == spn::ComputeType::Auto &&
      Options.Lowering.ComputeWidth != 0)
    Query.DataType = Options.Lowering.ComputeWidth == 64
                         ? spn::ComputeType::F64
                         : spn::ComputeType::F32;
  OwningOpRef<ModuleOp> Module = translateToHiSPN(Ctx, TheModel, Query);
  S.TranslationNs = TranslationTimer.elapsedNs();
  if (!Module)
    return makeError("translation to HiSPN failed (invalid model?)");

  // Stage 2: the target-independent IR pipeline (paper §IV-A).
  transforms::LoweringOptions Lowering = Options.Lowering;
  if (Query.DataType == spn::ComputeType::F32)
    Lowering.ComputeWidth = 32;
  else if (Query.DataType == spn::ComputeType::F64)
    Lowering.ComputeWidth = 64;

  PassManager PM(Ctx, Options.VerifyIR);
  if (Options.OptLevel >= 1)
    PM.addPass(createCanonicalizerPass()); // HiSPN-level early opts
  PM.addPass(transforms::createHiSPNToLoSPNLoweringPass(Lowering));
  if (Options.MaxPartitionSize > 0) {
    partition::PartitionOptions PartOptions = Options.Partitioning;
    PartOptions.MaxPartitionSize = Options.MaxPartitionSize;
    PM.addPass(transforms::createTaskPartitioningPass(PartOptions));
  }
  if (Options.OptLevel >= 1) {
    PM.addPass(createCanonicalizerPass());
    PM.addPass(createCSEPass());
  }
  transforms::BufferizationOptions BufOptions;
  BufOptions.AvoidCopies = Options.AvoidBufferCopies;
  PM.addPass(transforms::createBufferizationPass(BufOptions));
  if (Options.TheTarget == Target::GPU && Options.GpuTransferElimination)
    PM.addPass(transforms::createGpuBufferTransferEliminationPass());

  if (failed(PM.run(Module.get().getOperation())))
    return makeError("compilation pipeline failed");
  S.PassTimings = PM.getTimings();

  // Locate the kernel.
  lospn::KernelOp Kernel(nullptr);
  for (Operation *Op : Module.get().getBody())
    if (isa_op<lospn::KernelOp>(Op))
      Kernel = lospn::KernelOp(Op);
  if (!Kernel)
    return makeError("pipeline produced no kernel");

  // Stage 3: code generation (paper §IV-B / §IV-C).
  codegen::CodegenOptions CGOptions;
  CGOptions.OptLevel = Options.OptLevel;
  CGOptions.EmitSelectCascades = Options.TheTarget == Target::GPU;
  Expected<vm::KernelProgram> Program =
      codegen::emitKernelProgram(Kernel, CGOptions, &S.Codegen);
  if (!Program)
    return Program.getError();

  S.NumTasks = Program->Tasks.size();
  S.NumInstructions = Program->totalInstructions();

  CompiledKernel Result;
  Result.TheTarget = Options.TheTarget;
  if (Options.TheTarget == Target::GPU) {
    // Stage 4 (GPU): assemble and reload the device binary, the analog
    // of the PTX -> CUBIN translation that dominates GPU compile time in
    // the paper (§V-B1).
    Timer EncodeTimer;
    std::vector<uint8_t> Blob = vm::encodeProgram(*Program);
    Expected<vm::KernelProgram> Reloaded = vm::decodeProgram(Blob);
    S.BinaryEncodeNs = EncodeTimer.elapsedNs();
    if (!Reloaded)
      return makeError("device binary round-trip failed");
    Result.Gpu = std::make_shared<gpusim::GpuExecutor>(
        Reloaded.takeValue(), Options.Device, Options.GpuBlockSize);
  } else {
    Result.Cpu = std::make_shared<vm::CpuExecutor>(Program.takeValue(),
                                                   Options.Execution);
  }
  S.TotalNs = TotalTimer.elapsedNs();
  return Result;
}
