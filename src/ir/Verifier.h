//===- Verifier.h - Structural IR verification ------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verifier checks generic structural invariants (SSA dominance within
/// blocks, value visibility across region nesting, terminator placement)
/// and then invokes each registered op's own verifier.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_VERIFIER_H
#define SPNC_IR_VERIFIER_H

#include "support/LogicalResult.h"

#include <string>

namespace spnc {
namespace ir {

class Operation;

/// Verifies \p TopLevel and everything nested inside it. Emits diagnostics
/// through the op's context and returns failure if any check failed.
LogicalResult verify(Operation *TopLevel);

/// Like verify(Operation *), but diverts the run's diagnostics away from
/// the context's handler and stores the first one in \p FirstDiagnostic
/// (cleared on success). Used by the pipeline's verify-after-each
/// diagnostic stage to name the offending stage in its error. Not
/// thread-safe against concurrent diagnostics on the same context.
LogicalResult verify(Operation *TopLevel, std::string *FirstDiagnostic);

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_VERIFIER_H
