//===- Verifier.cpp - Structural IR verification ----------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Context.h"
#include "ir/Operation.h"
#include "ir/Printer.h"
#include "support/StringUtils.h"

#include <unordered_map>
#include <unordered_set>

using namespace spnc;
using namespace spnc::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(Context &Ctx) : Ctx(Ctx) {}

  LogicalResult verifyOp(Operation *Op) {
    LogicalResult Result = success();

    // Check operands: visibility and dominance.
    for (unsigned I = 0; I < Op->getNumOperands(); ++I) {
      Value Operand = Op->getOperand(I);
      if (!Operand) {
        error(Op, formatString("operand %u is null", I));
        Result = failure();
        continue;
      }
      if (failed(verifyOperandVisibility(Op, Operand, I)))
        Result = failure();
    }

    // Terminators must be the last operation of their block.
    if (Op->isTerminator() && Op->getBlock() &&
        Op->getBlock()->back() != Op) {
      error(Op, "terminator is not the last operation in its block");
      Result = failure();
    }

    // Run the op-specific verifier.
    if (const auto &OpVerifier = Op->getInfo()->Verifier)
      if (failed(OpVerifier(Op))) {
        error(Op, "operation verifier failed");
        Result = failure();
      }

    // Recurse into regions, numbering ops per block for dominance checks.
    for (unsigned R = 0; R < Op->getNumRegions(); ++R) {
      for (auto &TheBlock : Op->getRegion(R)) {
        unsigned Position = 0;
        for (Operation *Nested : *TheBlock) {
          OpPosition[Nested] = Position++;
          if (Nested->isTerminator() && TheBlock->back() != Nested) {
            error(Nested, "terminator is not the last operation");
            Result = failure();
          }
        }
        for (Operation *Nested : *TheBlock)
          if (failed(verifyOp(Nested)))
            Result = failure();
      }
    }
    return Result;
  }

private:
  /// Checks that \p Operand is visible at \p User: defined in the same
  /// block before the user, or in an ancestor block.
  LogicalResult verifyOperandVisibility(Operation *User, Value Operand,
                                        unsigned OperandIdx) {
    Block *DefBlock = Operand.isBlockArgument()
                          ? Operand.getOwnerBlock()
                          : Operand.getDefiningOp()->getBlock();
    // Walk up from the user's block looking for the defining block.
    for (Block *Current = User->getBlock(); Current;) {
      if (Current == DefBlock) {
        // Same-block op definitions must come before the user.
        if (Operation *Def = Operand.getDefiningOp();
            Def && Current == User->getBlock()) {
          auto DefIt = OpPosition.find(Def);
          auto UseIt = OpPosition.find(User);
          if (DefIt != OpPosition.end() && UseIt != OpPosition.end() &&
              DefIt->second >= UseIt->second) {
            error(User, formatString("operand %u used before its definition",
                                     OperandIdx));
            return failure();
          }
        }
        return success();
      }
      Operation *Parent = Current->getParentOp();
      Current = Parent ? Parent->getBlock() : nullptr;
    }
    error(User,
          formatString("operand %u defined outside any enclosing region",
                       OperandIdx));
    return failure();
  }

  void error(Operation *Op, const std::string &Message) {
    Ctx.emitError(formatString("'%s': %s", Op->getName().c_str(),
                               Message.c_str()));
  }

  Context &Ctx;
  std::unordered_map<Operation *, unsigned> OpPosition;
};

} // namespace

LogicalResult spnc::ir::verify(Operation *TopLevel) {
  VerifierImpl Impl(TopLevel->getContext());
  return Impl.verifyOp(TopLevel);
}

LogicalResult spnc::ir::verify(Operation *TopLevel,
                               std::string *FirstDiagnostic) {
  if (!FirstDiagnostic)
    return verify(TopLevel);
  // Capture the first diagnostic instead of letting it reach the
  // context's (stderr-printing) handler; every later diagnostic of the
  // same run is swallowed with it.
  Context &Ctx = TopLevel->getContext();
  std::string Captured;
  DiagnosticHandler Previous =
      Ctx.setDiagnosticHandler([&Captured](const std::string &Message) {
        if (Captured.empty())
          Captured = Message;
      });
  LogicalResult Result = verify(TopLevel);
  Ctx.setDiagnosticHandler(std::move(Previous));
  *FirstDiagnostic = std::move(Captured);
  return Result;
}
