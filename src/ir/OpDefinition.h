//===- OpDefinition.h - Typed operation views and registration -------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Infrastructure for typed operation classes: the `OpView` base (a thin
/// wrapper over `Operation *`, as in MLIR's Op classes), cast helpers and
/// the `registerOperation<OpTy>` hook that derives an OpInfo from the op
/// class's static members.
///
/// A concrete op class provides:
///   static const char *getOperationName();          // required
///   static void build(OpBuilder &, OperationState &, ...); // required
///   static constexpr bool kIsPure / kIsTerminator;  // required
///   LogicalResult verify();                         // optional
///   Attribute fold(std::span<const Attribute>);     // optional
///   static void getCanonicalizationPatterns(...);   // optional
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_OPDEFINITION_H
#define SPNC_IR_OPDEFINITION_H

#include "ir/Builder.h"
#include "ir/Operation.h"

#include <memory>
#include <vector>

namespace spnc {
namespace ir {

class RewritePattern;

/// Base for typed op views. A view may be null; check with operator bool.
class OpView {
public:
  OpView() = default;
  /*implicit*/ OpView(Operation *TheOp) : TheOp(TheOp) {}

  explicit operator bool() const { return TheOp != nullptr; }
  bool operator==(const OpView &Other) const { return TheOp == Other.TheOp; }

  Operation *getOperation() const { return TheOp; }
  Operation *operator->() const {
    assert(TheOp && "dereferencing a null op view");
    return TheOp;
  }
  Context &getContext() const { return TheOp->getContext(); }

protected:
  Operation *TheOp = nullptr;
};

/// True if \p Op is non-null and an instance of OpTy.
template <typename OpTy>
bool isa_op(Operation *Op) {
  return Op && Op->getName() == OpTy::getOperationName();
}

/// Casts \p Op to OpTy, asserting the name matches.
template <typename OpTy>
OpTy cast_op(Operation *Op) {
  assert(isa_op<OpTy>(Op) && "cast_op to incompatible operation");
  return OpTy(Op);
}

/// Returns a null view unless \p Op is an OpTy.
template <typename OpTy>
OpTy dyn_cast_op(Operation *Op) {
  return isa_op<OpTy>(Op) ? OpTy(Op) : OpTy(nullptr);
}

namespace detail {

template <typename OpTy>
concept HasVerify = requires(OpTy Op) {
  { Op.verify() } -> std::same_as<LogicalResult>;
};

template <typename OpTy>
concept HasFold = requires(OpTy Op, std::span<const Attribute> Operands) {
  { Op.fold(Operands) } -> std::same_as<Attribute>;
};

template <typename OpTy>
concept HasConstantFlag = requires {
  { OpTy::kIsConstant } -> std::convertible_to<bool>;
};

template <typename OpTy>
concept HasCanonicalization =
    requires(std::vector<std::unique_ptr<RewritePattern>> &Patterns,
             Context &Ctx) {
      OpTy::getCanonicalizationPatterns(Patterns, Ctx);
    };

} // namespace detail

/// Registers OpTy's OpInfo with \p Ctx, deriving hooks from the statically
/// detected members of OpTy.
template <typename OpTy>
void registerOperation(Context &Ctx) {
  OpInfo Info;
  Info.Name = OpTy::getOperationName();
  size_t Dot = Info.Name.find('.');
  Info.DialectName =
      Dot == std::string::npos ? "" : Info.Name.substr(0, Dot);
  Info.IsPure = OpTy::kIsPure;
  Info.IsTerminator = OpTy::kIsTerminator;
  if constexpr (detail::HasConstantFlag<OpTy>)
    Info.IsConstant = OpTy::kIsConstant;
  if constexpr (detail::HasVerify<OpTy>)
    Info.Verifier = [](Operation *Op) { return OpTy(Op).verify(); };
  if constexpr (detail::HasFold<OpTy>)
    Info.Folder = [](Operation *Op, std::span<const Attribute> Operands) {
      return OpTy(Op).fold(Operands);
    };
  if constexpr (detail::HasCanonicalization<OpTy>)
    Info.CanonicalizationPatterns =
        [](std::vector<std::unique_ptr<RewritePattern>> &Patterns,
           Context &TheCtx) {
          OpTy::getCanonicalizationPatterns(Patterns, TheCtx);
        };
  Ctx.registerOp(std::move(Info));
}

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_OPDEFINITION_H
