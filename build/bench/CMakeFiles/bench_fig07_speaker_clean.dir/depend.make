# Empty dependencies file for bench_fig07_speaker_clean.
# This may be replaced when dependencies are built.
