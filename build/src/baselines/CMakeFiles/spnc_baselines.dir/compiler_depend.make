# Empty compiler generated dependencies file for spnc_baselines.
# This may be replaced when dependencies are built.
