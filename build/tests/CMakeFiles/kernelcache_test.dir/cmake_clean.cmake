file(REMOVE_RECURSE
  "CMakeFiles/kernelcache_test.dir/kernelcache_test.cpp.o"
  "CMakeFiles/kernelcache_test.dir/kernelcache_test.cpp.o.d"
  "kernelcache_test"
  "kernelcache_test.pdb"
  "kernelcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
