file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_cpu_config.dir/bench_fig06_cpu_config.cpp.o"
  "CMakeFiles/bench_fig06_cpu_config.dir/bench_fig06_cpu_config.cpp.o.d"
  "bench_fig06_cpu_config"
  "bench_fig06_cpu_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_cpu_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
