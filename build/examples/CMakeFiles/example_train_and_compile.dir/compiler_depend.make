# Empty compiler generated dependencies file for example_train_and_compile.
# This may be replaced when dependencies are built.
