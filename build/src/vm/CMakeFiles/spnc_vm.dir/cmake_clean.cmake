file(REMOVE_RECURSE
  "CMakeFiles/spnc_vm.dir/Executor.cpp.o"
  "CMakeFiles/spnc_vm.dir/Executor.cpp.o.d"
  "CMakeFiles/spnc_vm.dir/ProgramBinary.cpp.o"
  "CMakeFiles/spnc_vm.dir/ProgramBinary.cpp.o.d"
  "libspnc_vm.a"
  "libspnc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
