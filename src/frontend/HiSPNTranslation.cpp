//===- HiSPNTranslation.cpp - SPN model to HiSPN dialect translation ----------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "frontend/HiSPNTranslation.h"

#include "dialects/hispn/HiSPNOps.h"
#include "support/Compiler.h"

#include <unordered_map>

using namespace spnc;
using namespace spnc::ir;
using namespace spnc::spn;

OwningOpRef<ModuleOp>
spnc::spn::translateToHiSPN(Context &Ctx, const Model &TheModel,
                            const QueryConfig &Config, bool Parameterize) {
  hispn::registerHiSPNDialect(Ctx);

  std::string Message;
  if (!TheModel.validate(&Message)) {
    Ctx.emitError("invalid SPN model: " + Message);
    return {};
  }

  ModuleOp Module = ModuleOp::create(Ctx);
  OpBuilder Builder = OpBuilder::atBlockEnd(Ctx, &Module.getBody());

  // Features arrive as f64 evidence values (SPFlow uses float64 numpy
  // arrays); the abstract probability type defers the compute type.
  // MPE and sampling always support marginalized (NaN) evidence: that
  // is how features are marked as to-be-completed (docs/queries.md).
  Type InputType = FloatType::getF64(Ctx);
  unsigned NumFeatures = TheModel.getNumFeatures();
  bool Marginal = Config.SupportMarginal ||
                  Config.Kind == QueryKind::Marginal ||
                  Config.Kind == QueryKind::Mpe ||
                  Config.Kind == QueryKind::Sample;
  Operation *QueryOp = nullptr;
  switch (Config.Kind) {
  case QueryKind::Joint:
  case QueryKind::Marginal:
    QueryOp = Builder
                  .create<hispn::JointQueryOp>(NumFeatures, InputType,
                                               Config.BatchSize, Marginal,
                                               Config.LogSpace)
                  .getOperation();
    break;
  case QueryKind::Mpe:
    QueryOp = Builder
                  .create<hispn::MpeQueryOp>(NumFeatures, InputType,
                                             Config.BatchSize, Marginal,
                                             Config.LogSpace)
                  .getOperation();
    break;
  case QueryKind::Sample:
    QueryOp = Builder
                  .create<hispn::SampleQueryOp>(NumFeatures, InputType,
                                                Config.BatchSize, Marginal,
                                                Config.LogSpace)
                  .getOperation();
    break;
  }
  Block &QueryBlock = QueryOp->getRegion(0).emplaceBlock();
  Builder.setInsertionPointToEnd(&QueryBlock);

  auto Graph =
      Builder.create<hispn::GraphOp>(TheModel.getNumFeatures());
  Block &GraphBlock = Graph->getRegion(0).emplaceBlock();
  for (unsigned I = 0; I < TheModel.getNumFeatures(); ++I)
    GraphBlock.addArgument(InputType);
  Builder.setInsertionPointToEnd(&GraphBlock);

  // Children-first translation; shared nodes map to one op result.
  // NextParam tracks the canonical parameter index of merged-model
  // compilation; since this loop walks the same topological order as
  // merge::extractParams, assigning bases here and advancing by each
  // node's parameter count reproduces the extraction order exactly.
  std::unordered_map<const Node *, Value> Translated;
  int64_t NextParam = 0;
  auto TagParams = [&](Operation *Op, int64_t Count) {
    if (!Parameterize)
      return;
    Op->setAttr("param", IntAttr::get(Ctx, NextParam));
    NextParam += Count;
  };
  for (Node *Current : TheModel.topologicalOrder()) {
    Value Result;
    switch (Current->getKind()) {
    case NodeKind::Sum: {
      const auto *Sum = cast<SumNode>(Current);
      std::vector<Value> Operands;
      Operands.reserve(Sum->getNumChildren());
      for (Node *Child : Sum->getChildren())
        Operands.push_back(Translated.at(Child));
      Result = Builder
                   .create<hispn::SumOp>(
                       std::span<const Value>(Operands), Sum->getWeights())
                   ->getResult(0);
      TagParams(Result.getDefiningOp(),
                static_cast<int64_t>(Sum->getNumChildren()));
      break;
    }
    case NodeKind::Product: {
      const auto *Product = cast<ProductNode>(Current);
      std::vector<Value> Operands;
      Operands.reserve(Product->getNumChildren());
      for (Node *Child : Product->getChildren())
        Operands.push_back(Translated.at(Child));
      Result = Builder
                   .create<hispn::ProductOp>(
                       std::span<const Value>(Operands))
                   ->getResult(0);
      break;
    }
    case NodeKind::Histogram: {
      const auto *Leaf = cast<HistogramLeaf>(Current);
      Result = Builder
                   .create<hispn::HistogramOp>(
                       GraphBlock.getArgument(Leaf->getFeatureIndex()),
                       Leaf->getFlatBuckets())
                   ->getResult(0);
      TagParams(Result.getDefiningOp(),
                static_cast<int64_t>(Leaf->getBuckets().size()));
      break;
    }
    case NodeKind::Categorical: {
      const auto *Leaf = cast<CategoricalLeaf>(Current);
      Result = Builder
                   .create<hispn::CategoricalOp>(
                       GraphBlock.getArgument(Leaf->getFeatureIndex()),
                       Leaf->getProbabilities())
                   ->getResult(0);
      TagParams(Result.getDefiningOp(),
                static_cast<int64_t>(Leaf->getProbabilities().size()));
      break;
    }
    case NodeKind::Gaussian: {
      const auto *Leaf = cast<GaussianLeaf>(Current);
      Result = Builder
                   .create<hispn::GaussianOp>(
                       GraphBlock.getArgument(Leaf->getFeatureIndex()),
                       Leaf->getMean(), Leaf->getStdDev())
                   ->getResult(0);
      TagParams(Result.getDefiningOp(), 2);
      break;
    }
    }
    Translated.emplace(Current, Result);
  }

  Builder.create<hispn::RootOp>(Translated.at(TheModel.getRoot()));
  return OwningOpRef<ModuleOp>(Module);
}
