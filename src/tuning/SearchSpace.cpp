//===- SearchSpace.cpp - Typed knob space for the autotuner -------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "tuning/SearchSpace.h"

#include <cassert>
#include <cstdio>

using namespace spnc;
using namespace spnc::tuning;

std::string KnobValue::text() const {
  switch (TheKind) {
  case Kind::UInt:
    return std::to_string(UInt);
  case Kind::Real: {
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%g", Real);
    return Buffer;
  }
  case Kind::Text:
    return Text;
  }
  return std::string();
}

bool spnc::tuning::applyKnobByName(TunedConfig &Config,
                                   const std::string &Name,
                                   const KnobValue &Value) {
  if (Name == "opt-level") {
    Config.Compile.OptLevel = static_cast<unsigned>(Value.getUInt());
    return true;
  }
  if (Name == "vector-width") {
    Config.Compile.Execution.VectorWidth =
        static_cast<unsigned>(Value.getUInt());
    return true;
  }
  if (Name == "partition-size") {
    Config.Compile.MaxPartitionSize =
        static_cast<uint32_t>(Value.getUInt());
    return true;
  }
  if (Name == "partition-slack") {
    Config.Compile.Partitioning.Slack = Value.getReal();
    return true;
  }
  if (Name == "gpu-block-size") {
    Config.Compile.GpuBlockSize = static_cast<unsigned>(Value.getUInt());
    return true;
  }
  if (Name == "backend") {
    Config.BackendName = Value.getText();
    return true;
  }
  if (Name == "max-batch-samples") {
    Config.Server.MaxBatchSamples =
        static_cast<size_t>(Value.getUInt());
    return true;
  }
  if (Name == "max-queue-delay-us") {
    Config.Server.MaxQueueDelayUs = Value.getUInt();
    return true;
  }
  if (Name == "num-workers") {
    Config.Server.NumWorkers = static_cast<unsigned>(Value.getUInt());
    return true;
  }
  if (Name == "num-shards") {
    Config.Server.NumShards = static_cast<unsigned>(Value.getUInt());
    return true;
  }
  if (Name == "priority-weight") {
    // Interactive:bulk dispatch ratio N:1 — one knob steers both
    // ServerConfig weights.
    Config.Server.InteractiveWeight =
        static_cast<unsigned>(Value.getUInt());
    Config.Server.BulkWeight = 1;
    return true;
  }
  return false;
}

Knob::Knob(std::string Name, std::vector<KnobValue> Values,
           size_t DefaultIndex)
    : Name(std::move(Name)), Values(std::move(Values)),
      DefaultIndex(DefaultIndex) {
  assert(!this->Values.empty() && "knob needs at least one value");
  assert(DefaultIndex < this->Values.size() &&
         "default index out of range");
}

void Knob::apply(TunedConfig &Config, size_t ValueIndex) const {
  assert(ValueIndex < Values.size() && "value index out of range");
  bool Known = applyKnobByName(Config, Name, Values[ValueIndex]);
  assert(Known && "search-space knob has no applyKnobByName mapping");
  (void)Known;
}

uint64_t SearchSpace::getNumCandidates() const {
  uint64_t Product = 1;
  for (const Knob &TheKnob : Knobs)
    Product *= TheKnob.getValues().size();
  return Product;
}

SearchSpace::Candidate SearchSpace::defaultCandidate() const {
  Candidate Default;
  Default.reserve(Knobs.size());
  for (const Knob &TheKnob : Knobs)
    Default.push_back(TheKnob.getDefaultIndex());
  return Default;
}

SearchSpace::Candidate SearchSpace::randomCandidate(Rng &TheRng) const {
  Candidate Random;
  Random.reserve(Knobs.size());
  for (const Knob &TheKnob : Knobs)
    Random.push_back(static_cast<size_t>(
        TheRng.uniformInt(TheKnob.getValues().size())));
  return Random;
}

TunedConfig SearchSpace::materialize(const Candidate &TheCandidate,
                                     const TunedConfig &Base) const {
  assert(TheCandidate.size() == Knobs.size() &&
         "candidate does not match the space");
  TunedConfig Config = Base;
  for (size_t I = 0; I < Knobs.size(); ++I)
    Knobs[I].apply(Config, TheCandidate[I]);
  return Config;
}

std::string SearchSpace::describe(const Candidate &TheCandidate) const {
  assert(TheCandidate.size() == Knobs.size() &&
         "candidate does not match the space");
  std::string Text;
  for (size_t I = 0; I < Knobs.size(); ++I) {
    if (!Text.empty())
      Text += ' ';
    Text += Knobs[I].getName();
    Text += '=';
    Text += Knobs[I].getValues()[TheCandidate[I]].text();
  }
  return Text;
}

SearchSpace
SearchSpace::makeDefault(const DefaultSpaceOptions &Options) {
  auto UInts = [](std::initializer_list<uint64_t> Values) {
    std::vector<KnobValue> List;
    for (uint64_t V : Values)
      List.push_back(KnobValue::ofUInt(V));
    return List;
  };
  auto Reals = [](std::initializer_list<double> Values) {
    std::vector<KnobValue> List;
    for (double V : Values)
      List.push_back(KnobValue::ofReal(V));
    return List;
  };

  SearchSpace Space;
  // Knob order matters to coordinate descent: early knobs get swept
  // first, so small budgets explore them and large budgets converge
  // faster. The serving knobs lead — under micro-batching they are the
  // highest-leverage dimension, and sweeping them is cheap (the compile
  // config is unchanged, so every candidate hits the kernel cache).
  // Compile knobs follow; each fresh value pays a compilation. Defaults
  // mirror the ServerConfig/CompilerOptions defaults so the
  // all-defaults candidate measures the out-of-the-box configuration
  // (indices below reference the value lists).
  Space.addKnob(Knob("max-batch-samples",
                     UInts({32, 64, 128, 256, 512}), /*Default=*/3));
  Space.addKnob(Knob("max-queue-delay-us",
                     UInts({100, 500, 1000, 5000}), /*Default=*/2));
  Space.addKnob(Knob("num-workers", UInts({1, 2, 4, 8}), /*Default=*/1));
  Space.addKnob(Knob("num-shards", UInts({1, 2, 4}), /*Default=*/0));
  // Interactive:bulk dispatch credit ratio N:1; 4 is the ServerConfig
  // default (InteractiveWeight=4, BulkWeight=1).
  Space.addKnob(
      Knob("priority-weight", UInts({1, 2, 4, 8}), /*Default=*/2));

  Space.addKnob(
      Knob("vector-width", UInts({1, 4, 8, 16}), /*Default=*/0));
  Space.addKnob(Knob("opt-level", UInts({0, 1, 2, 3}), /*Default=*/1));
  // 0 disables partitioning (the CompilerOptions default); the non-zero
  // values bracket the sweet spot of the paper's Figs. 10/12 sweeps.
  Space.addKnob(Knob("partition-size", UInts({0, 2000, 10000, 50000}),
                     /*Default=*/0));
  Space.addKnob(Knob("partition-slack", Reals({0.01, 0.05, 0.1}),
                     /*Default=*/0));
  if (Options.Target == runtime::Target::GPU)
    Space.addKnob(Knob("gpu-block-size", UInts({32, 64, 128, 256}),
                       /*Default=*/1));

  std::vector<KnobValue> Backends;
  for (const std::string &Name : Options.Backends)
    Backends.push_back(KnobValue::ofText(Name));
  if (Backends.empty())
    Backends.push_back(KnobValue::ofText("vm"));
  Space.addKnob(Knob("backend", std::move(Backends), /*Default=*/0));
  return Space;
}
