//===- Printer.cpp - Generic textual IR printing ----------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Operation.h"
#include "support/Compiler.h"
#include "support/RawOStream.h"
#include "support/StringUtils.h"

#include <cmath>
#include <unordered_map>

using namespace spnc;
using namespace spnc::ir;

//===----------------------------------------------------------------------===//
// Type printing
//===----------------------------------------------------------------------===//

static void printShape(const std::vector<int64_t> &Shape, RawOStream &OS) {
  for (int64_t Dim : Shape) {
    if (Dim == TypeStorage::kDynamic)
      OS << '?';
    else
      OS << Dim;
    OS << 'x';
  }
}

void Type::print(RawOStream &OS) const {
  if (!Impl) {
    OS << "<<null type>>";
    return;
  }
  switch (Impl->Kind) {
  case TypeKind::None:
    OS << "none";
    return;
  case TypeKind::Index:
    OS << "index";
    return;
  case TypeKind::Integer:
    OS << 'i' << Impl->Width;
    return;
  case TypeKind::Float:
    OS << 'f' << Impl->Width;
    return;
  case TypeKind::Probability:
    OS << "!hi_spn.prob";
    return;
  case TypeKind::Log:
    OS << "!lo_spn.log<";
    Type(Impl->Element).print(OS);
    OS << '>';
    return;
  case TypeKind::Tensor:
    OS << "tensor<";
    printShape(Impl->Shape, OS);
    Type(Impl->Element).print(OS);
    OS << '>';
    return;
  case TypeKind::MemRef:
    OS << "memref<";
    printShape(Impl->Shape, OS);
    Type(Impl->Element).print(OS);
    OS << '>';
    return;
  case TypeKind::Vector:
    OS << "vector<" << Impl->Width << 'x';
    Type(Impl->Element).print(OS);
    OS << '>';
    return;
  }
  spnc_unreachable("unhandled type kind");
}

//===----------------------------------------------------------------------===//
// Attribute printing
//===----------------------------------------------------------------------===//

static void printDouble(double Value, RawOStream &OS) {
  if (std::isnan(Value)) {
    OS << "nan";
    return;
  }
  if (std::isinf(Value)) {
    OS << (Value < 0 ? "-inf" : "inf");
    return;
  }
  std::string Text = formatString("%.17g", Value);
  // Guarantee the token reparses as a float, not an integer.
  if (Text.find_first_of(".e") == std::string::npos)
    Text += ".0";
  OS << Text;
}

void Attribute::print(RawOStream &OS) const {
  if (!Impl) {
    OS << "<<null attribute>>";
    return;
  }
  switch (Impl->Kind) {
  case AttrKind::Unit:
    OS << "unit";
    return;
  case AttrKind::Bool:
    OS << (Impl->BoolValue ? "true" : "false");
    return;
  case AttrKind::Int:
    OS << Impl->IntValue;
    return;
  case AttrKind::Float:
    printDouble(Impl->FloatValue, OS);
    return;
  case AttrKind::String: {
    OS << '"';
    for (char C : Impl->StringValue) {
      if (C == '"' || C == '\\')
        OS << '\\';
      OS << C;
    }
    OS << '"';
    return;
  }
  case AttrKind::Type:
    Type(Impl->TypeValue).print(OS);
    return;
  case AttrKind::Array: {
    OS << '[';
    bool First = true;
    for (const AttrStorage *Element : Impl->Elements) {
      if (!First)
        OS << ", ";
      First = false;
      Attribute(Element).print(OS);
    }
    OS << ']';
    return;
  }
  case AttrKind::DenseF64: {
    OS << "dense<[";
    bool First = true;
    for (double Value : Impl->Doubles) {
      if (!First)
        OS << ", ";
      First = false;
      printDouble(Value, OS);
    }
    OS << "]>";
    return;
  }
  }
  spnc_unreachable("unhandled attribute kind");
}

//===----------------------------------------------------------------------===//
// Operation printing
//===----------------------------------------------------------------------===//

namespace {

/// Stateful printer assigning stable SSA names while walking the IR.
class AsmPrinter {
public:
  explicit AsmPrinter(RawOStream &OS) : OS(OS) {}

  void printOp(Operation *Op, unsigned Indent) {
    OS.indent(Indent);
    if (Op->getNumResults() > 0) {
      for (unsigned I = 0; I < Op->getNumResults(); ++I) {
        if (I > 0)
          OS << ", ";
        OS << nameOf(Op->getResult(I));
      }
      OS << " = ";
    }
    OS << '"' << Op->getName() << "\"(";
    for (unsigned I = 0; I < Op->getNumOperands(); ++I) {
      if (I > 0)
        OS << ", ";
      OS << nameOf(Op->getOperand(I));
    }
    OS << ')';

    if (Op->getNumRegions() > 0) {
      OS << " (";
      for (unsigned I = 0; I < Op->getNumRegions(); ++I) {
        if (I > 0)
          OS << ", ";
        printRegion(Op->getRegion(I), Indent);
      }
      OS << ')';
    }

    if (!Op->getAttrs().empty()) {
      OS << " {";
      bool First = true;
      for (const NamedAttribute &Entry : Op->getAttrs()) {
        if (!First)
          OS << ", ";
        First = false;
        OS << Entry.Name << " = ";
        Entry.Value.print(OS);
      }
      OS << '}';
    }

    OS << " : (";
    for (unsigned I = 0; I < Op->getNumOperands(); ++I) {
      if (I > 0)
        OS << ", ";
      Op->getOperand(I).getType().print(OS);
    }
    OS << ") -> ";
    if (Op->getNumResults() == 1) {
      Op->getResult(0).getType().print(OS);
    } else {
      OS << '(';
      for (unsigned I = 0; I < Op->getNumResults(); ++I) {
        if (I > 0)
          OS << ", ";
        Op->getResult(I).getType().print(OS);
      }
      OS << ')';
    }
    OS << '\n';
  }

private:
  void printRegion(Region &TheRegion, unsigned Indent) {
    OS << "{\n";
    for (auto &TheBlock : TheRegion) {
      if (TheBlock->getNumArguments() > 0) {
        OS.indent(Indent);
        OS << "^bb(";
        for (unsigned I = 0; I < TheBlock->getNumArguments(); ++I) {
          if (I > 0)
            OS << ", ";
          Value Arg = TheBlock->getArgument(I);
          OS << nameOf(Arg) << ": ";
          Arg.getType().print(OS);
        }
        OS << "):\n";
      }
      for (Operation *Op : *TheBlock)
        printOp(Op, Indent + 2);
    }
    OS.indent(Indent);
    OS << '}';
  }

  const std::string &nameOf(Value V) {
    auto It = Names.find(V.getImpl());
    if (It != Names.end())
      return It->second;
    std::string Name;
    if (V.isBlockArgument())
      Name = formatString("%%arg%u", NextArgId++);
    else
      Name = formatString("%%%u", NextResultId++);
    return Names.emplace(V.getImpl(), std::move(Name)).first->second;
  }

  RawOStream &OS;
  std::unordered_map<ValueImpl *, std::string> Names;
  unsigned NextResultId = 0;
  unsigned NextArgId = 0;
};

} // namespace

void spnc::ir::printOperation(Operation *Op, RawOStream &OS) {
  AsmPrinter Printer(OS);
  Printer.printOp(Op, 0);
}

std::string spnc::ir::opToString(Operation *Op) {
  std::string Result;
  StringOStream OS(Result);
  printOperation(Op, OS);
  return Result;
}
