
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/BuiltinOps.cpp" "src/ir/CMakeFiles/spnc_ir.dir/BuiltinOps.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/BuiltinOps.cpp.o.d"
  "/root/repo/src/ir/Cloning.cpp" "src/ir/CMakeFiles/spnc_ir.dir/Cloning.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/Cloning.cpp.o.d"
  "/root/repo/src/ir/Context.cpp" "src/ir/CMakeFiles/spnc_ir.dir/Context.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/Context.cpp.o.d"
  "/root/repo/src/ir/Operation.cpp" "src/ir/CMakeFiles/spnc_ir.dir/Operation.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/Operation.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/ir/CMakeFiles/spnc_ir.dir/Parser.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/Parser.cpp.o.d"
  "/root/repo/src/ir/PassManager.cpp" "src/ir/CMakeFiles/spnc_ir.dir/PassManager.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/PassManager.cpp.o.d"
  "/root/repo/src/ir/PatternMatch.cpp" "src/ir/CMakeFiles/spnc_ir.dir/PatternMatch.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/PatternMatch.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/ir/CMakeFiles/spnc_ir.dir/Printer.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/Printer.cpp.o.d"
  "/root/repo/src/ir/Transforms.cpp" "src/ir/CMakeFiles/spnc_ir.dir/Transforms.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/Transforms.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/spnc_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/spnc_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/spnc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
