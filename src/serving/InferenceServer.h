//===- InferenceServer.h - In-process serving with dynamic micro-batching -----===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process serving layer that bridges from "caller already holds a
/// full batch" (`ExecutionEngine::execute`) to the serving regime the
/// paper's speedups assume: its CPU and GPU gains come from amortizing
/// per-kernel overhead across large batches (§IV-B batch chunking, §IV-C
/// device-buffer reuse), but online traffic arrives one or a few samples
/// per request. The `InferenceServer` closes that gap:
///
///  * clients submit single- or few-sample requests (per registered
///    model) from any number of threads and get a `Future` back;
///  * a batcher thread coalesces queued requests into micro-batches of up
///    to `MaxBatchSamples` samples, or dispatches earlier once the oldest
///    request has waited `MaxQueueDelayUs`;
///  * a worker pool executes the batches on engines obtained through the
///    shared `runtime::KernelCache` (several models are served
///    concurrently) and scatters the results back to the right futures;
///  * admission control bounds the outstanding work: beyond
///    `MaxQueueDepth` samples, submits are rejected or block per policy
///    (backpressure is counted either way);
///  * per-request deadlines: a request that expires in the queue
///    completes with `RequestStatus::TimedOut` instead of occupying a
///    batch slot;
///  * `shutdown()` drains in-flight work — every accepted request is
///    completed before the server stops.
///
/// `getStats()` snapshots throughput, a batch-size histogram, queue depth
/// and p50/p95/p99 latency; `writeServerStatsReport` (ServingReports.h)
/// emits the snapshot through the json::Writer report machinery.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SERVING_INFERENCESERVER_H
#define SPNC_SERVING_INFERENCESERVER_H

#include "runtime/KernelCache.h"
#include "support/Future.h"
#include "support/Histogram.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace spnc {

class ThreadPool;

namespace serving {

/// How a request completed.
enum class RequestStatus : uint8_t {
  /// Executed; `LogLikelihoods` holds one value per submitted sample.
  Ok,
  /// Refused at admission (queue full under the Reject policy, or the
  /// model name is unknown).
  Rejected,
  /// The deadline expired before the request reached an engine.
  TimedOut,
  /// The server was shutting down when the request arrived.
  ShutDown,
  /// The engine refused the batch (e.g. it cannot serve the model's
  /// query kind).
  Failed,
};

/// Human-readable status name ("ok", "rejected", ...).
const char *requestStatusName(RequestStatus Status);

/// What a submitted request resolves to.
struct InferenceResult {
  RequestStatus Status = RequestStatus::Ok;
  /// One (log-)probability per submitted sample; empty unless Ok.
  /// Absent for sampling queries (a sample has no single probability).
  std::vector<double> LogLikelihoods;
  /// Completed rows, row-major [sample][feature]; filled only for MPE
  /// (the argmax assignments) and sampling (the drawn samples) queries.
  std::vector<double> Rows;
  /// Submit-to-completion wall clock.
  uint64_t LatencyNs = 0;
  /// Samples in the micro-batch this request rode in (Ok only).
  uint64_t BatchSamples = 0;
  /// Failure detail for non-Ok statuses.
  std::string Message;
};

/// The future a submit() returns.
using ResultFuture = Future<InferenceResult>;

/// Server tuning knobs. The defaults suit a latency-tolerant
/// throughput-oriented deployment; latency-sensitive callers shrink
/// MaxQueueDelayUs.
struct ServerConfig {
  /// Micro-batch sample cap. A single request larger than the cap is
  /// dispatched as its own (oversized) batch.
  size_t MaxBatchSamples = 256;
  /// Longest time the oldest queued request waits for co-batching before
  /// the batcher dispatches what it has.
  uint64_t MaxQueueDelayUs = 1000;
  /// Bound on outstanding samples (queued + executing); 0 = unbounded.
  size_t MaxQueueDepth = 4096;
  /// What happens to a submit that would exceed MaxQueueDepth.
  enum class AdmissionPolicy : uint8_t {
    /// Complete the future immediately with RequestStatus::Rejected.
    Reject,
    /// Block the submitting thread until space frees up (or shutdown).
    Block,
  };
  AdmissionPolicy Admission = AdmissionPolicy::Reject;
  /// Engines executing dispatched batches concurrently.
  unsigned NumWorkers = 2;
  /// Deadline applied to submits that pass DeadlineUs = 0; 0 = none.
  uint64_t DefaultDeadlineUs = 0;
  /// Base seed for sampling-query models. Each dispatched batch draws
  /// with SampleSeed decorrelated by a server-wide batch counter, so
  /// a server run is reproducible given the same arrival order but no
  /// two batches reuse a stream.
  uint64_t SampleSeed = 0;
};

/// A consistent snapshot of the server's observability counters.
struct ServerStats {
  uint64_t SubmittedRequests = 0;
  uint64_t SubmittedSamples = 0;
  uint64_t CompletedRequests = 0;
  uint64_t CompletedSamples = 0;
  /// Admission rejections (the backpressure counter under Reject).
  uint64_t RejectedRequests = 0;
  /// Submits that had to wait for queue space (backpressure under
  /// Block).
  uint64_t BlockedSubmits = 0;
  /// Requests completed with an expired deadline.
  uint64_t TimedOutRequests = 0;
  /// Micro-batches dispatched to the worker pool.
  uint64_t BatchesDispatched = 0;
  /// Outstanding samples (queued + executing) at snapshot time.
  size_t QueueDepth = 0;
  size_t PeakQueueDepth = 0;
  /// Total engine wall clock spent executing batches.
  uint64_t ExecutionNs = 0;
  /// Wall clock since server construction.
  uint64_t ElapsedNs = 0;
  /// Samples per dispatched micro-batch.
  Histogram BatchSizes;
  /// Submit-to-completion latency of Ok requests, in nanoseconds.
  Histogram LatencyNs;

  double meanBatchSize() const { return BatchSizes.mean(); }
  double throughputSamplesPerSec() const {
    return ElapsedNs
               ? static_cast<double>(CompletedSamples) * 1e9 /
                     static_cast<double>(ElapsedNs)
               : 0.0;
  }
};

/// The in-process inference server. All public members are thread-safe;
/// submit() is designed to be called from many client threads
/// concurrently.
class InferenceServer {
public:
  /// Creates the server. \p Cache, when non-null, is the (caller-owned,
  /// shared) kernel cache engines are acquired through — it must outlive
  /// the server; when null the server owns a private in-memory cache.
  explicit InferenceServer(ServerConfig Config = {},
                           runtime::KernelCache *Cache = nullptr);

  /// Shuts down (drains) if the caller has not already.
  ~InferenceServer();

  InferenceServer(const InferenceServer &) = delete;
  InferenceServer &operator=(const InferenceServer &) = delete;

  /// Registers \p Model under \p Name, acquiring its engine through the
  /// kernel cache (compiling at most once per cache key). Fails on
  /// duplicate names, invalid options, or compilation failure. The model
  /// is not retained — only the compiled engine is.
  std::optional<Error> addModel(const std::string &Name,
                                const spn::Model &Model,
                                const spn::QueryConfig &Query,
                                const runtime::CompilerOptions &Options);

  /// True when a model named \p Name is registered.
  bool hasModel(const std::string &Name) const;

  /// Feature count of the registered model, 0 when unknown.
  unsigned getNumFeatures(const std::string &Name) const;

  /// Submits \p NumSamples samples (row-major [sample][feature], copied)
  /// against model \p Name. \p DeadlineUs bounds the time the request
  /// may spend queued (0 uses ServerConfig::DefaultDeadlineUs). The
  /// returned future always completes — with Ok results, or with a
  /// Rejected/TimedOut/ShutDown status per the policies above.
  ResultFuture submit(const std::string &Name, const double *Samples,
                      size_t NumSamples, uint64_t DeadlineUs = 0);

  /// Stops admission, drains every queued and in-flight request (each
  /// future completes), and joins the batcher and worker threads.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Consistent snapshot of the observability counters.
  ServerStats getStats() const;

  const ServerConfig &getConfig() const { return Config; }

  /// The cache engines are acquired through (shared or owned).
  runtime::KernelCache &getKernelCache() { return *Cache; }

private:
  using Clock = std::chrono::steady_clock;

  /// One registered model.
  struct ModelEntry;
  /// One queued request.
  struct Request;
  /// A formed micro-batch on its way to a worker.
  struct Batch;

  void batcherLoop();
  /// Pops a dispatchable micro-batch for \p Model. Caller holds Mutex.
  Batch formBatch(ModelEntry &Model, Clock::time_point Now);
  /// Executes \p TheBatch on its model's engine and completes the
  /// futures. Runs on a worker thread, no lock held.
  void runBatch(Batch TheBatch);
  /// Completes queued requests whose deadline has passed. Caller holds
  /// Mutex; the promises are completed after the caller releases it.
  void collectExpired(Clock::time_point Now,
                      std::vector<Request> &Expired);
  /// Completes \p TheRequest with a non-Ok \p Status. No lock required.
  static void failRequest(Request &TheRequest, RequestStatus Status,
                          std::string Message);

  ServerConfig Config;
  /// Owned cache when the caller did not supply one.
  std::unique_ptr<runtime::KernelCache> OwnedCache;
  runtime::KernelCache *Cache;

  mutable std::mutex Mutex;
  /// Wakes the batcher on new work or shutdown.
  std::condition_variable WorkAvailable;
  /// Wakes blocked submitters when queue space frees up.
  std::condition_variable SpaceAvailable;

  std::unordered_map<std::string, std::unique_ptr<ModelEntry>> Models;
  /// Registration order, for fair round-robin batch formation.
  std::vector<ModelEntry *> ModelOrder;

  /// Admission-counted samples: queued plus executing.
  size_t OutstandingSamples = 0;
  /// Server-wide counter decorrelating the sampling seed per batch.
  std::atomic<uint64_t> SampleBatchCounter{0};
  /// Round-robin cursor into ModelOrder for fair batch formation.
  size_t NextModel = 0;
  bool ShuttingDown = false;
  bool ShutdownComplete = false;
  /// Serializes concurrent shutdown() calls (user thread + destructor).
  std::mutex ShutdownMutex;

  ServerStats Stats;
  Clock::time_point StartTime;

  std::unique_ptr<ThreadPool> Workers;
  std::thread Batcher;
};

} // namespace serving
} // namespace spnc

#endif // SPNC_SERVING_INFERENCESERVER_H
