//===- KernelCache.h - Thread-safe compiled-kernel cache ----------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe cache of compiled kernels for serving scenarios that mix
/// repeated queries over a fixed set of models (the compile-once/run-many
/// regime the paper's §V-B compile-time measurements motivate). Kernels
/// are keyed by (model structure+parameters, query configuration,
/// pipeline configuration); a second request with the same key returns
/// the already-constructed ExecutionEngine instead of recompiling.
///
/// Optionally the cache is backed by a directory of `.spnk` files
/// (saveCompiledKernel / loadCompiledKernel): a miss first tries
/// `<dir>/<key>.spnk` before compiling, and a fresh compile persists its
/// program there. Corrupted or unreadable entries are never an error —
/// the kernel is recompiled and the entry rewritten.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_RUNTIME_KERNELCACHE_H
#define SPNC_RUNTIME_KERNELCACHE_H

#include "runtime/Compiler.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace spnc {
namespace runtime {

/// Thread-safe map from (model, query, pipeline config) to a shared
/// ExecutionEngine. All public members may be called concurrently.
class KernelCache {
public:
  /// Cache observability counters (a snapshot; taken under the lock).
  struct Statistics {
    /// Requests answered from the in-memory map.
    uint64_t Hits = 0;
    /// Requests that required compilation or a disk load.
    uint64_t Misses = 0;
    /// Misses answered by loading a `.spnk` from the cache directory.
    uint64_t DiskHits = 0;
    /// Misses that ran the compilation pipeline (including recoveries
    /// from corrupted disk entries).
    uint64_t Recompiles = 0;
  };

  /// An in-memory-only cache.
  KernelCache() = default;

  /// A disk-backed cache persisting `.spnk` files under \p Directory
  /// (created on first write if missing). Pass an empty string for an
  /// in-memory-only cache.
  explicit KernelCache(std::string Directory)
      : Directory(std::move(Directory)) {}

  KernelCache(const KernelCache &) = delete;
  KernelCache &operator=(const KernelCache &) = delete;

  /// Structural+parametric hash of \p Model: node kinds, wiring, weights
  /// and leaf parameters of the graph reachable from the root, plus the
  /// feature count. Two models with identical structure and parameters
  /// collide (desired: they compile to identical kernels).
  static uint64_t hashModel(const spn::Model &Model);

  /// The cache key for compiling \p Model for \p Query under \p Config.
  static uint64_t makeKey(const spn::Model &Model,
                          const spn::QueryConfig &Query,
                          const PipelineConfig &Config);

  /// Returns the kernel for (\p Model, \p Query, \p Options), compiling
  /// at most once per key. Compilation runs outside the cache lock, so
  /// distinct keys compile concurrently; \p Stats is only written on an
  /// actual compile (cache hits leave it untouched).
  Expected<CompiledKernel> getOrCompile(const spn::Model &Model,
                                        const spn::QueryConfig &Query,
                                        const CompilerOptions &Options,
                                        CompileStats *Stats = nullptr);

  /// Number of resident engines.
  size_t size() const;

  /// Drops every in-memory entry (disk entries are kept) and resets no
  /// counters.
  void clear();

  Statistics getStatistics() const;

  const std::string &getDirectory() const { return Directory; }

  /// Path of the `.spnk` backing file for \p Key (empty when the cache
  /// is in-memory only).
  std::string entryPath(uint64_t Key) const;

private:
  std::string Directory;
  mutable std::mutex Mutex;
  std::unordered_map<uint64_t, std::shared_ptr<ExecutionEngine>> Entries;
  Statistics Stats;
};

} // namespace runtime
} // namespace spnc

#endif // SPNC_RUNTIME_KERNELCACHE_H
