file(REMOVE_RECURSE
  "CMakeFiles/bench_ratspn_classify.dir/bench_ratspn_classify.cpp.o"
  "CMakeFiles/bench_ratspn_classify.dir/bench_ratspn_classify.cpp.o.d"
  "bench_ratspn_classify"
  "bench_ratspn_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratspn_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
