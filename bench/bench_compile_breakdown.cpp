//===- bench_compile_breakdown.cpp - Paper §V-B1 compile-time breakdown ----------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the compile-time breakdown analysis of paper §V-B1. For the
/// paper's LLVM-based flow, translation to object code dominates CPU
/// compilation (DAG instruction selection 27%, greedy register allocation
/// 25%) and the PTX->CUBIN translation dominates GPU compilation (~95%).
/// This harness reports the same style of breakdown for our pipeline:
/// per-pass timings plus the codegen-stage split (isel / regalloc /
/// peephole / scheduling) and the device-binary assembly time.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace spnc;
using namespace spnc::bench;
using namespace spnc::runtime;

namespace {

void report(Target TheTarget) {
  spn::Model Model = workloads::generateRatSpn(ratSpnBenchScale(), 0);
  CompilerOptions Options;
  Options.OptLevel = fullScale() ? 1 : 3; // exercise every stage
  Options.TheTarget = TheTarget;
  Options.MaxPartitionSize = fullScale() ? 25000 : 5000;
  Expected<CompilationPipeline> Pipeline =
      CompilationPipeline::create(Options);
  if (!Pipeline) {
    std::printf("invalid configuration: %s\n",
                Pipeline.getError().message().c_str());
    return;
  }
  // Sample per-stage module op counts alongside the timings — the
  // stage-report diagnostic shows IR growth across the lowering.
  if (std::optional<Error> Err = Pipeline->enableStageReport()) {
    std::printf("cannot enable stage report: %s\n",
                Err->message().c_str());
    return;
  }
  std::printf("\n-- %s pipeline stages --\n",
              TheTarget == Target::CPU ? "CPU" : "GPU");
  for (const PipelineStage &Stage : Pipeline->getStages())
    std::printf("  %-16s %s\n", Stage.Name.c_str(),
                Stage.Detail.c_str());
  CompileStats Stats;
  Expected<vm::KernelProgram> Program =
      Pipeline->compile(Model, spn::QueryConfig(), &Stats);
  if (!Program) {
    std::printf("compile failed: %s\n",
                Program.getError().message().c_str());
    return;
  }

  double Total = static_cast<double>(Stats.TotalNs);
  std::printf("-- %s compilation: total %.3f s, %zu tasks, %zu "
              "instructions --\n",
              TheTarget == Target::CPU ? "CPU" : "GPU", Total * 1e-9,
              Stats.NumTasks, Stats.NumInstructions);
  auto Pct = [&](uint64_t Ns) {
    return 100.0 * static_cast<double>(Ns) / Total;
  };
  for (const StageTiming &Stage : Stats.Stages)
    std::printf("  stage %-22s %6.1f%%\n", Stage.Name.c_str(),
                Pct(Stage.WallNs));
  for (const StageOpCount &Count : Stats.OpCounts)
    std::printf("  ops after %-18s %zu\n", Count.Stage.c_str(),
                Count.NumOps);
  for (const ir::PassTiming &Pass : Stats.PassTimings)
    std::printf("  pass %-23s %6.1f%%\n", Pass.PassName.c_str(),
                Pct(Pass.WallNs));
  std::printf("  %-28s %6.1f%%  (paper CPU: DAG isel 27%%)\n",
              "codegen: instruction sel.", Pct(Stats.Codegen.IselNs));
  std::printf("  %-28s %6.1f%%  (paper CPU: greedy regalloc 25%%)\n",
              "codegen: register alloc.", Pct(Stats.Codegen.RegAllocNs));
  std::printf("  %-28s %6.1f%%\n", "codegen: peephole",
              Pct(Stats.Codegen.PeepholeNs));
  std::printf("  %-28s %6.1f%%\n", "codegen: scheduling",
              Pct(Stats.Codegen.SchedulingNs));
  if (TheTarget == Target::GPU)
    std::printf("  %-28s %6.1f%%  (paper GPU: PTX->CUBIN ~95%%; not "
                "reproducible without a real assembler)\n",
                "device binary assembly", Pct(Stats.BinaryEncodeNs));
}

void BM_Compile(benchmark::State &State) {
  spn::Model Model = workloads::generateRatSpn(ratSpnBenchScale(), 0);
  CompilerOptions Options;
  Options.OptLevel = 1;
  Options.TheTarget = State.range(0) ? Target::GPU : Target::CPU;
  Options.MaxPartitionSize = fullScale() ? 25000 : 5000;
  // The pipeline is built once and reused across compiles, the
  // compile-once/run-many shape a serving process would use.
  Expected<CompilationPipeline> Pipeline =
      CompilationPipeline::create(Options);
  if (!Pipeline) {
    State.SkipWithError("invalid configuration");
    return;
  }
  for (auto _ : State) {
    Expected<vm::KernelProgram> Program =
        Pipeline->compile(Model, spn::QueryConfig());
    benchmark::DoNotOptimize(&Program);
  }
}
BENCHMARK(BM_Compile)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printHeader("§V-B1", "compile-time breakdown (RAT-SPN class)");
  report(Target::CPU);
  report(Target::GPU);
  benchmark::Shutdown();
  return 0;
}
