//===- Query.h - Probabilistic query description ------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Describes the probabilistic query to compile (paper §III-A): the query
/// kind, the batch size hint, the input datatype and whether marginal
/// inference (NaN evidence) must be supported.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_FRONTEND_QUERY_H
#define SPNC_FRONTEND_QUERY_H

#include <cstdint>

namespace spnc {
namespace spn {

/// Concrete computation datatype selection. `Auto` defers the choice to
/// the HiSPN->LoSPN lowering, which picks based on graph depth (paper
/// §III-A: "the decision can then be based on characteristics, e.g., the
/// depth of the graph").
enum class ComputeType : uint8_t { Auto, F32, F64 };

/// A joint-probability query over a batch of samples. Marginal inference
/// is joint inference with SupportMarginal = true and NaN evidence for
/// the marginalized features.
struct QueryConfig {
  /// Optimization hint: chunk size used for multi-threading on CPU and
  /// block size for GPU kernel launches. The compiled kernel still
  /// accepts arbitrary batch sizes.
  uint32_t BatchSize = 4096;
  /// Compute in log-space to avoid arithmetic underflow (paper §III-B).
  bool LogSpace = true;
  /// Generate NaN checks so features can be marginalized at run time.
  bool SupportMarginal = false;
  /// Input feature datatype is always a float here (f64); the compute
  /// type may be narrower.
  ComputeType DataType = ComputeType::Auto;
};

} // namespace spn
} // namespace spnc

#endif // SPNC_FRONTEND_QUERY_H
