//===- SearchSpace.h - Typed knob space for the autotuner ---------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The configuration space `spnc-tune` searches. A `TunedConfig` bundles
/// everything a candidate decides — the compiler options, the serving
/// knobs, and the backend name. A `Knob` is one named, typed dimension
/// of that space with a finite candidate-value list (the paper sweeps
/// the same dimensions by hand in Figs. 6 and 10-13); a `SearchSpace`
/// is an ordered set of knobs, and a candidate is one value index per
/// knob. `SearchSpace::makeDefault` builds the standard space:
///
///   compile:  opt-level, vector-width, partition-size, partition-slack,
///             gpu-block-size (GPU target only), backend
///   serving:  max-batch-samples, max-queue-delay-us, num-workers,
///             num-shards, priority-weight
///
/// Knob names are a stable contract: `TuningRecord`s store them, and
/// `applyKnobByName` is the single mapping from a name+value back onto
/// a `TunedConfig` (used both by the knobs themselves and by
/// `applyTuningRecord`, so a persisted record always applies exactly
/// like the candidate the tuner measured).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_TUNING_SEARCHSPACE_H
#define SPNC_TUNING_SEARCHSPACE_H

#include "runtime/Pipeline.h"
#include "serving/InferenceServer.h"
#include "support/Random.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spnc {
namespace tuning {

/// Everything one tuning candidate decides. The evaluator compiles with
/// `Compile` through the backend named `BackendName` and serves through
/// an `InferenceServer` configured with `Server`.
struct TunedConfig {
  runtime::CompilerOptions Compile;
  serving::ServerConfig Server;
  std::string BackendName = "vm";
};

/// One concrete value a knob can take: an unsigned integer, a real, or a
/// short text (backend names). Comparable and printable, so candidates
/// can be memoized and logged.
class KnobValue {
public:
  enum class Kind : uint8_t { UInt, Real, Text };

  static KnobValue ofUInt(uint64_t Value) {
    KnobValue V;
    V.TheKind = Kind::UInt;
    V.UInt = Value;
    return V;
  }
  static KnobValue ofReal(double Value) {
    KnobValue V;
    V.TheKind = Kind::Real;
    V.Real = Value;
    return V;
  }
  static KnobValue ofText(std::string Value) {
    KnobValue V;
    V.TheKind = Kind::Text;
    V.Text = std::move(Value);
    return V;
  }

  Kind kind() const { return TheKind; }
  uint64_t getUInt() const { return UInt; }
  double getReal() const { return Real; }
  const std::string &getText() const { return Text; }

  /// Printable form ("3", "0.05", "cpp").
  std::string text() const;

  bool operator==(const KnobValue &Other) const {
    if (TheKind != Other.TheKind)
      return false;
    switch (TheKind) {
    case Kind::UInt:
      return UInt == Other.UInt;
    case Kind::Real:
      return Real == Other.Real;
    case Kind::Text:
      return Text == Other.Text;
    }
    return false;
  }
  bool operator!=(const KnobValue &Other) const {
    return !(*this == Other);
  }

private:
  Kind TheKind = Kind::UInt;
  uint64_t UInt = 0;
  double Real = 0.0;
  std::string Text;
};

/// Applies the knob named \p Name with \p Value onto \p Config. Returns
/// false (and leaves \p Config untouched) for unknown knob names — the
/// forward-compatibility path when a newer record carries knobs this
/// build does not know. This is the one name -> config mapping; the
/// default search space and `applyTuningRecord` both go through it.
bool applyKnobByName(TunedConfig &Config, const std::string &Name,
                     const KnobValue &Value);

/// One typed tuning knob: a stable name plus its finite candidate-value
/// list and the index of the all-defaults value.
class Knob {
public:
  Knob(std::string Name, std::vector<KnobValue> Values,
       size_t DefaultIndex);

  const std::string &getName() const { return Name; }
  const std::vector<KnobValue> &getValues() const { return Values; }
  size_t getDefaultIndex() const { return DefaultIndex; }

  /// Applies the \p ValueIndex-th candidate value to \p Config.
  void apply(TunedConfig &Config, size_t ValueIndex) const;

private:
  std::string Name;
  std::vector<KnobValue> Values;
  size_t DefaultIndex;
};

/// Shape of the default knob space.
struct DefaultSpaceOptions {
  /// Candidate values of the "backend" knob. Defaults to the VM backend
  /// only: the cpp backend pays a host-compiler invocation per fresh
  /// cache key, which a caller opts into explicitly (spnc-tune
  /// --backends vm,cpp).
  std::vector<std::string> Backends = {"vm"};
  /// Compilation target; Target::GPU adds the "gpu-block-size" knob.
  runtime::Target Target = runtime::Target::CPU;
};

/// The ordered knob set the tuner searches. A candidate assigns one
/// value index per knob, in knob order.
class SearchSpace {
public:
  using Candidate = std::vector<size_t>;

  void addKnob(Knob TheKnob) { Knobs.push_back(std::move(TheKnob)); }

  const std::vector<Knob> &getKnobs() const { return Knobs; }
  size_t getNumKnobs() const { return Knobs.size(); }

  /// Total number of distinct candidates (the product of the knobs'
  /// value counts; 1 for an empty space).
  uint64_t getNumCandidates() const;

  /// The all-defaults candidate (every knob at its default index).
  Candidate defaultCandidate() const;

  /// A uniformly random candidate drawn from \p TheRng (deterministic
  /// for a fixed seed — the restart path of the tuner).
  Candidate randomCandidate(Rng &TheRng) const;

  /// Materializes \p TheCandidate into a config, starting from \p Base
  /// (knobs outside the space keep their Base values).
  TunedConfig materialize(const Candidate &TheCandidate,
                          const TunedConfig &Base = {}) const;

  /// Printable "name=value name=value ..." form of \p TheCandidate.
  std::string describe(const Candidate &TheCandidate) const;

  /// The standard compile + serving knob space (see file comment).
  static SearchSpace makeDefault(const DefaultSpaceOptions &Options = {});

private:
  std::vector<Knob> Knobs;
};

} // namespace tuning
} // namespace spnc

#endif // SPNC_TUNING_SEARCHSPACE_H
