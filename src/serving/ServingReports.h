//===- ServingReports.h - JSON serialization of ServerStats -------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON serialization of the serving layer's `ServerStats` snapshot,
/// behind `spnc-serve --stats-report`. Key order is stable and covered
/// by a golden test (serving_test.cpp). Shape:
///
///   {
///     "submitted_requests": ..., "submitted_samples": ...,
///     "completed_requests": ..., "completed_samples": ...,
///     "rejected_requests": ..., "blocked_submits": ...,
///     "timed_out_requests": ..., "batches_dispatched": ...,
///     "mean_batch_size": ..., "queue_depth": ...,
///     "peak_queue_depth": ..., "execution_ns": ..., "elapsed_ns": ...,
///     "throughput_samples_per_s": ...,
///     "batch_size": {"count": ..., "min": ..., "max": ..., "mean": ...,
///                    "p50": ..., "p95": ..., "p99": ...},
///     "latency_ns": {same seven members}
///   }
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SERVING_SERVINGREPORTS_H
#define SPNC_SERVING_SERVINGREPORTS_H

#include "serving/InferenceServer.h"
#include "support/LogicalResult.h"

#include <string>

namespace spnc {

class RawOStream;

namespace serving {

/// Writes the JSON serving report for \p Stats to \p OS.
void writeServerStatsReport(const ServerStats &Stats, RawOStream &OS);

/// Writes the serving report to \p Path (overwritten). On failure,
/// \p ErrorMessage (when non-null) receives the reason.
LogicalResult writeServerStatsReport(const ServerStats &Stats,
                                     const std::string &Path,
                                     std::string *ErrorMessage = nullptr);

/// Writes the sharded serving report: the aggregate snapshot in exactly
/// the writeServerStatsReport schema, wrapped with the shard count, the
/// per-priority latency split, and one per-shard stats object (same
/// schema as the aggregate) per shard:
///
///   {
///     "num_shards": N,
///     "aggregate": { ...writeServerStatsReport schema... },
///     "latency_ns_by_priority": {
///       "interactive": {count,min,max,mean,p50,p95,p99},
///       "bulk": {same}
///     },
///     "shards": [ { ...writeServerStatsReport schema... }, ... ]
///   }
void writeShardedStatsReport(const ServerStats &Aggregate,
                             const std::vector<ServerStats> &PerShard,
                             RawOStream &OS);

/// Writes the sharded serving report to \p Path (overwritten).
LogicalResult
writeShardedStatsReport(const ServerStats &Aggregate,
                        const std::vector<ServerStats> &PerShard,
                        const std::string &Path,
                        std::string *ErrorMessage = nullptr);

} // namespace serving
} // namespace spnc

#endif // SPNC_SERVING_SERVINGREPORTS_H
