//===- bench_fig10_partition_cpu.cpp - Paper Fig. 10 reproduction ----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces paper Fig. 10: impact of the maximum partition size on
/// CPU compilation time and execution time for a RAT-SPN class. Paper
/// findings: compile time first falls with growing partitions (fewer
/// task boundaries) and rises again for very large partitions; execution
/// time improves with partition size (fewer intermediate buffers).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace spnc;
using namespace spnc::bench;
using namespace spnc::runtime;

namespace {

const spn::Model &ratModel() {
  static spn::Model Model =
      workloads::generateRatSpn(ratSpnBenchScale(), 0);
  return Model;
}

const std::vector<double> &imageData() {
  static std::vector<double> Data = workloads::generateImageData(
      ratSpnBenchScale().NumFeatures, 10, 256, 42, nullptr);
  return Data;
}

std::vector<uint32_t> partitionSizes() {
  if (fullScale())
    return {1000, 2500, 5000, 10000, 25000, 50000, 100000};
  return {500, 1000, 2500, 5000, 10000, 25000};
}

struct SweepPoint {
  double CompileSeconds = 0;
  double ExecSeconds = 0;
  size_t NumTasks = 0;
};

SweepPoint measure(uint32_t MaxPartitionSize, Target TheTarget) {
  CompilerOptions Options;
  Options.OptLevel = 1;
  Options.TheTarget = TheTarget;
  Options.MaxPartitionSize = MaxPartitionSize;
  if (TheTarget == Target::GPU)
    Options.GpuBlockSize = 64;
  CompileStats Stats;
  SweepPoint Point;
  Expected<CompiledKernel> Kernel = compileModel(
      ratModel(), spn::QueryConfig(), Options, &Stats);
  if (!Kernel)
    return Point;
  Point.CompileSeconds = static_cast<double>(Stats.TotalNs) * 1e-9;
  Point.NumTasks = Stats.NumTasks;
  size_t NumSamples =
      imageData().size() / ratSpnBenchScale().NumFeatures;
  std::vector<double> Output(NumSamples);
  Point.ExecSeconds = runReportSeconds(*Kernel, imageData().data(),
                                       Output.data(), NumSamples);
  return Point;
}

void registerSweep(const char *Prefix, Target TheTarget) {
  for (uint32_t Size : partitionSizes())
    benchmark::RegisterBenchmark(
        (std::string(Prefix) + "/maxsize:" + std::to_string(Size))
            .c_str(),
        [Size, TheTarget](benchmark::State &State) {
          SweepPoint Point;
          for (auto _ : State)
            Point = measure(Size, TheTarget);
          State.counters["compile_s"] = Point.CompileSeconds;
          State.counters["exec_s"] = Point.ExecSeconds;
          State.counters["tasks"] =
              static_cast<double>(Point.NumTasks);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  registerSweep("fig10/cpu", Target::CPU);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Fig. 10", "RAT-SPN CPU: max partition size vs compile "
                         "and execution time");
  spn::ModelStats Stats = ratModel().computeStats();
  std::printf("model: %zu operations (%zu sums, %zu products, %zu "
              "leaves)\n",
              Stats.NumNodes, Stats.NumSums, Stats.NumProducts,
              Stats.NumLeaves);
  for (uint32_t Size : partitionSizes()) {
    SweepPoint Point = measure(Size, Target::CPU);
    std::printf("max partition %6u : compile %7.3f s   exec %8.3f ms   "
                "(%zu tasks)\n",
                Size, Point.CompileSeconds, Point.ExecSeconds * 1e3,
                Point.NumTasks);
  }
  std::printf("paper shape: execution time improves with partition size "
              "(fewer intermediate buffers)\n");
  benchmark::Shutdown();
  return 0;
}
