//===- Reports.h - Machine-readable compiler/cache reports --------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON serialization of the pipeline's `CompileStats` and the kernel
/// cache's `KernelCache::Stats`, behind the CLI's `--pipeline-report` and
/// `--kernel-cache-report` flags. The emitted key order is stable and
/// covered by golden tests (report_test.cpp), so serving dashboards can
/// scrape the documents without defensive parsing.
///
/// Pipeline report shape (one "stages" entry per registered stage, in
/// execution order):
///
///   {
///     "stages": [{"name": ..., "detail": ..., "diagnostic": ...,
///                 "wall_ns": ...}, ...],
///     "op_counts": [{"stage": ..., "num_ops": ...}, ...],
///     "passes": [{"name": ..., "wall_ns": ...}, ...],
///     "codegen": {"isel_ns": ..., "regalloc_ns": ..., "peephole_ns": ...,
///                 "scheduling_ns": ...},
///     "translation_ns": ..., "binary_encode_ns": ..., "total_ns": ...,
///     "num_tasks": ..., "num_instructions": ...
///   }
///
/// When several models are compiled in one invocation, the report is a
/// top-level array of these documents, each prefixed with a "model"
/// member naming its model (writePipelineReports).
///
/// Cache report shape: one member per `KernelCache::Stats` counter, in
/// declaration order, plus the capacity configuration.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_RUNTIME_REPORTS_H
#define SPNC_RUNTIME_REPORTS_H

#include "runtime/KernelCache.h"
#include "runtime/Pipeline.h"
#include "support/LogicalResult.h"

#include <string>

namespace spnc {

class RawOStream;

namespace runtime {

/// Writes the JSON pipeline report for \p Stats to \p OS. \p Stages,
/// when non-null, supplies the registered stage descriptions (detail
/// text and the diagnostic flag) matched to the timings by stage name.
void writePipelineReport(const CompileStats &Stats,
                         const std::vector<PipelineStage> *Stages,
                         RawOStream &OS);

/// Writes the pipeline report to \p Path (overwritten). On failure,
/// \p ErrorMessage (when non-null) receives the reason.
LogicalResult writePipelineReport(const CompileStats &Stats,
                                  const std::vector<PipelineStage> *Stages,
                                  const std::string &Path,
                                  std::string *ErrorMessage = nullptr);

/// One model's compile outcome inside a multi-model pipeline report.
struct ModelPipelineReport {
  /// Display name (the CLI uses the model path).
  std::string Model;
  CompileStats Stats;
  /// Registered stage descriptions, or null (as in writePipelineReport).
  const std::vector<PipelineStage> *Stages = nullptr;
};

/// Writes the multi-model pipeline report for \p Reports to \p OS: a
/// top-level JSON array with one document per model, each the
/// single-model report shape prefixed with a "model" member.
void writePipelineReports(const std::vector<ModelPipelineReport> &Reports,
                          RawOStream &OS);

/// Writes the multi-model pipeline report to \p Path (overwritten). On
/// failure, \p ErrorMessage (when non-null) receives the reason.
LogicalResult
writePipelineReports(const std::vector<ModelPipelineReport> &Reports,
                     const std::string &Path,
                     std::string *ErrorMessage = nullptr);

/// Writes the JSON kernel-cache report for \p Stats to \p OS.
/// \p CacheConfig, when non-null, adds the active capacity/budget
/// configuration under "config".
void writeKernelCacheReport(const KernelCache::Stats &Stats,
                            const KernelCache::Config *CacheConfig,
                            RawOStream &OS);

/// Writes the kernel-cache report to \p Path (overwritten). On failure,
/// \p ErrorMessage (when non-null) receives the reason.
LogicalResult writeKernelCacheReport(const KernelCache::Stats &Stats,
                                     const KernelCache::Config *CacheConfig,
                                     const std::string &Path,
                                     std::string *ErrorMessage = nullptr);

} // namespace runtime
} // namespace spnc

#endif // SPNC_RUNTIME_REPORTS_H
