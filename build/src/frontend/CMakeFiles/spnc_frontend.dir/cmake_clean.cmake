file(REMOVE_RECURSE
  "CMakeFiles/spnc_frontend.dir/HiSPNTranslation.cpp.o"
  "CMakeFiles/spnc_frontend.dir/HiSPNTranslation.cpp.o.d"
  "CMakeFiles/spnc_frontend.dir/Model.cpp.o"
  "CMakeFiles/spnc_frontend.dir/Model.cpp.o.d"
  "CMakeFiles/spnc_frontend.dir/Serializer.cpp.o"
  "CMakeFiles/spnc_frontend.dir/Serializer.cpp.o.d"
  "libspnc_frontend.a"
  "libspnc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
