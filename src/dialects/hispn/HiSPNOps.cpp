//===- HiSPNOps.cpp - HiSPN dialect operations ------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "dialects/hispn/HiSPNOps.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace spnc;
using namespace spnc::ir;
using namespace spnc::hispn;

ProbType ProbType::get(Context &Ctx) {
  TypeStorage Proto;
  Proto.Kind = TypeKind::Probability;
  return ProbType(Ctx.uniqueType(std::move(Proto)));
}

static LogicalResult emitOpError(OpView Op, const std::string &Message) {
  Op.getContext().emitError(formatString(
      "'%s': %s", Op->getName().c_str(), Message.c_str()));
  return failure();
}

/// Checks that all operands and the single result are !hi_spn.prob.
static LogicalResult verifyAllProb(OpView Op) {
  for (unsigned I = 0; I < Op->getNumOperands(); ++I)
    if (!Op->getOperand(I).getType().isa<ProbType>())
      return emitOpError(Op, formatString("operand %u is not !hi_spn.prob", I));
  if (Op->getNumResults() != 1 ||
      !Op->getResult(0).getType().isa<ProbType>())
    return emitOpError(Op, "must return a single !hi_spn.prob value");
  return success();
}

//===----------------------------------------------------------------------===//
// JointQueryOp
//===----------------------------------------------------------------------===//

void JointQueryOp::build(OpBuilder &Builder, OperationState &State,
                         unsigned NumFeatures, Type InputType,
                         unsigned BatchSize, bool SupportMarginal,
                         bool LogSpace) {
  Context &Ctx = Builder.getContext();
  State.addAttribute("numFeatures", IntAttr::get(Ctx, NumFeatures));
  State.addAttribute("inputType", TypeAttr::get(Ctx, InputType));
  State.addAttribute("batchSize", IntAttr::get(Ctx, BatchSize));
  State.addAttribute("supportMarginal", BoolAttr::get(Ctx, SupportMarginal));
  State.addAttribute("logSpace", BoolAttr::get(Ctx, LogSpace));
  State.addRegion();
}

Operation *JointQueryOp::getGraph() const {
  Region &TheRegion = TheOp->getRegion(0);
  if (TheRegion.empty() || TheRegion.front().empty())
    return nullptr;
  return TheRegion.front().front();
}

LogicalResult JointQueryOp::verify() {
  if (TheOp->getNumRegions() != 1)
    return emitOpError(*this, "requires exactly one region");
  if (!TheOp->hasAttr("numFeatures") || !TheOp->hasAttr("batchSize") ||
      !TheOp->hasAttr("inputType"))
    return emitOpError(*this,
                       "requires numFeatures, batchSize and inputType");
  Operation *Graph = getGraph();
  if (!Graph || !isa_op<GraphOp>(Graph))
    return emitOpError(*this, "region must contain a single hi_spn.graph");
  if (cast_op<GraphOp>(Graph).getNumFeatures() != getNumFeatures())
    return emitOpError(*this, "numFeatures mismatch with nested graph");
  return success();
}

//===----------------------------------------------------------------------===//
// MpeQueryOp / SampleQueryOp (same structure as JointQueryOp)
//===----------------------------------------------------------------------===//

/// Shared attribute setup of the three query ops.
static void buildQueryOp(OpBuilder &Builder, OperationState &State,
                         unsigned NumFeatures, Type InputType,
                         unsigned BatchSize, bool SupportMarginal,
                         bool LogSpace) {
  Context &Ctx = Builder.getContext();
  State.addAttribute("numFeatures", IntAttr::get(Ctx, NumFeatures));
  State.addAttribute("inputType", TypeAttr::get(Ctx, InputType));
  State.addAttribute("batchSize", IntAttr::get(Ctx, BatchSize));
  State.addAttribute("supportMarginal", BoolAttr::get(Ctx, SupportMarginal));
  State.addAttribute("logSpace", BoolAttr::get(Ctx, LogSpace));
  State.addRegion();
}

/// Shared structural verification of the three query ops.
static LogicalResult verifyQueryOp(OpView Op, Operation *Graph,
                                   unsigned NumFeatures) {
  if (Op->getNumRegions() != 1)
    return emitOpError(Op, "requires exactly one region");
  if (!Op->hasAttr("numFeatures") || !Op->hasAttr("batchSize") ||
      !Op->hasAttr("inputType"))
    return emitOpError(Op, "requires numFeatures, batchSize and inputType");
  if (!Graph || !isa_op<GraphOp>(Graph))
    return emitOpError(Op, "region must contain a single hi_spn.graph");
  if (cast_op<GraphOp>(Graph).getNumFeatures() != NumFeatures)
    return emitOpError(Op, "numFeatures mismatch with nested graph");
  return success();
}

void MpeQueryOp::build(OpBuilder &Builder, OperationState &State,
                       unsigned NumFeatures, Type InputType,
                       unsigned BatchSize, bool SupportMarginal,
                       bool LogSpace) {
  buildQueryOp(Builder, State, NumFeatures, InputType, BatchSize,
               SupportMarginal, LogSpace);
}

Operation *MpeQueryOp::getGraph() const {
  Region &TheRegion = TheOp->getRegion(0);
  if (TheRegion.empty() || TheRegion.front().empty())
    return nullptr;
  return TheRegion.front().front();
}

LogicalResult MpeQueryOp::verify() {
  return verifyQueryOp(*this, getGraph(), getNumFeatures());
}

void SampleQueryOp::build(OpBuilder &Builder, OperationState &State,
                          unsigned NumFeatures, Type InputType,
                          unsigned BatchSize, bool SupportMarginal,
                          bool LogSpace) {
  buildQueryOp(Builder, State, NumFeatures, InputType, BatchSize,
               SupportMarginal, LogSpace);
}

Operation *SampleQueryOp::getGraph() const {
  Region &TheRegion = TheOp->getRegion(0);
  if (TheRegion.empty() || TheRegion.front().empty())
    return nullptr;
  return TheRegion.front().front();
}

LogicalResult SampleQueryOp::verify() {
  return verifyQueryOp(*this, getGraph(), getNumFeatures());
}

//===----------------------------------------------------------------------===//
// GraphOp
//===----------------------------------------------------------------------===//

void GraphOp::build(OpBuilder &Builder, OperationState &State,
                    unsigned NumFeatures) {
  State.addAttribute("numFeatures",
                     IntAttr::get(Builder.getContext(), NumFeatures));
  State.addRegion();
}

Operation *GraphOp::getRoot() {
  Block &Body = getBody();
  return Body.empty() ? nullptr : Body.getTerminator();
}

LogicalResult GraphOp::verify() {
  if (TheOp->getNumRegions() != 1 || TheOp->getRegion(0).size() != 1)
    return emitOpError(*this, "requires a single-block region");
  Block &Body = TheOp->getRegion(0).front();
  if (Body.getNumArguments() != getNumFeatures())
    return emitOpError(
        *this, "block argument count must equal the numFeatures attribute");
  Operation *Terminator = Body.getTerminator();
  if (!Terminator || !isa_op<RootOp>(Terminator))
    return emitOpError(*this, "body must be terminated by hi_spn.root");
  return success();
}

//===----------------------------------------------------------------------===//
// RootOp
//===----------------------------------------------------------------------===//

void RootOp::build(OpBuilder &, OperationState &State, Value RootValue) {
  State.addOperand(RootValue);
}

LogicalResult RootOp::verify() {
  if (TheOp->getNumOperands() != 1 ||
      !TheOp->getOperand(0).getType().isa<ProbType>())
    return emitOpError(*this, "requires a single !hi_spn.prob operand");
  return success();
}

//===----------------------------------------------------------------------===//
// ProductOp
//===----------------------------------------------------------------------===//

void ProductOp::build(OpBuilder &Builder, OperationState &State,
                      std::span<const Value> Operands) {
  State.addOperands(Operands);
  State.addResultType(ProbType::get(Builder.getContext()));
}

LogicalResult ProductOp::verify() {
  if (TheOp->getNumOperands() == 0)
    return emitOpError(*this, "requires at least one operand");
  return verifyAllProb(*this);
}

namespace {
/// product(x) -> x: collapses single-input product nodes (the early
/// optimization mentioned in paper §IV-A2).
struct CollapseSingleInputProduct : public RewritePattern {
  CollapseSingleInputProduct()
      : RewritePattern(ProductOp::getOperationName()) {}
  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    if (Op->getNumOperands() != 1)
      return failure();
    Rewriter.replaceOp(Op, Op->getOperand(0));
    return success();
  }
};

/// sum(x) with weight 1.0 -> x. Skipped for parameter-tagged sums
/// (merged-model compilation): whether the pattern fires depends on the
/// weight *value*, and erasing the sum would drop its parameter site —
/// structurally-isomorphic models must keep identical program shapes.
struct CollapseSingleInputSum : public RewritePattern {
  CollapseSingleInputSum() : RewritePattern(SumOp::getOperationName()) {}
  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    if (Op->getNumOperands() != 1)
      return failure();
    if (Op->hasAttr("param"))
      return failure();
    SumOp Sum(Op);
    if (Sum.getWeights()[0] != 1.0)
      return failure();
    Rewriter.replaceOp(Op, Op->getOperand(0));
    return success();
  }
};

/// Flattens nested products: product(product(a, b), c) -> product(a, b, c).
/// Only fires when the inner product has no other users.
struct FlattenNestedProduct : public RewritePattern {
  FlattenNestedProduct() : RewritePattern(ProductOp::getOperationName()) {}
  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    bool HasNested = false;
    std::vector<Value> NewOperands;
    for (unsigned I = 0; I < Op->getNumOperands(); ++I) {
      Value Operand = Op->getOperand(I);
      Operation *Def = Operand.getDefiningOp();
      if (Def && isa_op<ProductOp>(Def) && Operand.hasOneUse()) {
        HasNested = true;
        for (unsigned J = 0; J < Def->getNumOperands(); ++J)
          NewOperands.push_back(Def->getOperand(J));
      } else {
        NewOperands.push_back(Operand);
      }
    }
    if (!HasNested)
      return failure();
    Rewriter.setInsertionPoint(Op);
    ProductOp Flat = Rewriter.create<ProductOp>(
        std::span<const Value>(NewOperands));
    Rewriter.replaceOp(Op, Flat->getResult(0));
    return success();
  }
};
} // namespace

void ProductOp::getCanonicalizationPatterns(PatternList &Patterns,
                                            Context &) {
  Patterns.push_back(std::make_unique<CollapseSingleInputProduct>());
  Patterns.push_back(std::make_unique<FlattenNestedProduct>());
}

//===----------------------------------------------------------------------===//
// SumOp
//===----------------------------------------------------------------------===//

void SumOp::build(OpBuilder &Builder, OperationState &State,
                  std::span<const Value> Operands,
                  const std::vector<double> &Weights) {
  Context &Ctx = Builder.getContext();
  State.addOperands(Operands);
  State.addAttribute("weights", DenseF64Attr::get(Ctx, Weights));
  State.addResultType(ProbType::get(Ctx));
}

LogicalResult SumOp::verify() {
  if (TheOp->getNumOperands() == 0)
    return emitOpError(*this, "requires at least one operand");
  Attribute Weights = TheOp->getAttr("weights");
  if (!Weights || !Weights.isa<DenseF64Attr>())
    return emitOpError(*this, "requires a dense weights attribute");
  if (Weights.cast<DenseF64Attr>().size() != TheOp->getNumOperands())
    return emitOpError(*this,
                       "weight count must match the number of operands");
  for (double Weight : Weights.cast<DenseF64Attr>().getValues())
    if (!(Weight >= 0.0) || !std::isfinite(Weight))
      return emitOpError(*this, "weights must be non-negative and finite");
  return verifyAllProb(*this);
}

void SumOp::getCanonicalizationPatterns(PatternList &Patterns, Context &) {
  Patterns.push_back(std::make_unique<CollapseSingleInputSum>());
}

//===----------------------------------------------------------------------===//
// HistogramOp
//===----------------------------------------------------------------------===//

void HistogramOp::build(OpBuilder &Builder, OperationState &State,
                        Value Index,
                        const std::vector<double> &FlatBuckets) {
  Context &Ctx = Builder.getContext();
  assert(FlatBuckets.size() % 3 == 0 &&
         "buckets must be triples of (lb, ub, p)");
  State.addOperand(Index);
  State.addAttribute("buckets", DenseF64Attr::get(Ctx, FlatBuckets));
  State.addAttribute("bucketCount",
                     IntAttr::get(Ctx, FlatBuckets.size() / 3));
  State.addResultType(ProbType::get(Ctx));
}

LogicalResult HistogramOp::verify() {
  if (TheOp->getNumOperands() != 1)
    return emitOpError(*this, "requires a single index operand");
  Attribute Buckets = TheOp->getAttr("buckets");
  if (!Buckets || !Buckets.isa<DenseF64Attr>())
    return emitOpError(*this, "requires a dense buckets attribute");
  const auto &Values = Buckets.cast<DenseF64Attr>().getValues();
  if (Values.size() % 3 != 0 ||
      Values.size() / 3 != getBucketCount())
    return emitOpError(*this,
                       "buckets must be (lb, ub, p) triples matching "
                       "bucketCount");
  for (size_t I = 0; I < Values.size(); I += 3) {
    if (!(Values[I] < Values[I + 1]))
      return emitOpError(*this, "bucket bounds must satisfy lb < ub");
    if (!(Values[I + 2] >= 0.0))
      return emitOpError(*this, "bucket probability must be non-negative");
  }
  return success();
}

//===----------------------------------------------------------------------===//
// CategoricalOp
//===----------------------------------------------------------------------===//

void CategoricalOp::build(OpBuilder &Builder, OperationState &State,
                          Value Index,
                          const std::vector<double> &Probabilities) {
  Context &Ctx = Builder.getContext();
  State.addOperand(Index);
  State.addAttribute("probabilities",
                     DenseF64Attr::get(Ctx, Probabilities));
  State.addResultType(ProbType::get(Ctx));
}

LogicalResult CategoricalOp::verify() {
  if (TheOp->getNumOperands() != 1)
    return emitOpError(*this, "requires a single index operand");
  Attribute Probs = TheOp->getAttr("probabilities");
  if (!Probs || !Probs.isa<DenseF64Attr>() ||
      Probs.cast<DenseF64Attr>().size() == 0)
    return emitOpError(*this,
                       "requires a non-empty dense probabilities attribute");
  for (double P : Probs.cast<DenseF64Attr>().getValues())
    if (!(P >= 0.0) || !std::isfinite(P))
      return emitOpError(*this,
                         "probabilities must be non-negative and finite");
  return success();
}

//===----------------------------------------------------------------------===//
// GaussianOp
//===----------------------------------------------------------------------===//

void GaussianOp::build(OpBuilder &Builder, OperationState &State,
                       Value Evidence, double Mean, double StdDev) {
  Context &Ctx = Builder.getContext();
  State.addOperand(Evidence);
  State.addAttribute("mean", FloatAttr::get(Ctx, Mean));
  State.addAttribute("stddev", FloatAttr::get(Ctx, StdDev));
  State.addResultType(ProbType::get(Ctx));
}

LogicalResult GaussianOp::verify() {
  if (TheOp->getNumOperands() != 1)
    return emitOpError(*this, "requires a single evidence operand");
  if (!TheOp->hasAttr("mean") || !TheOp->hasAttr("stddev"))
    return emitOpError(*this, "requires mean and stddev attributes");
  if (!(getStdDev() > 0.0))
    return emitOpError(*this, "stddev must be positive");
  return success();
}

//===----------------------------------------------------------------------===//
// Dialect registration
//===----------------------------------------------------------------------===//

void spnc::hispn::registerHiSPNDialect(Context &Ctx) {
  if (Ctx.isDialectLoaded("hi_spn"))
    return;
  Ctx.markDialectLoaded("hi_spn");
  registerBuiltinDialect(Ctx);
  registerOperation<JointQueryOp>(Ctx);
  registerOperation<MpeQueryOp>(Ctx);
  registerOperation<SampleQueryOp>(Ctx);
  registerOperation<GraphOp>(Ctx);
  registerOperation<RootOp>(Ctx);
  registerOperation<ProductOp>(Ctx);
  registerOperation<SumOp>(Ctx);
  registerOperation<HistogramOp>(Ctx);
  registerOperation<CategoricalOp>(Ctx);
  registerOperation<GaussianOp>(Ctx);
}
