//===- JSON.h - Minimal ordered JSON writer and parser ---------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON layer behind the machine-readable reports (`--pipeline-report`,
/// `--kernel-cache-report`). Two halves:
///
///  * `json::Writer` — a streaming emitter over RawOStream. Object keys
///    appear exactly in emission order, which is what lets the report
///    golden tests (and dashboards scraping the reports) rely on a stable
///    key ordering.
///  * `json::Value` + `json::parse` — a small recursive-descent parser
///    used by tests to validate emitted reports; objects preserve their
///    textual member order for the same reason.
///
/// Deliberately minimal: UTF-8 pass-through, numbers are doubles (exact
/// for the 53-bit counter/timing magnitudes the reports emit), no
/// comments, no trailing commas.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_SUPPORT_JSON_H
#define SPNC_SUPPORT_JSON_H

#include "support/Expected.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spnc {

class RawOStream;

namespace json {

/// Writes \p Str to \p OS as a quoted JSON string with the mandatory
/// escapes (quote, backslash, control characters).
void writeEscaped(RawOStream &OS, std::string_view Str);

/// Streaming, pretty-printing JSON emitter. Usage:
///
///   json::Writer W(OS);
///   W.beginObject();
///   W.key("stages"); W.beginArray(); ... W.endArray();
///   W.key("total_ns"); W.value(uint64_t(42));
///   W.endObject();
///
/// The writer never reorders anything: members appear in the order the
/// key() calls are made. Misuse (value without key inside an object,
/// unbalanced end*) is caught by assertions.
class Writer {
public:
  explicit Writer(RawOStream &OS, unsigned IndentWidth = 2)
      : OS(OS), IndentWidth(IndentWidth) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits the member key for the next value; only valid inside an
  /// object.
  void key(std::string_view Key);

  void value(std::string_view Str);
  void value(const char *Str) { value(std::string_view(Str)); }
  void value(bool Boolean);
  void value(double Number);
  void value(uint64_t Number);
  void value(int64_t Number);
  void null();

  /// Convenience: key() followed by value().
  template <typename T> void member(std::string_view Key, T &&Val) {
    key(Key);
    value(std::forward<T>(Val));
  }

private:
  enum class Scope : uint8_t { Object, Array };

  /// Newline + indentation + separating comma bookkeeping before a new
  /// element (key or array value).
  void beforeElement();
  void indent();

  RawOStream &OS;
  unsigned IndentWidth;
  std::vector<Scope> Scopes;
  /// Whether the current scope already holds at least one element.
  std::vector<bool> HasElements;
  /// True directly after key(): the next value continues that line.
  bool PendingKey = false;
};

/// A parsed JSON document. Objects preserve the member order of the
/// input text.
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, Value>;

  Value() : TheKind(Kind::Null) {}
  explicit Value(bool Boolean) : TheKind(Kind::Bool), Bool(Boolean) {}
  explicit Value(double Number) : TheKind(Kind::Number), Number(Number) {}
  explicit Value(std::string Str)
      : TheKind(Kind::String), Str(std::move(Str)) {}

  static Value makeArray() {
    Value V;
    V.TheKind = Kind::Array;
    return V;
  }
  static Value makeObject() {
    Value V;
    V.TheKind = Kind::Object;
    return V;
  }

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isObject() const { return TheKind == Kind::Object; }

  bool getBool() const { return Bool; }
  double getNumber() const { return Number; }
  const std::string &getString() const { return Str; }
  const std::vector<Value> &getArray() const { return Elements; }
  /// Members in textual order.
  const std::vector<Member> &getMembers() const { return Members; }

  /// First member named \p Key, or nullptr. Objects only.
  const Value *find(std::string_view Key) const;

  std::vector<Value> &getArray() { return Elements; }
  std::vector<Member> &getMembers() { return Members; }

private:
  Kind TheKind;
  bool Bool = false;
  double Number = 0.0;
  std::string Str;
  std::vector<Value> Elements;
  std::vector<Member> Members;
};

/// Parses one JSON document (with optional surrounding whitespace);
/// fails with a byte-offset diagnostic on malformed input or trailing
/// garbage.
Expected<Value> parse(std::string_view Text);

} // namespace json
} // namespace spnc

#endif // SPNC_SUPPORT_JSON_H
