//===- bench_fig09_gpu_breakdown.cpp - Paper Fig. 9 reproduction -----------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces paper Fig. 9: the breakdown of GPU execution time into
/// computation, data movement and launch overhead for the clean and
/// noisy speaker-identification scenarios. The paper's finding — data
/// movement between host and device exceeds 60% of execution time — is
/// the reason the GPU executable trails the vectorized CPU executable.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace spnc;
using namespace spnc::bench;
using namespace spnc::runtime;

namespace {

struct Breakdown {
  double ComputePct = 0, TransferPct = 0, LaunchPct = 0;
  double TotalMs = 0;
};

Breakdown measure(bool Noisy) {
  std::vector<SpeakerInstance> Instances = makeSpeakerSet(Noisy);
  spn::QueryConfig Query;
  Query.SupportMarginal = Noisy;
  CompilerOptions Options;
  Options.OptLevel = 2;
  Options.TheTarget = Target::GPU;
  Options.GpuBlockSize = 64;

  uint64_t Compute = 0, Transfer = 0, Launch = 0;
  for (const SpeakerInstance &Instance : Instances) {
    Expected<CompiledKernel> Kernel =
        compileModel(Instance.Model, Query, Options);
    if (!Kernel)
      continue;
    std::vector<double> Output(Instance.NumSamples);
    runtime::ExecutionStats ExecStats;
    Kernel->execute(Instance.Data.data(), Output.data(),
                    Instance.NumSamples, &ExecStats);
    const gpusim::GpuExecutionStats &Stats = ExecStats.Gpu;
    Compute += Stats.ComputeNs;
    Transfer += Stats.TransferNs;
    Launch += Stats.LaunchNs;
  }
  double Total = static_cast<double>(Compute + Transfer + Launch);
  Breakdown Result;
  if (Total > 0) {
    Result.ComputePct = 100.0 * static_cast<double>(Compute) / Total;
    Result.TransferPct = 100.0 * static_cast<double>(Transfer) / Total;
    Result.LaunchPct = 100.0 * static_cast<double>(Launch) / Total;
    Result.TotalMs = Total * 1e-6;
  }
  return Result;
}

void BM_GpuExecution(benchmark::State &State) {
  bool Noisy = State.range(0) != 0;
  std::vector<SpeakerInstance> Instances = makeSpeakerSet(Noisy);
  spn::QueryConfig Query;
  Query.SupportMarginal = Noisy;
  CompilerOptions Options;
  Options.OptLevel = 2;
  Options.TheTarget = Target::GPU;
  Options.GpuBlockSize = 64;
  Expected<CompiledKernel> Kernel =
      compileModel(Instances[0].Model, Query, Options);
  if (!Kernel) {
    State.SkipWithError("compile failed");
    return;
  }
  std::vector<double> Output(Instances[0].NumSamples);
  runtime::ExecutionStats ExecStats;
  for (auto _ : State)
    Kernel->execute(Instances[0].Data.data(), Output.data(),
                    Instances[0].NumSamples, &ExecStats);
  const gpusim::GpuExecutionStats &Stats = ExecStats.Gpu;
  State.counters["sim_transfer_pct"] = Stats.transferFraction() * 100.0;
  State.counters["sim_total_ms"] =
      static_cast<double>(Stats.totalNs()) * 1e-6;
}
BENCHMARK(BM_GpuExecution)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printHeader("Fig. 9",
              "GPU execution-time breakdown (simulated device clock)");
  for (bool Noisy : {false, true}) {
    Breakdown Result = measure(Noisy);
    std::printf("%-18s compute %5.1f%%   data movement %5.1f%%   "
                "launch %4.1f%%   (total %9.3f ms)\n",
                Noisy ? "noisy+marginal" : "clean", Result.ComputePct,
                Result.TransferPct, Result.LaunchPct, Result.TotalMs);
  }
  std::printf("paper shape: data movement exceeds 60%% of GPU execution "
              "time in both scenarios\n");
  benchmark::Shutdown();
  return 0;
}
