//===- spnc-modelgen.cpp - Example model generator ------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the serialized example models under `examples/models/`.
/// The generators are deterministic (seeded xoshiro, see
/// support/Random.h), so the emitted `.spnb` bytes are reproducible on
/// any platform; CI regenerates them and runs `spnc-cli
/// --verify-each-stage --pipeline-report` over each.
///
/// Usage:
///   spnc-modelgen OUTPUT_DIR [--ratspn-classes N]
///
/// `--ratspn-classes N` instead emits `ratspn_class<k>.spnb` for k in
/// [0, N): N structurally-isomorphic RAT-SPN class models (shared
/// random structure, per-class weights) — the canonical merge-group
/// fleet for `--merge-models` smoke tests (docs/merging.md).
///
//===----------------------------------------------------------------------===//

#include "frontend/Serializer.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace spnc;

int main(int Argc, char **Argv) {
  if (Argc != 2 && !(Argc == 4 &&
                     std::string(Argv[2]) == "--ratspn-classes")) {
    std::fprintf(stderr,
                 "usage: spnc-modelgen OUTPUT_DIR [--ratspn-classes N]\n");
    return 2;
  }
  std::string Dir = Argv[1];

  std::vector<std::pair<std::string, spn::Model>> Models;

  if (Argc == 4) {
    int NumClasses = std::atoi(Argv[3]);
    if (NumClasses < 1 || NumClasses > 1000) {
      std::fprintf(stderr, "invalid class count '%s'\n", Argv[3]);
      return 2;
    }
    workloads::RatSpnOptions Rat;
    Rat.NumFeatures = 16;
    Rat.Depth = 2;
    Rat.Replicas = 2;
    Rat.SumsPerRegion = 3;
    Rat.LeafDistributions = 4;
    Rat.Seed = 101;
    for (int Class = 0; Class < NumClasses; ++Class)
      Models.emplace_back(
          "ratspn_class" + std::to_string(Class) + ".spnb",
          workloads::generateRatSpn(Rat,
                                    static_cast<unsigned>(Class)));
  } else {

    // Two speaker-identification SPNs (paper §V-A shape) at different
    // seeds/sizes — Gaussian-heavy graphs with histogram leaves.
    workloads::SpeakerModelOptions Speaker;
    Speaker.TargetOperations = 600;
    Speaker.Seed = 42;
    Models.emplace_back("speaker_small.spnb",
                        workloads::generateSpeakerModel(Speaker));
    Speaker.TargetOperations = 2569; // the paper's average model size
    Speaker.Seed = 7;
    Models.emplace_back("speaker_paper_avg.spnb",
                        workloads::generateSpeakerModel(Speaker));

    // One small RAT-SPN class model (paper §V-B shape) — deep tensorized
    // structure exercising partitioning-sized graphs.
    workloads::RatSpnOptions Rat = workloads::ratSpnSmallScale();
    Rat.NumFeatures = 64;
    Rat.Depth = 3;
    Rat.Replicas = 2;
    Rat.SumsPerRegion = 4;
    Rat.LeafDistributions = 8;
    Models.emplace_back("ratspn_tiny.spnb",
                        workloads::generateRatSpn(Rat, 0));
  }

  for (const auto &[Name, Model] : Models) {
    std::string Path = Dir + "/" + Name;
    if (failed(spn::saveModel(Model, Path))) {
      std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
      return 1;
    }
    spn::ModelStats Stats = Model.computeStats();
    std::fprintf(stderr, "wrote %s: %u features, %zu nodes\n",
                 Path.c_str(), Model.getNumFeatures(), Stats.NumNodes);
  }
  return 0;
}
