# Empty compiler generated dependencies file for example_speaker_identification.
# This may be replaced when dependencies are built.
