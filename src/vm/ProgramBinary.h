//===- ProgramBinary.h - Binary encoding of kernel programs -------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of `KernelProgram`s — the analog of the object
/// code / CUBIN module the paper's pipeline produces. The GPU compile
/// pipeline encodes the device portion into this format and attaches it
/// to the host module (paper §IV-C); it also enables caching compiled
/// kernels on disk.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_VM_PROGRAMBINARY_H
#define SPNC_VM_PROGRAMBINARY_H

#include "support/Expected.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <span>
#include <vector>

namespace spnc {
namespace vm {

/// Encodes \p Program into a self-contained byte blob.
std::vector<uint8_t> encodeProgram(const KernelProgram &Program);

/// Decodes a program previously produced by encodeProgram.
Expected<KernelProgram> decodeProgram(std::span<const uint8_t> Blob);

} // namespace vm
} // namespace spnc

#endif // SPNC_VM_PROGRAMBINARY_H
