//===- support_test.cpp - Support library tests ----------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Expected.h"
#include "support/Future.h"
#include "support/Hashing.h"
#include "support/Histogram.h"
#include "support/LogicalResult.h"
#include "support/Random.h"
#include "support/RawOStream.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>

using namespace spnc;

namespace {

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

struct Animal {
  enum class Kind { Dog, Cat } K;
  explicit Animal(Kind K) : K(K) {}
};
struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) { return A->K == Animal::Kind::Dog; }
};
struct Cat : Animal {
  Cat() : Animal(Kind::Cat) {}
  static bool classof(const Animal *A) { return A->K == Animal::Kind::Cat; }
};

TEST(CastingTest, IsaCastDynCast) {
  Dog D;
  Animal *A = &D;
  EXPECT_TRUE(isa<Dog>(A));
  EXPECT_FALSE(isa<Cat>(A));
  EXPECT_EQ(cast<Dog>(A), &D);
  EXPECT_EQ(dyn_cast<Dog>(A), &D);
  EXPECT_EQ(dyn_cast<Cat>(A), nullptr);
  EXPECT_EQ(dyn_cast_or_null<Dog>(static_cast<Animal *>(nullptr)),
            nullptr);
  EXPECT_TRUE(isa_and_nonnull<Dog>(A));
  EXPECT_FALSE(isa_and_nonnull<Dog>(static_cast<Animal *>(nullptr)));
  const Animal *CA = &D;
  EXPECT_TRUE(isa<Dog>(CA));
  EXPECT_EQ(cast<Dog>(CA), &D);
}

//===----------------------------------------------------------------------===//
// LogicalResult and Expected
//===----------------------------------------------------------------------===//

TEST(LogicalResultTest, States) {
  EXPECT_TRUE(succeeded(success()));
  EXPECT_TRUE(failed(failure()));
  EXPECT_TRUE(failed(LogicalResult::success(false)));
  EXPECT_TRUE(succeeded(LogicalResult::failure(false)));
}

TEST(ExpectedTest, ValueAndError) {
  Expected<int> Good(42);
  ASSERT_TRUE(static_cast<bool>(Good));
  EXPECT_EQ(*Good, 42);
  EXPECT_EQ(Good.takeValue(), 42);

  Expected<int> Bad(makeError("boom"));
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.getError().message(), "boom");
}

TEST(ExpectedTest, MoveOnlyPayload) {
  Expected<std::unique_ptr<int>> Value(std::make_unique<int>(7));
  ASSERT_TRUE(static_cast<bool>(Value));
  std::unique_ptr<int> Taken = Value.takeValue();
  EXPECT_EQ(*Taken, 7);
}

//===----------------------------------------------------------------------===//
// Hashing, strings, streams
//===----------------------------------------------------------------------===//

TEST(HashingTest, CombineIsOrderSensitive) {
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
  EXPECT_EQ(hashCombine(1, 2, 3), hashCombine(1, 2, 3));
  std::vector<int> A{1, 2, 3}, B{3, 2, 1};
  EXPECT_NE(hashRange(A.begin(), A.end()), hashRange(B.begin(), B.end()));
}

TEST(StringUtilsTest, FormatAndSplit) {
  EXPECT_EQ(formatString("%s=%d", "x", 7), "x=7");
  EXPECT_EQ(formatString("%.2f", 1.239), "1.24");
  std::vector<std::string> Pieces = splitString("a,b,,c", ',');
  ASSERT_EQ(Pieces.size(), 4u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[2], "");
  EXPECT_EQ(Pieces[3], "c");
}

TEST(RawOStreamTest, FormatsValues) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS << "x=" << 42 << ' ' << int64_t(-7) << ' ' << uint64_t(8) << ' '
     << 2.5 << ' ' << true;
  OS.indent(3) << "end";
  EXPECT_EQ(Buffer, "x=42 -7 8 2.5 true   end");
}

//===----------------------------------------------------------------------===//
// RNG
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicStreams) {
  Rng A(123), B(123), C(124);
  bool Differs = false;
  for (int I = 0; I < 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    if (VA != C.next())
      Differs = true;
  }
  EXPECT_TRUE(Differs);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng R(7);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double X = R.uniform();
    ASSERT_GE(X, 0.0);
    ASSERT_LT(X, 1.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng R(9);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double X = R.normal(2.0, 3.0);
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(Var), 3.0, 0.1);
}

TEST(RngTest, UniformIntBounds) {
  Rng R(5);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.uniformInt(7), 7u);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
  // Reusable after wait().
  Pool.submit([&Counter] { Counter += 10; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 110);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(1000, [&](size_t I) { ++Hits[I]; });
  for (const auto &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
  Pool.parallelFor(0, [&](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForZeroItemsReturnsImmediately) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.parallelFor(0, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
  // The pool stays usable afterwards.
  Pool.parallelFor(3, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 3);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanWorkers) {
  ThreadPool Pool(8);
  std::vector<std::atomic<int>> Hits(3);
  Pool.parallelFor(3, [&](size_t I) { ++Hits[I]; });
  // Each item runs exactly once even though most workers get no chunk.
  for (const auto &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotDeadlockWait) {
  ThreadPool Pool(4);
  std::atomic<int> Completed{0};
  for (int I = 0; I < 16; ++I)
    Pool.submit([&Completed, I] {
      if (I == 5)
        throw std::runtime_error("task failure");
      ++Completed;
    });
  // wait() must return (not hang on the never-decremented counter a
  // naive pool would leak) and surface the first task exception.
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Completed.load(), 15);
  // The failure is consumed: the pool keeps working and the next wait
  // is clean.
  Pool.submit([&Completed] { ++Completed; });
  Pool.wait();
  EXPECT_EQ(Completed.load(), 16);
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskException) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  EXPECT_THROW(Pool.parallelFor(100,
                                [&](size_t I) {
                                  if (I == 50)
                                    throw std::runtime_error("boom");
                                  ++Ran;
                                }),
               std::runtime_error);
  // Other chunks still completed; only the throwing chunk aborted.
  EXPECT_GT(Ran.load(), 0);
}

//===----------------------------------------------------------------------===//
// Future
//===----------------------------------------------------------------------===//

TEST(FutureTest, DeliversValueAcrossThreads) {
  Promise<int> ThePromise;
  Future<int> TheFuture = ThePromise.getFuture();
  EXPECT_TRUE(TheFuture.valid());
  EXPECT_FALSE(TheFuture.ready());
  EXPECT_FALSE(ThePromise.isSet());
  // A bounded wait on a pending future times out instead of hanging.
  EXPECT_FALSE(TheFuture.waitFor(1000));

  std::thread Producer([P = std::move(ThePromise)]() mutable {
    P.set(42);
  });
  EXPECT_EQ(TheFuture.get(), 42);
  EXPECT_TRUE(TheFuture.ready());
  // Copies observe the same state.
  Future<int> Copy = TheFuture;
  EXPECT_EQ(Copy.take(), 42);
  Producer.join();
}

TEST(FutureTest, DefaultConstructedIsInvalid) {
  Future<int> TheFuture;
  EXPECT_FALSE(TheFuture.valid());
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram H;
  for (uint64_t V = 0; V < 16; ++V)
    H.record(V);
  EXPECT_EQ(H.getCount(), 16u);
  EXPECT_EQ(H.getMin(), 0u);
  EXPECT_EQ(H.getMax(), 15u);
  EXPECT_DOUBLE_EQ(H.mean(), 7.5);
  EXPECT_EQ(H.quantile(0.0), 0u);
  EXPECT_EQ(H.quantile(0.5), 8u);
  EXPECT_EQ(H.quantile(1.0), 15u);
}

TEST(HistogramTest, QuantilesBoundedRelativeError) {
  Histogram H;
  // A latency-like distribution spanning several decades.
  for (uint64_t V = 1000; V <= 1000000; V += 997)
    H.record(V);
  uint64_t P50 = H.quantile(0.5);
  // The true median is ~500500; the log-bucketed estimate must land
  // within the documented 12.5% relative error.
  EXPECT_GT(P50, 500500ull * 7 / 8);
  EXPECT_LT(P50, 500500ull * 9 / 8);
  EXPECT_GE(H.quantile(0.99), P50);
  EXPECT_GE(H.getMax(), H.quantile(0.999));
  EXPECT_LE(H.getMin(), H.quantile(0.001));
}

TEST(HistogramTest, MergeCombinesPopulations) {
  Histogram A, B;
  A.record(10);
  A.record(20);
  B.record(30);
  A.merge(B);
  EXPECT_EQ(A.getCount(), 3u);
  EXPECT_EQ(A.getSum(), 60u);
  EXPECT_EQ(A.getMin(), 10u);
  EXPECT_EQ(A.getMax(), 30u);
  // Empty histograms merge as no-ops.
  Histogram Empty;
  A.merge(Empty);
  EXPECT_EQ(A.getCount(), 3u);
  EXPECT_EQ(Empty.quantile(0.5), 0u);
}

TEST(HistogramTest, MergeOfTwoEmptiesStaysEmpty) {
  Histogram A, B;
  A.merge(B);
  EXPECT_EQ(A.getCount(), 0u);
  EXPECT_EQ(A.getSum(), 0u);
  EXPECT_EQ(A.getMin(), 0u);
  EXPECT_EQ(A.getMax(), 0u);
  EXPECT_EQ(A.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(A.mean(), 0.0);
  // Still usable after the empty merge.
  A.record(7);
  EXPECT_EQ(A.getCount(), 1u);
  EXPECT_EQ(A.getMin(), 7u);
}

TEST(HistogramTest, MergeOfDisjointRangesKeepsExactExtremes) {
  // The serving layer merges per-shard latency histograms whose ranges
  // need not overlap (a fast shard and a slow shard). Min/max/count/sum
  // are tracked exactly and must survive the merge in both directions.
  Histogram Fast, Slow;
  for (uint64_t V = 100; V < 200; V += 10)
    Fast.record(V);
  for (uint64_t V = 1000000; V < 2000000; V += 100000)
    Slow.record(V);

  Histogram Merged = Fast;
  Merged.merge(Slow);
  EXPECT_EQ(Merged.getCount(), Fast.getCount() + Slow.getCount());
  EXPECT_EQ(Merged.getSum(), Fast.getSum() + Slow.getSum());
  EXPECT_EQ(Merged.getMin(), 100u);
  EXPECT_EQ(Merged.getMax(), 1900000u);

  // Merge order does not matter.
  Histogram Reversed = Slow;
  Reversed.merge(Fast);
  EXPECT_EQ(Reversed.getCount(), Merged.getCount());
  EXPECT_EQ(Reversed.getSum(), Merged.getSum());
  EXPECT_EQ(Reversed.getMin(), Merged.getMin());
  EXPECT_EQ(Reversed.getMax(), Merged.getMax());
  EXPECT_EQ(Reversed.getBuckets(), Merged.getBuckets());
}

TEST(HistogramTest, QuantilesAfterMergeMatchCombinedPopulation) {
  // Quantiles of a merged histogram must equal the quantiles of one
  // histogram fed the union of both populations — the property the
  // aggregated serving report relies on.
  Histogram A, B, Union;
  for (uint64_t V = 1000; V <= 100000; V += 331) {
    A.record(V);
    Union.record(V);
  }
  for (uint64_t V = 50000; V <= 5000000; V += 4177) {
    B.record(V);
    Union.record(V);
  }
  Histogram Merged = A;
  Merged.merge(B);
  ASSERT_EQ(Merged.getCount(), Union.getCount());
  for (double Q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99})
    EXPECT_EQ(Merged.quantile(Q), Union.quantile(Q)) << "Q=" << Q;
  EXPECT_EQ(Merged.getBuckets(), Union.getBuckets());
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer T;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + std::sqrt(static_cast<double>(I));
  EXPECT_GT(T.elapsedNs(), 0u);
  uint64_t First = T.elapsedNs();
  T.reset();
  EXPECT_LE(T.elapsedNs(), First + 1000000);
}

} // namespace
