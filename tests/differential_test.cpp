//===- differential_test.cpp - Compiled-vs-interpreter differential suite ------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-stage analog of the paper's correctness claim (§IV: a sequence
/// of semantics-preserving lowerings): for a population of randomly
/// generated SPNs, the compiled CPU executor must reproduce the
/// SPFlow-style reference interpreter (InterpreterEngine) to within
/// 1e-9 on log-likelihoods — for joint and marginal queries, with and
/// without task partitioning. The CPU legs compute in f64 (the query
/// pins the compute type), so their bound is a genuine
/// few-ulps-of-reassociation budget, not an f32 allowance. The GPU
/// legs run the same population through the simulated-GPU executor in
/// f32 with a matching relative tolerance.
///
//===----------------------------------------------------------------------===//

#include "backend/CppBackend.h"
#include "baselines/Baselines.h"
#include "runtime/Compiler.h"
#include "support/Random.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace spnc;
using namespace spnc::runtime;

namespace {

constexpr double kTolerance = 1e-9;
constexpr size_t kNumModels = 50;
constexpr size_t kNumSamples = 16;

/// One randomly drawn model+data scenario of the population.
struct Scenario {
  spn::Model Model;
  std::vector<double> JointData;
  std::vector<double> MarginalData;
};

/// Draws the \p Index-th random SPN of the population: speaker-shaped
/// graphs of varying size/leaf mix (reusing the seeded workload
/// generators, so the population is identical on every platform).
Scenario makeScenario(size_t Index) {
  Rng SizeRng(0x5eed5eedULL + Index);
  workloads::SpeakerModelOptions Options;
  Options.Seed = 1000 + Index;
  Options.TargetOperations =
      static_cast<unsigned>(120 + (SizeRng.next() % 600));
  Options.ContinuousFeatureFraction =
      0.3 + 0.5 * static_cast<double>(SizeRng.next() % 100) / 100.0;
  Scenario S{workloads::generateSpeakerModel(Options),
             workloads::generateSpeechData(Options, kNumSamples,
                                           9000 + Index),
             workloads::generateNoisySpeechData(Options, kNumSamples,
                                                9500 + Index,
                                                /*DropProbability=*/0.3)};
  return S;
}

/// Log-likelihoods of \p Engine over \p Data.
std::vector<double> runEngine(const ExecutionEngine &Engine,
                              const std::vector<double> &Data) {
  std::vector<double> Output(kNumSamples, 0.0);
  Engine.execute(Data.data(), Output.data(), kNumSamples);
  return Output;
}

/// Compiles \p Model for the CPU in f64 and checks its log-likelihoods
/// against the reference interpreter on \p Data.
void expectMatchesInterpreter(const Scenario &S,
                              const std::vector<double> &Data,
                              bool Marginal, uint32_t MaxPartitionSize,
                              size_t Index) {
  CompilerOptions Options;
  Options.TheTarget = Target::CPU;
  // Vary the optimization level and vector width across the population
  // so the differential net also covers the codegen design space.
  Options.OptLevel = static_cast<unsigned>(Index % 4);
  Options.Execution.VectorWidth = Index % 2 == 0 ? 8 : 1;
  Options.MaxPartitionSize = MaxPartitionSize;

  spn::QueryConfig Query;
  Query.LogSpace = true;
  Query.SupportMarginal = Marginal;
  Query.DataType = spn::ComputeType::F64;

  Expected<CompiledKernel> Kernel =
      compileModel(S.Model, Query, Options);
  ASSERT_TRUE(static_cast<bool>(Kernel)) << Kernel.getError().message();

  baselines::InterpreterEngine Interpreter(S.Model);
  std::vector<double> Reference = runEngine(Interpreter, Data);
  std::vector<double> Compiled = runEngine(Kernel->getEngine(), Data);

  for (size_t I = 0; I < kNumSamples; ++I) {
    ASSERT_TRUE(std::isfinite(Reference[I]))
        << "model " << Index << " sample " << I
        << ": reference not finite";
    EXPECT_NEAR(Compiled[I], Reference[I], kTolerance)
        << "model " << Index << " sample " << I
        << (Marginal ? " (marginal" : " (joint")
        << (MaxPartitionSize ? ", partitioned)" : ", unpartitioned)");
  }
}

/// Partition budget that actually splits these graphs (far below the
/// generated operation counts).
uint32_t partitionBudget(const Scenario &S) {
  size_t NumNodes = S.Model.computeStats().NumNodes;
  return static_cast<uint32_t>(NumNodes / 4 + 16);
}

/// Compiles \p Model for the simulated GPU and checks it against the
/// reference interpreter on \p Data. The GPU path computes in f32 (the
/// paper's device precision), so the bound is the f32-appropriate
/// relative+absolute allowance used by gpusim_test, not the f64 ulps
/// budget of the CPU legs.
void expectGpuMatchesInterpreter(const Scenario &S,
                                 const std::vector<double> &Data,
                                 bool Marginal,
                                 uint32_t MaxPartitionSize,
                                 size_t Index) {
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  Options.OptLevel = static_cast<unsigned>(Index % 4);
  Options.MaxPartitionSize = MaxPartitionSize;

  spn::QueryConfig Query;
  Query.LogSpace = true;
  Query.SupportMarginal = Marginal;
  Query.DataType = spn::ComputeType::F32;

  Expected<CompiledKernel> Kernel =
      compileModel(S.Model, Query, Options);
  ASSERT_TRUE(static_cast<bool>(Kernel)) << Kernel.getError().message();

  baselines::InterpreterEngine Interpreter(S.Model);
  std::vector<double> Reference = runEngine(Interpreter, Data);
  std::vector<double> Compiled = runEngine(Kernel->getEngine(), Data);

  for (size_t I = 0; I < kNumSamples; ++I) {
    ASSERT_TRUE(std::isfinite(Reference[I]))
        << "model " << Index << " sample " << I
        << ": reference not finite";
    double Bound = std::abs(Reference[I]) * 1e-4 + 1e-4;
    EXPECT_NEAR(Compiled[I], Reference[I], Bound)
        << "gpu model " << Index << " sample " << I
        << (Marginal ? " (marginal" : " (joint")
        << (MaxPartitionSize ? ", partitioned)" : ", unpartitioned)");
  }
}

TEST(DifferentialTest, JointUnpartitioned) {
  for (size_t I = 0; I < kNumModels; ++I) {
    Scenario S = makeScenario(I);
    expectMatchesInterpreter(S, S.JointData, /*Marginal=*/false,
                             /*MaxPartitionSize=*/0, I);
  }
}

TEST(DifferentialTest, JointPartitioned) {
  for (size_t I = 0; I < kNumModels; ++I) {
    Scenario S = makeScenario(I);
    expectMatchesInterpreter(S, S.JointData, /*Marginal=*/false,
                             partitionBudget(S), I);
  }
}

TEST(DifferentialTest, MarginalUnpartitioned) {
  for (size_t I = 0; I < kNumModels; ++I) {
    Scenario S = makeScenario(I);
    expectMatchesInterpreter(S, S.MarginalData, /*Marginal=*/true,
                             /*MaxPartitionSize=*/0, I);
  }
}

TEST(DifferentialTest, MarginalPartitioned) {
  for (size_t I = 0; I < kNumModels; ++I) {
    Scenario S = makeScenario(I);
    expectMatchesInterpreter(S, S.MarginalData, /*Marginal=*/true,
                             partitionBudget(S), I);
  }
}

// The GPU legs cover both query kinds and both partitioning regimes
// across the same 50-model population without quadrupling the suite's
// runtime: joint/unpartitioned and marginal/partitioned span the two
// axes.
TEST(DifferentialTest, GpuJointUnpartitioned) {
  for (size_t I = 0; I < kNumModels; ++I) {
    Scenario S = makeScenario(I);
    expectGpuMatchesInterpreter(S, S.JointData, /*Marginal=*/false,
                                /*MaxPartitionSize=*/0, I);
  }
}

TEST(DifferentialTest, GpuMarginalPartitioned) {
  for (size_t I = 0; I < kNumModels; ++I) {
    Scenario S = makeScenario(I);
    expectGpuMatchesInterpreter(S, S.MarginalData, /*Marginal=*/true,
                                partitionBudget(S), I);
  }
}

//===----------------------------------------------------------------------===//
// MPE differential legs (docs/queries.md): every compiled path must
// reproduce the interpreter oracle's completed assignment and
// max-product log-probability. Full-evidence rows exercise the pure
// upward max pass; the NaN-bearing marginal rows exercise the argmax
// traceback that completes the latent features.
//===----------------------------------------------------------------------===//

struct MpeResult {
  std::vector<double> Assignments;
  std::vector<double> LogProbs;
};

/// executeMpe over \p Data; fails the enclosing test when the engine
/// cannot serve MPE.
MpeResult runMpe(const ExecutionEngine &Engine,
                 const std::vector<double> &Data,
                 unsigned NumFeatures) {
  MpeResult R;
  R.Assignments.resize(kNumSamples * NumFeatures, 0.0);
  R.LogProbs.resize(kNumSamples, 0.0);
  EXPECT_TRUE(Engine.executeMpe(Data.data(), R.Assignments.data(),
                                R.LogProbs.data(), kNumSamples))
      << "engine refused executeMpe: " << Engine.describe();
  return R;
}

/// Exact-match check (f64 paths): assignment and log-probability both
/// within the few-ulps kTolerance of the interpreter oracle.
void expectMpeMatchesOracle(const ExecutionEngine &Engine,
                            const Scenario &S,
                            const std::vector<double> &Data,
                            size_t Index, const char *Leg) {
  unsigned NumFeatures = S.Model.getNumFeatures();
  baselines::InterpreterEngine Oracle(S.Model);
  MpeResult Want = runMpe(Oracle, Data, NumFeatures);
  MpeResult Got = runMpe(Engine, Data, NumFeatures);
  for (size_t I = 0; I < kNumSamples; ++I) {
    ASSERT_TRUE(std::isfinite(Want.LogProbs[I]))
        << Leg << " model " << Index << " sample " << I
        << ": oracle MPE log-probability not finite";
    EXPECT_NEAR(Got.LogProbs[I], Want.LogProbs[I], kTolerance)
        << Leg << " model " << Index << " sample " << I;
    for (unsigned F = 0; F < NumFeatures; ++F)
      EXPECT_NEAR(Got.Assignments[I * NumFeatures + F],
                  Want.Assignments[I * NumFeatures + F], kTolerance)
          << Leg << " model " << Index << " sample " << I
          << " feature " << F;
  }
}

/// Compiles \p S for the CPU VM with the MPE query in f64.
CompiledKernel compileVmMpe(const Scenario &S, size_t Index) {
  CompilerOptions Options;
  Options.TheTarget = Target::CPU;
  Options.OptLevel = static_cast<unsigned>(Index % 4);
  Options.Execution.VectorWidth = Index % 2 == 0 ? 8 : 1;
  spn::QueryConfig Query;
  Query.Kind = spn::QueryKind::Mpe;
  Query.DataType = spn::ComputeType::F64;
  Expected<CompiledKernel> Kernel =
      compileModel(S.Model, Query, Options);
  EXPECT_TRUE(static_cast<bool>(Kernel))
      << "model " << Index << ": " << Kernel.getError().message();
  return Kernel ? Kernel.takeValue() : CompiledKernel();
}

TEST(DifferentialTest, MpeVmFullAndPartialEvidence) {
  for (size_t I = 0; I < kNumModels; ++I) {
    Scenario S = makeScenario(I);
    CompiledKernel Kernel = compileVmMpe(S, I);
    ASSERT_TRUE(Kernel.getEngineShared() != nullptr);
    expectMpeMatchesOracle(Kernel.getEngine(), S, S.JointData, I,
                           "vm/full");
    expectMpeMatchesOracle(Kernel.getEngine(), S, S.MarginalData, I,
                           "vm/partial");
  }
}

TEST(DifferentialTest, MpeCppBackendFullAndPartialEvidence) {
  backend::CppBackendOptions CppOptions;
  CppOptions.ExtraFlags = {"-O0"}; // one host compile per model
  backend::CppBackend Cpp(CppOptions);
  std::string SkipReason;
  if (!Cpp.isAvailable(&SkipReason))
    GTEST_SKIP() << SkipReason;
  for (size_t I = 0; I < kNumModels; ++I) {
    Scenario S = makeScenario(I);
    CompilerOptions Options;
    Options.TheTarget = Target::CPU;
    spn::QueryConfig Query;
    Query.Kind = spn::QueryKind::Mpe;
    Query.DataType = spn::ComputeType::F64;
    Expected<CompilationPipeline> Pipeline =
        CompilationPipeline::create(Options);
    ASSERT_TRUE(static_cast<bool>(Pipeline));
    Expected<backend::CompiledArtifact> Artifact =
        Cpp.compile(*Pipeline, S.Model, Query);
    ASSERT_TRUE(static_cast<bool>(Artifact))
        << "model " << I << ": " << Artifact.getError().message();
    expectMpeMatchesOracle(*Artifact->Engine, S, S.JointData, I,
                           "cpp/full");
    expectMpeMatchesOracle(*Artifact->Engine, S, S.MarginalData, I,
                           "cpp/partial");
  }
}

/// GPU leg: the simulated device computes the upward pass in f32, so a
/// near-tie may legitimately resolve to a different argmax than the f64
/// oracle. The check is therefore on quality, not identity: the
/// assignment the GPU returns must score (under the f64 oracle's
/// max-product evaluator) within the f32 allowance of the true optimum,
/// and the reported log-probability must match to the same allowance.
TEST(DifferentialTest, MpeGpuSimulatorNearOracle) {
  for (size_t I = 0; I < kNumModels; ++I) {
    Scenario S = makeScenario(I);
    unsigned NumFeatures = S.Model.getNumFeatures();
    CompilerOptions Options;
    Options.TheTarget = Target::GPU;
    spn::QueryConfig Query;
    Query.Kind = spn::QueryKind::Mpe;
    Query.DataType = spn::ComputeType::F32;
    Expected<CompiledKernel> Kernel =
        compileModel(S.Model, Query, Options);
    ASSERT_TRUE(static_cast<bool>(Kernel))
        << "model " << I << ": " << Kernel.getError().message();

    baselines::InterpreterEngine Oracle(S.Model);
    for (const std::vector<double> *Data :
         {&S.JointData, &S.MarginalData}) {
      MpeResult Want = runMpe(Oracle, *Data, NumFeatures);
      MpeResult Got = runMpe(Kernel->getEngine(), *Data, NumFeatures);
      for (size_t Smp = 0; Smp < kNumSamples; ++Smp) {
        double Bound = std::abs(Want.LogProbs[Smp]) * 1e-4 + 1e-4;
        EXPECT_NEAR(Got.LogProbs[Smp], Want.LogProbs[Smp], Bound)
            << "gpu model " << I << " sample " << Smp;
        // Score the GPU's completed assignment with the oracle: with
        // full evidence evalMpe is the max-product value of exactly
        // that assignment.
        std::vector<double> Scratch(NumFeatures);
        double GpuScore = S.Model.evalMpe(
            std::span<const double>(
                &Got.Assignments[Smp * NumFeatures], NumFeatures),
            std::span<double>(Scratch));
        EXPECT_NEAR(GpuScore, Want.LogProbs[Smp], Bound)
            << "gpu model " << I << " sample " << Smp
            << ": assignment scores off-optimum";
      }
    }
  }
}

/// The interpreter itself must agree with the model's reference
/// evaluator — anchors the differential chain to the ground truth.
TEST(DifferentialTest, InterpreterMatchesReferenceEvaluator) {
  Scenario S = makeScenario(0);
  baselines::InterpreterEngine Interpreter(S.Model);
  std::vector<double> Output = runEngine(Interpreter, S.JointData);
  unsigned NumFeatures = S.Model.getNumFeatures();
  for (size_t I = 0; I < kNumSamples; ++I) {
    double Reference = S.Model.evalLogLikelihood(std::span<const double>(
        &S.JointData[I * NumFeatures], NumFeatures));
    EXPECT_NEAR(Output[I], Reference, kTolerance) << "sample " << I;
  }
}

} // namespace
