//===- bench_serving.cpp - Batched serving vs per-request execution -------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-loop load generator for the serving layer: K client threads
/// issue single-sample requests back-to-back, either executing each
/// request directly on the shared engine (the per-request baseline, one
/// engine call per sample) or through the `InferenceServer` (requests
/// coalesced into micro-batches). The per-request baseline wastes the
/// engine's SIMD lanes and per-call overhead on one sample at a time —
/// the same effect the paper's batch-size sweeps quantify (§V) — so
/// batched serving must win on throughput once enough clients supply
/// concurrent arrivals. items_per_second counts samples.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "serving/InferenceServer.h"
#include "tuning/Tuner.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace spnc;
using namespace spnc::bench;
using namespace spnc::runtime;
using namespace spnc::serving;

namespace {

/// Requests per client per iteration (kept modest: google-benchmark
/// multiplies by iterations).
size_t requestsPerClient() { return fullScale() ? 512 : 128; }

struct ServingWorkload {
  spn::Model Model;
  std::vector<double> Data;
  size_t NumSamples = 0;
  unsigned NumFeatures = 0;
};

const ServingWorkload &workload() {
  static ServingWorkload W = [] {
    workloads::SpeakerModelOptions Options;
    Options.Seed = 3;
    // A large-end speaker model: per-sample execution cost must
    // dominate scheduling overhead for the batching comparison to
    // measure lane amortization rather than context switches.
    Options.TargetOperations = 8000;
    ServingWorkload Wl{workloads::generateSpeakerModel(Options), {}, 0,
                       0};
    Wl.NumSamples = 2048;
    Wl.Data = workloads::generateSpeechData(Options, Wl.NumSamples, 11);
    Wl.NumFeatures = Wl.Model.getNumFeatures();
    return Wl;
  }();
  return W;
}

CompilerOptions servingCompilerOptions() {
  CompilerOptions Options;
  Options.OptLevel = 2;
  Options.Execution.VectorWidth = 8;
  return Options;
}

/// Per-request baseline: every client calls the engine itself with its
/// single sample — no batching, full per-call overhead per sample.
void BM_PerRequestExecution(benchmark::State &State) {
  const ServingWorkload &W = workload();
  unsigned Clients = static_cast<unsigned>(State.range(0));
  KernelCache Cache;
  Expected<CompiledKernel> Kernel = Cache.getOrCompile(
      W.Model, spn::QueryConfig(), servingCompilerOptions());
  if (!Kernel) {
    State.SkipWithError(Kernel.getError().message().c_str());
    return;
  }
  size_t PerClient = requestsPerClient();
  for (auto _ : State) {
    std::vector<std::thread> Threads;
    Threads.reserve(Clients);
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        double Output = 0.0;
        for (size_t R = 0; R < PerClient; ++R) {
          size_t Index = (C * PerClient + R) % W.NumSamples;
          Kernel->execute(W.Data.data() + Index * W.NumFeatures,
                          &Output, 1);
          benchmark::DoNotOptimize(Output);
        }
      });
    for (std::thread &Thread : Threads)
      Thread.join();
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Clients) *
                          static_cast<int64_t>(PerClient));
  State.counters["clients"] = Clients;
}

/// The spnc-tune result for the serving workload, searched once per
/// process with a small budget (the EXPERIMENTS.md tuned-vs-default
/// numbers come from this leg vs BM_BatchedServing). Falls back to the
/// defaults if the search fails.
const tuning::TunedConfig &tunedConfig() {
  static tuning::TunedConfig Config = [] {
    workloads::SpeakerModelOptions Options;
    Options.Seed = 3;
    Options.TargetOperations = 8000;
    tuning::ServingEvaluatorOptions EvalOptions;
    EvalOptions.Clients = 8;
    EvalOptions.RequestsPerClient = fullScale() ? 64 : 16;
    tuning::ServingEvaluator Eval(
        workloads::generateSpeakerModel(Options), spn::QueryConfig(),
        EvalOptions);
    tuning::SearchSpace Space = tuning::SearchSpace::makeDefault();
    tuning::TunerOptions TunerOptions;
    // 12 evaluations cover the full serving-knob sweep (the leading
    // knobs of the default space); full scale also reaches the compile
    // knobs.
    TunerOptions.MaxEvaluations = fullScale() ? 32 : 12;
    TunerOptions.RandomRestarts = 0;
    tuning::Tuner TheTuner(Space, Eval, tuning::Objective{},
                           TunerOptions);
    Expected<tuning::TunerResult> Result = TheTuner.run();
    if (!Result)
      return tuning::TunedConfig{};
    return Space.materialize(Result->Best.Candidate);
  }();
  return Config;
}

/// Batched serving: the same client load submitted through the
/// InferenceServer, which coalesces concurrent arrivals into
/// micro-batches before touching the engine.
void BM_BatchedServing(benchmark::State &State) {
  const ServingWorkload &W = workload();
  unsigned Clients = static_cast<unsigned>(State.range(0));
  ServerConfig Config;
  Config.MaxBatchSamples = 256;
  // The co-batching window must cover the spread of client re-submits
  // after a batch completes (scheduling skew, not arrival rate: the
  // closed-loop clients all wake when their round's batch finishes).
  // Too short and batches stay lane-starved below the vector width;
  // this window reliably coalesces the full client set.
  Config.MaxQueueDelayUs = 500;
  Config.MaxQueueDepth = 0; // closed loop; no admission pressure
  Config.NumWorkers = 2;
  InferenceServer Server(Config);
  if (std::optional<Error> Err =
          Server.addModel("speaker", W.Model, spn::QueryConfig(),
                          servingCompilerOptions())) {
    State.SkipWithError(Err->message().c_str());
    return;
  }
  size_t PerClient = requestsPerClient();
  std::atomic<uint64_t> Failures{0};
  for (auto _ : State) {
    std::vector<std::thread> Threads;
    Threads.reserve(Clients);
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        for (size_t R = 0; R < PerClient; ++R) {
          size_t Index = (C * PerClient + R) % W.NumSamples;
          InferenceResult Result =
              Server
                  .submit("speaker",
                          W.Data.data() + Index * W.NumFeatures, 1)
                  .take();
          if (Result.Status != RequestStatus::Ok)
            ++Failures;
          benchmark::DoNotOptimize(Result.LogLikelihoods);
        }
      });
    for (std::thread &Thread : Threads)
      Thread.join();
  }
  if (Failures.load() > 0)
    State.SkipWithError("serving requests failed");
  ServerStats Stats = Server.getStats();
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Clients) *
                          static_cast<int64_t>(PerClient));
  State.counters["clients"] = Clients;
  State.counters["mean_batch"] = Stats.meanBatchSize();
  Server.shutdown();
}

/// Batched serving under the autotuned configuration: server knobs and
/// compile options both come from a small spnc-tune search instead of
/// the hand-picked constants above.
void BM_TunedBatchedServing(benchmark::State &State) {
  const ServingWorkload &W = workload();
  unsigned Clients = static_cast<unsigned>(State.range(0));
  const tuning::TunedConfig &Tuned = tunedConfig();
  ServerConfig Config = Tuned.Server;
  Config.MaxQueueDepth = 0; // closed loop; no admission pressure
  InferenceServer Server(Config);
  if (std::optional<Error> Err = Server.addModel(
          "speaker", W.Model, spn::QueryConfig(), Tuned.Compile)) {
    State.SkipWithError(Err->message().c_str());
    return;
  }
  size_t PerClient = requestsPerClient();
  std::atomic<uint64_t> Failures{0};
  for (auto _ : State) {
    std::vector<std::thread> Threads;
    Threads.reserve(Clients);
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        for (size_t R = 0; R < PerClient; ++R) {
          size_t Index = (C * PerClient + R) % W.NumSamples;
          InferenceResult Result =
              Server
                  .submit("speaker",
                          W.Data.data() + Index * W.NumFeatures, 1)
                  .take();
          if (Result.Status != RequestStatus::Ok)
            ++Failures;
          benchmark::DoNotOptimize(Result.LogLikelihoods);
        }
      });
    for (std::thread &Thread : Threads)
      Thread.join();
  }
  if (Failures.load() > 0)
    State.SkipWithError("serving requests failed");
  ServerStats Stats = Server.getStats();
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Clients) *
                          static_cast<int64_t>(PerClient));
  State.counters["clients"] = Clients;
  State.counters["mean_batch"] = Stats.meanBatchSize();
  State.counters["tuned_workers"] = Tuned.Server.NumWorkers;
  State.counters["tuned_vector_width"] =
      Tuned.Compile.Execution.VectorWidth;
  State.counters["tuned_max_batch"] =
      static_cast<double>(Tuned.Server.MaxBatchSamples);
  State.counters["tuned_max_delay_us"] =
      static_cast<double>(Tuned.Server.MaxQueueDelayUs);
  Server.shutdown();
}

/// The shard-scaling workload: many small models spread over the
/// consistent-hash ring, so every shard owns a share of the routing
/// table and the per-shard batcher only scans its own queues. The
/// models are deliberately tiny — the sweep measures scheduler cost
/// (the batcher's O(queued-requests) scan per dispatched batch), not
/// engine time, because that is the term sharding divides by N.
struct ShardModelInstance {
  spn::Model Model;
  std::vector<double> Data;
  size_t NumSamples = 0;
  unsigned NumFeatures = 0;
  std::string Name;
};

const std::vector<ShardModelInstance> &shardModels() {
  static std::vector<ShardModelInstance> Models = [] {
    std::vector<ShardModelInstance> Instances;
    for (unsigned M = 0; M < 8; ++M) {
      workloads::SpeakerModelOptions Options;
      Options.Seed = 100 + M;
      Options.TargetOperations = 250 + 40 * M;
      ShardModelInstance Inst{
          workloads::generateSpeakerModel(Options), {}, 0, 0, {}};
      Inst.NumSamples = 256;
      Inst.Data =
          workloads::generateSpeechData(Options, Inst.NumSamples, 200 + M);
      Inst.NumFeatures = Inst.Model.getNumFeatures();
      Inst.Name = "speaker" + std::to_string(M);
      Instances.push_back(std::move(Inst));
    }
    return Instances;
  }();
  return Models;
}

/// One compile per model across every shard/client configuration: the
/// sweep compares scheduling, so kernels come from a shared cache.
KernelCache &shardKernelCache() {
  static KernelCache Cache;
  return Cache;
}

/// Shard-scaling sweep: range(0) shards x range(1) clients, each
/// client keeping a pipeline of single-sample requests in flight
/// across all eight models. Deep open-loop queues keep every shard's
/// batcher saturated: N shards run N independent batcher threads over
/// N-times-shorter queues (the batcher's deadline/wake scans are
/// O(queued requests) per iteration). On a multi-core host the shards
/// also run concurrently; on a single hardware thread only the
/// shorter scans help, so expect modest gains there.
void BM_ShardScaling(benchmark::State &State) {
  const std::vector<ShardModelInstance> &Models = shardModels();
  unsigned Shards = static_cast<unsigned>(State.range(0));
  unsigned Clients = static_cast<unsigned>(State.range(1));
  ServerConfig Config;
  // Small batches force many batcher iterations per client request;
  // zero delay dispatches as soon as work is queued.
  Config.MaxBatchSamples = 8;
  Config.MaxQueueDelayUs = 0;
  Config.MaxQueueDepth = 0; // open loop; no admission pressure
  Config.NumWorkers = 1;
  Config.NumShards = Shards;
  InferenceServer Server(Config, &shardKernelCache());
  for (const ShardModelInstance &Inst : Models) {
    if (std::optional<Error> Err =
            Server.addModel(Inst.Name, Inst.Model, spn::QueryConfig(),
                            servingCompilerOptions())) {
      State.SkipWithError(Err->message().c_str());
      return;
    }
  }
  const size_t Depth = 128; // in-flight requests per client
  size_t PerClient = std::max(requestsPerClient(), Depth);
  std::atomic<uint64_t> Failures{0};
  for (auto _ : State) {
    std::vector<std::thread> Threads;
    Threads.reserve(Clients);
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        for (size_t R = 0; R < PerClient; R += Depth) {
          std::vector<ResultFuture> Inflight;
          Inflight.reserve(Depth);
          for (size_t D = 0; D < Depth && R + D < PerClient; ++D) {
            size_t Seq = C * PerClient + R + D;
            const ShardModelInstance &Inst =
                Models[Seq % Models.size()];
            size_t Index = Seq % Inst.NumSamples;
            Inflight.push_back(Server.submit(
                Inst.Name, Inst.Data.data() + Index * Inst.NumFeatures,
                1));
          }
          for (ResultFuture &F : Inflight)
            if (F.take().Status != RequestStatus::Ok)
              ++Failures;
        }
      });
    for (std::thread &Thread : Threads)
      Thread.join();
  }
  if (Failures.load() > 0)
    State.SkipWithError("serving requests failed");
  ServerStats Stats = Server.getStats();
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Clients) *
                          static_cast<int64_t>(PerClient));
  State.counters["shards"] = Shards;
  State.counters["clients"] = Clients;
  State.counters["mean_batch"] = Stats.meanBatchSize();
  Server.shutdown();
}

struct TenantInstance {
  spn::Model Model;
  std::string Name;
};

/// Ten structurally-isomorphic RAT-SPN class models (shared random
/// structure, per-class weights) — the multi-tenant fleet merged-model
/// compilation exists for (docs/merging.md).
const std::vector<TenantInstance> &tenantModels() {
  static std::vector<TenantInstance> Models = [] {
    workloads::RatSpnOptions Rat;
    Rat.NumFeatures = 32;
    Rat.Depth = 3;
    Rat.Replicas = 2;
    Rat.SumsPerRegion = 4;
    Rat.LeafDistributions = 6;
    Rat.Seed = 77;
    std::vector<TenantInstance> Instances;
    for (unsigned Class = 0; Class < 10; ++Class)
      Instances.push_back({workloads::generateRatSpn(Rat, Class),
                           "tenant" + std::to_string(Class)});
    return Instances;
  }();
  return Models;
}

/// Multi-tenant serving over ten isomorphic models with mixed traffic
/// (every client interleaves tenants round-robin). range(0) selects
/// the mode — 0 registers each tenant unmerged (ten compiled kernels,
/// ten per-model queues), 1 registers the fleet with
/// `ServerConfig::MergeModels` (ONE parameterized kernel, requests of
/// different tenants coalescing into shared batches). range(1) selects
/// the load shape — 0 is thin closed-loop traffic (one request in
/// flight per client, the regime where per-tenant queues cannot batch
/// and cross-tenant coalescing is the only batching there is), 1 is a
/// saturated open loop (32 requests in flight per client, where
/// per-tenant backlogs batch fine on their own). Merging shrinks the
/// kernel-cache footprint 10x by construction; the measurement is what
/// cross-tenant coalescing does to throughput and batch sizes in each
/// regime.
void BM_MergedMultiTenant(benchmark::State &State) {
  const std::vector<TenantInstance> &Tenants = tenantModels();
  bool Merged = State.range(0) != 0;
  bool Saturated = State.range(1) != 0;
  unsigned NumFeatures = Tenants.front().Model.getNumFeatures();
  static const std::vector<double> Data = workloads::generateImageData(
      NumFeatures, static_cast<unsigned>(Tenants.size()), 512, 19,
      nullptr);

  KernelCache Cache;
  ServerConfig Config;
  Config.MergeModels = Merged;
  Config.MaxBatchSamples = 32;
  // Zero batching window: coalescing must come from natural queue
  // backlog, not from stalling requests — the fairest comparison, since
  // the merged leg's shared queue backs up while the unmerged leg's
  // per-tenant queues each see only a thin trickle.
  Config.MaxQueueDelayUs = 0;
  Config.MaxQueueDepth = 0; // open loop; no admission pressure
  Config.NumWorkers = 1;
  InferenceServer Server(Config, &Cache);
  for (const TenantInstance &Tenant : Tenants) {
    if (std::optional<Error> Err =
            Server.addModel(Tenant.Name, Tenant.Model,
                            spn::QueryConfig(),
                            servingCompilerOptions())) {
      State.SkipWithError(Err->message().c_str());
      return;
    }
  }

  const unsigned Clients = 8;
  const size_t Depth = Saturated ? 32 : 1; // in-flight per client
  size_t PerClient = std::max(requestsPerClient(), Depth);
  std::atomic<uint64_t> Failures{0};
  for (auto _ : State) {
    std::vector<std::thread> Threads;
    Threads.reserve(Clients);
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        for (size_t R = 0; R < PerClient; R += Depth) {
          std::vector<ResultFuture> Inflight;
          Inflight.reserve(Depth);
          for (size_t D = 0; D < Depth && R + D < PerClient; ++D) {
            // Round-robin with a per-client offset: every dispatch
            // window sees arrivals for several tenants at once.
            size_t Seq = C * PerClient + R + D;
            const TenantInstance &Tenant =
                Tenants[(C + Seq) % Tenants.size()];
            Inflight.push_back(Server.submit(
                Tenant.Name, Data.data() + (Seq % 512) * NumFeatures,
                1));
          }
          for (ResultFuture &F : Inflight)
            if (F.take().Status != RequestStatus::Ok)
              ++Failures;
        }
      });
    for (std::thread &Thread : Threads)
      Thread.join();
  }
  if (Failures.load() > 0)
    State.SkipWithError("serving requests failed");
  ServerStats Stats = Server.getStats();
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Clients) *
                          static_cast<int64_t>(PerClient));
  State.counters["tenants"] =
      static_cast<double>(Tenants.size());
  State.counters["kernels"] = static_cast<double>(Cache.size());
  State.counters["mean_batch"] = Stats.meanBatchSize();
  State.counters["cross_model_batches"] =
      static_cast<double>(Stats.CrossModelBatches);
  Server.shutdown();
}

/// Mixed-priority scheduling: bulk clients keep a deep backlog of
/// 64-sample requests queued while latency-sensitive probe clients
/// submit single samples closed-loop and time each round trip.
/// range(0) selects the discipline — 0 submits the probes as Bulk too
/// (single FIFO, the pre-sharding behaviour), 1 submits them as
/// Interactive so weighted fair queueing drains them ahead of the
/// backlog. The probe p99 is the headline: under FIFO a probe waits
/// behind the entire queued backlog, under WFQ behind at most the
/// batch in flight.
void BM_PrioritySchedulingP99(benchmark::State &State) {
  const ServingWorkload &W = workload();
  bool UseWfq = State.range(0) != 0;
  const unsigned BulkClients = 6;
  const unsigned ProbeClients = 2;
  const size_t BulkRequestSamples = 64;
  const size_t BulkDepth = 4; // pipelined bulk requests per client
  ServerConfig Config;
  Config.MaxBatchSamples = 64;
  Config.MaxQueueDelayUs = 0;
  Config.MaxQueueDepth = 0;
  Config.NumWorkers = 1;
  Config.NumShards = 1;
  Config.InteractiveWeight = 4;
  Config.BulkWeight = 1;
  InferenceServer Server(Config);
  if (std::optional<Error> Err =
          Server.addModel("speaker", W.Model, spn::QueryConfig(),
                          servingCompilerOptions())) {
    State.SkipWithError(Err->message().c_str());
    return;
  }
  size_t BulkPerClient = fullScale() ? 128 : 48;
  std::atomic<uint64_t> Failures{0};
  std::mutex LatencyMutex;
  std::vector<double> ProbeLatencyMs;
  for (auto _ : State) {
    std::atomic<bool> BulkDone{false};
    std::vector<std::thread> Threads;
    Threads.reserve(BulkClients + ProbeClients);
    for (unsigned C = 0; C < BulkClients; ++C)
      Threads.emplace_back([&, C] {
        for (size_t R = 0; R < BulkPerClient; R += BulkDepth) {
          std::vector<ResultFuture> Inflight;
          for (size_t D = 0; D < BulkDepth && R + D < BulkPerClient;
               ++D) {
            size_t Index = (C * BulkPerClient + R + D) %
                           (W.NumSamples - BulkRequestSamples);
            Inflight.push_back(Server.submit(
                "speaker", W.Data.data() + Index * W.NumFeatures,
                BulkRequestSamples));
          }
          for (ResultFuture &F : Inflight)
            if (F.take().Status != RequestStatus::Ok)
              ++Failures;
        }
      });
    // Probes run for exactly as long as the backlog drains, so every
    // measurement sees the mixed load.
    for (unsigned C = 0; C < ProbeClients; ++C)
      Threads.emplace_back([&, C] {
        std::vector<double> Local;
        size_t Probe = 0;
        while (!BulkDone.load(std::memory_order_relaxed)) {
          size_t Index = (C * 131 + Probe++) % W.NumSamples;
          auto Start = std::chrono::steady_clock::now();
          InferenceResult Result =
              Server
                  .submit("speaker",
                          W.Data.data() + Index * W.NumFeatures, 1,
                          /*DeadlineUs=*/0,
                          UseWfq ? Priority::Interactive
                                 : Priority::Bulk)
                  .take();
          auto End = std::chrono::steady_clock::now();
          if (Result.Status != RequestStatus::Ok)
            ++Failures;
          Local.push_back(
              std::chrono::duration<double, std::milli>(End - Start)
                  .count());
        }
        std::lock_guard<std::mutex> Lock(LatencyMutex);
        ProbeLatencyMs.insert(ProbeLatencyMs.end(), Local.begin(),
                              Local.end());
      });
    for (unsigned T = 0; T < BulkClients; ++T)
      Threads[T].join();
    BulkDone.store(true);
    for (unsigned T = BulkClients; T < Threads.size(); ++T)
      Threads[T].join();
  }
  if (Failures.load() > 0)
    State.SkipWithError("serving requests failed");
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(BulkClients) *
                          static_cast<int64_t>(BulkPerClient) *
                          static_cast<int64_t>(BulkRequestSamples));
  std::sort(ProbeLatencyMs.begin(), ProbeLatencyMs.end());
  auto Quantile = [&](double Q) {
    if (ProbeLatencyMs.empty())
      return 0.0;
    size_t Index = static_cast<size_t>(
        Q * static_cast<double>(ProbeLatencyMs.size() - 1));
    return ProbeLatencyMs[Index];
  };
  State.counters["wfq"] = UseWfq ? 1 : 0;
  State.counters["probes"] =
      static_cast<double>(ProbeLatencyMs.size());
  State.counters["probe_p50_ms"] = Quantile(0.50);
  State.counters["probe_p99_ms"] = Quantile(0.99);
  Server.shutdown();
}

BENCHMARK(BM_PerRequestExecution)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_BatchedServing)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_TunedBatchedServing)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ShardScaling)
    ->Args({1, 8})
    ->Args({1, 32})
    ->Args({2, 8})
    ->Args({2, 32})
    ->Args({4, 8})
    ->Args({4, 32})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_MergedMultiTenant)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_PrioritySchedulingP99)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
