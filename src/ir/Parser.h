//===- Parser.h - Generic textual IR parsing ---------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the generic operation syntax produced by Printer.h, so modules
/// round-trip through text — the debugging workflow MLIR users rely on.
/// Dialect ops are recognized through the context's operation registry
/// (unregistered names parse with conservative defaults).
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_PARSER_H
#define SPNC_IR_PARSER_H

#include "ir/BuiltinOps.h"
#include "support/Expected.h"

#include <string>

namespace spnc {
namespace ir {

/// Parses one top-level `builtin.module` from \p Source. On syntax errors
/// the Expected carries a message with line/column information.
Expected<OwningOpRef<ModuleOp>> parseSourceString(Context &Ctx,
                                                  const std::string &Source);

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_PARSER_H
