//===- Operation.h - The generic IR operation -------------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Operation` is the single runtime representation of every IR op (as in
/// MLIR): an interned name (OpInfo), operands with use-list links, typed
/// results, a sorted attribute dictionary and owned regions. Typed op
/// classes in the dialects are thin views over `Operation *`.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_IR_OPERATION_H
#define SPNC_IR_OPERATION_H

#include "ir/Attributes.h"
#include "ir/Context.h"
#include "ir/Region.h"
#include "ir/Value.h"

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace spnc {
namespace ir {

/// Transient description of an operation about to be created.
struct OperationState {
  std::string Name;
  std::vector<Value> Operands;
  std::vector<Type> ResultTypes;
  std::vector<NamedAttribute> Attributes;
  unsigned NumRegions = 0;

  OperationState() = default;
  explicit OperationState(std::string Name) : Name(std::move(Name)) {}

  void addOperand(Value V) { Operands.push_back(V); }
  void addOperands(std::span<const Value> Values) {
    Operands.insert(Operands.end(), Values.begin(), Values.end());
  }
  void addResultType(Type Ty) { ResultTypes.push_back(Ty); }
  void addAttribute(std::string AttrName, Attribute Attr) {
    Attributes.push_back(NamedAttribute{std::move(AttrName), Attr});
  }
  void addRegion() { ++NumRegions; }
};

class Operation {
public:
  /// Creates a detached operation from \p State. The result is owned by
  /// the caller until inserted into a block (use destroy() to free a
  /// detached op).
  static Operation *create(Context &Ctx, const OperationState &State);

  /// Frees a detached operation; all results must be unused.
  void destroy();

  Operation(const Operation &) = delete;
  Operation &operator=(const Operation &) = delete;

  Context &getContext() const { return *Ctx; }
  const OpInfo *getInfo() const { return Info; }
  const std::string &getName() const { return Info->Name; }
  bool isPure() const { return Info->IsPure; }
  bool isTerminator() const { return Info->IsTerminator; }

  //===--------------------------------------------------------------------===//
  // Operands
  //===--------------------------------------------------------------------===//

  unsigned getNumOperands() const { return NumOperands; }
  Value getOperand(unsigned Index) const {
    assert(Index < NumOperands && "operand index out of range");
    return Operands[Index].get();
  }
  void setOperand(unsigned Index, Value NewValue) {
    assert(Index < NumOperands && "operand index out of range");
    Operands[Index].set(NewValue);
  }
  OpOperand &getOpOperand(unsigned Index) {
    assert(Index < NumOperands && "operand index out of range");
    return Operands[Index];
  }
  std::vector<Value> getOperands() const {
    std::vector<Value> Result;
    Result.reserve(NumOperands);
    for (unsigned I = 0; I < NumOperands; ++I)
      Result.push_back(Operands[I].get());
    return Result;
  }

  //===--------------------------------------------------------------------===//
  // Results
  //===--------------------------------------------------------------------===//

  unsigned getNumResults() const { return NumResults; }
  Value getResult(unsigned Index = 0) const {
    assert(Index < NumResults && "result index out of range");
    return Value(&Results[Index]);
  }
  std::vector<Value> getResults() const {
    std::vector<Value> Result;
    Result.reserve(NumResults);
    for (unsigned I = 0; I < NumResults; ++I)
      Result.push_back(Value(&Results[I]));
    return Result;
  }
  /// True if no result of this op has a use.
  bool useEmpty() const {
    for (unsigned I = 0; I < NumResults; ++I)
      if (!getResult(I).useEmpty())
        return false;
    return true;
  }
  /// Re-points all uses of all results to the corresponding value in
  /// \p NewValues.
  void replaceAllUsesWith(std::span<const Value> NewValues) {
    assert(NewValues.size() == NumResults &&
           "replacement value count mismatch");
    for (unsigned I = 0; I < NumResults; ++I)
      getResult(I).replaceAllUsesWith(NewValues[I]);
  }

  //===--------------------------------------------------------------------===//
  // Attributes
  //===--------------------------------------------------------------------===//

  /// Returns the attribute named \p Name or the null attribute.
  Attribute getAttr(const std::string &Name) const;
  bool hasAttr(const std::string &Name) const {
    return static_cast<bool>(getAttr(Name));
  }
  /// Sets (or replaces) the attribute \p Name.
  void setAttr(const std::string &Name, Attribute Attr);
  /// Removes the attribute \p Name if present.
  void removeAttr(const std::string &Name);
  const std::vector<NamedAttribute> &getAttrs() const { return Attrs; }

  /// Convenience accessors with kind casts; assert on kind mismatch when
  /// the attribute is present, return the fallback when absent.
  int64_t getIntAttr(const std::string &Name, int64_t Fallback = 0) const;
  double getFloatAttr(const std::string &Name, double Fallback = 0.0) const;
  bool getBoolAttr(const std::string &Name, bool Fallback = false) const;

  //===--------------------------------------------------------------------===//
  // Regions and position
  //===--------------------------------------------------------------------===//

  unsigned getNumRegions() const {
    return static_cast<unsigned>(Regions.size());
  }
  Region &getRegion(unsigned Index = 0) {
    assert(Index < Regions.size() && "region index out of range");
    return *Regions[Index];
  }

  /// Returns the block containing this op (null if detached).
  Block *getBlock() const { return ParentBlock; }
  /// Returns the op owning the region containing this op, or null.
  Operation *getParentOp() const {
    return ParentBlock ? ParentBlock->getParentOp() : nullptr;
  }

  /// Unlinks this op from its block without destroying it.
  void remove();
  /// Unlinks and destroys this op.
  void erase();
  /// Moves this op directly before \p Other (same or different block).
  void moveBefore(Operation *Other);

  /// Position of this op in its parent block list.
  Block::iterator getIterator() const { return PositionInBlock; }

  //===--------------------------------------------------------------------===//
  // Traversal
  //===--------------------------------------------------------------------===//

  /// Post-order walk (nested ops first) over this op and all nested ops.
  /// The callback may erase the op it is given, but no other op in the
  /// same block.
  void walk(const std::function<void(Operation *)> &Fn);

  /// Drops all operand references (recursively through regions); used
  /// before bulk destruction.
  void dropAllReferences();

private:
  Operation(Context &Ctx, const OpInfo *Info, unsigned NumOperands,
            unsigned NumResults);
  ~Operation() = default;

  Context *Ctx;
  const OpInfo *Info;
  Block *ParentBlock = nullptr;
  Block::iterator PositionInBlock;
  unsigned NumOperands;
  unsigned NumResults;
  std::unique_ptr<OpOperand[]> Operands;
  std::unique_ptr<OpResultImpl[]> Results;
  /// Sorted by name for deterministic printing and hashing.
  std::vector<NamedAttribute> Attrs;
  std::vector<std::unique_ptr<Region>> Regions;

  friend class Block;
};

} // namespace ir
} // namespace spnc

#endif // SPNC_IR_OPERATION_H
