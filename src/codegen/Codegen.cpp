//===- Codegen.cpp - LoSPN to bytecode code generation -------------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <unordered_map>

using namespace spnc;
using namespace spnc::ir;
using namespace spnc::lospn;
using namespace spnc::codegen;
using namespace spnc::vm;

namespace {

// Shared with the weight-table binder (vm/ParamTable.cpp), which must
// reproduce this arithmetic bit-for-bit.
constexpr double kLogSqrt2Pi = vm::kLogSqrt2Pi;
constexpr double kInvSqrt2Pi = vm::kInvSqrt2Pi;

/// True if all histogram bucket bounds are integral (dense-table
/// eligible).
static bool bucketsAreIntegral(const std::vector<double> &Flat) {
  for (size_t I = 0; I < Flat.size(); I += 3)
    if (Flat[I] != std::floor(Flat[I]) ||
        Flat[I + 1] != std::floor(Flat[I + 1]))
      return false;
  return true;
}

/// Emits instructions for one task.
///
/// For MPE/sampling queries the emitter additionally builds the
/// downward `TracebackPlan` alongside the upward-pass instructions. The
/// plan references upward-pass registers (Choice nodes compare/weigh the
/// two combined operands), which is only sound under direct -O0-style
/// emission where every SSA value owns a distinct register for the whole
/// program; `emitKernelProgram` enforces that.
class TaskEmitter {
public:
  TaskEmitter(const CodegenOptions &Options, bool LogSpace,
              const std::unordered_map<ValueImpl *, uint32_t> &BufferIds,
              const std::vector<BufferInfo> &KernelBuffers,
              TracebackPlan *Plan)
      : Options(Options), Log(LogSpace), BufferIds(BufferIds),
        KernelBuffers(KernelBuffers), Plan(Plan) {}

  Expected<TaskProgram> emit(TaskOp Task) {
    // Kernel-level buffer for each task operand.
    std::vector<uint32_t> OperandBuffers;
    for (unsigned I = 0; I < Task->getNumOperands(); ++I)
      OperandBuffers.push_back(
          BufferIds.at(Task->getOperand(I).getImpl()));

    Block &TaskBlock = Task.getBody();
    for (Operation *Op : TaskBlock) {
      if (BatchReadOp Read = dyn_cast_op<BatchReadOp>(Op)) {
        uint32_t Reg = newReg();
        uint32_t Buffer = OperandBuffers[Op->getOperand(0).getIndex() - 1];
        Program.Loads.push_back(
            BufferAccess{Buffer, Read.getStaticIndex()});
        push(OpCode::Load, Reg,
             static_cast<uint32_t>(Program.Loads.size() - 1));
        RegOf[Op->getResult(0).getImpl()] = Reg;
        if (Plan &&
            KernelBuffers[Buffer].Role == BufferInfo::Kind::Input)
          FeatureOf[Op->getResult(0).getImpl()] = Read.getStaticIndex();
        continue;
      }
      if (BodyOp Body = dyn_cast_op<BodyOp>(Op)) {
        if (failed(emitBody(Body)))
          return makeError("unsupported operation in task body");
        continue;
      }
      if (BatchWriteOp Write = dyn_cast_op<BatchWriteOp>(Op)) {
        uint32_t Buffer =
            OperandBuffers[Op->getOperand(0).getIndex() - 1];
        for (unsigned I = 2; I < Op->getNumOperands(); ++I) {
          Program.Stores.push_back(BufferAccess{Buffer, I - 2});
          Instruction Inst;
          Inst.Op = OpCode::Store;
          Inst.Dst = RegOf.at(Op->getOperand(I).getImpl());
          Inst.A = static_cast<uint32_t>(Program.Stores.size() - 1);
          Program.Code.push_back(Inst);
        }
        continue;
      }
      return makeError(
          formatString("unsupported op '%s' in task during codegen",
                       Op->getName().c_str()));
    }
    Program.NumRegisters = NextReg;
    return std::move(Program);
  }

private:
  LogicalResult emitBody(BodyOp Body) {
    Block &Inner = Body.getBody();
    for (unsigned I = 0; I < Body->getNumOperands(); ++I) {
      RegOf[Inner.getArgument(I).getImpl()] =
          RegOf.at(Body->getOperand(I).getImpl());
      if (Plan) {
        auto It = FeatureOf.find(Body->getOperand(I).getImpl());
        if (It != FeatureOf.end())
          FeatureOf[Inner.getArgument(I).getImpl()] = It->second;
      }
    }

    for (Operation *Op : Inner) {
      if (isa_op<YieldOp>(Op)) {
        for (unsigned I = 0; I < Op->getNumOperands(); ++I)
          RegOf[Body->getResult(I).getImpl()] =
              RegOf.at(Op->getOperand(I).getImpl());
        // The yielded root probability is where the traceback starts.
        if (Plan && Op->getNumOperands() > 0)
          Plan->Root = PlanOf.at(Op->getOperand(0).getImpl());
        continue;
      }
      if (ConstantOp Const = dyn_cast_op<ConstantOp>(Op)) {
        uint32_t Reg = newReg();
        int64_t Param = paramIndexOf(Op);
        uint32_t Slot;
        if (Param >= 0) {
          // A tunable sum-weight constant: its own (never-pooled) slot,
          // rebindable from a weight table. The baked value is already
          // the log-weight in log space, so the binder applies the same
          // transform to the raw weight.
          Slot = paramPoolSlot(Const.getValue());
          addSite(ParamSlotKind::ConstPool,
                  Log ? ParamTransform::Log : ParamTransform::Identity,
                  Slot, Param);
        } else {
          Slot = poolConstant(Const.getValue());
        }
        push(OpCode::Const, Reg, Slot);
        RegOf[Op->getResult(0).getImpl()] = Reg;
        continue;
      }
      if (isa_op<MulOp>(Op)) {
        uint32_t Reg = newReg();
        push(Log ? OpCode::Add : OpCode::Mul, Reg, regOfOperand(Op, 0),
             regOfOperand(Op, 1));
        RegOf[Op->getResult(0).getImpl()] = Reg;
        if (Plan) {
          // A multiply with a constant factor is a weight application
          // (sum-child term): the traceback passes straight through to
          // the child. A multiply of two graph values is a product node:
          // both branches are part of the completion.
          Operation *DefA = Op->getOperand(0).getDefiningOp();
          Operation *DefB = Op->getOperand(1).getDefiningOp();
          bool ConstA = DefA && isa_op<ConstantOp>(DefA);
          bool ConstB = DefB && isa_op<ConstantOp>(DefB);
          PlanNode Node;
          if (ConstA != ConstB) {
            Node.Kind = PlanNodeKind::Pass;
            Node.A = PlanOf.at(Op->getOperand(ConstA ? 1 : 0).getImpl());
          } else {
            Node.Kind = PlanNodeKind::Both;
            Node.A = PlanOf.at(Op->getOperand(0).getImpl());
            Node.B = PlanOf.at(Op->getOperand(1).getImpl());
          }
          PlanOf[Op->getResult(0).getImpl()] = addPlanNode(Node);
        }
        continue;
      }
      if (isa_op<AddOp>(Op) || isa_op<MaxOp>(Op)) {
        // Sum-combine: lo_spn.add for joint/marginal/sampling queries,
        // lo_spn.max for MPE (max is monotonic under log, so OpCode::Max
        // serves both spaces). Left-associative chains plus the
        // "descend B only on a strictly greater value" traceback rule
        // give ties-to-lowest-child-index determinism.
        bool IsMax = isa_op<MaxOp>(Op);
        uint32_t Reg = newReg();
        push(IsMax ? OpCode::Max
                   : (Log ? OpCode::LogSumExp : OpCode::Add),
             Reg, regOfOperand(Op, 0), regOfOperand(Op, 1));
        RegOf[Op->getResult(0).getImpl()] = Reg;
        if (Plan) {
          PlanNode Node;
          Node.Kind = PlanNodeKind::Choice;
          Node.A = PlanOf.at(Op->getOperand(0).getImpl());
          Node.B = PlanOf.at(Op->getOperand(1).getImpl());
          Node.RegA = regOfOperand(Op, 0);
          Node.RegB = regOfOperand(Op, 1);
          PlanOf[Op->getResult(0).getImpl()] = addPlanNode(Node);
        }
        continue;
      }
      if (GaussianOp Gauss = dyn_cast_op<GaussianOp>(Op)) {
        GaussianParams Params;
        Params.Mean = Gauss.getMean();
        Params.InvStdDev = 1.0 / Gauss.getStdDev();
        Params.Coefficient =
            Log ? -std::log(Gauss.getStdDev()) - kLogSqrt2Pi
                : kInvSqrt2Pi / Gauss.getStdDev();
        Params.SupportMarginal = Gauss.getSupportMarginal();
        // For MPE, a marginalized (NaN) leaf contributes the density at
        // its mode (the mean) — the value the traceback will fill in —
        // instead of the marginal's 1.
        Params.MarginalValue =
            Options.Query == vm::QueryKind::Mpe
                ? Params.Coefficient
                : (Log ? 0.0 : 1.0);
        Program.Gaussians.push_back(Params);
        uint32_t GaussIndex =
            static_cast<uint32_t>(Program.Gaussians.size() - 1);
        if (int64_t Param = paramIndexOf(Op); Param >= 0) {
          // Canonical order: mean, then stddev. The stddev feeds two
          // derived slots. MarginalValue is 0/1 for joint/marginal
          // queries — structural, stays baked.
          addSite(ParamSlotKind::GaussianMean, ParamTransform::Identity,
                  GaussIndex, Param);
          addSite(ParamSlotKind::GaussianInvStdDev,
                  ParamTransform::Reciprocal, GaussIndex, Param + 1);
          addSite(ParamSlotKind::GaussianCoefficient,
                  Log ? ParamTransform::LogGaussCoefficient
                      : ParamTransform::LinearGaussCoefficient,
                  GaussIndex, Param + 1);
        }
        uint32_t Reg = newReg();
        push(Log ? OpCode::GaussianLog : OpCode::Gaussian, Reg,
             regOfOperand(Op, 0), GaussIndex);
        RegOf[Op->getResult(0).getImpl()] = Reg;
        if (Plan) {
          PlanNode Node;
          Node.Kind = PlanNodeKind::LeafGaussian;
          Node.Feature = FeatureOf.at(Op->getOperand(0).getImpl());
          Node.Mean = Gauss.getMean();
          Node.StdDev = Gauss.getStdDev();
          Node.Mode = Gauss.getMean();
          PlanOf[Op->getResult(0).getImpl()] = addPlanNode(Node);
        }
        continue;
      }
      if (HistogramOp Hist = dyn_cast_op<HistogramOp>(Op)) {
        emitDiscreteLeaf(Op, Hist.getFlatBuckets(),
                         Hist.getSupportMarginal());
        continue;
      }
      if (CategoricalOp Cat = dyn_cast_op<CategoricalOp>(Op)) {
        // A categorical is a histogram with unit buckets at 0..N-1.
        std::vector<double> Flat;
        const std::vector<double> &Probs = Cat.getProbabilities();
        Flat.reserve(Probs.size() * 3);
        for (size_t I = 0; I < Probs.size(); ++I) {
          Flat.push_back(static_cast<double>(I));
          Flat.push_back(static_cast<double>(I + 1));
          Flat.push_back(Probs[I]);
        }
        emitDiscreteLeaf(Op, Flat, Cat.getSupportMarginal());
        continue;
      }
      return failure();
    }
    return success();
  }

  /// Emits a discrete leaf either as a dense table lookup (CPU strategy)
  /// or as a cascade of selects (GPU strategy, paper §IV-C).
  void emitDiscreteLeaf(Operation *Op, const std::vector<double> &Flat,
                        bool Marginal) {
    double Default =
        Log ? -std::numeric_limits<double>::infinity() : 0.0;
    // Mode of the leaf distribution: the highest-mass bucket; ties
    // resolve to the lowest bucket index (docs/queries.md).
    double ModeValue = 0.0, ModeMass = 0.0;
    for (size_t I = 0; I < Flat.size(); I += 3)
      if (Flat[I + 2] > ModeMass) {
        ModeMass = Flat[I + 2];
        ModeValue = Flat[I];
      }
    // For MPE, a marginalized (NaN) leaf contributes its mode mass (the
    // bucket the traceback will select) instead of the marginal's 1.
    double MarginalValue =
        Options.Query == vm::QueryKind::Mpe
            ? (Log ? std::log(ModeMass) : ModeMass)
            : (Log ? 0.0 : 1.0);
    uint32_t Evidence = regOfOperand(Op, 0);
    uint32_t Reg = newReg();

    if (Plan) {
      PlanNode Node;
      Node.Kind = PlanNodeKind::LeafTable;
      Node.Feature = FeatureOf.at(Op->getOperand(0).getImpl());
      Node.Mode = ModeValue;
      Node.TableBegin = static_cast<uint32_t>(Plan->Buckets.size());
      Node.TableCount = static_cast<uint32_t>(Flat.size() / 3);
      Plan->Buckets.insert(Plan->Buckets.end(), Flat.begin(),
                           Flat.end());
      PlanOf[Op->getResult(0).getImpl()] = addPlanNode(Node);
    }

    bool Dense = !Options.EmitSelectCascades && !Flat.empty() &&
                 bucketsAreIntegral(Flat);
    if (Dense) {
      double Lo = Flat[0], Hi = Flat[1];
      for (size_t I = 0; I < Flat.size(); I += 3) {
        Lo = std::min(Lo, Flat[I]);
        Hi = std::max(Hi, Flat[I + 1]);
      }
      Dense = (Hi - Lo) <= static_cast<double>(Options.MaxDenseTableSize);
      if (Dense) {
        LookupTable Table;
        Table.Lo = Lo;
        Table.DefaultValue = Default;
        Table.SupportMarginal = Marginal;
        Table.MarginalValue = MarginalValue;
        Table.Values.assign(static_cast<size_t>(Hi - Lo), Default);
        for (size_t I = 0; I < Flat.size(); I += 3) {
          double P = Log ? std::log(Flat[I + 2]) : Flat[I + 2];
          for (double X = Flat[I]; X < Flat[I + 1]; X += 1.0)
            Table.Values[static_cast<size_t>(X - Lo)] = P;
        }
        Program.Tables.push_back(std::move(Table));
        uint32_t TableIndex =
            static_cast<uint32_t>(Program.Tables.size() - 1);
        if (int64_t ParamBase = paramIndexOf(Op); ParamBase >= 0) {
          // One tunable mass per bucket; a wide bucket spans several
          // dense slots. Bounds, Lo, DefaultValue, MarginalValue are
          // structural and stay baked.
          const LookupTable &Placed = Program.Tables[TableIndex];
          for (size_t I = 0; I < Flat.size(); I += 3) {
            ParamSite Site;
            Site.Kind = ParamSlotKind::TableValue;
            Site.Transform =
                Log ? ParamTransform::Log : ParamTransform::Identity;
            Site.Index = TableIndex;
            Site.Slot = static_cast<uint32_t>(Flat[I] - Placed.Lo);
            Site.Count = static_cast<uint32_t>(Flat[I + 1] - Flat[I]);
            Site.Param =
                static_cast<uint32_t>(ParamBase + static_cast<int64_t>(I / 3));
            Program.ParamSites.push_back(Site);
          }
        }
        push(OpCode::TableLookup, Reg, Evidence, TableIndex);
        RegOf[Op->getResult(0).getImpl()] = Reg;
        return;
      }
    }

    // Select cascade: initialize with the default, one range select per
    // bucket, NaN blend for marginalization.
    int64_t ParamBase = paramIndexOf(Op);
    push(OpCode::Const, Reg, poolConstant(Default));
    for (size_t I = 0; I < Flat.size(); I += 3) {
      Program.Selects.push_back(SelectRange{
          Flat[I], Flat[I + 1],
          Log ? std::log(Flat[I + 2]) : Flat[I + 2]});
      uint32_t SelectIndex =
          static_cast<uint32_t>(Program.Selects.size() - 1);
      if (ParamBase >= 0)
        addSite(ParamSlotKind::SelectValue,
                Log ? ParamTransform::Log : ParamTransform::Identity,
                SelectIndex, ParamBase + static_cast<int64_t>(I / 3));
      push(OpCode::SelectInRange, Reg, Evidence, SelectIndex);
    }
    if (Marginal) {
      Instruction Inst;
      Inst.Op = OpCode::NanBlend;
      Inst.Dst = Reg;
      Inst.A = Evidence;
      Inst.B = poolConstant(MarginalValue);
      Program.Code.push_back(Inst);
    }
    RegOf[Op->getResult(0).getImpl()] = Reg;
  }

  uint32_t regOfOperand(Operation *Op, unsigned Index) {
    return RegOf.at(Op->getOperand(Index).getImpl());
  }

  uint32_t newReg() { return NextReg++; }

  int32_t addPlanNode(const PlanNode &Node) {
    Plan->Nodes.push_back(Node);
    return static_cast<int32_t>(Plan->Nodes.size() - 1);
  }

  /// Canonical parameter index of a `param`-tagged op under
  /// parameterized emission, -1 otherwise.
  int64_t paramIndexOf(Operation *Op) const {
    return Options.Parameterize ? Op->getIntAttr("param", -1) : -1;
  }

  void addSite(ParamSlotKind Kind, ParamTransform Transform,
               uint32_t Index, int64_t Param) {
    ParamSite Site;
    Site.Kind = Kind;
    Site.Transform = Transform;
    Site.Index = Index;
    Site.Param = static_cast<uint32_t>(Param);
    Program.ParamSites.push_back(Site);
  }

  uint32_t poolConstant(double Value) {
    for (size_t I = 0; I < Program.ConstPool.size(); ++I) {
      // Never pool into a tunable slot: a structural constant that
      // happens to equal the generating model's weight would change
      // under rebinding.
      if (I < PoolSlotIsParam.size() && PoolSlotIsParam[I])
        continue;
      double Existing = Program.ConstPool[I];
      if (Existing == Value ||
          (std::isnan(Existing) && std::isnan(Value)))
        return static_cast<uint32_t>(I);
    }
    Program.ConstPool.push_back(Value);
    PoolSlotIsParam.push_back(false);
    return static_cast<uint32_t>(Program.ConstPool.size() - 1);
  }

  /// A fresh, never-deduplicated constant-pool slot for a tunable value.
  uint32_t paramPoolSlot(double Value) {
    Program.ConstPool.push_back(Value);
    PoolSlotIsParam.push_back(true);
    return static_cast<uint32_t>(Program.ConstPool.size() - 1);
  }

  void push(OpCode Op, uint32_t Dst, uint32_t A = 0, uint32_t B = 0,
            uint32_t C = 0) {
    Instruction Inst;
    Inst.Op = Op;
    Inst.Dst = Dst;
    Inst.A = A;
    Inst.B = B;
    Inst.C = C;
    Program.Code.push_back(Inst);
  }

  const CodegenOptions &Options;
  bool Log;
  const std::unordered_map<ValueImpl *, uint32_t> &BufferIds;
  const std::vector<BufferInfo> &KernelBuffers;
  /// Traceback plan under construction (null for joint/marginal).
  TracebackPlan *Plan;
  TaskProgram Program;
  /// Parallel to Program.ConstPool: slots holding a tunable parameter
  /// (excluded from constant pooling).
  std::vector<uint8_t> PoolSlotIsParam;
  std::unordered_map<ValueImpl *, uint32_t> RegOf;
  /// Input feature index a value carries (plan building only).
  std::unordered_map<ValueImpl *, uint32_t> FeatureOf;
  /// Plan node index per SSA value (plan building only).
  std::unordered_map<ValueImpl *, int32_t> PlanOf;
  uint32_t NextReg = 0;
};

//===----------------------------------------------------------------------===//
// Instruction-level helpers (operand/def classification)
//===----------------------------------------------------------------------===//

/// True if the instruction reads its Dst field (store sources and
/// read-modify-write accumulators).
static bool readsDst(const Instruction &Inst) {
  return Inst.Op == OpCode::Store || Inst.Op == OpCode::SelectInRange ||
         Inst.Op == OpCode::NanBlend;
}

/// True if the instruction writes its Dst field.
static bool writesDst(const Instruction &Inst) {
  return Inst.Op != OpCode::Store;
}

/// True for n-ary instructions whose operands live in the Args pool. The
/// vector engine accumulates into Dst while operands are still read, so
/// Dst must not alias any operand register.
static bool isNary(const Instruction &Inst) {
  return Inst.Op == OpCode::AddN || Inst.Op == OpCode::MulN ||
         Inst.Op == OpCode::LogSumExpN;
}

/// Collects the registers read by \p Inst into \p Uses.
static void collectUses(const TaskProgram &Program,
                        const Instruction &Inst,
                        std::vector<uint32_t> &Uses) {
  Uses.clear();
  switch (Inst.Op) {
  case OpCode::Const:
  case OpCode::Load:
    break;
  case OpCode::Store:
    Uses.push_back(Inst.Dst);
    break;
  case OpCode::Add:
  case OpCode::Mul:
  case OpCode::LogSumExp:
  case OpCode::Max:
    Uses.push_back(Inst.A);
    Uses.push_back(Inst.B);
    break;
  case OpCode::FusedMulAdd:
    Uses.push_back(Inst.A);
    Uses.push_back(Inst.B);
    Uses.push_back(Inst.C);
    break;
  case OpCode::Gaussian:
  case OpCode::GaussianLog:
  case OpCode::TableLookup:
    Uses.push_back(Inst.A);
    break;
  case OpCode::SelectInRange:
  case OpCode::NanBlend:
    Uses.push_back(Inst.A);
    Uses.push_back(Inst.Dst);
    break;
  case OpCode::AddN:
  case OpCode::MulN:
  case OpCode::LogSumExpN:
    for (uint32_t N = 0; N < Inst.B; ++N)
      Uses.push_back(Program.Args[Inst.A + N]);
    break;
  }
}

/// Rewrites the registers read by \p Inst through \p Map.
template <typename MapFn>
static void rewriteRegs(TaskProgram &Program, Instruction &Inst,
                        MapFn Map) {
  switch (Inst.Op) {
  case OpCode::Const:
  case OpCode::Load:
    break;
  case OpCode::Store:
    Inst.Dst = Map(Inst.Dst);
    return; // Store has no def.
  case OpCode::Add:
  case OpCode::Mul:
  case OpCode::LogSumExp:
  case OpCode::Max:
    Inst.A = Map(Inst.A);
    Inst.B = Map(Inst.B);
    break;
  case OpCode::FusedMulAdd:
    Inst.A = Map(Inst.A);
    Inst.B = Map(Inst.B);
    Inst.C = Map(Inst.C);
    break;
  case OpCode::Gaussian:
  case OpCode::GaussianLog:
  case OpCode::TableLookup:
    Inst.A = Map(Inst.A);
    break;
  case OpCode::SelectInRange:
  case OpCode::NanBlend:
    Inst.A = Map(Inst.A);
    break;
  case OpCode::AddN:
  case OpCode::MulN:
  case OpCode::LogSumExpN:
    for (uint32_t N = 0; N < Inst.B; ++N)
      Program.Args[Inst.A + N] = Map(Program.Args[Inst.A + N]);
    break;
  }
}

//===----------------------------------------------------------------------===//
// Chain collapse (O2+): binary reduction chains become n-ary ops
//===----------------------------------------------------------------------===//

/// Maximum operand count of one n-ary instruction. Larger fan-in is
/// split into a tree of chunked n-ary ops: unbounded n-ary ops would keep
/// every operand register live simultaneously, destroying GPU occupancy
/// (and CPU register-file locality).
static constexpr size_t kMaxNaryArgs = 8;

/// Collapses left-leaning chains of the same binary reduction (the form
/// the weighted-sum and product lowering emits) into (trees of) n-ary
/// instructions: one max/log pair per ~8 elements instead of one
/// exp/log1p per element for log-space additions, and tight accumulation
/// loops for sums and products. The dominant win on RAT-SPN-style graphs
/// with large fan-in.
static void runChainCollapse(TaskProgram &Program) {
  std::vector<Instruction> &Code = Program.Code;
  std::vector<uint32_t> UseCounts(Program.NumRegisters, 0);
  std::vector<int32_t> DefOf(Program.NumRegisters, -1);
  std::vector<uint32_t> Uses;
  for (size_t I = 0; I < Code.size(); ++I) {
    collectUses(Program, Code[I], Uses);
    for (uint32_t Reg : Uses)
      ++UseCounts[Reg];
    if (writesDst(Code[I]) && DefOf[Code[I].Dst] < 0)
      DefOf[Code[I].Dst] = static_cast<int32_t>(I);
  }

  std::vector<uint8_t> Dead(Code.size(), 0);
  // Instructions to emit directly before position I (chunked subtrees).
  std::vector<std::vector<Instruction>> Prefix(Code.size());

  // Last write per register: select cascades and NaN blends write their
  // register several times, and a chunk op reading such a register must
  // be placed after the *final* write (DefOf above records the first
  // write, which identifies the defining op for chain expansion).
  std::vector<int32_t> LastWriteOf(Program.NumRegisters, -1);
  for (size_t I = 0; I < Code.size(); ++I)
    if (writesDst(Code[I]))
      LastWriteOf[Code[I].Dst] = static_cast<int32_t>(I);

  auto MakeNary = [&](OpCode Kind, uint32_t Dst,
                      std::span<const uint32_t> Operands) {
    Instruction Result;
    Result.Op = Kind == OpCode::Add
                    ? OpCode::AddN
                    : (Kind == OpCode::Mul ? OpCode::MulN
                                           : OpCode::LogSumExpN);
    Result.Dst = Dst;
    Result.A = static_cast<uint32_t>(Program.Args.size());
    Result.B = static_cast<uint32_t>(Operands.size());
    Program.Args.insert(Program.Args.end(), Operands.begin(),
                        Operands.end());
    return Result;
  };

  // Process back-to-front so outermost chain heads absorb whole chains.
  for (size_t I = Code.size(); I-- > 0;) {
    Instruction &Inst = Code[I];
    if (Dead[I])
      continue;
    OpCode Kind = Inst.Op;
    if (Kind != OpCode::Add && Kind != OpCode::Mul &&
        Kind != OpCode::LogSumExp)
      continue;

    // Expand operands that are single-use results of the same kind.
    std::vector<uint32_t> Leaves;
    std::vector<uint32_t> Pending{Inst.A, Inst.B};
    while (!Pending.empty()) {
      uint32_t Reg = Pending.back();
      Pending.pop_back();
      int32_t Def = DefOf[Reg];
      if (Def >= 0 && !Dead[Def] && Code[Def].Op == Kind &&
          UseCounts[Reg] == 1) {
        Dead[Def] = 1;
        Pending.push_back(Code[Def].A);
        Pending.push_back(Code[Def].B);
        continue;
      }
      Leaves.push_back(Reg);
    }
    // Fewer than three leaves means nothing was absorbed (expanding even
    // one operand yields at least three), so no kills need undoing.
    if (Leaves.size() < 3)
      continue;

    // Reduce the leaves in chunks of kMaxNaryArgs until one value
    // remains. Each chunk op is placed directly after the definition of
    // its last-defined operand (not at the chain head), so at most one
    // chunk's worth of operands plus the partial results are live at any
    // point — unbounded placement at the head would keep every leaf live
    // simultaneously and wreck register allocation and GPU occupancy.
    std::unordered_map<uint32_t, size_t> ChunkRegPos;
    auto DefPos = [&](uint32_t Reg) -> size_t {
      auto It = ChunkRegPos.find(Reg);
      if (It != ChunkRegPos.end())
        return It->second;
      int32_t Def = LastWriteOf[Reg];
      return Def < 0 ? 0 : static_cast<size_t>(Def);
    };

    std::vector<uint32_t> Level = std::move(Leaves);
    std::sort(Level.begin(), Level.end(), [&](uint32_t A, uint32_t B) {
      return DefPos(A) < DefPos(B);
    });
    while (Level.size() > kMaxNaryArgs) {
      std::vector<uint32_t> Next;
      for (size_t Begin = 0; Begin < Level.size();
           Begin += kMaxNaryArgs) {
        size_t End = std::min(Level.size(), Begin + kMaxNaryArgs);
        if (End - Begin == 1) {
          Next.push_back(Level[Begin]);
          continue;
        }
        uint32_t ChunkReg = Program.NumRegisters++;
        size_t LastDef = 0;
        for (size_t Idx = Begin; Idx < End; ++Idx)
          LastDef = std::max(LastDef, DefPos(Level[Idx]));
        // Emit directly after the last operand definition (before the
        // instruction that follows it), never past the chain head.
        size_t Attach = std::min(LastDef + 1, I);
        Prefix[Attach].push_back(MakeNary(
            Kind, ChunkReg,
            std::span<const uint32_t>(&Level[Begin], End - Begin)));
        ChunkRegPos[ChunkReg] = Attach;
        Next.push_back(ChunkReg);
      }
      Level = std::move(Next);
    }
    Inst = MakeNary(Kind, Inst.Dst, Level);
  }

  std::vector<Instruction> Compacted;
  Compacted.reserve(Code.size());
  for (size_t I = 0; I < Code.size(); ++I) {
    // Prefix chunks attach to positions regardless of whether the
    // original instruction there was absorbed.
    for (const Instruction &Extra : Prefix[I])
      Compacted.push_back(Extra);
    if (!Dead[I])
      Compacted.push_back(Code[I]);
  }
  Code = std::move(Compacted);
}

//===----------------------------------------------------------------------===//
// Peephole (O2+): leaf-coefficient folding, FMA fusion, dead code
//===----------------------------------------------------------------------===//

static void runPeephole(TaskProgram &Program, bool LogSpace) {
  std::vector<Instruction> &Code = Program.Code;

  // Use counts per register (cascade Dst reads included).
  auto CountUses = [&] {
    std::vector<uint32_t> Counts(Program.NumRegisters, 0);
    std::vector<uint32_t> Uses;
    for (const Instruction &Inst : Code) {
      collectUses(Program, Inst, Uses);
      for (uint32_t Reg : Uses)
        ++Counts[Reg];
    }
    return Counts;
  };
  std::vector<uint32_t> UseCounts = CountUses();

  // Defining instruction per register (cascades define via their first
  // write, the Const).
  std::vector<int32_t> DefOf(Program.NumRegisters, -1);
  for (size_t I = 0; I < Code.size(); ++I)
    if (writesDst(Code[I]) && DefOf[Code[I].Dst] < 0)
      DefOf[Code[I].Dst] = static_cast<int32_t>(I);

  auto IsLeafFoldTarget = [&](int32_t Def) {
    if (Def < 0)
      return false;
    OpCode Op = Code[Def].Op;
    return Op == (LogSpace ? OpCode::GaussianLog : OpCode::Gaussian) ||
           Op == OpCode::TableLookup;
  };

  const OpCode WeightApply = LogSpace ? OpCode::Add : OpCode::Mul;
  std::vector<uint8_t> Dead(Code.size(), 0);

  for (size_t I = 0; I < Code.size(); ++I) {
    Instruction &Inst = Code[I];
    if (Inst.Op != WeightApply)
      continue;
    // Match leaf (single use) combined with a constant: fold the weight
    // into the leaf parameters and forward the leaf register.
    for (unsigned Side = 0; Side < 2; ++Side) {
      uint32_t LeafReg = Side == 0 ? Inst.A : Inst.B;
      uint32_t ConstReg = Side == 0 ? Inst.B : Inst.A;
      int32_t LeafDef = DefOf[LeafReg];
      int32_t ConstDef = DefOf[ConstReg];
      if (!IsLeafFoldTarget(LeafDef) || ConstDef < 0 ||
          Code[ConstDef].Op != OpCode::Const ||
          UseCounts[LeafReg] != 1)
        continue;
      double Weight = Program.ConstPool[Code[ConstDef].A];
      Instruction &Leaf = Code[LeafDef];
      if (Leaf.Op == OpCode::TableLookup) {
        LookupTable &Table = Program.Tables[Leaf.B];
        for (double &Value : Table.Values)
          Value = LogSpace ? Value + Weight : Value * Weight;
        Table.DefaultValue = LogSpace ? Table.DefaultValue + Weight
                                      : Table.DefaultValue * Weight;
        Table.MarginalValue = LogSpace ? Table.MarginalValue + Weight
                                       : Table.MarginalValue * Weight;
      } else {
        GaussianParams &Params = Program.Gaussians[Leaf.B];
        Params.Coefficient = LogSpace ? Params.Coefficient + Weight
                                      : Params.Coefficient * Weight;
        Params.MarginalValue = LogSpace
                                   ? Params.MarginalValue + Weight
                                   : Params.MarginalValue * Weight;
      }
      // The weighted result now comes straight out of the leaf.
      Leaf.Dst = Inst.Dst;
      DefOf[Inst.Dst] = LeafDef;
      Dead[I] = 1;
      --UseCounts[LeafReg];
      --UseCounts[ConstReg];
      break;
    }
  }

  // FMA fusion (linear space): Add(d, Mul(a,b), c) with a single-use mul.
  if (!LogSpace) {
    for (size_t I = 0; I < Code.size(); ++I) {
      Instruction &Inst = Code[I];
      if (Inst.Op != OpCode::Add || Dead[I])
        continue;
      for (unsigned Side = 0; Side < 2; ++Side) {
        uint32_t MulReg = Side == 0 ? Inst.A : Inst.B;
        uint32_t AddReg = Side == 0 ? Inst.B : Inst.A;
        int32_t MulDef = DefOf[MulReg];
        if (MulDef < 0 || Code[MulDef].Op != OpCode::Mul ||
            Dead[MulDef] || UseCounts[MulReg] != 1)
          continue;
        Instruction Fused;
        Fused.Op = OpCode::FusedMulAdd;
        Fused.Dst = Inst.Dst;
        Fused.A = Code[MulDef].A;
        Fused.B = Code[MulDef].B;
        Fused.C = AddReg;
        Dead[MulDef] = 1;
        Inst = Fused;
        break;
      }
    }
  }

  // Dead code elimination: drop unused pure defs (including consts left
  // over from the folds above).
  UseCounts = CountUses();
  // Recompute after rewrites; then sweep backwards so chains die.
  for (size_t I = Code.size(); I-- > 0;) {
    Instruction &Inst = Code[I];
    if (Dead[I] || !writesDst(Inst) || readsDst(Inst))
      continue;
    if (UseCounts[Inst.Dst] == 0) {
      Dead[I] = 1;
      std::vector<uint32_t> Uses;
      collectUses(Program, Inst, Uses);
      for (uint32_t Reg : Uses)
        --UseCounts[Reg];
    }
  }

  std::vector<Instruction> Compacted;
  Compacted.reserve(Code.size());
  for (size_t I = 0; I < Code.size(); ++I)
    if (!Dead[I])
      Compacted.push_back(Code[I]);
  Code = std::move(Compacted);
}

//===----------------------------------------------------------------------===//
// Scheduling (O3): consumer-first reordering to shorten live ranges
//===----------------------------------------------------------------------===//

static void runScheduling(TaskProgram &Program) {
  // Read-modify-write cascades impose write-after-write ordering the
  // simple dependence model below does not capture; skip such programs.
  for (const Instruction &Inst : Program.Code)
    if (Inst.Op == OpCode::SelectInRange || Inst.Op == OpCode::NanBlend)
      return;

  std::vector<Instruction> &Code = Program.Code;
  std::vector<int32_t> DefOf(Program.NumRegisters, -1);
  for (size_t I = 0; I < Code.size(); ++I)
    if (writesDst(Code[I]))
      DefOf[Code[I].Dst] = static_cast<int32_t>(I);

  std::vector<Instruction> Scheduled;
  Scheduled.reserve(Code.size());
  std::vector<uint8_t> Emitted(Code.size(), 0);

  // Depth-first from each store: operands immediately before their
  // (first) consumer keeps live ranges short, which lets the register
  // allocator reuse registers aggressively.
  std::vector<uint32_t> Uses;
  std::vector<std::pair<int32_t, size_t>> Stack;
  auto Emit = [&](int32_t RootIdx) {
    if (Emitted[RootIdx])
      return;
    Emitted[RootIdx] = 1; // Marked when stacked; appended when popped.
    Stack.emplace_back(RootIdx, 0);
    while (!Stack.empty()) {
      auto &[Idx, NextUse] = Stack.back();
      collectUses(Program, Code[Idx], Uses);
      if (NextUse < Uses.size()) {
        int32_t Def = DefOf[Uses[NextUse++]];
        if (Def >= 0 && !Emitted[Def]) {
          Emitted[Def] = 1; // Reserve to avoid duplicate stacking.
          Stack.emplace_back(Def, 0);
        }
        continue;
      }
      Scheduled.push_back(Code[Idx]);
      Stack.pop_back();
    }
  };
  for (size_t I = 0; I < Code.size(); ++I)
    if (Code[I].Op == OpCode::Store)
      Emit(static_cast<int32_t>(I));
  // Anything not reachable from a store is dead; keep it anyway to stay
  // semantics-preserving in case of unusual programs.
  for (size_t I = 0; I < Code.size(); ++I)
    if (!Emitted[I])
      Scheduled.push_back(Code[I]);
  Code = std::move(Scheduled);
}

//===----------------------------------------------------------------------===//
// Register allocation (O1+): linear scan with a free list
//===----------------------------------------------------------------------===//

static void runRegisterAllocation(TaskProgram &Program) {
  std::vector<Instruction> &Code = Program.Code;

  // Last read of each virtual register over the final order.
  std::vector<int32_t> LastUse(Program.NumRegisters, -1);
  std::vector<uint32_t> Uses;
  for (size_t I = 0; I < Code.size(); ++I) {
    collectUses(Program, Code[I], Uses);
    for (uint32_t Reg : Uses)
      LastUse[Reg] = static_cast<int32_t>(I);
  }

  constexpr uint32_t kUnassigned = 0xffffffffu;
  std::vector<uint32_t> Assignment(Program.NumRegisters, kUnassigned);
  std::vector<uint32_t> FreeList;
  uint32_t NumPhys = 0;

  auto Allocate = [&](uint32_t VReg) {
    if (Assignment[VReg] != kUnassigned)
      return;
    if (!FreeList.empty()) {
      Assignment[VReg] = FreeList.back();
      FreeList.pop_back();
    } else {
      Assignment[VReg] = NumPhys++;
    }
  };

  std::vector<uint32_t> Dying;
  for (size_t I = 0; I < Code.size(); ++I) {
    const Instruction Original = Code[I];
    Instruction &Inst = Code[I];

    // Virtual registers whose live range ends at this instruction.
    Dying.clear();
    collectUses(Program, Original, Uses);
    for (uint32_t VReg : Uses)
      if (LastUse[VReg] == static_cast<int32_t>(I) &&
          std::find(Dying.begin(), Dying.end(), VReg) == Dying.end())
        Dying.push_back(VReg);

    // Rewrite reads (including the Dst read of stores and accumulators).
    rewriteRegs(Program, Inst, [&](uint32_t VReg) {
      assert(Assignment[VReg] != kUnassigned && "use before def");
      return Assignment[VReg];
    });
    if (readsDst(Original) && Original.Op != OpCode::Store)
      Inst.Dst = Assignment[Original.Dst];

    // Assign the def. Accumulators keep their existing assignment; a
    // fresh def may reuse a register dying at this very instruction —
    // except for n-ary ops, whose engines accumulate into Dst while the
    // operands are still being read (no aliasing allowed).
    if (writesDst(Original)) {
      uint32_t VDst = Original.Dst;
      if (isNary(Original)) {
        Allocate(VDst);
        for (uint32_t VReg : Dying)
          if (VReg != VDst)
            FreeList.push_back(Assignment[VReg]);
        Inst.Dst = Assignment[VDst];
        if (LastUse[VDst] < static_cast<int32_t>(I))
          FreeList.push_back(Assignment[VDst]);
        continue;
      }
      // Do not free-and-reuse a register this instruction still writes.
      for (uint32_t VReg : Dying)
        if (VReg != VDst)
          FreeList.push_back(Assignment[VReg]);
      Allocate(VDst);
      Inst.Dst = Assignment[VDst];
      // A def that is never read dies immediately.
      if (LastUse[VDst] < static_cast<int32_t>(I))
        FreeList.push_back(Assignment[VDst]);
    } else {
      for (uint32_t VReg : Dying)
        FreeList.push_back(Assignment[VReg]);
    }
  }

  Program.NumRegisters = std::max(NumPhys, 1u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

Expected<vm::KernelProgram>
spnc::codegen::emitKernelProgram(KernelOp Kernel,
                                 const CodegenOptions &Options,
                                 CodegenTimings *Timings) {
  if (!Kernel.isBufferized())
    return makeError("codegen requires a bufferized kernel");

  KernelProgram Program;
  Program.Name = Kernel.getKernelName();
  Program.Lowering = Options.EmitSelectCascades
                         ? LoweringKind::SelectCascade
                         : LoweringKind::TableLookup;
  Program.Query = Options.Query;

  // MPE and sampling build a traceback plan that references upward-pass
  // registers by index, so every SSA value must keep its own register:
  // force direct emission regardless of the requested level (the
  // pipeline also skips task partitioning for these queries).
  bool NeedsPlan = Options.Query == QueryKind::Mpe ||
                   Options.Query == QueryKind::Sample;
  unsigned OptLevel = NeedsPlan ? 0 : Options.OptLevel;
  if (Options.Parameterize && NeedsPlan)
    return makeError("parameterized codegen supports joint/marginal "
                     "queries only (the traceback plan bakes "
                     "parameter-dependent values)");
  Program.Parameterized = Options.Parameterize;

  // Buffer plan from the kernel signature and allocs.
  std::unordered_map<ValueImpl *, uint32_t> BufferIds;
  Block &Body = Kernel.getBody();
  unsigned NumInputs = Kernel.getNumInputs();
  for (unsigned I = 0; I < Body.getNumArguments(); ++I) {
    Value Arg = Body.getArgument(I);
    MemRefType MemRef = Arg.getType().cast<MemRefType>();
    BufferInfo Info;
    Info.Role = I < NumInputs ? BufferInfo::Kind::Input
                              : BufferInfo::Kind::Output;
    const std::vector<int64_t> &Shape = MemRef.getShape();
    if (Shape.size() == 2 && Shape[0] == TypeStorage::kDynamic) {
      Info.Transposed = false;
      Info.Columns = static_cast<uint32_t>(Shape[1]);
    } else {
      Info.Transposed = true;
      Info.Columns =
          Shape.empty() ? 1 : static_cast<uint32_t>(Shape[0]);
    }
    BufferIds[Arg.getImpl()] =
        static_cast<uint32_t>(Program.Buffers.size());
    Program.Buffers.push_back(Info);
  }
  Program.NumInputs = NumInputs;
  Program.NumOutputs = Body.getNumArguments() - NumInputs;

  // Determine the compute type from the first output buffer element.
  {
    Value FirstOut = Body.getArgument(NumInputs);
    Type Element =
        FirstOut.getType().cast<MemRefType>().getElementType();
    Program.LogSpace = isLogSpace(Element);
    Type Storage = getStorageType(Element);
    Program.UseF32 = Storage.cast<FloatType>().getWidth() == 32;
  }

  CodegenTimings LocalTimings;
  CodegenTimings &T = Timings ? *Timings : LocalTimings;

  for (Operation *Op : Body) {
    if (AllocOp Alloc = dyn_cast_op<AllocOp>(Op)) {
      MemRefType MemRef =
          Alloc->getResult(0).getType().cast<MemRefType>();
      BufferInfo Info;
      Info.Role = BufferInfo::Kind::Intermediate;
      Info.Transposed = true;
      Info.Columns = static_cast<uint32_t>(MemRef.getShape()[0]);
      Info.DeviceResident = Alloc.isDeviceResident();
      BufferIds[Alloc->getResult(0).getImpl()] =
          static_cast<uint32_t>(Program.Buffers.size());
      Program.Buffers.push_back(Info);
      continue;
    }
    if (isa_op<DeallocOp>(Op) || isa_op<ReturnOp>(Op))
      continue;
    if (CopyOp Copy = dyn_cast_op<CopyOp>(Op)) {
      KernelStep Step;
      Step.CopySrc = static_cast<int32_t>(
          BufferIds.at(Op->getOperand(0).getImpl()));
      Step.CopyDst = static_cast<int32_t>(
          BufferIds.at(Op->getOperand(1).getImpl()));
      Program.Steps.push_back(Step);
      continue;
    }
    TaskOp Task = dyn_cast_op<TaskOp>(Op);
    if (!Task)
      return makeError(formatString(
          "unsupported op '%s' in kernel body", Op->getName().c_str()));
    Program.BatchSize = Task.getBatchSize();

    if (NeedsPlan && !Program.Tasks.empty())
      return makeError(
          "MPE/sampling codegen requires a single unpartitioned task");

    Timer IselTimer;
    TaskEmitter Emitter(Options, Program.LogSpace, BufferIds,
                        Program.Buffers,
                        NeedsPlan ? &Program.Plan : nullptr);
    Expected<TaskProgram> TaskProg = Emitter.emit(Task);
    T.IselNs += IselTimer.elapsedNs();
    if (!TaskProg)
      return TaskProg.getError();

    if (OptLevel >= 2) {
      Timer PeepholeTimer;
      // The peephole folds weight constants into leaf tables and fuses
      // FMAs — both rewrites whose firing (or numeric effect) depends on
      // which values are single-use constants. Parameterized programs
      // skip it so the program shape (and the merged/unmerged numerics)
      // stay independent of the parameter values. Chain collapse is
      // purely structural and stays on.
      if (!Options.Parameterize)
        runPeephole(*TaskProg, Program.LogSpace);
      runChainCollapse(*TaskProg);
      T.PeepholeNs += PeepholeTimer.elapsedNs();
    }
    if (OptLevel >= 3) {
      Timer SchedulingTimer;
      runScheduling(*TaskProg);
      T.SchedulingNs += SchedulingTimer.elapsedNs();
    }
    if (OptLevel >= 1) {
      Timer RegAllocTimer;
      runRegisterAllocation(*TaskProg);
      T.RegAllocNs += RegAllocTimer.elapsedNs();
    }

    KernelStep Step;
    Step.Task = static_cast<int32_t>(Program.Tasks.size());
    Program.Steps.push_back(Step);
    Program.Tasks.push_back(TaskProg.takeValue());
  }
  if (Program.Parameterized)
    for (const TaskProgram &Task : Program.Tasks)
      for (const ParamSite &Site : Task.ParamSites)
        Program.NumParams = std::max(Program.NumParams, Site.Param + 1);
  return Program;
}
