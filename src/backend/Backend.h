//===- Backend.h - Abstract compilation backend interface ---------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between the target-independent compilation pipeline and the
/// ways a compiled kernel can actually run. A `Backend` turns the
/// pipeline's portable `vm::KernelProgram` into a loaded
/// `ExecutionEngine` — the bytecode interpreters (`VmBackend`), or a
/// natively compiled shared object (`CppBackend`) — and contributes an
/// `artifactFingerprint()` to the kernel-cache key so kernels produced
/// by different backends never alias.
///
/// Like runtime/ExecutionEngine.h, this header is deliberately
/// header-only and link-free: the interface lives above the runtime
/// pipeline it consumes, while concrete backends (and the registry) are
/// free to pull in whatever execution machinery they need. Target
/// validation is part of the interface — `validateTarget` turns a
/// request for an unsupported target into a clear diagnostic instead of
/// a silent fallback.
///
//===----------------------------------------------------------------------===//

#ifndef SPNC_BACKEND_BACKEND_H
#define SPNC_BACKEND_BACKEND_H

#include "runtime/ExecutionEngine.h"
#include "runtime/Pipeline.h"
#include "support/Expected.h"

#include <memory>
#include <string>
#include <vector>

namespace spnc {
namespace backend {

/// The result of backend compilation: a loaded, executable engine plus
/// the identity of the backend that produced it. The name/fingerprint
/// pair is what the kernel cache folds into its keys (see
/// KernelCache::makeKey), so artifacts from different backends — or
/// from incompatible versions of one backend — never collide.
struct CompiledArtifact {
  std::shared_ptr<runtime::ExecutionEngine> Engine;
  /// Name of the producing backend ("vm", "cpp", ...).
  std::string BackendName;
  /// The producing backend's artifactFingerprint() at compile time.
  uint64_t Fingerprint = 0;
};

/// Abstract compilation backend. Implementations must be immutable
/// after construction: `compile` and `materialize` may be called
/// concurrently from many threads (the kernel cache does exactly that).
class Backend {
public:
  virtual ~Backend() = default;

  /// Stable, unique backend name; the registry key and the user-facing
  /// `--backend` spelling. Thread-safe.
  virtual std::string getName() const = 0;

  /// The targets this backend can produce engines for. Thread-safe;
  /// constant for the backend's lifetime.
  virtual std::vector<runtime::Target> supportedTargets() const = 0;

  /// True when \p TheTarget is in supportedTargets().
  bool supportsTarget(runtime::Target TheTarget) const {
    for (runtime::Target T : supportedTargets())
      if (T == TheTarget)
        return true;
    return false;
  }

  /// Checks \p TheTarget against supportedTargets(); on mismatch
  /// returns a diagnostic naming the backend, the requested target and
  /// the supported set — requesting Target::GPU from a CPU-only
  /// backend fails loudly instead of silently falling back.
  std::optional<Error> validateTarget(runtime::Target TheTarget) const {
    if (supportsTarget(TheTarget))
      return std::nullopt;
    std::string Supported;
    for (runtime::Target T : supportedTargets()) {
      if (!Supported.empty())
        Supported += ", ";
      Supported += runtime::targetName(T);
    }
    return makeError("backend '" + getName() + "' does not support target '" +
                     runtime::targetName(TheTarget) +
                     "'; supported targets: " + Supported);
  }

  /// Stable fingerprint over everything that changes the produced
  /// artifact beyond the (model, query, pipeline-config) key: the
  /// backend identity, its code-emission version, host-toolchain
  /// flags, ... Folded into kernel-cache keys. Thread-safe.
  virtual uint64_t artifactFingerprint() const = 0;

  /// True when the backend can run on this host. Backends with external
  /// requirements (a host compiler, dlopen) override this; \p Reason,
  /// when non-null, receives a human-readable explanation on false.
  /// Thread-safe.
  virtual bool isAvailable(std::string *Reason = nullptr) const {
    (void)Reason;
    return true;
  }

  /// Compiles \p Model for \p Query by running \p Pipeline and lowering
  /// the resulting program into a loaded engine. The pipeline is
  /// caller-prepared (validated config, custom stages already
  /// registered) so cache keying over the configured stage set stays in
  /// the caller's hands. Fails on unsupported targets (validateTarget
  /// diagnostics), pipeline failures, or backend-specific lowering
  /// errors. Thread-safe.
  virtual Expected<CompiledArtifact>
  compile(const runtime::CompilationPipeline &Pipeline,
          const spn::Model &Model, const spn::QueryConfig &Query,
          runtime::CompileStats *Stats = nullptr) const = 0;

  /// Convenience overload building a default pipeline from \p Options.
  Expected<CompiledArtifact> compile(const spn::Model &Model,
                                     const spn::QueryConfig &Query,
                                     const runtime::CompilerOptions &Options,
                                     runtime::CompileStats *Stats = nullptr) const {
    Expected<runtime::CompilationPipeline> Pipeline =
        runtime::CompilationPipeline::create(Options);
    if (!Pipeline)
      return Pipeline.getError();
    return compile(*Pipeline, Model, Query, Stats);
  }

  /// Turns an already-compiled portable program (e.g. a `.spnk`
  /// disk-cache hit) into a loaded engine under \p Config, skipping the
  /// pipeline. May fail for backends that re-lower the program on the
  /// host (missing toolchain); the kernel cache treats such failures
  /// like disk corruption and recompiles. Thread-safe.
  virtual Expected<CompiledArtifact>
  materialize(vm::KernelProgram Program,
              const runtime::PipelineConfig &Config) const = 0;
};

} // namespace backend
} // namespace spnc

#endif // SPNC_BACKEND_BACKEND_H
