//===- PassManager.cpp - Pass infrastructure with timing --------------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/PassManager.h"

#include "ir/Operation.h"
#include "ir/Verifier.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

using namespace spnc;
using namespace spnc::ir;

Pass::~Pass() = default;

LogicalResult PassManager::run(Operation *Module) {
  Timings.clear();
  for (auto &ThePass : Passes) {
    Timer PassTimer;
    LogicalResult Result = ThePass->run(Module, Ctx);
    Timings.push_back(PassTiming{ThePass->getName(), PassTimer.elapsedNs()});
    if (failed(Result)) {
      Ctx.emitError(
          formatString("pass '%s' failed", ThePass->getName()));
      return failure();
    }
    if (VerifyAfterEachPass && failed(verify(Module))) {
      Ctx.emitError(formatString("IR verification failed after pass '%s'",
                                 ThePass->getName()));
      return failure();
    }
  }
  return success();
}

uint64_t PassManager::getTotalNs() const {
  uint64_t Total = 0;
  for (const PassTiming &Entry : Timings)
    Total += Entry.WallNs;
  return Total;
}
