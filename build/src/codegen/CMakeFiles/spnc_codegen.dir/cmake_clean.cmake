file(REMOVE_RECURSE
  "CMakeFiles/spnc_codegen.dir/Codegen.cpp.o"
  "CMakeFiles/spnc_codegen.dir/Codegen.cpp.o.d"
  "libspnc_codegen.a"
  "libspnc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
