//===- pipeline_test.cpp - End-to-end compilation pipeline tests --------------===//
//
// Part of the SPNC-Repro project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness property of the whole system: every execution
/// configuration (scalar / vectorized / gather / shuffle / log / linear /
/// GPU / all optimization levels / partitioned) must agree with the
/// reference model evaluator.
///
//===----------------------------------------------------------------------===//

#include "runtime/Compiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace spnc;
using namespace spnc::runtime;

namespace {

/// Compiles and runs a model over samples; checks results against the
/// reference evaluator within f32 tolerance.
void expectMatchesReference(const spn::Model &Model,
                            const std::vector<double> &Data,
                            size_t NumSamples,
                            const CompilerOptions &Options,
                            spn::QueryConfig Query = {}) {
  CompileStats Stats;
  Expected<CompiledKernel> Kernel =
      compileModel(Model, Query, Options, &Stats);
  ASSERT_TRUE(static_cast<bool>(Kernel)) << Kernel.getError().message();

  std::vector<double> Output(NumSamples, 0.0);
  Kernel->execute(Data.data(), Output.data(), NumSamples);

  unsigned NumFeatures = Model.getNumFeatures();
  for (size_t S = 0; S < NumSamples; ++S) {
    double Reference = Model.evalLogLikelihood(
        std::span<const double>(&Data[S * NumFeatures], NumFeatures));
    double Actual = Query.LogSpace ? Output[S] : std::log(Output[S]);
    EXPECT_NEAR(Actual, Reference,
                std::max(5e-3, std::fabs(Reference) * 5e-3))
        << "sample " << S;
  }
}

class PipelineTest : public ::testing::Test {
protected:
  void SetUp() override {
    workloads::SpeakerModelOptions ModelOptions;
    ModelOptions.TargetOperations = 600;
    ModelOptions.Seed = 42;
    Model = std::make_unique<spn::Model>(
        workloads::generateSpeakerModel(ModelOptions));
    std::string Error;
    ASSERT_TRUE(Model->validate(&Error)) << Error;
    Data = workloads::generateSpeechData(ModelOptions, kNumSamples, 99);
  }

  static constexpr size_t kNumSamples = 103; // odd: exercises epilogues
  std::unique_ptr<spn::Model> Model;
  std::vector<double> Data;
};

} // namespace

TEST_F(PipelineTest, ScalarCpuMatchesReference) {
  CompilerOptions Options;
  Options.VerifyIR = true;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, VectorizedCpuMatchesReference) {
  CompilerOptions Options;
  Options.VerifyIR = true;
  Options.Execution.VectorWidth = 8;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, GatherLoadsMatchReference) {
  CompilerOptions Options;
  Options.Execution.VectorWidth = 8;
  Options.Execution.UseShuffle = false;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, NoVecLibMatchesReference) {
  CompilerOptions Options;
  Options.Execution.VectorWidth = 8;
  Options.Execution.UseVecLib = false;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, GpuMatchesReference) {
  CompilerOptions Options;
  Options.VerifyIR = true;
  Options.TheTarget = Target::GPU;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, PartitionedKernelMatchesReference) {
  CompilerOptions Options;
  Options.VerifyIR = true;
  Options.MaxPartitionSize = 64;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, PartitionedVectorizedMatchesReference) {
  CompilerOptions Options;
  Options.MaxPartitionSize = 64;
  Options.Execution.VectorWidth = 8;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, PartitionedGpuMatchesReference) {
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  Options.MaxPartitionSize = 64;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, AllOptLevelsMatchReference) {
  for (unsigned OptLevel = 0; OptLevel <= 3; ++OptLevel) {
    CompilerOptions Options;
    Options.OptLevel = OptLevel;
    Options.VerifyIR = true;
    expectMatchesReference(*Model, Data, kNumSamples, Options);
  }
}

TEST_F(PipelineTest, LinearSpaceMatchesReference) {
  CompilerOptions Options;
  Options.VerifyIR = true;
  spn::QueryConfig Query;
  Query.LogSpace = false;
  // Linear f32 underflows on deep graphs; force f64 compute.
  Query.DataType = spn::ComputeType::F64;
  expectMatchesReference(*Model, Data, kNumSamples, Options, Query);
}

TEST_F(PipelineTest, MarginalInferenceMatchesReference) {
  workloads::SpeakerModelOptions ModelOptions;
  ModelOptions.TargetOperations = 600;
  ModelOptions.Seed = 42;
  std::vector<double> Noisy =
      workloads::generateNoisySpeechData(ModelOptions, kNumSamples, 7);
  spn::QueryConfig Query;
  Query.SupportMarginal = true;
  CompilerOptions Options;
  Options.VerifyIR = true;
  expectMatchesReference(*Model, Noisy, kNumSamples, Options, Query);

  // Vectorized and GPU marginal paths.
  Options.Execution.VectorWidth = 8;
  expectMatchesReference(*Model, Noisy, kNumSamples, Options, Query);
  CompilerOptions GpuOptions;
  GpuOptions.TheTarget = Target::GPU;
  expectMatchesReference(*Model, Noisy, kNumSamples, GpuOptions, Query);
}

TEST_F(PipelineTest, MultiThreadedMatchesReference) {
  CompilerOptions Options;
  Options.Execution.NumThreads = 4;
  Options.Execution.ChunkSize = 17;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, CopyAvoidanceAblationMatchesReference) {
  CompilerOptions Options;
  Options.VerifyIR = true;
  Options.MaxPartitionSize = 64;
  Options.AvoidBufferCopies = false;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, GpuWithoutTransferEliminationMatchesReference) {
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  Options.MaxPartitionSize = 64;
  Options.GpuTransferElimination = false;
  expectMatchesReference(*Model, Data, kNumSamples, Options);
}

TEST_F(PipelineTest, SingleLeafModelCompiles) {
  spn::Model Tiny(1, "leaf");
  Tiny.setRoot(Tiny.makeGaussian(0, 1.0, 2.0));
  for (Target TheTarget : {Target::CPU, Target::GPU}) {
    CompilerOptions Options;
    Options.TheTarget = TheTarget;
    Options.VerifyIR = true;
    Expected<CompiledKernel> Kernel =
        compileModel(Tiny, spn::QueryConfig(), Options);
    ASSERT_TRUE(static_cast<bool>(Kernel))
        << Kernel.getError().message();
    double Input[2] = {1.0, 3.5};
    double Output[2];
    Kernel->execute(Input, Output, 2);
    for (int S = 0; S < 2; ++S)
      EXPECT_NEAR(Output[S],
                  Tiny.evalLogLikelihood(
                      std::span<const double>(&Input[S], 1)),
                  1e-5);
  }
}

TEST_F(PipelineTest, ZeroAndSingleSampleBatches) {
  CompilerOptions Options;
  Options.Execution.VectorWidth = 8; // forces the epilogue-only path
  Expected<CompiledKernel> Kernel =
      compileModel(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  // Zero samples: a no-op, must not crash.
  Kernel->execute(Data.data(), nullptr, 0);
  // One sample: smaller than any vector width.
  double Output = 0;
  Kernel->execute(Data.data(), &Output, 1);
  EXPECT_NEAR(Output,
              Model->evalLogLikelihood(
                  std::span<const double>(Data.data(), 26)),
              5e-3);
}

TEST_F(PipelineTest, GpuBatchSmallerThanBlock) {
  CompilerOptions Options;
  Options.TheTarget = Target::GPU;
  Options.GpuBlockSize = 256;
  Expected<CompiledKernel> Kernel =
      compileModel(*Model, spn::QueryConfig(), Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  double Output[3];
  runtime::ExecutionStats Stats;
  Kernel->execute(Data.data(), Output, 3, &Stats); // 3 samples < 256 block
  for (int S = 0; S < 3; ++S)
    EXPECT_NEAR(Output[S],
                Model->evalLogLikelihood(
                    std::span<const double>(&Data[S * 26], 26)),
                5e-3);
  EXPECT_EQ(Stats.Gpu.NumLaunches, 1u);
}

TEST_F(PipelineTest, AllNaNSampleUnderMarginalQuery) {
  spn::QueryConfig Query;
  Query.SupportMarginal = true;
  CompilerOptions Options;
  Expected<CompiledKernel> Kernel =
      compileModel(*Model, Query, Options);
  ASSERT_TRUE(static_cast<bool>(Kernel));
  std::vector<double> AllNaN(26, std::nan(""));
  double Output = 1;
  Kernel->execute(AllNaN.data(), &Output, 1);
  // Everything marginalized: the probability integrates to 1.
  EXPECT_NEAR(Output, 0.0, 1e-5);
}

TEST_F(PipelineTest, CompileStatsArePopulated) {
  CompilerOptions Options;
  CompileStats Stats;
  spn::QueryConfig Query;
  Expected<CompiledKernel> Kernel =
      compileModel(*Model, Query, Options, &Stats);
  ASSERT_TRUE(static_cast<bool>(Kernel)) << Kernel.getError().message();
  EXPECT_GT(Stats.TotalNs, 0u);
  EXPECT_GT(Stats.TranslationNs, 0u);
  EXPECT_FALSE(Stats.PassTimings.empty());
  EXPECT_EQ(Stats.NumTasks, 1u);
  EXPECT_GT(Stats.NumInstructions, 0u);
}
