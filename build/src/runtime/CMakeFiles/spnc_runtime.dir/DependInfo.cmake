
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Compiler.cpp" "src/runtime/CMakeFiles/spnc_runtime.dir/Compiler.cpp.o" "gcc" "src/runtime/CMakeFiles/spnc_runtime.dir/Compiler.cpp.o.d"
  "/root/repo/src/runtime/KernelCache.cpp" "src/runtime/CMakeFiles/spnc_runtime.dir/KernelCache.cpp.o" "gcc" "src/runtime/CMakeFiles/spnc_runtime.dir/KernelCache.cpp.o.d"
  "/root/repo/src/runtime/Pipeline.cpp" "src/runtime/CMakeFiles/spnc_runtime.dir/Pipeline.cpp.o" "gcc" "src/runtime/CMakeFiles/spnc_runtime.dir/Pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/spnc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/spnc_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/spnc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/spnc_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/spnc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/dialects/CMakeFiles/spnc_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spnc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/spnc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spnc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
